#include "runtime/sharded_runtime.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace greta::runtime {

namespace {

PlannerOptions PlannerOptionsFrom(const EngineOptions& options) {
  PlannerOptions popts;
  popts.counter_mode = options.counter_mode;
  popts.semantics = options.semantics;
  popts.max_windows_per_event = options.max_windows_per_event;
  popts.enable_tree_ranges = options.enable_tree_ranges;
  popts.enable_pruning = options.enable_pruning;
  popts.enable_specialized_kernels = options.enable_specialized_kernels;
  popts.enable_batch_kernels = options.enable_batch_kernels;
  return popts;
}

}  // namespace

StatusOr<std::unique_ptr<ShardedRuntime>> ShardedRuntime::Create(
    const Catalog* catalog, const std::vector<QuerySpec>& workload,
    const ShardedOptions& options) {
  if (workload.empty()) {
    return Status::InvalidArgument("sharded runtime needs at least one query");
  }
  StatusOr<ShardRouter> router =
      ShardRouter::Create(workload, *catalog, options.num_shards,
                          PlannerOptionsFrom(options.workload.engine));
  if (!router.ok()) return router.status();

  auto rt = std::unique_ptr<ShardedRuntime>(new ShardedRuntime());
  rt->catalog_ = catalog;
  rt->router_ = std::move(router).value();
  rt->options_ = options;
  if (rt->options_.batch_size == 0) rt->options_.batch_size = 1;

  const size_t num_shards = rt->router_.num_shards();
  rt->shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->memory = std::make_unique<MemoryTracker>(&rt->total_memory_);
    if (workload.size() == 1) {
      EngineOptions engine_options = options.workload.engine;
      engine_options.memory = shard->memory.get();
      StatusOr<std::unique_ptr<GretaEngine>> engine =
          GretaEngine::Create(catalog, workload[0], engine_options);
      if (!engine.ok()) return engine.status();
      shard->greta = std::move(engine).value();
    } else {
      sharing::SharedEngineOptions shard_options = options.workload;
      shard_options.engine.memory = shard->memory.get();
      shard_options.telemetry_shard = s;
      StatusOr<std::unique_ptr<sharing::SharedWorkloadEngine>> engine =
          sharing::SharedWorkloadEngine::Create(catalog, workload,
                                                shard_options);
      if (!engine.ok()) return engine.status();
      shard->shared = std::move(engine).value();
    }
    shard->queue = std::make_unique<SpscQueue<Batch>>(
        std::max<size_t>(options.queue_capacity, 2));
    shard->pending.Reserve(rt->options_.batch_size);
    rt->shards_.push_back(std::move(shard));
  }

  // Emission grids and merge plans come from shard 0's compiled workload
  // (identical on every shard). The merger gates on the emission-window
  // BOUND: under adaptive re-planning each shard's controller may migrate
  // a cluster between its own grid and the cluster's union grid at
  // different times, but rows always surface no later than the union
  // close — gating on the bound keeps the merged (window, group) order
  // deterministic and independent of per-shard migration timing.
  const Shard& shard0 = *rt->shards_[0];
  std::vector<WindowSpec> windows;
  std::vector<AggPlan> plans;
  for (size_t q = 0; q < workload.size(); ++q) {
    if (shard0.greta != nullptr) {
      windows.push_back(shard0.greta->plan().window);
      plans.push_back(shard0.greta->agg_plan());
    } else {
      windows.push_back(shard0.shared->emission_window_bound(q));
      plans.push_back(shard0.shared->agg_plan_for(q));
    }
  }
  rt->merger_ = std::make_unique<ResultMerger>(num_shards, std::move(windows),
                                               std::move(plans));

#if GRETA_TELEMETRY
  telemetry::MetricRegistry& reg = telemetry::MetricRegistry::Default();
  for (size_t s = 0; s < num_shards; ++s) {
    Shard& shard = *rt->shards_[s];
    shard.tm_depth_hwm = reg.GaugeIf(
        telemetry::Labeled("greta_runtime_queue_depth_hwm", "shard", s));
    shard.tm_stalls = reg.CounterIf(telemetry::Labeled(
        "greta_runtime_producer_stalls_total", "shard", s));
    shard.tm_batch_events = reg.HistogramIf(
        telemetry::Labeled("greta_runtime_batch_events", "shard", s));
    shard.tm_e2e = reg.HistogramIf(
        telemetry::Labeled("greta_runtime_e2e_latency_ns", "shard", s));
  }
  rt->tm_watermark_lag_ = reg.GaugeIf("greta_runtime_watermark_lag");
  rt->tm_watermark_lag_ns_ = reg.GaugeIf("greta_runtime_watermark_lag_ns");
  // Arm router-side arrival stamping when the e2e histograms are live, so
  // scalar Process callers get latency tracking without opting in.
  rt->tm_stamp_arrivals_ = rt->shards_[0]->tm_e2e != nullptr;
  rt->tm_merger_holdback_ =
      reg.GaugeIf("greta_runtime_merger_pending_windows");
  rt->tm_trace_ = reg.TraceIf();
#endif

  rt->pool_ = std::make_unique<ThreadPool>(num_shards);
  ShardedRuntime* raw = rt.get();
  for (size_t s = 0; s < num_shards; ++s) {
    rt->pool_->SubmitPinned(s, [raw, s] { raw->DrainLoop(s); });
  }
  return rt;
}

ShardedRuntime::~ShardedRuntime() {
  shutting_down_.store(true, std::memory_order_release);  // frees paused workers
  for (std::unique_ptr<Shard>& shard : shards_) {
    if (shard->queue != nullptr) shard->queue->Close();
  }
  pool_.reset();  // joins the drain loops before shards_/merger_ die
}

Status ShardedRuntime::Process(const Event& e) {
  if (any_error_.load(std::memory_order_relaxed)) return FirstShardError();
  if (saw_events_ && e.time < clock_) {
    return Status::InvalidArgument(
        "events must arrive in-order by timestamp (Section 2)");
  }
  merger_->ClearFlushed();
  saw_events_ = true;
  clock_ = e.time;
  ++events_processed_;

  RouteOne(e, tm_stamp_arrivals_ ? telemetry::SteadyNowNs() : 0);
  MaybeHeartbeat();
  return Status::Ok();
}

Status ShardedRuntime::ProcessBatch(const EventBatch& batch) {
  if (batch.empty()) return Status::Ok();
  if (any_error_.load(std::memory_order_relaxed)) return FirstShardError();
  if (!batch.time_ordered() ||
      (saw_events_ && batch.time(0) < clock_)) {
    return Status::InvalidArgument(
        "events must arrive in-order by timestamp (Section 2)");
  }
  merger_->ClearFlushed();
  saw_events_ = true;
  // Arrival ticks: propagate the caller's per-row stamps (bench_util's
  // RunStreamBatched stamps at ingest) or, when telemetry wants e2e latency
  // and the batch carries none, stamp the whole batch once now.
  const bool stamped = batch.has_arrivals();
  const uint64_t now_ns =
      (!stamped && tm_stamp_arrivals_) ? telemetry::SteadyNowNs() : 0;
  // Resolve every row's shard up front: the router hashes the shard keys
  // row-wise but runs the avalanche finalization through the dispatched
  // bulk kernel over the whole batch (ShardOfRows == ShardOf per row).
  route_scratch_.resize(batch.size());
  router_.ShardOfRows(batch, route_scratch_.data());
  for (size_t i = 0; i < batch.size(); ++i) {
    clock_ = batch.time(i);
    ++events_processed_;
    DeliverRouted(batch.ref(i), stamped ? batch.arrival_ns(i) : now_ns,
                  route_scratch_[i]);
    MaybeHeartbeat();
  }
  return Status::Ok();
}

void ShardedRuntime::RouteOne(const EventRef& e, uint64_t arrival_ns) {
  DeliverRouted(e, arrival_ns, router_.ShardOf(e));
}

void ShardedRuntime::DeliverRouted(const EventRef& e, uint64_t arrival_ns,
                                   int target) {
  // The arrival column must stay row-aligned even if stamping toggles
  // between fills: a pending batch is stamped iff its FIRST row carried a
  // stamp, and a stamped batch records every later row (0 = unknown).
  auto append_row = [&](EventBatch* pending) {
    const bool stamp =
        pending->empty() ? arrival_ns != 0 : pending->has_arrivals();
    pending->Append(e);
    if (stamp) pending->AppendArrival(arrival_ns);
  };
  if (target == ShardRouter::kBroadcast) {
    for (size_t s = 0; s < shards_.size(); ++s) {
      append_row(&shards_[s]->pending);
      if (shards_[s]->pending.size() >= options_.batch_size) {
        FlushShardBatch(s, /*flush=*/false);
      }
    }
  } else if (target >= 0) {
    Shard& shard = *shards_[target];
    append_row(&shard.pending);
    if (shard.pending.size() >= options_.batch_size) {
      FlushShardBatch(static_cast<size_t>(target), /*flush=*/false);
    }
  }
}

void ShardedRuntime::MaybeHeartbeat() {
  if (options_.heartbeat_events > 0 &&
      ++events_since_heartbeat_ >= options_.heartbeat_events) {
    // Watermark-only heartbeats for idle shards: every shard's clock keeps
    // up with the stream, so the low watermark — and emission — advances
    // even when the key distribution starves some shards.
    for (size_t s = 0; s < shards_.size(); ++s) {
      FlushShardBatch(s, /*flush=*/false);
    }
    events_since_heartbeat_ = 0;
    TelemetryHeartbeat();
  }
}

void ShardedRuntime::TelemetryHeartbeat() {
#if GRETA_TELEMETRY
  // Real-clock watermark lag: the worst shard's distance between NOW and
  // the arrival tick of the newest batch it finished, counted only while
  // work is still queued behind it (an idle shard is caught up, not
  // lagging). Complements greta_runtime_watermark_lag, which measures
  // event-time distance.
  if (tm_watermark_lag_ns_ != nullptr) {
    const uint64_t now_ns = telemetry::SteadyNowNs();
    uint64_t worst = 0;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      if (shard->queue->size() == 0) continue;
      const uint64_t done =
          shard->processed_arrival_ns.load(std::memory_order_relaxed);
      if (done != 0 && now_ns > done) worst = std::max(worst, now_ns - done);
    }
    tm_watermark_lag_ns_->Set(static_cast<double>(worst));
  }
  const Ts lw = merger_->low_watermark();
  if (lw <= kMinTs) return;  // no shard published a clock yet
  GRETA_TM_SET(tm_watermark_lag_, static_cast<double>(clock_ - lw));
  if (tm_trace_ != nullptr && lw > tm_last_low_wm_) {
    telemetry::TraceEvent e;
    e.kind = telemetry::TraceKind::kWatermarkAdvance;
    e.ts = lw;
    e.a = static_cast<uint64_t>(clock_ - lw);  // router lead over the fleet
    e.b = shards_.size();
    tm_trace_->Emit(e);
    tm_last_low_wm_ = lw;
  }
#endif
}

void ShardedRuntime::FlushShardBatch(size_t shard_index, bool flush) {
  Shard& shard = *shards_[shard_index];
  Batch batch;
  // Heartbeats on idle shards are frequent: moving an EMPTY pending batch
  // would hand its reserved columns to a throwaway watermark-only Batch, so
  // only a non-empty pending is moved — and immediately re-reserved for the
  // next fill, keeping the router side allocation-free at steady state.
  if (!shard.pending.empty()) {
    batch.events = std::move(shard.pending);
    shard.pending.Reserve(options_.batch_size);
  }
  batch.watermark = clock_;
  batch.flush = flush;
#if GRETA_TELEMETRY
  GRETA_TM_RECORD(shard.tm_batch_events, batch.events.size());
  GRETA_TM_SETMAX(
      shard.tm_depth_hwm,
      static_cast<double>(shard.queue->depth_high_watermark()));
  if (shard.tm_stalls != nullptr) {
    const size_t stalls = shard.queue->producer_stalls();
    if (stalls > shard.tm_stalls_seen) {
      shard.tm_stalls->Add(stalls - shard.tm_stalls_seen);
      shard.tm_stalls_seen = stalls;
    }
  }
  // About to block on a full ring: record the stall before Push parks.
  if (tm_trace_ != nullptr &&
      shard.queue->size() >= shard.queue->capacity()) {
    telemetry::TraceEvent e;
    e.kind = telemetry::TraceKind::kShardStall;
    e.shard = static_cast<uint16_t>(shard_index);
    e.ts = clock_;
    e.a = shard.queue->size();
    e.b = shard.queue->producer_stalls();
    tm_trace_->Emit(e);
  }
#endif
  shard.queue->Push(std::move(batch));
}

Status ShardedRuntime::Flush() {
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
    flush_acks_ = 0;
    flush_target_ = shards_.size();
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    FlushShardBatch(s, /*flush=*/true);
  }
  {
    std::unique_lock<std::mutex> lock(flush_mu_);
    flush_cv_.wait(lock, [this] { return flush_acks_ >= flush_target_; });
    flush_target_ = 0;
  }
  merger_->MarkFlushed();
  events_since_heartbeat_ = 0;
  TelemetryHeartbeat();
  return FirstShardError();
}

void ShardedRuntime::DrainLoop(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  Batch batch;
  while (shard.queue->Pop(&batch)) {
    // Test hook: a paused worker parks HERE with the popped batch in hand —
    // its clock freezes while the queue behind it fills, which is exactly
    // the wedged-worker signature the stall detector exists to flag.
    while (shard.paused.load(std::memory_order_acquire) &&
           !shutting_down_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    bool healthy;
    {
      std::lock_guard<std::mutex> lock(shard.snapshot_mu);
      healthy = shard.error.ok();
    }
    if (healthy) {
      // Whole-batch delivery: the GRETA engine takes its native columnar
      // path; the shared workload engine goes through the EngineInterface
      // default (row loop). Row order within the batch is arrival order.
      Status status = shard.greta != nullptr
                          ? shard.greta->ProcessBatch(batch.events)
                          : shard.shared->ProcessBatch(batch.events);
      if (status.ok()) {
        status = shard.greta != nullptr
                     ? shard.greta->AdvanceWatermark(batch.watermark)
                     : shard.shared->AdvanceWatermark(batch.watermark);
      }
      if (status.ok() && batch.flush) {
        status = shard.greta != nullptr ? shard.greta->Flush()
                                        : shard.shared->Flush();
      }
      const size_t staged = DrainShardResults(shard_index, &shard);
      if (batch.events.has_arrivals()) {
        shard.processed_arrival_ns.store(batch.events.arrival_ns(0),
                                         std::memory_order_relaxed);
        // End-to-end latency, recorded only for batches that emitted rows:
        // arrival at the router -> rows staged for the merger, covering
        // queue wait + processing + emission. Batches that close no window
        // are skipped — they have no result whose latency could be meant.
        if (staged > 0 && shard.tm_e2e != nullptr) {
          const uint64_t now_ns = telemetry::SteadyNowNs();
          const uint64_t arrived = batch.events.arrival_ns(0);
          if (now_ns > arrived && arrived != 0) {
            shard.tm_e2e->Record(now_ns - arrived);
          }
        }
      }
      {
        std::lock_guard<std::mutex> lock(shard.snapshot_mu);
        if (!status.ok()) {
          shard.error = status;
          any_error_.store(true, std::memory_order_relaxed);
        }
        shard.stats_snapshot = shard.greta != nullptr
                                   ? shard.greta->stats()
                                   : shard.shared->stats();
        shard.query_stats_snapshot =
            shard.greta != nullptr ? shard.greta->query_exec_stats()
                                   : shard.shared->query_exec_stats();
        if (shard.shared != nullptr) {
          shard.adapt_snapshot = shard.shared->adaptation_states();
        }
      }
    }
    // Clock and flush ack even when poisoned: a stalled shard would
    // otherwise freeze the low watermark and deadlock Flush. The clock is
    // the batch watermark even for flush batches — publishing kMaxTs would
    // leave a STALE infinity on a shard that lags behind the others after a
    // mid-stream Flush, letting the merger emit a later window without that
    // shard's rows (and then re-emit it). Flush-time completeness is
    // guaranteed by the ack rendezvous + MarkFlushed instead.
    merger_->PublishClock(shard_index, batch.watermark);
    if (batch.flush) {
      std::lock_guard<std::mutex> lock(flush_mu_);
      ++flush_acks_;
      flush_cv_.notify_all();
    }
    batch = Batch();  // drop event storage before blocking on the queue
  }
}

size_t ShardedRuntime::DrainShardResults(size_t shard_index, Shard* shard) {
  const size_t nq = merger_->num_queries();
  size_t staged = 0;
  for (size_t q = 0; q < nq; ++q) {
    std::vector<ResultRow> rows = shard->greta != nullptr
                                      ? shard->greta->TakeResultsFor(q)
                                      : shard->shared->TakeResults(q);
    if (!rows.empty()) {
      staged += rows.size();
      merger_->Stage(shard_index, q, std::move(rows));
    }
  }
  return staged;
}

std::vector<ResultRow> ShardedRuntime::TakeResults() {
  merger_->Merge();
  GRETA_TM_SET(tm_merger_holdback_,
               static_cast<double>(merger_->pending_windows()));
  std::vector<ResultRow> all;
  for (size_t q = 0; q < merger_->num_queries(); ++q) {
    std::vector<ResultRow> rows = merger_->TakeReady(q);
    all.insert(all.end(), std::make_move_iterator(rows.begin()),
               std::make_move_iterator(rows.end()));
  }
  return all;
}

std::vector<ResultRow> ShardedRuntime::TakeResults(size_t query_id) {
  merger_->Merge();
  GRETA_TM_SET(tm_merger_holdback_,
               static_cast<double>(merger_->pending_windows()));
  return merger_->TakeReady(query_id);
}

const MemoryTracker& ShardedRuntime::shard_memory(size_t shard) const {
  GRETA_CHECK(shard < shards_.size());
  return *shards_[shard]->memory;
}

size_t ShardedRuntime::RecomputeShardTrackedBytes(size_t shard) const {
  GRETA_CHECK(shard < shards_.size());
  const Shard& s = *shards_[shard];
  return s.greta != nullptr ? s.greta->RecomputeTrackedBytes()
                            : s.shared->RecomputeTrackedBytes();
}

std::vector<sharing::AdaptationStats> ShardedRuntime::ShardAdaptationStates(
    size_t shard) const {
  GRETA_CHECK(shard < shards_.size());
  const Shard& s = *shards_[shard];
  if (s.shared == nullptr) return {};
  return s.shared->adaptation_states();
}

ShardedRuntime::ShardQueueStats ShardedRuntime::shard_queue_stats(
    size_t shard) const {
  GRETA_CHECK(shard < shards_.size());
  const SpscQueue<Batch>& q = *shards_[shard]->queue;
  ShardQueueStats out;
  out.capacity = q.capacity();
  out.depth_high_watermark = q.depth_high_watermark();
  out.producer_stalls = q.producer_stalls();
  return out;
}

HealthReport ShardedRuntime::CheckHealth() {
  std::vector<ShardHealthSample> samples;
  samples.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    const SpscQueue<Batch>& q = *shards_[s]->queue;
    ShardHealthSample sample;
    sample.shard = s;
    sample.clock = merger_->shard_clock(s);
    sample.queue_size = q.size();
    sample.queue_capacity = q.capacity();
    sample.producer_stalls = q.producer_stalls();
    samples.push_back(sample);
  }
  std::lock_guard<std::mutex> lock(health_mu_);
  return stall_detector_.Observe(samples);
}

std::vector<QueryExecStats> ShardedRuntime::WorkloadQueryExecStats() const {
  std::vector<QueryExecStats> total(merger_->num_queries());
  for (size_t q = 0; q < total.size(); ++q) total[q].query_id = q;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->snapshot_mu);
    for (const QueryExecStats& s : shard->query_stats_snapshot) {
      if (s.query_id >= total.size()) continue;
      QueryExecStats& acc = total[s.query_id];
      acc.windows_closed += s.windows_closed;
      acc.events_routed += s.events_routed;
      acc.vertices_created += s.vertices_created;
      acc.edges_traversed += s.edges_traversed;
      acc.rows_emitted += s.rows_emitted;
      acc.emit_ns += s.emit_ns;
    }
  }
  return total;
}

std::vector<sharing::AdaptationStats> ShardedRuntime::ShardAdaptationSnapshot(
    size_t shard) const {
  GRETA_CHECK(shard < shards_.size());
  std::lock_guard<std::mutex> lock(shards_[shard]->snapshot_mu);
  return shards_[shard]->adapt_snapshot;
}

const sharing::SharingPlan* ShardedRuntime::sharing_plan() const {
  const Shard& shard0 = *shards_[0];
  return shard0.shared != nullptr ? &shard0.shared->sharing_plan() : nullptr;
}

void ShardedRuntime::SetShardPausedForTest(size_t shard, bool paused) {
  GRETA_CHECK(shard < shards_.size());
  shards_[shard]->paused.store(paused, std::memory_order_release);
}

size_t ShardedRuntime::TotalMigrations() const {
  size_t n = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->shared != nullptr) n += shard->shared->total_migrations();
  }
  return n;
}

Status ShardedRuntime::FirstShardError() const {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->snapshot_mu);
    if (!shard->error.ok()) return shard->error;
  }
  return Status::Ok();
}

const EngineStats& ShardedRuntime::stats() const {
  EngineStats total;
  total.events_processed = events_processed_;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->snapshot_mu);
    const EngineStats& s = shard->stats_snapshot;
    total.vertices_stored += s.vertices_stored;
    total.edges_traversed += s.edges_traversed;
    total.work_units += s.work_units;
  }
  total.peak_bytes = total_memory_.peak_bytes();
  stats_ = total;
  return stats_;
}

}  // namespace greta::runtime
