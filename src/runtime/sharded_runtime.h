#ifndef GRETA_RUNTIME_SHARDED_RUNTIME_H_
#define GRETA_RUNTIME_SHARDED_RUNTIME_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "common/memory.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "runtime/health.h"
#include "runtime/result_merger.h"
#include "runtime/shard_router.h"
#include "runtime/spsc_queue.h"
#include "sharing/shared_engine.h"

namespace greta::runtime {

/// Options of the sharded parallel runtime.
struct ShardedOptions {
  /// Requested shard count; clamped to 1 when the workload has no common
  /// partition key (ShardRouter).
  size_t num_shards = 1;
  /// Events per ingest batch: a shard's pending events are enqueued to its
  /// SPSC queue once this many accumulate (or on heartbeat / Flush).
  size_t batch_size = 256;
  /// Per-shard ingest queue capacity, in batches; a full queue blocks the
  /// router (backpressure).
  size_t queue_capacity = 16;
  /// Every this many Process calls the router flushes EVERY shard's pending
  /// batch — including empty, watermark-only heartbeats — so idle shards
  /// keep publishing fresh clocks and the low watermark (hence emission)
  /// keeps advancing. 0 disables heartbeats (emission then waits for batch
  /// fills and Flush).
  size_t heartbeat_events = 1024;
  /// Per-shard workload options. `engine.num_threads` should stay 1: the
  /// runtime's parallelism is across shards, and nested per-engine pools
  /// would oversubscribe cores. `engine.memory` is overwritten (each shard
  /// accounts into its own tracker, rolled up workload-wide).
  sharing::SharedEngineOptions workload;
};

/// Sharded parallel runtime: one workload executed across N shards
/// in-process, each shard owning a private engine over the full workload
/// and receiving the slice of the stream that hashes to it.
///
///   Process(e) ── ShardRouter ──> per-shard SPSC batch queues
///                                   │ (pinned worker per shard)
///                                   ▼
///                    GretaEngine / SharedWorkloadEngine per shard
///                    (own pane arenas, own MemoryTracker, rolled up)
///                                   │ rows + ingest clock
///                                   ▼
///            ResultMerger: low-watermark-gated deterministic merge
///
/// Because the shard key is (a prefix of) every query's partition key,
/// trends never span shards and each shard computes exactly the rows of its
/// partitions; the merger recombines them in deterministic (window, group)
/// order identical to single-threaded execution (see result_merger.h for
/// the floating-point caveat on SUM/AVG).
///
/// EngineInterface contract: Process() in non-decreasing time order;
/// TakeResults() drains merged rows whose windows the low watermark has
/// passed, every query concatenated in query order; Flush() blocks until
/// every shard drained its queue and flushed its engine. Workers never
/// touch the caller's thread; Process/Flush/TakeResults must come from one
/// driver thread at a time.
class ShardedRuntime : public EngineInterface {
 public:
  static StatusOr<std::unique_ptr<ShardedRuntime>> Create(
      const Catalog* catalog, const std::vector<QuerySpec>& workload,
      const ShardedOptions& options = {});

  ~ShardedRuntime() override;

  Status Process(const Event& e) override;
  /// Columnar ingest: routes the batch row-wise into per-shard columnar
  /// pending batches (no per-event Event materialization on the router
  /// side); shard workers then feed whole batches to their engine's native
  /// batch path. Row-for-row equivalent to calling Process on each row.
  Status ProcessBatch(const EventBatch& batch) override;
  Status Flush() override;

  /// Merged rows of every query whose windows are fully closed across all
  /// shards, concatenated in query order.
  std::vector<ResultRow> TakeResults() override;

  /// Merged ready rows of one query.
  std::vector<ResultRow> TakeResults(size_t query_id);

  size_t num_queries() const { return merger_->num_queries(); }
  /// Effective shard count (1 when the workload is not partitionable).
  size_t num_shards() const { return shards_.size(); }
  bool partitioned() const { return router_.partitioned(); }
  const ShardRouter& router() const { return router_; }

  /// Minimum over shard ingest clocks — emission is gated on it.
  Ts low_watermark() const { return merger_->low_watermark(); }

  /// Workload-wide memory roll-up (every shard's tracker is its child).
  const MemoryTracker& memory() const { return total_memory_; }
  /// Shard-local tracker (children of memory()).
  const MemoryTracker& shard_memory(size_t shard) const;
  /// Re-derives shard `shard`'s tracked bytes by walking its engine.
  /// Only valid while the runtime is quiescent (after Flush, before the
  /// next Process) — the walk is not synchronized with the shard worker.
  size_t RecomputeShardTrackedBytes(size_t shard) const;

  /// Adaptation telemetry of shard `shard`'s controller (one entry per
  /// sharing-plan cluster; see SharedWorkloadEngine::adaptation_states).
  /// Each shard adapts independently — its controller observes only its
  /// slice of the stream — so shards may sit in different modes; the
  /// merged rows are identical either way. Empty for single-query
  /// workloads (no sharing layer). Quiescent-only, like
  /// RecomputeShardTrackedBytes.
  std::vector<sharing::AdaptationStats> ShardAdaptationStates(
      size_t shard) const;
  /// Sum of applied migrations across all shards' controllers.
  /// Quiescent-only.
  size_t TotalMigrations() const;

  /// Ingest-queue pressure counters of shard `shard`, maintained inside the
  /// SPSC channel itself (readable any time, any thread).
  struct ShardQueueStats {
    size_t capacity = 0;
    /// Max occupancy (batches) ever observed right after a router push.
    size_t depth_high_watermark = 0;
    /// Router pushes that parked on a full ring (backpressure episodes).
    size_t producer_stalls = 0;
  };
  ShardQueueStats shard_queue_stats(size_t shard) const;

  /// One stall-detector observation over every shard (merger-published
  /// clocks + queue occupancy + producer stalls — all any-thread-safe
  /// reads). Stateful: a stall needs two consecutive observations with a
  /// frozen clock and a non-empty queue (see runtime/health.h), so the
  /// /healthz handler converges after two polls. Thread-safe.
  HealthReport CheckHealth();

  /// Per-query EXPLAIN ANALYZE tallies summed across shards, from the
  /// snapshots each worker refreshes after its last processed batch (same
  /// discipline as stats()). Every shard closes the same window grid over
  /// its slice, so windows_closed is the across-shard sum of closes and
  /// structural counters sum exactly like EngineStats. Thread-safe.
  std::vector<QueryExecStats> WorkloadQueryExecStats() const;

  /// Adaptation telemetry snapshot of shard `shard` (worker-refreshed,
  /// like WorkloadQueryExecStats) — the thread-safe counterpart of
  /// ShardAdaptationStates for live scrapes. Empty for single-query
  /// workloads.
  std::vector<sharing::AdaptationStats> ShardAdaptationSnapshot(
      size_t shard) const;

  /// The sharing plan compiled for every shard's workload runtime
  /// (immutable after Create; identical across shards), or nullptr for
  /// single-query workloads. Carries the planner's per-cluster cost
  /// ESTIMATES that EXPLAIN ANALYZE joins against observed work.
  const sharing::SharingPlan* sharing_plan() const;

  /// Test hook: wedges shard `shard`'s worker (it parks after its next
  /// queue pop, holding the batch unprocessed, clock frozen) until
  /// unpaused. Drives the stall detector's unhealthy path in tests.
  void SetShardPausedForTest(size_t shard, bool paused);

  /// Aggregated stats: events counted at the router; vertices / edges /
  /// work summed over per-shard snapshots (taken by each worker after its
  /// last processed batch); peak_bytes from the workload roll-up tracker.
  const EngineStats& stats() const override;
  const AggPlan& agg_plan() const override { return merger_->agg_plan(0); }
  const AggPlan& agg_plan_for(size_t query_id) const {
    return merger_->agg_plan(query_id);
  }
  std::string name() const override { return "SHARDED"; }

 private:
  // The unit shipped through a shard's SPSC queue. `events` is columnar:
  // the router appends rows column-wise and the worker hands the whole
  // batch to the engine's native batch path. A default-constructed batch
  // with empty events is a watermark-only heartbeat.
  struct Batch {
    EventBatch events;
    Ts watermark = kMinTs;
    bool flush = false;
  };

  struct Shard {
    std::unique_ptr<MemoryTracker> memory;  // child of total_memory_
    // Exactly one of the two engines is set: a plain GRETA runtime for
    // single-query workloads, the sharing-planned workload runtime else.
    std::unique_ptr<GretaEngine> greta;
    std::unique_ptr<sharing::SharedWorkloadEngine> shared;
    std::unique_ptr<SpscQueue<Batch>> queue;
    EventBatch pending;  // router side, pre-batch (columnar)
    std::mutex snapshot_mu;
    EngineStats stats_snapshot;
    Status error = Status::Ok();  // guarded by snapshot_mu
    // Worker-refreshed observability snapshots (guarded by snapshot_mu):
    // read by HTTP scrape threads, never by the hot path.
    std::vector<QueryExecStats> query_stats_snapshot;
    std::vector<sharing::AdaptationStats> adapt_snapshot;

    // Test hook (SetShardPausedForTest): worker parks after its next pop.
    std::atomic<bool> paused{false};
    // Arrival tick of the newest batch this worker finished processing
    // (0 until a stamped batch arrives) — real-clock watermark lag input.
    std::atomic<uint64_t> processed_arrival_ns{0};

    // Telemetry series (null when disarmed), mirrored by the router at
    // batch-flush granularity; tm_stalls_seen tracks the last mirrored
    // cumulative stall count (router thread only).
    telemetry::Gauge* tm_depth_hwm = nullptr;
    telemetry::Counter* tm_stalls = nullptr;
    telemetry::Histogram* tm_batch_events = nullptr;
    telemetry::Histogram* tm_e2e = nullptr;  // arrival -> emit, worker side
    size_t tm_stalls_seen = 0;
  };

  ShardedRuntime() = default;

  void DrainLoop(size_t shard_index);
  // Stages drained rows with the merger; returns how many rows were staged
  // (the e2e latency recorder only samples batches that emitted).
  size_t DrainShardResults(size_t shard_index, Shard* shard);
  // Appends one routed event (and its arrival tick when non-zero) to its
  // shard(s)' pending batch, flushing any batch that reached batch_size.
  // Shared by Process and ProcessBatch.
  void RouteOne(const EventRef& e, uint64_t arrival_ns);
  // Same, with the routing decision (ShardOf's result) precomputed —
  // ProcessBatch resolves the whole batch up front through the router's
  // bulk-finalized ShardOfRows and feeds the decisions here row by row.
  void DeliverRouted(const EventRef& e, uint64_t arrival_ns, int target);
  void MaybeHeartbeat();
  void FlushShardBatch(size_t shard_index, bool flush);
  Status FirstShardError() const;
  // Updates the watermark-lag gauge and emits a kWatermarkAdvance trace
  // when the low watermark moved (heartbeat / Flush granularity).
  void TelemetryHeartbeat();

  const Catalog* catalog_ = nullptr;
  ShardRouter router_;
  ShardedOptions options_;
  std::vector<int> route_scratch_;  // per-row ShardOfRows decisions

  // Destruction order matters: workers reference shards_ and merger_, so
  // pool_ (declared last) is destroyed first — the destructor closes every
  // queue beforehand so the drain loops exit.
  MemoryTracker total_memory_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ResultMerger> merger_;

  // Router-side stream state.
  Ts clock_ = kMinTs;
  bool saw_events_ = false;
  size_t events_since_heartbeat_ = 0;
  size_t events_processed_ = 0;

  // Flush rendezvous.
  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  size_t flush_acks_ = 0;
  size_t flush_target_ = 0;

  std::atomic<bool> any_error_{false};
  std::atomic<bool> shutting_down_{false};  // releases paused workers
  mutable EngineStats stats_;

  // Stall-detector state (mutex: /healthz scrapes may overlap).
  std::mutex health_mu_;
  StallDetector stall_detector_;

  // Runtime-wide telemetry (null when disarmed).
  telemetry::Gauge* tm_watermark_lag_ = nullptr;
  telemetry::Gauge* tm_watermark_lag_ns_ = nullptr;  // real-clock lag
  telemetry::Gauge* tm_merger_holdback_ = nullptr;
  telemetry::TraceRing* tm_trace_ = nullptr;
  Ts tm_last_low_wm_ = kMinTs;  // router thread only
  // Stamp arrivals at the router when telemetry wants e2e latency even if
  // the caller's batches carry no arrival column.
  bool tm_stamp_arrivals_ = false;

  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace greta::runtime

#endif  // GRETA_RUNTIME_SHARDED_RUNTIME_H_
