#include "runtime/health.h"

#include <cinttypes>
#include <cstdio>

namespace greta::runtime {

std::string HealthReport::ToJson() const {
  std::string out = "{\"healthy\":";
  out += healthy ? "true" : "false";
  out += ",\"backpressure\":";
  out += backpressure ? "true" : "false";
  out += ",\"shards\":[";
  char buf[192];
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardHealth& s = shards[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"shard\":%zu,\"clock\":%lld,\"queue_size\":%zu,"
                  "\"queue_capacity\":%zu,\"producer_stalls\":%zu,"
                  "\"stalled\":%s,\"backpressure\":%s}",
                  i == 0 ? "" : ",", s.shard,
                  static_cast<long long>(s.clock), s.queue_size,
                  s.queue_capacity, s.producer_stalls,
                  s.stalled ? "true" : "false",
                  s.backpressure ? "true" : "false");
    out += buf;
  }
  out += "]}";
  return out;
}

HealthReport StallDetector::Observe(
    const std::vector<ShardHealthSample>& samples) {
  if (prev_.size() < samples.size()) prev_.resize(samples.size());
  HealthReport report;
  report.shards.reserve(samples.size());
  for (const ShardHealthSample& sample : samples) {
    ShardHealth h;
    h.shard = sample.shard;
    h.clock = sample.clock;
    h.queue_size = sample.queue_size;
    h.queue_capacity = sample.queue_capacity;
    h.producer_stalls = sample.producer_stalls;

    PrevSample& prev = prev_[sample.shard];
    const bool nonempty = sample.queue_size > 0;
    if (prev.valid) {
      h.stalled = nonempty && prev.queue_nonempty && sample.clock == prev.clock;
      h.backpressure = sample.producer_stalls > prev.producer_stalls;
    }
    prev.clock = sample.clock;
    prev.producer_stalls = sample.producer_stalls;
    prev.queue_nonempty = nonempty;
    prev.valid = true;

    report.healthy = report.healthy && !h.stalled;
    report.backpressure = report.backpressure || h.backpressure;
    report.shards.push_back(h);
  }
  return report;
}

}  // namespace greta::runtime
