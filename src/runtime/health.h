#ifndef GRETA_RUNTIME_HEALTH_H_
#define GRETA_RUNTIME_HEALTH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"

namespace greta::runtime {

/// One shard's instantaneous progress signals, gathered from reads that are
/// safe from any thread: the merger-published ingest clock, the SPSC
/// queue's occupancy and the cumulative producer-stall count.
struct ShardHealthSample {
  size_t shard = 0;
  Ts clock = kMinTs;         // last published ingest clock
  size_t queue_size = 0;     // batches currently in the SPSC ring
  size_t queue_capacity = 0;
  size_t producer_stalls = 0;  // cumulative router parks on a full ring
};

/// Per-shard verdict of one detector observation.
struct ShardHealth {
  size_t shard = 0;
  Ts clock = kMinTs;
  size_t queue_size = 0;
  size_t queue_capacity = 0;
  size_t producer_stalls = 0;
  /// Watermark frozen while work is queued: the clock did not advance
  /// between two consecutive observations and the queue was non-empty on
  /// both — the worker is wedged, not merely idle.
  bool stalled = false;
  /// Producer stalls grew since the previous observation: the router is
  /// parking on this shard's full ring. Reported, not unhealthy — bounded
  /// queues are SUPPOSED to exert backpressure under load.
  bool backpressure = false;
};

/// Aggregate health of the sharded runtime: unhealthy iff any shard is
/// stalled. Rendered by /healthz (HTTP 200 / 503 keyed on `healthy`).
struct HealthReport {
  bool healthy = true;
  bool backpressure = false;  // any shard's producer stalls grew
  std::vector<ShardHealth> shards;
  std::string ToJson() const;
};

/// Two-observation stall detector. A single snapshot cannot distinguish a
/// wedged worker from one mid-batch, so the detector keeps the previous
/// observation per shard and flags a stall only when the clock holds still
/// across BOTH observations while the queue stays non-empty. The first
/// observation therefore never reports a stall; scrape-driven callers (the
/// /healthz handler) converge after two polls.
class StallDetector {
 public:
  HealthReport Observe(const std::vector<ShardHealthSample>& samples);

 private:
  struct PrevSample {
    Ts clock = kMinTs;
    size_t producer_stalls = 0;
    bool queue_nonempty = false;
    bool valid = false;
  };
  std::vector<PrevSample> prev_;
};

}  // namespace greta::runtime

#endif  // GRETA_RUNTIME_HEALTH_H_
