#include "runtime/observability.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "runtime/sharded_runtime.h"

namespace greta::runtime {

namespace {

void AppendKV(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

const sharing::QueryCluster* ClusterOf(const sharing::SharingPlan* plan,
                                       size_t query_id, size_t* index) {
  if (plan == nullptr) return nullptr;
  for (size_t i = 0; i < plan->clusters.size(); ++i) {
    for (size_t qid : plan->clusters[i].query_ids) {
      if (qid == query_id) {
        *index = i;
        return &plan->clusters[i];
      }
    }
  }
  return nullptr;
}

const char* ModeName(sharing::ClusterMode mode) {
  return mode == sharing::ClusterMode::kMerged ? "merged" : "dedicated";
}

// The estimated-vs-observed join for one query, shared by the JSON and the
// human rendering. Observed structural cost per event mirrors the planner's
// unit: graph work (vertices + edges) per routed event.
struct QueryReport {
  bool valid = false;
  QueryExecStats observed;
  double observed_cost_per_event = 0.0;
  const sharing::QueryCluster* cluster = nullptr;  // null: single-query
  size_t cluster_index = 0;
  bool has_adaptive = false;
  sharing::AdaptationStats adaptive;  // shard 0's controller
};

QueryReport BuildReport(const ShardedRuntime& runtime, size_t query_id) {
  QueryReport r;
  std::vector<QueryExecStats> all = runtime.WorkloadQueryExecStats();
  if (query_id >= all.size()) return r;
  r.valid = true;
  r.observed = all[query_id];
  if (r.observed.events_routed > 0) {
    r.observed_cost_per_event =
        static_cast<double>(r.observed.vertices_created +
                            r.observed.edges_traversed) /
        static_cast<double>(r.observed.events_routed);
  }
  r.cluster = ClusterOf(runtime.sharing_plan(), query_id, &r.cluster_index);
  if (r.cluster != nullptr) {
    // Each shard adapts independently over its slice; shard 0's controller
    // stands in for the fleet (the report labels it as such).
    std::vector<sharing::AdaptationStats> adapt =
        runtime.ShardAdaptationSnapshot(0);
    if (r.cluster_index < adapt.size()) {
      r.has_adaptive = true;
      r.adaptive = adapt[r.cluster_index];
    }
  }
  return r;
}

void AppendReportJson(std::string* out, const QueryReport& r) {
  AppendKV(out,
           "{\"query_id\":%zu,\"observed\":{\"windows_closed\":%zu,"
           "\"events_routed\":%zu,\"vertices_created\":%zu,"
           "\"edges_traversed\":%zu,\"rows_emitted\":%zu,\"emit_ns\":%llu,"
           "\"cost_per_event\":%.4f}",
           r.observed.query_id, r.observed.windows_closed,
           r.observed.events_routed, r.observed.vertices_created,
           r.observed.edges_traversed, r.observed.rows_emitted,
           static_cast<unsigned long long>(r.observed.emit_ns),
           r.observed_cost_per_event);
  if (r.cluster != nullptr) {
    AppendKV(out,
             ",\"cluster\":{\"index\":%zu,\"queries\":%zu,\"shared\":%s,"
             "\"partial\":%s,\"estimated_shared_cost_per_event\":%.4f,"
             "\"estimated_independent_cost_per_event\":%.4f}",
             r.cluster_index, r.cluster->query_ids.size(),
             r.cluster->shared ? "true" : "false",
             r.cluster->partial ? "true" : "false", r.cluster->shared_cost,
             r.cluster->independent_cost);
  }
  if (r.has_adaptive) {
    AppendKV(out,
             ",\"adaptive_shard0\":{\"mode\":\"%s\",\"migrations\":%zu,"
             "\"q_hat\":%.6f,\"cost_merged\":%.2f,\"cost_dedicated\":%.2f,"
             "\"mean_events\":%.2f,\"burstiness\":%.4f}",
             ModeName(r.adaptive.mode), r.adaptive.migrations,
             r.adaptive.q_hat, r.adaptive.cost_merged,
             r.adaptive.cost_dedicated, r.adaptive.mean_events,
             r.adaptive.burstiness);
  }
  *out += "}";
}

}  // namespace

std::string QueryReportsJson(const ShardedRuntime& runtime) {
  std::string out = "[";
  const size_t nq = runtime.num_queries();
  for (size_t q = 0; q < nq; ++q) {
    if (q > 0) out += ",";
    AppendReportJson(&out, BuildReport(runtime, q));
  }
  out += "]";
  return out;
}

std::string QueryReportJson(const ShardedRuntime& runtime, size_t query_id) {
  QueryReport r = BuildReport(runtime, query_id);
  if (!r.valid) return "";
  std::string out;
  AppendReportJson(&out, r);
  return out;
}

std::string ExplainAnalyze(const ShardedRuntime& runtime, size_t query_id) {
  QueryReport r = BuildReport(runtime, query_id);
  if (!r.valid) return "unknown query\n";
  std::string out;
  AppendKV(&out, "== EXPLAIN ANALYZE query %zu ==\n", query_id);
  AppendKV(&out,
           "observed:  windows_closed=%zu events_routed=%zu "
           "vertices_created=%zu edges_traversed=%zu rows_emitted=%zu "
           "emit_ms=%.3f\n",
           r.observed.windows_closed, r.observed.events_routed,
           r.observed.vertices_created, r.observed.edges_traversed,
           r.observed.rows_emitted,
           static_cast<double>(r.observed.emit_ns) / 1e6);
  AppendKV(&out, "observed structural cost/event: %.4f\n",
           r.observed_cost_per_event);
  if (r.cluster != nullptr) {
    AppendKV(&out,
             "plan:      cluster %zu (%zu queries, %s%s) estimated "
             "cost/event shared=%.4f independent=%.4f\n",
             r.cluster_index, r.cluster->query_ids.size(),
             r.cluster->shared ? "SHARED" : "DEDICATED",
             r.cluster->partial ? ", partial" : "", r.cluster->shared_cost,
             r.cluster->independent_cost);
  } else {
    out += "plan:      single-query workload (no sharing layer)\n";
  }
  if (r.has_adaptive) {
    AppendKV(&out,
             "adaptive (shard 0): mode=%s migrations=%zu q_hat=%.6f "
             "cost_merged=%.2f cost_dedicated=%.2f mean_events=%.2f "
             "burstiness=%.4f\n",
             ModeName(r.adaptive.mode), r.adaptive.migrations,
             r.adaptive.q_hat, r.adaptive.cost_merged,
             r.adaptive.cost_dedicated, r.adaptive.mean_events,
             r.adaptive.burstiness);
  }
  return out;
}

void AttachRuntimeObservability(telemetry::HttpServer* server,
                                ShardedRuntime* runtime) {
  using Response = telemetry::HttpServer::Response;
  server->SetHandler("/healthz", [runtime](const std::string&) {
    HealthReport report = runtime->CheckHealth();
    return Response{report.healthy ? 200 : 503, "application/json",
                    report.ToJson()};
  });
  server->SetHandler("/queries", [runtime](const std::string& rest) {
    if (rest.empty() || rest == "/") {
      return Response{200, "application/json", QueryReportsJson(*runtime)};
    }
    char* end = nullptr;
    const unsigned long id = std::strtoul(rest.c_str() + 1, &end, 10);
    if (end == rest.c_str() + 1 || *end != '\0') {
      return Response{404, "text/plain", "bad query id\n"};
    }
    std::string body = QueryReportJson(*runtime, static_cast<size_t>(id));
    if (body.empty()) {
      return Response{404, "text/plain", "unknown query\n"};
    }
    return Response{200, "application/json", body};
  });
}

}  // namespace greta::runtime
