#include "runtime/shard_router.h"

#include <algorithm>

#include "common/simd.h"

namespace greta::runtime {

StatusOr<ShardRouter> ShardRouter::Create(
    const std::vector<QuerySpec>& workload, const Catalog& catalog,
    size_t num_shards, const PlannerOptions& options) {
  if (workload.empty()) {
    return Status::InvalidArgument("sharded runtime needs at least one query");
  }
  if (num_shards == 0) num_shards = 1;

  // Plan each query once to resolve its partition-key attributes and the
  // set of event types it touches — the exact resolution the engine's route
  // table uses (planner.cc), so router and engine partition identically.
  std::vector<std::vector<std::string>> per_query_keys;
  std::vector<TypeId> relevant_types;
  per_query_keys.reserve(workload.size());
  for (const QuerySpec& spec : workload) {
    StatusOr<std::unique_ptr<ExecPlan>> plan =
        BuildPlan(spec, catalog, options);
    if (!plan.ok()) return plan.status();
    per_query_keys.push_back(plan.value()->key_attrs);
    for (const auto& [type, ids] : plan.value()->key_attr_ids) {
      (void)ids;
      relevant_types.push_back(type);
    }
  }

  // Shard key = intersection of every query's partition key, in query 0's
  // order (deterministic across runs and shard counts).
  ShardRouter router;
  for (const std::string& attr : per_query_keys[0]) {
    bool everywhere = true;
    for (size_t q = 1; q < per_query_keys.size(); ++q) {
      if (std::find(per_query_keys[q].begin(), per_query_keys[q].end(),
                    attr) == per_query_keys[q].end()) {
        everywhere = false;
        break;
      }
    }
    if (everywhere) router.shard_key_attrs_.push_back(attr);
  }

  router.partitioned_ = !router.shard_key_attrs_.empty();
  router.num_shards_ = router.partitioned_ ? num_shards : 1;

  for (TypeId type : relevant_types) {
    if (static_cast<size_t>(type) >= router.routes_.size()) {
      router.routes_.resize(type + 1);
    }
    TypeRoute& route = router.routes_[type];
    if (route.relevant) continue;  // resolved for an earlier query
    route.relevant = true;
    route.full = true;
    const EventTypeDef& def = catalog.type(type);
    for (const std::string& attr : router.shard_key_attrs_) {
      AttrId id = def.FindAttr(attr);
      route.ids.push_back(id);
      route.full &= (id != kInvalidAttr);
    }
  }
  return router;
}

void ShardRouter::ShardOfRows(const EventBatch& batch, int* out) const {
  const size_t n = batch.size();
  hash_scratch_.clear();
  row_scratch_.clear();
  for (size_t i = 0; i < n; ++i) {
    const TypeId type = batch.type(i);
    if (static_cast<size_t>(type) >= routes_.size() ||
        !routes_[type].relevant) {
      out[i] = kDrop;
      continue;
    }
    if (num_shards_ == 1) {
      out[i] = 0;
      continue;
    }
    const TypeRoute& route = routes_[type];
    if (!route.full) {
      out[i] = kBroadcast;
      continue;
    }
    const EventRef e = batch.ref(i);
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (AttrId id : route.ids) {
      h = h * 1099511628211ULL ^ e.attr(id).Hash();
    }
    hash_scratch_.push_back(h);
    row_scratch_.push_back(static_cast<uint32_t>(i));
  }
  if (hash_scratch_.empty()) return;
  simd::Dispatch().splitmix_bulk(hash_scratch_.data(), hash_scratch_.size());
  for (size_t k = 0; k < hash_scratch_.size(); ++k) {
    out[row_scratch_[k]] =
        static_cast<int>(hash_scratch_[k] % num_shards_);
  }
}

std::string ShardRouter::ToString(const Catalog& catalog) const {
  std::string out = "shards: " + std::to_string(num_shards_);
  if (!partitioned_) {
    out += " (no common partition key; all events route to shard 0)";
    return out;
  }
  out += "; shard key:";
  for (const std::string& attr : shard_key_attrs_) out += " " + attr;
  for (size_t t = 0; t < routes_.size(); ++t) {
    if (!routes_[t].relevant) continue;
    out += "\n  " + catalog.type(static_cast<TypeId>(t)).name + ": ";
    out += routes_[t].full ? "hashed" : "broadcast (lacks shard-key attrs)";
  }
  return out;
}

}  // namespace greta::runtime
