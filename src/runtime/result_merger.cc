#include "runtime/result_merger.h"

#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "storage/window.h"

namespace greta::runtime {

ResultMerger::ResultMerger(size_t num_shards,
                           std::vector<WindowSpec> emission_windows,
                           std::vector<AggPlan> agg_plans)
    : num_shards_(num_shards),
      emission_windows_(std::move(emission_windows)),
      agg_plans_(std::move(agg_plans)) {
  GRETA_CHECK(emission_windows_.size() == agg_plans_.size());
  stages_.reserve(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    stages_.push_back(std::make_unique<ShardStage>());
    stages_.back()->per_query.resize(emission_windows_.size());
  }
  pending_.resize(emission_windows_.size());
  ready_.resize(emission_windows_.size());
}

void ResultMerger::Stage(size_t shard, size_t query,
                         std::vector<ResultRow> rows) {
  GRETA_DCHECK(shard < num_shards_ && query < emission_windows_.size());
  if (rows.empty()) return;
  ShardStage& stage = *stages_[shard];
  std::lock_guard<std::mutex> lock(stage.mu);
  std::vector<ResultRow>& staged = stage.per_query[query];
  staged.insert(staged.end(), std::make_move_iterator(rows.begin()),
                std::make_move_iterator(rows.end()));
}

void ResultMerger::PublishClock(size_t shard, Ts clock) {
  GRETA_DCHECK(shard < num_shards_);
  stages_[shard]->clock.store(clock, std::memory_order_release);
}

Ts ResultMerger::low_watermark() const {
  Ts low = kMaxTs;
  for (const std::unique_ptr<ShardStage>& stage : stages_) {
    Ts c = stage->clock.load(std::memory_order_acquire);
    if (c < low) low = c;
  }
  return low;
}

void ResultMerger::Merge() {
  // Read the clocks BEFORE harvesting: a shard publishes its clock only
  // after staging everything up to it, so whatever clock we observe is a
  // promise the harvest below has already fulfilled.
  const Ts low = flushed_ ? kMaxTs : low_watermark();

  const size_t nq = emission_windows_.size();
  for (size_t s = 0; s < num_shards_; ++s) {
    ShardStage& stage = *stages_[s];
    std::lock_guard<std::mutex> lock(stage.mu);
    for (size_t q = 0; q < nq; ++q) {
      std::vector<ResultRow>& staged = stage.per_query[q];
      if (staged.empty()) continue;
      for (ResultRow& row : staged) {
        std::vector<std::vector<ResultRow>>& per_shard =
            pending_[q]
                .try_emplace(row.wid, num_shards_)
                .first->second;
        per_shard[s].push_back(std::move(row));
      }
      staged.clear();
    }
  }

  for (size_t q = 0; q < nq; ++q) {
    const WindowSpec& window = emission_windows_[q];
    const AggPlan& plan = agg_plans_[q];
    auto it = pending_[q].begin();
    while (it != pending_[q].end()) {
      const bool window_ready =
          flushed_ ||
          (!window.unbounded() && WindowCloseTime(it->first, window) <= low);
      if (!window_ready) break;  // ascending map: later windows close later
      std::unordered_map<std::vector<Value>, AggOutputs, ValueVecHash,
                         ValueVecEq>
          merged;
      std::vector<std::vector<Value>> order;  // first-seen group order
      for (std::vector<ResultRow>& shard_rows : it->second) {
        for (ResultRow& row : shard_rows) {
          auto [slot, inserted] = merged.try_emplace(row.group);
          if (inserted) order.push_back(row.group);
          slot->second.Merge(row.aggs, plan);
        }
      }
      std::vector<ResultRow> rows;
      rows.reserve(order.size());
      for (std::vector<Value>& group : order) {
        ResultRow row;
        row.wid = it->first;
        row.aggs = std::move(merged[group]);
        row.group = std::move(group);
        rows.push_back(std::move(row));
      }
      SortRows(&rows);
      std::vector<ResultRow>& out = ready_[q];
      out.insert(out.end(), std::make_move_iterator(rows.begin()),
                 std::make_move_iterator(rows.end()));
      it = pending_[q].erase(it);
    }
  }
}

void ResultMerger::MarkFlushed() {
  flushed_ = true;
  Merge();
}

void ResultMerger::ClearFlushed() { flushed_ = false; }

std::vector<ResultRow> ResultMerger::TakeReady(size_t query) {
  GRETA_CHECK(query < ready_.size());
  std::vector<ResultRow> out = std::move(ready_[query]);
  ready_[query].clear();
  return out;
}

bool ResultMerger::HasReady() const {
  for (const std::vector<ResultRow>& rows : ready_) {
    if (!rows.empty()) return true;
  }
  return false;
}

}  // namespace greta::runtime
