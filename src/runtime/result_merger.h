#ifndef GRETA_RUNTIME_RESULT_MERGER_H_
#define GRETA_RUNTIME_RESULT_MERGER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/engine_interface.h"
#include "query/query.h"

namespace greta::runtime {

/// Watermark-gated deterministic merge of per-shard result rows.
///
/// Every shard runs the SAME compiled plan over its slice of the stream, so
/// for one (query, window) each shard independently emits rows for the
/// groups whose partitions it owns; groups whose partitions span shards
/// appear on several (the partition key may extend the GROUP-BY key with
/// equivalence attributes). The merger:
///
///  1. collects rows staged by each shard's pinned worker (one lightly
///     contended mutex per shard — worker and harvester only);
///  2. gates emission on the LOW WATERMARK, the minimum over per-shard
///     ingest clocks published AFTER the shard staged everything it will
///     ever emit up to that clock — a window is merged only once every
///     shard's clock passed its close time on the query's emission grid;
///  3. merges a ready window's rows group-wise via AggOutputs::Merge in
///     ascending shard order, sorts with the engines' own SortRows, and
///     appends to the per-query ready queue in ascending window order.
///
/// The result is the single-threaded engine's emission order — (window,
/// group) ascending per query — independent of shard count and thread
/// timing. Counts (exact or modular) are bit-identical to single-threaded
/// execution because counter addition is associative and commutative;
/// MIN/MAX likewise; floating-point SUM/AVG can differ in the last ulp
/// because summation order over partitions differs (the single engine's own
/// partition iteration order is hash-map dependent too).
class ResultMerger {
 public:
  /// `emission_windows[q]` is the grid on which query q's unit runtime
  /// actually emits (the cluster union window under partial sharing);
  /// `agg_plans[q]` drives the group-wise merge.
  ResultMerger(size_t num_shards, std::vector<WindowSpec> emission_windows,
               std::vector<AggPlan> agg_plans);

  // --- shard-worker side (shard s's pinned worker only) ---

  /// Stages rows of `query` emitted by shard `shard`.
  void Stage(size_t shard, size_t query, std::vector<ResultRow> rows);

  /// Publishes shard `shard`'s ingest clock. Contract: every row the shard
  /// will ever emit for windows closing at or before `clock` has been
  /// staged first. kMaxTs after the shard flushed.
  void PublishClock(size_t shard, Ts clock);

  // --- caller side (the runtime's driver thread) ---

  /// Harvests staged rows and merges every window the low watermark has
  /// passed. Call before TakeReady.
  void Merge();

  /// Everything staged is final (all shards acked Flush): merge it all,
  /// including unbounded-window rows.
  void MarkFlushed();

  /// New events follow a Flush: windows are gated by clocks again.
  void ClearFlushed();

  /// Drains query `q`'s merged rows (ascending window, SortRows order).
  std::vector<ResultRow> TakeReady(size_t query);

  bool HasReady() const;

  size_t num_queries() const { return emission_windows_.size(); }
  const AggPlan& agg_plan(size_t query) const { return agg_plans_[query]; }
  const WindowSpec& emission_window(size_t query) const {
    return emission_windows_[query];
  }

  /// Minimum over published shard clocks (kMinTs before any publication).
  Ts low_watermark() const;

  /// Shard `shard`'s last published ingest clock (kMinTs before any
  /// publication). Lock-free; readable from any thread — the stall
  /// detector compares consecutive reads to spot a frozen shard.
  Ts shard_clock(size_t shard) const {
    return stages_[shard]->clock.load(std::memory_order_acquire);
  }

  /// Windows currently held back awaiting the low watermark, summed over
  /// queries (driver thread only; current as of the last Merge call) — the
  /// merger's hold-back depth.
  size_t pending_windows() const {
    size_t n = 0;
    for (const auto& per_query : pending_) n += per_query.size();
    return n;
  }

 private:
  struct ShardStage {
    std::mutex mu;
    std::vector<std::vector<ResultRow>> per_query;
    std::atomic<Ts> clock{kMinTs};
  };

  size_t num_shards_;
  std::vector<WindowSpec> emission_windows_;
  std::vector<AggPlan> agg_plans_;
  std::vector<std::unique_ptr<ShardStage>> stages_;

  // Driver-thread state: rows bucketed per (query, window, shard) awaiting
  // the low watermark, and the per-query ready queues.
  std::vector<std::map<WindowId, std::vector<std::vector<ResultRow>>>>
      pending_;
  std::vector<std::vector<ResultRow>> ready_;
  bool flushed_ = false;
};

}  // namespace greta::runtime

#endif  // GRETA_RUNTIME_RESULT_MERGER_H_
