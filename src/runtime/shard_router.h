#ifndef GRETA_RUNTIME_SHARD_ROUTER_H_
#define GRETA_RUNTIME_SHARD_ROUTER_H_

#include <string>
#include <vector>

#include "common/catalog.h"
#include "common/event.h"
#include "common/event_batch.h"
#include "common/status.h"
#include "core/plan.h"
#include "query/query.h"

namespace greta::runtime {

/// Routes events to shards by hashing the workload's partition key — the
/// same GROUP-BY / equivalence attributes the engine's per-type route table
/// partitions the stream on (GretaEngine::Route), resolved here once per
/// workload via the planner so the two can never disagree.
///
/// The shard key is the INTERSECTION of every query's partition key
/// attributes (order taken from query 0). Fixing a query's full partition
/// key fixes the shard key, so each (query, partition) lives on exactly one
/// shard and trends never span shards — the correctness condition for
/// partition-parallel execution (GRETA Section 7 / EAGr graph sharding).
///
/// Per event type, the decision is compiled into a dense table:
///  - the type carries every shard-key attribute  -> hash to one shard;
///  - the type misses some (e.g. Halt lacks `sector`) -> broadcast to all
///    shards, mirroring the engine's broadcast routing — each shard's
///    engine delivers it to its own matching partitions;
///  - the type is used by no query                -> drop.
///
/// When the intersection is empty (some query declares no GROUP-BY and no
/// equivalence attributes), the stream cannot be partitioned: the router
/// clamps to ONE shard and ShardOf returns 0 for every relevant event
/// (ExplainPlan prints the matching "sharding:" note per plan).
class ShardRouter {
 public:
  /// ShardOf sentinel: event type used by no query — skip it entirely.
  static constexpr int kDrop = -1;
  /// ShardOf sentinel: deliver to every shard (type lacks shard-key attrs).
  static constexpr int kBroadcast = -2;

  /// An empty router (routes nothing); assign from Create's result.
  ShardRouter() = default;

  /// Compiles the router for `workload` (each query is planned once to
  /// resolve its partition keys and relevant types, reusing the engine's
  /// own resolution rules). `num_shards` is clamped to 1 when the workload
  /// has no common partition key.
  static StatusOr<ShardRouter> Create(const std::vector<QuerySpec>& workload,
                                      const Catalog& catalog,
                                      size_t num_shards,
                                      const PlannerOptions& options = {});

  /// Shard index for `e`, or kDrop / kBroadcast. Takes a borrowed view, so
  /// an owning `Event` and an `EventBatch` row route identically.
  int ShardOf(const EventRef& e) const {
    if (static_cast<size_t>(e.type) >= routes_.size() ||
        !routes_[e.type].relevant) {
      return kDrop;
    }
    if (num_shards_ == 1) return 0;
    const TypeRoute& route = routes_[e.type];
    if (!route.full) return kBroadcast;
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (AttrId id : route.ids) {
      h = h * 1099511628211ULL ^ e.attr(id).Hash();
    }
    // Avalanche finalizer (splitmix64): key values are often small and
    // correlated (sector = company % k), and the modulo below keeps only
    // the low bits — without mixing, whole shards can end up empty.
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return static_cast<int>(h % num_shards_);
  }

  /// Batch variant of ShardOf: writes one decision per row of `batch` into
  /// `out[0..batch.size())` — exactly ShardOf(batch.ref(i)) for every row.
  /// The per-key mixing stays scalar (it walks variant-typed Values), but
  /// the splitmix64 avalanche finalization runs through the dispatched
  /// 4-wide kernel over all hashed rows at once. Reuses internal scratch,
  /// so calls must come from one thread at a time (the ingest thread).
  void ShardOfRows(const EventBatch& batch, int* out) const;

  /// Effective shard count (1 when the workload is not partitionable).
  size_t num_shards() const { return num_shards_; }

  /// False: no common partition key; everything routes to shard 0.
  bool partitioned() const { return partitioned_; }

  /// The shard-key attribute names (empty when not partitioned).
  const std::vector<std::string>& shard_key_attrs() const {
    return shard_key_attrs_;
  }

  /// Human-readable routing summary for examples and debug output.
  std::string ToString(const Catalog& catalog) const;

 private:
  struct TypeRoute {
    bool relevant = false;
    bool full = false;           // carries every shard-key attribute
    std::vector<AttrId> ids;     // positions of shard-key attrs in schema
  };

  size_t num_shards_ = 1;
  bool partitioned_ = false;
  std::vector<std::string> shard_key_attrs_;
  std::vector<TypeRoute> routes_;  // indexed by TypeId
  // ShardOfRows scratch: pre-finalization hashes of the rows that need one
  // (dense, so the bulk kernel runs gap-free) and their row indices.
  mutable std::vector<uint64_t> hash_scratch_;
  mutable std::vector<uint32_t> row_scratch_;
};

}  // namespace greta::runtime

#endif  // GRETA_RUNTIME_SHARD_ROUTER_H_
