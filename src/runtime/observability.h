#ifndef GRETA_RUNTIME_OBSERVABILITY_H_
#define GRETA_RUNTIME_OBSERVABILITY_H_

#include <string>

#include "telemetry/http_server.h"

namespace greta::runtime {

class ShardedRuntime;

/// Registers the runtime-backed routes on an HttpServer (the registry
/// routes /metrics, /snapshot, /trace, /explain are built in):
///
///   /healthz       stall-detector verdict; 200 when healthy, 503 when any
///                  shard is wedged (frozen clock over a non-empty queue)
///   /queries       per-query EXPLAIN ANALYZE reports as a JSON array
///   /queries/<id>  one query's report
///
/// The handlers read only thread-safe surfaces (worker-refreshed snapshots
/// under snapshot_mu, atomic clocks, SPSC side counters, the immutable
/// sharing plan), so serving concurrent scrapes never perturbs result
/// determinism. `runtime` must outlive the server's Stop().
void AttachRuntimeObservability(telemetry::HttpServer* server,
                                ShardedRuntime* runtime);

/// JSON array of every query's EXPLAIN ANALYZE report (the /queries body).
std::string QueryReportsJson(const ShardedRuntime& runtime);

/// One query's JSON report: observed per-query tallies (events routed,
/// vertices created, edges traversed, rows emitted, emit time) joined with
/// the planner's ESTIMATES — the sharing planner's per-cluster
/// shared/independent cost and, when the adaptive loop runs, the calibrated
/// q-hat and last cost split — so estimated-vs-observed divergence is
/// visible per query. Empty string when `query_id` is out of range.
std::string QueryReportJson(const ShardedRuntime& runtime, size_t query_id);

/// Human-readable EXPLAIN ANALYZE for one query (the same join as
/// QueryReportJson, formatted for terminals; "unknown query" when out of
/// range).
std::string ExplainAnalyze(const ShardedRuntime& runtime, size_t query_id);

}  // namespace greta::runtime

#endif  // GRETA_RUNTIME_OBSERVABILITY_H_
