#ifndef GRETA_RUNTIME_SPSC_QUEUE_H_
#define GRETA_RUNTIME_SPSC_QUEUE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "common/check.h"

namespace greta::runtime {

/// Bounded single-producer / single-consumer queue used as a shard's batched
/// ingest channel: the router thread pushes event batches, the shard's
/// pinned worker pops them.
///
/// The fast paths are lock-free (a power-of-two ring indexed by monotonically
/// increasing head/tail counters with acquire/release publication); the
/// mutex + condvars exist only to PARK a side that finds the ring full
/// (producer) or empty (consumer). The blocking protocol is the standard
/// double-check: the about-to-sleep side re-checks the indices under the
/// mutex, and the other side takes the mutex (briefly, empty critical
/// section) before notifying after publishing — so a notify can never slip
/// between the re-check and the wait.
///
/// Close() (producer side) makes Pop return false once the ring drains,
/// which is the consumer loop's exit signal.
template <typename T>
class SpscQueue {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscQueue(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    ring_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer: enqueues `item`, blocking while the ring is full.
  void Push(T item) {
    GRETA_DCHECK(!closed_.load(std::memory_order_relaxed));
    for (;;) {
      size_t t = tail_.load(std::memory_order_relaxed);
      size_t h = head_.load(std::memory_order_acquire);
      if (t - h <= mask_) {
        ring_[t & mask_] = std::move(item);
        tail_.store(t + 1, std::memory_order_release);
        // Occupancy high watermark, producer-only write (h re-read would
        // only shrink the depth, so this is the conservative maximum).
        const size_t depth = t + 1 - h;
        if (depth > depth_hwm_.load(std::memory_order_relaxed)) {
          depth_hwm_.store(depth, std::memory_order_relaxed);
        }
        { std::lock_guard<std::mutex> lock(mu_); }
        not_empty_.notify_one();
        return;
      }
      producer_stalls_.fetch_add(1, std::memory_order_relaxed);
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock, [this] {
        return tail_.load(std::memory_order_relaxed) -
                   head_.load(std::memory_order_acquire) <=
               mask_;
      });
    }
  }

  /// Consumer: dequeues into `*out`, blocking while the ring is empty.
  /// Returns false once the queue is closed and fully drained.
  bool Pop(T* out) {
    for (;;) {
      size_t h = head_.load(std::memory_order_relaxed);
      if (h != tail_.load(std::memory_order_acquire)) {
        *out = std::move(ring_[h & mask_]);
        head_.store(h + 1, std::memory_order_release);
        { std::lock_guard<std::mutex> lock(mu_); }
        not_full_.notify_one();
        return true;
      }
      if (closed_.load(std::memory_order_acquire)) {
        // The acquire on closed_ orders any Push sequenced before Close()
        // into view; only a STILL-empty ring means fully drained — the
        // earlier tail_ read may predate that final Push.
        if (h == tail_.load(std::memory_order_acquire)) return false;
        continue;
      }
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] {
        return head_.load(std::memory_order_relaxed) !=
                   tail_.load(std::memory_order_acquire) ||
               closed_.load(std::memory_order_acquire);
      });
    }
  }

  /// Producer: no further Push calls will follow; wakes the consumer so it
  /// can drain the remainder and exit.
  void Close() {
    closed_.store(true, std::memory_order_release);
    { std::lock_guard<std::mutex> lock(mu_); }
    not_empty_.notify_all();
  }

  size_t capacity() const { return mask_ + 1; }

  /// Approximate occupancy (either side may be mid-operation).
  size_t size() const {
    return tail_.load(std::memory_order_relaxed) -
           head_.load(std::memory_order_relaxed);
  }

  /// Maximum occupancy ever observed right after a Push — how close the
  /// channel came to backpressure. Readable from any thread.
  size_t depth_high_watermark() const {
    return depth_hwm_.load(std::memory_order_relaxed);
  }

  /// Push calls that found the ring full and parked (each blocking episode
  /// counts once per wakeup attempt). Readable from any thread.
  size_t producer_stalls() const {
    return producer_stalls_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<T> ring_;
  size_t mask_ = 0;
  std::atomic<size_t> head_{0};  // next slot to pop
  std::atomic<size_t> tail_{0};  // next slot to push
  std::atomic<bool> closed_{false};
  // Pressure counters (see accessors); plain internal state, no telemetry
  // dependency — the sharded runtime mirrors them into registry series.
  std::atomic<size_t> depth_hwm_{0};
  std::atomic<size_t> producer_stalls_{0};
  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
};

}  // namespace greta::runtime

#endif  // GRETA_RUNTIME_SPSC_QUEUE_H_
