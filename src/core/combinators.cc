#include "core/combinators.h"

#include "common/check.h"

namespace greta::combinators {

BigUInt Choose2(const BigUInt& n) {
  if (n.IsZero()) return BigUInt();
  BigUInt n_minus_1 = n;
  n_minus_1.Sub(BigUInt(1));
  BigUInt product = n.Mul(n_minus_1);
  uint64_t rem = product.DivUint64(2);
  GRETA_CHECK(rem == 0);
  return product;
}

BigUInt CombineDisjunction(const BigUInt& count_pi, const BigUInt& count_pj,
                           const BigUInt& count_pij) {
  GRETA_CHECK(count_pi.Compare(count_pij) >= 0);
  GRETA_CHECK(count_pj.Compare(count_pij) >= 0);
  BigUInt out = count_pi;
  out.Add(count_pj);
  out.Sub(count_pij);
  return out;
}

BigUInt CombineConjunction(const BigUInt& count_pi, const BigUInt& count_pj,
                           const BigUInt& count_pij) {
  GRETA_CHECK(count_pi.Compare(count_pij) >= 0);
  GRETA_CHECK(count_pj.Compare(count_pij) >= 0);
  BigUInt ci = count_pi;
  ci.Sub(count_pij);
  BigUInt cj = count_pj;
  cj.Sub(count_pij);
  BigUInt out = ci.Mul(cj);
  out.Add(ci.Mul(count_pij));
  out.Add(cj.Mul(count_pij));
  out.Add(Choose2(count_pij));
  return out;
}

}  // namespace greta::combinators
