#ifndef GRETA_CORE_AGGREGATE_H_
#define GRETA_CORE_AGGREGATE_H_

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/biguint.h"
#include "common/event.h"
#include "common/status.h"
#include "common/types.h"
#include "query/query.h"

namespace greta {

/// How trend counters behave at 64-bit overflow (see DESIGN.md §2.3):
/// kExact promotes to arbitrary precision (BigUInt); kModular wraps mod 2^64
/// — the propagation work is identical, only the stored width differs, which
/// keeps large benchmarks apples-to-apples across engines.
enum class CounterMode { kExact, kModular };

/// A trend counter: a uint64 that promotes itself to BigUInt on overflow in
/// exact mode. 16 bytes when un-promoted.
class Counter {
 public:
  Counter() = default;
  explicit Counter(uint64_t v) : low_(v) {}

  /// Builds a counter from an exact big value, honoring the mode (modular
  /// keeps the low 64 bits). Used by the conjunction combinator.
  static Counter FromBig(const BigUInt& big, CounterMode mode) {
    Counter c;
    if (mode == CounterMode::kModular || big.FitsUint64()) {
      c.low_ = big.Low64();
    } else {
      c.big_ = std::make_unique<BigUInt>(big);
    }
    return c;
  }

  Counter(const Counter& other) { *this = other; }
  Counter& operator=(const Counter& other) {
    low_ = other.low_;
    big_ = other.big_ ? std::make_unique<BigUInt>(*other.big_) : nullptr;
    return *this;
  }
  Counter(Counter&&) = default;
  Counter& operator=(Counter&&) = default;

  void AddOne(CounterMode mode) {
    if (big_ != nullptr) {
      big_->AddUint64(1);
      return;
    }
    uint64_t next = low_ + 1;
    if (next == 0 && mode == CounterMode::kExact) {
      Promote();
      big_->AddUint64(1);
      return;
    }
    low_ = next;
  }

  void Add(const Counter& other, CounterMode mode) {
    if (mode == CounterMode::kModular) {
      low_ += other.low_;  // Wrapping arithmetic by design.
      return;
    }
    if (big_ == nullptr && other.big_ == nullptr) {
      uint64_t sum = low_ + other.low_;
      if (sum >= low_) {  // No overflow.
        low_ = sum;
        return;
      }
      Promote();
    }
    if (big_ == nullptr) Promote();
    if (other.big_ != nullptr) {
      big_->Add(*other.big_);
    } else {
      big_->AddUint64(other.low_);
    }
  }

  bool IsZero() const {
    return big_ != nullptr ? big_->IsZero() : low_ == 0;
  }

  double ToDouble() const {
    return big_ != nullptr ? big_->ToDouble() : static_cast<double>(low_);
  }

  /// Low 64 bits (exact value when never promoted).
  uint64_t Low64() const { return big_ != nullptr ? big_->Low64() : low_; }

  /// Raw modular lane for the vector kernels. Only meaningful in kModular
  /// mode, where a counter is exactly its wrapping low 64 bits: the dense
  /// run-count copy reads this, and the fused masked-sum folds back in via
  /// AddRaw — both equivalent to a sequence of modular Add()s.
  uint64_t ModularValue() const { return low_; }
  void AddRaw(uint64_t v) { low_ += v; }  // wrapping by design

  BigUInt ToBig() const {
    return big_ != nullptr ? *big_ : BigUInt(low_);
  }

  /// Exact decimal rendering (exact mode) or the mod-2^64 value.
  std::string ToDecimal() const {
    return big_ != nullptr ? big_->ToDecimal() : std::to_string(low_);
  }

  size_t ApproxHeapBytes() const {
    return big_ != nullptr ? sizeof(BigUInt) + big_->ApproxBytes() : 0;
  }

 private:
  void Promote() { big_ = std::make_unique<BigUInt>(low_); }

  uint64_t low_ = 0;
  std::unique_ptr<BigUInt> big_;
};

/// Which aggregate machinery the query needs, derived from its AggSpecs. All
/// attribute-based aggregates must share one (type, attr) target; COUNT(E)
/// and AVG additionally pin the target type.
struct AggPlan {
  CounterMode mode = CounterMode::kExact;
  bool need_type_count = false;  // COUNT(E) or AVG
  bool need_min = false;
  bool need_max = false;
  bool need_sum = false;  // SUM or AVG
  bool need_max_start = false;  // negative graphs: barrier support
  TypeId target_type = kInvalidType;
  AttrId target_attr = kInvalidAttr;

  static StatusOr<AggPlan> FromSpecs(const std::vector<AggSpec>& specs,
                                     CounterMode mode);

  /// Aggregate plan used by negative sub-pattern graphs: counts plus the
  /// latest-trend-start auxiliary (Section 5 invalidation barriers).
  static AggPlan ForNegative(CounterMode mode) {
    AggPlan plan;
    plan.mode = mode;
    plan.need_max_start = true;
    return plan;
  }
};

inline constexpr double kAggInf = std::numeric_limits<double>::infinity();

/// Per-(vertex, window) aggregate state propagated along GRETA graph edges
/// (Theorem 4.3 for COUNT(*), Theorem 9.1 for the rest).
struct AggCell {
  Counter count;       // trends ending at this vertex (COUNT(*) DP value)
  Counter type_count;  // target-type events across those trends (COUNT(E))
  double min = kAggInf;
  double max = -kAggInf;
  double sum = 0.0;
  Ts max_start = kMinTs;  // latest start among trends ending here
  bool active = true;     // false: window invalidated by Case-3 negation

  /// dst-accumulates the predecessor contribution (the Σ_p terms).
  void AddPredecessor(const AggCell& pred, const AggPlan& plan) {
    count.Add(pred.count, plan.mode);
    if (plan.need_type_count) type_count.Add(pred.type_count, plan.mode);
    if (plan.need_min && pred.min < min) min = pred.min;
    if (plan.need_max && pred.max > max) max = pred.max;
    if (plan.need_sum) sum += pred.sum;
    if (plan.need_max_start && pred.max_start > max_start) {
      max_start = pred.max_start;
    }
  }

  /// Partial sharing (Hamlet snapshot propagation): predecessor fold of the
  /// non-count components only. The trend count lives once in the shared
  /// snapshot cell; this cell carries one query's attribute aggregates.
  void AddPredecessorFold(const AggCell& pred, const AggPlan& plan) {
    if (plan.need_type_count) type_count.Add(pred.type_count, plan.mode);
    if (plan.need_min && pred.min < min) min = pred.min;
    if (plan.need_max && pred.max > max) max = pred.max;
    if (plan.need_sum) sum += pred.sum;
  }

  /// Partial sharing: the vertex's own contribution to the non-count
  /// components, with `count` read from the shared snapshot cell (which must
  /// already include the vertex's own +1, i.e. call after the snapshot's
  /// FinishVertex).
  void FinishVertexFold(const EventRef& e, const Counter& count,
                        const AggPlan& plan) {
    if (e.type != plan.target_type) return;
    if (plan.need_type_count) type_count.Add(count, plan.mode);
    if (plan.need_min || plan.need_max || plan.need_sum) {
      double attr = e.attr(plan.target_attr).ToDouble();
      if (plan.need_min && attr < min) min = attr;
      if (plan.need_max && attr > max) max = attr;
      if (plan.need_sum) sum += attr * count.ToDouble();
    }
  }

  /// Applies the vertex's own contribution after all predecessors are in:
  /// the +1 for START events, and the e.attr terms when the vertex is of the
  /// target type. Must be called exactly once, last.
  void FinishVertex(const EventRef& e, bool is_start, const AggPlan& plan) {
    if (is_start) {
      count.AddOne(plan.mode);
      if (plan.need_max_start) max_start = e.time;
    }
    if (e.type == plan.target_type) {
      if (plan.need_type_count) {
        type_count.Add(count, plan.mode);  // e.countE = e.count + Σ p.countE
      }
      // COUNT(E)-only plans carry no target attribute; touching it would
      // read out of the event's attribute vector.
      if (plan.need_min || plan.need_max || plan.need_sum) {
        double attr = e.attr(plan.target_attr).ToDouble();
        if (plan.need_min && attr < min) min = attr;
        if (plan.need_max && attr > max) max = attr;
        if (plan.need_sum) sum += attr * count.ToDouble();
      }
    }
  }
};

/// Final aggregate for one (group, window): the Σ over END events, merged
/// across partitions / disjunction alternatives.
struct AggOutputs {
  Counter count;
  Counter type_count;
  double min = kAggInf;
  double max = -kAggInf;
  double sum = 0.0;
  bool any = false;  // at least one trend contributed

  void AccumulateEnd(const AggCell& cell, const AggPlan& plan) {
    if (cell.count.IsZero()) return;
    count.Add(cell.count, plan.mode);
    if (plan.need_type_count) type_count.Add(cell.type_count, plan.mode);
    if (plan.need_min && cell.min < min) min = cell.min;
    if (plan.need_max && cell.max > max) max = cell.max;
    if (plan.need_sum) sum += cell.sum;
    any = true;
  }

  /// Partial sharing: accumulate an END vertex whose trend count lives in a
  /// shared snapshot and whose attribute components live in `fold` (null for
  /// COUNT-only queries).
  void AccumulateEndShared(const Counter& snapshot_count, const AggCell* fold,
                           const AggPlan& plan) {
    if (snapshot_count.IsZero()) return;
    count.Add(snapshot_count, plan.mode);
    if (fold != nullptr) {
      if (plan.need_type_count) type_count.Add(fold->type_count, plan.mode);
      if (plan.need_min && fold->min < min) min = fold->min;
      if (plan.need_max && fold->max > max) max = fold->max;
      if (plan.need_sum) sum += fold->sum;
    }
    any = true;
  }

  void Merge(const AggOutputs& other, const AggPlan& plan) {
    if (!other.any) return;
    count.Add(other.count, plan.mode);
    type_count.Add(other.type_count, plan.mode);
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
    sum += other.sum;
    any = true;
  }

  double Avg() const {
    double denom = type_count.ToDouble();
    return denom == 0.0 ? 0.0 : sum / denom;
  }

  /// Renders the value of one requested aggregate.
  std::string Render(const AggSpec& spec) const;
};

}  // namespace greta

#endif  // GRETA_CORE_AGGREGATE_H_
