#include "core/engine_interface.h"

#include <algorithm>
#include <cmath>

namespace greta {

std::string FormatRow(const ResultRow& row, const std::vector<AggSpec>& specs,
                      const Catalog& catalog) {
  std::string out = "wid=" + std::to_string(row.wid);
  out += " group=(";
  for (size_t i = 0; i < row.group.size(); ++i) {
    if (i > 0) out += ",";
    out += row.group[i].ToString(&catalog.strings());
  }
  out += ")";
  for (const AggSpec& spec : specs) {
    out += " ";
    out += spec.display;
    out += "=";
    out += row.aggs.Render(spec);
  }
  return out;
}

namespace {

int CompareValueVectors(const std::vector<Value>& a,
                        const std::vector<Value>& b) {
  for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

bool CloseEnough(double a, double b) {
  if (a == b) return true;
  if (std::isinf(a) || std::isinf(b)) return false;
  double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= 1e-9 * scale;
}

}  // namespace

void SortRows(std::vector<ResultRow>* rows) {
  std::sort(rows->begin(), rows->end(),
            [](const ResultRow& a, const ResultRow& b) {
              if (a.wid != b.wid) return a.wid < b.wid;
              return CompareValueVectors(a.group, b.group) < 0;
            });
}

bool RowsEquivalent(const std::vector<ResultRow>& a,
                    const std::vector<ResultRow>& b, const AggPlan& plan,
                    std::string* diff) {
  auto fail = [&](const std::string& msg) {
    if (diff != nullptr) *diff = msg;
    return false;
  };
  if (a.size() != b.size()) {
    return fail("row count mismatch: " + std::to_string(a.size()) + " vs " +
                std::to_string(b.size()));
  }
  for (size_t i = 0; i < a.size(); ++i) {
    const ResultRow& x = a[i];
    const ResultRow& y = b[i];
    std::string where = "row " + std::to_string(i);
    if (x.wid != y.wid) return fail(where + ": window mismatch");
    if (CompareValueVectors(x.group, y.group) != 0) {
      return fail(where + ": group mismatch");
    }
    if (x.aggs.count.ToDecimal() != y.aggs.count.ToDecimal()) {
      return fail(where + ": COUNT(*) " + x.aggs.count.ToDecimal() + " vs " +
                  y.aggs.count.ToDecimal());
    }
    if (plan.need_type_count &&
        x.aggs.type_count.ToDecimal() != y.aggs.type_count.ToDecimal()) {
      return fail(where + ": COUNT(E) " + x.aggs.type_count.ToDecimal() +
                  " vs " + y.aggs.type_count.ToDecimal());
    }
    if (plan.need_min && !CloseEnough(x.aggs.min, y.aggs.min)) {
      return fail(where + ": MIN mismatch");
    }
    if (plan.need_max && !CloseEnough(x.aggs.max, y.aggs.max)) {
      return fail(where + ": MAX mismatch");
    }
    if (plan.need_sum && !CloseEnough(x.aggs.sum, y.aggs.sum)) {
      return fail(where + ": SUM " + std::to_string(x.aggs.sum) + " vs " +
                  std::to_string(y.aggs.sum));
    }
  }
  return true;
}

}  // namespace greta
