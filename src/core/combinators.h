#ifndef GRETA_CORE_COMBINATORS_H_
#define GRETA_CORE_COMBINATORS_H_

#include "common/biguint.h"

namespace greta::combinators {

/// Count combination formulas of Section 9 for disjunctive and conjunctive
/// patterns, given the sub-pattern counts Ci' = COUNT(Pi), Cj' = COUNT(Pj)
/// and the intersection count Cij = COUNT(Pij) (trends matched by both).
/// The planner uses the zero-Cij special cases automatically when it can
/// prove disjointness; these functions cover the general case when the
/// caller evaluates the intersection pattern Pij itself (e.g. via the
/// product-DFA construction referenced by the paper [27]).

/// COUNT(Pi | Pj) = Ci + Cj - Cij, with Ci = COUNT(Pi) - Cij etc. folded in:
/// equivalently COUNT(Pi) + COUNT(Pj) - COUNT(Pij).
BigUInt CombineDisjunction(const BigUInt& count_pi, const BigUInt& count_pj,
                           const BigUInt& count_pij);

/// COUNT(Pi & Pj) = Ci*Cj + Ci*Cij + Cj*Cij + C(Cij, 2)
/// where Ci = COUNT(Pi) - Cij and Cj = COUNT(Pj) - Cij: every trend detected
/// only by Pi pairs with every trend detected only by Pj, and trends of the
/// intersection pair with every *other* trend.
BigUInt CombineConjunction(const BigUInt& count_pi, const BigUInt& count_pj,
                           const BigUInt& count_pij);

/// Binomial coefficient C(n, 2) = n*(n-1)/2.
BigUInt Choose2(const BigUInt& n);

}  // namespace greta::combinators

#endif  // GRETA_CORE_COMBINATORS_H_
