#include "core/engine.h"

#include <algorithm>
#include <chrono>

#include "common/simd.h"
#include "storage/window.h"

namespace greta {

namespace {

PlannerOptions PlannerOptionsFrom(const EngineOptions& options) {
  PlannerOptions popts;
  popts.counter_mode = options.counter_mode;
  popts.semantics = options.semantics;
  popts.max_windows_per_event = options.max_windows_per_event;
  popts.enable_tree_ranges = options.enable_tree_ranges;
  popts.enable_pruning = options.enable_pruning;
  popts.enable_specialized_kernels = options.enable_specialized_kernels;
  popts.enable_batch_kernels = options.enable_batch_kernels;
  popts.enable_simd = options.enable_simd;
  return popts;
}

}  // namespace

StatusOr<std::unique_ptr<GretaEngine>> GretaEngine::Create(
    const Catalog* catalog, const QuerySpec& spec,
    const EngineOptions& options) {
  StatusOr<std::unique_ptr<ExecPlan>> plan =
      BuildPlan(spec, *catalog, PlannerOptionsFrom(options));
  if (!plan.ok()) return plan.status();
  return std::unique_ptr<GretaEngine>(
      new GretaEngine(catalog, std::move(plan).value(), options));
}

StatusOr<std::unique_ptr<GretaEngine>> GretaEngine::CreateMulti(
    const Catalog* catalog, const std::vector<const QuerySpec*>& specs,
    const EngineOptions& options) {
  StatusOr<std::unique_ptr<ExecPlan>> plan =
      BuildSharedPlan(specs, *catalog, PlannerOptionsFrom(options));
  if (!plan.ok()) return plan.status();
  return std::unique_ptr<GretaEngine>(
      new GretaEngine(catalog, std::move(plan).value(), options));
}

StatusOr<std::unique_ptr<GretaEngine>> GretaEngine::CreatePartial(
    const Catalog* catalog, const std::vector<const QuerySpec*>& specs,
    const EngineOptions& options) {
  StatusOr<std::unique_ptr<ExecPlan>> plan =
      BuildPartialSharedPlan(specs, *catalog, PlannerOptionsFrom(options));
  if (!plan.ok()) return plan.status();
  return std::unique_ptr<GretaEngine>(
      new GretaEngine(catalog, std::move(plan).value(), options));
}

GretaEngine::GretaEngine(const Catalog* catalog,
                         std::unique_ptr<ExecPlan> plan,
                         const EngineOptions& options)
    : catalog_(catalog), plan_(std::move(plan)), options_(options) {
  if (options_.memory != nullptr) memory_ = options_.memory;
  emitted_.resize(plan_->num_queries());
  for (const auto& [type, ids] : plan_->key_attr_ids) {
    if (static_cast<size_t>(type) >= route_table_.size()) {
      route_table_.resize(type + 1, nullptr);
    }
    route_table_[type] = &ids;
  }
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
#if GRETA_TELEMETRY
  // Arm the instruments once; the hot path only tests cached pointers.
  telemetry::MetricRegistry& reg = telemetry::MetricRegistry::Default();
  tm_.events_routed = reg.CounterIf("greta_core_events_routed_total");
  tm_.vertices_created = reg.CounterIf("greta_core_vertices_created_total");
  tm_.edges_traversed = reg.CounterIf("greta_core_edges_traversed_total");
  tm_.windows_closed = reg.CounterIf("greta_core_windows_closed_total");
  tm_.emit_ns = reg.HistogramIf("greta_core_window_emit_ns");
  tm_.pane_bytes = reg.GaugeIf("greta_core_pane_bytes");
  tm_.trace = reg.TraceIf();
  for (const AlternativePlan& alt : plan_->alternatives) {
    for (const GraphPlan& gp : alt.graphs) {
      ++kernel_per_delivery_[static_cast<size_t>(gp.kernel)];
    }
  }
  static constexpr const char* kKernelSeries[3] = {
      "greta_core_kernel_dispatch_total{kernel=\"count_modular\"}",
      "greta_core_kernel_dispatch_total{kernel=\"count_exact\"}",
      "greta_core_kernel_dispatch_total{kernel=\"generic\"}",
  };
  for (size_t k = 0; k < 3; ++k) {
    if (kernel_per_delivery_[k] > 0) {
      tm_.kernel_dispatch[k] = reg.CounterIf(kKernelSeries[k]);
    }
  }
  static constexpr const char* kBatchFallbackSeries
      [GretaGraph::kNumBatchFallbackReasons] = {
          "greta_core_batch_fallback_rows_total{reason=\"disabled\"}",
          "greta_core_batch_fallback_rows_total{reason=\"semantics\"}",
          "greta_core_batch_fallback_rows_total{reason=\"negation\"}",
          "greta_core_batch_fallback_rows_total{reason=\"bounds\"}",
      };
  for (size_t r = 0; r < GretaGraph::kNumBatchFallbackReasons; ++r) {
    tm_.batch_fallback[r] = reg.CounterIf(kBatchFallbackSeries[r]);
  }
  static constexpr const char* kBatchStrategySeries
      [GretaGraph::kNumBatchStrategies] = {
          "greta_core_batch_rows_total{strategy=\"shared_fold\"}",
          "greta_core_batch_rows_total{strategy=\"suffix_merge\"}",
          "greta_core_batch_rows_total{strategy=\"per_event\"}",
      };
  for (size_t r = 0; r < GretaGraph::kNumBatchStrategies; ++r) {
    tm_.batch_strategy[r] = reg.CounterIf(kBatchStrategySeries[r]);
  }
  // Per-ISA SIMD coverage: one series labeled with the ISA this process
  // dispatched at startup (runtime detection + GRETA_SIMD override), plus a
  // build-info style constant gauge so scrapes can tell apart hosts/modes.
  const char* isa = simd::IsaName(simd::DispatchedIsa());
  std::string simd_series = "greta_core_simd_rows_total{isa=\"";
  simd_series += isa;
  simd_series += "\"}";
  tm_.simd_rows = reg.CounterIf(simd_series);
  std::string info_series = "greta_build_info{simd=\"";
  info_series += isa;
  info_series += "\"}";
  if (telemetry::Gauge* g = reg.GaugeIf(info_series)) g->Set(1.0);
#endif
}

GretaEngine::~GretaEngine() {
  // Partition map overhead is charged to the (possibly shared) tracker at
  // GetOrCreatePartition; the pane stores release their own bytes on
  // destruction, but the partition overhead must be released here or a
  // workload-wide tracker would keep stale bytes after this engine is
  // retired mid-run (adaptive migration, src/sharing/).
  for (const auto& [key, partition] : partitions_) {
    (void)partition;
    memory_->Release(sizeof(Partition) + key.size() * sizeof(Value));
  }
}

size_t GretaEngine::num_queries() const { return plan_->num_queries(); }

Status GretaEngine::Process(const Event& e) {
  if (saw_events_ && e.time < watermark_) {
    return Status::InvalidArgument(
        "events must arrive in-order by timestamp (Section 2)");
  }
  if (pool_ != nullptr && !batch_.empty() && e.time != batch_ts_) {
    FlushBatch();
  }
  if (!next_close_valid_ && !plan_->window.unbounded()) {
    next_close_ = FirstWindowOf(e.time, plan_->window);
    next_close_valid_ = true;
  }
  AdvanceTime(e.time);
  watermark_ = e.time;
  saw_events_ = true;
  ++stats_.events_processed;

  if (pool_ != nullptr) {
    batch_.push_back(e);
    batch_ts_ = e.time;
  } else {
    Route(e);
  }
  stats_.peak_bytes = memory_->peak_bytes();
  return Status::Ok();
}

Status GretaEngine::ProcessBatch(const EventBatch& batch) {
  if (batch.empty()) return Status::Ok();
  if (!batch.time_ordered() || (saw_events_ && batch.time(0) < watermark_)) {
    return Status::InvalidArgument(
        "events must arrive in-order by timestamp (Section 2)");
  }
  if (pool_ != nullptr) {
    // Parallel mode keys its micro-batching off individual Process() calls.
    for (size_t i = 0; i < batch.size(); ++i) {
      Status s = Process(batch.ToEvent(i));
      if (!s.ok()) return s;
    }
    return Status::Ok();
  }
  if (!next_close_valid_ && !plan_->window.unbounded()) {
    next_close_ = FirstWindowOf(batch.time(0), plan_->window);
    next_close_valid_ = true;
  }
  const simd::Kernels& kd = simd::Dispatch();
  // One watermark advance and one routing pass per equal-timestamp run; the
  // per-partition row groups then reach the graphs through InsertBatch.
  const Ts* times = batch.times().data();
  size_t i = 0;
  while (i < batch.size()) {
    const Ts ts = batch.time(i);
    size_t j = kd.run_split(times, i, batch.size());
    AdvanceTime(ts);
    watermark_ = ts;
    saw_events_ = true;
    stats_.events_processed += j - i;
    RouteRun(batch, i, j);
    i = j;
  }
  // peak_bytes is monotone, so one refresh after the batch observes the
  // same peak the scalar per-event refresh would.
  stats_.peak_bytes = memory_->peak_bytes();
  return Status::Ok();
}

Status GretaEngine::AdvanceWatermark(Ts now) {
  if (saw_events_ && now <= watermark_) return Status::Ok();
  // Events at time == `now` may still arrive, so a micro-batch of that
  // timestamp stays open; earlier batches can no longer grow.
  if (pool_ != nullptr && !batch_.empty() && now > batch_ts_) FlushBatch();
  AdvanceTime(now);
  if (saw_events_) watermark_ = now;
  return Status::Ok();
}

void GretaEngine::AdvanceTime(Ts now) { CloseWindowsUpTo(now); }

void GretaEngine::CloseWindowsUpTo(Ts now) {
  if (plan_->window.unbounded() || !next_close_valid_) return;
  bool closed_any = false;
  while (WindowCloseTime(next_close_, plan_->window) <= now) {
    EmitWindow(next_close_);
    ++next_close_;
    closed_any = true;
  }
  if (closed_any) {
    for (auto& [key, partition] : partitions_) {
      (void)key;
      for (AltRuntime& alt : partition->alts) {
        for (std::unique_ptr<GretaGraph>& g : alt.graphs) g->Purge(now);
      }
    }
    // Broadcast events older than one window length can no longer share a
    // window with any future partition member.
    while (!broadcast_buffer_.empty() &&
           broadcast_buffer_.front().event.time + plan_->window.within <=
               now) {
      broadcast_buffer_.pop_front();
    }
    GRETA_TM_SET(tm_.pane_bytes,
                 static_cast<double>(memory_->current_bytes()));
    GRETA_TM(if (tm_.trace != nullptr) {
      telemetry::TraceEvent e;
      e.kind = telemetry::TraceKind::kPanePurge;
      e.ts = now;
      e.a = memory_->current_bytes();
      tm_.trace->Emit(e);
    });
  }
}

void GretaEngine::EmitWindow(WindowId wid) {
  // Close-to-emit latency: this call IS the span between a window closing
  // (watermark passes its close time) and its rows being handed to
  // callbacks / the emit queues, so one wall-clock measurement of it is the
  // per-window emission latency. Measured unconditionally (two clock reads
  // per window close) because the per-query EXPLAIN tallies need it even
  // when the metric registry is disarmed.
  const uint64_t emit_start_ns = telemetry::SteadyNowNs();
#if GRETA_TELEMETRY
  size_t tm_rows = 0;
#endif
  const size_t nq = plan_->num_queries();
  if (query_stats_.size() < nq) {
    query_stats_.resize(nq);
    for (size_t q = 0; q < nq; ++q) query_stats_[q].query_id = q;
  }
  std::vector<std::unordered_map<std::vector<Value>, AggOutputs, ValueVecHash,
                                 ValueVecEq>>
      merged(nq);
  for (auto& [key, partition] : partitions_) {
    std::vector<AggOutputs> accs(nq);
    if (plan_->groups.size() <= 1) {
      // Disjoint alternatives sum (one term group); every query slot is
      // collected in the same structural pass.
      if (!plan_->groups.empty()) {
        for (int idx : plan_->groups[0].alternative_indices) {
          partition->alts[idx].graphs[0]->CollectWindowAll(wid, &accs);
        }
      }
    } else {
      // Conjunction: product over term groups of each group's total count
      // (Section 9; COUNT(*) only, enforced by the planner for every query
      // of a shared cluster — so all slots carry the same product).
      BigUInt product(1);
      bool all_nonzero = true;
      for (const TermGroupPlan& group : plan_->groups) {
        AggOutputs group_acc;
        for (int idx : group.alternative_indices) {
          partition->alts[idx].graphs[0]->CollectWindow(wid, &group_acc);
        }
        if (!group_acc.any || group_acc.count.IsZero()) {
          all_nonzero = false;
          break;
        }
        product = product.Mul(group_acc.count.ToBig());
      }
      if (all_nonzero) {
        for (AggOutputs& acc : accs) {
          acc.count = Counter::FromBig(product, plan_->mode);
          acc.any = true;
        }
      }
    }
    for (size_t q = 0; q < nq; ++q) {
      if (!accs[q].any) continue;
      const AggPlan& qagg = plan_->query_aggs.empty() ? plan_->agg
                                                      : plan_->query_aggs[q];
      std::vector<Value> group(key.begin(),
                               key.begin() + plan_->num_group_attrs);
      auto [it, inserted] = merged[q].try_emplace(std::move(group));
      (void)inserted;
      it->second.Merge(accs[q], qagg);
    }
  }

  for (size_t q = 0; q < nq; ++q) {
    std::vector<ResultRow> rows;
    rows.reserve(merged[q].size());
    for (auto& [group, outputs] : merged[q]) {
      ResultRow row;
      row.wid = wid;
      row.group = group;
      row.aggs = std::move(outputs);
      rows.push_back(std::move(row));
    }
    SortRows(&rows);
    query_stats_[q].rows_emitted += rows.size();
#if GRETA_TELEMETRY
    tm_rows += rows.size();
#endif
    const bool has_callback =
        q < result_callbacks_.size() && result_callbacks_[q];
    for (ResultRow& row : rows) {
      if (has_callback) result_callbacks_[q](row);
      emitted_[q].push_back(std::move(row));
    }
  }

  // Release per-window state and, in the same walk, snapshot the window
  // observation (cumulative graph counters -> deltas since the last close).
  size_t total_vertices = 0;
  size_t total_edges = 0;
  [[maybe_unused]] uint64_t batch_fb[GretaGraph::kNumBatchFallbackReasons] = {
      0, 0, 0, 0};
  [[maybe_unused]] uint64_t batch_st[GretaGraph::kNumBatchStrategies] = {0, 0,
                                                                         0};
  [[maybe_unused]] uint64_t simd_total = 0;
  for (auto& [key, partition] : partitions_) {
    (void)key;
    for (AltRuntime& alt : partition->alts) {
      for (std::unique_ptr<GretaGraph>& g : alt.graphs) {
        g->ForgetWindow(wid);
        total_vertices += g->total_vertices();
        total_edges += g->edges_traversed();
        for (size_t r = 0; r < GretaGraph::kNumBatchFallbackReasons; ++r) {
          batch_fb[r] += g->batch_fallback_rows()[r];
        }
        for (size_t r = 0; r < GretaGraph::kNumBatchStrategies; ++r) {
          batch_st[r] += g->batch_strategy_rows()[r];
        }
        GRETA_TM(simd_total += g->simd_rows());
      }
      for (std::unique_ptr<NegationLink>& link : alt.links) {
        link->ForgetWindow(wid);
      }
    }
  }

  WindowObservation obs;
  obs.wid = wid;
  obs.close_time = WindowCloseTime(wid, plan_->window);
  obs.events_routed = obs_events_routed_;
  obs.vertices_created = total_vertices - obs_prev_vertices_;
  obs.edges_traversed = total_edges - obs_prev_edges_;
  obs_events_routed_ = 0;
  obs_prev_vertices_ = total_vertices;
  obs_prev_edges_ = total_edges;
  constexpr size_t kMaxUndrainedObservations = 256;
  if (window_obs_.size() >= kMaxUndrainedObservations) {
    window_obs_.pop_front();
  }
  window_obs_.push_back(obs);

  // Per-query EXPLAIN ANALYZE tallies: the same per-close deltas attributed
  // to every query slot of the (possibly merged) runtime. Plain members,
  // one pass per window close.
  const uint64_t emit_span_ns = telemetry::SteadyNowNs() - emit_start_ns;
  for (QueryExecStats& qs : query_stats_) {
    qs.windows_closed += 1;
    qs.events_routed += obs.events_routed;
    qs.vertices_created += obs.vertices_created;
    qs.edges_traversed += obs.edges_traversed;
    qs.emit_ns += emit_span_ns;
  }

#if GRETA_TELEMETRY
  GRETA_TM_ADD(tm_.windows_closed, 1);
  GRETA_TM_ADD(tm_.events_routed, obs.events_routed);
  GRETA_TM_ADD(tm_.vertices_created, obs.vertices_created);
  GRETA_TM_ADD(tm_.edges_traversed, obs.edges_traversed);
  const uint64_t deliveries = tm_deliveries_ - tm_prev_deliveries_;
  tm_prev_deliveries_ = tm_deliveries_;
  for (size_t k = 0; k < 3; ++k) {
    if (tm_.kernel_dispatch[k] != nullptr) {
      tm_.kernel_dispatch[k]->Add(kernel_per_delivery_[k] * deliveries);
    }
  }
  // Batch coverage: cumulative graph counters -> per-close deltas, plus the
  // engine-side negation rows (scalar schedule; attributed per close too).
  batch_fb[static_cast<size_t>(GretaGraph::BatchFallbackReason::kNegation)] +=
      batch_negation_rows_;
  for (size_t r = 0; r < GretaGraph::kNumBatchFallbackReasons; ++r) {
    const uint64_t delta = batch_fb[r] - tm_prev_batch_fallback_[r];
    tm_prev_batch_fallback_[r] = batch_fb[r];
    if (delta != 0) GRETA_TM_ADD(tm_.batch_fallback[r], delta);
  }
  for (size_t r = 0; r < GretaGraph::kNumBatchStrategies; ++r) {
    const uint64_t delta = batch_st[r] - tm_prev_batch_strategy_[r];
    tm_prev_batch_strategy_[r] = batch_st[r];
    if (delta != 0) GRETA_TM_ADD(tm_.batch_strategy[r], delta);
  }
  {
    const uint64_t delta = simd_total - tm_prev_simd_rows_;
    tm_prev_simd_rows_ = simd_total;
    if (delta != 0) GRETA_TM_ADD(tm_.simd_rows, delta);
  }
  if (tm_.emit_ns != nullptr) {
    tm_.emit_ns->Record(emit_span_ns);
  }
  if (tm_.trace != nullptr) {
    telemetry::TraceEvent e;
    e.kind = telemetry::TraceKind::kWindowClose;
    e.ts = obs.close_time;
    e.wid = static_cast<int64_t>(wid);
    e.a = tm_rows;
    e.b = obs.vertices_created;
    tm_.trace->Emit(e);
  }
#endif
}

std::vector<WindowObservation> GretaEngine::TakeWindowObservations() {
  std::vector<WindowObservation> out(window_obs_.begin(), window_obs_.end());
  window_obs_.clear();
  return out;
}

void GretaEngine::Route(const Event& e) {
  if (static_cast<size_t>(e.type) >= route_table_.size() ||
      route_table_[e.type] == nullptr) {
    return;  // Irrelevant type.
  }
  ++obs_events_routed_;
  const std::vector<AttrId>& ids = *route_table_[e.type];

  bool full = true;
  for (AttrId id : ids) full &= (id != kInvalidAttr);

  if (full) {
    route_key_.clear();
    for (AttrId id : ids) route_key_.push_back(e.attr(id));
    Partition* p = GetOrCreatePartition(route_key_, e.seq);
    GRETA_TM(++tm_deliveries_);
    DeliverToPartition(p, e);
    return;
  }

  // Broadcast routing: the type lacks some key attributes (e.g. Accident
  // has a segment but no vehicle in Q3); deliver to every partition that
  // agrees on the attributes it does carry, now and in the future.
  BroadcastEvent b;
  b.event = e;
  b.has_attr.resize(ids.size());
  b.key_values.resize(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    b.has_attr[i] = (ids[i] != kInvalidAttr);
    if (b.has_attr[i]) b.key_values[i] = e.attr(ids[i]);
  }
  for (auto& [key, partition] : partitions_) {
    if (BroadcastMatches(b, key)) {
      GRETA_TM(++tm_deliveries_);
      DeliverToPartition(partition.get(), e);
    }
  }
  broadcast_buffer_.push_back(std::move(b));
}

void GretaEngine::RouteRun(const EventBatch& batch, size_t begin, size_t end) {
  // The routing decisions are exactly Route()'s, taken row-wise over the
  // batch columns; rows landing in the same partition are grouped (epoch
  // slots, no per-run hash map) so each partition sees one InsertBatch call
  // per run instead of one Insert per event. Row order is preserved within
  // every group, and groups of distinct partitions touch disjoint state, so
  // delivery order across groups is immaterial.
  ++route_epoch_;
  run_groups_used_ = 0;
  auto group_row = [&](Partition* p, size_t row) {
    if (p->group_epoch != route_epoch_) {
      if (run_groups_used_ == run_groups_.size()) run_groups_.emplace_back();
      RunGroup& g = run_groups_[run_groups_used_];
      g.partition = p;
      g.rows.clear();
      p->group_epoch = route_epoch_;
      p->group_slot = static_cast<uint32_t>(run_groups_used_);
      ++run_groups_used_;
    }
    run_groups_[p->group_slot].rows.push_back(static_cast<uint32_t>(row));
  };

  for (size_t i = begin; i < end; ++i) {
    const TypeId type = batch.type(i);
    if (static_cast<size_t>(type) >= route_table_.size() ||
        route_table_[type] == nullptr) {
      continue;  // Irrelevant type.
    }
    ++obs_events_routed_;
    const std::vector<AttrId>& ids = *route_table_[type];

    bool full = true;
    for (AttrId id : ids) full &= (id != kInvalidAttr);

    if (full) {
      const EventRef ref = batch.ref(i);
      route_key_.clear();
      for (AttrId id : ids) route_key_.push_back(ref.attr(id));
      Partition* p = GetOrCreatePartition(route_key_, ref.seq);
      GRETA_TM(++tm_deliveries_);
      group_row(p, i);
      continue;
    }

    // Broadcast routing (see Route()): group the row into every matching
    // partition now and buffer it for partitions created later. The replay
    // in GetOrCreatePartition delivers buffered rows immediately, which
    // stays ordered: a new partition's group only holds rows at or after
    // its creating event.
    BroadcastEvent b;
    b.event = batch.ToEvent(i);
    b.has_attr.resize(ids.size());
    b.key_values.resize(ids.size());
    for (size_t a = 0; a < ids.size(); ++a) {
      b.has_attr[a] = (ids[a] != kInvalidAttr);
      if (b.has_attr[a]) b.key_values[a] = b.event.attr(ids[a]);
    }
    for (auto& [key, partition] : partitions_) {
      if (BroadcastMatches(b, key)) {
        GRETA_TM(++tm_deliveries_);
        group_row(partition.get(), i);
      }
    }
    broadcast_buffer_.push_back(std::move(b));
  }

  for (size_t g = 0; g < run_groups_used_; ++g) {
    DeliverBatchToPartition(run_groups_[g].partition, batch,
                            run_groups_[g].rows);
  }
}

bool GretaEngine::BroadcastMatches(const BroadcastEvent& b,
                                   const std::vector<Value>& key) const {
  for (size_t i = 0; i < b.has_attr.size(); ++i) {
    if (b.has_attr[i] && !(b.key_values[i] == key[i])) return false;
  }
  return true;
}

GretaEngine::Partition* GretaEngine::GetOrCreatePartition(
    const std::vector<Value>& key, SeqNo upto) {
  auto it = partitions_.find(key);
  if (it != partitions_.end()) return it->second.get();

  auto partition = std::make_unique<Partition>();
  partition->alts.reserve(plan_->alternatives.size());
  for (const AlternativePlan& alt_plan : plan_->alternatives) {
    AltRuntime alt;
    for (const GraphPlan& gp : alt_plan.graphs) {
      alt.graphs.push_back(
          std::make_unique<GretaGraph>(&gp, plan_.get(), memory_));
    }
    // Wire negation links: negative graph i reports into the graph it
    // invalidates (its parent), per its placement case.
    for (size_t i = 1; i < alt_plan.graphs.size(); ++i) {
      const GraphPlan& gp = alt_plan.graphs[i];
      GretaGraph* parent = alt.graphs[gp.parent].get();
      const GretaTemplate& parent_templ =
          alt_plan.graphs[gp.parent].templ;
      int transition = -1;
      if (gp.link_kind == NegationKind::kBetween) {
        transition = parent_templ.FindTransition(gp.prev_state, gp.foll_state);
      }
      auto link = std::make_unique<NegationLink>(gp.link_kind, transition,
                                                 gp.foll_state);
      alt.graphs[i]->SetOutLink(link.get());
      switch (gp.link_kind) {
        case NegationKind::kBetween:
          parent->AttachTransitionLink(transition, link.get());
          break;
        case NegationKind::kTrailing:
          parent->AttachGraphLink(link.get());
          break;
        case NegationKind::kLeading:
          parent->AttachFollowLink(link.get());
          break;
        case NegationKind::kNone:
          GRETA_CHECK(false);
      }
      alt.links.push_back(std::move(link));
    }
    partition->alts.push_back(std::move(alt));
  }

  Partition* raw = partition.get();
  partitions_.emplace(key, std::move(partition));
  memory_->Add(sizeof(Partition) + key.size() * sizeof(Value));

  // Replay buffered broadcast events that precede the creating event.
  for (const BroadcastEvent& b : broadcast_buffer_) {
    if (b.event.seq >= upto) break;
    if (BroadcastMatches(b, key)) {
      GRETA_TM(++tm_deliveries_);
      DeliverToPartition(raw, b.event);
    }
  }
  return raw;
}

void GretaEngine::DeliverToPartition(Partition* p, const Event& e) {
  for (AltRuntime& alt : p->alts) {
    // Negative graphs first: purely cosmetic (barriers are time-based and
    // order-independent), but it mirrors the paper's scheduler which runs
    // graphs a graph depends on first.
    for (size_t i = alt.graphs.size(); i-- > 0;) {
      alt.graphs[i]->Insert(e);
    }
  }
}

void GretaEngine::DeliverBatchToPartition(Partition* p,
                                          const EventBatch& batch,
                                          const std::vector<uint32_t>& rows) {
  for (AltRuntime& alt : p->alts) {
    if (alt.graphs.size() == 1) {
      // No negation: the whole row group goes through the (possibly
      // amortized) batch insert. Alternatives hold disjoint graph state, so
      // alt-major order is equivalent to the scalar event-major order.
      alt.graphs[0]->InsertBatch(batch, rows.data(), rows.size());
      continue;
    }
    // Negation: keep the scalar per-event schedule — negative graphs first
    // (reverse order), event by event. The graphs' own InsertBatch never
    // runs here, so the fallback is tallied engine-side.
    batch_negation_rows_ += rows.size();
    for (uint32_t row : rows) {
      const EventRef ref = batch.ref(row);
      for (size_t g = alt.graphs.size(); g-- > 0;) {
        alt.graphs[g]->Insert(ref);
      }
    }
  }
}

void GretaEngine::FlushBatch() {
  if (batch_.empty()) return;
  // Serial routing builds per-partition batches (partition creation and
  // broadcast buffering mutate shared state); delivery then runs in
  // parallel, one task per partition — the paper's parallel processing of
  // independent event trend groups (Section 7).
  std::unordered_map<Partition*, std::vector<Event>> per_partition;
  for (const Event& e : batch_) {
    if (static_cast<size_t>(e.type) >= route_table_.size() ||
        route_table_[e.type] == nullptr) {
      continue;  // Irrelevant type.
    }
    ++obs_events_routed_;
    const std::vector<AttrId>& ids = *route_table_[e.type];
    bool full = true;
    for (AttrId id : ids) full &= (id != kInvalidAttr);
    if (full) {
      route_key_.clear();
      for (AttrId id : ids) route_key_.push_back(e.attr(id));
      Partition* p = GetOrCreatePartition(route_key_, e.seq);
      per_partition[p].push_back(e);
    } else {
      BroadcastEvent b;
      b.event = e;
      b.has_attr.resize(ids.size());
      b.key_values.resize(ids.size());
      for (size_t i = 0; i < ids.size(); ++i) {
        b.has_attr[i] = (ids[i] != kInvalidAttr);
        if (b.has_attr[i]) b.key_values[i] = e.attr(ids[i]);
      }
      for (auto& [key, partition] : partitions_) {
        if (BroadcastMatches(b, key)) {
          per_partition[partition.get()].push_back(e);
        }
      }
      broadcast_buffer_.push_back(std::move(b));
    }
  }
  for (auto& [partition, events] : per_partition) {
    Partition* p = partition;
    std::vector<Event>* ev = &events;
    GRETA_TM(tm_deliveries_ += ev->size());
    pool_->Submit([this, p, ev] {
      for (const Event& e : *ev) DeliverToPartition(p, e);
    });
  }
  pool_->WaitIdle();
  batch_.clear();
}

Status GretaEngine::Flush() {
  if (pool_ != nullptr) FlushBatch();
  if (!saw_events_) return Status::Ok();
  if (plan_->window.unbounded()) {
    if (!flushed_unbounded_) {
      EmitWindow(0);
      flushed_unbounded_ = true;
    }
  } else if (next_close_valid_) {
    WindowId last = LastWindowOf(watermark_, plan_->window);
    while (next_close_ <= last) {
      EmitWindow(next_close_);
      ++next_close_;
    }
  }
  RefreshAggregateStats();
  return Status::Ok();
}

std::vector<ResultRow> GretaEngine::TakeResults() {
  // EngineInterface contract: drain everything. For a multi-query runtime
  // that is every query slot in query order — otherwise rows of slots
  // 1..n-1 would accumulate unbounded behind a generic harness.
  //
  // Refreshing the aggregate stats walks every partition's graphs, and
  // harnesses drain after every event — skip it while there is nothing to
  // drain (Flush() refreshes unconditionally, so final stats are exact).
  bool any = false;
  for (const std::vector<ResultRow>& rows : emitted_) any |= !rows.empty();
  if (!any) return {};
  RefreshAggregateStats();
  std::vector<ResultRow> out = std::move(emitted_[0]);
  emitted_[0].clear();
  for (size_t q = 1; q < emitted_.size(); ++q) {
    out.insert(out.end(), std::make_move_iterator(emitted_[q].begin()),
               std::make_move_iterator(emitted_[q].end()));
    emitted_[q].clear();
  }
  return out;
}

size_t GretaEngine::RecomputeTrackedBytes() const {
  size_t bytes = 0;
  for (const auto& [key, partition] : partitions_) {
    bytes += sizeof(Partition) + key.size() * sizeof(Value);
    for (const AltRuntime& alt : partition->alts) {
      for (const std::unique_ptr<GretaGraph>& g : alt.graphs) {
        bytes += g->RecomputeTrackedBytes();
      }
    }
  }
  return bytes;
}

std::vector<ResultRow> GretaEngine::TakeResultsFor(size_t q) {
  GRETA_CHECK(q < emitted_.size());
  if (emitted_[q].empty()) return {};
  RefreshAggregateStats();
  std::vector<ResultRow> out = std::move(emitted_[q]);
  emitted_[q].clear();
  return out;
}

void GretaEngine::RefreshAggregateStats() {
  size_t vertices = 0;
  size_t edges = 0;
  size_t batch_fast = 0;
  size_t batch_fallback = batch_negation_rows_;
  size_t simd_rows = 0;
  for (const auto& [key, partition] : partitions_) {
    (void)key;
    for (const AltRuntime& alt : partition->alts) {
      for (const std::unique_ptr<GretaGraph>& g : alt.graphs) {
        vertices += g->total_vertices();
        edges += g->edges_traversed();
        for (size_t r = 0; r < GretaGraph::kNumBatchStrategies; ++r) {
          batch_fast += g->batch_strategy_rows()[r];
        }
        for (size_t r = 0; r < GretaGraph::kNumBatchFallbackReasons; ++r) {
          batch_fallback += g->batch_fallback_rows()[r];
        }
        simd_rows += g->simd_rows();
      }
    }
  }
  stats_.vertices_stored = vertices;
  stats_.edges_traversed = edges;
  stats_.work_units = edges;
  stats_.peak_bytes = memory_->peak_bytes();
  stats_.batch_rows_fast = batch_fast;
  stats_.batch_rows_fallback = batch_fallback;
  stats_.simd_rows = simd_rows;
}

}  // namespace greta
