#ifndef GRETA_CORE_ENGINE_H_
#define GRETA_CORE_ENGINE_H_

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/memory.h"
#include "common/thread_pool.h"
#include "core/engine_interface.h"
#include "core/greta_graph.h"
#include "core/plan.h"
#include "telemetry/telemetry.h"

namespace greta {

/// Engine construction options.
struct EngineOptions {
  CounterMode counter_mode = CounterMode::kExact;
  Semantics semantics = Semantics::kSkipTillAnyMatch;
  /// >1 enables parallel processing of event trend groups (Section 7);
  /// events of one timestamp are micro-batched and dispatched per partition.
  int num_threads = 1;
  int max_windows_per_event = 64;
  /// Ablation knob (bench_ablation): disable tree-indexed predecessor range
  /// queries and fall back to scan + filter.
  bool enable_tree_ranges = true;
  /// Ablation knob: disable invalid event pruning (Theorem 5.1).
  bool enable_pruning = true;
  /// Ablation knob: disable the COUNT(*)-specialized propagation kernels
  /// and force the generic flag-tested path (kernel equivalence tests).
  bool enable_specialized_kernels = true;
  /// Ablation knob: disable the run-amortized batch propagation kernels;
  /// ProcessBatch then feeds the scalar insert kernel row by row. Results
  /// must be bit-identical either way.
  bool enable_batch_kernels = true;
  /// Ablation knob: keep every batch hot loop on the scalar reference
  /// implementations even when the process dispatched a vector ISA (see
  /// common/simd.h; the GRETA_SIMD env var narrows dispatch process-wide
  /// instead). Results must be bit-identical either way.
  bool enable_simd = true;
  /// External memory tracker shared across engines (multi-query runtimes,
  /// src/sharing/): when set, allocations are accounted there so the peak
  /// is a true point-in-time workload peak instead of a sum of per-engine
  /// peaks reached at different times. Must outlive the engine. Null: the
  /// engine tracks its own memory.
  MemoryTracker* memory = nullptr;
};

/// The GRETA runtime (Figure 4): filters and partitions the stream on vertex
/// predicates and grouping attributes, maintains one GRETA graph per
/// sub-pattern per partition, propagates aggregates along edges during graph
/// construction, and emits final aggregates incrementally at window close.
class GretaEngine : public EngineInterface {
 public:
  /// Compiles `spec` and builds the runtime. The catalog must outlive the
  /// engine.
  static StatusOr<std::unique_ptr<GretaEngine>> Create(
      const Catalog* catalog, const QuerySpec& spec,
      const EngineOptions& options = {});

  /// Multi-query shared execution (src/sharing/): compiles a cluster of
  /// share-compatible queries into ONE runtime whose graphs carry
  /// query-indexed aggregate cells. Events are filtered, partitioned and
  /// connected once; only the aggregate propagation runs per query. Results
  /// are drained per query with TakeResultsFor().
  static StatusOr<std::unique_ptr<GretaEngine>> CreateMulti(
      const Catalog* catalog, const std::vector<const QuerySpec*>& specs,
      const EngineOptions& options = {});

  /// Partial sharing (Hamlet): compiles a cluster of queries sharing a
  /// common Kleene sub-pattern prefix — but differing in pattern suffix or
  /// window length (equal slide) — into ONE runtime over a merged template.
  /// The shared core propagates one structural snapshot per (vertex,
  /// window); each query folds the snapshot into its own aggregates through
  /// its own continuation states and window range (BuildPartialSharedPlan).
  /// Emission timing: windows close on the cluster's UNION window, so a
  /// shorter-WITHIN query's rows (identical in content) surface up to
  /// `max_within - within` ticks of stream time later than a dedicated
  /// engine would emit them.
  static StatusOr<std::unique_ptr<GretaEngine>> CreatePartial(
      const Catalog* catalog, const std::vector<const QuerySpec*>& specs,
      const EngineOptions& options = {});

  ~GretaEngine() override;

  Status Process(const Event& e) override;

  /// Columnar ingest: processes a time-ordered batch, amortizing routing,
  /// window bookkeeping and graph insertion over runs of equal timestamps.
  /// Equivalent to Process(batch.ToEvent(i)) for every row — results are
  /// bit-identical — but rows of one timestamp are grouped per partition
  /// and delivered through the batch propagation kernels.
  Status ProcessBatch(const EventBatch& batch) override;

  Status Flush() override;
  std::vector<ResultRow> TakeResults() override;

  /// Per-window observation hook (adaptive sharing, src/sharing/): one
  /// entry per closed window with the events routed, vertices created and
  /// propagation edges traversed since the previous close. O(partitions)
  /// at window close (piggybacked on the emit walk), O(1) per event. The
  /// backlog is capped at 256 undrained windows (oldest dropped).
  std::vector<WindowObservation> TakeWindowObservations() override;

  /// Cumulative per-query EXPLAIN ANALYZE tallies, one slot per query slot
  /// (slot index == query_id; the sharing layer re-maps slots to workload
  /// query ids). Updated once per window close with plain members on the
  /// serial path — zero per-event cost. Structural counters are
  /// cluster-attributed (see QueryExecStats); rows_emitted is exact per
  /// slot. Empty until the first window closes.
  const std::vector<QueryExecStats>& query_exec_stats() const {
    return query_stats_;
  }

  /// Watermark hook for external drivers (src/runtime/ sharded execution):
  /// declares that every event with time < `now` has already been delivered,
  /// closing (and emitting) windows exactly as Process(e with e.time == now)
  /// would before routing — without consuming an event. Events at time ==
  /// `now` may still arrive afterwards. A watermark earlier than the current
  /// one is a no-op.
  Status AdvanceWatermark(Ts now);

  /// Drains the rows of query slot `q` (multi-query runtimes). TakeResults()
  /// is equivalent to TakeResultsFor(0).
  std::vector<ResultRow> TakeResultsFor(size_t q);
  size_t num_queries() const;
  const EngineStats& stats() const override { return stats_; }

  /// Recomputes the aggregate counters (vertices/edges/work/peak) from the
  /// graphs NOW. stats() is otherwise refreshed lazily at TakeResults /
  /// Flush; an external driver retiring this engine mid-run (adaptive
  /// migration) calls this first so the final snapshot is exact.
  void RefreshStats() { RefreshAggregateStats(); }
  const AggPlan& agg_plan() const override { return plan_->agg; }
  std::string name() const override { return "GRETA"; }

  const ExecPlan& plan() const { return *plan_; }

  /// The engine's memory tracker (own or shared via EngineOptions::memory).
  const MemoryTracker& memory() const { return *memory_; }

  /// Re-derives the bytes currently charged to the tracker by walking every
  /// partition's graphs and panes. O(everything) — accounting invariant
  /// tests only; must equal memory().current_bytes() for a single-engine
  /// tracker.
  size_t RecomputeTrackedBytes() const;

  /// Optional push-style delivery: invoked for every result row of query
  /// slot `q` the moment its window closes (before it is queued for
  /// TakeResults), e.g. to fire the paper's real-time sell signals without
  /// polling. Every slot of a multi-query runtime can register its own
  /// consumer; the one-argument overload targets the primary slot 0.
  void set_result_callback(size_t q,
                           std::function<void(const ResultRow&)> callback) {
    if (result_callbacks_.size() <= q) result_callbacks_.resize(q + 1);
    result_callbacks_[q] = std::move(callback);
  }
  void set_result_callback(std::function<void(const ResultRow&)> callback) {
    set_result_callback(0, std::move(callback));
  }

 private:
  GretaEngine(const Catalog* catalog, std::unique_ptr<ExecPlan> plan,
              const EngineOptions& options);

  struct AltRuntime {
    std::vector<std::unique_ptr<GretaGraph>> graphs;
    std::vector<std::unique_ptr<NegationLink>> links;
  };
  // The partition key lives only as the partitions_ map key.
  struct Partition {
    std::vector<AltRuntime> alts;
    // Batch routing: which run-group slot this partition owns in the
    // current RouteRun epoch (stale when group_epoch != the engine's).
    uint32_t group_epoch = 0;
    uint32_t group_slot = 0;
  };

  // A buffered event of a type lacking some key attributes, delivered to
  // every current and future partition whose key agrees on the attributes
  // the event does carry.
  struct BroadcastEvent {
    Event event;
    std::vector<bool> has_attr;     // per key attr
    std::vector<Value> key_values;  // valid where has_attr
  };

  void AdvanceTime(Ts now);
  void CloseWindowsUpTo(Ts now);
  void EmitWindow(WindowId wid);
  void Route(const Event& e);
  void RouteRun(const EventBatch& batch, size_t begin, size_t end);
  void DeliverToPartition(Partition* p, const Event& e);
  void DeliverBatchToPartition(Partition* p, const EventBatch& batch,
                               const std::vector<uint32_t>& rows);
  Partition* GetOrCreatePartition(const std::vector<Value>& key, SeqNo upto);
  bool BroadcastMatches(const BroadcastEvent& b,
                        const std::vector<Value>& key) const;
  void FlushBatch();
  void RefreshAggregateStats();

  const Catalog* catalog_;
  std::unique_ptr<ExecPlan> plan_;
  EngineOptions options_;
  MemoryTracker own_memory_;
  MemoryTracker* memory_ = &own_memory_;  // EngineOptions::memory if set
  std::unique_ptr<ThreadPool> pool_;  // null when single-threaded

  std::unordered_map<std::vector<Value>, std::unique_ptr<Partition>,
                     ValueVecHash, ValueVecEq>
      partitions_;
  // Scratch partition key reused across Route() calls: the hot path fills
  // it in place and only GetOrCreatePartition's miss branch copies it.
  std::vector<Value> route_key_;
  // Dense per-type routing table derived from plan_->key_attr_ids: the
  // per-event hash lookup becomes an index; nullptr marks irrelevant types.
  std::vector<const std::vector<AttrId>*> route_table_;
  std::deque<BroadcastEvent> broadcast_buffer_;

  // RouteRun scratch: per-partition row groups of the current equal-ts run.
  // Slots (and their index vectors) are reused across runs; partitions find
  // their slot through the epoch fields instead of a per-run hash map.
  struct RunGroup {
    Partition* partition = nullptr;
    std::vector<uint32_t> rows;
  };
  std::vector<RunGroup> run_groups_;
  size_t run_groups_used_ = 0;
  uint32_t route_epoch_ = 0;

  // Micro-batch of the current timestamp (parallel mode only).
  std::vector<Event> batch_;
  Ts batch_ts_ = kMinTs;

  Ts watermark_ = kMinTs;
  bool saw_events_ = false;
  bool flushed_unbounded_ = false;
  WindowId next_close_ = 0;
  bool next_close_valid_ = false;

  std::vector<std::vector<ResultRow>> emitted_;  // per query slot
  std::vector<std::function<void(const ResultRow&)>> result_callbacks_;
  EngineStats stats_;

  // Per-window observation state: routed-event counter reset at every
  // window close; last seen cumulative graph counters for the deltas.
  std::deque<WindowObservation> window_obs_;
  std::vector<QueryExecStats> query_stats_;  // sized lazily at first close
  size_t obs_events_routed_ = 0;
  size_t obs_prev_vertices_ = 0;
  size_t obs_prev_edges_ = 0;

  // Telemetry instruments, cached from the default registry at construction
  // (all null when telemetry is compiled out or runtime-disabled — every
  // update site branches on the pointer). Counters are registry-sharded, so
  // many engines (shards, clusters) share one named series.
  struct Instruments {
    telemetry::Counter* events_routed = nullptr;
    telemetry::Counter* vertices_created = nullptr;
    telemetry::Counter* edges_traversed = nullptr;
    telemetry::Counter* windows_closed = nullptr;
    // Indexed by PropKernel; only kinds present in the plan are registered.
    telemetry::Counter* kernel_dispatch[3] = {nullptr, nullptr, nullptr};
    // Batch-kernel coverage, indexed by GretaGraph::BatchFallbackReason /
    // BatchStrategy (labeled series; see ExplainTelemetry).
    telemetry::Counter* batch_fallback[GretaGraph::kNumBatchFallbackReasons] =
        {nullptr, nullptr, nullptr, nullptr};
    telemetry::Counter* batch_strategy[GretaGraph::kNumBatchStrategies] = {
        nullptr, nullptr, nullptr};
    // Rows through the dispatched vector kernels, labeled by the ISA
    // resolved at engine construction (greta_core_simd_rows_total{isa=...}).
    telemetry::Counter* simd_rows = nullptr;
    telemetry::Histogram* emit_ns = nullptr;  // window close-to-emit latency
    telemetry::Gauge* pane_bytes = nullptr;   // tracked bytes after a close
    telemetry::TraceRing* trace = nullptr;
  };
  Instruments tm_;
  // Graphs per kernel kind delivered per (event, partition): dispatch
  // counts are kernel_per_delivery_[k] * deliveries. Deliveries accumulate
  // in a plain member on the SERIAL routing paths (never inside
  // DeliverToPartition, which FlushBatch runs on pool threads) and flush
  // into the registry once per window close — the per-event hot path pays
  // one non-atomic increment, not an atomic counter update.
  uint64_t kernel_per_delivery_[3] = {0, 0, 0};
  uint64_t tm_deliveries_ = 0;
  uint64_t tm_prev_deliveries_ = 0;
  // Batch rows forced onto the per-event scalar schedule by negation
  // (DeliverBatchToPartition's multi-graph path never reaches the graphs'
  // own InsertBatch tally). Counted once per (row, alternative); serial
  // routing path only.
  size_t batch_negation_rows_ = 0;
  // Last flushed cumulative batch counters (summed across all graphs);
  // EmitWindow adds the delta into the registry, like kernel_dispatch.
  uint64_t tm_prev_batch_fallback_[GretaGraph::kNumBatchFallbackReasons] = {
      0, 0, 0, 0};
  uint64_t tm_prev_batch_strategy_[GretaGraph::kNumBatchStrategies] = {0, 0,
                                                                       0};
  uint64_t tm_prev_simd_rows_ = 0;
};

}  // namespace greta

#endif  // GRETA_CORE_ENGINE_H_
