#include "core/explain.h"

namespace greta {

namespace {

const char* KindName(NegationKind kind) {
  switch (kind) {
    case NegationKind::kBetween:
      return "case 1 (between)";
    case NegationKind::kTrailing:
      return "case 2 (trailing)";
    case NegationKind::kLeading:
      return "case 3 (leading)";
    case NegationKind::kNone:
      return "none";
  }
  return "?";
}

void ExplainGraph(const GraphPlan& gp, size_t index, const Catalog& catalog,
                  std::string* out) {
  *out += "  sub-pattern " + std::to_string(index) +
          (gp.negative ? " (negative" : " (positive");
  if (gp.negative) {
    *out += ", invalidates sub-pattern " + std::to_string(gp.parent) + ", " +
            KindName(gp.link_kind);
  }
  *out += ")\n";
  *out += "    template: " + gp.templ.ToString() + "\n";
  for (const TemplateState& s : gp.templ.states()) {
    const StatePlan& sp = gp.states[s.id];
    if (sp.local_preds.empty() && sp.sort_attr == kInvalidAttr) continue;
    *out += "    state " + s.label + ":";
    if (sp.sort_attr != kInvalidAttr) {
      *out += " tree key = " + catalog.type(s.type).attrs[sp.sort_attr].name;
    }
    for (const Expr* pred : sp.local_preds) {
      *out += " filter[" + pred->ToString(catalog) + "]";
    }
    *out += "\n";
  }
  const auto& transitions = gp.templ.transitions();
  for (size_t t = 0; t < transitions.size(); ++t) {
    if (gp.transitions[t].preds.empty()) continue;
    *out += "    transition " + gp.templ.states()[transitions[t].from].label +
            "->" + gp.templ.states()[transitions[t].to].label + ":";
    for (const EdgePredicatePlan& ep : gp.transitions[t].preds) {
      *out += " edge[" + ep.expr->ToString(catalog) + "]";
      if (ep.range.has_value()) {
        *out += ep.drives_sort_key ? " (tree range)" : " (range, residual)";
      }
    }
    *out += "\n";
  }
}

}  // namespace

std::string ExplainPlan(const ExecPlan& plan, const Catalog& catalog) {
  std::string out;
  out += "window: ";
  if (plan.window.unbounded()) {
    out += "unbounded";
  } else {
    out += "WITHIN " + std::to_string(plan.window.within) + " SLIDE " +
           std::to_string(plan.window.slide);
  }
  out += "; counters: ";
  out += (plan.mode == CounterMode::kExact) ? "exact" : "modular (2^64)";
  out += "\n";

  if (!plan.key_attrs.empty()) {
    out += "partition by:";
    for (size_t i = 0; i < plan.key_attrs.size(); ++i) {
      out += " " + plan.key_attrs[i];
      if (i < plan.num_group_attrs) out += "(group)";
    }
    out += "\n";
    out +=
        "sharding: partition-parallel (src/runtime/ hashes the partition "
        "key to a shard)\n";
  } else {
    out +=
        "sharding: none — no GROUP-BY or equivalence key; the sharded "
        "runtime routes every event to shard 0\n";
  }

  if (plan.groups.size() > 1) {
    out += "conjunction of " + std::to_string(plan.groups.size()) +
           " term groups (counts multiply)\n";
  }
  for (size_t a = 0; a < plan.alternatives.size(); ++a) {
    out += "alternative " + std::to_string(a);
    if (plan.alternatives.size() > 1) out += " (counts sum, disjoint)";
    out += ":\n";
    for (size_t g = 0; g < plan.alternatives[a].graphs.size(); ++g) {
      ExplainGraph(plan.alternatives[a].graphs[g], g, catalog, &out);
    }
  }
  return out;
}

}  // namespace greta
