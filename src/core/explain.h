#ifndef GRETA_CORE_EXPLAIN_H_
#define GRETA_CORE_EXPLAIN_H_

#include <string>

#include "core/plan.h"

namespace greta {

/// Renders a compiled ExecPlan for humans — the GRETA "configuration" the
/// query analyzer produces (Figure 4): templates per sub-pattern with
/// start/end states and transitions, negation links and their placement
/// cases, predicate attachments (vertex / edge, tree key ranges),
/// partitioning attributes, window and counter mode. Used by the examples
/// and handy when debugging query plans.
std::string ExplainPlan(const ExecPlan& plan, const Catalog& catalog);

}  // namespace greta

#endif  // GRETA_CORE_EXPLAIN_H_
