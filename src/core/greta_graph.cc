#include "core/greta_graph.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <new>
#include <numeric>

#include "common/simd.h"
#include "storage/window.h"

namespace greta {

GretaGraph::GretaGraph(const GraphPlan* plan, const ExecPlan* exec,
                       MemoryTracker* memory)
    : plan_(plan),
      exec_(exec),
      num_queries_(plan->aggs.empty() ? 1
                                      : static_cast<int>(plan->aggs.size())),
      panes_(PaneSize(exec->window), plan->templ.num_states(), memory),
      single_window_(MaxWindowsPerEvent(exec->window) == 1) {
  transition_links_.resize(plan_->templ.transitions().size());
  if (!exec_->window.unbounded() &&
      exec_->window.within == exec_->window.slide) {
    tumbling_slide_ = exec_->window.slide;
  }
  // Kernel dispatch: resolved once per graph, not branch-tested per edge.
  if (exec_->partial.has_value()) {
    insert_fn_ = &GretaGraph::InsertAtStatePartial;
  } else if (num_queries_ == 1) {
    switch (plan_->kernel) {
      case PropKernel::kCountModular:
        insert_fn_ =
            &GretaGraph::InsertAtState<PropKernel::kCountModular, true>;
        break;
      case PropKernel::kCountExact:
        insert_fn_ =
            &GretaGraph::InsertAtState<PropKernel::kCountExact, true>;
        break;
      case PropKernel::kGeneric:
        insert_fn_ = &GretaGraph::InsertAtState<PropKernel::kGeneric, true>;
        break;
    }
  } else {
    switch (plan_->kernel) {
      case PropKernel::kCountModular:
        insert_fn_ =
            &GretaGraph::InsertAtState<PropKernel::kCountModular, false>;
        break;
      case PropKernel::kCountExact:
        insert_fn_ =
            &GretaGraph::InsertAtState<PropKernel::kCountExact, false>;
        break;
      case PropKernel::kGeneric:
        insert_fn_ = &GretaGraph::InsertAtState<PropKernel::kGeneric, false>;
        break;
    }
  }

  // Plan-level batch fast-path eligibility (the link-dependent half lives in
  // BatchFastPathEligible, since negation links attach after construction).
  // The amortized kernel family relies only on the frozen-predecessor-set
  // property of strict trend order under skip-till-any-match — sliding
  // windows, every PropKernel, residual predicates and partial sharing are
  // all handled by strategy selection inside the run kernel (the planner
  // already restricts partial clusters to skip-till-any-match, so the
  // semantics test covers that path too).
  batch_plan_ok_ = exec_->enable_batch_kernels &&
                   exec_->semantics == Semantics::kSkipTillAnyMatch;
  for (size_t q = 0; q < static_cast<size_t>(num_queries_); ++q) {
    any_sum_ |= AggAt(q).need_sum;
  }
  if (batch_plan_ok_) {
    state_filters_.reserve(plan_->states.size());
    std::vector<AttrId> fast_uses;
    for (const StatePlan& sp : plan_->states) {
      state_filters_.emplace_back(sp.local_preds);
      state_filters_.back().AppendFastAttrUses(&fast_uses);
    }
    // Cost-based projection policy: decomposing a column costs one pass
    // over every group row, so it only pays when enough filter kernel
    // passes read it back (several predicates on the attr, or several
    // states of the same type re-filtering the same rows). Attrs below the
    // threshold keep the compiled scalar loops, which read the tagged
    // union in place for free.
    for (AttrId a : fast_uses) {
      size_t uses = 0;
      for (AttrId b : fast_uses) uses += b == a ? 1 : 0;
      bool seen = false;
      for (AttrId b : proj_attrs_) seen = seen || b == a;
      if (uses >= kMinProjectedAttrUses && !seen) proj_attrs_.push_back(a);
    }
    edge_filters_.reserve(plan_->transitions.size());
    for (const TransitionPlan& tp : plan_->transitions) {
      edge_filters_.emplace_back(tp.residual_preds);
    }
    if (exec_->partial.has_value()) {
      insert_run_fn_ = &GretaGraph::InsertRunFastPartial;
    } else {
      switch (plan_->kernel) {
        case PropKernel::kCountModular:
          insert_run_fn_ =
              &GretaGraph::InsertRunFast<PropKernel::kCountModular>;
          break;
        case PropKernel::kCountExact:
          insert_run_fn_ = &GretaGraph::InsertRunFast<PropKernel::kCountExact>;
          break;
        case PropKernel::kGeneric:
          insert_run_fn_ = &GretaGraph::InsertRunFast<PropKernel::kGeneric>;
          break;
      }
    }
  }
}

void GretaGraph::AttachTransitionLink(int transition_index,
                                      NegationLink* link) {
  GRETA_CHECK(transition_index >= 0 &&
              static_cast<size_t>(transition_index) <
                  transition_links_.size());
  transition_links_[transition_index].push_back(link);
  has_negation_links_ = true;
}

void GretaGraph::AttachGraphLink(NegationLink* link) {
  graph_links_.push_back(link);
}

void GretaGraph::AttachFollowLink(NegationLink* link) {
  follow_links_.push_back(link);
}

Ts GretaGraph::TransitionBarrier(int transition_index, WindowId wid, Ts now) {
  Ts barrier = kMinTs;
  for (NegationLink* link : transition_links_[transition_index]) {
    barrier = std::max(barrier, link->MaxStartBarrier(wid, now));
  }
  for (NegationLink* link : graph_links_) {
    barrier = std::max(barrier, link->MaxStartBarrier(wid, now));
  }
  return barrier;
}

void GretaGraph::Insert(const EventRef& e) {
  const std::vector<StateId>& states = plan_->templ.states_for_type(e.type);
  if (states.empty()) return;
  bool seen = false;
  for (StateId s : states) {
    seen |= (this->*insert_fn_)(e, s);
  }
  // Contiguous semantics: remember the newest event this graph has seen
  // (events failing vertex predicates "cannot be matched" and are skipped
  // under every semantics).
  if (seen) last_seen_seq_ = e.seq;
}

GraphVertex* GretaGraph::StoreVertex(const EventRef& e, StateId s,
                                     WindowId first_wid, int k, int nq,
                                     AggCell* src_cells) {
  const StatePlan& sp = plan_->states[s];
  const int total = k * nq;

  // Move the finished source cells and the stored attribute prefix into
  // the arena of the pane that will own the vertex, then insert. The
  // following Insert() into the same pane picks up the arena growth for
  // incremental accounting.
  Arena* arena = panes_.ArenaFor(e.time);
  AggCell* cells = arena->AllocateArray<AggCell>(total);
  for (int i = 0; i < total; ++i) {
    new (&cells[i]) AggCell(std::move(src_cells[i]));
  }
  uint16_t num_attrs = sp.stored_attr_count;
  GRETA_DCHECK(num_attrs <= e.num_attrs);
  if (num_attrs > e.num_attrs) {
    num_attrs = static_cast<uint16_t>(e.num_attrs);
  }
  const Value* attrs = nullptr;
  if (num_attrs > 0) {
    Value* copy = arena->AllocateArray<Value>(num_attrs);
    std::copy_n(e.attrs, num_attrs, copy);
    attrs = copy;
  }

  GraphVertex v;
  v.time = e.time;
  v.seq = e.seq;
  v.cells = cells;
  v.attrs = attrs;
  v.first_wid = first_wid;
  v.state = s;
  v.num_cells = total;
  v.num_wids = static_cast<int16_t>(k);
  v.num_queries = static_cast<int16_t>(nq);
  v.num_attrs = num_attrs;

  double key = (sp.sort_attr == kInvalidAttr)
                   ? static_cast<double>(e.time)
                   : e.attr(sp.sort_attr).ToDouble();
  GraphVertex* stored =
      panes_.Insert(e.time, static_cast<size_t>(s), key, std::move(v));
  ++total_vertices_;
  return stored;
}

template <PropKernel K, bool kSingleQuery>
bool GretaGraph::InsertAtState(const EventRef& e, StateId s) {
  const StatePlan& sp = plan_->states[s];
  for (const Expr* pred : sp.local_preds) {
    if (!pred->EvalVertex(e).Truthy()) return false;
  }

  const WindowSpec& window = exec_->window;
  WindowId first_wid, last_wid;
  if (tumbling_slide_ > 0) {
    // Tumbling window: one id, one division.
    first_wid = last_wid = LastWindowOf(e.time, window);
  } else {
    first_wid = FirstWindowOf(e.time, window);
    last_wid = LastWindowOf(e.time, window);
  }
  int k = static_cast<int>(last_wid - first_wid + 1);
  GRETA_DCHECK(k >= 1 && k <= 64);

  const int nq = kSingleQuery ? 1 : num_queries_;
  GRETA_DCHECK(nq == num_queries_);
  scratch_cells_.assign(static_cast<size_t>(k) * nq, AggCell());
  AggCell* const cells = scratch_cells_.data();
  auto vcell = [&](WindowId wid) { return cells + (wid - first_wid) * nq; };

  // Case-3 negation: windows in which a leading negative sub-pattern has
  // already finished reject new following-state events entirely. Activity is
  // a property of the pattern, so it is shared by every query slot.
  bool any_active = false;
  for (int i = 0; i < k; ++i) {
    WindowId wid = first_wid + i;
    bool active = true;
    for (NegationLink* link : follow_links_) {
      if (link->foll_state() != s) continue;
      if (link->MinEndBarrier(wid, e.time) < e.time) {
        active = false;
        break;
      }
    }
    for (int q = 0; q < nq; ++q) {
      cells[static_cast<size_t>(i) * nq + q].active = active;
    }
    any_active |= active;
  }
  if (!any_active) return true;

  bool is_start = plan_->templ.IsStart(s);
  bool found_pred = false;

  const bool skip_till_next =
      exec_->semantics == Semantics::kSkipTillNextMatch;
  const bool contiguous = exec_->semantics == Semantics::kContiguous;

  for (StateId p : plan_->templ.pred_states(s)) {
    int t_idx = plan_->templ.FindTransition(p, s);
    GRETA_DCHECK(t_idx >= 0);
    const TransitionPlan& tp = plan_->transitions[t_idx];

    // Negation barriers per shared window (Cases 1 and 2).
    const bool has_barriers =
        !transition_links_[t_idx].empty() || !graph_links_.empty();
    std::vector<Ts> barrier;
    if (has_barriers) {
      barrier.resize(k);
      for (int i = 0; i < k; ++i) {
        barrier[i] = TransitionBarrier(t_idx, first_wid + i, e.time);
      }
    }

    // Key range on the predecessor tree from the sort-key predicates.
    KeyBounds bounds = CombineTransitionBounds(tp, e);

    Ts lo_time = window.unbounded() ? kMinTs : WindowStartTime(first_wid, window);
    const bool can_prune = exec_->enable_pruning && single_window_ &&
                           has_barriers &&
                           plan_->templ.succ_states(p).size() == 1;

    panes_.ScanBucket(lo_time, e.time, static_cast<size_t>(p), bounds,
                      [&](GraphVertex* u) {
      if (u->dead) return;
      if (u->time >= e.time) return;  // Strict trend order (Def. 1).
      if (contiguous && u->seq != last_seen_seq_) return;
      if (skip_till_next && ((u->used_transitions >> t_idx) & 1)) return;
      // Residual edge predicates (those not enforced by the key range).
      for (const Expr* pred : tp.residual_preds) {
        if (!pred->EvalEdge(u->view(), e).Truthy()) return;
      }
      WindowId lo_w = std::max(first_wid, u->first_wid);
      WindowId hi_w =
          std::min(last_wid, u->first_wid + WindowId{u->num_wids} - 1);
      if (lo_w > hi_w) return;
      bool contributed = false;
      bool barred_everywhere = has_barriers;
      for (WindowId w = lo_w; w <= hi_w; ++w) {
        // Connectivity (active, count, barriers) is per (vertex, window) and
        // identical across query slots — only the propagated aggregates
        // differ, so the per-query loop sits inside the structural checks.
        // (nq is a compile-time 1 in the kSingleQuery instantiations, so
        // the stride arithmetic and the slot loops fold away.)
        const AggCell* urow = u->cells + (w - u->first_wid) * nq;
        AggCell* vrow = vcell(w);
        if (!urow->active || !vrow->active || urow->count.IsZero()) {
          barred_everywhere = false;
          continue;
        }
        if (has_barriers && u->time < barrier[w - first_wid]) continue;
        if constexpr (K == PropKernel::kCountModular) {
          // COUNT(*)-only, wrapping counters: a tight u64 add over the
          // contiguous (window, query) cell span — no flag tests, no
          // promotion checks (Counter::Add inlines to low_ += low_).
          for (int q = 0; q < nq; ++q) {
            vrow[q].count.Add(urow[q].count, CounterMode::kModular);
          }
        } else if constexpr (K == PropKernel::kCountExact) {
          // COUNT(*)-only exact: same span add through the u64 fast path,
          // promoting to BigUInt only at 64-bit overflow.
          for (int q = 0; q < nq; ++q) {
            vrow[q].count.Add(urow[q].count, CounterMode::kExact);
          }
        } else {
          vrow[0].AddPredecessor(urow[0], AggAt(0));
          for (int q = 1; q < nq; ++q) {
            vrow[q].AddPredecessor(urow[q], AggAt(q));
          }
        }
        contributed = true;
        barred_everywhere = false;
        ++edges_;
      }
      if (contributed) {
        found_pred = true;
        if (skip_till_next) u->used_transitions |= uint64_t{1} << t_idx;
      } else if (barred_everywhere && can_prune && lo_w == u->first_wid &&
                 hi_w == u->first_wid + u->num_wids - 1) {
        // Invalid event pruning (Theorem 5.1): u can only ever connect via
        // this transition and is invalid in all its windows.
        u->dead = true;
      }
    });
  }

  if (!is_start && !found_pred) return true;  // Not inserted (Algorithm 2).

  for (int i = 0; i < k; ++i) {
    for (int q = 0; q < nq; ++q) {
      AggCell& cell = cells[static_cast<size_t>(i) * nq + q];
      if (!cell.active) continue;
      if constexpr (K == PropKernel::kCountModular) {
        if (is_start) cell.count.AddOne(CounterMode::kModular);
      } else if constexpr (K == PropKernel::kCountExact) {
        if (is_start) cell.count.AddOne(CounterMode::kExact);
      } else {
        cell.FinishVertex(e, is_start, AggAt(q));
      }
    }
  }

  GraphVertex* stored =
      StoreVertex(e, s, first_wid, k, nq, scratch_cells_.data());

  if (plan_->templ.IsEnd(s)) {
    const bool incremental_final = graph_links_.empty();
    for (int i = 0; i < k; ++i) {
      const AggCell* row = stored->cells + static_cast<size_t>(i) * nq;
      if (!row->active || row->count.IsZero()) continue;
      WindowId wid = first_wid + i;
      if (incremental_final) {
        std::vector<AggOutputs>& out = *ResultsFor(wid);
        if constexpr (K == PropKernel::kCountModular) {
          for (int q = 0; q < nq; ++q) {
            out[q].count.Add(row[q].count, CounterMode::kModular);
            out[q].any = true;
          }
        } else if constexpr (K == PropKernel::kCountExact) {
          for (int q = 0; q < nq; ++q) {
            out[q].count.Add(row[q].count, CounterMode::kExact);
            out[q].any = true;
          }
        } else {
          for (int q = 0; q < nq; ++q) {
            out[q].AccumulateEnd(row[q], AggAt(q));
          }
        }
      }
      if (out_link_ != nullptr) {
        out_link_->ReportTrendEnd(wid, e.time, row->max_start);
      }
    }
  }
  return true;
}

bool GretaGraph::InsertAtStatePartial(const EventRef& e, StateId s) {
  const PartialSharingPlan& partial = *exec_->partial;
  const StatePlan& sp = plan_->states[s];
  for (const Expr* pred : sp.local_preds) {
    if (!pred->EvalVertex(e).Truthy()) return false;
  }

  // Core vertices span the cluster's union window range; a continuation
  // vertex spans its owner's own range (same slide, so the same window-id
  // grid — the per-query WITHIN only trims the front of the range).
  const int owner = partial.state_owner[s];
  const WindowSpec& window =
      owner < 0 ? exec_->window : partial.windows[owner];
  WindowId first_wid = FirstWindowOf(e.time, window);
  WindowId last_wid = LastWindowOf(e.time, window);
  int k = static_cast<int>(last_wid - first_wid + 1);
  GRETA_DCHECK(k >= 1 && k <= 64);
  const int stride =
      owner < 0 ? 1 + static_cast<int>(partial.num_fold_slots) : 1;

  scratch_cells_.assign(static_cast<size_t>(k) * stride, AggCell());
  AggCell* const cells = scratch_cells_.data();
  auto vcell = [&](WindowId wid, size_t q = 0) {
    return cells + (wid - first_wid) * stride + q;
  };

  // The merged start state is the shared Kleene core's start, shared by
  // every query; continuation states are never starts.
  const bool is_start = plan_->templ.IsStart(s);
  bool found_pred = false;

  for (StateId p : plan_->templ.pred_states(s)) {
    int t_idx = plan_->templ.FindTransition(p, s);
    GRETA_DCHECK(t_idx >= 0);
    const TransitionPlan& tp = plan_->transitions[t_idx];
    const int t_owner = partial.transition_owner[t_idx];
    const int p_owner = partial.state_owner[p];

    KeyBounds bounds = CombineTransitionBounds(tp, e);

    Ts lo_time =
        window.unbounded() ? kMinTs : WindowStartTime(first_wid, window);
    panes_.ScanBucket(lo_time, e.time, static_cast<size_t>(p), bounds,
                      [&](GraphVertex* u) {
      if (u->time >= e.time) return;  // Strict trend order (Def. 1).
      for (const Expr* pred : tp.residual_preds) {
        if (!pred->EvalEdge(u->view(), e).Truthy()) return;
      }
      WindowId lo_w = std::max(first_wid, u->first_wid);
      WindowId hi_w =
          std::min(last_wid, u->first_wid + WindowId{u->num_wids} - 1);
      if (lo_w > hi_w) return;
      bool contributed = false;
      if (t_owner < 0) {
        // Core-internal edge: ONE snapshot propagation per window (the
        // structural count every query reads), plus the per-query folds.
        for (WindowId w = lo_w; w <= hi_w; ++w) {
          const AggCell* uc = u->cell(w);
          if (uc->count.IsZero()) continue;
          vcell(w)->count.Add(uc->count, exec_->mode);
          for (size_t f = 1; f <= partial.num_fold_slots; ++f) {
            vcell(w, f)->AddPredecessorFold(
                *u->cell(w, f), AggAt(partial.fold_queries[f - 1]));
          }
          contributed = true;
          ++edges_;
        }
      } else {
        // Query-owned edge (core hand-off or continuation-internal): only
        // the owner's aggregates move.
        const size_t q = static_cast<size_t>(t_owner);
        const AggPlan& qagg = AggAt(q);
        const int fold = partial.fold_slots[q];
        for (WindowId w = lo_w; w <= hi_w; ++w) {
          AggCell* vc = vcell(w);
          const AggCell* uc = u->cell(w);
          if (uc->count.IsZero()) continue;
          if (p_owner < 0) {
            // Hand-off: fold the shared snapshot into q's continuation.
            vc->count.Add(uc->count, qagg.mode);
            if (fold >= 0) vc->AddPredecessorFold(*u->cell(w, fold), qagg);
          } else {
            vc->AddPredecessor(*uc, qagg);
          }
          contributed = true;
          ++edges_;
        }
      }
      if (contributed) found_pred = true;
    });
  }

  if (!is_start && !found_pred) return true;  // Not inserted (Algorithm 2).

  if (owner < 0) {
    for (int i = 0; i < k; ++i) {
      AggCell& snap = cells[static_cast<size_t>(i) * stride];
      if (is_start) snap.count.AddOne(exec_->mode);
      for (size_t f = 1; f <= partial.num_fold_slots; ++f) {
        cells[static_cast<size_t>(i) * stride + f].FinishVertexFold(
            e, snap.count, AggAt(partial.fold_queries[f - 1]));
      }
    }
  } else {
    for (int i = 0; i < k; ++i) {
      cells[i].FinishVertex(e, /*is_start=*/false, AggAt(owner));
    }
  }

  GraphVertex* stored =
      StoreVertex(e, s, first_wid, k, stride, scratch_cells_.data());

  // Incremental final aggregates for every query whose END is this state.
  const size_t nq = plan_->aggs.size();
  for (size_t q = 0; q < nq; ++q) {
    if (partial.end_states[q] != s) continue;
    const AggPlan& qagg = AggAt(q);
    if (owner < 0) {
      // Core END (the query's whole pattern is the shared core): only the
      // windows live under q's own WITHIN read the snapshot.
      WindowId q_first = FirstWindowOf(e.time, partial.windows[q]);
      const int fold = partial.fold_slots[q];
      for (WindowId w = std::max(first_wid, q_first); w <= last_wid; ++w) {
        const AggCell* snap = stored->cell(w);
        if (snap->count.IsZero()) continue;
        std::vector<AggOutputs>& out = *ResultsFor(w);
        out[q].AccumulateEndShared(
            snap->count, fold >= 0 ? stored->cell(w, fold) : nullptr, qagg);
      }
    } else {
      for (int i = 0; i < k; ++i) {
        const AggCell& cell = stored->cells[i];
        if (cell.count.IsZero()) continue;
        std::vector<AggOutputs>& out = *ResultsFor(first_wid + i);
        out[q].AccumulateEnd(cell, qagg);
      }
    }
  }
  return true;
}

void GretaGraph::InsertBatch(const EventBatch& batch, const uint32_t* rows,
                             size_t n) {
  if (n == 0) return;
  batch_simd_ =
      exec_->enable_simd && simd::DispatchedIsa() != simd::Isa::kScalar;
  if (!BatchFastPathEligible()) {
    const BatchFallbackReason reason =
        !exec_->enable_batch_kernels ? BatchFallbackReason::kDisabled
        : exec_->semantics != Semantics::kSkipTillAnyMatch
            ? BatchFallbackReason::kSemantics
            : BatchFallbackReason::kNegation;
    batch_fallback_rows_[static_cast<size_t>(reason)] += n;
    for (size_t i = 0; i < n; ++i) Insert(batch.ref(rows[i]));
    return;
  }
  // Decompose this group's fast-predicate attrs once, group-dense: lane k
  // holds batch row rows[k], so the per-run selections below are runs of
  // consecutive positions and the filter kernels load contiguously instead
  // of gathering partition-strided batch rows.
  group_proj_ready_ = batch_simd_ && !proj_attrs_.empty();
  if (group_proj_ready_) group_proj_.ProjectRows(batch, proj_attrs_, rows, n);
  group_rows_ = rows;
  // Split into equal-timestamp runs: within a run the strict trend order
  // (Def. 1, u.time < e.time) makes the predecessor set identical for every
  // event, so the run shares one collection and one window-id range.
  size_t i = 0;
  while (i < n) {
    Ts ts = batch.time(rows[i]);
    size_t j = i + 1;
    while (j < n && batch.time(rows[j]) == ts) ++j;
    run_base_ = i;
    (this->*insert_run_fn_)(batch, rows + i, j - i, ts);
    i = j;
  }
}

bool GretaGraph::CollectRunEntries(const std::vector<StateId>& pred_states,
                                   Ts lo_time, Ts ts, size_t m,
                                   bool lower_only, bool check_dead,
                                   WindowId first_wid, WindowId last_wid) {
  const size_t nt = pred_states.size();
  run_entries_.clear();
  run_spans_.assign(1, 0);
  bool nan_key = false;
  for (size_t t = 0; t < nt; ++t) {
    // The weakest per-event bounds over the run: the minimum lo / maximum hi,
    // preferring non-strict at ties, so the collection is a superset of every
    // event's own scan. Entries outside the run's window range or zero in
    // every shared window can never contribute to any run event and are
    // dropped here once instead of re-tested per event.
    const double* lo_col = run_lo_.data() + t * m;
    const uint8_t* lo_strict_col = run_lo_strict_.data() + t * m;
    KeyBounds collect;
    collect.lo = lo_col[0];
    collect.lo_strict = lo_strict_col[0] != 0;
    for (size_t i = 1; i < m; ++i) {
      if (lo_col[i] < collect.lo ||
          (lo_col[i] == collect.lo && !lo_strict_col[i])) {
        collect.lo = lo_col[i];
        collect.lo_strict = lo_strict_col[i] != 0;
      }
    }
    if (!lower_only) {
      const double* hi_col = run_hi_.data() + t * m;
      const uint8_t* hi_strict_col = run_hi_strict_.data() + t * m;
      collect.hi = hi_col[0];
      collect.hi_strict = hi_strict_col[0] != 0;
      for (size_t i = 1; i < m; ++i) {
        if (hi_col[i] > collect.hi ||
            (hi_col[i] == collect.hi && !hi_strict_col[i])) {
          collect.hi = hi_col[i];
          collect.hi_strict = hi_strict_col[i] != 0;
        }
      }
    }
    panes_.ScanBucketWithKey(
        lo_time, ts, static_cast<size_t>(pred_states[t]), collect,
        [&](double key, GraphVertex* u) {
          if (check_dead && u->dead) return;
          if (u->time >= ts) return;  // Strict trend order (Def. 1).
          if (std::isnan(key)) {
            nan_key = true;
            return;
          }
          WindowId lo_w = std::max(first_wid, u->first_wid);
          WindowId hi_w =
              std::min(last_wid, u->first_wid + WindowId{u->num_wids} - 1);
          if (lo_w > hi_w) return;
          bool live = false;
          for (WindowId w = lo_w; w <= hi_w && !live; ++w) {
            live = !u->cell(w)->count.IsZero();
          }
          if (!live) return;
          run_entries_.push_back({key, u});
        });
    run_spans_.push_back(run_entries_.size());
  }
  if (nan_key) return false;
  run_views_.resize(run_entries_.size());
  for (size_t i = 0; i < run_entries_.size(); ++i) {
    run_views_[i] = run_entries_[i].u->view();
  }
  return true;
}

template <PropKernel K>
void GretaGraph::InsertRunFast(const EventBatch& batch, const uint32_t* rows,
                               size_t n, Ts ts) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const WindowSpec& window = exec_->window;
  WindowId first_wid, last_wid;
  if (tumbling_slide_ > 0) {
    first_wid = last_wid = LastWindowOf(ts, window);  // One division.
  } else {
    first_wid = FirstWindowOf(ts, window);
    last_wid = LastWindowOf(ts, window);
  }
  const int k = static_cast<int>(last_wid - first_wid + 1);
  GRETA_DCHECK(k >= 1 && k <= 64);
  const Ts lo_time =
      window.unbounded() ? kMinTs : WindowStartTime(first_wid, window);
  const int nq = num_queries_;
  const size_t cell_stride = static_cast<size_t>(k) * nq;

  // last_seen_seq_ bookkeeping (contiguous semantics, unread on this path
  // but kept exact): the newest run event passing local predicates at any
  // state. Row indices ascend within a run, so a max over rows suffices.
  uint32_t last_seen_row = 0;
  bool any_seen = false;

  const size_t num_states = plan_->states.size();
  for (size_t si = 0; si < num_states; ++si) {
    const StateId s = static_cast<StateId>(si);
    const StatePlan& sp = plan_->states[si];

    // Selection vector: run rows of this state's type passing its local
    // predicates (column loops; see predicate/batch_filter.h).
    run_sel_.clear();
    size_t m;
    if (group_proj_ready_) {
      // Select by consecutive projection lane, filter through the vector
      // kernels, then map surviving positions back to batch rows.
      run_pos_.clear();
      for (size_t r = 0; r < n; ++r) {
        if (batch.type(rows[r]) == sp.type) {
          run_pos_.push_back(static_cast<uint32_t>(run_base_ + r));
        }
      }
      if (run_pos_.empty()) continue;
      m = state_filters_[si].Filter(batch, group_proj_, group_rows_,
                                    run_pos_.data(), run_pos_.size());
      run_sel_.resize(m);
      for (size_t k = 0; k < m; ++k) run_sel_[k] = group_rows_[run_pos_[k]];
    } else {
      for (size_t r = 0; r < n; ++r) {
        if (batch.type(rows[r]) == sp.type) run_sel_.push_back(rows[r]);
      }
      if (run_sel_.empty()) continue;
      m = state_filters_[si].Filter(batch, run_sel_.data(), run_sel_.size());
      run_sel_.resize(m);
    }
    if (m == 0) continue;
    if (!any_seen || run_sel_.back() > last_seen_row) {
      last_seen_row = run_sel_.back();
      any_seen = true;
    }

    // Per-(transition, event) key bounds, and the run classification that
    // picks the strategy: `uniform` (every event resolves bitwise-identical
    // bounds), `lower_only` (no finite/strict upper bound anywhere) and
    // whether any transition carries residual predicates.
    const std::vector<StateId>& pred_states = plan_->templ.pred_states(s);
    const size_t nt = pred_states.size();
    run_tidx_.resize(nt);
    run_lo_.assign(nt * m, -kInf);
    run_hi_.assign(nt * m, kInf);
    run_lo_strict_.assign(nt * m, 0);
    run_hi_strict_.assign(nt * m, 0);
    bool has_residuals = false;
    bool nan_bounds = false;
    bool uniform = true;
    bool lower_only = true;
    for (size_t t = 0; t < nt && !nan_bounds; ++t) {
      int t_idx = plan_->templ.FindTransition(pred_states[t], s);
      GRETA_DCHECK(t_idx >= 0);
      run_tidx_[t] = t_idx;
      const TransitionPlan& tp = plan_->transitions[t_idx];
      has_residuals |= !tp.residual_preds.empty();
      for (size_t i = 0; i < m; ++i) {
        KeyBounds b = CombineTransitionBounds(tp, batch.view(run_sel_[i]));
        if (std::isnan(b.lo) || std::isnan(b.hi)) {
          nan_bounds = true;
          break;
        }
        const size_t at = t * m + i;
        run_lo_[at] = b.lo;
        run_hi_[at] = b.hi;
        run_lo_strict_[at] = b.lo_strict ? 1 : 0;
        run_hi_strict_[at] = b.hi_strict ? 1 : 0;
        uniform &= b.lo == run_lo_[t * m] && b.hi == run_hi_[t * m] &&
                   run_lo_strict_[at] == run_lo_strict_[t * m] &&
                   run_hi_strict_[at] == run_hi_strict_[t * m];
        lower_only &= b.hi == kInf && !b.hi_strict;
      }
    }

    // Strategy ladder. SharedFold replays one scalar scan for the whole run
    // (valid for every kernel, including order-sensitive SUM: identical
    // entries in identical order, and copying the folded row is bitwise).
    // SuffixMerge re-associates additions across events, so it is reserved
    // for order-insensitive aggregates (no SUM) with pure lower bounds.
    // PerEvent replays the scalar kernel's exact op order per event over the
    // shared collection and handles everything else.
    BatchStrategy strat;
    if (!has_residuals && uniform) {
      strat = BatchStrategy::kSharedFold;
    } else if (!has_residuals && lower_only && !any_sum_) {
      strat = BatchStrategy::kSuffixMerge;
    } else {
      strat = BatchStrategy::kPerEvent;
    }

    // NaN bounds — and NaN tree keys under the collection-based strategies —
    // take the scalar kernel per (state, run): value-based re-filtering only
    // agrees with the tree's positional scans on real keys. Correct at this
    // granularity because same-timestamp insertions commute under
    // skip-till-any-match. Collection happens before any fold, so the
    // fallback discards cleanly.
    if (nan_bounds ||
        (strat != BatchStrategy::kSharedFold &&
         !CollectRunEntries(pred_states, lo_time, ts, m,
                            strat == BatchStrategy::kSuffixMerge,
                            /*check_dead=*/true, first_wid, last_wid))) {
      batch_fallback_rows_[static_cast<size_t>(
          BatchFallbackReason::kBounds)] += m;
      for (size_t i = 0; i < m; ++i) {
        (this->*insert_fn_)(batch.ref(run_sel_[i]), s);
      }
      continue;
    }

    run_cells_.assign(m * cell_stride, AggCell());
    run_found_.assign(m, 0);
    const bool is_start = plan_->templ.IsStart(s);

    if (strat == BatchStrategy::kSharedFold) {
      // Every event admits the same entries: fold the bucket once into an
      // accumulator row and copy it into each event's cells.
      run_acc_.assign(cell_stride, AggCell());
      AggCell* const acc = run_acc_.data();
      bool any_entry = false;
      size_t shared_edges = 0;
      for (size_t t = 0; t < nt; ++t) {
        KeyBounds bounds;
        bounds.lo = run_lo_[t * m];
        bounds.hi = run_hi_[t * m];
        bounds.lo_strict = run_lo_strict_[t * m] != 0;
        bounds.hi_strict = run_hi_strict_[t * m] != 0;
        panes_.ScanBucket(
            lo_time, ts, static_cast<size_t>(pred_states[t]), bounds,
            [&](GraphVertex* u) {
              if (u->dead) return;
              if (u->time >= ts) return;  // Strict trend order (Def. 1).
              WindowId lo_w = std::max(first_wid, u->first_wid);
              WindowId hi_w = std::min(
                  last_wid, u->first_wid + WindowId{u->num_wids} - 1);
              if (lo_w > hi_w) return;
              for (WindowId w = lo_w; w <= hi_w; ++w) {
                const AggCell* urow =
                    u->cells + (w - u->first_wid) * u->num_queries;
                if (urow->count.IsZero()) continue;
                AggCell* arow = acc + static_cast<size_t>(w - first_wid) * nq;
                if constexpr (K == PropKernel::kCountModular) {
                  for (int q = 0; q < nq; ++q) {
                    arow[q].count.Add(urow[q].count, CounterMode::kModular);
                  }
                } else if constexpr (K == PropKernel::kCountExact) {
                  for (int q = 0; q < nq; ++q) {
                    arow[q].count.Add(urow[q].count, CounterMode::kExact);
                  }
                } else {
                  for (int q = 0; q < nq; ++q) {
                    arow[q].AddPredecessor(urow[q], AggAt(q));
                  }
                }
                any_entry = true;
                ++shared_edges;
              }
            });
      }
      edges_ += shared_edges * m;
      if (any_entry) {
        for (size_t i = 0; i < m; ++i) {
          run_found_[i] = 1;
          AggCell* vrow = run_cells_.data() + i * cell_stride;
          for (size_t c = 0; c < cell_stride; ++c) vrow[c] = acc[c];
        }
      }
    } else if (strat == BatchStrategy::kSuffixMerge) {
      for (size_t t = 0; t < nt; ++t) {
        const size_t begin = run_spans_[t];
        const size_t end = run_spans_[t + 1];
        if (begin == end) continue;
        // Entries arrive pane-major: a sliding collection spanning panes is
        // not globally key-sorted, so sort on demand (unstable is fine —
        // equal keys are consumed all-or-none and these folds commute).
        CollectedEntry* const ents = run_entries_.data();
        const auto by_key = [](const CollectedEntry& a,
                               const CollectedEntry& b) {
          return a.key < b.key;
        };
        if (!std::is_sorted(ents + begin, ents + end, by_key)) {
          std::sort(ents + begin, ents + end, by_key);
        }

        // Events ordered by descending lo (strict before non-strict at
        // equal lo): admitted entry sets are then nested suffixes of the
        // key-sorted collection, so a single backwards two-pointer merge
        // accumulates each entry into the running fold exactly once. Each
        // event pays one add per (window, query) for its whole admitted set
        // instead of one per edge.
        const double* lo_col = run_lo_.data() + t * m;
        const uint8_t* strict_col = run_lo_strict_.data() + t * m;
        run_order_.resize(m);
        std::iota(run_order_.begin(), run_order_.end(), 0u);
        std::sort(run_order_.begin(), run_order_.end(),
                  [&](uint32_t a, uint32_t b) {
                    if (lo_col[a] != lo_col[b]) return lo_col[a] > lo_col[b];
                    return strict_col[a] > strict_col[b];
                  });

        if constexpr (K == PropKernel::kGeneric) {
          run_acc_.assign(cell_stride, AggCell());
        } else {
          run_running_.assign(cell_stride, Counter());
        }
        size_t ei = end;  // Entries [ei, end) are consumed.
        for (size_t r = 0; r < m; ++r) {
          const uint32_t i = run_order_[r];
          const double lo = lo_col[i];
          const bool strict = strict_col[i] != 0;
          while (ei > begin) {
            const double key = ents[ei - 1].key;
            if (!(strict ? key > lo : key >= lo)) break;
            --ei;
            const GraphVertex* u = ents[ei].u;
            WindowId lo_w = std::max(first_wid, u->first_wid);
            WindowId hi_w =
                std::min(last_wid, u->first_wid + WindowId{u->num_wids} - 1);
            for (WindowId w = lo_w; w <= hi_w; ++w) {
              const AggCell* urow =
                  u->cells + (w - u->first_wid) * u->num_queries;
              if (urow->count.IsZero()) continue;
              const size_t off = static_cast<size_t>(w - first_wid) * nq;
              if constexpr (K == PropKernel::kCountModular) {
                for (int q = 0; q < nq; ++q) {
                  run_running_[off + q].Add(urow[q].count,
                                            CounterMode::kModular);
                }
              } else if constexpr (K == PropKernel::kCountExact) {
                for (int q = 0; q < nq; ++q) {
                  run_running_[off + q].Add(urow[q].count,
                                            CounterMode::kExact);
                }
              } else {
                for (int q = 0; q < nq; ++q) {
                  run_acc_[off + q].AddPredecessor(urow[q], AggAt(q));
                }
              }
              // This entry is admitted by every event of rank >= r (their
              // lo bounds only weaken), i.e. it accounts for (m - r) edges.
              edges_ += m - r;
            }
          }
          if (ei == end) continue;  // Nothing admitted yet.
          run_found_[i] = 1;
          AggCell* vrow = run_cells_.data() + static_cast<size_t>(i) * cell_stride;
          if constexpr (K == PropKernel::kCountModular) {
            for (size_t c = 0; c < cell_stride; ++c) {
              vrow[c].count.Add(run_running_[c], CounterMode::kModular);
            }
          } else if constexpr (K == PropKernel::kCountExact) {
            for (size_t c = 0; c < cell_stride; ++c) {
              vrow[c].count.Add(run_running_[c], CounterMode::kExact);
            }
          } else {
            for (size_t c = 0; c < cell_stride; ++c) {
              vrow[c].AddPredecessor(run_acc_[c],
                                     AggAt(c % static_cast<size_t>(nq)));
            }
          }
        }
      }
    } else {
      // PerEvent: each event re-filters the shared collection by its own
      // bounds (plain value comparisons; exact for real keys) and the
      // transition's compiled residual filter, then folds the survivors in
      // the scalar scan's exact order — bit-identical even for SUM.
      //
      // SIMD lanes (dispatched ISA only): the entry keys are copied into a
      // dense column once per (state, run) so each event's re-filter is one
      // vector range-select; transitions with fast-shape residuals get
      // prev-side predicate columns; and the single-window modular COUNT
      // shape with no residuals fuses re-filter and fold into one masked
      // wrapping sum (associative, so lane order cannot change the result).
      const simd::Kernels& kd = simd::Dispatch();
      const size_t num_entries = run_entries_.size();
      [[maybe_unused]] bool fuse_counts = false;
      if (batch_simd_) {
        run_keys_.resize(num_entries);
        for (size_t j = 0; j < num_entries; ++j) {
          run_keys_[j] = run_entries_[j].key;
        }
        run_prev_built_.assign(nt, 0);
        run_prev_cols_.resize(nt);
        for (size_t t = 0; t < nt; ++t) {
          const size_t begin = run_spans_[t];
          const size_t end = run_spans_[t + 1];
          const CompiledEdgeFilter& ef = edge_filters_[run_tidx_[t]];
          if (begin != end && ef.has_fast()) {
            ef.BuildPrevColumns(run_views_.data() + begin, end - begin,
                                &run_prev_cols_[t]);
            run_prev_built_[t] = 1;
          }
        }
        if constexpr (K == PropKernel::kCountModular) {
          if (k == 1 && nq == 1) {
            fuse_counts = true;
            run_counts_.resize(num_entries);
            for (size_t j = 0; j < num_entries; ++j) {
              // k == 1: the collection kept only entries live in THE
              // window, so this cell exists and the fused fold adds the
              // same nonzero counts the scalar IsZero test admits.
              run_counts_[j] =
                  run_entries_[j].u->cell(first_wid)->count.ModularValue();
            }
          }
        }
      }
      for (size_t i = 0; i < m; ++i) {
        const EventView e_view = batch.view(run_sel_[i]);
        AggCell* vrow = run_cells_.data() + i * cell_stride;
        bool found = false;
        for (size_t t = 0; t < nt; ++t) {
          const size_t begin = run_spans_[t];
          const size_t end = run_spans_[t + 1];
          if (begin == end) continue;
          const size_t at = t * m + i;
          const double lo = run_lo_[at];
          const double hi = run_hi_[at];
          const bool lo_strict = run_lo_strict_[at] != 0;
          const bool hi_strict = run_hi_strict_[at] != 0;
          const CompiledEdgeFilter& ef = edge_filters_[run_tidx_[t]];
          if constexpr (K == PropKernel::kCountModular) {
            if (fuse_counts && ef.trivial()) {
              const simd::MaskedSum ms = kd.masked_count_sum(
                  run_keys_.data(), run_counts_.data(),
                  static_cast<uint32_t>(begin), static_cast<uint32_t>(end),
                  lo, lo_strict, hi, hi_strict);
              if (ms.lanes != 0) {
                vrow[0].count.AddRaw(ms.sum);
                found = true;
                edges_ += ms.lanes;
              }
              continue;
            }
          }
          size_t cnt;
          if (batch_simd_) {
            run_filtered_.resize(end - begin);
            cnt = kd.range_select(
                run_keys_.data(), static_cast<uint32_t>(begin),
                static_cast<uint32_t>(end), lo, lo_strict, hi, hi_strict,
                run_filtered_.data());
          } else {
            run_filtered_.clear();
            for (size_t j = begin; j < end; ++j) {
              const double key = run_entries_[j].key;
              if (lo_strict ? key <= lo : key < lo) continue;
              if (hi_strict ? key >= hi : key > hi) continue;
              run_filtered_.push_back(static_cast<uint32_t>(j));
            }
            cnt = run_filtered_.size();
          }
          if (cnt != 0 && !ef.trivial()) {
            cnt = batch_simd_ && run_prev_built_[t] != 0
                      ? ef.Filter(e_view, run_views_.data(),
                                  run_prev_cols_[t],
                                  static_cast<uint32_t>(begin),
                                  run_filtered_.data(), cnt)
                      : ef.Filter(e_view, run_views_.data(),
                                  run_filtered_.data(), cnt);
          }
          for (size_t fj = 0; fj < cnt; ++fj) {
            const GraphVertex* u = run_entries_[run_filtered_[fj]].u;
            WindowId lo_w = std::max(first_wid, u->first_wid);
            WindowId hi_w =
                std::min(last_wid, u->first_wid + WindowId{u->num_wids} - 1);
            for (WindowId w = lo_w; w <= hi_w; ++w) {
              const AggCell* urow =
                  u->cells + (w - u->first_wid) * u->num_queries;
              if (urow->count.IsZero()) continue;
              AggCell* vw = vrow + static_cast<size_t>(w - first_wid) * nq;
              if constexpr (K == PropKernel::kCountModular) {
                for (int q = 0; q < nq; ++q) {
                  vw[q].count.Add(urow[q].count, CounterMode::kModular);
                }
              } else if constexpr (K == PropKernel::kCountExact) {
                for (int q = 0; q < nq; ++q) {
                  vw[q].count.Add(urow[q].count, CounterMode::kExact);
                }
              } else {
                for (int q = 0; q < nq; ++q) {
                  vw[q].AddPredecessor(urow[q], AggAt(q));
                }
              }
              found = true;
              ++edges_;
            }
          }
        }
        run_found_[i] = found ? 1 : 0;
      }
    }
    batch_strategy_rows_[static_cast<size_t>(strat)] += m;
    if (batch_simd_) simd_rows_ += m;

    // Finish + store, in arrival order. Bulk-reserve the pane arena first so
    // the stores bump-allocate without mid-run chunk growth.
    size_t stored_count = 0;
    if (is_start) {
      stored_count = m;
    } else {
      for (size_t i = 0; i < m; ++i) stored_count += run_found_[i];
    }
    if (stored_count == 0) continue;
    panes_.ArenaFor(ts)->Reserve(
        stored_count * (cell_stride * sizeof(AggCell) +
                        sp.stored_attr_count * sizeof(Value) +
                        alignof(std::max_align_t)));

    const bool is_end = plan_->templ.IsEnd(s);
    run_outs_.assign(static_cast<size_t>(k), nullptr);
    for (size_t i = 0; i < m; ++i) {
      if (!is_start && !run_found_[i]) continue;
      AggCell* vrow = run_cells_.data() + i * cell_stride;
      const EventRef e = batch.ref(run_sel_[i]);
      for (int c = 0; c < k; ++c) {
        AggCell* wrow = vrow + static_cast<size_t>(c) * nq;
        if constexpr (K == PropKernel::kCountModular) {
          if (is_start) {
            for (int q = 0; q < nq; ++q) {
              wrow[q].count.AddOne(CounterMode::kModular);
            }
          }
        } else if constexpr (K == PropKernel::kCountExact) {
          if (is_start) {
            for (int q = 0; q < nq; ++q) {
              wrow[q].count.AddOne(CounterMode::kExact);
            }
          }
        } else {
          for (int q = 0; q < nq; ++q) {
            wrow[q].FinishVertex(e, is_start, AggAt(q));
          }
        }
      }
      GraphVertex* stored = StoreVertex(e, s, first_wid, k, nq, vrow);
      if (is_end) {
        for (int c = 0; c < k; ++c) {
          const AggCell* row = stored->cells + static_cast<size_t>(c) * nq;
          if (row->count.IsZero()) continue;
          if (run_outs_[c] == nullptr) {
            run_outs_[c] = ResultsFor(first_wid + c);
          }
          std::vector<AggOutputs>& out = *run_outs_[c];
          if constexpr (K == PropKernel::kCountModular) {
            for (int q = 0; q < nq; ++q) {
              out[q].count.Add(row[q].count, CounterMode::kModular);
              out[q].any = true;
            }
          } else if constexpr (K == PropKernel::kCountExact) {
            for (int q = 0; q < nq; ++q) {
              out[q].count.Add(row[q].count, CounterMode::kExact);
              out[q].any = true;
            }
          } else {
            for (int q = 0; q < nq; ++q) {
              out[q].AccumulateEnd(row[q], AggAt(q));
            }
          }
        }
      }
    }
  }

  if (any_seen) last_seen_seq_ = batch.seq(last_seen_row);
}

void GretaGraph::InsertRunFastPartial(const EventBatch& batch,
                                      const uint32_t* rows, size_t n, Ts ts) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const PartialSharingPlan& partial = *exec_->partial;

  uint32_t last_seen_row = 0;
  bool any_seen = false;

  const size_t num_states = plan_->states.size();
  for (size_t si = 0; si < num_states; ++si) {
    const StateId s = static_cast<StateId>(si);
    const StatePlan& sp = plan_->states[si];

    run_sel_.clear();
    size_t m;
    if (group_proj_ready_) {
      // Select by consecutive projection lane, filter through the vector
      // kernels, then map surviving positions back to batch rows.
      run_pos_.clear();
      for (size_t r = 0; r < n; ++r) {
        if (batch.type(rows[r]) == sp.type) {
          run_pos_.push_back(static_cast<uint32_t>(run_base_ + r));
        }
      }
      if (run_pos_.empty()) continue;
      m = state_filters_[si].Filter(batch, group_proj_, group_rows_,
                                    run_pos_.data(), run_pos_.size());
      run_sel_.resize(m);
      for (size_t k = 0; k < m; ++k) run_sel_[k] = group_rows_[run_pos_[k]];
    } else {
      for (size_t r = 0; r < n; ++r) {
        if (batch.type(rows[r]) == sp.type) run_sel_.push_back(rows[r]);
      }
      if (run_sel_.empty()) continue;
      m = state_filters_[si].Filter(batch, run_sel_.data(), run_sel_.size());
      run_sel_.resize(m);
    }
    if (m == 0) continue;
    if (!any_seen || run_sel_.back() > last_seen_row) {
      last_seen_row = run_sel_.back();
      any_seen = true;
    }

    // Core vertices span the cluster's union window range; a continuation
    // vertex spans its owner's own range (see InsertAtStatePartial).
    const int owner = partial.state_owner[s];
    const WindowSpec& window =
        owner < 0 ? exec_->window : partial.windows[owner];
    const WindowId first_wid = FirstWindowOf(ts, window);
    const WindowId last_wid = LastWindowOf(ts, window);
    const int k = static_cast<int>(last_wid - first_wid + 1);
    GRETA_DCHECK(k >= 1 && k <= 64);
    const Ts lo_time =
        window.unbounded() ? kMinTs : WindowStartTime(first_wid, window);
    const int stride =
        owner < 0 ? 1 + static_cast<int>(partial.num_fold_slots) : 1;
    const size_t cell_stride = static_cast<size_t>(k) * stride;

    const std::vector<StateId>& pred_states = plan_->templ.pred_states(s);
    const size_t nt = pred_states.size();
    run_tidx_.resize(nt);
    run_lo_.assign(nt * m, -kInf);
    run_hi_.assign(nt * m, kInf);
    run_lo_strict_.assign(nt * m, 0);
    run_hi_strict_.assign(nt * m, 0);
    bool has_residuals = false;
    bool nan_bounds = false;
    bool uniform = true;
    for (size_t t = 0; t < nt && !nan_bounds; ++t) {
      int t_idx = plan_->templ.FindTransition(pred_states[t], s);
      GRETA_DCHECK(t_idx >= 0);
      run_tidx_[t] = t_idx;
      const TransitionPlan& tp = plan_->transitions[t_idx];
      has_residuals |= !tp.residual_preds.empty();
      for (size_t i = 0; i < m; ++i) {
        KeyBounds b = CombineTransitionBounds(tp, batch.view(run_sel_[i]));
        if (std::isnan(b.lo) || std::isnan(b.hi)) {
          nan_bounds = true;
          break;
        }
        const size_t at = t * m + i;
        run_lo_[at] = b.lo;
        run_hi_[at] = b.hi;
        run_lo_strict_[at] = b.lo_strict ? 1 : 0;
        run_hi_strict_[at] = b.hi_strict ? 1 : 0;
        uniform &= b.lo == run_lo_[t * m] && b.hi == run_hi_[t * m] &&
                   run_lo_strict_[at] == run_lo_strict_[t * m] &&
                   run_hi_strict_[at] == run_hi_strict_[t * m];
      }
    }

    // The suffix merge is unavailable here — fold slots can carry
    // order-sensitive SUM components — so the ladder is SharedFold (uniform
    // bounds, no residuals) or the per-event fold.
    const BatchStrategy strat = !has_residuals && uniform
                                    ? BatchStrategy::kSharedFold
                                    : BatchStrategy::kPerEvent;

    if (nan_bounds ||
        (strat == BatchStrategy::kPerEvent &&
         !CollectRunEntries(pred_states, lo_time, ts, m, /*lower_only=*/false,
                            /*check_dead=*/false, first_wid, last_wid))) {
      batch_fallback_rows_[static_cast<size_t>(
          BatchFallbackReason::kBounds)] += m;
      for (size_t i = 0; i < m; ++i) {
        (this->*insert_fn_)(batch.ref(run_sel_[i]), s);
      }
      continue;
    }

    run_cells_.assign(m * cell_stride, AggCell());
    run_found_.assign(m, 0);
    const bool is_start = plan_->templ.IsStart(s);

    // One edge fold, shared by both strategies: mirrors the per-ownership
    // branches of InsertAtStatePartial exactly. Returns whether the window
    // contributed.
    auto fold_edge = [&](size_t t, const GraphVertex* u, WindowId w,
                         AggCell* dst_row) -> bool {
      const AggCell* uc = u->cell(w);
      if (uc->count.IsZero()) return false;
      const int t_owner = partial.transition_owner[run_tidx_[t]];
      if (t_owner < 0) {
        // Core-internal edge: ONE snapshot propagation (the structural count
        // every query reads), plus the per-query folds.
        dst_row[0].count.Add(uc->count, exec_->mode);
        for (size_t f = 1; f <= partial.num_fold_slots; ++f) {
          dst_row[f].AddPredecessorFold(*u->cell(w, f),
                                        AggAt(partial.fold_queries[f - 1]));
        }
      } else {
        // Query-owned edge (core hand-off or continuation-internal): only
        // the owner's aggregates move.
        const size_t q = static_cast<size_t>(t_owner);
        const AggPlan& qagg = AggAt(q);
        const int fold = partial.fold_slots[q];
        if (partial.state_owner[pred_states[t]] < 0) {
          dst_row[0].count.Add(uc->count, qagg.mode);
          if (fold >= 0) {
            dst_row[0].AddPredecessorFold(*u->cell(w, fold), qagg);
          }
        } else {
          dst_row[0].AddPredecessor(*uc, qagg);
        }
      }
      return true;
    };

    if (strat == BatchStrategy::kSharedFold) {
      run_acc_.assign(cell_stride, AggCell());
      bool any_entry = false;
      size_t shared_edges = 0;
      for (size_t t = 0; t < nt; ++t) {
        KeyBounds bounds;
        bounds.lo = run_lo_[t * m];
        bounds.hi = run_hi_[t * m];
        bounds.lo_strict = run_lo_strict_[t * m] != 0;
        bounds.hi_strict = run_hi_strict_[t * m] != 0;
        panes_.ScanBucket(
            lo_time, ts, static_cast<size_t>(pred_states[t]), bounds,
            [&](GraphVertex* u) {
              if (u->time >= ts) return;  // Strict trend order (Def. 1).
              WindowId lo_w = std::max(first_wid, u->first_wid);
              WindowId hi_w = std::min(
                  last_wid, u->first_wid + WindowId{u->num_wids} - 1);
              if (lo_w > hi_w) return;
              for (WindowId w = lo_w; w <= hi_w; ++w) {
                AggCell* arow =
                    run_acc_.data() + static_cast<size_t>(w - first_wid) * stride;
                if (fold_edge(t, u, w, arow)) {
                  any_entry = true;
                  ++shared_edges;
                }
              }
            });
      }
      edges_ += shared_edges * m;
      if (any_entry) {
        for (size_t i = 0; i < m; ++i) {
          run_found_[i] = 1;
          AggCell* vrow = run_cells_.data() + i * cell_stride;
          for (size_t c = 0; c < cell_stride; ++c) vrow[c] = run_acc_[c];
        }
      }
    } else {
      // Same SIMD lanes as InsertRunFast's per-event strategy (no fused
      // count fold here — snapshot cells interleave with per-query folds).
      const simd::Kernels& kd = simd::Dispatch();
      if (batch_simd_) {
        const size_t num_entries = run_entries_.size();
        run_keys_.resize(num_entries);
        for (size_t j = 0; j < num_entries; ++j) {
          run_keys_[j] = run_entries_[j].key;
        }
        run_prev_built_.assign(nt, 0);
        run_prev_cols_.resize(nt);
        for (size_t t = 0; t < nt; ++t) {
          const size_t begin = run_spans_[t];
          const size_t end = run_spans_[t + 1];
          const CompiledEdgeFilter& ef = edge_filters_[run_tidx_[t]];
          if (begin != end && ef.has_fast()) {
            ef.BuildPrevColumns(run_views_.data() + begin, end - begin,
                                &run_prev_cols_[t]);
            run_prev_built_[t] = 1;
          }
        }
      }
      for (size_t i = 0; i < m; ++i) {
        const EventView e_view = batch.view(run_sel_[i]);
        AggCell* vrow = run_cells_.data() + i * cell_stride;
        bool found = false;
        for (size_t t = 0; t < nt; ++t) {
          const size_t begin = run_spans_[t];
          const size_t end = run_spans_[t + 1];
          if (begin == end) continue;
          const size_t at = t * m + i;
          const double lo = run_lo_[at];
          const double hi = run_hi_[at];
          const bool lo_strict = run_lo_strict_[at] != 0;
          const bool hi_strict = run_hi_strict_[at] != 0;
          size_t cnt;
          if (batch_simd_) {
            run_filtered_.resize(end - begin);
            cnt = kd.range_select(
                run_keys_.data(), static_cast<uint32_t>(begin),
                static_cast<uint32_t>(end), lo, lo_strict, hi, hi_strict,
                run_filtered_.data());
          } else {
            run_filtered_.clear();
            for (size_t j = begin; j < end; ++j) {
              const double key = run_entries_[j].key;
              if (lo_strict ? key <= lo : key < lo) continue;
              if (hi_strict ? key >= hi : key > hi) continue;
              run_filtered_.push_back(static_cast<uint32_t>(j));
            }
            cnt = run_filtered_.size();
          }
          const CompiledEdgeFilter& ef = edge_filters_[run_tidx_[t]];
          if (cnt != 0 && !ef.trivial()) {
            cnt = batch_simd_ && run_prev_built_[t] != 0
                      ? ef.Filter(e_view, run_views_.data(),
                                  run_prev_cols_[t],
                                  static_cast<uint32_t>(begin),
                                  run_filtered_.data(), cnt)
                      : ef.Filter(e_view, run_views_.data(),
                                  run_filtered_.data(), cnt);
          }
          for (size_t fj = 0; fj < cnt; ++fj) {
            const GraphVertex* u = run_entries_[run_filtered_[fj]].u;
            WindowId lo_w = std::max(first_wid, u->first_wid);
            WindowId hi_w =
                std::min(last_wid, u->first_wid + WindowId{u->num_wids} - 1);
            for (WindowId w = lo_w; w <= hi_w; ++w) {
              AggCell* vw = vrow + static_cast<size_t>(w - first_wid) * stride;
              if (fold_edge(t, u, w, vw)) {
                found = true;
                ++edges_;
              }
            }
          }
        }
        run_found_[i] = found ? 1 : 0;
      }
    }
    batch_strategy_rows_[static_cast<size_t>(strat)] += m;
    if (batch_simd_) simd_rows_ += m;

    size_t stored_count = 0;
    if (is_start) {
      stored_count = m;
    } else {
      for (size_t i = 0; i < m; ++i) stored_count += run_found_[i];
    }
    if (stored_count == 0) continue;
    panes_.ArenaFor(ts)->Reserve(
        stored_count * (cell_stride * sizeof(AggCell) +
                        sp.stored_attr_count * sizeof(Value) +
                        alignof(std::max_align_t)));

    const size_t nq_total = plan_->aggs.size();
    run_outs_.assign(static_cast<size_t>(k), nullptr);
    for (size_t i = 0; i < m; ++i) {
      if (!is_start && !run_found_[i]) continue;
      AggCell* vrow = run_cells_.data() + i * cell_stride;
      const EventRef e = batch.ref(run_sel_[i]);
      if (owner < 0) {
        for (int c = 0; c < k; ++c) {
          AggCell* wrow = vrow + static_cast<size_t>(c) * stride;
          if (is_start) wrow[0].count.AddOne(exec_->mode);
          for (size_t f = 1; f <= partial.num_fold_slots; ++f) {
            wrow[f].FinishVertexFold(e, wrow[0].count,
                                     AggAt(partial.fold_queries[f - 1]));
          }
        }
      } else {
        for (int c = 0; c < k; ++c) {
          vrow[c].FinishVertex(e, /*is_start=*/false, AggAt(owner));
        }
      }
      GraphVertex* stored = StoreVertex(e, s, first_wid, k, stride, vrow);

      // Incremental final aggregates for every query whose END is this
      // state (mirrors InsertAtStatePartial).
      for (size_t q = 0; q < nq_total; ++q) {
        if (partial.end_states[q] != s) continue;
        const AggPlan& qagg = AggAt(q);
        if (owner < 0) {
          WindowId q_first = FirstWindowOf(ts, partial.windows[q]);
          const int fold = partial.fold_slots[q];
          for (WindowId w = std::max(first_wid, q_first); w <= last_wid; ++w) {
            const AggCell* snap = stored->cell(w);
            if (snap->count.IsZero()) continue;
            const size_t c = static_cast<size_t>(w - first_wid);
            if (run_outs_[c] == nullptr) run_outs_[c] = ResultsFor(w);
            (*run_outs_[c])[q].AccumulateEndShared(
                snap->count, fold >= 0 ? stored->cell(w, fold) : nullptr,
                qagg);
          }
        } else {
          for (int c = 0; c < k; ++c) {
            const AggCell& cell = stored->cells[c];
            if (cell.count.IsZero()) continue;
            if (run_outs_[c] == nullptr) {
              run_outs_[c] = ResultsFor(first_wid + c);
            }
            (*run_outs_[c])[q].AccumulateEnd(cell, qagg);
          }
        }
      }
    }
  }

  if (any_seen) last_seen_seq_ = batch.seq(last_seen_row);
}

void GretaGraph::CollectWindow(WindowId wid, size_t q, AggOutputs* out) {
  if (graph_links_.empty()) {
    auto it = results_.find(wid);
    if (it != results_.end()) out->Merge(it->second[q], AggAt(q));
    return;
  }
  // Trailing negation (Case 2): only END vertices whose trends finished
  // after the last negative trend started survive (Figure 8(a)).
  Ts barrier = kMinTs;
  for (NegationLink* link : graph_links_) {
    barrier = std::max(barrier, link->CloseMaxStart(wid));
  }
  StateId end_state = plan_->templ.end_state();
  panes_.ScanBucketAll(static_cast<size_t>(end_state), [&](GraphVertex* u) {
    if (u->dead || !u->InWindow(wid)) return;
    const AggCell* cell = u->cell(wid, q);
    if (!cell->active || cell->count.IsZero()) return;
    if (u->time < barrier) return;
    out->AccumulateEnd(*cell, AggAt(q));
  });
}

void GretaGraph::CollectWindowAll(WindowId wid, std::vector<AggOutputs>* outs) {
  const size_t nq = static_cast<size_t>(num_queries_);
  GRETA_DCHECK(outs->size() == nq);
  if (graph_links_.empty()) {
    auto it = results_.find(wid);
    if (it == results_.end()) return;
    for (size_t q = 0; q < nq; ++q) {
      (*outs)[q].Merge(it->second[q], AggAt(q));
    }
    return;
  }
  // Trailing negation (Case 2): the barrier and the surviving-END-vertex
  // walk are query-independent — run them once, read every query slot.
  Ts barrier = kMinTs;
  for (NegationLink* link : graph_links_) {
    barrier = std::max(barrier, link->CloseMaxStart(wid));
  }
  StateId end_state = plan_->templ.end_state();
  panes_.ScanBucketAll(static_cast<size_t>(end_state), [&](GraphVertex* u) {
    if (u->dead || !u->InWindow(wid)) return;
    const AggCell* first = u->cell(wid);
    if (!first->active || first->count.IsZero()) return;
    if (u->time < barrier) return;
    for (size_t q = 0; q < nq; ++q) {
      (*outs)[q].AccumulateEnd(*u->cell(wid, q), AggAt(q));
    }
  });
}

void GretaGraph::ForgetWindow(WindowId wid) {
  if (results_cache_ != nullptr && results_cache_wid_ == wid) {
    results_cache_ = nullptr;
  }
  results_.erase(wid);
}

void GretaGraph::Purge(Ts watermark) {
  if (exec_->window.unbounded()) return;
  Ts cutoff = WindowStartTime(FirstWindowOf(watermark, exec_->window),
                              exec_->window);
  // Wholesale pane deletion: the pane store releases each dropped pane's
  // charged bytes in one step (no per-vertex accounting walk).
  panes_.PurgeBefore(cutoff);
}

size_t GretaGraph::ApproxBytes() const {
  size_t bytes = panes_.ApproxBytes();
  bytes += results_.size() *
           (sizeof(WindowId) + num_queries_ * sizeof(AggOutputs) + 16);
  return bytes;
}

}  // namespace greta
