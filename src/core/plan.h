#ifndef GRETA_CORE_PLAN_H_
#define GRETA_CORE_PLAN_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/catalog.h"
#include "core/aggregate.h"
#include "core/engine_interface.h"
#include "core/negation.h"
#include "predicate/classify.h"
#include "predicate/range.h"
#include "query/query.h"
#include "query/split.h"
#include "query/template.h"

namespace greta {

/// One edge predicate compiled onto a template transition.
struct EdgePredicatePlan {
  const Expr* expr = nullptr;               // owned by ExecPlan
  std::optional<RangeExtraction> range;     // tree range form, if extractable
  bool drives_sort_key = false;  // range query on the from-state's tree key
};

/// Per-state compilation: vertex predicates and the Vertex-Tree sort key.
struct StatePlan {
  TypeId type = kInvalidType;
  AttrId sort_attr = kInvalidAttr;  // kInvalidAttr: sort by time
  std::vector<const Expr*> local_preds;
  /// How many leading attribute values a stored vertex of this state keeps
  /// (1 + the highest attr id any scan-time residual edge predicate reads on
  /// the predecessor side). Sort-key-driving range predicates are enforced
  /// by the Vertex Tree and never re-evaluated, so their attributes are not
  /// stored; the common tree-indexed Kleene query stores zero attributes.
  uint16_t stored_attr_count = 0;
};

struct TransitionPlan {
  std::vector<EdgePredicatePlan> preds;
  /// The predicates a predecessor scan must re-evaluate: everything not
  /// already enforced by the Vertex Tree's key range. Derived from `preds`
  /// once sort keys are assigned, so the hot loop never tests the
  /// drives_sort_key/range flags (empty for fully tree-indexed queries).
  std::vector<const Expr*> residual_preds;
};

/// Combines every sort-key-driving range predicate of `tp` into one key
/// range over the predecessor tree, resolved against the new event. Shared
/// by the scalar insert kernels and the batch run kernels, so the two can
/// never disagree on a bound (the batch kernels' strategy choice — shared
/// fold vs suffix merge vs per-event fold — keys off these values).
inline KeyBounds CombineTransitionBounds(const TransitionPlan& tp,
                                         const EventView next) {
  KeyBounds bounds;
  for (const EdgePredicatePlan& ep : tp.preds) {
    if (!ep.drives_sort_key || !ep.range.has_value()) continue;
    KeyBounds b = ep.range->ComputeBounds(next);
    if (b.lo > bounds.lo || (b.lo == bounds.lo && b.lo_strict)) {
      bounds.lo = b.lo;
      bounds.lo_strict = b.lo_strict;
    }
    if (b.hi < bounds.hi || (b.hi == bounds.hi && b.hi_strict)) {
      bounds.hi = b.hi;
      bounds.hi_strict = b.hi_strict;
    }
  }
  return bounds;
}

/// Propagation kernel compiled for one graph at plan time from its AggPlan
/// flag set and CounterMode (see src/core/README.md for the dispatch table).
/// The kernels change only how aggregate state moves along an edge — every
/// structural decision (windows, barriers, pruning, semantics bookkeeping)
/// is identical across them, so results are bit-identical by construction.
enum class PropKernel : uint8_t {
  /// Every query slot is COUNT(*)-only and counters wrap mod 2^64: edge
  /// propagation is a tight u64 add over the contiguous (window, query) cell
  /// span, with no aggregate-flag tests and no promotion checks.
  kCountModular,
  /// COUNT(*)-only with exact counters: the same tight span add through the
  /// u64 fast path, promoting to BigUInt only at 64-bit overflow.
  kCountExact,
  /// Any attribute aggregate (COUNT(E)/MIN/MAX/SUM/AVG), negation barrier
  /// auxiliaries, or kernel specialization disabled: the flag-tested
  /// AggCell::AddPredecessor path.
  kGeneric,
};

/// Compilation of one sub-pattern (positive core or negative sub-pattern)
/// into its GRETA template plus predicate attachments. Negative sub-patterns
/// carry the link metadata that connects them to the graph they invalidate.
struct GraphPlan {
  GretaTemplate templ;
  std::vector<StatePlan> states;            // indexed by StateId
  std::vector<TransitionPlan> transitions;  // parallel to templ.transitions()
  bool negative = false;
  int parent = -1;                 // sub-pattern index this one invalidates
  NegationKind link_kind = NegationKind::kNone;
  StateId prev_state = kInvalidState;  // in the parent's template
  StateId foll_state = kInvalidState;  // in the parent's template
  AggPlan agg;  // query aggregates (positive) or barrier aux (negative)
  /// Query-indexed aggregate plans (multi-query shared execution,
  /// src/sharing/): one entry per query sharing this graph; aggs[0] == agg.
  /// Negative sub-pattern graphs keep a single barrier-aux entry — their
  /// count/max_start state is identical for every query of the cluster.
  std::vector<AggPlan> aggs;
  /// Propagation kernel dispatched once per graph (not branch-tested per
  /// edge per window per query). Chosen by the planner after all query
  /// slots' aggregate plans are known.
  PropKernel kernel = PropKernel::kGeneric;
};

/// One disjunction-free alternative: sub-pattern 0 is the positive core,
/// the rest are negative sub-patterns (possibly nested).
struct AlternativePlan {
  std::vector<GraphPlan> graphs;
};

/// Partial sharing of a common Kleene sub-pattern (Hamlet snapshot
/// propagation): layout of one merged template whose shared core prefix
/// feeds per-query continuation states.
///
/// The shared core propagates ONE structural snapshot per (vertex, window)
/// — the trend count, identical for every query because the core is each
/// query's pattern prefix and its predicates agree cluster-wide — while
/// queries whose aggregates need attribute components (SUM/MIN/MAX/COUNT(E))
/// fold them through a dedicated *fold slot* next to the snapshot. Window
/// ids share one grid (equal slide); per-query `within` values only change
/// which windows of a vertex are live for a query, never a live cell's
/// content, so the snapshot serves every window length at once.
struct PartialSharingPlan {
  size_t num_core_states = 0;  // merged-template states [0, n) are shared
  std::vector<int> state_owner;       // per state: query index, or -1 = core
  std::vector<int> transition_owner;  // per transition, same convention
  std::vector<StateId> end_states;    // per query: its END state
  std::vector<WindowSpec> windows;    // per query; ExecPlan::window = union
  /// Per query: index of its fold slot within a core vertex's cells
  /// (1 + slot, slot 0 is the snapshot), or -1 when COUNT-only.
  std::vector<int> fold_slots;
  std::vector<size_t> fold_queries;  // inverse: fold slot index - 1 -> query
  size_t num_fold_slots = 0;  // core cells per (vertex, window) = 1 + this
};

/// A term group of the final combination. The final COUNT is the product
/// over groups of the sum over each group's alternatives (Section 9):
/// a plain pattern is one group; `P1 & P2` contributes one group per side.
struct TermGroupPlan {
  std::vector<int> alternative_indices;
};

/// Fully compiled query, shared (read-only) by every partition's runtime.
struct ExecPlan {
  // Pattern machinery.
  std::vector<AlternativePlan> alternatives;
  std::vector<TermGroupPlan> groups;
  AggPlan agg;
  WindowSpec window;
  Semantics semantics = Semantics::kSkipTillAnyMatch;
  CounterMode mode = CounterMode::kExact;
  bool enable_pruning = true;
  bool enable_batch_kernels = true;
  bool enable_simd = true;

  // Partitioning: key attribute names = GROUP-BY attrs then the remaining
  // equivalence attrs; the first `num_group_attrs` form the output group.
  std::vector<std::string> key_attrs;
  size_t num_group_attrs = 0;
  // Per relevant type: positions of key attrs in its schema (kInvalidAttr
  // where the type lacks the attribute -> broadcast routing).
  std::unordered_map<TypeId, std::vector<AttrId>> key_attr_ids;

  std::vector<AggSpec> agg_specs;  // for rendering

  // Multi-query shared execution (src/sharing/): per-query aggregate plans
  // and specs. Size 1 for a plan built from a single QuerySpec; query 0 is
  // always the plan's primary query (query_aggs[0] == agg).
  std::vector<AggPlan> query_aggs;
  std::vector<std::vector<AggSpec>> query_agg_specs;

  // Set for plans built by BuildPartialSharedPlan: the merged-template
  // layout. ExecPlan::window is then the cluster's union window (max within,
  // shared slide); per-query windows live in partial->windows.
  std::optional<PartialSharingPlan> partial;

  size_t num_queries() const { return query_aggs.empty() ? 1 : query_aggs.size(); }

  // Keeps predicate expressions and split patterns alive for the plan's
  // lifetime (StatePlan/TransitionPlan hold raw pointers into these).
  std::vector<ExprPtr> owned_exprs;
  std::vector<SplitResult> owned_splits;

  bool HasNegation() const {
    for (const AlternativePlan& alt : alternatives) {
      if (alt.graphs.size() > 1) return true;
    }
    return false;
  }
};

struct PlannerOptions {
  CounterMode counter_mode = CounterMode::kExact;
  Semantics semantics = Semantics::kSkipTillAnyMatch;
  int max_windows_per_event = 64;
  /// Ablation knob: false disables Vertex-Tree range extraction, turning
  /// predecessor lookups into full scans with residual filtering
  /// (bench_ablation compares the two; Section 7 motivates the tree).
  bool enable_tree_ranges = true;
  /// Ablation knob: false disables invalid event pruning (Theorem 5.1
  /// tombstoning); results must be identical either way.
  bool enable_pruning = true;
  /// Ablation knob: false forces the generic propagation kernel everywhere,
  /// disabling the COUNT(*)-specialized fast paths. Results must be
  /// bit-identical either way (the kernel equivalence tests assert it).
  bool enable_specialized_kernels = true;
  /// Ablation knob: false makes ProcessBatch fall back to the scalar insert
  /// kernel per row, disabling the run-amortized batch fast path. Results
  /// must be bit-identical either way.
  bool enable_batch_kernels = true;
  /// Ablation knob: false keeps the batch paths on the scalar reference
  /// loops even when the process dispatched a vector ISA (the differential
  /// tests also flip this per engine). Results must be bit-identical.
  bool enable_simd = true;
};

/// Compiles a QuerySpec: validates the pattern, expands sugar into disjoint
/// alternatives, splits off negative sub-patterns, builds templates,
/// classifies predicates and resolves partitioning attributes.
StatusOr<std::unique_ptr<ExecPlan>> BuildPlan(const QuerySpec& spec,
                                              const Catalog& catalog,
                                              const PlannerOptions& options);

/// Compiles a cluster of *share-compatible* queries into one merged plan:
/// pattern, predicates, partitioning and window come from specs[0]; every
/// query contributes its own aggregate plan, stored query-indexed on the
/// positive graphs (GraphPlan::aggs) so one GRETA graph propagates all of
/// them in a single pass. Callers (the sharing planner) are responsible for
/// ensuring the specs agree on pattern/WHERE/keys/window; this function only
/// re-validates each query's aggregates.
StatusOr<std::unique_ptr<ExecPlan>> BuildSharedPlan(
    const std::vector<const QuerySpec*>& specs, const Catalog& catalog,
    const PlannerOptions& options);

/// The Kleene-prefix core of a desugared, positive, disjunction-free
/// alternative: the pattern itself when it is `K+`, or the first child of a
/// SEQ whose first child is `K+`. Returns nullptr when the pattern has no
/// Kleene prefix (then it cannot join a partial-sharing cluster).
const Pattern* KleenePrefixCore(const Pattern& alt);

/// True when one classified WHERE conjunct constrains the shared Kleene
/// core — a vertex predicate on a core type or an edge predicate between
/// core types. Such conjuncts shape the partial-sharing snapshot and must
/// agree across a cluster; one definition serves both the sharing
/// planner's pooling key and BuildPartialSharedPlan's re-validation, so
/// the two can never drift apart.
bool IsCoreSnapshotPredicate(const ClassifiedPredicate& cp,
                             const std::vector<TypeId>& core_types);

/// Compiles a cluster of queries that share a common Kleene sub-pattern
/// prefix (the Hamlet-style *partial sharing* case) into one merged plan
/// carrying a PartialSharingPlan. Requirements, re-validated here:
///  - every pattern is positive, desugars to exactly one alternative, and
///    starts with the same Kleene core (equal template fingerprint);
///  - WHERE conjuncts touching core types agree across the cluster (they
///    shape the shared snapshot); suffix predicates are per query;
///  - equivalence and GROUP-BY attributes agree (shared partitioning);
///  - windows are all unbounded, or all bounded with equal slide (within
///    may differ: the plan window is the union, per-query ranges select
///    live windows);
///  - semantics is skip-till-any-match (the restricted semantics tie
///    bookkeeping to a single query's structure and are planned unshared).
StatusOr<std::unique_ptr<ExecPlan>> BuildPartialSharedPlan(
    const std::vector<const QuerySpec*>& specs, const Catalog& catalog,
    const PlannerOptions& options);

}  // namespace greta

#endif  // GRETA_CORE_PLAN_H_
