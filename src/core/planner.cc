#include <algorithm>
#include <set>

#include "core/plan.h"
#include "predicate/classify.h"
#include "storage/window.h"

namespace greta {

namespace {

// True when no trend can be matched by both patterns: one pattern requires
// an event type the other can never contain (Section 9 combination — the
// planner only sums alternatives it can prove disjoint, so the
// inclusion-exclusion term Cij is zero by construction).
bool ProvablyDisjoint(const Pattern& a, const Pattern& b) {
  auto contains = [](const std::vector<TypeId>& v, TypeId t) {
    return std::find(v.begin(), v.end(), t) != v.end();
  };
  std::vector<TypeId> req_a = a.RequiredTypes();
  std::vector<TypeId> pos_b = b.CollectTypes(/*include_negated=*/false);
  for (TypeId t : req_a) {
    if (!contains(pos_b, t)) return true;
  }
  std::vector<TypeId> req_b = b.RequiredTypes();
  std::vector<TypeId> pos_a = a.CollectTypes(/*include_negated=*/false);
  for (TypeId t : req_b) {
    if (!contains(pos_a, t)) return true;
  }
  return false;
}

Status CheckPairwiseDisjoint(const std::vector<PatternPtr>& alts,
                             const Catalog& catalog) {
  for (size_t i = 0; i < alts.size(); ++i) {
    for (size_t j = i + 1; j < alts.size(); ++j) {
      if (!ProvablyDisjoint(*alts[i], *alts[j])) {
        return Status::Unsupported(
            "cannot prove disjunction alternatives disjoint: '" +
            alts[i]->ToString(catalog) + "' and '" +
            alts[j]->ToString(catalog) +
            "' may match the same trend; supply the intersection count via "
            "combinators::CombineDisjunction instead (Section 9)");
      }
    }
  }
  return Status::Ok();
}

// Flattens a top-level conjunction chain into its sides.
void CollectConjuncts(const Pattern& p, std::vector<const Pattern*>* out) {
  if (p.op() == PatternOp::kAnd) {
    CollectConjuncts(*p.children()[0], out);
    CollectConjuncts(*p.children()[1], out);
  } else {
    out->push_back(&p);
  }
}

// Builds the GraphPlan skeleton (template + link resolution) for one
// alternative's split result.
Status BuildGraphPlans(const SplitResult& split, const Catalog& catalog,
                       const AggPlan& agg, CounterMode mode,
                       AlternativePlan* alt) {
  size_t num_subs = 1 + split.negatives.size();
  alt->graphs.resize(num_subs);

  for (size_t i = 0; i < num_subs; ++i) {
    GraphPlan& gp = alt->graphs[i];
    const Pattern& pattern =
        (i == 0) ? *split.positive : *split.negatives[i - 1].pattern;
    StatusOr<GretaTemplate> templ = BuildTemplate(pattern, catalog);
    if (!templ.ok()) return templ.status();
    gp.templ = std::move(templ).value();
    gp.negative = (i != 0);
    gp.agg = gp.negative ? AggPlan::ForNegative(mode) : agg;
    gp.aggs = {gp.agg};
    gp.states.resize(gp.templ.num_states());
    for (const TemplateState& s : gp.templ.states()) {
      gp.states[s.id].type = s.type;
    }
    gp.transitions.resize(gp.templ.transitions().size());
  }

  // Resolve negation links against the parent templates.
  for (size_t i = 0; i < split.negatives.size(); ++i) {
    const NegativeSubPattern& neg = split.negatives[i];
    GraphPlan& gp = alt->graphs[i + 1];
    gp.parent = neg.parent;
    const GretaTemplate& parent_templ = alt->graphs[neg.parent].templ;
    if (neg.prev_atom != nullptr) {
      gp.prev_state = parent_templ.NodeEndState(neg.prev_atom);
    }
    if (neg.foll_atom != nullptr) {
      gp.foll_state = parent_templ.NodeStartState(neg.foll_atom);
    }
    if (gp.prev_state != kInvalidState && gp.foll_state != kInvalidState) {
      gp.link_kind = NegationKind::kBetween;
      if (parent_templ.FindTransition(gp.prev_state, gp.foll_state) < 0) {
        return Status::Internal(
            "no parent transition between the previous and following states "
            "of a negative sub-pattern");
      }
    } else if (gp.prev_state != kInvalidState) {
      gp.link_kind = NegationKind::kTrailing;
    } else if (gp.foll_state != kInvalidState) {
      gp.link_kind = NegationKind::kLeading;
    } else {
      return Status::InvalidArgument(
          "negation without a preceding or following positive sub-pattern");
    }
  }
  return Status::Ok();
}

// Attaches classified predicates and picks Vertex-Tree sort keys.
Status AttachPredicates(const std::vector<ClassifiedPredicate>& preds,
                        bool enable_tree_ranges, AlternativePlan* alt) {
  for (GraphPlan& gp : alt->graphs) {
    // Vertex predicates.
    for (const ClassifiedPredicate& cp : preds) {
      if (cp.cls != PredicateClass::kLocal) continue;
      for (const TemplateState& s : gp.templ.states()) {
        if (s.type == cp.base_type) {
          gp.states[s.id].local_preds.push_back(cp.expr);
        }
      }
    }
    // Edge predicates per transition.
    const auto& transitions = gp.templ.transitions();
    for (size_t t = 0; t < transitions.size(); ++t) {
      StateId from = transitions[t].from;
      StateId to = transitions[t].to;
      for (const ClassifiedPredicate& cp : preds) {
        if (cp.cls != PredicateClass::kEdge) continue;
        if (gp.states[from].type != cp.base_type ||
            gp.states[to].type != cp.next_type) {
          continue;
        }
        EdgePredicatePlan ep;
        ep.expr = cp.expr;
        if (enable_tree_ranges) {
          ep.range = RangeExtraction::FromPredicate(*cp.expr);
        }
        gp.transitions[t].preds.push_back(std::move(ep));
      }
    }
    // Sort keys: for each state, the key attr of the first extractable edge
    // predicate on any outgoing transition wins ("sorted by the most
    // selective predicate", Section 7).
    for (size_t t = 0; t < transitions.size(); ++t) {
      StateId from = transitions[t].from;
      for (EdgePredicatePlan& ep : gp.transitions[t].preds) {
        if (!ep.range.has_value()) continue;
        AttrId key = ep.range->key_attr();
        if (gp.states[from].sort_attr == kInvalidAttr) {
          gp.states[from].sort_attr = key;
        }
        ep.drives_sort_key = (gp.states[from].sort_attr == key);
      }
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::unique_ptr<ExecPlan>> BuildPlan(const QuerySpec& spec,
                                              const Catalog& catalog,
                                              const PlannerOptions& options) {
  if (spec.pattern == nullptr) {
    return Status::InvalidArgument("query has no pattern");
  }
  Status valid = ValidatePattern(*spec.pattern);
  if (!valid.ok()) return valid;

  auto plan = std::make_unique<ExecPlan>();
  plan->window = spec.window;
  plan->semantics = options.semantics;
  plan->mode = options.counter_mode;
  plan->enable_pruning = options.enable_pruning;
  plan->agg_specs = spec.aggs;

  if (!spec.window.unbounded() &&
      MaxWindowsPerEvent(spec.window) > options.max_windows_per_event) {
    return Status::Unsupported(
        "an event would fall into more than " +
        std::to_string(options.max_windows_per_event) +
        " windows; increase SLIDE or PlannerOptions::max_windows_per_event");
  }

  StatusOr<AggPlan> agg = AggPlan::FromSpecs(spec.aggs, options.counter_mode);
  if (!agg.ok()) return agg.status();
  plan->agg = agg.value();
  plan->query_aggs = {plan->agg};
  plan->query_agg_specs = {spec.aggs};

  // Top-level conjunction splits into term groups (Section 9); everything
  // else is a single group whose alternatives are summed.
  std::vector<const Pattern*> sides;
  CollectConjuncts(*spec.pattern, &sides);
  if (sides.size() > 1) {
    if (plan->agg.need_type_count || plan->agg.need_min ||
        plan->agg.need_max || plan->agg.need_sum) {
      return Status::Unsupported(
          "conjunctive patterns support COUNT(*) only (Section 9 pairs "
          "trends; per-event aggregates are not defined on pairs)");
    }
    for (size_t i = 0; i < sides.size(); ++i) {
      for (size_t j = i + 1; j < sides.size(); ++j) {
        if (!ProvablyDisjoint(*sides[i], *sides[j])) {
          return Status::Unsupported(
              "cannot prove conjunction sides disjoint; use "
              "combinators::CombineConjunction with an explicit intersection "
              "count (Section 9)");
        }
      }
    }
  }

  // Classify WHERE conjuncts once; the plan owns clones of the expressions.
  std::vector<ClassifiedPredicate> classified;
  for (const ExprPtr& conjunct : spec.where) {
    plan->owned_exprs.push_back(conjunct->Clone());
    StatusOr<ClassifiedPredicate> cp =
        ClassifyPredicate(*plan->owned_exprs.back());
    if (!cp.ok()) return cp.status();
    if (cp.value().cls == PredicateClass::kConstant) {
      Event dummy;
      if (!plan->owned_exprs.back()->EvalVertex(dummy).Truthy()) {
        // Constant-false WHERE: the query matches nothing.
        plan->alternatives.clear();
        plan->groups.clear();
        return plan;
      }
      continue;
    }
    classified.push_back(cp.value());
  }

  for (const Pattern* side : sides) {
    StatusOr<std::vector<PatternPtr>> alts = ExpandSugar(*side);
    if (!alts.ok()) return alts.status();
    Status disjoint = CheckPairwiseDisjoint(alts.value(), catalog);
    if (!disjoint.ok()) return disjoint;

    TermGroupPlan group;
    for (PatternPtr& alt_pattern : alts.value()) {
      StatusOr<SplitResult> split = SplitPattern(*alt_pattern);
      if (!split.ok()) return split.status();
      plan->owned_splits.push_back(std::move(split).value());
      const SplitResult& owned = plan->owned_splits.back();

      AlternativePlan alt;
      Status built = BuildGraphPlans(owned, catalog, plan->agg,
                                     options.counter_mode, &alt);
      if (!built.ok()) return built;
      Status attached =
          AttachPredicates(classified, options.enable_tree_ranges, &alt);
      if (!attached.ok()) return attached;
      group.alternative_indices.push_back(
          static_cast<int>(plan->alternatives.size()));
      plan->alternatives.push_back(std::move(alt));
    }
    plan->groups.push_back(std::move(group));
  }

  // Partition keys: GROUP-BY attrs first, then remaining equivalence attrs.
  plan->key_attrs = spec.group_by;
  plan->num_group_attrs = spec.group_by.size();
  for (const std::string& attr : spec.equivalence) {
    if (std::find(plan->key_attrs.begin(), plan->key_attrs.end(), attr) ==
        plan->key_attrs.end()) {
      plan->key_attrs.push_back(attr);
    }
  }

  // Resolve key attr positions per relevant type.
  std::set<TypeId> relevant;
  for (const AlternativePlan& alt : plan->alternatives) {
    for (const GraphPlan& gp : alt.graphs) {
      for (const TemplateState& s : gp.templ.states()) relevant.insert(s.type);
    }
  }
  for (TypeId type : relevant) {
    std::vector<AttrId> ids;
    for (const std::string& attr : plan->key_attrs) {
      ids.push_back(catalog.type(type).FindAttr(attr));
    }
    plan->key_attr_ids[type] = std::move(ids);
  }
  // Every key attr must exist on at least one relevant type.
  for (size_t i = 0; i < plan->key_attrs.size(); ++i) {
    bool found = false;
    for (const auto& [type, ids] : plan->key_attr_ids) {
      (void)type;
      if (ids[i] != kInvalidAttr) found = true;
    }
    if (!found) {
      return Status::InvalidArgument("grouping/equivalence attribute '" +
                                     plan->key_attrs[i] +
                                     "' exists on no event type used by the "
                                     "pattern");
    }
  }

  return plan;
}

StatusOr<std::unique_ptr<ExecPlan>> BuildSharedPlan(
    const std::vector<const QuerySpec*>& specs, const Catalog& catalog,
    const PlannerOptions& options) {
  if (specs.empty()) {
    return Status::InvalidArgument("shared plan needs at least one query");
  }
  StatusOr<std::unique_ptr<ExecPlan>> base =
      BuildPlan(*specs[0], catalog, options);
  if (!base.ok()) return base.status();
  std::unique_ptr<ExecPlan> plan = std::move(base).value();

  for (size_t q = 1; q < specs.size(); ++q) {
    StatusOr<AggPlan> agg =
        AggPlan::FromSpecs(specs[q]->aggs, options.counter_mode);
    if (!agg.ok()) return agg.status();
    if (plan->groups.size() > 1 &&
        (agg.value().need_type_count || agg.value().need_min ||
         agg.value().need_max || agg.value().need_sum)) {
      return Status::Unsupported(
          "conjunctive patterns support COUNT(*) only (Section 9), for every "
          "query of a shared cluster");
    }
    plan->query_aggs.push_back(agg.value());
    plan->query_agg_specs.push_back(specs[q]->aggs);
    // Only positive graphs (sub-pattern 0) carry query aggregates; negative
    // graphs keep their single query-independent barrier plan. Conjunctive
    // plans (> 1 term group) keep a single slot too: the final count is a
    // product of slot-0 counts and per-query cells would never be read.
    if (plan->groups.size() <= 1) {
      for (AlternativePlan& alt : plan->alternatives) {
        alt.graphs[0].aggs.push_back(agg.value());
      }
    }
  }
  return plan;
}

}  // namespace greta
