#include <algorithm>
#include <functional>
#include <set>

#include "core/plan.h"
#include "predicate/classify.h"
#include "storage/window.h"

namespace greta {

namespace {

// True when no trend can be matched by both patterns: one pattern requires
// an event type the other can never contain (Section 9 combination — the
// planner only sums alternatives it can prove disjoint, so the
// inclusion-exclusion term Cij is zero by construction).
bool ProvablyDisjoint(const Pattern& a, const Pattern& b) {
  auto contains = [](const std::vector<TypeId>& v, TypeId t) {
    return std::find(v.begin(), v.end(), t) != v.end();
  };
  std::vector<TypeId> req_a = a.RequiredTypes();
  std::vector<TypeId> pos_b = b.CollectTypes(/*include_negated=*/false);
  for (TypeId t : req_a) {
    if (!contains(pos_b, t)) return true;
  }
  std::vector<TypeId> req_b = b.RequiredTypes();
  std::vector<TypeId> pos_a = a.CollectTypes(/*include_negated=*/false);
  for (TypeId t : req_b) {
    if (!contains(pos_a, t)) return true;
  }
  return false;
}

Status CheckPairwiseDisjoint(const std::vector<PatternPtr>& alts,
                             const Catalog& catalog) {
  for (size_t i = 0; i < alts.size(); ++i) {
    for (size_t j = i + 1; j < alts.size(); ++j) {
      if (!ProvablyDisjoint(*alts[i], *alts[j])) {
        return Status::Unsupported(
            "cannot prove disjunction alternatives disjoint: '" +
            alts[i]->ToString(catalog) + "' and '" +
            alts[j]->ToString(catalog) +
            "' may match the same trend; supply the intersection count via "
            "combinators::CombineDisjunction instead (Section 9)");
      }
    }
  }
  return Status::Ok();
}

// Flattens a top-level conjunction chain into its sides.
void CollectConjuncts(const Pattern& p, std::vector<const Pattern*>* out) {
  if (p.op() == PatternOp::kAnd) {
    CollectConjuncts(*p.children()[0], out);
    CollectConjuncts(*p.children()[1], out);
  } else {
    out->push_back(&p);
  }
}

// Builds the GraphPlan skeleton (template + link resolution) for one
// alternative's split result.
Status BuildGraphPlans(const SplitResult& split, const Catalog& catalog,
                       const AggPlan& agg, CounterMode mode,
                       AlternativePlan* alt) {
  size_t num_subs = 1 + split.negatives.size();
  alt->graphs.resize(num_subs);

  for (size_t i = 0; i < num_subs; ++i) {
    GraphPlan& gp = alt->graphs[i];
    const Pattern& pattern =
        (i == 0) ? *split.positive : *split.negatives[i - 1].pattern;
    StatusOr<GretaTemplate> templ = BuildTemplate(pattern, catalog);
    if (!templ.ok()) return templ.status();
    gp.templ = std::move(templ).value();
    gp.negative = (i != 0);
    gp.agg = gp.negative ? AggPlan::ForNegative(mode) : agg;
    gp.aggs = {gp.agg};
    gp.states.resize(gp.templ.num_states());
    for (const TemplateState& s : gp.templ.states()) {
      gp.states[s.id].type = s.type;
    }
    gp.transitions.resize(gp.templ.transitions().size());
  }

  // Resolve negation links against the parent templates.
  for (size_t i = 0; i < split.negatives.size(); ++i) {
    const NegativeSubPattern& neg = split.negatives[i];
    GraphPlan& gp = alt->graphs[i + 1];
    gp.parent = neg.parent;
    const GretaTemplate& parent_templ = alt->graphs[neg.parent].templ;
    if (neg.prev_atom != nullptr) {
      gp.prev_state = parent_templ.NodeEndState(neg.prev_atom);
    }
    if (neg.foll_atom != nullptr) {
      gp.foll_state = parent_templ.NodeStartState(neg.foll_atom);
    }
    if (gp.prev_state != kInvalidState && gp.foll_state != kInvalidState) {
      gp.link_kind = NegationKind::kBetween;
      if (parent_templ.FindTransition(gp.prev_state, gp.foll_state) < 0) {
        return Status::Internal(
            "no parent transition between the previous and following states "
            "of a negative sub-pattern");
      }
    } else if (gp.prev_state != kInvalidState) {
      gp.link_kind = NegationKind::kTrailing;
    } else if (gp.foll_state != kInvalidState) {
      gp.link_kind = NegationKind::kLeading;
    } else {
      return Status::InvalidArgument(
          "negation without a preceding or following positive sub-pattern");
    }
  }
  return Status::Ok();
}

// Attaches one classified predicate list to the states and transitions of
// `gp` admitted by the filters (null = all; partial sharing restricts each
// query's predicates to the states/transitions it owns).
void AttachPredicatesToGraph(
    const std::vector<ClassifiedPredicate>& preds, bool enable_tree_ranges,
    GraphPlan* gp, const std::function<bool(StateId)>& state_ok,
    const std::function<bool(size_t)>& transition_ok) {
  // Vertex predicates.
  for (const ClassifiedPredicate& cp : preds) {
    if (cp.cls != PredicateClass::kLocal) continue;
    for (const TemplateState& s : gp->templ.states()) {
      if (s.type != cp.base_type) continue;
      if (state_ok && !state_ok(s.id)) continue;
      gp->states[s.id].local_preds.push_back(cp.expr);
    }
  }
  // Edge predicates per transition.
  const auto& transitions = gp->templ.transitions();
  for (size_t t = 0; t < transitions.size(); ++t) {
    if (transition_ok && !transition_ok(t)) continue;
    StateId from = transitions[t].from;
    StateId to = transitions[t].to;
    for (const ClassifiedPredicate& cp : preds) {
      if (cp.cls != PredicateClass::kEdge) continue;
      if (gp->states[from].type != cp.base_type ||
          gp->states[to].type != cp.next_type) {
        continue;
      }
      EdgePredicatePlan ep;
      ep.expr = cp.expr;
      if (enable_tree_ranges) {
        ep.range = RangeExtraction::FromPredicate(*cp.expr);
      }
      gp->transitions[t].preds.push_back(std::move(ep));
    }
  }
}

// Sort keys: for each state, the key attr of the first extractable edge
// predicate on any outgoing transition wins ("sorted by the most selective
// predicate", Section 7). Run once after ALL predicates are attached.
void AssignSortKeys(GraphPlan* gp) {
  const auto& transitions = gp->templ.transitions();
  for (size_t t = 0; t < transitions.size(); ++t) {
    StateId from = transitions[t].from;
    for (EdgePredicatePlan& ep : gp->transitions[t].preds) {
      if (!ep.range.has_value()) continue;
      AttrId key = ep.range->key_attr();
      if (gp->states[from].sort_attr == kInvalidAttr) {
        gp->states[from].sort_attr = key;
      }
      ep.drives_sort_key = (gp->states[from].sort_attr == key);
    }
  }
  // With sort keys fixed, split off the scan-time residual predicates so
  // the hot loop iterates them directly.
  for (TransitionPlan& tp : gp->transitions) {
    tp.residual_preds.clear();
    for (const EdgePredicatePlan& ep : tp.preds) {
      if (ep.drives_sort_key && ep.range.has_value()) continue;
      tp.residual_preds.push_back(ep.expr);
    }
  }
}

// Attaches classified predicates and picks Vertex-Tree sort keys.
Status AttachPredicates(const std::vector<ClassifiedPredicate>& preds,
                        bool enable_tree_ranges, AlternativePlan* alt) {
  for (GraphPlan& gp : alt->graphs) {
    AttachPredicatesToGraph(preds, enable_tree_ranges, &gp, nullptr,
                            nullptr);
    AssignSortKeys(&gp);
  }
  return Status::Ok();
}

// Per state, how many leading attribute values stored vertices must keep:
// the scan-time residual edge predicates (those not enforced by the Vertex
// Tree's key range) re-read the predecessor's attributes, so the highest
// base-side attr id they reference bounds the stored prefix. Must run after
// AssignSortKeys (drives_sort_key decides what is residual).
void ComputeStoredAttrCounts(GraphPlan* gp) {
  const auto& transitions = gp->templ.transitions();
  for (size_t t = 0; t < transitions.size(); ++t) {
    StateId from = transitions[t].from;
    for (const EdgePredicatePlan& ep : gp->transitions[t].preds) {
      if (ep.drives_sort_key && ep.range.has_value()) continue;
      std::vector<AttrRef> base, next;
      ep.expr->CollectRefs(&base, &next);
      for (const AttrRef& ref : base) {
        uint16_t need = static_cast<uint16_t>(ref.attr + 1);
        if (need > gp->states[from].stored_attr_count) {
          gp->states[from].stored_attr_count = need;
        }
      }
    }
  }
}

// Compiles the graph's AggPlan flag set + CounterMode into its propagation
// kernel. Must run after every query slot's aggregate plan is attached
// (BuildSharedPlan appends slots to an already-built plan).
void SelectKernels(ExecPlan* plan, const PlannerOptions& options) {
  for (AlternativePlan& alt : plan->alternatives) {
    for (GraphPlan& gp : alt.graphs) {
      ComputeStoredAttrCounts(&gp);
      gp.kernel = PropKernel::kGeneric;
      if (!options.enable_specialized_kernels) continue;
      // Partial sharing propagates snapshot/fold cells through its own
      // dedicated path; the flag-set kernels do not apply.
      if (plan->partial.has_value()) continue;
      auto count_only = [](const AggPlan& a) {
        return !a.need_type_count && !a.need_min && !a.need_max &&
               !a.need_sum && !a.need_max_start;
      };
      bool all_count_only = count_only(gp.agg);
      for (const AggPlan& a : gp.aggs) all_count_only &= count_only(a);
      if (!all_count_only) continue;
      gp.kernel = plan->mode == CounterMode::kModular
                      ? PropKernel::kCountModular
                      : PropKernel::kCountExact;
    }
  }
}

}  // namespace

StatusOr<std::unique_ptr<ExecPlan>> BuildPlan(const QuerySpec& spec,
                                              const Catalog& catalog,
                                              const PlannerOptions& options) {
  if (spec.pattern == nullptr) {
    return Status::InvalidArgument("query has no pattern");
  }
  Status valid = ValidatePattern(*spec.pattern);
  if (!valid.ok()) return valid;

  auto plan = std::make_unique<ExecPlan>();
  plan->window = spec.window;
  plan->semantics = options.semantics;
  plan->mode = options.counter_mode;
  plan->enable_pruning = options.enable_pruning;
  plan->enable_batch_kernels = options.enable_batch_kernels;
  plan->enable_simd = options.enable_simd;
  plan->agg_specs = spec.aggs;

  if (!spec.window.unbounded() &&
      MaxWindowsPerEvent(spec.window) > options.max_windows_per_event) {
    return Status::Unsupported(
        "an event would fall into more than " +
        std::to_string(options.max_windows_per_event) +
        " windows; increase SLIDE or PlannerOptions::max_windows_per_event");
  }

  StatusOr<AggPlan> agg = AggPlan::FromSpecs(spec.aggs, options.counter_mode);
  if (!agg.ok()) return agg.status();
  plan->agg = agg.value();
  plan->query_aggs = {plan->agg};
  plan->query_agg_specs = {spec.aggs};

  // Top-level conjunction splits into term groups (Section 9); everything
  // else is a single group whose alternatives are summed.
  std::vector<const Pattern*> sides;
  CollectConjuncts(*spec.pattern, &sides);
  if (sides.size() > 1) {
    if (plan->agg.need_type_count || plan->agg.need_min ||
        plan->agg.need_max || plan->agg.need_sum) {
      return Status::Unsupported(
          "conjunctive patterns support COUNT(*) only (Section 9 pairs "
          "trends; per-event aggregates are not defined on pairs)");
    }
    for (size_t i = 0; i < sides.size(); ++i) {
      for (size_t j = i + 1; j < sides.size(); ++j) {
        if (!ProvablyDisjoint(*sides[i], *sides[j])) {
          return Status::Unsupported(
              "cannot prove conjunction sides disjoint; use "
              "combinators::CombineConjunction with an explicit intersection "
              "count (Section 9)");
        }
      }
    }
  }

  // Classify WHERE conjuncts once; the plan owns clones of the expressions.
  std::vector<ClassifiedPredicate> classified;
  for (const ExprPtr& conjunct : spec.where) {
    plan->owned_exprs.push_back(conjunct->Clone());
    StatusOr<ClassifiedPredicate> cp =
        ClassifyPredicate(*plan->owned_exprs.back());
    if (!cp.ok()) return cp.status();
    if (cp.value().cls == PredicateClass::kConstant) {
      Event dummy;
      if (!plan->owned_exprs.back()->EvalVertex(dummy).Truthy()) {
        // Constant-false WHERE: the query matches nothing.
        plan->alternatives.clear();
        plan->groups.clear();
        return plan;
      }
      continue;
    }
    classified.push_back(cp.value());
  }

  for (const Pattern* side : sides) {
    StatusOr<std::vector<PatternPtr>> alts = ExpandSugar(*side);
    if (!alts.ok()) return alts.status();
    Status disjoint = CheckPairwiseDisjoint(alts.value(), catalog);
    if (!disjoint.ok()) return disjoint;

    TermGroupPlan group;
    for (PatternPtr& alt_pattern : alts.value()) {
      StatusOr<SplitResult> split = SplitPattern(*alt_pattern);
      if (!split.ok()) return split.status();
      plan->owned_splits.push_back(std::move(split).value());
      const SplitResult& owned = plan->owned_splits.back();

      AlternativePlan alt;
      Status built = BuildGraphPlans(owned, catalog, plan->agg,
                                     options.counter_mode, &alt);
      if (!built.ok()) return built;
      Status attached =
          AttachPredicates(classified, options.enable_tree_ranges, &alt);
      if (!attached.ok()) return attached;
      group.alternative_indices.push_back(
          static_cast<int>(plan->alternatives.size()));
      plan->alternatives.push_back(std::move(alt));
    }
    plan->groups.push_back(std::move(group));
  }

  // Partition keys: GROUP-BY attrs first, then remaining equivalence attrs.
  plan->key_attrs = spec.group_by;
  plan->num_group_attrs = spec.group_by.size();
  for (const std::string& attr : spec.equivalence) {
    if (std::find(plan->key_attrs.begin(), plan->key_attrs.end(), attr) ==
        plan->key_attrs.end()) {
      plan->key_attrs.push_back(attr);
    }
  }

  // Resolve key attr positions per relevant type.
  std::set<TypeId> relevant;
  for (const AlternativePlan& alt : plan->alternatives) {
    for (const GraphPlan& gp : alt.graphs) {
      for (const TemplateState& s : gp.templ.states()) relevant.insert(s.type);
    }
  }
  for (TypeId type : relevant) {
    std::vector<AttrId> ids;
    for (const std::string& attr : plan->key_attrs) {
      ids.push_back(catalog.type(type).FindAttr(attr));
    }
    plan->key_attr_ids[type] = std::move(ids);
  }
  // Every key attr must exist on at least one relevant type.
  for (size_t i = 0; i < plan->key_attrs.size(); ++i) {
    bool found = false;
    for (const auto& [type, ids] : plan->key_attr_ids) {
      (void)type;
      if (ids[i] != kInvalidAttr) found = true;
    }
    if (!found) {
      return Status::InvalidArgument("grouping/equivalence attribute '" +
                                     plan->key_attrs[i] +
                                     "' exists on no event type used by the "
                                     "pattern");
    }
  }

  SelectKernels(plan.get(), options);
  return plan;
}

const Pattern* KleenePrefixCore(const Pattern& alt) {
  if (alt.op() == PatternOp::kPlus) return &alt;
  if (alt.op() == PatternOp::kSeq && !alt.children().empty() &&
      alt.children()[0]->op() == PatternOp::kPlus) {
    return alt.children()[0].get();
  }
  return nullptr;
}

bool IsCoreSnapshotPredicate(const ClassifiedPredicate& cp,
                             const std::vector<TypeId>& core_types) {
  auto in_core = [&](TypeId t) {
    return std::find(core_types.begin(), core_types.end(), t) !=
           core_types.end();
  };
  if (cp.cls == PredicateClass::kLocal) return in_core(cp.base_type);
  if (cp.cls == PredicateClass::kEdge) {
    return in_core(cp.base_type) && in_core(cp.next_type);
  }
  return false;
}

namespace {

// One query of a partial-sharing cluster, desugared and decomposed.
struct PartialQuery {
  PatternPtr alt;           // the single desugared alternative (owned)
  const Pattern* core;      // Kleene prefix inside `alt`
  GretaTemplate full;       // template of `alt`
  AggPlan agg;
  std::vector<ClassifiedPredicate> preds;    // non-constant conjuncts
  std::vector<std::string> core_pred_texts;  // sorted, for agreement checks
};

// Desugars and validates one query of a partial cluster. Predicates are
// classified against clones owned by `plan`.
Status DecomposePartialQuery(const QuerySpec& spec, const Catalog& catalog,
                             ExecPlan* plan, PartialQuery* out) {
  if (spec.pattern == nullptr) {
    return Status::InvalidArgument("query has no pattern");
  }
  Status valid = ValidatePattern(*spec.pattern);
  if (!valid.ok()) return valid;
  if (!spec.pattern->IsPositive()) {
    return Status::Unsupported("partial sharing requires positive patterns");
  }
  std::vector<const Pattern*> sides;
  CollectConjuncts(*spec.pattern, &sides);
  if (sides.size() > 1) {
    return Status::Unsupported(
        "partial sharing does not cover conjunctive patterns");
  }
  StatusOr<std::vector<PatternPtr>> alts = ExpandSugar(*spec.pattern);
  if (!alts.ok()) return alts.status();
  if (alts.value().size() != 1) {
    return Status::Unsupported(
        "partial sharing requires a single disjunction-free alternative");
  }
  out->alt = std::move(alts.value()[0]);
  out->core = KleenePrefixCore(*out->alt);
  if (out->core == nullptr) {
    return Status::Unsupported(
        "partial sharing requires a Kleene sub-pattern prefix");
  }
  StatusOr<GretaTemplate> full = BuildTemplate(*out->alt, catalog);
  if (!full.ok()) return full.status();
  out->full = std::move(full).value();

  for (const ExprPtr& conjunct : spec.where) {
    plan->owned_exprs.push_back(conjunct->Clone());
    StatusOr<ClassifiedPredicate> cp =
        ClassifyPredicate(*plan->owned_exprs.back());
    if (!cp.ok()) return cp.status();
    if (cp.value().cls == PredicateClass::kConstant) {
      Event dummy;
      if (!plan->owned_exprs.back()->EvalVertex(dummy).Truthy()) {
        return Status::Unsupported(
            "constant-false WHERE clause in a partial-sharing cluster");
      }
      continue;
    }
    out->preds.push_back(cp.value());
  }
  std::vector<TypeId> core_types = out->core->CollectTypes();
  for (const ClassifiedPredicate& cp : out->preds) {
    if (IsCoreSnapshotPredicate(cp, core_types)) {
      out->core_pred_texts.push_back(cp.expr->ToString(catalog));
    }
  }
  std::sort(out->core_pred_texts.begin(), out->core_pred_texts.end());
  return Status::Ok();
}

}  // namespace

StatusOr<std::unique_ptr<ExecPlan>> BuildPartialSharedPlan(
    const std::vector<const QuerySpec*>& specs, const Catalog& catalog,
    const PlannerOptions& options) {
  if (specs.size() < 2) {
    return Status::InvalidArgument(
        "partial shared plan needs at least two queries");
  }
  if (options.semantics != Semantics::kSkipTillAnyMatch) {
    return Status::Unsupported(
        "partial sharing requires skip-till-any-match semantics (the "
        "restricted semantics tie per-event bookkeeping to one query's "
        "pattern structure)");
  }

  auto plan = std::make_unique<ExecPlan>();
  plan->semantics = options.semantics;
  plan->mode = options.counter_mode;
  plan->enable_pruning = options.enable_pruning;
  plan->enable_batch_kernels = options.enable_batch_kernels;
  plan->enable_simd = options.enable_simd;

  // Decompose every query and re-validate cluster agreement.
  std::vector<PartialQuery> queries(specs.size());
  for (size_t q = 0; q < specs.size(); ++q) {
    Status s = DecomposePartialQuery(*specs[q], catalog, plan.get(),
                                     &queries[q]);
    if (!s.ok()) {
      // Keep the code: Unsupported marks shapes the caller may degrade to
      // dedicated runtimes, InvalidArgument marks planner disagreement.
      return Status(s.code(),
                    "query " + std::to_string(q) + ": " + s.message());
    }
  }
  StatusOr<GretaTemplate> core_templ =
      BuildTemplate(*queries[0].core, catalog);
  if (!core_templ.ok()) return core_templ.status();
  const std::string core_fp =
      TemplateStructureFingerprint(core_templ.value());
  for (size_t q = 1; q < specs.size(); ++q) {
    StatusOr<GretaTemplate> qc = BuildTemplate(*queries[q].core, catalog);
    if (!qc.ok()) return qc.status();
    if (TemplateStructureFingerprint(qc.value()) != core_fp) {
      return Status::InvalidArgument(
          "queries of a partial-sharing cluster must share their Kleene "
          "sub-pattern");
    }
    if (queries[q].core_pred_texts != queries[0].core_pred_texts) {
      return Status::InvalidArgument(
          "queries of a partial-sharing cluster must agree on WHERE "
          "predicates over the shared sub-pattern");
    }
  }

  // Keys: shared partitioning requires identical grouping and equivalence.
  std::vector<std::string> equiv0 = specs[0]->equivalence;
  std::sort(equiv0.begin(), equiv0.end());
  for (size_t q = 1; q < specs.size(); ++q) {
    std::vector<std::string> equiv = specs[q]->equivalence;
    std::sort(equiv.begin(), equiv.end());
    if (equiv != equiv0 || specs[q]->group_by != specs[0]->group_by) {
      return Status::InvalidArgument(
          "queries of a partial-sharing cluster must agree on GROUP-BY and "
          "equivalence attributes");
    }
  }

  // Windows: all unbounded, or all bounded with one slide; the plan window
  // is the union (max within) so shared vertices cover every query's range.
  WindowSpec union_window = specs[0]->window;
  for (size_t q = 1; q < specs.size(); ++q) {
    const WindowSpec& w = specs[q]->window;
    if (w.unbounded() != union_window.unbounded() ||
        (!w.unbounded() && w.slide != union_window.slide)) {
      return Status::InvalidArgument(
          "queries of a partial-sharing cluster must agree on window slide "
          "(or all be unbounded)");
    }
    if (!w.unbounded() && w.within > union_window.within) {
      union_window.within = w.within;
    }
  }
  if (!union_window.unbounded() &&
      MaxWindowsPerEvent(union_window) > options.max_windows_per_event) {
    return Status::Unsupported(
        "an event would fall into more than " +
        std::to_string(options.max_windows_per_event) +
        " windows of the cluster's union window; increase SLIDE or "
        "PlannerOptions::max_windows_per_event");
  }
  plan->window = union_window;

  // Merge the per-query templates over the shared core.
  PartialSharingPlan partial;
  std::vector<const GretaTemplate*> fulls;
  fulls.reserve(queries.size());
  for (const PartialQuery& pq : queries) fulls.push_back(&pq.full);
  StatusOr<GretaTemplate> merged = MergeSharedCoreTemplates(
      core_templ.value(), fulls, &partial.end_states, &partial.state_owner,
      &partial.transition_owner);
  if (!merged.ok()) return merged.status();
  partial.num_core_states = core_templ.value().num_states();

  // Per-query aggregate plans and snapshot fold slots.
  for (size_t q = 0; q < specs.size(); ++q) {
    StatusOr<AggPlan> agg =
        AggPlan::FromSpecs(specs[q]->aggs, options.counter_mode);
    if (!agg.ok()) return agg.status();
    queries[q].agg = agg.value();
    const AggPlan& a = queries[q].agg;
    bool needs_fold =
        a.need_type_count || a.need_min || a.need_max || a.need_sum;
    if (needs_fold) {
      partial.fold_slots.push_back(
          static_cast<int>(1 + partial.num_fold_slots++));
      partial.fold_queries.push_back(q);
    } else {
      partial.fold_slots.push_back(-1);
    }
    partial.windows.push_back(specs[q]->window);
    plan->query_aggs.push_back(a);
    plan->query_agg_specs.push_back(specs[q]->aggs);
  }
  plan->agg = plan->query_aggs[0];
  plan->agg_specs = specs[0]->aggs;

  // One positive graph over the merged template, all queries' plans on it.
  AlternativePlan alt;
  alt.graphs.resize(1);
  GraphPlan& gp = alt.graphs[0];
  gp.templ = std::move(merged).value();
  gp.agg = plan->agg;
  gp.aggs = plan->query_aggs;
  gp.states.resize(gp.templ.num_states());
  for (const TemplateState& s : gp.templ.states()) {
    gp.states[s.id].type = s.type;
  }
  gp.transitions.resize(gp.templ.transitions().size());

  // Predicate attachment, owner-aware: query q's conjuncts reach only the
  // states/transitions q owns; the shared core takes query 0's copies (the
  // agreement check above makes every query's core conjuncts identical).
  for (size_t q = 0; q < queries.size(); ++q) {
    AttachPredicatesToGraph(
        queries[q].preds, options.enable_tree_ranges, &gp,
        [&partial, q](StateId s) {
          int owner = partial.state_owner[s];
          return owner == static_cast<int>(q) || (owner < 0 && q == 0);
        },
        [&partial, q](size_t t) {
          int owner = partial.transition_owner[t];
          return owner == static_cast<int>(q) || (owner < 0 && q == 0);
        });
  }
  AssignSortKeys(&gp);

  plan->alternatives.push_back(std::move(alt));
  TermGroupPlan group;
  group.alternative_indices.push_back(0);
  plan->groups.push_back(std::move(group));
  plan->partial = std::move(partial);

  // Partition keys over the merged template's types (as in BuildPlan).
  plan->key_attrs = specs[0]->group_by;
  plan->num_group_attrs = specs[0]->group_by.size();
  for (const std::string& attr : specs[0]->equivalence) {
    if (std::find(plan->key_attrs.begin(), plan->key_attrs.end(), attr) ==
        plan->key_attrs.end()) {
      plan->key_attrs.push_back(attr);
    }
  }
  std::set<TypeId> relevant;
  for (const TemplateState& s :
       plan->alternatives[0].graphs[0].templ.states()) {
    relevant.insert(s.type);
  }
  for (TypeId type : relevant) {
    std::vector<AttrId> ids;
    for (const std::string& attr : plan->key_attrs) {
      ids.push_back(catalog.type(type).FindAttr(attr));
    }
    plan->key_attr_ids[type] = std::move(ids);
  }
  for (size_t i = 0; i < plan->key_attrs.size(); ++i) {
    bool found = false;
    for (const auto& [type, ids] : plan->key_attr_ids) {
      (void)type;
      if (ids[i] != kInvalidAttr) found = true;
    }
    if (!found) {
      return Status::InvalidArgument("grouping/equivalence attribute '" +
                                     plan->key_attrs[i] +
                                     "' exists on no event type used by the "
                                     "pattern");
    }
  }
  SelectKernels(plan.get(), options);
  return plan;
}

StatusOr<std::unique_ptr<ExecPlan>> BuildSharedPlan(
    const std::vector<const QuerySpec*>& specs, const Catalog& catalog,
    const PlannerOptions& options) {
  if (specs.empty()) {
    return Status::InvalidArgument("shared plan needs at least one query");
  }
  StatusOr<std::unique_ptr<ExecPlan>> base =
      BuildPlan(*specs[0], catalog, options);
  if (!base.ok()) return base.status();
  std::unique_ptr<ExecPlan> plan = std::move(base).value();

  for (size_t q = 1; q < specs.size(); ++q) {
    StatusOr<AggPlan> agg =
        AggPlan::FromSpecs(specs[q]->aggs, options.counter_mode);
    if (!agg.ok()) return agg.status();
    if (plan->groups.size() > 1 &&
        (agg.value().need_type_count || agg.value().need_min ||
         agg.value().need_max || agg.value().need_sum)) {
      return Status::Unsupported(
          "conjunctive patterns support COUNT(*) only (Section 9), for every "
          "query of a shared cluster");
    }
    plan->query_aggs.push_back(agg.value());
    plan->query_agg_specs.push_back(specs[q]->aggs);
    // Only positive graphs (sub-pattern 0) carry query aggregates; negative
    // graphs keep their single query-independent barrier plan. Conjunctive
    // plans (> 1 term group) keep a single slot too: the final count is a
    // product of slot-0 counts and per-query cells would never be read.
    if (plan->groups.size() <= 1) {
      for (AlternativePlan& alt : plan->alternatives) {
        alt.graphs[0].aggs.push_back(agg.value());
      }
    }
  }
  // Re-select: the query slots appended above may demote a COUNT(*)-only
  // graph to the generic kernel (stored-attr counts only grow, idempotent).
  SelectKernels(plan.get(), options);
  return plan;
}

}  // namespace greta
