#ifndef GRETA_CORE_NEGATION_H_
#define GRETA_CORE_NEGATION_H_

#include <cstddef>
#include <unordered_map>

#include "common/types.h"

namespace greta {

/// Placement of a negative sub-pattern within its parent (Section 5.1).
enum class NegationKind {
  kNone = 0,
  kBetween = 1,    // Case 1: SEQ(Pi, NOT N, Pj)
  kTrailing = 2,   // Case 2: SEQ(Pi, NOT N)
  kLeading = 3,    // Case 3: SEQ(NOT N, Pj)
};

/// Runtime channel between a negative sub-pattern's graph and the graph it
/// invalidates (the "Graph Dependencies" of Section 7).
///
/// The negative graph reports every finished trend — per window id — as the
/// pair (end time, latest start time among trends ending there). The latest
/// start is itself an incremental aggregate propagated through the negative
/// graph exactly like MIN/MAX (AggCell::max_start), so negation never
/// enumerates trends either.
///
/// The dependent graph queries barriers:
///  - Case 1/2: MaxStartBarrier(w, now) = the latest start among finished
///    trends with end < now. A previous-type predecessor u is invalid to
///    connect when u.time < barrier (Definition 5).
///  - Case 3: MinEndBarrier(w, now) = the earliest finish; following-type
///    events with time > barrier are invalid (not inserted for window w).
///  - Case 2 close: CloseMaxStart(w) includes same-timestamp pending trends;
///    END vertices with time < barrier are excluded from the final
///    aggregate.
///
/// The pending/committed split implements the strictness of Definition 5
/// ("events arriving after en.time"): a trend reported at timestamp t only
/// affects events with a strictly larger timestamp. This also makes the
/// result independent of the processing order of same-timestamp events,
/// which is what the paper's time-driven transaction scheduler guarantees.
class NegationLink {
 public:
  NegationLink(NegationKind kind, int transition_index, StateId foll_state)
      : kind_(kind),
        transition_index_(transition_index),
        foll_state_(foll_state) {}

  NegationKind kind() const { return kind_; }
  /// Case 1: index of the prev->foll transition in the dependent template.
  int transition_index() const { return transition_index_; }
  /// Case 3: the following state in the dependent template.
  StateId foll_state() const { return foll_state_; }

  /// Called by the negative graph when an END vertex finishes trends in
  /// window `wid` at time `end_ts` whose latest start is `max_start_ts`.
  void ReportTrendEnd(WindowId wid, Ts end_ts, Ts max_start_ts) {
    Cell& cell = cells_[wid];
    Fold(&cell, end_ts);
    if (max_start_ts > cell.pending_max_start) {
      cell.pending_max_start = max_start_ts;
    }
    if (end_ts < cell.pending_min_end) cell.pending_min_end = end_ts;
    cell.pending_ts = end_ts;
    cell.has_pending = true;
  }

  /// Latest start among trends finished strictly before `now` (kMinTs when
  /// none): predecessors older than this are invalid (Cases 1 and 2).
  Ts MaxStartBarrier(WindowId wid, Ts now) {
    Cell* cell = FindCell(wid);
    if (cell == nullptr) return kMinTs;
    Fold(cell, now);
    return cell->committed_max_start;
  }

  /// Earliest finish among trends finished strictly before `now` (kMaxTs
  /// when none): following-type events newer than this are invalid (Case 3).
  Ts MinEndBarrier(WindowId wid, Ts now) {
    Cell* cell = FindCell(wid);
    if (cell == nullptr) return kMaxTs;
    Fold(cell, now);
    return cell->committed_min_end;
  }

  /// Latest start across *all* finished trends of window `wid`, including
  /// pending ones — used at window close for the Case-2 END filter.
  Ts CloseMaxStart(WindowId wid) const {
    auto it = cells_.find(wid);
    if (it == cells_.end()) return kMinTs;
    const Cell& cell = it->second;
    return cell.pending_max_start > cell.committed_max_start
               ? cell.pending_max_start
               : cell.committed_max_start;
  }

  /// Drops per-window state once the window is closed.
  void ForgetWindow(WindowId wid) { cells_.erase(wid); }

  size_t ApproxBytes() const {
    return cells_.size() * (sizeof(WindowId) + sizeof(Cell) + 16);
  }

 private:
  struct Cell {
    Ts committed_max_start = kMinTs;
    Ts committed_min_end = kMaxTs;
    Ts pending_max_start = kMinTs;
    Ts pending_min_end = kMaxTs;
    Ts pending_ts = kMinTs;  // timestamp of the pending report(s)
    bool has_pending = false;
  };

  Cell* FindCell(WindowId wid) {
    auto it = cells_.find(wid);
    return it == cells_.end() ? nullptr : &it->second;
  }

  // Commits pending reports older than `now` (strict).
  static void Fold(Cell* cell, Ts now) {
    if (cell->pending_ts >= now && cell->has_pending) return;
    if (cell->pending_max_start > cell->committed_max_start) {
      cell->committed_max_start = cell->pending_max_start;
    }
    if (cell->pending_min_end < cell->committed_min_end) {
      cell->committed_min_end = cell->pending_min_end;
    }
    cell->pending_max_start = kMinTs;
    cell->pending_min_end = kMaxTs;
    cell->has_pending = false;
  }

  NegationKind kind_;
  int transition_index_;
  StateId foll_state_;
  std::unordered_map<WindowId, Cell> cells_;
};

}  // namespace greta

#endif  // GRETA_CORE_NEGATION_H_
