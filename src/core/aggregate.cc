#include "core/aggregate.h"

namespace greta {

StatusOr<AggPlan> AggPlan::FromSpecs(const std::vector<AggSpec>& specs,
                                     CounterMode mode) {
  AggPlan plan;
  plan.mode = mode;
  if (specs.empty()) {
    return Status::InvalidArgument("query requests no aggregates");
  }
  for (const AggSpec& spec : specs) {
    if (spec.kind == AggKind::kCountStar) continue;
    // All attribute-based aggregates must share one target event type (and
    // one attribute for MIN/MAX/SUM/AVG): the per-vertex aggregate cell
    // carries a single target slot (DESIGN.md §2.3).
    if (plan.target_type == kInvalidType) {
      plan.target_type = spec.type;
    } else if (plan.target_type != spec.type) {
      return Status::Unsupported(
          "aggregates over two different event types in one query are not "
          "supported; split the query");
    }
    if (spec.kind != AggKind::kCountType) {
      if (plan.target_attr == kInvalidAttr) {
        plan.target_attr = spec.attr;
      } else if (plan.target_attr != spec.attr) {
        return Status::Unsupported(
            "aggregates over two different attributes in one query are not "
            "supported; split the query");
      }
    }
    switch (spec.kind) {
      case AggKind::kCountType:
        plan.need_type_count = true;
        break;
      case AggKind::kMin:
        plan.need_min = true;
        break;
      case AggKind::kMax:
        plan.need_max = true;
        break;
      case AggKind::kSum:
        plan.need_sum = true;
        break;
      case AggKind::kAvg:
        plan.need_sum = true;
        plan.need_type_count = true;
        break;
      case AggKind::kCountStar:
        break;
    }
  }
  // COUNT(E) without an attribute is fine; attribute aggregates need one.
  if ((plan.need_min || plan.need_max || plan.need_sum) &&
      plan.target_attr == kInvalidAttr) {
    return Status::InvalidArgument("attribute aggregate without an attribute");
  }
  return plan;
}

std::string AggOutputs::Render(const AggSpec& spec) const {
  switch (spec.kind) {
    case AggKind::kCountStar:
      return count.ToDecimal();
    case AggKind::kCountType:
      return type_count.ToDecimal();
    case AggKind::kMin: {
      if (!any || min == kAggInf) return "-";
      return Value::Double(min).ToString();
    }
    case AggKind::kMax: {
      if (!any || max == -kAggInf) return "-";
      return Value::Double(max).ToString();
    }
    case AggKind::kSum:
      return Value::Double(sum).ToString();
    case AggKind::kAvg:
      return Value::Double(Avg()).ToString();
  }
  return "?";
}

}  // namespace greta
