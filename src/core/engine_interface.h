#ifndef GRETA_CORE_ENGINE_INTERFACE_H_
#define GRETA_CORE_ENGINE_INTERFACE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/event.h"
#include "common/event_batch.h"
#include "common/status.h"
#include "core/aggregate.h"

namespace greta {

/// Event selection semantics (Table 1). Skip-till-any-match is the paper's
/// focus (all matches, exponentially many trends); the restricted semantics
/// establish fewer edges in the graph (Section 9):
///  - kSkipTillNextMatch: each stored event extends at most one later event
///    per transition (it skips only events it cannot match);
///  - kContiguous: adjacent trend events must be consecutive in the
///    (partitioned, vertex-filtered) stream seen by the graph.
enum class Semantics {
  kSkipTillAnyMatch,
  kSkipTillNextMatch,
  kContiguous,
};

/// One aggregation result: the aggregates of one group in one window.
struct ResultRow {
  WindowId wid = 0;
  std::vector<Value> group;  // values of the GROUP-BY attributes
  AggOutputs aggs;
};

/// One closed window's execution profile, snapshotted by the engine at
/// window close (src/sharing/ adaptive re-planning). Counters are deltas
/// since the previous window close, so consecutive observations partition
/// the engine's work along the window grid:
///  - `events_routed`: relevant-type events delivered to partitions (the
///    per-window arrival rate of the engine's stream region — the burstiness
///    signal; irrelevant types are not counted);
///  - `vertices_created` / `edges_traversed`: structural graph work.
struct WindowObservation {
  WindowId wid = 0;
  Ts close_time = 0;
  size_t events_routed = 0;
  size_t vertices_created = 0;
  size_t edges_traversed = 0;
};

/// Cumulative per-query execution tallies for EXPLAIN ANALYZE, flushed from
/// plain serial-path members at window close (never per-event atomics). In a
/// merged multi-query engine the structural work (events routed, vertices,
/// edges) is *cluster-attributed*: the graph is shared, so every member
/// query of the cluster reports the full cluster totals — exact for
/// dedicated (single-query) engines, an upper bound per query under sharing.
struct QueryExecStats {
  size_t query_id = 0;
  size_t windows_closed = 0;
  size_t events_routed = 0;
  size_t vertices_created = 0;
  size_t edges_traversed = 0;
  size_t rows_emitted = 0;      // exact per query even when merged
  uint64_t emit_ns = 0;         // window-close emission time (cluster-wide)
};

/// Counters common to all engines, reported by benchmarks.
struct EngineStats {
  size_t events_processed = 0;
  size_t vertices_stored = 0;
  size_t edges_traversed = 0;     // aggregate propagation steps (GRETA)
  size_t trends_constructed = 0;  // materialized trends (two-step baselines)
  size_t work_units = 0;          // abstract work, for budget enforcement
  size_t peak_bytes = 0;          // peak data structure footprint
  bool dnf = false;               // exceeded its work budget ("did not finish")
  // Batch-kernel coverage (GRETA columnar ingest): rows that went through an
  // amortized run kernel vs. rows that took the scalar row-wise fallback
  // (any reason — kernels disabled, restricted semantics, negation, NaN
  // bounds). Zero for scalar engines.
  size_t batch_rows_fast = 0;
  size_t batch_rows_fallback = 0;
  // Rows whose batch kernels ran through the dispatched vector ISA (zero
  // under scalar dispatch, GRETA_SIMD=scalar, or enable_simd=false).
  size_t simd_rows = 0;
};

/// Common interface of the GRETA engine and the two-step baselines (SASE,
/// CET, Flink-flat), so tests and benchmarks can swap them freely.
///
/// Contract: Process() must be called in non-decreasing time order; results
/// for a window are emitted once the watermark passes its close time (or at
/// Flush() for whatever remains) and are drained with TakeResults().
class EngineInterface {
 public:
  virtual ~EngineInterface() = default;

  virtual Status Process(const Event& e) = 0;

  /// Columnar ingest: processes every row of a time-ordered batch. The
  /// default materializes each row through Process(), so scalar engines
  /// (the two-step baselines, the shared workload engine) accept batches
  /// unchanged; GretaEngine overrides it with a native batch path whose
  /// rows must produce bit-identical results to the scalar loop.
  virtual Status ProcessBatch(const EventBatch& batch) {
    for (size_t i = 0; i < batch.size(); ++i) {
      Status s = Process(batch.ToEvent(i));
      if (!s.ok()) return s;
    }
    return Status::Ok();
  }

  virtual Status Flush() = 0;

  /// Drains emitted rows (ordered by window id, then group values).
  virtual std::vector<ResultRow> TakeResults() = 0;

  /// Drains per-window execution observations (ascending window id). The
  /// default is an engine without observation hooks: an empty drain.
  /// Implementations bound the undrained backlog (oldest dropped), so a
  /// driver that never drains pays O(1) memory.
  virtual std::vector<WindowObservation> TakeWindowObservations() {
    return {};
  }

  virtual const EngineStats& stats() const = 0;
  virtual const AggPlan& agg_plan() const = 0;
  virtual std::string name() const = 0;
};

/// Renders rows for humans: "wid=3 group=(Tech) COUNT(*)=43 ...".
std::string FormatRow(const ResultRow& row, const std::vector<AggSpec>& specs,
                      const Catalog& catalog);

/// Deterministic ordering used by every engine before emitting.
void SortRows(std::vector<ResultRow>* rows);

/// True when two result sets agree on counts (exact decimal), min/max/sum
/// (within tolerance), group keys and windows. Used to cross-validate
/// engines.
bool RowsEquivalent(const std::vector<ResultRow>& a,
                    const std::vector<ResultRow>& b, const AggPlan& plan,
                    std::string* diff);

}  // namespace greta

#endif  // GRETA_CORE_ENGINE_INTERFACE_H_
