#ifndef GRETA_CORE_ENGINE_INTERFACE_H_
#define GRETA_CORE_ENGINE_INTERFACE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/event.h"
#include "common/status.h"
#include "core/aggregate.h"

namespace greta {

/// Event selection semantics (Table 1). Skip-till-any-match is the paper's
/// focus (all matches, exponentially many trends); the restricted semantics
/// establish fewer edges in the graph (Section 9):
///  - kSkipTillNextMatch: each stored event extends at most one later event
///    per transition (it skips only events it cannot match);
///  - kContiguous: adjacent trend events must be consecutive in the
///    (partitioned, vertex-filtered) stream seen by the graph.
enum class Semantics {
  kSkipTillAnyMatch,
  kSkipTillNextMatch,
  kContiguous,
};

/// One aggregation result: the aggregates of one group in one window.
struct ResultRow {
  WindowId wid = 0;
  std::vector<Value> group;  // values of the GROUP-BY attributes
  AggOutputs aggs;
};

/// Counters common to all engines, reported by benchmarks.
struct EngineStats {
  size_t events_processed = 0;
  size_t vertices_stored = 0;
  size_t edges_traversed = 0;     // aggregate propagation steps (GRETA)
  size_t trends_constructed = 0;  // materialized trends (two-step baselines)
  size_t work_units = 0;          // abstract work, for budget enforcement
  size_t peak_bytes = 0;          // peak data structure footprint
  bool dnf = false;               // exceeded its work budget ("did not finish")
};

/// Common interface of the GRETA engine and the two-step baselines (SASE,
/// CET, Flink-flat), so tests and benchmarks can swap them freely.
///
/// Contract: Process() must be called in non-decreasing time order; results
/// for a window are emitted once the watermark passes its close time (or at
/// Flush() for whatever remains) and are drained with TakeResults().
class EngineInterface {
 public:
  virtual ~EngineInterface() = default;

  virtual Status Process(const Event& e) = 0;
  virtual Status Flush() = 0;

  /// Drains emitted rows (ordered by window id, then group values).
  virtual std::vector<ResultRow> TakeResults() = 0;

  virtual const EngineStats& stats() const = 0;
  virtual const AggPlan& agg_plan() const = 0;
  virtual std::string name() const = 0;
};

/// Renders rows for humans: "wid=3 group=(Tech) COUNT(*)=43 ...".
std::string FormatRow(const ResultRow& row, const std::vector<AggSpec>& specs,
                      const Catalog& catalog);

/// Deterministic ordering used by every engine before emitting.
void SortRows(std::vector<ResultRow>* rows);

/// True when two result sets agree on counts (exact decimal), min/max/sum
/// (within tolerance), group keys and windows. Used to cross-validate
/// engines.
bool RowsEquivalent(const std::vector<ResultRow>& a,
                    const std::vector<ResultRow>& b, const AggPlan& plan,
                    std::string* diff);

}  // namespace greta

#endif  // GRETA_CORE_ENGINE_INTERFACE_H_
