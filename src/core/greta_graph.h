#ifndef GRETA_CORE_GRETA_GRAPH_H_
#define GRETA_CORE_GRETA_GRAPH_H_

#include <vector>

#include "common/memory.h"
#include "core/negation.h"
#include "core/plan.h"
#include "storage/pane.h"

namespace greta {

/// A vertex of the runtime GRETA graph: one matched event at one template
/// state, carrying one aggregate cell per window it falls into (Definition 3
/// plus the sliding-window sharing of Section 6). Edges are never stored —
/// each edge is traversed exactly once while the aggregate of the new event
/// is computed (Section 7).
///
/// Under multi-query shared execution (src/sharing/) the cell storage is
/// additionally query-indexed: cells are laid out row-major by window, one
/// AggCell per (window, query), so a single structural graph pass propagates
/// every query's aggregates. num_queries == 1 reproduces the single-query
/// layout bit for bit.
struct GraphVertex {
  Event event;
  StateId state = kInvalidState;
  WindowId first_wid = 0;
  int num_wids = 0;
  int num_queries = 1;
  bool dead = false;              // tombstone (invalid event pruning)
  uint64_t used_transitions = 0;  // skip-till-next-match bookkeeping
  std::vector<AggCell> cells;     // (wid - first_wid) * num_queries + q

  bool InWindow(WindowId wid) const {
    return wid >= first_wid && wid < first_wid + num_wids;
  }
  AggCell* cell(WindowId wid, size_t q = 0) {
    return &cells[(wid - first_wid) * num_queries + q];
  }
  const AggCell* cell(WindowId wid, size_t q = 0) const {
    return &cells[(wid - first_wid) * num_queries + q];
  }

  size_t ApproxBytes() const {
    size_t bytes = sizeof(GraphVertex) + cells.capacity() * sizeof(AggCell) +
                   event.attrs.capacity() * sizeof(Value);
    for (const AggCell& c : cells) {
      bytes += c.count.ApproxHeapBytes() + c.type_count.ApproxHeapBytes();
    }
    return bytes;
  }
};

/// Runtime instantiation of one GRETA template for one stream partition
/// (Section 4.2 / Algorithm 2, generalized to occurrence-unique states and
/// per-window aggregate cells). Invalidation by negative sub-patterns
/// arrives through attached NegationLinks (Section 5.2).
class GretaGraph {
 public:
  GretaGraph(const GraphPlan* plan, const ExecPlan* exec,
             MemoryTracker* memory);

  GretaGraph(const GretaGraph&) = delete;
  GretaGraph& operator=(const GretaGraph&) = delete;

  /// Wiring (engine setup): barriers affecting this graph.
  void AttachTransitionLink(int transition_index, NegationLink* link);
  void AttachGraphLink(NegationLink* link);
  void AttachFollowLink(NegationLink* link);
  /// This graph is a negative sub-pattern reporting finished trends.
  void SetOutLink(NegationLink* link) { out_link_ = link; }

  /// Processes one event (all matching states). Events of types outside the
  /// template are ignored.
  void Insert(const Event& e);

  /// Adds this graph's final aggregate for `wid` into `out` (Theorem 4.3:
  /// the sum over END events). With trailing negation (Case 2) this scans
  /// the surviving END vertices instead of using the incremental result.
  /// `q` selects the query slot under shared multi-query execution.
  void CollectWindow(WindowId wid, AggOutputs* out) {
    CollectWindow(wid, 0, out);
  }
  void CollectWindow(WindowId wid, size_t q, AggOutputs* out);

  /// Collects every query slot in one pass (one barrier computation and one
  /// END-vertex scan total, not per query). `outs` must have one entry per
  /// query slot; results are accumulated into it.
  void CollectWindowAll(WindowId wid, std::vector<AggOutputs>* outs);

  /// Releases per-window state after the window was emitted.
  void ForgetWindow(WindowId wid);

  /// Batch-deletes panes no future window can reach (Section 7).
  void Purge(Ts watermark);

  size_t num_vertices() const { return panes_.size(); }
  size_t total_vertices() const { return total_vertices_; }
  size_t edges_traversed() const { return edges_; }
  size_t ApproxBytes() const;

 private:
  // Returns true if the event passed this state's vertex predicates.
  bool InsertAtState(const Event& e, StateId s);

  // Partial sharing (ExecPlan::partial): insertion over a merged template.
  // Shared-core vertices carry one structural snapshot cell per window
  // (slot 0: the trend count, identical for every query) plus one fold cell
  // per query that aggregates attributes; per-query continuation vertices
  // carry a single full cell laid out over the owning query's own window
  // range. Negation, pruning and the restricted semantics never reach this
  // path (the planner rejects them for partial clusters).
  bool InsertAtStatePartial(const Event& e, StateId s);

  // Aggregate plan of query slot `q` (plans predating the multi-query
  // extension may leave GraphPlan::aggs empty; they have exactly one slot).
  const AggPlan& AggAt(size_t q) const {
    return plan_->aggs.empty() ? plan_->agg : plan_->aggs[q];
  }

  Ts TransitionBarrier(int transition_index, WindowId wid, Ts now);

  const GraphPlan* plan_;
  const ExecPlan* exec_;
  MemoryTracker* memory_;
  int num_queries_;  // query slots per (vertex, window): plan_->aggs.size()
  PaneStore<GraphVertex> panes_;
  std::unordered_map<WindowId, std::vector<AggOutputs>> results_;
  std::vector<std::vector<NegationLink*>> transition_links_;
  std::vector<NegationLink*> graph_links_;   // Case 2: all transitions
  std::vector<NegationLink*> follow_links_;  // Case 3
  NegationLink* out_link_ = nullptr;
  SeqNo last_seen_seq_ = kMinSeq;  // contiguous semantics
  size_t edges_ = 0;
  size_t total_vertices_ = 0;
  bool single_window_;  // enables eager invalid-event pruning
};

}  // namespace greta

#endif  // GRETA_CORE_GRETA_GRAPH_H_
