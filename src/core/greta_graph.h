#ifndef GRETA_CORE_GRETA_GRAPH_H_
#define GRETA_CORE_GRETA_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/event_batch.h"
#include "common/memory.h"
#include "predicate/batch_filter.h"
#include "core/negation.h"
#include "core/plan.h"
#include "storage/pane.h"

namespace greta {

/// A vertex of the runtime GRETA graph: one matched event at one template
/// state, carrying one aggregate cell per window it falls into (Definition 3
/// plus the sliding-window sharing of Section 6). Edges are never stored —
/// each edge is traversed exactly once while the aggregate of the new event
/// is computed (Section 7).
///
/// The vertex is a single flat struct with zero per-vertex heap
/// allocations: both side arrays live in the owning pane's arena and are
/// freed wholesale when the pane expires (Section 7 batch deletion).
///  - `cells` — the aggregate cells, laid out row-major by window, one
///    AggCell per (window, query) under multi-query shared execution
///    (src/sharing/). num_queries == 1 reproduces the single-query layout
///    bit for bit.
///  - `attrs` — the stored-event payload: instead of a full Event copy the
///    vertex keeps time/seq plus only the leading attribute values scan-time
///    residual edge predicates read (StatePlan::stored_attr_count; zero for
///    tree-indexed queries).
///
/// The vertex destroys its cells itself (a promoted exact-mode Counter owns
/// heap storage); the pane destroys its vertex deque before its arena, so
/// this is safe. Move-only: moving transfers cell ownership.
struct GraphVertex {
  Ts time = 0;
  SeqNo seq = 0;
  AggCell* cells = nullptr;     // pane-arena backed; owned (runs dtors)
  const Value* attrs = nullptr; // pane-arena backed; borrowed view
  uint64_t used_transitions = 0;  // skip-till-next-match bookkeeping
  WindowId first_wid = 0;
  StateId state = kInvalidState;
  int32_t num_cells = 0;  // num_wids * num_queries
  int16_t num_wids = 0;
  int16_t num_queries = 1;
  uint16_t num_attrs = 0;
  bool dead = false;  // tombstone (invalid event pruning)

  GraphVertex() = default;
  GraphVertex(const GraphVertex&) = delete;
  GraphVertex& operator=(const GraphVertex&) = delete;
  GraphVertex(GraphVertex&& other) noexcept { *this = std::move(other); }
  GraphVertex& operator=(GraphVertex&& other) noexcept {
    if (this != &other) {
      DestroyCells();
      time = other.time;
      seq = other.seq;
      cells = other.cells;
      attrs = other.attrs;
      used_transitions = other.used_transitions;
      first_wid = other.first_wid;
      state = other.state;
      num_cells = other.num_cells;
      num_wids = other.num_wids;
      num_queries = other.num_queries;
      num_attrs = other.num_attrs;
      dead = other.dead;
      other.cells = nullptr;
      other.num_cells = 0;
    }
    return *this;
  }
  ~GraphVertex() { DestroyCells(); }

  /// The stored-event attribute view for predicate evaluation.
  EventView view() const { return EventView(attrs, num_attrs); }

  bool InWindow(WindowId wid) const {
    return wid >= first_wid && wid < first_wid + num_wids;
  }
  AggCell* cell(WindowId wid, size_t q = 0) {
    return &cells[(wid - first_wid) * num_queries + q];
  }
  const AggCell* cell(WindowId wid, size_t q = 0) const {
    return &cells[(wid - first_wid) * num_queries + q];
  }

 private:
  void DestroyCells() {
    for (int32_t i = 0; i < num_cells; ++i) cells[i].~AggCell();
  }
};

/// Runtime instantiation of one GRETA template for one stream partition
/// (Section 4.2 / Algorithm 2, generalized to occurrence-unique states and
/// per-window aggregate cells). Invalidation by negative sub-patterns
/// arrives through attached NegationLinks (Section 5.2).
///
/// The per-event insert path is compiled once per graph into one of the
/// PropKernel variants (plan_->kernel; src/core/README.md) instead of
/// re-testing AggPlan flags per edge per window per query. Memory
/// accounting is incremental: the pane store charges the shared
/// MemoryTracker at its allocation sites, so inserts never walk cells.
class GretaGraph {
 public:
  GretaGraph(const GraphPlan* plan, const ExecPlan* exec,
             MemoryTracker* memory);

  GretaGraph(const GretaGraph&) = delete;
  GretaGraph& operator=(const GretaGraph&) = delete;

  /// Wiring (engine setup): barriers affecting this graph.
  void AttachTransitionLink(int transition_index, NegationLink* link);
  void AttachGraphLink(NegationLink* link);
  void AttachFollowLink(NegationLink* link);
  /// This graph is a negative sub-pattern reporting finished trends.
  void SetOutLink(NegationLink* link) { out_link_ = link; }

  /// Processes one event (all matching states). Events of types outside the
  /// template are ignored. Takes a borrowed view — an owning `Event` or an
  /// `EventBatch` row converts implicitly.
  void Insert(const EventRef& e);

  /// Processes `n` batch rows (given by `rows`, ascending, non-decreasing
  /// timestamps). Equivalent to Insert(batch.ref(rows[i])) in order — rows
  /// are split into equal-timestamp runs and, when the plan qualifies
  /// (skip-till-any-match, no negation), each run goes through an amortized
  /// batch kernel: one window-range division per run, one B+-tree
  /// predecessor collection per (transition, run), and one of three
  /// propagation strategies per (state, run) — a shared fold when every run
  /// event resolves identical key bounds, a suffix-sum merge for
  /// non-uniform pure-lower bounds on order-insensitive aggregates, or a
  /// per-event fold over the collected entries that replays the scalar
  /// kernel's exact operation order (residual predicates, upper bounds,
  /// order-sensitive SUM). Sliding windows, every PropKernel, and partial
  /// sharing are all covered; results are bit-identical to the scalar path
  /// (the equivalence tests assert it).
  ///
  /// When the plan enables SIMD and the process dispatched a vector ISA,
  /// the graph first decomposes its fast-predicate attributes into a
  /// group-dense typed projection over rows[0..n) (lane k = rows[k], so
  /// filter selections are consecutive positions and the kernels take
  /// contiguous loads, not gathers); the state filters, per-event key
  /// re-filters and modular COUNT folds then run through the dispatched
  /// kernels (common/simd.h) instead of the scalar reference loops.
  /// Results stay bit-identical either way.
  void InsertBatch(const EventBatch& batch, const uint32_t* rows, size_t n);

  /// Why batch rows took the row-wise path (row counts, cumulative).
  enum class BatchFallbackReason : uint8_t {
    kDisabled = 0,   // enable_batch_kernels = false
    kSemantics = 1,  // skip-till-next / contiguous
    kNegation = 2,   // negation links attached to this graph
    kBounds = 3,     // NaN key bound or NaN tree key in a run
  };
  static constexpr size_t kNumBatchFallbackReasons = 4;

  /// Which amortized strategy a (state, run) took (selected-row counts,
  /// cumulative; one row can be counted once per matching state).
  enum class BatchStrategy : uint8_t {
    kSharedFold = 0,   // uniform bounds: one fold shared by the whole run
    kSuffixMerge = 1,  // nested-suffix admission: one add per entry
    kPerEvent = 2,     // per-event fold over the shared collection
  };
  static constexpr size_t kNumBatchStrategies = 3;

  const size_t* batch_fallback_rows() const { return batch_fallback_rows_; }
  const size_t* batch_strategy_rows() const { return batch_strategy_rows_; }

  /// Rows whose (state, run) processing used the dispatched vector kernels
  /// (cumulative; counted like batch_strategy_rows, once per matching
  /// state). Zero under GRETA_SIMD=scalar or enable_simd=false.
  size_t simd_rows() const { return simd_rows_; }

  /// Adds this graph's final aggregate for `wid` into `out` (Theorem 4.3:
  /// the sum over END events). With trailing negation (Case 2) this scans
  /// the surviving END vertices instead of using the incremental result.
  /// `q` selects the query slot under shared multi-query execution.
  void CollectWindow(WindowId wid, AggOutputs* out) {
    CollectWindow(wid, 0, out);
  }
  void CollectWindow(WindowId wid, size_t q, AggOutputs* out);

  /// Collects every query slot in one pass (one barrier computation and one
  /// END-vertex scan total, not per query). `outs` must have one entry per
  /// query slot; results are accumulated into it.
  void CollectWindowAll(WindowId wid, std::vector<AggOutputs>* outs);

  /// Releases per-window state after the window was emitted.
  void ForgetWindow(WindowId wid);

  /// Batch-deletes panes no future window can reach (Section 7); their
  /// charged bytes are released from the tracker wholesale.
  void Purge(Ts watermark);

  size_t num_vertices() const { return panes_.size(); }
  size_t total_vertices() const { return total_vertices_; }
  size_t edges_traversed() const { return edges_; }
  size_t ApproxBytes() const;

  /// Re-derives the bytes this graph has charged to the MemoryTracker by
  /// walking every pane (accounting invariant tests only).
  size_t RecomputeTrackedBytes() const {
    return panes_.RecomputeApproxBytes();
  }

 private:
  // The propagation kernels: InsertAtState specialized on plan_->kernel and
  // on the dominant single-query layout (kSingleQuery folds the per-slot
  // loop and the cell-stride arithmetic away). Every structural decision is
  // identical across instantiations — only the aggregate ops differ — so
  // results are bit-identical by construction.
  template <PropKernel K, bool kSingleQuery>
  bool InsertAtState(const EventRef& e, StateId s);

  // Partial sharing (ExecPlan::partial): insertion over a merged template.
  // Shared-core vertices carry one structural snapshot cell per window
  // (slot 0: the trend count, identical for every query) plus one fold cell
  // per query that aggregates attributes; per-query continuation vertices
  // carry a single full cell laid out over the owning query's own window
  // range. Negation, pruning and the restricted semantics never reach this
  // path (the planner rejects them for partial clusters).
  bool InsertAtStatePartial(const EventRef& e, StateId s);

  // Moves `src_cells` (k*nq scratch cells) and the stored attribute prefix
  // of `e` into the arena of the pane covering e.time and inserts the
  // assembled vertex.
  GraphVertex* StoreVertex(const EventRef& e, StateId s, WindowId first_wid,
                           int k, int nq, AggCell* src_cells);

  // Batch fast path: true when every structural precondition holds for this
  // call (the plan-level part is precomputed in the constructor; negation
  // links attach after construction, so they are tested per call).
  bool BatchFastPathEligible() const {
    return batch_plan_ok_ && !has_negation_links_ && graph_links_.empty() &&
           follow_links_.empty() && out_link_ == nullptr;
  }

  // One equal-timestamp run of batch rows through the amortized kernel
  // family, instantiated per PropKernel like the scalar path. Strategy is
  // chosen per (state, run) from the resolved key bounds and the plan's
  // residual predicates; NaN bounds/keys fall back to the scalar kernel per
  // (state, run), which is correct at that granularity because
  // same-timestamp insertions commute under skip-till-any-match.
  template <PropKernel K>
  void InsertRunFast(const EventBatch& batch, const uint32_t* rows, size_t n,
                     Ts ts);

  // The partial-sharing batch kernel: builds one structural snapshot cell
  // per (vertex, window) for a whole run (shared fold under uniform bounds,
  // per-event fold otherwise — the suffix merge is unavailable because fold
  // slots can carry order-sensitive SUM components).
  void InsertRunFastPartial(const EventBatch& batch, const uint32_t* rows,
                            size_t n, Ts ts);

  // Collects one predecessor-entry span per transition for a run: the
  // weakest bounds over the run's events, entries in pane-major ascending
  // key order (the scalar scan's order). Returns false when a NaN tree key
  // was seen — per-pane positional scans and value-based re-filtering only
  // agree on real keys, so such runs take the scalar kernel. `lo_time` is
  // the scan floor; spans are recorded in run_spans_ (nt + 1 offsets) and
  // entry views (for residual evaluation) in run_views_.
  bool CollectRunEntries(const std::vector<StateId>& pred_states, Ts lo_time,
                         Ts ts, size_t m, bool lower_only, bool check_dead,
                         WindowId first_wid, WindowId last_wid);

  // Aggregate plan of query slot `q` (plans predating the multi-query
  // extension may leave GraphPlan::aggs empty; they have exactly one slot).
  const AggPlan& AggAt(size_t q) const {
    return plan_->aggs.empty() ? plan_->agg : plan_->aggs[q];
  }

  Ts TransitionBarrier(int transition_index, WindowId wid, Ts now);

  const GraphPlan* plan_;
  const ExecPlan* exec_;
  int num_queries_;  // query slots per (vertex, window): plan_->aggs.size()
  PaneStore<GraphVertex> panes_;
  bool (GretaGraph::*insert_fn_)(const EventRef&, StateId);  // dispatch
  // Batch run-kernel dispatch, resolved alongside insert_fn_ (null when the
  // plan is ineligible).
  void (GretaGraph::*insert_run_fn_)(const EventBatch&, const uint32_t*,
                                     size_t, Ts) = nullptr;
  // Cells of the vertex being built: filled during the predecessor scan,
  // moved into the pane arena only if the vertex is actually inserted (so
  // rejected events never consume arena space). Reused across inserts.
  std::vector<AggCell> scratch_cells_;
  std::unordered_map<WindowId, std::vector<AggOutputs>> results_;
  std::vector<std::vector<NegationLink*>> transition_links_;
  std::vector<NegationLink*> graph_links_;   // Case 2: all transitions
  std::vector<NegationLink*> follow_links_;  // Case 3
  NegationLink* out_link_ = nullptr;
  SeqNo last_seen_seq_ = kMinSeq;  // contiguous semantics
  size_t edges_ = 0;
  size_t total_vertices_ = 0;
  bool single_window_;  // enables eager invalid-event pruning
  Ts tumbling_slide_ = 0;  // within == slide: window ids need one division
  // Plan-level batch fast-path eligibility (constructor; see
  // BatchFastPathEligible) and whether any AttachTransitionLink happened.
  bool batch_plan_ok_ = false;
  bool has_negation_links_ = false;
  // Per-state compiled local-predicate filters and per-transition compiled
  // residual edge filters (built only when the plan qualifies for the batch
  // fast path).
  std::vector<CompiledVertexFilter> state_filters_;
  std::vector<CompiledEdgeFilter> edge_filters_;  // indexed by transition
  // Any query slot folds an order-sensitive double SUM (resolved once; the
  // suffix merge re-associates additions and is only valid without it).
  bool any_sum_ = false;
  // Batch observability (plain members like edges_; the engine flushes
  // deltas into telemetry at window close and sums them into EngineStats).
  size_t batch_fallback_rows_[kNumBatchFallbackReasons] = {0, 0, 0, 0};
  size_t batch_strategy_rows_[kNumBatchStrategies] = {0, 0, 0};
  size_t simd_rows_ = 0;
  // Per-InsertBatch SIMD state: whether the vector kernels are live for
  // this call (enable_simd plan knob AND a non-scalar dispatched ISA —
  // re-tested per call so ForceIsa/ablation flips take effect immediately),
  // plus the group-dense projection over this call's row group. Lane k of
  // group_proj_ is batch row group_rows_[k]; run_base_ is the current
  // run's offset into the group, so run positions are consecutive lanes.
  // Minimum kernel-pass reads of a column (fast-pred uses across every
  // state) before the graph projects it; see the constructor's policy note.
  static constexpr size_t kMinProjectedAttrUses = 3;
  bool batch_simd_ = false;
  std::vector<AttrId> proj_attrs_;  // fast attrs passing the use threshold
  ColumnProjection group_proj_;
  bool group_proj_ready_ = false;
  const uint32_t* group_rows_ = nullptr;
  size_t run_base_ = 0;
  // InsertRunFast scratch, reused across runs to avoid per-run allocation.
  std::vector<uint32_t> run_sel_;        // batch rows selected at the state
  std::vector<uint32_t> run_pos_;        // their group_proj_ lane positions
  std::vector<AggCell> run_cells_;       // per selected row: k * stride cells
  std::vector<double> run_lo_;           // per (transition, row): key bounds
  std::vector<double> run_hi_;
  std::vector<uint8_t> run_lo_strict_;
  std::vector<uint8_t> run_hi_strict_;
  std::vector<uint8_t> run_found_;       // per selected row: found_pred
  std::vector<uint32_t> run_order_;      // rows sorted by (lo desc)
  struct CollectedEntry {
    double key;
    const GraphVertex* u;
  };
  std::vector<CollectedEntry> run_entries_;  // all transitions, span-sliced
  std::vector<size_t> run_spans_;            // nt + 1 offsets into entries
  std::vector<EventView> run_views_;         // parallel to run_entries_
  std::vector<uint32_t> run_filtered_;       // per (event, transition) sel
  // SIMD lanes over the collected entries (per-event strategy only): dense
  // keys for the vector range re-filter, dense modular counts for the fused
  // count fold, and per-transition prev-side predicate columns.
  std::vector<double> run_keys_;
  std::vector<uint64_t> run_counts_;
  std::vector<CompiledEdgeFilter::PrevColumns> run_prev_cols_;
  std::vector<uint8_t> run_prev_built_;      // per transition
  std::vector<int> run_tidx_;                // per transition: t_idx
  std::vector<Counter> run_running_;         // COUNT-kernel accumulators
  std::vector<AggCell> run_acc_;             // generic fold accumulators
  std::vector<std::vector<AggOutputs>*> run_outs_;  // per window result slot
  // One-entry cache for the per-END-insert results_[wid] hash lookup
  // (window ids advance monotonically, so consecutive END inserts hit the
  // same entry). Entries are stable across rehash (node-based map);
  // invalidated on ForgetWindow.
  WindowId results_cache_wid_ = 0;
  std::vector<AggOutputs>* results_cache_ = nullptr;

  std::vector<AggOutputs>* ResultsFor(WindowId wid) {
    if (results_cache_ != nullptr && results_cache_wid_ == wid) {
      return results_cache_;
    }
    std::vector<AggOutputs>& out = results_[wid];
    if (out.empty()) out.resize(num_queries_);
    results_cache_wid_ = wid;
    results_cache_ = &out;
    return &out;
  }
};

}  // namespace greta

#endif  // GRETA_CORE_GRETA_GRAPH_H_
