#ifndef GRETA_QUERY_SPLIT_H_
#define GRETA_QUERY_SPLIT_H_

#include <vector>

#include "common/status.h"
#include "query/pattern.h"

namespace greta {

/// One negative sub-pattern extracted by the pattern split (Algorithm 3).
///
/// `pattern` is the *positive content* of the NOT (its own nested negations
/// extracted recursively into further entries). `parent` indexes the
/// sub-pattern this one invalidates: 0 is the positive core, i >= 1 is
/// negatives[i-1] (negation can nest, Example 2: E invalidates within
/// SEQ(C,D), which invalidates within (SEQ(A+,B))+).
///
/// `prev_atom` / `foll_atom` identify the previous and following event types
/// (Section 5.1) as atom nodes inside the parent's cleaned pattern; the
/// planner resolves them to template states. Null prev_atom means the
/// negation leads the sequence (Case 3), null foll_atom means it trails
/// (Case 2); both set is Case 1.
struct NegativeSubPattern {
  PatternPtr pattern;
  int parent = 0;
  const Pattern* prev_atom = nullptr;
  const Pattern* foll_atom = nullptr;
};

/// Result of splitting a pattern into its positive core and negative
/// sub-patterns (Algorithm 3). The returned pattern objects own the atom
/// nodes referenced by NegativeSubPattern.
struct SplitResult {
  PatternPtr positive;
  std::vector<NegativeSubPattern> negatives;
};

/// Splits a validated, desugared pattern. Time and space are linear in the
/// pattern size (Section 5.1).
StatusOr<SplitResult> SplitPattern(const Pattern& pattern);

/// Returns the atom reached by following first children (the pattern node
/// whose state is the start state of `p`'s template span). `p` must be
/// desugared and positive.
const Pattern* StartAtom(const Pattern& p);

/// Returns the atom reached by following last children (the node whose state
/// is the end state of `p`'s template span).
const Pattern* EndAtom(const Pattern& p);

}  // namespace greta

#endif  // GRETA_QUERY_SPLIT_H_
