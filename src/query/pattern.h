#ifndef GRETA_QUERY_PATTERN_H_
#define GRETA_QUERY_PATTERN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/catalog.h"
#include "common/status.h"
#include "common/types.h"

namespace greta {

class Pattern;
using PatternPtr = std::unique_ptr<Pattern>;

/// Operators of the (extended) Kleene pattern language of Definition 1.
/// kSeq is n-ary (normalized from the paper's binary SEQ); kStar, kOpt, kOr
/// and kAnd are the Section-9 extensions, desugared before planning.
enum class PatternOp {
  kAtom,  // an event type
  kSeq,   // SEQ(P1, ..., Pn), n >= 2
  kPlus,  // P+
  kStar,  // P*      (sugar: SEQ(Pi*, Pj) == SEQ(Pi+, Pj) | Pj)
  kOpt,   // P?      (sugar: SEQ(Pi?, Pj) == SEQ(Pi, Pj) | Pj)
  kNot,   // NOT P   (only valid directly under kSeq)
  kOr,    // P1 | P2 (count combination, Section 9)
  kAnd,   // P1 & P2 (count combination, Section 9)
};

/// Immutable Kleene pattern tree (Definition 1 plus Section-9 sugar).
///
/// Construction goes through the static factories; malformed shapes (e.g.
/// empty SEQ) abort. Structural validation against the paper's composition
/// rules (negation placement etc.) is `ValidatePattern`.
class Pattern {
 public:
  static PatternPtr Atom(TypeId type);
  static PatternPtr Seq(std::vector<PatternPtr> children);

  /// Variadic convenience: Seq(a, b, c, ...).
  template <typename... Rest>
  static PatternPtr Seq(PatternPtr first, PatternPtr second, Rest... rest) {
    std::vector<PatternPtr> children;
    children.push_back(std::move(first));
    children.push_back(std::move(second));
    (children.push_back(std::move(rest)), ...);
    return Seq(std::move(children));
  }
  static PatternPtr Plus(PatternPtr child);
  static PatternPtr Star(PatternPtr child);
  static PatternPtr Opt(PatternPtr child);
  static PatternPtr Not(PatternPtr child);
  static PatternPtr Or(PatternPtr a, PatternPtr b);
  static PatternPtr And(PatternPtr a, PatternPtr b);

  PatternOp op() const { return op_; }
  TypeId type() const { return type_; }
  const std::vector<PatternPtr>& children() const { return children_; }
  const Pattern& child(size_t i) const { return *children_[i]; }

  PatternPtr Clone() const;

  /// Size of the pattern per Definition 1: number of event types plus
  /// operators.
  int Size() const;

  /// True if the pattern contains no negation.
  bool IsPositive() const;

  /// True if the pattern contains at least one Kleene plus/star.
  bool HasKleene() const;

  /// Collects every event type mentioned (with duplicates removed). When
  /// `include_negated` is false, types occurring only under NOT are skipped
  /// (i.e. the types that can appear in a matched trend).
  std::vector<TypeId> CollectTypes(bool include_negated = true) const;

  /// Event types contained in *every* trend the pattern can match. Used to
  /// prove two disjunction alternatives disjoint (Section 9 combination).
  std::vector<TypeId> RequiredTypes() const;

  /// Structural equality.
  bool Equals(const Pattern& other) const;

  std::string ToString(const Catalog& catalog) const;

 private:
  Pattern(PatternOp op, TypeId type, std::vector<PatternPtr> children)
      : op_(op), type_(type), children_(std::move(children)) {}

  PatternOp op_;
  TypeId type_ = kInvalidType;  // Only for kAtom.
  std::vector<PatternPtr> children_;
};

/// Checks the composition rules of Section 2:
///  - NOT appears only as a direct child of SEQ (after n-ary normalization),
///    is applied to an event type or an event sequence, is not the outermost
///    operator, and no two NOTs are adjacent within a SEQ;
///  - SEQ has at least two children, at least one of them positive;
///  - the pattern matches at least one event type.
/// Nested Kleene (e.g. (SEQ(A+,B))+) is fully supported; an event type may
/// occur several times (Section 9 extension).
Status ValidatePattern(const Pattern& p);

/// Expands kStar / kOpt / kOr sugar into a set of disjunction-free
/// alternatives (Section 9: SEQ(Pi*,Pj) = SEQ(Pi+,Pj) | Pj, and
/// SEQ(Pi?,Pj) = SEQ(Pi,Pj) | Pj). The returned alternatives never match the
/// empty trend (Lemma 1); an expansion that would be entirely empty is an
/// error. kAnd is not expanded here (handled by the conjunction combinator).
StatusOr<std::vector<PatternPtr>> ExpandSugar(const Pattern& p);

/// Rewrites `P+` into SEQ(P, P, ..., P+) with `min_len - 1` unrolled copies
/// so trends shorter than `min_len` no longer match (Section 9, constraints
/// on minimal trend length). Requires min_len >= 1.
StatusOr<PatternPtr> UnrollMinLength(const Pattern& plus_pattern, int min_len);

}  // namespace greta

#endif  // GRETA_QUERY_PATTERN_H_
