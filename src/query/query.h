#ifndef GRETA_QUERY_QUERY_H_
#define GRETA_QUERY_QUERY_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "predicate/expr.h"
#include "query/pattern.h"

namespace greta {

/// Aggregation functions of Definition 2. All are distributive or algebraic
/// and thus incrementally computable (Theorem 9.1).
enum class AggKind {
  kCountStar,  // COUNT(*)        — number of trends
  kCountType,  // COUNT(E)        — occurrences of E events across trends
  kMin,        // MIN(E.attr)
  kMax,        // MAX(E.attr)
  kSum,        // SUM(E.attr)
  kAvg,        // AVG(E.attr) = SUM(E.attr) / COUNT(E)
};

/// One requested aggregate. `type`/`attr` identify the target for all kinds
/// except kCountStar.
struct AggSpec {
  AggKind kind = AggKind::kCountStar;
  TypeId type = kInvalidType;
  AttrId attr = kInvalidAttr;
  std::string display;  // e.g. "COUNT(*)", "SUM(M.cpu)"
};

/// WITHIN/SLIDE clause. `within == kMaxTs` denotes an unbounded (single)
/// window closed only by Flush().
struct WindowSpec {
  Ts within = kMaxTs;
  Ts slide = 0;

  bool unbounded() const { return within == kMaxTs; }

  static WindowSpec Unbounded() { return WindowSpec{}; }
  static WindowSpec Sliding(Ts within, Ts slide) {
    return WindowSpec{within, slide};
  }
  static WindowSpec Tumbling(Ts within) { return WindowSpec{within, within}; }
};

/// An event trend aggregation query (Definition 2): aggregate specification,
/// Kleene pattern, optional predicates, optional grouping, and window.
///
/// `where` holds the expression conjuncts (vertex and edge predicates);
/// `equivalence` holds the attribute names of equivalence predicates like
/// `[company, sector]` which require all events in a trend to agree and
/// partition the stream; `group_by` holds the grouping attribute names.
struct QuerySpec {
  PatternPtr pattern;
  std::vector<AggSpec> aggs;
  std::vector<ExprPtr> where;
  std::vector<std::string> equivalence;
  std::vector<std::string> group_by;
  WindowSpec window;

  QuerySpec() = default;
  QuerySpec(QuerySpec&&) = default;
  QuerySpec& operator=(QuerySpec&&) = default;

  QuerySpec Clone() const {
    QuerySpec out;
    out.pattern = pattern ? pattern->Clone() : nullptr;
    out.aggs = aggs;
    for (const ExprPtr& w : where) out.where.push_back(w->Clone());
    out.equivalence = equivalence;
    out.group_by = group_by;
    out.window = window;
    return out;
  }
};

}  // namespace greta

#endif  // GRETA_QUERY_QUERY_H_
