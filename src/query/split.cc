#include "query/split.h"

#include "common/check.h"

namespace greta {

namespace {

// Clones `p` while extracting NOT children into `out`. `self_index` is the
// sub-pattern index of the pattern being cleaned (0 = positive core).
StatusOr<PatternPtr> Clean(const Pattern& p, int self_index,
                           std::vector<NegativeSubPattern>* out);

Status CleanSeq(const Pattern& p, int self_index,
                std::vector<NegativeSubPattern>* out, PatternPtr* cleaned) {
  // First pass: clean positive children, remembering where the negative
  // children sit relative to them.
  struct Slot {
    const Pattern* original = nullptr;  // original NOT child, or null
    PatternPtr cleaned;                 // cleaned positive child, or null
  };
  std::vector<Slot> slots;
  for (const PatternPtr& c : p.children()) {
    Slot slot;
    if (c->op() == PatternOp::kNot) {
      slot.original = c.get();
    } else {
      StatusOr<PatternPtr> sub = Clean(*c, self_index, out);
      if (!sub.ok()) return sub.status();
      slot.cleaned = std::move(sub).value();
    }
    slots.push_back(std::move(slot));
  }

  // Second pass: register a NegativeSubPattern per NOT child, resolving its
  // previous / following atoms within the cleaned siblings.
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].original == nullptr) continue;
    const Pattern* prev_atom = nullptr;
    const Pattern* foll_atom = nullptr;
    if (i > 0) {
      GRETA_CHECK(slots[i - 1].cleaned != nullptr);  // Validation: no NOT runs.
      prev_atom = EndAtom(*slots[i - 1].cleaned);
    }
    if (i + 1 < slots.size()) {
      GRETA_CHECK(slots[i + 1].cleaned != nullptr);
      foll_atom = StartAtom(*slots[i + 1].cleaned);
    }
    int index = static_cast<int>(out->size()) + 1;  // 0 is the positive core.
    out->push_back(NegativeSubPattern{nullptr, self_index, prev_atom,
                                      foll_atom});
    // Recursively clean the negated content; its own negations reference
    // `index` as their parent.
    StatusOr<PatternPtr> inner =
        Clean(*slots[i].original->children()[0], index, out);
    if (!inner.ok()) return inner.status();
    (*out)[index - 1].pattern = std::move(inner).value();
  }

  std::vector<PatternPtr> kept;
  for (Slot& slot : slots) {
    if (slot.cleaned != nullptr) kept.push_back(std::move(slot.cleaned));
  }
  GRETA_CHECK(!kept.empty());
  if (kept.size() == 1) {
    *cleaned = std::move(kept[0]);
  } else {
    // Note: the Seq factory flattens nested SEQ nodes. prev/foll references
    // point at *atom* nodes, which survive flattening.
    *cleaned = Pattern::Seq(std::move(kept));
  }
  return Status::Ok();
}

StatusOr<PatternPtr> Clean(const Pattern& p, int self_index,
                           std::vector<NegativeSubPattern>* out) {
  switch (p.op()) {
    case PatternOp::kAtom:
      return p.Clone();
    case PatternOp::kPlus: {
      StatusOr<PatternPtr> child = Clean(*p.children()[0], self_index, out);
      if (!child.ok()) return child.status();
      return Pattern::Plus(std::move(child).value());
    }
    case PatternOp::kSeq: {
      PatternPtr cleaned;
      Status s = CleanSeq(p, self_index, out, &cleaned);
      if (!s.ok()) return s;
      return cleaned;
    }
    case PatternOp::kNot:
      return Status::InvalidArgument(
          "negation must appear directly within an event sequence");
    case PatternOp::kStar:
    case PatternOp::kOpt:
    case PatternOp::kOr:
    case PatternOp::kAnd:
      return Status::Internal("SplitPattern requires a desugared pattern");
  }
  return Status::Internal("unknown pattern operator");
}

}  // namespace

const Pattern* StartAtom(const Pattern& p) {
  const Pattern* cur = &p;
  for (;;) {
    switch (cur->op()) {
      case PatternOp::kAtom:
        return cur;
      case PatternOp::kPlus:
        cur = cur->children()[0].get();
        break;
      case PatternOp::kSeq: {
        const Pattern* first = nullptr;
        for (const PatternPtr& c : cur->children()) {
          if (c->op() != PatternOp::kNot) {
            first = c.get();
            break;
          }
        }
        GRETA_CHECK(first != nullptr);
        cur = first;
        break;
      }
      default:
        GRETA_CHECK(false);
    }
  }
}

const Pattern* EndAtom(const Pattern& p) {
  const Pattern* cur = &p;
  for (;;) {
    switch (cur->op()) {
      case PatternOp::kAtom:
        return cur;
      case PatternOp::kPlus:
        cur = cur->children()[0].get();
        break;
      case PatternOp::kSeq: {
        const Pattern* last = nullptr;
        for (const PatternPtr& c : cur->children()) {
          if (c->op() != PatternOp::kNot) last = c.get();
        }
        GRETA_CHECK(last != nullptr);
        cur = last;
        break;
      }
      default:
        GRETA_CHECK(false);
    }
  }
}

StatusOr<SplitResult> SplitPattern(const Pattern& pattern) {
  Status valid = ValidatePattern(pattern);
  if (!valid.ok()) return valid;
  SplitResult result;
  StatusOr<PatternPtr> core = Clean(pattern, 0, &result.negatives);
  if (!core.ok()) return core.status();
  result.positive = std::move(core).value();
  return result;
}

}  // namespace greta
