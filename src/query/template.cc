#include "query/template.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace greta {

namespace {

const std::vector<StateId> kNoStates;

}  // namespace

const std::vector<StateId>& GretaTemplate::states_for_type(TypeId type) const {
  auto it = by_type_.find(type);
  if (it == by_type_.end()) return kNoStates;
  return it->second;
}

int GretaTemplate::FindTransition(StateId from, StateId to) const {
  for (size_t i = 0; i < transitions_.size(); ++i) {
    if (transitions_[i].from == from && transitions_[i].to == to) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

StateId GretaTemplate::NodeStartState(const Pattern* node) const {
  auto it = node_span_.find(node);
  GRETA_CHECK(it != node_span_.end());
  return it->second.first;
}

StateId GretaTemplate::NodeEndState(const Pattern* node) const {
  auto it = node_span_.find(node);
  GRETA_CHECK(it != node_span_.end());
  return it->second.second;
}

std::vector<TypeId> GretaTemplate::Types() const {
  std::vector<TypeId> out;
  for (const auto& [type, states] : by_type_) {
    (void)states;
    out.push_back(type);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string GretaTemplate::ToString() const {
  std::string out = "states:";
  for (const TemplateState& s : states_) {
    out += " ";
    out += s.label;
    if (s.id == start_state_) out += "(start)";
    if (s.id == end_state_) out += "(end)";
  }
  out += "; transitions:";
  for (const TemplateTransition& t : transitions_) {
    out += " ";
    out += states_[t.from].label;
    out += (t.label == TransitionLabel::kSeq) ? "->" : "=+>";
    out += states_[t.to].label;
  }
  return out;
}

/// Walks the pattern, allocating one state per event-type occurrence and one
/// transition per operator (Algorithm 1). Records each node's start/end
/// state for later use by the pattern split.
class TemplateBuilder {
 public:
  TemplateBuilder(const Catalog& catalog, GretaTemplate* out)
      : catalog_(catalog), out_(out) {}

  Status Build(const Pattern& pattern) {
    Status s = Visit(pattern);
    if (!s.ok()) return s;
    out_->start_state_ = out_->node_span_.at(&pattern).first;
    out_->end_state_ = out_->node_span_.at(&pattern).second;
    // Disambiguate labels only when a type occurs more than once
    // (Section 9: "SEQ(A+,B,A,A+,B+) is translated into
    //  SEQ(A1+,B2,A3,A4+,B5+)").
    for (const auto& [type, states] : out_->by_type_) {
      if (states.size() <= 1) continue;
      for (StateId sid : states) {
        out_->states_[sid].label =
            catalog_.type(type).name + std::to_string(sid + 1);
      }
    }
    FinishAdjacency();
    return Status::Ok();
  }

 private:
  // Computes (start, end) states of `p` and records them in node_span_.
  Status Visit(const Pattern& p) {
    switch (p.op()) {
      case PatternOp::kAtom: {
        StateId id = static_cast<StateId>(out_->states_.size());
        out_->states_.push_back(
            TemplateState{id, p.type(), catalog_.type(p.type()).name});
        out_->by_type_[p.type()].push_back(id);
        out_->node_span_[&p] = {id, id};
        return Status::Ok();
      }
      case PatternOp::kSeq: {
        // Negative children are skipped entirely: the split has already
        // extracted them, but templates may also be built directly over
        // patterns that still carry NOT children (e.g. for ToString).
        const Pattern* prev = nullptr;
        const Pattern* first = nullptr;
        for (const PatternPtr& c : p.children()) {
          if (c->op() == PatternOp::kNot) continue;
          Status s = Visit(*c);
          if (!s.ok()) return s;
          if (first == nullptr) first = c.get();
          if (prev != nullptr) {
            AddTransition(out_->node_span_.at(prev).second,
                          out_->node_span_.at(c.get()).first,
                          TransitionLabel::kSeq);
          }
          prev = c.get();
        }
        if (first == nullptr) {
          return Status::InvalidArgument(
              "event sequence has no positive sub-pattern");
        }
        out_->node_span_[&p] = {out_->node_span_.at(first).first,
                                out_->node_span_.at(prev).second};
        return Status::Ok();
      }
      case PatternOp::kPlus: {
        const Pattern& c = *p.children()[0];
        Status s = Visit(c);
        if (!s.ok()) return s;
        auto span = out_->node_span_.at(&c);
        AddTransition(span.second, span.first, TransitionLabel::kPlus);
        out_->node_span_[&p] = span;
        return Status::Ok();
      }
      case PatternOp::kStar:
      case PatternOp::kOpt:
      case PatternOp::kOr:
      case PatternOp::kAnd:
        return Status::Internal(
            "template construction requires a desugared pattern (run "
            "ExpandSugar first)");
      case PatternOp::kNot:
        return Status::Internal(
            "template construction requires a split pattern (run "
            "SplitPattern first)");
    }
    return Status::Internal("unknown pattern operator");
  }

  void AddTransition(StateId from, StateId to, TransitionLabel label) {
    // Deduplicate: nested Kleene can imply the same adjacency twice.
    if (out_->FindTransition(from, to) >= 0) return;
    out_->transitions_.push_back(TemplateTransition{from, to, label});
  }

  void FinishAdjacency() {
    out_->pred_states_.assign(out_->states_.size(), {});
    out_->succ_states_.assign(out_->states_.size(), {});
    for (const TemplateTransition& t : out_->transitions_) {
      out_->pred_states_[t.to].push_back(t.from);
      out_->succ_states_[t.from].push_back(t.to);
    }
  }

  const Catalog& catalog_;
  GretaTemplate* out_;
};

StatusOr<GretaTemplate> BuildTemplate(const Pattern& pattern,
                                      const Catalog& catalog) {
  GretaTemplate out;
  TemplateBuilder builder(catalog, &out);
  Status s = builder.Build(pattern);
  if (!s.ok()) return s;
  return out;
}

std::string TemplateStructureFingerprint(const GretaTemplate& templ) {
  std::ostringstream out;
  out << "S[";
  for (const TemplateState& s : templ.states()) {
    out << s.type << (templ.IsStart(s.id) ? "^" : "")
        << (templ.IsEnd(s.id) ? "$" : "") << ",";
  }
  out << "]T[";
  std::vector<std::string> edges;
  for (const TemplateTransition& t : templ.transitions()) {
    std::ostringstream e;
    e << t.from << ">" << t.to
      << (t.label == TransitionLabel::kPlus ? "+" : "");
    edges.push_back(e.str());
  }
  std::sort(edges.begin(), edges.end());
  for (const std::string& e : edges) out << e << ",";
  out << "]";
  return out.str();
}

StatusOr<GretaTemplate> MergeSharedCoreTemplates(
    const GretaTemplate& core, const std::vector<const GretaTemplate*>& full,
    std::vector<StateId>* end_states, std::vector<int>* state_owner,
    std::vector<int>* transition_owner) {
  const size_t num_core = core.states_.size();
  GretaTemplate out;
  out.states_ = core.states_;
  out.transitions_ = core.transitions_;
  out.start_state_ = core.start_state_;
  out.end_state_ = core.end_state_;  // Nominal; real END states are
                                     // per-query (`end_states`).
  state_owner->assign(num_core, -1);
  transition_owner->assign(core.transitions_.size(), -1);
  end_states->clear();

  for (size_t q = 0; q < full.size(); ++q) {
    const GretaTemplate& t = *full[q];
    if (t.states_.size() < num_core || t.start_state_ != core.start_state_) {
      return Status::InvalidArgument(
          "query template does not begin with the shared core");
    }
    for (size_t i = 0; i < num_core; ++i) {
      if (t.states_[i].type != core.states_[i].type) {
        return Status::InvalidArgument(
            "query template core states disagree with the shared core");
      }
    }
    // Map state ids: core states keep their ids, suffix states get fresh
    // ones appended after every earlier query's.
    std::vector<StateId> remap(t.states_.size());
    for (size_t i = 0; i < t.states_.size(); ++i) {
      if (i < num_core) {
        remap[i] = static_cast<StateId>(i);
      } else {
        StateId id = static_cast<StateId>(out.states_.size());
        TemplateState s = t.states_[i];
        s.id = id;
        out.states_.push_back(std::move(s));
        state_owner->push_back(static_cast<int>(q));
        remap[i] = id;
      }
    }
    for (const TemplateTransition& tr : t.transitions_) {
      StateId from = remap[tr.from];
      StateId to = remap[tr.to];
      bool core_internal = static_cast<size_t>(tr.from) < num_core &&
                           static_cast<size_t>(tr.to) < num_core;
      if (core_internal) {
        // Must already exist in the shared core (suffixes never loop back).
        if (core.FindTransition(from, to) < 0) {
          return Status::InvalidArgument(
              "query template adds a transition inside the shared core");
        }
        continue;
      }
      out.transitions_.push_back(TemplateTransition{from, to, tr.label});
      transition_owner->push_back(static_cast<int>(q));
    }
    end_states->push_back(remap[t.end_state_]);
  }

  // Rebuild the derived indexes over the merged state set.
  out.by_type_.clear();
  for (const TemplateState& s : out.states_) {
    out.by_type_[s.type].push_back(s.id);
  }
  out.pred_states_.assign(out.states_.size(), {});
  out.succ_states_.assign(out.states_.size(), {});
  for (const TemplateTransition& t : out.transitions_) {
    out.pred_states_[t.to].push_back(t.from);
    out.succ_states_[t.from].push_back(t.to);
  }
  return out;
}

}  // namespace greta
