#include "query/parser.h"

#include <algorithm>
#include <unordered_map>

#include "query/lexer.h"

namespace greta {

namespace {

/// Recursive-descent parser over the token stream. Every Parse* method
/// returns an error Status on malformed input; nothing throws.
class Parser {
 public:
  Parser(std::vector<Token> tokens, Catalog* catalog)
      : tokens_(std::move(tokens)), catalog_(catalog) {}

  StatusOr<QuerySpec> Run() {
    QuerySpec spec;
    if (!Keyword("RETURN")) return Err("expected RETURN");
    // The RETURN list mixes grouping attributes and aggregates; aggregates
    // are recognized by their function keyword.
    std::vector<std::string> return_idents;
    for (;;) {
      if (PeekAggKeyword()) {
        StatusOr<AggSpec> agg = ParseAgg();
        if (!agg.ok()) return agg.status();
        spec.aggs.push_back(std::move(agg).value());
      } else if (Peek().kind == TokenKind::kIdent) {
        return_idents.push_back(Next().text);
      } else {
        return Err("expected aggregate or attribute in RETURN list");
      }
      if (!Symbol(",")) break;
    }
    if (spec.aggs.empty()) {
      return Err("RETURN list needs at least one aggregate");
    }

    if (!Keyword("PATTERN")) return Err("expected PATTERN");
    StatusOr<PatternPtr> pattern = ParseOrPattern();
    if (!pattern.ok()) return pattern.status();
    spec.pattern = std::move(pattern).value();

    if (Keyword("WHERE")) {
      Status s = ParseWhere(&spec);
      if (!s.ok()) return s;
    }

    if (Keyword("GROUP")) {
      (void)Symbol("-");
      if (!Keyword("BY")) return Err("expected BY after GROUP");
      for (;;) {
        if (Peek().kind != TokenKind::kIdent) {
          return Err("expected attribute name in GROUP-BY");
        }
        spec.group_by.push_back(Next().text);
        if (!Symbol(",")) break;
      }
    }

    if (Keyword("WITHIN")) {
      StatusOr<Ts> within = ParseDuration();
      if (!within.ok()) return within.status();
      Ts slide = within.value();
      if (Keyword("SLIDE")) {
        StatusOr<Ts> s = ParseDuration();
        if (!s.ok()) return s.status();
        slide = s.value();
      }
      if (slide <= 0) return Err("SLIDE must be positive");
      spec.window = WindowSpec::Sliding(within.value(), slide);
    }

    if (Peek().kind != TokenKind::kEnd) {
      return Err("unexpected trailing input '" + Peek().text + "'");
    }

    // Plain identifiers in RETURN must be grouping attributes.
    for (const std::string& ident : return_idents) {
      if (std::find(spec.group_by.begin(), spec.group_by.end(), ident) ==
          spec.group_by.end()) {
        return Status::ParseError("RETURN attribute '" + ident +
                                  "' is not listed in GROUP-BY");
      }
    }

    // Resolve deferred aggregate targets now that aliases are known.
    for (const PendingTarget& t : pending_targets_) {
      AggSpec& agg = spec.aggs[t.agg_index];
      StatusOr<TypeId> type = ResolveTypeName(t.type_name);
      if (!type.ok()) return type.status();
      agg.type = type.value();
      if (!t.attr_name.empty()) {
        AttrId attr = catalog_->type(agg.type).FindAttr(t.attr_name);
        if (attr == kInvalidAttr) {
          return Status::ParseError("unknown attribute '" + t.attr_name +
                                    "' of type " +
                                    catalog_->type(agg.type).name);
        }
        agg.attr = attr;
      }
    }
    return spec;
  }

 private:
  // ---- token helpers -------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool Symbol(std::string_view s) {
    if (Peek().IsSymbol(s)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Keyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Err(std::string msg) const {
    return Status::ParseError(msg + " (near offset " +
                              std::to_string(Peek().offset) + ")");
  }

  bool PeekAggKeyword() const {
    const Token& t = Peek();
    return t.IsKeyword("COUNT") || t.IsKeyword("MIN") || t.IsKeyword("MAX") ||
           t.IsKeyword("SUM") || t.IsKeyword("AVG");
  }

  // ---- RETURN clause --------------------------------------------------

  // Aggregate targets may use aliases declared later in the PATTERN clause,
  // so resolution of the (type, attr) pair is deferred; the raw names are
  // parked in `display` until ResolveAggTarget.
  StatusOr<AggSpec> ParseAgg() {
    Token fn = Next();
    AggSpec agg;
    if (fn.IsKeyword("COUNT")) {
      if (!Symbol("(")) return Err("expected ( after COUNT");
      if (Symbol("*")) {
        agg.kind = AggKind::kCountStar;
        agg.display = "COUNT(*)";
      } else if (Peek().kind == TokenKind::kIdent) {
        agg.kind = AggKind::kCountType;
        pending_targets_.push_back(
            PendingTarget{spec_agg_index_, Next().text, ""});
        agg.display = "COUNT(" + pending_targets_.back().type_name + ")";
      } else {
        return Err("expected * or event type in COUNT");
      }
      if (!Symbol(")")) return Err("expected ) after COUNT argument");
    } else {
      if (fn.IsKeyword("MIN")) agg.kind = AggKind::kMin;
      if (fn.IsKeyword("MAX")) agg.kind = AggKind::kMax;
      if (fn.IsKeyword("SUM")) agg.kind = AggKind::kSum;
      if (fn.IsKeyword("AVG")) agg.kind = AggKind::kAvg;
      if (!Symbol("(")) return Err("expected ( after aggregate function");
      if (Peek().kind != TokenKind::kIdent) {
        return Err("expected EventType.attribute in aggregate");
      }
      std::string type_name = Next().text;
      if (!Symbol(".")) return Err("expected . in aggregate target");
      if (Peek().kind != TokenKind::kIdent) {
        return Err("expected attribute name in aggregate");
      }
      std::string attr = Next().text;
      if (!Symbol(")")) return Err("expected ) after aggregate target");
      pending_targets_.push_back(
          PendingTarget{spec_agg_index_, type_name, attr});
      std::string upper;
      for (char c : fn.text) {
        upper += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      }
      agg.display = upper + "(" + type_name + "." + attr + ")";
    }
    ++spec_agg_index_;
    return agg;
  }

  // ---- PATTERN clause -------------------------------------------------

  StatusOr<PatternPtr> ParseOrPattern() {
    StatusOr<PatternPtr> lhs = ParseAndPattern();
    if (!lhs.ok()) return lhs;
    PatternPtr out = std::move(lhs).value();
    while (Symbol("|")) {
      StatusOr<PatternPtr> rhs = ParseAndPattern();
      if (!rhs.ok()) return rhs;
      out = Pattern::Or(std::move(out), std::move(rhs).value());
    }
    return out;
  }

  StatusOr<PatternPtr> ParseAndPattern() {
    StatusOr<PatternPtr> lhs = ParsePostfixPattern();
    if (!lhs.ok()) return lhs;
    PatternPtr out = std::move(lhs).value();
    while (Symbol("&")) {
      StatusOr<PatternPtr> rhs = ParsePostfixPattern();
      if (!rhs.ok()) return rhs;
      out = Pattern::And(std::move(out), std::move(rhs).value());
    }
    return out;
  }

  StatusOr<PatternPtr> ParsePostfixPattern() {
    StatusOr<PatternPtr> prim = ParsePrimaryPattern();
    if (!prim.ok()) return prim;
    PatternPtr out = std::move(prim).value();
    for (;;) {
      if (Symbol("+")) {
        out = Pattern::Plus(std::move(out));
      } else if (Symbol("*")) {
        out = Pattern::Star(std::move(out));
      } else if (Symbol("?")) {
        out = Pattern::Opt(std::move(out));
      } else {
        break;
      }
    }
    return out;
  }

  StatusOr<PatternPtr> ParsePrimaryPattern() {
    if (Keyword("SEQ")) {
      if (!Symbol("(")) return Err("expected ( after SEQ");
      std::vector<PatternPtr> children;
      for (;;) {
        StatusOr<PatternPtr> child = ParseOrPattern();
        if (!child.ok()) return child;
        children.push_back(std::move(child).value());
        if (!Symbol(",")) break;
      }
      if (!Symbol(")")) return Err("expected ) to close SEQ");
      if (children.size() < 2) {
        return Err("SEQ needs at least two sub-patterns");
      }
      return Pattern::Seq(std::move(children));
    }
    if (Keyword("NOT")) {
      StatusOr<PatternPtr> child = ParsePostfixPattern();
      if (!child.ok()) return child;
      return Pattern::Not(std::move(child).value());
    }
    if (Symbol("(")) {
      StatusOr<PatternPtr> inner = ParseOrPattern();
      if (!inner.ok()) return inner;
      if (!Symbol(")")) return Err("expected )");
      return inner;
    }
    if (Peek().kind == TokenKind::kIdent) {
      std::string type_name = Next().text;
      TypeId type = catalog_->FindType(type_name);
      if (type == kInvalidType) {
        return Status::ParseError("unknown event type '" + type_name + "'");
      }
      // Optional alias: an identifier that is not a clause keyword.
      if (Peek().kind == TokenKind::kIdent && !PeekClauseKeyword()) {
        std::string alias = Next().text;
        aliases_[alias] = type;
      }
      return Pattern::Atom(type);
    }
    return Err("expected pattern");
  }

  bool PeekClauseKeyword() const {
    const Token& t = Peek();
    return t.IsKeyword("WHERE") || t.IsKeyword("GROUP") ||
           t.IsKeyword("WITHIN") || t.IsKeyword("SLIDE") ||
           t.IsKeyword("RETURN") || t.IsKeyword("PATTERN") ||
           t.IsKeyword("SEQ") || t.IsKeyword("NOT");
  }

  StatusOr<TypeId> ResolveTypeName(const std::string& name) const {
    auto it = aliases_.find(name);
    if (it != aliases_.end()) return it->second;
    TypeId type = catalog_->FindType(name);
    if (type == kInvalidType) {
      return Status::ParseError("unknown event type or alias '" + name + "'");
    }
    return type;
  }

  // ---- WHERE clause ---------------------------------------------------

  Status ParseWhere(QuerySpec* spec) {
    // Top level is a conjunction; equivalence clauses [a, b] are peeled off
    // into spec->equivalence, everything else into spec->where.
    for (;;) {
      if (Symbol("[")) {
        for (;;) {
          if (Peek().kind != TokenKind::kIdent) {
            return Err("expected attribute in equivalence clause");
          }
          std::string first = Next().text;
          std::string attr = first;
          if (Symbol(".")) {
            if (Peek().kind != TokenKind::kIdent) {
              return Err("expected attribute after . in equivalence clause");
            }
            attr = Next().text;  // Type qualification is only a hint.
          }
          spec->equivalence.push_back(attr);
          if (!Symbol(",")) break;
        }
        if (!Symbol("]")) return Err("expected ] to close equivalence clause");
      } else {
        StatusOr<ExprPtr> conjunct = ParseExprOr();
        if (!conjunct.ok()) return conjunct.status();
        spec->where.push_back(std::move(conjunct).value());
      }
      if (!Keyword("AND")) break;
    }
    return Status::Ok();
  }

  StatusOr<ExprPtr> ParseExprOr() {
    StatusOr<ExprPtr> lhs = ParseExprCmp();
    if (!lhs.ok()) return lhs;
    ExprPtr out = std::move(lhs).value();
    while (Keyword("OR")) {
      StatusOr<ExprPtr> rhs = ParseExprCmp();
      if (!rhs.ok()) return rhs;
      out = Expr::Binary(ExprOp::kOr, std::move(out), std::move(rhs).value());
    }
    return out;
  }

  StatusOr<ExprPtr> ParseExprCmp() {
    StatusOr<ExprPtr> lhs = ParseExprAdd();
    if (!lhs.ok()) return lhs;
    ExprPtr out = std::move(lhs).value();
    ExprOp op;
    if (Symbol("=")) {
      op = ExprOp::kEq;
    } else if (Symbol("!=")) {
      op = ExprOp::kNe;
    } else if (Symbol("<=")) {
      op = ExprOp::kLe;
    } else if (Symbol(">=")) {
      op = ExprOp::kGe;
    } else if (Symbol("<")) {
      op = ExprOp::kLt;
    } else if (Symbol(">")) {
      op = ExprOp::kGt;
    } else {
      return out;
    }
    StatusOr<ExprPtr> rhs = ParseExprAdd();
    if (!rhs.ok()) return rhs;
    return Expr::Binary(op, std::move(out), std::move(rhs).value());
  }

  StatusOr<ExprPtr> ParseExprAdd() {
    StatusOr<ExprPtr> lhs = ParseExprMul();
    if (!lhs.ok()) return lhs;
    ExprPtr out = std::move(lhs).value();
    for (;;) {
      ExprOp op;
      if (Symbol("+")) {
        op = ExprOp::kAdd;
      } else if (Symbol("-")) {
        op = ExprOp::kSub;
      } else {
        return out;
      }
      StatusOr<ExprPtr> rhs = ParseExprMul();
      if (!rhs.ok()) return rhs;
      out = Expr::Binary(op, std::move(out), std::move(rhs).value());
    }
  }

  StatusOr<ExprPtr> ParseExprMul() {
    StatusOr<ExprPtr> lhs = ParseExprPrimary();
    if (!lhs.ok()) return lhs;
    ExprPtr out = std::move(lhs).value();
    for (;;) {
      ExprOp op;
      if (Symbol("*")) {
        op = ExprOp::kMul;
      } else if (Symbol("/")) {
        op = ExprOp::kDiv;
      } else if (Symbol("%")) {
        op = ExprOp::kMod;
      } else {
        return out;
      }
      StatusOr<ExprPtr> rhs = ParseExprPrimary();
      if (!rhs.ok()) return rhs;
      out = Expr::Binary(op, std::move(out), std::move(rhs).value());
    }
  }

  StatusOr<ExprPtr> ParseExprPrimary() {
    if (Symbol("(")) {
      StatusOr<ExprPtr> inner = ParseExprOr();
      if (!inner.ok()) return inner;
      if (!Symbol(")")) return Err("expected )");
      return inner;
    }
    if (Peek().kind == TokenKind::kNumber) {
      std::string text = Next().text;
      if (text.find('.') != std::string::npos) {
        return Expr::Const(Value::Double(std::stod(text)));
      }
      return Expr::Const(Value::Int(std::stoll(text)));
    }
    if (Peek().kind == TokenKind::kString) {
      StrId id = catalog_->strings()->Intern(Next().text);
      return Expr::Const(Value::Str(id));
    }
    if (Keyword("NEXT")) {
      if (!Symbol("(")) return Err("expected ( after NEXT");
      if (Peek().kind != TokenKind::kIdent) {
        return Err("expected event type in NEXT()");
      }
      std::string name = Next().text;
      if (!Symbol(")")) return Err("expected ) after NEXT type");
      if (!Symbol(".")) return Err("expected .attribute after NEXT()");
      if (Peek().kind != TokenKind::kIdent) {
        return Err("expected attribute after NEXT().");
      }
      std::string attr_name = Next().text;
      StatusOr<TypeId> type = ResolveTypeName(name);
      if (!type.ok()) return type.status();
      AttrId attr = catalog_->type(type.value()).FindAttr(attr_name);
      if (attr == kInvalidAttr) {
        return Status::ParseError("unknown attribute '" + attr_name + "'");
      }
      return Expr::NextAttr(type.value(), attr);
    }
    if (Peek().kind == TokenKind::kIdent) {
      std::string name = Next().text;
      if (!Symbol(".")) {
        return Err("expected qualified attribute Type.attr, got '" + name +
                   "'");
      }
      if (Peek().kind != TokenKind::kIdent) {
        return Err("expected attribute after .");
      }
      std::string attr_name = Next().text;
      StatusOr<TypeId> type = ResolveTypeName(name);
      if (!type.ok()) return type.status();
      AttrId attr = catalog_->type(type.value()).FindAttr(attr_name);
      if (attr == kInvalidAttr) {
        return Status::ParseError("unknown attribute '" + attr_name +
                                  "' of type " +
                                  catalog_->type(type.value()).name);
      }
      return Expr::Attr(type.value(), attr);
    }
    return Err("expected expression");
  }

  // ---- WITHIN/SLIDE ---------------------------------------------------

  StatusOr<Ts> ParseDuration() {
    if (Peek().kind != TokenKind::kNumber) {
      return Err("expected duration");
    }
    double amount = std::stod(Next().text);
    double scale = 1.0;
    if (Peek().kind == TokenKind::kIdent && !PeekClauseKeyword()) {
      const Token& unit = Peek();
      if (unit.IsKeyword("second") || unit.IsKeyword("seconds") ||
          unit.IsKeyword("sec") || unit.IsKeyword("s")) {
        scale = 1.0;
        ++pos_;
      } else if (unit.IsKeyword("minute") || unit.IsKeyword("minutes") ||
                 unit.IsKeyword("min") || unit.IsKeyword("m")) {
        scale = 60.0;
        ++pos_;
      } else if (unit.IsKeyword("hour") || unit.IsKeyword("hours") ||
                 unit.IsKeyword("h")) {
        scale = 3600.0;
        ++pos_;
      } else if (!unit.IsKeyword("SLIDE")) {
        return Err("unknown duration unit '" + unit.text + "'");
      }
    }
    double ticks = amount * scale;
    if (ticks <= 0 || ticks != static_cast<double>(static_cast<Ts>(ticks))) {
      return Err("duration must be a positive whole number of seconds");
    }
    return static_cast<Ts>(ticks);
  }

  struct PendingTarget {
    size_t agg_index;
    std::string type_name;
    std::string attr_name;
  };

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Catalog* catalog_;
  std::unordered_map<std::string, TypeId> aliases_;
  std::vector<PendingTarget> pending_targets_;
  size_t spec_agg_index_ = 0;
};

}  // namespace

StatusOr<QuerySpec> ParseQuery(std::string_view source, Catalog* catalog) {
  StatusOr<std::vector<Token>> tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value(), catalog);
  return parser.Run();
}

}  // namespace greta
