#include "query/pattern.h"

#include <algorithm>
#include <set>

#include "common/check.h"

namespace greta {

PatternPtr Pattern::Atom(TypeId type) {
  GRETA_CHECK(type != kInvalidType);
  return PatternPtr(new Pattern(PatternOp::kAtom, type, {}));
}

PatternPtr Pattern::Seq(std::vector<PatternPtr> children) {
  GRETA_CHECK(children.size() >= 2);
  // Flatten nested SEQs so negation placement analysis sees siblings.
  std::vector<PatternPtr> flat;
  for (PatternPtr& c : children) {
    GRETA_CHECK(c != nullptr);
    if (c->op() == PatternOp::kSeq) {
      for (PatternPtr& gc : c->children_) flat.push_back(std::move(gc));
    } else {
      flat.push_back(std::move(c));
    }
  }
  return PatternPtr(new Pattern(PatternOp::kSeq, kInvalidType, std::move(flat)));
}

PatternPtr Pattern::Plus(PatternPtr child) {
  GRETA_CHECK(child != nullptr);
  std::vector<PatternPtr> children;
  children.push_back(std::move(child));
  return PatternPtr(new Pattern(PatternOp::kPlus, kInvalidType, std::move(children)));
}

PatternPtr Pattern::Star(PatternPtr child) {
  GRETA_CHECK(child != nullptr);
  std::vector<PatternPtr> children;
  children.push_back(std::move(child));
  return PatternPtr(new Pattern(PatternOp::kStar, kInvalidType, std::move(children)));
}

PatternPtr Pattern::Opt(PatternPtr child) {
  GRETA_CHECK(child != nullptr);
  std::vector<PatternPtr> children;
  children.push_back(std::move(child));
  return PatternPtr(new Pattern(PatternOp::kOpt, kInvalidType, std::move(children)));
}

PatternPtr Pattern::Not(PatternPtr child) {
  GRETA_CHECK(child != nullptr);
  std::vector<PatternPtr> children;
  children.push_back(std::move(child));
  return PatternPtr(new Pattern(PatternOp::kNot, kInvalidType, std::move(children)));
}

PatternPtr Pattern::Or(PatternPtr a, PatternPtr b) {
  GRETA_CHECK(a != nullptr && b != nullptr);
  std::vector<PatternPtr> children;
  children.push_back(std::move(a));
  children.push_back(std::move(b));
  return PatternPtr(new Pattern(PatternOp::kOr, kInvalidType, std::move(children)));
}

PatternPtr Pattern::And(PatternPtr a, PatternPtr b) {
  GRETA_CHECK(a != nullptr && b != nullptr);
  std::vector<PatternPtr> children;
  children.push_back(std::move(a));
  children.push_back(std::move(b));
  return PatternPtr(new Pattern(PatternOp::kAnd, kInvalidType, std::move(children)));
}

PatternPtr Pattern::Clone() const {
  std::vector<PatternPtr> children;
  children.reserve(children_.size());
  for (const PatternPtr& c : children_) children.push_back(c->Clone());
  return PatternPtr(new Pattern(op_, type_, std::move(children)));
}

int Pattern::Size() const {
  int size = (op_ == PatternOp::kAtom) ? 1 : 1;
  if (op_ == PatternOp::kSeq) {
    // n-ary SEQ counts as n-1 binary SEQ operators (Definition 1).
    size = static_cast<int>(children_.size()) - 1;
  }
  for (const PatternPtr& c : children_) size += c->Size();
  return size;
}

bool Pattern::IsPositive() const {
  if (op_ == PatternOp::kNot) return false;
  for (const PatternPtr& c : children_) {
    if (!c->IsPositive()) return false;
  }
  return true;
}

bool Pattern::HasKleene() const {
  if (op_ == PatternOp::kPlus || op_ == PatternOp::kStar) return true;
  for (const PatternPtr& c : children_) {
    if (c->HasKleene()) return true;
  }
  return false;
}

namespace {

void CollectTypesRec(const Pattern& p, bool include_negated,
                     std::set<TypeId>* out) {
  if (p.op() == PatternOp::kAtom) {
    out->insert(p.type());
    return;
  }
  if (p.op() == PatternOp::kNot && !include_negated) return;
  for (const PatternPtr& c : p.children()) {
    CollectTypesRec(*c, include_negated, out);
  }
}

void RequiredTypesRec(const Pattern& p, std::set<TypeId>* out) {
  switch (p.op()) {
    case PatternOp::kAtom:
      out->insert(p.type());
      return;
    case PatternOp::kSeq:
      for (const PatternPtr& c : p.children()) {
        if (c->op() != PatternOp::kNot) RequiredTypesRec(*c, out);
      }
      return;
    case PatternOp::kPlus:
      RequiredTypesRec(*p.children()[0], out);
      return;
    case PatternOp::kOr: {
      std::set<TypeId> a;
      std::set<TypeId> b;
      RequiredTypesRec(*p.children()[0], &a);
      RequiredTypesRec(*p.children()[1], &b);
      for (TypeId t : a) {
        if (b.count(t) > 0) out->insert(t);
      }
      return;
    }
    case PatternOp::kStar:
    case PatternOp::kOpt:
    case PatternOp::kNot:
      return;  // May match trends without these types.
    case PatternOp::kAnd:
      for (const PatternPtr& c : p.children()) RequiredTypesRec(*c, out);
      return;
  }
}

}  // namespace

std::vector<TypeId> Pattern::CollectTypes(bool include_negated) const {
  std::set<TypeId> set;
  CollectTypesRec(*this, include_negated, &set);
  return std::vector<TypeId>(set.begin(), set.end());
}

std::vector<TypeId> Pattern::RequiredTypes() const {
  std::set<TypeId> set;
  RequiredTypesRec(*this, &set);
  return std::vector<TypeId>(set.begin(), set.end());
}

bool Pattern::Equals(const Pattern& other) const {
  if (op_ != other.op_ || type_ != other.type_ ||
      children_.size() != other.children_.size()) {
    return false;
  }
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

std::string Pattern::ToString(const Catalog& catalog) const {
  switch (op_) {
    case PatternOp::kAtom:
      return catalog.type(type_).name;
    case PatternOp::kSeq: {
      std::string out = "SEQ(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ", ";
        out += children_[i]->ToString(catalog);
      }
      out += ")";
      return out;
    }
    case PatternOp::kPlus:
      return "(" + children_[0]->ToString(catalog) + ")+";
    case PatternOp::kStar:
      return "(" + children_[0]->ToString(catalog) + ")*";
    case PatternOp::kOpt:
      return "(" + children_[0]->ToString(catalog) + ")?";
    case PatternOp::kNot:
      return "NOT " + children_[0]->ToString(catalog);
    case PatternOp::kOr:
      return "(" + children_[0]->ToString(catalog) + " | " +
             children_[1]->ToString(catalog) + ")";
    case PatternOp::kAnd:
      return "(" + children_[0]->ToString(catalog) + " & " +
             children_[1]->ToString(catalog) + ")";
  }
  return "?";
}

namespace {

Status ValidateRec(const Pattern& p, bool is_root, bool inside_not) {
  switch (p.op()) {
    case PatternOp::kAtom:
      return Status::Ok();
    case PatternOp::kSeq: {
      bool prev_was_not = false;
      int positive_children = 0;
      for (const PatternPtr& c : p.children()) {
        if (c->op() == PatternOp::kNot) {
          if (prev_was_not) {
            return Status::InvalidArgument(
                "consecutive negative sub-patterns; rewrite "
                "SEQ(NOT Pi, NOT Pj) as NOT SEQ(Pi, Pj)");
          }
          prev_was_not = true;
          const Pattern& inner = *c->children()[0];
          if (inner.op() != PatternOp::kAtom && inner.op() != PatternOp::kSeq) {
            return Status::InvalidArgument(
                "negation must be applied to an event type or an event "
                "sequence (Section 2)");
          }
          Status s = ValidateRec(inner, /*is_root=*/false, /*inside_not=*/true);
          if (!s.ok()) return s;
        } else {
          prev_was_not = false;
          ++positive_children;
          Status s = ValidateRec(*c, /*is_root=*/false, inside_not);
          if (!s.ok()) return s;
        }
      }
      if (positive_children == 0) {
        return Status::InvalidArgument(
            "an event sequence needs at least one positive sub-pattern");
      }
      return Status::Ok();
    }
    case PatternOp::kPlus:
    case PatternOp::kStar:
    case PatternOp::kOpt: {
      const Pattern& c = *p.children()[0];
      if (c.op() == PatternOp::kNot) {
        return Status::InvalidArgument(
            "Kleene applied to negation is equivalent to NOT P (Section 2); "
            "write NOT P instead");
      }
      return ValidateRec(c, /*is_root=*/false, inside_not);
    }
    case PatternOp::kNot:
      if (is_root) {
        return Status::InvalidArgument(
            "negation may not be the outermost operator (Section 2)");
      }
      return Status::InvalidArgument(
          "negation must appear directly within an event sequence");
    case PatternOp::kOr:
    case PatternOp::kAnd: {
      if (inside_not) {
        return Status::Unsupported(
            "disjunction/conjunction inside negation is not supported");
      }
      for (const PatternPtr& c : p.children()) {
        Status s = ValidateRec(*c, /*is_root=*/false, inside_not);
        if (!s.ok()) return s;
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unknown pattern operator");
}

using AltList = std::vector<PatternPtr>;  // nullptr element == empty trend

Status ExpandRec(const Pattern& p, AltList* out);

Status ExpandChildren(const std::vector<PatternPtr>& children, size_t index,
                      std::vector<PatternPtr>* current, AltList* out) {
  if (index == children.size()) {
    std::vector<PatternPtr> parts;
    for (const PatternPtr& part : *current) {
      if (part != nullptr) parts.push_back(part->Clone());
    }
    if (parts.empty()) {
      out->push_back(nullptr);
    } else if (parts.size() == 1) {
      out->push_back(std::move(parts[0]));
    } else {
      out->push_back(Pattern::Seq(std::move(parts)));
    }
    return Status::Ok();
  }
  AltList child_alts;
  Status s = ExpandRec(*children[index], &child_alts);
  if (!s.ok()) return s;
  for (PatternPtr& alt : child_alts) {
    current->push_back(std::move(alt));
    Status rec = ExpandChildren(children, index + 1, current, out);
    if (!rec.ok()) return rec;
    current->pop_back();
  }
  return Status::Ok();
}

Status ExpandRec(const Pattern& p, AltList* out) {
  switch (p.op()) {
    case PatternOp::kAtom:
      out->push_back(p.Clone());
      return Status::Ok();
    case PatternOp::kSeq: {
      std::vector<PatternPtr> current;
      return ExpandChildren(p.children(), 0, &current, out);
    }
    case PatternOp::kPlus: {
      AltList child_alts;
      Status s = ExpandRec(*p.children()[0], &child_alts);
      if (!s.ok()) return s;
      bool emitted_empty = false;
      for (PatternPtr& alt : child_alts) {
        if (alt == nullptr) {
          if (!emitted_empty) {
            out->push_back(nullptr);  // (empty)+ == empty
            emitted_empty = true;
          }
        } else {
          out->push_back(Pattern::Plus(std::move(alt)));
        }
      }
      return Status::Ok();
    }
    case PatternOp::kStar: {
      AltList plus_alts;
      PatternPtr as_plus = Pattern::Plus(p.children()[0]->Clone());
      Status s = ExpandRec(*as_plus, &plus_alts);
      if (!s.ok()) return s;
      bool has_empty = false;
      for (PatternPtr& alt : plus_alts) {
        if (alt == nullptr) has_empty = true;
        out->push_back(std::move(alt));
      }
      if (!has_empty) out->push_back(nullptr);
      return Status::Ok();
    }
    case PatternOp::kOpt: {
      AltList child_alts;
      Status s = ExpandRec(*p.children()[0], &child_alts);
      if (!s.ok()) return s;
      bool has_empty = false;
      for (PatternPtr& alt : child_alts) {
        if (alt == nullptr) has_empty = true;
        out->push_back(std::move(alt));
      }
      if (!has_empty) out->push_back(nullptr);
      return Status::Ok();
    }
    case PatternOp::kNot: {
      AltList child_alts;
      Status s = ExpandRec(*p.children()[0], &child_alts);
      if (!s.ok()) return s;
      for (PatternPtr& alt : child_alts) {
        if (alt == nullptr) {
          return Status::InvalidArgument(
              "negated sub-pattern may not match the empty trend");
        }
        out->push_back(Pattern::Not(std::move(alt)));
      }
      return Status::Ok();
    }
    case PatternOp::kOr: {
      for (const PatternPtr& c : p.children()) {
        Status s = ExpandRec(*c, out);
        if (!s.ok()) return s;
      }
      return Status::Ok();
    }
    case PatternOp::kAnd:
      return Status::Unsupported(
          "conjunction must be the outermost operator (handled by the "
          "conjunction combinator)");
  }
  return Status::Internal("unknown pattern operator");
}

}  // namespace

Status ValidatePattern(const Pattern& p) {
  return ValidateRec(p, /*is_root=*/true, /*inside_not=*/false);
}

StatusOr<std::vector<PatternPtr>> ExpandSugar(const Pattern& p) {
  AltList raw;
  Status s = ExpandRec(p, &raw);
  if (!s.ok()) return s;
  std::vector<PatternPtr> out;
  for (PatternPtr& alt : raw) {
    if (alt == nullptr) continue;  // Lemma 1: no empty trends.
    bool duplicate = false;
    for (const PatternPtr& seen : out) {
      if (seen->Equals(*alt)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) out.push_back(std::move(alt));
  }
  if (out.empty()) {
    return Status::InvalidArgument(
        "pattern matches only the empty trend (Lemma 1 violation)");
  }
  return out;
}

StatusOr<PatternPtr> UnrollMinLength(const Pattern& plus_pattern,
                                     int min_len) {
  if (min_len < 1) {
    return Status::InvalidArgument("minimal trend length must be >= 1");
  }
  if (plus_pattern.op() != PatternOp::kPlus) {
    return Status::InvalidArgument(
        "minimal trend length unrolling applies to a Kleene plus pattern");
  }
  if (min_len == 1) return plus_pattern.Clone();
  const Pattern& body = *plus_pattern.children()[0];
  std::vector<PatternPtr> parts;
  for (int i = 0; i < min_len - 1; ++i) parts.push_back(body.Clone());
  parts.push_back(Pattern::Plus(body.Clone()));
  return Pattern::Seq(std::move(parts));
}

}  // namespace greta
