#include "query/lexer.h"

#include <cctype>

namespace greta {

bool Token::IsKeyword(std::string_view kw) const {
  if (kind != TokenKind::kIdent || text.size() != kw.size()) return false;
  for (size_t i = 0; i < kw.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(text[i])) !=
        std::toupper(static_cast<unsigned char>(kw[i]))) {
      return false;
    }
  }
  return true;
}

StatusOr<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> out;
  size_t i = 0;
  auto push = [&](TokenKind kind, std::string text, size_t offset) {
    out.push_back(Token{kind, std::move(text), offset});
  };
  while (i < source.size()) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[j])) ||
              source[j] == '_')) {
        ++j;
      }
      push(TokenKind::kIdent, std::string(source.substr(i, j - i)), start);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool seen_dot = false;
      while (j < source.size()) {
        char d = source[j];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++j;
        } else if (d == '.' && !seen_dot && j + 1 < source.size() &&
                   std::isdigit(static_cast<unsigned char>(source[j + 1]))) {
          seen_dot = true;
          ++j;
        } else {
          break;
        }
      }
      push(TokenKind::kNumber, std::string(source.substr(i, j - i)), start);
      i = j;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      while (j < source.size() && source[j] != '\'') ++j;
      if (j == source.size()) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      push(TokenKind::kString, std::string(source.substr(i + 1, j - i - 1)),
           start);
      i = j + 1;
      continue;
    }
    // Two-character operators first.
    if (i + 1 < source.size()) {
      std::string_view two = source.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "!=" || two == "<>") {
        push(TokenKind::kSymbol, two == "<>" ? "!=" : std::string(two), start);
        i += 2;
        continue;
      }
    }
    static constexpr std::string_view kSingles = "()[],.+*?%/=<>|&-";
    if (kSingles.find(c) != std::string_view::npos) {
      push(TokenKind::kSymbol, std::string(1, c), start);
      ++i;
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(start));
  }
  out.push_back(Token{TokenKind::kEnd, "", source.size()});
  return out;
}

}  // namespace greta
