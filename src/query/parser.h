#ifndef GRETA_QUERY_PARSER_H_
#define GRETA_QUERY_PARSER_H_

#include <string_view>

#include "common/catalog.h"
#include "common/status.h"
#include "query/query.h"

namespace greta {

/// Parses the event trend aggregation query language of the paper
/// (Definition 2 clauses over the Figure 2 grammar), e.g. query Q1:
///
///   RETURN sector, COUNT(*)
///   PATTERN Stock S+
///   WHERE [company, sector] AND S.price > NEXT(S).price
///   GROUP-BY sector
///   WITHIN 10 minutes SLIDE 10 seconds
///
/// Conventions:
///  - event types must be pre-registered in `catalog`; a pattern atom is a
///    type name optionally followed by an alias ("Stock S+"), and the alias
///    can qualify attributes in predicates and aggregates;
///  - patterns support SEQ(...), NOT, postfix +, * and ?, grouping
///    parentheses, and infix | (disjunction) and & (conjunction);
///  - the WHERE clause is a conjunction of expression predicates and
///    equivalence clauses written in brackets, e.g. [company, sector];
///  - durations accept seconds/minutes/hours (base tick = 1 second) or bare
///    tick counts; omitted SLIDE makes the window tumbling; omitted WITHIN
///    makes it unbounded.
StatusOr<QuerySpec> ParseQuery(std::string_view source, Catalog* catalog);

}  // namespace greta

#endif  // GRETA_QUERY_PARSER_H_
