#ifndef GRETA_QUERY_TEMPLATE_H_
#define GRETA_QUERY_TEMPLATE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/catalog.h"
#include "common/status.h"
#include "query/pattern.h"

namespace greta {

/// Transition labels of the GRETA template (Algorithm 1): "SEQ" connects
/// end(Pi) to start(Pj) for every event sequence, "+" connects end(Pi) back
/// to start(Pi) for every Kleene plus.
enum class TransitionLabel { kSeq, kPlus };

/// A state of the GRETA template. States are *occurrence-unique*: a pattern
/// in which the same event type appears several times (Section 9, Figure 13)
/// yields one state per occurrence, each with its own id and label (e.g.
/// "A1", "A3").
struct TemplateState {
  StateId id = kInvalidState;
  TypeId type = kInvalidType;
  std::string label;
};

/// A transition of the GRETA template: types of events that may be adjacent
/// in a matched trend.
struct TemplateTransition {
  StateId from = kInvalidState;
  StateId to = kInvalidState;
  TransitionLabel label = TransitionLabel::kSeq;
};

/// The automaton-based representation of a positive Kleene pattern produced
/// by Algorithm 1. Immutable after construction; used at runtime as the
/// blueprint of the GRETA graph.
class GretaTemplate {
 public:
  const std::vector<TemplateState>& states() const { return states_; }
  const std::vector<TemplateTransition>& transitions() const {
    return transitions_;
  }

  StateId start_state() const { return start_state_; }
  StateId end_state() const { return end_state_; }

  bool IsStart(StateId s) const { return s == start_state_; }
  bool IsEnd(StateId s) const { return s == end_state_; }

  size_t num_states() const { return states_.size(); }

  /// Predecessor states of `s`: states with a transition into `s`
  /// (P.predTypes in the paper).
  const std::vector<StateId>& pred_states(StateId s) const {
    return pred_states_[s];
  }

  /// Successor states of `s`.
  const std::vector<StateId>& succ_states(StateId s) const {
    return succ_states_[s];
  }

  /// States associated with events of `type`; empty when the type is not
  /// part of the pattern.
  const std::vector<StateId>& states_for_type(TypeId type) const;

  /// Index of the transition `from -> to`, or -1.
  int FindTransition(StateId from, StateId to) const;

  /// Start/end states recorded for each node of the source pattern during
  /// construction; used by the pattern split to resolve the previous and
  /// following states of a negative sub-pattern.
  StateId NodeStartState(const Pattern* node) const;
  StateId NodeEndState(const Pattern* node) const;

  /// All event types appearing in the template.
  std::vector<TypeId> Types() const;

  std::string ToString() const;

 private:
  friend class TemplateBuilder;
  friend StatusOr<GretaTemplate> MergeSharedCoreTemplates(
      const GretaTemplate& core,
      const std::vector<const GretaTemplate*>& full,
      std::vector<StateId>* end_states, std::vector<int>* state_owner,
      std::vector<int>* transition_owner);

  std::vector<TemplateState> states_;
  std::vector<TemplateTransition> transitions_;
  StateId start_state_ = kInvalidState;
  StateId end_state_ = kInvalidState;
  std::vector<std::vector<StateId>> pred_states_;
  std::vector<std::vector<StateId>> succ_states_;
  std::unordered_map<TypeId, std::vector<StateId>> by_type_;
  std::unordered_map<const Pattern*, std::pair<StateId, StateId>> node_span_;
};

/// Builds the GRETA template for a *positive, desugared* pattern
/// (Algorithm 1). The pattern object must outlive calls to
/// NodeStartState/NodeEndState that reference its nodes.
StatusOr<GretaTemplate> BuildTemplate(const Pattern& pattern,
                                      const Catalog& catalog);

/// Partial sharing (src/sharing/): merges per-query templates that share an
/// identical core prefix into ONE template. Each template in `full` must
/// begin with the states of `core` (same ids, types, start state, and
/// core-internal transitions — guaranteed when every query's pattern starts
/// with the same Kleene sub-pattern, since TemplateBuilder allocates state
/// ids left to right). Suffix states and transitions of query q are appended
/// with fresh ids; `state_owner`/`transition_owner` record which query owns
/// each (-1 for the shared core), and `end_states[q]` is query q's END state
/// in the merged template. The merged start state is the shared core start.
StatusOr<GretaTemplate> MergeSharedCoreTemplates(
    const GretaTemplate& core, const std::vector<const GretaTemplate*>& full,
    std::vector<StateId>* end_states, std::vector<int>* state_owner,
    std::vector<int>* transition_owner);

/// Canonical structural rendering of one template automaton:
/// occurrence-unique states in id order (construction order is deterministic
/// for a given pattern shape), transitions sorted, start/end marked. Two
/// patterns with equal fingerprints build byte-identical GRETA graphs — the
/// normalization behind both exact sharing fingerprints and partial-sharing
/// core clustering (src/sharing/).
std::string TemplateStructureFingerprint(const GretaTemplate& templ);

}  // namespace greta

#endif  // GRETA_QUERY_TEMPLATE_H_
