#ifndef GRETA_QUERY_LEXER_H_
#define GRETA_QUERY_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace greta {

/// Token kinds of the query language (Figure 2 grammar plus the clauses of
/// Definition 2).
enum class TokenKind {
  kIdent,    // identifiers and keywords (keywords matched case-insensitively)
  kNumber,   // integer or decimal literal
  kString,   // 'single quoted'
  kSymbol,   // one of ( ) [ ] , . + * ? % / = < > <= >= != <> | & -
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  size_t offset = 0;  // byte offset in the source, for error messages

  bool IsSymbol(std::string_view s) const {
    return kind == TokenKind::kSymbol && text == s;
  }
  /// Case-insensitive keyword check against an identifier token.
  bool IsKeyword(std::string_view kw) const;
};

/// Tokenizes a query string. Errors report the byte offset of the offending
/// character.
StatusOr<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace greta

#endif  // GRETA_QUERY_LEXER_H_
