#include "predicate/expr.h"

#include "common/check.h"

namespace greta {

namespace {

Value Arith(ExprOp op, const Value& a, const Value& b) {
  bool both_int =
      a.kind() == Value::Kind::kInt && b.kind() == Value::Kind::kInt;
  switch (op) {
    case ExprOp::kAdd:
      if (both_int) return Value::Int(a.AsInt() + b.AsInt());
      return Value::Double(a.ToDouble() + b.ToDouble());
    case ExprOp::kSub:
      if (both_int) return Value::Int(a.AsInt() - b.AsInt());
      return Value::Double(a.ToDouble() - b.ToDouble());
    case ExprOp::kMul:
      if (both_int) return Value::Int(a.AsInt() * b.AsInt());
      return Value::Double(a.ToDouble() * b.ToDouble());
    case ExprOp::kDiv: {
      double denom = b.ToDouble();
      // Division by zero yields null, which is falsy in comparisons.
      if (denom == 0.0) return Value::Null();
      return Value::Double(a.ToDouble() / denom);
    }
    case ExprOp::kMod: {
      if (both_int) {
        int64_t denom = b.AsInt();
        if (denom == 0) return Value::Null();
        return Value::Int(a.AsInt() % denom);
      }
      return Value::Null();
    }
    default:
      GRETA_CHECK(false);
      return Value::Null();
  }
}

Value Compare(ExprOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Bool(false);
  if (op == ExprOp::kEq) return Value::Bool(a == b);
  if (op == ExprOp::kNe) return Value::Bool(!(a == b));
  int c = a.Compare(b);
  switch (op) {
    case ExprOp::kLt:
      return Value::Bool(c < 0);
    case ExprOp::kLe:
      return Value::Bool(c <= 0);
    case ExprOp::kGt:
      return Value::Bool(c > 0);
    case ExprOp::kGe:
      return Value::Bool(c >= 0);
    default:
      GRETA_CHECK(false);
      return Value::Null();
  }
}

}  // namespace

ExprPtr Expr::Const(Value v) {
  ExprPtr e(new Expr());
  e->op_ = ExprOp::kConst;
  e->const_ = v;
  return e;
}

ExprPtr Expr::Attr(TypeId type, AttrId attr) {
  GRETA_CHECK(type != kInvalidType && attr != kInvalidAttr);
  ExprPtr e(new Expr());
  e->op_ = ExprOp::kAttr;
  e->ref_ = AttrRef{type, attr};
  return e;
}

ExprPtr Expr::NextAttr(TypeId type, AttrId attr) {
  GRETA_CHECK(type != kInvalidType && attr != kInvalidAttr);
  ExprPtr e(new Expr());
  e->op_ = ExprOp::kNextAttr;
  e->ref_ = AttrRef{type, attr};
  return e;
}

ExprPtr Expr::Binary(ExprOp op, ExprPtr lhs, ExprPtr rhs) {
  GRETA_CHECK(op != ExprOp::kConst && op != ExprOp::kAttr &&
              op != ExprOp::kNextAttr);
  GRETA_CHECK(lhs != nullptr && rhs != nullptr);
  ExprPtr e(new Expr());
  e->op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

ExprPtr Expr::Clone() const {
  switch (op_) {
    case ExprOp::kConst:
      return Const(const_);
    case ExprOp::kAttr:
      return Attr(ref_.type, ref_.attr);
    case ExprOp::kNextAttr:
      return NextAttr(ref_.type, ref_.attr);
    default:
      return Binary(op_, lhs_->Clone(), rhs_->Clone());
  }
}

Value Expr::EvalVertex(const EventView e) const {
  switch (op_) {
    case ExprOp::kConst:
      return const_;
    case ExprOp::kAttr:
      return e.attr(ref_.attr);
    case ExprOp::kNextAttr:
      GRETA_CHECK(false);  // Vertex predicates have no NEXT references.
      return Value::Null();
    case ExprOp::kAnd: {
      Value l = lhs_->EvalVertex(e);
      if (!l.Truthy()) return Value::Bool(false);
      return Value::Bool(rhs_->EvalVertex(e).Truthy());
    }
    case ExprOp::kOr: {
      Value l = lhs_->EvalVertex(e);
      if (l.Truthy()) return Value::Bool(true);
      return Value::Bool(rhs_->EvalVertex(e).Truthy());
    }
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe:
      return Compare(op_, lhs_->EvalVertex(e), rhs_->EvalVertex(e));
    default:
      return Arith(op_, lhs_->EvalVertex(e), rhs_->EvalVertex(e));
  }
}

Value Expr::EvalEdge(const EventView prev, const EventView next) const {
  switch (op_) {
    case ExprOp::kConst:
      return const_;
    case ExprOp::kAttr:
      return prev.attr(ref_.attr);
    case ExprOp::kNextAttr:
      return next.attr(ref_.attr);
    case ExprOp::kAnd: {
      if (!lhs_->EvalEdge(prev, next).Truthy()) return Value::Bool(false);
      return Value::Bool(rhs_->EvalEdge(prev, next).Truthy());
    }
    case ExprOp::kOr: {
      if (lhs_->EvalEdge(prev, next).Truthy()) return Value::Bool(true);
      return Value::Bool(rhs_->EvalEdge(prev, next).Truthy());
    }
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe:
      return Compare(op_, lhs_->EvalEdge(prev, next),
                     rhs_->EvalEdge(prev, next));
    default:
      return Arith(op_, lhs_->EvalEdge(prev, next),
                   rhs_->EvalEdge(prev, next));
  }
}

void Expr::CollectRefs(std::vector<AttrRef>* base,
                       std::vector<AttrRef>* next) const {
  switch (op_) {
    case ExprOp::kConst:
      return;
    case ExprOp::kAttr:
      base->push_back(ref_);
      return;
    case ExprOp::kNextAttr:
      next->push_back(ref_);
      return;
    default:
      lhs_->CollectRefs(base, next);
      rhs_->CollectRefs(base, next);
      return;
  }
}

std::string Expr::ToString(const Catalog& catalog) const {
  auto op_str = [](ExprOp op) -> const char* {
    switch (op) {
      case ExprOp::kAdd:
        return "+";
      case ExprOp::kSub:
        return "-";
      case ExprOp::kMul:
        return "*";
      case ExprOp::kDiv:
        return "/";
      case ExprOp::kMod:
        return "%";
      case ExprOp::kEq:
        return "=";
      case ExprOp::kNe:
        return "!=";
      case ExprOp::kLt:
        return "<";
      case ExprOp::kLe:
        return "<=";
      case ExprOp::kGt:
        return ">";
      case ExprOp::kGe:
        return ">=";
      case ExprOp::kAnd:
        return "AND";
      case ExprOp::kOr:
        return "OR";
      default:
        return "?";
    }
  };
  switch (op_) {
    case ExprOp::kConst:
      return const_.ToString(&catalog.strings());
    case ExprOp::kAttr:
      return catalog.type(ref_.type).name + "." +
             catalog.type(ref_.type).attrs[ref_.attr].name;
    case ExprOp::kNextAttr:
      return "NEXT(" + catalog.type(ref_.type).name + ")." +
             catalog.type(ref_.type).attrs[ref_.attr].name;
    default:
      return "(" + lhs_->ToString(catalog) + " " + op_str(op_) + " " +
             rhs_->ToString(catalog) + ")";
  }
}

ExprPtr ConjoinAll(std::vector<ExprPtr> conjuncts) {
  ExprPtr out;
  for (ExprPtr& c : conjuncts) {
    if (out == nullptr) {
      out = std::move(c);
    } else {
      out = Expr::Binary(ExprOp::kAnd, std::move(out), std::move(c));
    }
  }
  return out;
}

}  // namespace greta
