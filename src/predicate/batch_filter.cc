#include "predicate/batch_filter.h"

namespace greta {

namespace {

bool IsCmp(ExprOp op) {
  switch (op) {
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe:
      return true;
    default:
      return false;
  }
}

// Mirror of the comparison semantics in predicate/expr.cc (null operands
// are false; Eq/Ne use structural equality; the orderings use
// Value::Compare, which keeps int/int comparisons exact).
bool EvalCmp(ExprOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return false;
  if (op == ExprOp::kEq) return a == b;
  if (op == ExprOp::kNe) return !(a == b);
  int c = a.Compare(b);
  switch (op) {
    case ExprOp::kLt:
      return c < 0;
    case ExprOp::kLe:
      return c <= 0;
    case ExprOp::kGt:
      return c > 0;
    case ExprOp::kGe:
      return c >= 0;
    default:
      return false;
  }
}

}  // namespace

CompiledVertexFilter::CompiledVertexFilter(
    const std::vector<const Expr*>& preds) {
  for (const Expr* pred : preds) {
    if (IsCmp(pred->op())) {
      const Expr& l = pred->lhs();
      const Expr& r = pred->rhs();
      if (l.op() == ExprOp::kAttr && r.op() == ExprOp::kConst) {
        fast_.push_back({l.attr_ref().attr, pred->op(), r.const_value(),
                         /*attr_on_left=*/true});
        continue;
      }
      if (l.op() == ExprOp::kConst && r.op() == ExprOp::kAttr) {
        fast_.push_back({r.attr_ref().attr, pred->op(), l.const_value(),
                         /*attr_on_left=*/false});
        continue;
      }
    }
    general_.push_back(pred);
  }
}

size_t CompiledVertexFilter::Filter(const EventBatch& batch, uint32_t* rows,
                                    size_t n) const {
  // One compaction pass per predicate: each loop touches a single attribute
  // column of the surviving rows, with the pass/fail decision folded into
  // the output cursor bump (no data-dependent branch in the loop body).
  for (const AttrCmpConst& c : fast_) {
    size_t out = 0;
    for (size_t i = 0; i < n; ++i) {
      uint32_t row = rows[i];
      const Value& v = batch.attrs(row)[c.attr];
      bool pass = c.attr_on_left ? EvalCmp(c.op, v, c.rhs)
                                 : EvalCmp(c.op, c.rhs, v);
      rows[out] = row;
      out += pass ? 1 : 0;
    }
    n = out;
  }
  for (const Expr* pred : general_) {
    size_t out = 0;
    for (size_t i = 0; i < n; ++i) {
      uint32_t row = rows[i];
      bool pass = pred->EvalVertex(batch.view(row)).Truthy();
      rows[out] = row;
      out += pass ? 1 : 0;
    }
    n = out;
  }
  return n;
}

CompiledEdgeFilter::CompiledEdgeFilter(const std::vector<const Expr*>& preds) {
  for (const Expr* pred : preds) {
    if (IsCmp(pred->op())) {
      const Expr& l = pred->lhs();
      const Expr& r = pred->rhs();
      if (l.op() == ExprOp::kAttr &&
          (r.op() == ExprOp::kNextAttr || r.op() == ExprOp::kConst)) {
        PrevCmp c;
        c.prev_attr = l.attr_ref().attr;
        c.op = pred->op();
        if (r.op() == ExprOp::kNextAttr) {
          c.next_attr = r.attr_ref().attr;
        } else {
          c.rhs = r.const_value();
        }
        c.prev_on_left = true;
        fast_.push_back(std::move(c));
        continue;
      }
      if (r.op() == ExprOp::kAttr &&
          (l.op() == ExprOp::kNextAttr || l.op() == ExprOp::kConst)) {
        PrevCmp c;
        c.prev_attr = r.attr_ref().attr;
        c.op = pred->op();
        if (l.op() == ExprOp::kNextAttr) {
          c.next_attr = l.attr_ref().attr;
        } else {
          c.rhs = l.const_value();
        }
        c.prev_on_left = false;
        fast_.push_back(std::move(c));
        continue;
      }
    }
    general_.push_back(pred);
  }
}

size_t CompiledEdgeFilter::Filter(const EventView next, const EventView* prevs,
                                  uint32_t* idx, size_t n) const {
  // Same compaction idiom as the vertex filter: one pass per predicate, the
  // pass/fail decision folded into the output cursor bump. The next-event
  // operand is resolved once per call (i.e. once per event), not per pair.
  for (const PrevCmp& c : fast_) {
    const Value& other = c.next_attr != kInvalidAttr ? next.attr(c.next_attr)
                                                     : c.rhs;
    size_t out = 0;
    for (size_t i = 0; i < n; ++i) {
      uint32_t j = idx[i];
      const Value& v = prevs[j].attr(c.prev_attr);
      bool pass =
          c.prev_on_left ? EvalCmp(c.op, v, other) : EvalCmp(c.op, other, v);
      idx[out] = j;
      out += pass ? 1 : 0;
    }
    n = out;
  }
  for (const Expr* pred : general_) {
    size_t out = 0;
    for (size_t i = 0; i < n; ++i) {
      uint32_t j = idx[i];
      bool pass = pred->EvalEdge(prevs[j], next).Truthy();
      idx[out] = j;
      out += pass ? 1 : 0;
    }
    n = out;
  }
  return n;
}

}  // namespace greta
