#include "predicate/batch_filter.h"

namespace greta {

namespace {

bool IsCmp(ExprOp op) {
  switch (op) {
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe:
      return true;
    default:
      return false;
  }
}

// Mirror of the comparison semantics in predicate/expr.cc (null operands
// are false; Eq/Ne use structural equality; the orderings use
// Value::Compare, which keeps int/int comparisons exact).
bool EvalCmp(ExprOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return false;
  if (op == ExprOp::kEq) return a == b;
  if (op == ExprOp::kNe) return !(a == b);
  int c = a.Compare(b);
  switch (op) {
    case ExprOp::kLt:
      return c < 0;
    case ExprOp::kLe:
      return c <= 0;
    case ExprOp::kGt:
      return c > 0;
    case ExprOp::kGe:
      return c >= 0;
    default:
      return false;
  }
}

simd::CmpOp ToCmpOp(ExprOp op) {
  switch (op) {
    case ExprOp::kEq: return simd::CmpOp::kEq;
    case ExprOp::kNe: return simd::CmpOp::kNe;
    case ExprOp::kLt: return simd::CmpOp::kLt;
    case ExprOp::kLe: return simd::CmpOp::kLe;
    case ExprOp::kGt: return simd::CmpOp::kGt;
    case ExprOp::kGe: return simd::CmpOp::kGe;
    default: return simd::CmpOp::kEq;
  }
}

// Mirror the comparison so the variable operand lands on the left. Exact:
// Value::Compare is antisymmetric (including its kind-ordering branch) and
// operator== is symmetric, so EvalCmp(op, a, b) == EvalCmp(flip, b, a).
simd::CmpOp FlipCmpOp(simd::CmpOp op) {
  switch (op) {
    case simd::CmpOp::kLt: return simd::CmpOp::kGt;
    case simd::CmpOp::kLe: return simd::CmpOp::kGe;
    case simd::CmpOp::kGt: return simd::CmpOp::kLt;
    case simd::CmpOp::kGe: return simd::CmpOp::kLe;
    default: return op;  // Eq/Ne are symmetric
  }
}

// Normalizes one `value CMP rhs` (or mirrored) comparison into the kernel
// constant: op value-on-left, rhs decomposed by kind, and the result for
// lanes in the other comparability class precomputed. With a null rhs
// nothing passes (rhs_kind stays 0), exactly like EvalCmp.
simd::CmpConst MakeCmpConst(ExprOp op, const Value& rhs, bool value_on_left) {
  simd::CmpConst c;
  c.op = value_on_left ? ToCmpOp(op) : FlipCmpOp(ToCmpOp(op));
  c.rhs_kind = static_cast<uint8_t>(rhs.kind());
  switch (rhs.kind()) {
    case Value::Kind::kInt:
      c.rhs_i = rhs.AsInt();
      c.rhs_d = static_cast<double>(rhs.AsInt());  // == Value::ToDouble()
      break;
    case Value::Kind::kDouble:
      c.rhs_d = rhs.AsDouble();
      break;
    case Value::Kind::kStr:
      c.rhs_i = static_cast<int64_t>(rhs.AsStr());
      break;
    case Value::Kind::kNull:
      break;
  }
  // EvalCmp for a kind-mismatched lane (string lane under a numeric rhs and
  // vice versa): equality is false, inequality true, and the orderings
  // follow Value::Compare's kind ordering (strings sort above numerics).
  const bool rhs_is_str = rhs.kind() == Value::Kind::kStr;
  switch (c.op) {
    case simd::CmpOp::kEq: c.mismatch_pass = 0; break;
    case simd::CmpOp::kNe: c.mismatch_pass = 1; break;
    case simd::CmpOp::kLt:
    case simd::CmpOp::kLe:
      c.mismatch_pass = rhs_is_str ? 1 : 0;
      break;
    case simd::CmpOp::kGt:
    case simd::CmpOp::kGe:
      c.mismatch_pass = rhs_is_str ? 0 : 1;
      break;
  }
  return c;
}

}  // namespace

CompiledVertexFilter::CompiledVertexFilter(
    const std::vector<const Expr*>& preds) {
  for (const Expr* pred : preds) {
    if (IsCmp(pred->op())) {
      const Expr& l = pred->lhs();
      const Expr& r = pred->rhs();
      if (l.op() == ExprOp::kAttr && r.op() == ExprOp::kConst) {
        AttrCmpConst c;
        c.attr = l.attr_ref().attr;
        c.op = pred->op();
        c.rhs = r.const_value();
        c.attr_on_left = true;
        c.cmp = MakeCmpConst(c.op, c.rhs, /*value_on_left=*/true);
        fast_.push_back(std::move(c));
        continue;
      }
      if (l.op() == ExprOp::kConst && r.op() == ExprOp::kAttr) {
        AttrCmpConst c;
        c.attr = r.attr_ref().attr;
        c.op = pred->op();
        c.rhs = l.const_value();
        c.attr_on_left = false;
        c.cmp = MakeCmpConst(c.op, c.rhs, /*value_on_left=*/false);
        fast_.push_back(std::move(c));
        continue;
      }
    }
    general_.push_back(pred);
  }
}

size_t CompiledVertexFilter::Filter(const EventBatch& batch, uint32_t* rows,
                                    size_t n) const {
  // One compaction pass per predicate: each loop touches a single attribute
  // column of the surviving rows, with the pass/fail decision folded into
  // the output cursor bump (no data-dependent branch in the loop body).
  for (const AttrCmpConst& c : fast_) {
    size_t out = 0;
    for (size_t i = 0; i < n; ++i) {
      uint32_t row = rows[i];
      const Value& v = batch.attrs(row)[c.attr];
      bool pass = c.attr_on_left ? EvalCmp(c.op, v, c.rhs)
                                 : EvalCmp(c.op, c.rhs, v);
      rows[out] = row;
      out += pass ? 1 : 0;
    }
    n = out;
  }
  for (const Expr* pred : general_) {
    size_t out = 0;
    for (size_t i = 0; i < n; ++i) {
      uint32_t row = rows[i];
      bool pass = pred->EvalVertex(batch.view(row)).Truthy();
      rows[out] = row;
      out += pass ? 1 : 0;
    }
    n = out;
  }
  return n;
}

size_t CompiledVertexFilter::Filter(const EventBatch& batch,
                                    const ColumnProjection& proj,
                                    const uint32_t* pos_to_row, uint32_t* pos,
                                    size_t n) const {
  const simd::Kernels& k = simd::Dispatch();
  for (const AttrCmpConst& c : fast_) {
    if (proj.has(c.attr)) {
      n = k.filter_sel(proj.column(c.attr), c.cmp, /*rebase=*/0, pos, n);
      continue;
    }
    // Attr not projected (the graphs project the union of their fast
    // attrs, so this only happens for filters built elsewhere): scalar
    // loop over the mapped batch rows.
    size_t out = 0;
    for (size_t i = 0; i < n; ++i) {
      uint32_t p = pos[i];
      const Value& v = batch.attrs(pos_to_row[p])[c.attr];
      bool pass = c.attr_on_left ? EvalCmp(c.op, v, c.rhs)
                                 : EvalCmp(c.op, c.rhs, v);
      pos[out] = p;
      out += pass ? 1 : 0;
    }
    n = out;
  }
  for (const Expr* pred : general_) {
    size_t out = 0;
    for (size_t i = 0; i < n; ++i) {
      uint32_t p = pos[i];
      bool pass = pred->EvalVertex(batch.view(pos_to_row[p])).Truthy();
      pos[out] = p;
      out += pass ? 1 : 0;
    }
    n = out;
  }
  return n;
}

void CompiledVertexFilter::AppendFastAttrs(std::vector<AttrId>* attrs) const {
  for (const AttrCmpConst& c : fast_) {
    bool seen = false;
    for (AttrId a : *attrs) seen = seen || a == c.attr;
    if (!seen) attrs->push_back(c.attr);
  }
}

void CompiledVertexFilter::AppendFastAttrUses(
    std::vector<AttrId>* attrs) const {
  for (const AttrCmpConst& c : fast_) attrs->push_back(c.attr);
}

CompiledEdgeFilter::CompiledEdgeFilter(const std::vector<const Expr*>& preds) {
  for (const Expr* pred : preds) {
    if (IsCmp(pred->op())) {
      const Expr& l = pred->lhs();
      const Expr& r = pred->rhs();
      if (l.op() == ExprOp::kAttr &&
          (r.op() == ExprOp::kNextAttr || r.op() == ExprOp::kConst)) {
        PrevCmp c;
        c.prev_attr = l.attr_ref().attr;
        c.op = pred->op();
        if (r.op() == ExprOp::kNextAttr) {
          c.next_attr = r.attr_ref().attr;
        } else {
          c.rhs = r.const_value();
          c.cmp = MakeCmpConst(c.op, c.rhs, /*value_on_left=*/true);
        }
        c.prev_on_left = true;
        fast_.push_back(std::move(c));
        continue;
      }
      if (r.op() == ExprOp::kAttr &&
          (l.op() == ExprOp::kNextAttr || l.op() == ExprOp::kConst)) {
        PrevCmp c;
        c.prev_attr = r.attr_ref().attr;
        c.op = pred->op();
        if (l.op() == ExprOp::kNextAttr) {
          c.next_attr = l.attr_ref().attr;
        } else {
          c.rhs = l.const_value();
          c.cmp = MakeCmpConst(c.op, c.rhs, /*value_on_left=*/false);
        }
        c.prev_on_left = false;
        fast_.push_back(std::move(c));
        continue;
      }
    }
    general_.push_back(pred);
  }
}

size_t CompiledEdgeFilter::Filter(const EventView next, const EventView* prevs,
                                  uint32_t* idx, size_t n) const {
  // Same compaction idiom as the vertex filter: one pass per predicate, the
  // pass/fail decision folded into the output cursor bump. The next-event
  // operand is resolved once per call (i.e. once per event), not per pair.
  for (const PrevCmp& c : fast_) {
    const Value& other = c.next_attr != kInvalidAttr ? next.attr(c.next_attr)
                                                     : c.rhs;
    size_t out = 0;
    for (size_t i = 0; i < n; ++i) {
      uint32_t j = idx[i];
      const Value& v = prevs[j].attr(c.prev_attr);
      bool pass =
          c.prev_on_left ? EvalCmp(c.op, v, other) : EvalCmp(c.op, other, v);
      idx[out] = j;
      out += pass ? 1 : 0;
    }
    n = out;
  }
  for (const Expr* pred : general_) {
    size_t out = 0;
    for (size_t i = 0; i < n; ++i) {
      uint32_t j = idx[i];
      bool pass = pred->EvalEdge(prevs[j], next).Truthy();
      idx[out] = j;
      out += pass ? 1 : 0;
    }
    n = out;
  }
  return n;
}

void CompiledEdgeFilter::BuildPrevColumns(const EventView* prevs, size_t count,
                                          PrevColumns* out) const {
  const size_t slots = fast_.size();
  out->rows_ = count;
  out->dval_.resize(slots * count);
  out->ival_.resize(slots * count);
  out->tag_.resize(slots * count);
  for (size_t s = 0; s < slots; ++s) {
    const AttrId a = fast_[s].prev_attr;
    const size_t base = s * count;
    for (size_t j = 0; j < count; ++j) {
      DecomposeValue(prevs[j].attr(a), &out->dval_[base + j],
                     &out->ival_[base + j], &out->tag_[base + j]);
    }
  }
}

size_t CompiledEdgeFilter::Filter(const EventView next, const EventView* prevs,
                                  const PrevColumns& cols, uint32_t rebase,
                                  uint32_t* idx, size_t n) const {
  const simd::Kernels& k = simd::Dispatch();
  for (size_t s = 0; s < fast_.size(); ++s) {
    const PrevCmp& c = fast_[s];
    // NEXT-attr comparisons resolve the next-side operand once per call
    // (once per event), exactly like the scalar pass.
    const simd::CmpConst cmp =
        c.next_attr != kInvalidAttr
            ? MakeCmpConst(c.op, next.attr(c.next_attr), c.prev_on_left)
            : c.cmp;
    n = k.filter_sel(cols.column(s), cmp, rebase, idx, n);
  }
  for (const Expr* pred : general_) {
    size_t out = 0;
    for (size_t i = 0; i < n; ++i) {
      uint32_t j = idx[i];
      bool pass = pred->EvalEdge(prevs[j], next).Truthy();
      idx[out] = j;
      out += pass ? 1 : 0;
    }
    n = out;
  }
  return n;
}

}  // namespace greta
