#include "predicate/range.h"

#include "common/check.h"

namespace greta {

namespace {

// A linear function a*x + b of the previous event's attribute `attr`
// (attr == kInvalidAttr means the expression is a constant: 0*x + b).
struct Linear {
  AttrId attr = kInvalidAttr;
  double a = 0.0;
  double b = 0.0;

  bool has_attr() const { return attr != kInvalidAttr; }
};

// Returns the linear form of `e` over the previous event, or nullopt when
// `e` is not linear (contains NEXT references, non-constant factors, ...).
std::optional<Linear> LinearInPrev(const Expr& e) {
  switch (e.op()) {
    case ExprOp::kConst: {
      if (!e.const_value().is_numeric()) return std::nullopt;
      return Linear{kInvalidAttr, 0.0, e.const_value().ToDouble()};
    }
    case ExprOp::kAttr:
      return Linear{e.attr_ref().attr, 1.0, 0.0};
    case ExprOp::kNextAttr:
      return std::nullopt;
    case ExprOp::kAdd:
    case ExprOp::kSub: {
      auto l = LinearInPrev(e.lhs());
      auto r = LinearInPrev(e.rhs());
      if (!l || !r) return std::nullopt;
      if (l->has_attr() && r->has_attr()) {
        if (l->attr != r->attr) return std::nullopt;
      }
      double sign = (e.op() == ExprOp::kAdd) ? 1.0 : -1.0;
      Linear out;
      out.attr = l->has_attr() ? l->attr : r->attr;
      out.a = l->a + sign * r->a;
      out.b = l->b + sign * r->b;
      return out;
    }
    case ExprOp::kMul: {
      auto l = LinearInPrev(e.lhs());
      auto r = LinearInPrev(e.rhs());
      if (!l || !r) return std::nullopt;
      if (l->has_attr() && r->has_attr()) return std::nullopt;  // quadratic
      if (r->has_attr()) std::swap(l, r);
      // l may have the attr; r is constant.
      return Linear{l->attr, l->a * r->b, l->b * r->b};
    }
    case ExprOp::kDiv: {
      auto l = LinearInPrev(e.lhs());
      auto r = LinearInPrev(e.rhs());
      if (!l || !r) return std::nullopt;
      if (r->has_attr() || r->b == 0.0) return std::nullopt;
      return Linear{l->attr, l->a / r->b, l->b / r->b};
    }
    default:
      return std::nullopt;
  }
}

// True when `e` references only the next event and constants.
bool NextOnly(const Expr& e) {
  std::vector<AttrRef> base;
  std::vector<AttrRef> next;
  e.CollectRefs(&base, &next);
  return base.empty();
}

std::optional<RangeExtraction::Cmp> AsCmp(ExprOp op, bool mirrored) {
  using Cmp = RangeExtraction::Cmp;
  switch (op) {
    case ExprOp::kLt:
      return mirrored ? Cmp::kGt : Cmp::kLt;
    case ExprOp::kLe:
      return mirrored ? Cmp::kGe : Cmp::kLe;
    case ExprOp::kGt:
      return mirrored ? Cmp::kLt : Cmp::kGt;
    case ExprOp::kGe:
      return mirrored ? Cmp::kLe : Cmp::kGe;
    case ExprOp::kEq:
      return Cmp::kEq;
    default:
      return std::nullopt;
  }
}

RangeExtraction::Cmp FlipForNegativeScale(RangeExtraction::Cmp cmp) {
  using Cmp = RangeExtraction::Cmp;
  switch (cmp) {
    case Cmp::kLt:
      return Cmp::kGt;
    case Cmp::kLe:
      return Cmp::kGe;
    case Cmp::kGt:
      return Cmp::kLt;
    case Cmp::kGe:
      return Cmp::kLe;
    case Cmp::kEq:
      return Cmp::kEq;
  }
  return cmp;
}

}  // namespace

KeyBounds RangeExtraction::ResolveBounds(Value rhs) const {
  // rhs_ is next-only, so ComputeBounds passes `next` for both sides; the
  // prev argument is never read.
  KeyBounds out;
  if (!rhs.is_numeric()) {
    // Non-numeric bound: empty range (the residual filter would reject
    // every candidate anyway).
    out.lo = 1.0;
    out.hi = 0.0;
    return out;
  }
  double bound = (rhs.ToDouble() - b_) / a_;
  Cmp cmp = (a_ < 0.0) ? FlipForNegativeScale(cmp_) : cmp_;
  switch (cmp) {
    case Cmp::kLt:
      out.hi = bound;
      out.hi_strict = true;
      break;
    case Cmp::kLe:
      out.hi = bound;
      break;
    case Cmp::kGt:
      out.lo = bound;
      out.lo_strict = true;
      break;
    case Cmp::kGe:
      out.lo = bound;
      break;
    case Cmp::kEq:
      out.lo = bound;
      out.hi = bound;
      break;
  }
  return out;
}

std::optional<RangeExtraction> RangeExtraction::FromPredicate(
    const Expr& edge_pred) {
  auto cmp = AsCmp(edge_pred.op(), /*mirrored=*/false);
  if (!cmp) return std::nullopt;

  // Try `linear(prev) CMP next_only`, then the mirrored orientation.
  for (int orientation = 0; orientation < 2; ++orientation) {
    const Expr& prev_side =
        (orientation == 0) ? edge_pred.lhs() : edge_pred.rhs();
    const Expr& next_side =
        (orientation == 0) ? edge_pred.rhs() : edge_pred.lhs();
    auto linear = LinearInPrev(prev_side);
    if (!linear || !linear->has_attr() || linear->a == 0.0) continue;
    if (!NextOnly(next_side)) continue;
    auto oriented_cmp = AsCmp(edge_pred.op(), /*mirrored=*/orientation == 1);
    GRETA_CHECK(oriented_cmp.has_value());
    RangeExtraction out;
    out.key_attr_ = linear->attr;
    out.cmp_ = *oriented_cmp;
    out.a_ = linear->a;
    out.b_ = linear->b;
    out.rhs_ = std::shared_ptr<const Expr>(next_side.Clone().release());
    if (out.rhs_->op() == ExprOp::kNextAttr) {
      out.rhs_attr_ = out.rhs_->attr_ref().attr;
    }
    return out;
  }
  return std::nullopt;
}

}  // namespace greta
