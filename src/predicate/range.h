#ifndef GRETA_PREDICATE_RANGE_H_
#define GRETA_PREDICATE_RANGE_H_

#include <limits>
#include <memory>
#include <optional>

#include "predicate/expr.h"

namespace greta {

/// A key range over the previous event's sort attribute, computed from one
/// edge predicate and the new event. Used by the GRETA runtime to turn the
/// predecessor scan into a Vertex-Tree range query (Section 7: "we utilize a
/// tree index that enables efficient range queries ... events are sorted by
/// the most selective predicate").
struct KeyBounds {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool lo_strict = false;
  bool hi_strict = false;

  bool Contains(double key) const {
    if (lo_strict ? key <= lo : key < lo) return false;
    if (hi_strict ? key >= hi : key > hi) return false;
    return true;
  }
};

/// Compiled form of an edge predicate of the shape
///     a * prev.attr + b   CMP   f(next)
/// (or mirrored), where f references only the next event and constants.
/// ComputeBounds() resolves it to a key range once the next event is known.
class RangeExtraction {
 public:
  enum class Cmp { kLt, kLe, kGt, kGe, kEq };

  /// Attribute of the *previous* event serving as the tree sort key.
  AttrId key_attr() const { return key_attr_; }

  /// Resolves the bounds for a concrete next event (an `Event` or a batch
  /// row converts implicitly). The common bare `NEXT(T).attr` right-hand
  /// side is read directly (per-insert hot path); composite expressions
  /// evaluate through rhs_.
  KeyBounds ComputeBounds(const EventView next) const {
    return ResolveBounds(rhs_attr_ == kInvalidAttr
                             ? rhs_->EvalEdge(next, next)
                             : next.attr(rhs_attr_));
  }

  /// Attempts extraction; nullopt when the predicate is not of an
  /// extractable shape (the runtime then falls back to scan + filter).
  static std::optional<RangeExtraction> FromPredicate(const Expr& edge_pred);

 private:
  KeyBounds ResolveBounds(Value rhs) const;

  AttrId key_attr_ = kInvalidAttr;
  AttrId rhs_attr_ = kInvalidAttr;  // set when rhs_ is a bare NEXT(T).attr
  Cmp cmp_ = Cmp::kEq;
  double a_ = 1.0;
  double b_ = 0.0;
  std::shared_ptr<const Expr> rhs_;  // next-only expression
};

}  // namespace greta

#endif  // GRETA_PREDICATE_RANGE_H_
