#ifndef GRETA_PREDICATE_EXPR_H_
#define GRETA_PREDICATE_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/catalog.h"
#include "common/event.h"
#include "common/value.h"

namespace greta {

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Operators of the predicate expression grammar (Figure 2).
enum class ExprOp {
  kConst,     // literal
  kAttr,      // EventType.attr           (the earlier event of an edge)
  kNextAttr,  // NEXT(EventType).attr     (the later event of an edge)
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

/// An attribute reference inside a predicate.
struct AttrRef {
  TypeId type = kInvalidType;
  AttrId attr = kInvalidAttr;
  bool operator==(const AttrRef& o) const {
    return type == o.type && attr == o.attr;
  }
};

/// Immutable predicate expression tree over event attributes (WHERE clause,
/// Figure 2). `EventType.attr` references the event itself (vertex
/// predicates) or the earlier event of an adjacency (edge predicates);
/// `NEXT(EventType).attr` references the later event of an adjacency.
class Expr {
 public:
  static ExprPtr Const(Value v);
  static ExprPtr Attr(TypeId type, AttrId attr);
  static ExprPtr NextAttr(TypeId type, AttrId attr);
  static ExprPtr Binary(ExprOp op, ExprPtr lhs, ExprPtr rhs);

  ExprOp op() const { return op_; }
  const Value& const_value() const { return const_; }
  const AttrRef& attr_ref() const { return ref_; }
  const Expr& lhs() const { return *lhs_; }
  const Expr& rhs() const { return *rhs_; }

  ExprPtr Clone() const;

  /// Evaluates a vertex predicate on a single event. kNextAttr aborts.
  /// Takes the 16-byte attribute view (an `Event` converts implicitly); the
  /// GRETA graph passes the compact arena-backed payload of stored vertices.
  Value EvalVertex(const EventView e) const;

  /// Evaluates an edge predicate on an adjacency: kAttr reads `prev`,
  /// kNextAttr reads `next`.
  Value EvalEdge(const EventView prev, const EventView next) const;

  /// Collects kAttr references into `base` and kNextAttr into `next`.
  void CollectRefs(std::vector<AttrRef>* base,
                   std::vector<AttrRef>* next) const;

  std::string ToString(const Catalog& catalog) const;

 private:
  Expr() = default;

  ExprOp op_ = ExprOp::kConst;
  Value const_;
  AttrRef ref_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// Builds `lhs AND rhs` from a conjunct list; returns nullptr for empty.
ExprPtr ConjoinAll(std::vector<ExprPtr> conjuncts);

}  // namespace greta

#endif  // GRETA_PREDICATE_EXPR_H_
