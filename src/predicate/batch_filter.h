#ifndef GRETA_PREDICATE_BATCH_FILTER_H_
#define GRETA_PREDICATE_BATCH_FILTER_H_

#include <cstdint>
#include <vector>

#include "common/event_batch.h"
#include "predicate/expr.h"

namespace greta {

/// Batch evaluator for a conjunction of vertex predicates: classifies each
/// predicate once at plan time and filters a selection vector of batch rows
/// with tight per-predicate loops instead of one recursive expression-tree
/// walk per (row, predicate).
///
/// Predicates of the shape `attr CMP const` (or mirrored) run as a direct
/// column compare; every other shape falls back to Expr::EvalVertex per
/// surviving row. Results are exactly EvalVertex(...).Truthy() for every
/// shape — the compare mirrors Value::Compare, including null rejection and
/// exact int/int ordering — so selection is bit-identical to the scalar
/// path by construction.
class CompiledVertexFilter {
 public:
  CompiledVertexFilter() = default;
  explicit CompiledVertexFilter(const std::vector<const Expr*>& preds);

  /// Compacts `rows` (indices into `batch`) in place to those passing every
  /// predicate; returns the surviving count. Rows keep their relative order.
  size_t Filter(const EventBatch& batch, uint32_t* rows, size_t n) const;

  bool trivial() const { return fast_.empty() && general_.empty(); }

 private:
  struct AttrCmpConst {
    AttrId attr = kInvalidAttr;
    ExprOp op = ExprOp::kEq;
    Value rhs;
    bool attr_on_left = true;
  };

  std::vector<AttrCmpConst> fast_;
  std::vector<const Expr*> general_;
};

/// Batch evaluator for a conjunction of residual *edge* predicates: the
/// batch run kernels collect one predecessor-entry span per (transition,
/// equal-timestamp run) and must re-evaluate the predicates the Vertex
/// Tree's key range does not enforce, once per (entry, event) pair. This
/// filter classifies each predicate at plan time and compacts an index
/// selection over the collected entries with one tight pass per predicate,
/// resolving the next-event side once per event instead of re-walking the
/// expression tree per pair.
///
/// Fast shapes (either orientation):
///   prev.attr CMP NEXT.attr   — next side resolved once per event
///   prev.attr CMP const       — next side not read at all
/// Everything else falls back to Expr::EvalEdge per surviving pair. Results
/// are exactly EvalEdge(prev, next).Truthy() for every shape, so selection
/// is bit-identical to the scalar scan's inline residual checks.
class CompiledEdgeFilter {
 public:
  CompiledEdgeFilter() = default;
  explicit CompiledEdgeFilter(const std::vector<const Expr*>& preds);

  /// Compacts `idx` (indices into `prevs`) in place to the pairs
  /// (prevs[idx[i]], next) passing every predicate; returns the surviving
  /// count. Indices keep their relative order (the fold that follows must
  /// replay the scalar scan's entry order exactly).
  size_t Filter(const EventView next, const EventView* prevs, uint32_t* idx,
                size_t n) const;

  bool trivial() const { return fast_.empty() && general_.empty(); }

 private:
  struct PrevCmp {
    AttrId prev_attr = kInvalidAttr;
    ExprOp op = ExprOp::kEq;
    AttrId next_attr = kInvalidAttr;  // kInvalidAttr: compare against rhs
    Value rhs;
    bool prev_on_left = true;
  };

  std::vector<PrevCmp> fast_;
  std::vector<const Expr*> general_;
};

}  // namespace greta

#endif  // GRETA_PREDICATE_BATCH_FILTER_H_
