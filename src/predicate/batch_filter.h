#ifndef GRETA_PREDICATE_BATCH_FILTER_H_
#define GRETA_PREDICATE_BATCH_FILTER_H_

#include <cstdint>
#include <vector>

#include "common/column_projection.h"
#include "common/event_batch.h"
#include "common/simd.h"
#include "predicate/expr.h"

namespace greta {

/// Batch evaluator for a conjunction of vertex predicates: classifies each
/// predicate once at plan time and filters a selection vector of batch rows
/// with tight per-predicate loops instead of one recursive expression-tree
/// walk per (row, predicate).
///
/// Predicates of the shape `attr CMP const` (or mirrored) run as a direct
/// column compare; every other shape falls back to Expr::EvalVertex per
/// surviving row. Results are exactly EvalVertex(...).Truthy() for every
/// shape — the compare mirrors Value::Compare, including null rejection and
/// exact int/int ordering — so selection is bit-identical to the scalar
/// path by construction.
class CompiledVertexFilter {
 public:
  CompiledVertexFilter() = default;
  explicit CompiledVertexFilter(const std::vector<const Expr*>& preds);

  /// Compacts `rows` (indices into `batch`) in place to those passing every
  /// predicate; returns the surviving count. Rows keep their relative order.
  size_t Filter(const EventBatch& batch, uint32_t* rows, size_t n) const;

  /// Vectorized variant over a group-dense projection: `pos[i]` is a lane
  /// index into `proj`'s columns (built with ProjectRows), and
  /// `pos_to_row[pos[i]]` is the batch row it stands for. Fast predicates
  /// whose attribute is projected run through the dispatched filter kernel
  /// (positions within an equal-timestamp run are consecutive, so the
  /// kernels' contiguous-load paths apply); the rest map positions back to
  /// batch rows and take the scalar loops. Compacts `pos` in place and
  /// returns the surviving count; selection is bit-identical to
  /// Filter(batch, ...) over the corresponding rows.
  size_t Filter(const EventBatch& batch, const ColumnProjection& proj,
                const uint32_t* pos_to_row, uint32_t* pos, size_t n) const;

  /// Appends the attribute positions of the fast predicates (deduplicated
  /// against `attrs`' existing contents) — the candidate projection set.
  void AppendFastAttrs(std::vector<AttrId>* attrs) const;

  /// Appends one entry per fast predicate, duplicates included — the use
  /// counts behind the graphs' cost-based projection policy (decomposing a
  /// column costs one pass over every row; it only pays when enough kernel
  /// passes read it back).
  void AppendFastAttrUses(std::vector<AttrId>* attrs) const;

  bool trivial() const { return fast_.empty() && general_.empty(); }

 private:
  struct AttrCmpConst {
    AttrId attr = kInvalidAttr;
    ExprOp op = ExprOp::kEq;
    Value rhs;
    bool attr_on_left = true;
    simd::CmpConst cmp;  // plan-time normalized form for the kernels
  };

  std::vector<AttrCmpConst> fast_;
  std::vector<const Expr*> general_;
};

/// Batch evaluator for a conjunction of residual *edge* predicates: the
/// batch run kernels collect one predecessor-entry span per (transition,
/// equal-timestamp run) and must re-evaluate the predicates the Vertex
/// Tree's key range does not enforce, once per (entry, event) pair. This
/// filter classifies each predicate at plan time and compacts an index
/// selection over the collected entries with one tight pass per predicate,
/// resolving the next-event side once per event instead of re-walking the
/// expression tree per pair.
///
/// Fast shapes (either orientation):
///   prev.attr CMP NEXT.attr   — next side resolved once per event
///   prev.attr CMP const       — next side not read at all
/// Everything else falls back to Expr::EvalEdge per surviving pair. Results
/// are exactly EvalEdge(prev, next).Truthy() for every shape, so selection
/// is bit-identical to the scalar scan's inline residual checks.
class CompiledEdgeFilter {
 public:
  /// Dense prev-side columns for the fast predicates, built once per
  /// (transition, equal-timestamp run) span and reused across every event
  /// in the run. Slot s holds fast predicate s's prev_attr column.
  class PrevColumns {
   public:
    simd::NumColumn column(size_t slot) const {
      const size_t base = slot * rows_;
      simd::NumColumn col;
      col.dval = dval_.data() + base;
      col.ival = ival_.data() + base;
      col.tag = tag_.data() + base;
      return col;
    }

   private:
    friend class CompiledEdgeFilter;
    std::vector<double> dval_;  // slot-major [slot][row]
    std::vector<int64_t> ival_;
    std::vector<uint8_t> tag_;
    size_t rows_ = 0;
  };

  CompiledEdgeFilter() = default;
  explicit CompiledEdgeFilter(const std::vector<const Expr*>& preds);

  /// Compacts `idx` (indices into `prevs`) in place to the pairs
  /// (prevs[idx[i]], next) passing every predicate; returns the surviving
  /// count. Indices keep their relative order (the fold that follows must
  /// replay the scalar scan's entry order exactly).
  size_t Filter(const EventView next, const EventView* prevs, uint32_t* idx,
                size_t n) const;

  /// Decomposes prevs[0..count) into `out`'s fast-predicate columns.
  void BuildPrevColumns(const EventView* prevs, size_t count,
                        PrevColumns* out) const;

  /// Vectorized variant: fast predicates run through the dispatched filter
  /// kernel over `cols` (lane = idx[i] - rebase; NEXT-attr operands are
  /// decomposed once per call), general predicates fall back to
  /// Expr::EvalEdge over prevs[idx[i]]. Bit-identical to the scalar Filter.
  size_t Filter(const EventView next, const EventView* prevs,
                const PrevColumns& cols, uint32_t rebase, uint32_t* idx,
                size_t n) const;

  bool trivial() const { return fast_.empty() && general_.empty(); }
  bool has_fast() const { return !fast_.empty(); }

 private:
  struct PrevCmp {
    AttrId prev_attr = kInvalidAttr;
    ExprOp op = ExprOp::kEq;
    AttrId next_attr = kInvalidAttr;  // kInvalidAttr: compare against rhs
    Value rhs;
    bool prev_on_left = true;
    simd::CmpConst cmp;  // valid for the const-rhs shape only
  };

  std::vector<PrevCmp> fast_;
  std::vector<const Expr*> general_;
};

}  // namespace greta

#endif  // GRETA_PREDICATE_BATCH_FILTER_H_
