#ifndef GRETA_PREDICATE_BATCH_FILTER_H_
#define GRETA_PREDICATE_BATCH_FILTER_H_

#include <cstdint>
#include <vector>

#include "common/event_batch.h"
#include "predicate/expr.h"

namespace greta {

/// Batch evaluator for a conjunction of vertex predicates: classifies each
/// predicate once at plan time and filters a selection vector of batch rows
/// with tight per-predicate loops instead of one recursive expression-tree
/// walk per (row, predicate).
///
/// Predicates of the shape `attr CMP const` (or mirrored) run as a direct
/// column compare; every other shape falls back to Expr::EvalVertex per
/// surviving row. Results are exactly EvalVertex(...).Truthy() for every
/// shape — the compare mirrors Value::Compare, including null rejection and
/// exact int/int ordering — so selection is bit-identical to the scalar
/// path by construction.
class CompiledVertexFilter {
 public:
  CompiledVertexFilter() = default;
  explicit CompiledVertexFilter(const std::vector<const Expr*>& preds);

  /// Compacts `rows` (indices into `batch`) in place to those passing every
  /// predicate; returns the surviving count. Rows keep their relative order.
  size_t Filter(const EventBatch& batch, uint32_t* rows, size_t n) const;

  bool trivial() const { return fast_.empty() && general_.empty(); }

 private:
  struct AttrCmpConst {
    AttrId attr = kInvalidAttr;
    ExprOp op = ExprOp::kEq;
    Value rhs;
    bool attr_on_left = true;
  };

  std::vector<AttrCmpConst> fast_;
  std::vector<const Expr*> general_;
};

}  // namespace greta

#endif  // GRETA_PREDICATE_BATCH_FILTER_H_
