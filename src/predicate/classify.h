#ifndef GRETA_PREDICATE_CLASSIFY_H_
#define GRETA_PREDICATE_CLASSIFY_H_

#include <vector>

#include "common/status.h"
#include "predicate/expr.h"

namespace greta {

/// Classification of WHERE conjuncts (Section 6): vertex (local) predicates
/// filter single events; edge predicates constrain adjacent event pairs and
/// are evaluated during graph construction. (Equivalence predicates are a
/// separate clause — they partition the stream and are carried on the query
/// spec, not as expressions.)
enum class PredicateClass {
  kConstant,  // no attribute references
  kLocal,     // references exactly one event type, no NEXT
  kEdge,      // references one base type and one NEXT type
};

struct ClassifiedPredicate {
  PredicateClass cls = PredicateClass::kConstant;
  TypeId base_type = kInvalidType;  // kLocal and kEdge
  TypeId next_type = kInvalidType;  // kEdge only
  const Expr* expr = nullptr;
};

/// Classifies one conjunct. Errors on shapes the engine cannot evaluate
/// (references to two different base types, NEXT of several types, a NEXT
/// reference without a base reference, etc.).
StatusOr<ClassifiedPredicate> ClassifyPredicate(const Expr& expr);

}  // namespace greta

#endif  // GRETA_PREDICATE_CLASSIFY_H_
