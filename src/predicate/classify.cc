#include "predicate/classify.h"

namespace greta {

StatusOr<ClassifiedPredicate> ClassifyPredicate(const Expr& expr) {
  std::vector<AttrRef> base;
  std::vector<AttrRef> next;
  expr.CollectRefs(&base, &next);

  ClassifiedPredicate out;
  out.expr = &expr;

  for (const AttrRef& r : base) {
    if (out.base_type == kInvalidType) {
      out.base_type = r.type;
    } else if (out.base_type != r.type) {
      return Status::Unsupported(
          "predicate references two different event types without NEXT; "
          "only single-type (vertex) and adjacent-pair (edge) predicates "
          "are evaluable (Section 6)");
    }
  }
  for (const AttrRef& r : next) {
    if (out.next_type == kInvalidType) {
      out.next_type = r.type;
    } else if (out.next_type != r.type) {
      return Status::Unsupported(
          "predicate references NEXT of two different event types");
    }
  }

  if (base.empty() && next.empty()) {
    out.cls = PredicateClass::kConstant;
    return out;
  }
  if (next.empty()) {
    out.cls = PredicateClass::kLocal;
    return out;
  }
  if (base.empty()) {
    return Status::Unsupported(
        "predicate references NEXT without referencing the previous event; "
        "rewrite it as a vertex predicate on the referenced type");
  }
  out.cls = PredicateClass::kEdge;
  return out;
}

}  // namespace greta
