#ifndef GRETA_BENCH_UTIL_HARNESS_H_
#define GRETA_BENCH_UTIL_HARNESS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/cet.h"
#include "baselines/flink_flat.h"
#include "baselines/sase.h"
#include "bench_util/metrics.h"
#include "core/engine.h"

namespace greta::bench {

/// Minimal --key=value flag parsing for the benchmark binaries.
class Flags {
 public:
  Flags(int argc, char** argv);

  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Fixed-width text table used to print the figure reproductions.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Builds every engine the paper compares (Section 10.1): GRETA plus the
/// two-step baselines with a work budget. Returns name/engine pairs; an
/// engine that fails to build is reported and skipped.
std::vector<std::unique_ptr<EngineInterface>> MakeAllEngines(
    const Catalog* catalog, const QuerySpec& spec, size_t baseline_budget,
    CounterMode mode = CounterMode::kModular);

/// Prints the standard figure banner.
void PrintHeader(const std::string& figure, const std::string& description,
                 const std::string& expectation);

}  // namespace greta::bench

#endif  // GRETA_BENCH_UTIL_HARNESS_H_
