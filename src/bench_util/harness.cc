#include "bench_util/harness.h"

#include <cstdio>
#include <cstdlib>

namespace greta::bench {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg.substr(2)] = "true";
    } else {
      values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
}

int64_t Flags::GetInt(const std::string& key, int64_t default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& key, bool default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return it->second != "false" && it->second != "0";
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("  ");
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : "";
      std::printf("%-*s  ", static_cast<int>(widths[i]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::vector<std::string> rule;
  rule.reserve(widths.size());
  for (size_t w : widths) rule.push_back(std::string(w, '-'));
  print_row(rule);
  for (const auto& row : rows_) print_row(row);
}

std::vector<std::unique_ptr<EngineInterface>> MakeAllEngines(
    const Catalog* catalog, const QuerySpec& spec, size_t baseline_budget,
    CounterMode mode) {
  std::vector<std::unique_ptr<EngineInterface>> engines;

  EngineOptions greta_options;
  greta_options.counter_mode = mode;
  auto greta = GretaEngine::Create(catalog, spec.Clone(), greta_options);
  if (greta.ok()) {
    engines.push_back(std::move(greta).value());
  } else {
    std::fprintf(stderr, "GRETA: %s\n", greta.status().ToString().c_str());
  }

  TwoStepOptions two_step;
  two_step.counter_mode = mode;
  two_step.work_budget = baseline_budget;

  auto sase = SaseEngine::Create(catalog, spec.Clone(), two_step);
  if (sase.ok()) engines.push_back(std::move(sase).value());
  auto cet = CetEngine::Create(catalog, spec.Clone(), two_step);
  if (cet.ok()) engines.push_back(std::move(cet).value());
  auto flink = FlinkFlatEngine::Create(catalog, spec.Clone(), two_step);
  if (flink.ok()) engines.push_back(std::move(flink).value());
  return engines;
}

void PrintHeader(const std::string& figure, const std::string& description,
                 const std::string& expectation) {
  std::printf("\n=== %s ===\n%s\nPaper shape: %s\n\n", figure.c_str(),
              description.c_str(), expectation.c_str());
}

}  // namespace greta::bench
