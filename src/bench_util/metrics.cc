#include "bench_util/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "telemetry/exporters.h"
#include "telemetry/telemetry.h"

namespace greta::bench {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string Format(double value, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g%s", value, suffix);
  return buf;
}

// Arrival→emit samples for one run: one sample per drain that returned at
// least one result row, measured from the ingest tick of the work just
// submitted. Exact nearest-rank percentiles (the telemetry histograms are
// log2-bucketed; the bench wants precise numbers).
class LatencySamples {
 public:
  void Record(double ms) { samples_ms_.push_back(ms); }

  void Finish(RunResult* result) {
    result->latency_samples = samples_ms_.size();
    if (samples_ms_.empty()) return;
    std::sort(samples_ms_.begin(), samples_ms_.end());
    result->latency_p50_ms = Percentile(0.50);
    result->latency_p95_ms = Percentile(0.95);
    result->latency_p99_ms = Percentile(0.99);
  }

 private:
  double Percentile(double q) const {
    const size_t n = samples_ms_.size();
    size_t rank = static_cast<size_t>(q * static_cast<double>(n) + 0.999999);
    if (rank < 1) rank = 1;
    if (rank > n) rank = n;
    return samples_ms_[rank - 1];
  }

  std::vector<double> samples_ms_;
};

}  // namespace

RunResult RunStream(EngineInterface* engine, const Stream& stream) {
  RunResult result;
  result.engine = engine->name();
  LatencySamples latency;
  Clock::time_point run_start = Clock::now();
  for (const Event& e : stream.events()) {
    Clock::time_point arrival = Clock::now();
    Status s = engine->Process(e);
    if (!s.ok()) break;
    std::vector<ResultRow> rows = engine->TakeResults();
    if (!rows.empty()) {
      result.rows_emitted += rows.size();
      latency.Record(SecondsSince(arrival) * 1e3);
    }
    if (engine->stats().dnf) break;
  }
  Clock::time_point flush_arrival = Clock::now();
  (void)engine->Flush();
  std::vector<ResultRow> rows = engine->TakeResults();
  if (!rows.empty()) {
    result.rows_emitted += rows.size();
    latency.Record(SecondsSince(flush_arrival) * 1e3);
  }
  result.total_seconds = SecondsSince(run_start);
  latency.Finish(&result);
  result.stats = engine->stats();
  result.dnf = result.stats.dnf;
  result.peak_memory_bytes = result.stats.peak_bytes;
  result.throughput_eps =
      result.total_seconds > 0.0
          ? static_cast<double>(stream.size()) / result.total_seconds
          : 0.0;
#if GRETA_TELEMETRY
  telemetry::MetricRegistry& reg = telemetry::MetricRegistry::Default();
  if (reg.Armed()) {
    result.telemetry_json =
        telemetry::ExportJson(reg, /*include_trace=*/false);
  }
#endif
  return result;
}

RunResult RunStreamBatched(EngineInterface* engine, const Stream& stream,
                           const IngestOptions& ingest) {
  if (ingest.batch_size == 0) return RunStream(engine, stream);
  RunResult result;
  result.engine = engine->name();
  LatencySamples latency;
  Clock::time_point run_start = Clock::now();
  EventBatch batch;
  batch.Reserve(ingest.batch_size);
  const std::vector<Event>& events = stream.events();
  size_t i = 0;
  bool failed = false;
  while (i < events.size() && !failed) {
    batch.clear();
    for (; i < events.size() && batch.size() < ingest.batch_size; ++i) {
      batch.Append(events[i]);
    }
    if (ingest.sort_within_batch) batch.SortByTime();
    Clock::time_point arrival = Clock::now();
    // Stamp the batch's arrival column so engines that propagate it (the
    // sharded runtime) fill their e2e latency histograms with real ticks.
    batch.StampArrivals(telemetry::SteadyNowNs());
    Status s = engine->ProcessBatch(batch);
    if (!s.ok()) {
      failed = true;
      break;
    }
    std::vector<ResultRow> rows = engine->TakeResults();
    if (!rows.empty()) {
      result.rows_emitted += rows.size();
      latency.Record(SecondsSince(arrival) * 1e3);
    }
    if (engine->stats().dnf) break;
  }
  Clock::time_point flush_arrival = Clock::now();
  (void)engine->Flush();
  std::vector<ResultRow> rows = engine->TakeResults();
  if (!rows.empty()) {
    result.rows_emitted += rows.size();
    latency.Record(SecondsSince(flush_arrival) * 1e3);
  }
  result.total_seconds = SecondsSince(run_start);
  latency.Finish(&result);
  result.stats = engine->stats();
  result.dnf = result.stats.dnf;
  result.peak_memory_bytes = result.stats.peak_bytes;
  result.throughput_eps =
      result.total_seconds > 0.0
          ? static_cast<double>(stream.size()) / result.total_seconds
          : 0.0;
#if GRETA_TELEMETRY
  telemetry::MetricRegistry& reg = telemetry::MetricRegistry::Default();
  if (reg.Armed()) {
    result.telemetry_json =
        telemetry::ExportJson(reg, /*include_trace=*/false);
  }
#endif
  return result;
}

std::string FormatCount(double value) {
  if (value >= 1e9) return Format(value / 1e9, "G");
  if (value >= 1e6) return Format(value / 1e6, "M");
  if (value >= 1e3) return Format(value / 1e3, "k");
  return Format(value, "");
}

std::string FormatBytes(double bytes) {
  // Thresholds at 1000x the unit keep the mantissa below 1000 (no "1e+03KB").
  if (bytes >= 1000.0 * 1024.0 * 1024.0) {
    return Format(bytes / (1024.0 * 1024.0 * 1024.0), "GB");
  }
  if (bytes >= 1000.0 * 1024.0) return Format(bytes / (1024.0 * 1024.0), "MB");
  if (bytes >= 1000.0) return Format(bytes / 1024.0, "KB");
  return Format(bytes, "B");
}

std::string FormatMillis(double ms) {
  if (ms >= 60000.0) return Format(ms / 60000.0, "min");
  if (ms >= 1000.0) return Format(ms / 1000.0, "s");
  return Format(ms, "ms");
}

std::string RunResult::LatencyCell() const {
  if (dnf) return "DNF";
  if (latency_samples == 0) return "-";
  return FormatMillis(latency_p99_ms);
}

std::string RunResult::MemoryCell() const {
  if (dnf) return "DNF";
  return FormatBytes(static_cast<double>(peak_memory_bytes));
}

std::string RunResult::ThroughputCell() const {
  if (dnf) return "DNF";
  return FormatCount(throughput_eps) + "/s";
}

}  // namespace greta::bench
