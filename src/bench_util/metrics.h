#ifndef GRETA_BENCH_UTIL_METRICS_H_
#define GRETA_BENCH_UTIL_METRICS_H_

#include <string>

#include "common/stream.h"
#include "core/engine_interface.h"

namespace greta::bench {

/// Metrics of one engine run over one stream (Section 10.1):
///  - latency: arrival-to-emit distribution. Every event (or batch) is
///    stamped with its ingest tick on the way in; whenever a drain returns
///    at least one result row, the harness records (now - arrival of the
///    work just submitted) as one sample. p50/p95/p99 are exact
///    nearest-rank percentiles over those samples — not the old single
///    "peak call" number, which under per-batch draining only ever
///    measured the longest synchronous call. Batched runs against the
///    sharded runtime additionally stamp the batch's arrival column, so
///    the per-shard `greta_runtime_e2e_latency_ns` histograms fill with
///    the same ticks;
///  - throughput: events processed per second of total wall time;
///  - memory: peak bytes of the engine's runtime data structures.
struct RunResult {
  std::string engine;
  double total_seconds = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  size_t latency_samples = 0;
  double throughput_eps = 0.0;
  size_t peak_memory_bytes = 0;
  size_t rows_emitted = 0;
  bool dnf = false;
  EngineStats stats;
  /// JSON telemetry snapshot (exporters.h) captured right after the run,
  /// without the trace payload. Empty when telemetry is compiled out or
  /// runtime-disabled. The registry is process-wide, so a snapshot taken
  /// after several runs aggregates all of them — benches that want
  /// per-run numbers reset the registry between runs.
  std::string telemetry_json;

  /// "DNF" or a value with a unit, for table cells. LatencyCell prints the
  /// p99 ("-" when no window ever closed, so there are no samples).
  std::string LatencyCell() const;
  std::string MemoryCell() const;
  std::string ThroughputCell() const;
};

/// Replays `stream` through `engine` as fast as possible, measuring the
/// metrics above.
RunResult RunStream(EngineInterface* engine, const Stream& stream);

/// Like RunStream but feeding the engine through ProcessBatch with columnar
/// batches of `ingest.batch_size` events (0 delegates to RunStream). Results
/// drain after every batch, so latency samples are per-batch rather than
/// per-event; each batch's arrival column is stamped so runtimes that
/// propagate it record true end-to-end latency in telemetry.
RunResult RunStreamBatched(EngineInterface* engine, const Stream& stream,
                           const IngestOptions& ingest);

/// Human-friendly number formatting ("1.2M", "34.5k", "0.8").
std::string FormatCount(double value);
std::string FormatBytes(double bytes);
std::string FormatMillis(double ms);

}  // namespace greta::bench

#endif  // GRETA_BENCH_UTIL_METRICS_H_
