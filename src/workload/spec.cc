#include "workload/spec.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <utility>

#include "query/parser.h"

namespace greta::workload {

namespace {

// ------------------------------------------------------------------ JSON
// Minimal recursive-descent JSON parser — the toolchain bakes in no JSON
// library and the container must not grow one, so workload files are read
// by this ~150-line subset (objects, arrays, strings with the common
// escapes, numbers, booleans, null). Errors carry byte offsets.

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> items;                          // kArray
  std::vector<std::pair<std::string, Json>> fields;  // kObject, file order

  const Json* Find(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  StatusOr<Json> Parse() {
    StatusOr<Json> value = ParseValue();
    if (!value.ok()) return value;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::ParseError("workload spec JSON, byte " +
                              std::to_string(pos_) + ": " + message);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<Json> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      StatusOr<std::string> s = ParseString();
      if (!s.ok()) return s.status();
      Json out;
      out.kind = Json::Kind::kString;
      out.str = std::move(s).value();
      return out;
    }
    if (c == 't' || c == 'f') return ParseKeyword(c == 't');
    if (c == 'n') {
      if (text_.substr(pos_, 4) != "null") return Error("expected 'null'");
      pos_ += 4;
      return Json{};
    }
    return ParseNumber();
  }

  StatusOr<Json> ParseKeyword(bool value) {
    std::string_view word = value ? "true" : "false";
    if (text_.substr(pos_, word.size()) != word) {
      return Error("expected 'true' or 'false'");
    }
    pos_ += word.size();
    Json out;
    out.kind = Json::Kind::kBool;
    out.boolean = value;
    return out;
  }

  StatusOr<Json> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Error("malformed number '" + token + "'");
    }
    Json out;
    out.kind = Json::Kind::kNumber;
    out.number = value;
    return out;
  }

  StatusOr<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          default:
            return Error(std::string("unsupported escape '\\") + esc + "'");
        }
      } else {
        out += c;
      }
    }
    return Error("unterminated string");
  }

  StatusOr<Json> ParseArray() {
    if (!Consume('[')) return Error("expected '['");
    Json out;
    out.kind = Json::Kind::kArray;
    if (Consume(']')) return out;
    for (;;) {
      StatusOr<Json> item = ParseValue();
      if (!item.ok()) return item.status();
      out.items.push_back(std::move(item).value());
      if (Consume(']')) return out;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<Json> ParseObject() {
    if (!Consume('{')) return Error("expected '{'");
    Json out;
    out.kind = Json::Kind::kObject;
    if (Consume('}')) return out;
    for (;;) {
      SkipSpace();
      StatusOr<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      if (!Consume(':')) return Error("expected ':' after object key");
      StatusOr<Json> value = ParseValue();
      if (!value.ok()) return value.status();
      out.fields.emplace_back(std::move(key).value(),
                              std::move(value).value());
      if (Consume('}')) return out;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// ------------------------------------------------------- field extraction

Status ExpectKeys(const Json& object, const std::string& block,
                  std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : object.fields) {
    (void)value;
    bool known = false;
    for (const char* a : allowed) known |= (key == a);
    if (!known) {
      return Status::InvalidArgument("workload spec: unknown key '" + key +
                                     "' in " + block);
    }
  }
  return Status::Ok();
}

Status ReadInt(const Json& object, const char* key, int64_t* out) {
  const Json* v = object.Find(key);
  if (v == nullptr) return Status::Ok();
  if (v->kind != Json::Kind::kNumber ||
      v->number != std::floor(v->number)) {
    return Status::InvalidArgument(std::string("workload spec: '") + key +
                                   "' must be an integer");
  }
  *out = static_cast<int64_t>(v->number);
  return Status::Ok();
}

Status ReadSize(const Json& object, const char* key, size_t* out) {
  int64_t value = static_cast<int64_t>(*out);
  Status s = ReadInt(object, key, &value);
  if (!s.ok()) return s;
  if (value < 0) {
    return Status::InvalidArgument(std::string("workload spec: '") + key +
                                   "' must be non-negative");
  }
  *out = static_cast<size_t>(value);
  return Status::Ok();
}

Status ReadDouble(const Json& object, const char* key, double* out) {
  const Json* v = object.Find(key);
  if (v == nullptr) return Status::Ok();
  if (v->kind != Json::Kind::kNumber) {
    return Status::InvalidArgument(std::string("workload spec: '") + key +
                                   "' must be a number");
  }
  *out = v->number;
  return Status::Ok();
}

Status ReadBool(const Json& object, const char* key, bool* out) {
  const Json* v = object.Find(key);
  if (v == nullptr) return Status::Ok();
  if (v->kind != Json::Kind::kBool) {
    return Status::InvalidArgument(std::string("workload spec: '") + key +
                                   "' must be true or false");
  }
  *out = v->boolean;
  return Status::Ok();
}

Status ReadEngine(const Json& block, EngineOptions* engine) {
  Status keys = ExpectKeys(
      block, "\"engine\"",
      {"counter_mode", "semantics", "num_threads", "max_windows_per_event",
       "enable_tree_ranges", "enable_pruning", "enable_specialized_kernels"});
  if (!keys.ok()) return keys;
  if (const Json* v = block.Find("counter_mode"); v != nullptr) {
    if (v->str == "exact") {
      engine->counter_mode = CounterMode::kExact;
    } else if (v->str == "modular") {
      engine->counter_mode = CounterMode::kModular;
    } else {
      return Status::InvalidArgument(
          "workload spec: counter_mode must be \"exact\" or \"modular\"");
    }
  }
  if (const Json* v = block.Find("semantics"); v != nullptr) {
    if (v->str == "skip-till-any-match") {
      engine->semantics = Semantics::kSkipTillAnyMatch;
    } else if (v->str == "skip-till-next-match") {
      engine->semantics = Semantics::kSkipTillNextMatch;
    } else if (v->str == "contiguous") {
      engine->semantics = Semantics::kContiguous;
    } else {
      return Status::InvalidArgument(
          "workload spec: semantics must be \"skip-till-any-match\", "
          "\"skip-till-next-match\" or \"contiguous\"");
    }
  }
  int64_t num_threads = engine->num_threads;
  int64_t max_windows = engine->max_windows_per_event;
  Status s = ReadInt(block, "num_threads", &num_threads);
  if (s.ok()) s = ReadInt(block, "max_windows_per_event", &max_windows);
  if (s.ok()) s = ReadBool(block, "enable_tree_ranges",
                           &engine->enable_tree_ranges);
  if (s.ok()) s = ReadBool(block, "enable_pruning", &engine->enable_pruning);
  if (s.ok()) s = ReadBool(block, "enable_specialized_kernels",
                           &engine->enable_specialized_kernels);
  if (!s.ok()) return s;
  engine->num_threads = static_cast<int>(num_threads);
  engine->max_windows_per_event = static_cast<int>(max_windows);
  return Status::Ok();
}

Status ReadSharing(const Json& block, sharing::SharingOptions* sharing) {
  Status keys = ExpectKeys(
      block, "\"sharing\"",
      {"enable_sharing", "enable_partial_sharing", "min_cluster_size"});
  if (!keys.ok()) return keys;
  Status s = ReadBool(block, "enable_sharing", &sharing->enable_sharing);
  if (s.ok()) s = ReadBool(block, "enable_partial_sharing",
                           &sharing->enable_partial_sharing);
  if (s.ok()) s = ReadSize(block, "min_cluster_size",
                           &sharing->min_cluster_size);
  return s;
}

Status ReadAdaptive(const Json& block, sharing::AdaptiveOptions* adaptive) {
  Status keys = ExpectKeys(
      block, "\"adaptive\"",
      {"enabled", "observation_windows", "hysteresis",
       "min_windows_between_migrations", "per_event_cost"});
  if (!keys.ok()) return keys;
  Status s = ReadBool(block, "enabled", &adaptive->enabled);
  if (s.ok()) {
    s = ReadSize(block, "observation_windows",
                 &adaptive->observation_windows);
  }
  if (s.ok()) s = ReadDouble(block, "hysteresis", &adaptive->hysteresis);
  if (s.ok()) {
    s = ReadSize(block, "min_windows_between_migrations",
                 &adaptive->min_windows_between_migrations);
  }
  if (s.ok()) s = ReadDouble(block, "per_event_cost",
                             &adaptive->per_event_cost);
  if (!s.ok()) return s;
  if (adaptive->hysteresis < 1.0) {
    return Status::InvalidArgument(
        "workload spec: adaptive.hysteresis must be >= 1.0");
  }
  if (adaptive->observation_windows == 0) {
    return Status::InvalidArgument(
        "workload spec: adaptive.observation_windows must be >= 1");
  }
  if (adaptive->per_event_cost < 0.0) {
    return Status::InvalidArgument(
        "workload spec: adaptive.per_event_cost must be non-negative");
  }
  return Status::Ok();
}

Status ReadBursts(const Json& array, std::vector<BurstPhase>* bursts) {
  if (array.kind != Json::Kind::kArray) {
    return Status::InvalidArgument(
        "workload spec: \"bursts\" must be an array of phase objects");
  }
  for (const Json& item : array.items) {
    if (item.kind != Json::Kind::kObject) {
      return Status::InvalidArgument(
          "workload spec: every \"bursts\" entry must be an object");
    }
    Status keys = ExpectKeys(
        item, "\"bursts\" entry",
        {"start", "end", "stock_multiplier", "halt_multiplier"});
    if (!keys.ok()) return keys;
    BurstPhase phase;
    int64_t start = 0;
    int64_t end = 0;
    Status s = ReadInt(item, "start", &start);
    if (s.ok()) s = ReadInt(item, "end", &end);
    if (s.ok()) s = ReadDouble(item, "stock_multiplier",
                               &phase.stock_multiplier);
    if (s.ok()) s = ReadDouble(item, "halt_multiplier",
                               &phase.halt_multiplier);
    if (!s.ok()) return s;
    if (end < start || phase.stock_multiplier < 0.0 ||
        phase.halt_multiplier < 0.0) {
      return Status::InvalidArgument(
          "workload spec: burst phase needs end >= start and non-negative "
          "multipliers");
    }
    phase.start = start;
    phase.end = end;
    bursts->push_back(phase);
  }
  return Status::Ok();
}

Status ReadRuntime(const Json& block, runtime::ShardedOptions* options) {
  Status keys = ExpectKeys(
      block, "\"runtime\"",
      {"num_shards", "batch_size", "queue_capacity", "heartbeat_events"});
  if (!keys.ok()) return keys;
  Status s = ReadSize(block, "num_shards", &options->num_shards);
  if (s.ok()) s = ReadSize(block, "batch_size", &options->batch_size);
  if (s.ok()) s = ReadSize(block, "queue_capacity", &options->queue_capacity);
  if (s.ok()) {
    s = ReadSize(block, "heartbeat_events", &options->heartbeat_events);
  }
  return s;
}

Status ReadIngest(const Json& block, IngestOptions* options) {
  Status keys = ExpectKeys(block, "\"ingest\"",
                           {"batch_size", "sort_within_batch"});
  if (!keys.ok()) return keys;
  Status s = ReadSize(block, "batch_size", &options->batch_size);
  if (s.ok()) {
    s = ReadBool(block, "sort_within_batch", &options->sort_within_batch);
  }
  return s;
}

Status ReadTelemetry(const Json& block, telemetry::TelemetryOptions* options) {
  Status keys = ExpectKeys(
      block, "\"telemetry\"",
      {"enabled", "trace_capacity", "sample_every", "serve", "http_port"});
  if (!keys.ok()) return keys;
  Status s = ReadBool(block, "enabled", &options->enabled);
  if (s.ok()) s = ReadSize(block, "trace_capacity", &options->trace_capacity);
  if (s.ok()) s = ReadSize(block, "sample_every", &options->sample_every);
  if (s.ok()) s = ReadBool(block, "serve", &options->serve);
  size_t port = options->http_port;
  if (s.ok()) s = ReadSize(block, "http_port", &port);
  if (!s.ok()) return s;
  if (port > 65535) {
    return Status::InvalidArgument(
        "workload spec: telemetry.http_port must be <= 65535");
  }
  options->http_port = static_cast<uint16_t>(port);
  if (options->sample_every == 0) {
    return Status::InvalidArgument(
        "workload spec: telemetry.sample_every must be >= 1");
  }
  return Status::Ok();
}

Status ReadDataset(const Json& block, std::optional<StockConfig>* stock) {
  const Json* kind = block.Find("kind");
  if (kind == nullptr || kind->kind != Json::Kind::kString) {
    return Status::InvalidArgument(
        "workload spec: \"dataset\" needs a string \"kind\"");
  }
  if (kind->str != "stock") {
    return Status::Unsupported("workload spec: unknown dataset kind '" +
                               kind->str + "' (supported: \"stock\")");
  }
  Status keys = ExpectKeys(
      block, "\"dataset\"",
      {"kind", "seed", "rate", "duration", "num_companies", "num_sectors",
       "drift", "volatility", "start_price", "halt_probability", "bursts"});
  if (!keys.ok()) return keys;
  StockConfig config;
  int64_t seed = static_cast<int64_t>(config.seed);
  int64_t rate = config.rate;
  int64_t duration = config.duration;
  int64_t companies = config.num_companies;
  int64_t sectors = config.num_sectors;
  Status s = ReadInt(block, "seed", &seed);
  if (s.ok()) s = ReadInt(block, "rate", &rate);
  if (s.ok()) s = ReadInt(block, "duration", &duration);
  if (s.ok()) s = ReadInt(block, "num_companies", &companies);
  if (s.ok()) s = ReadInt(block, "num_sectors", &sectors);
  if (s.ok()) s = ReadDouble(block, "drift", &config.drift);
  if (s.ok()) s = ReadDouble(block, "volatility", &config.volatility);
  if (s.ok()) s = ReadDouble(block, "start_price", &config.start_price);
  if (s.ok()) {
    s = ReadDouble(block, "halt_probability", &config.halt_probability);
  }
  if (s.ok()) {
    if (const Json* bursts = block.Find("bursts"); bursts != nullptr) {
      s = ReadBursts(*bursts, &config.bursts);
    }
  }
  if (!s.ok()) return s;
  config.seed = static_cast<uint64_t>(seed);
  config.rate = static_cast<int>(rate);
  config.duration = duration;
  config.num_companies = static_cast<int>(companies);
  config.num_sectors = static_cast<int>(sectors);
  *stock = config;
  return Status::Ok();
}

}  // namespace

StatusOr<WorkloadSpec> ParseWorkloadSpec(std::string_view json,
                                         Catalog* catalog) {
  StatusOr<Json> parsed = JsonParser(json).Parse();
  if (!parsed.ok()) return parsed.status();
  const Json& root = parsed.value();
  if (root.kind != Json::Kind::kObject) {
    return Status::InvalidArgument(
        "workload spec: top level must be a JSON object");
  }
  Status keys = ExpectKeys(
      root, "the top-level object",
      {"name", "queries", "engine", "sharing", "adaptive", "runtime",
       "ingest", "telemetry", "dataset"});
  if (!keys.ok()) return keys;

  WorkloadSpec spec;
  if (const Json* v = root.Find("name"); v != nullptr) spec.name = v->str;

  if (const Json* v = root.Find("dataset"); v != nullptr) {
    Status s = ReadDataset(*v, &spec.stock);
    if (!s.ok()) return s;
    // Stock datasets register their event types so the queries below parse
    // against a fully declared catalog.
    RegisterStockTypes(catalog);
  }

  const Json* queries = root.Find("queries");
  if (queries == nullptr || queries->kind != Json::Kind::kArray ||
      queries->items.empty()) {
    return Status::InvalidArgument(
        "workload spec: \"queries\" must be a non-empty array of query "
        "strings");
  }
  for (const Json& q : queries->items) {
    if (q.kind != Json::Kind::kString) {
      return Status::InvalidArgument(
          "workload spec: every entry of \"queries\" must be a string");
    }
    StatusOr<QuerySpec> query = ParseQuery(q.str, catalog);
    if (!query.ok()) {
      return Status(query.status().code(),
                    "workload spec query " +
                        std::to_string(spec.queries.size()) + ": " +
                        query.status().message());
    }
    spec.query_texts.push_back(q.str);
    spec.queries.push_back(std::move(query).value());
  }

  if (const Json* v = root.Find("engine"); v != nullptr) {
    Status s = ReadEngine(*v, &spec.options.engine);
    if (!s.ok()) return s;
  }
  if (const Json* v = root.Find("sharing"); v != nullptr) {
    Status s = ReadSharing(*v, &spec.options.sharing);
    if (!s.ok()) return s;
  }
  if (const Json* v = root.Find("adaptive"); v != nullptr) {
    Status s = ReadAdaptive(*v, &spec.options.adaptive);
    if (!s.ok()) return s;
  }
  if (const Json* v = root.Find("runtime"); v != nullptr) {
    Status s = ReadRuntime(*v, &spec.runtime);
    if (!s.ok()) return s;
  }
  if (const Json* v = root.Find("ingest"); v != nullptr) {
    Status s = ReadIngest(*v, &spec.ingest);
    if (!s.ok()) return s;
  }
  if (const Json* v = root.Find("telemetry"); v != nullptr) {
    Status s = ReadTelemetry(*v, &spec.telemetry);
    if (!s.ok()) return s;
  }
  spec.runtime.workload = spec.options;
  return spec;
}

StatusOr<WorkloadSpec> LoadWorkloadSpecFile(const std::string& path,
                                            Catalog* catalog) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open workload spec file '" + path + "'");
  }
  std::string text;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  return ParseWorkloadSpec(text, catalog);
}

}  // namespace greta::workload
