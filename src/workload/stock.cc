#include "workload/stock.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "query/parser.h"

namespace greta {

void RegisterStockTypes(Catalog* catalog) {
  if (catalog->FindType("Stock") == kInvalidType) {
    catalog->DefineType("Stock", {{"company", Value::Kind::kInt},
                                  {"sector", Value::Kind::kInt},
                                  {"price", Value::Kind::kDouble},
                                  {"volume", Value::Kind::kInt},
                                  {"kind", Value::Kind::kInt},
                                  {"tx", Value::Kind::kInt}});
  }
  if (catalog->FindType("Halt") == kInvalidType) {
    catalog->DefineType("Halt", {{"company", Value::Kind::kInt},
                                 {"sector", Value::Kind::kInt}});
  }
}

namespace {

// Combined multiplier of every burst phase covering `second` (1.0 when
// uncovered; overlapping phases multiply).
void PhaseMultipliers(const StockConfig& config, Ts second, double* stock,
                      double* halt) {
  *stock = 1.0;
  *halt = 1.0;
  for (const BurstPhase& phase : config.bursts) {
    if (second >= phase.start && second < phase.end) {
      *stock *= phase.stock_multiplier;
      *halt *= phase.halt_multiplier;
    }
  }
}

}  // namespace

Stream GenerateStockStream(Catalog* catalog, const StockConfig& config) {
  RegisterStockTypes(catalog);
  Random rng(config.seed);
  Stream stream;
  std::vector<double> price(config.num_companies, config.start_price);
  std::vector<double> last_tx_time(config.num_companies, 0.0);
  int64_t tx = 0;
  for (Ts second = 0; second < config.duration; ++second) {
    double stock_mult;
    double halt_mult;
    PhaseMultipliers(config, second, &stock_mult, &halt_mult);
    const double halt_probability =
        std::min(1.0, config.halt_probability * halt_mult);
    const int rate = std::max(
        0, static_cast<int>(std::lround(config.rate * stock_mult)));
    // Halts first within the second so they affect later transactions.
    if (halt_probability > 0.0) {
      for (int c = 0; c < config.num_companies; ++c) {
        if (rng.Chance(halt_probability)) {
          stream.Append(EventBuilder(catalog, "Halt", second)
                            .Set("company", int64_t{c})
                            .Set("sector", int64_t{c % config.num_sectors})
                            .Build());
        }
      }
    }
    for (int i = 0; i < rate; ++i) {
      int c = static_cast<int>(
          rng.UniformInt(0, config.num_companies - 1));
      // Continuous-time random walk: the step depends on the wall time
      // since the company's previous transaction, so the price-pair
      // selectivity does not change with the event rate.
      double now = static_cast<double>(second) +
                   static_cast<double>(i) / rate;
      double dt = std::max(now - last_tx_time[c], 1e-6);
      last_tx_time[c] = now;
      price[c] += config.drift * dt +
                  rng.Gaussian(config.volatility * std::sqrt(dt));
      if (price[c] < 1.0) price[c] = 1.0;
      stream.Append(EventBuilder(catalog, "Stock", second)
                        .Set("company", int64_t{c})
                        .Set("sector", int64_t{c % config.num_sectors})
                        .Set("price", price[c])
                        .Set("volume", rng.UniformInt(1, 1000))
                        .Set("kind", rng.UniformInt(0, 1))
                        .Set("tx", tx++)
                        .Build());
    }
  }
  return stream;
}

namespace {

std::string WindowClause(Ts within, Ts slide) {
  return " WITHIN " + std::to_string(within) + " seconds SLIDE " +
         std::to_string(slide) + " seconds";
}

}  // namespace

StatusOr<QuerySpec> MakeQ1(Catalog* catalog, Ts within, Ts slide,
                           double factor) {
  RegisterStockTypes(catalog);
  std::string query =
      "RETURN sector, COUNT(*) "
      "PATTERN Stock S+ "
      "WHERE [company, sector] AND S.price * " +
      std::to_string(factor) +
      " > NEXT(S).price "
      "GROUP-BY sector" +
      WindowClause(within, slide);
  return ParseQuery(query, catalog);
}

StatusOr<QuerySpec> MakeQ1WithNegation(Catalog* catalog, Ts within, Ts slide,
                                       double factor) {
  RegisterStockTypes(catalog);
  std::string query =
      "RETURN sector, COUNT(*) "
      "PATTERN SEQ(NOT Halt H, Stock S+) "
      "WHERE [company, sector] AND S.price * " +
      std::to_string(factor) +
      " > NEXT(S).price "
      "GROUP-BY sector" +
      WindowClause(within, slide);
  return ParseQuery(query, catalog);
}

}  // namespace greta
