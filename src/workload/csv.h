#ifndef GRETA_WORKLOAD_CSV_H_
#define GRETA_WORKLOAD_CSV_H_

#include <istream>
#include <string_view>

#include "common/catalog.h"
#include "common/status.h"
#include "common/stream.h"

namespace greta {

/// Text ingestion for user-provided streams (the csv_pipeline example and
/// ad-hoc experiments).
///
/// Schema format — one event type per line, attributes typed int, double
/// or str; blank lines and '#' comments ignored:
///
///   Stock: company:int, sector:int, price:double
///   Halt:  company:int, sector:int
///
/// Event format — one event per line, in timestamp order:
///
///   TypeName,timestamp,attr1,attr2,...
Status ParseSchema(std::string_view text, Catalog* catalog);

/// Parses one CSV event line against the catalog.
StatusOr<Event> ParseCsvEvent(std::string_view line, Catalog* catalog);

/// Reads a whole CSV stream; enforces timestamp order.
StatusOr<Stream> ReadCsvStream(std::istream& in, Catalog* catalog);

}  // namespace greta

#endif  // GRETA_WORKLOAD_CSV_H_
