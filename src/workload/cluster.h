#ifndef GRETA_WORKLOAD_CLUSTER_H_
#define GRETA_WORKLOAD_CLUSTER_H_

#include "common/catalog.h"
#include "common/stream.h"
#include "query/query.h"

namespace greta {

/// Hadoop cluster monitoring stream (Section 10.1, Table 2): job start/end
/// events plus mapper performance measurements; mapper and job ids uniform,
/// CPU and memory uniform in 0..1k, load Poisson with lambda = 100.
struct ClusterConfig {
  uint64_t seed = 7;
  int num_mappers = 10;  // Table 2: uniform 0-10
  int num_jobs = 10;
  /// Events per second (the paper's stream rate is 3k/s).
  int rate = 100;
  Ts duration = 100;
  /// Probability that a (job, mapper) pair restarts per second, emitting
  /// End/Start events around its measurements.
  double restart_probability = 0.05;
  double load_lambda = 100.0;  // Table 2: Poisson(100)
};

void RegisterClusterTypes(Catalog* catalog);

Stream GenerateClusterStream(Catalog* catalog, const ClusterConfig& config);

/// Query Q2: total CPU cycles per job of each mapper experiencing
/// increasing load trends.
///
///   RETURN mapper, SUM(M.cpu)
///   PATTERN SEQ(Start S, Measurement M+, End E)
///   WHERE [job, mapper] AND M.load * factor < NEXT(M).load
///   GROUP-BY mapper WITHIN <within> SLIDE <slide>
StatusOr<QuerySpec> MakeQ2(Catalog* catalog, Ts within, Ts slide,
                           double factor = 1.0);

/// The positive-pattern Q2 variation used when only Kleene aggregation is
/// under test (Figure 17): PATTERN Measurement M+ with the same predicates,
/// grouping and SUM(M.cpu).
StatusOr<QuerySpec> MakeQ2Positive(Catalog* catalog, Ts within, Ts slide,
                                   double factor = 1.0);

}  // namespace greta

#endif  // GRETA_WORKLOAD_CLUSTER_H_
