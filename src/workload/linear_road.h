#ifndef GRETA_WORKLOAD_LINEAR_ROAD_H_
#define GRETA_WORKLOAD_LINEAR_ROAD_H_

#include "common/catalog.h"
#include "common/stream.h"
#include "query/query.h"

namespace greta {

/// Linear Road benchmark-style traffic stream (Section 10.1, [7]): vehicle
/// position reports (vehicle, segment, speed, position) plus accident
/// events per road segment. The paper uses the benchmark's simulator with a
/// rate ramping to 4k events/s over 3 hours; this generator reproduces the
/// schema and the workload knobs that drive Figure 16 (edge predicate
/// selectivity).
struct LinearRoadConfig {
  uint64_t seed = 11;
  int num_vehicles = 50;
  int num_segments = 10;
  int rate = 100;  // position reports per second
  Ts duration = 100;
  /// Per-second probability of an accident in some segment.
  double accident_probability = 0.0;
  /// Speeds are uniform in [0, max_speed); with the factor-style predicate
  /// of MakeQ3Selectivity this gives an exactly controllable pair
  /// selectivity.
  double max_speed = 100.0;
};

void RegisterLinearRoadTypes(Catalog* catalog);

Stream GenerateLinearRoadStream(Catalog* catalog,
                                const LinearRoadConfig& config);

/// Query Q3: number and average speed of continually slowing cars in road
/// segments without accidents.
///
///   RETURN segment, COUNT(*), AVG(P.speed)
///   PATTERN SEQ(NOT Accident A, Position P+)
///   WHERE [P.vehicle, segment] AND P.speed > NEXT(P).speed
///   GROUP-BY segment WITHIN <within> SLIDE <slide>
StatusOr<QuerySpec> MakeQ3(Catalog* catalog, Ts within, Ts slide);

/// Positive-pattern Q3 variation whose edge predicate
/// `P.speed * factor > NEXT(P).speed` matches a uniformly random pair with
/// probability `selectivity` (Figure 16's x-axis). Uses COUNT(*) only.
StatusOr<QuerySpec> MakeQ3Selectivity(Catalog* catalog, Ts within, Ts slide,
                                      double selectivity);

/// The factor X with P(u * X > v) == selectivity for u, v ~ U(0, max).
double SelectivityToFactor(double selectivity);

}  // namespace greta

#endif  // GRETA_WORKLOAD_LINEAR_ROAD_H_
