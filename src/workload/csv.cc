#include "workload/csv.h"

#include <cstdlib>
#include <string>
#include <vector>

namespace greta {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> SplitTrimmed(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(Trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

bool ParseNumber(std::string_view s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::string buf(s);
  *out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

}  // namespace

Status ParseSchema(std::string_view text, Catalog* catalog) {
  size_t line_no = 0;
  for (std::string_view line : SplitTrimmed(text, '\n')) {
    ++line_no;
    if (line.empty() || line.front() == '#') continue;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::ParseError("schema line " + std::to_string(line_no) +
                                ": expected 'Type: attr:kind, ...'");
    }
    std::string_view name = Trim(line.substr(0, colon));
    if (name.empty()) {
      return Status::ParseError("schema line " + std::to_string(line_no) +
                                ": empty type name");
    }
    if (catalog->FindType(name) != kInvalidType) {
      return Status::InvalidArgument("duplicate event type '" +
                                     std::string(name) + "'");
    }
    std::vector<AttributeDef> attrs;
    std::string_view rest = Trim(line.substr(colon + 1));
    if (!rest.empty()) {
      for (std::string_view field : SplitTrimmed(rest, ',')) {
        size_t c = field.find(':');
        std::string_view attr_name =
            Trim(c == std::string_view::npos ? field : field.substr(0, c));
        std::string_view kind_name =
            c == std::string_view::npos ? "double" : Trim(field.substr(c + 1));
        Value::Kind kind;
        if (kind_name == "int") {
          kind = Value::Kind::kInt;
        } else if (kind_name == "double" || kind_name == "float") {
          kind = Value::Kind::kDouble;
        } else if (kind_name == "str" || kind_name == "string") {
          kind = Value::Kind::kStr;
        } else {
          return Status::ParseError("schema line " + std::to_string(line_no) +
                                    ": unknown kind '" +
                                    std::string(kind_name) + "'");
        }
        attrs.push_back(AttributeDef{std::string(attr_name), kind});
      }
    }
    catalog->DefineType(name, std::move(attrs));
  }
  return Status::Ok();
}

StatusOr<Event> ParseCsvEvent(std::string_view line, Catalog* catalog) {
  std::vector<std::string_view> fields = SplitTrimmed(line, ',');
  if (fields.size() < 2) {
    return Status::ParseError("event line needs at least 'Type,timestamp'");
  }
  TypeId type = catalog->FindType(fields[0]);
  if (type == kInvalidType) {
    return Status::ParseError("unknown event type '" + std::string(fields[0]) +
                              "'");
  }
  const EventTypeDef& def = catalog->type(type);
  if (fields.size() != def.attrs.size() + 2) {
    return Status::ParseError("type " + def.name + " expects " +
                              std::to_string(def.attrs.size()) +
                              " attributes, got " +
                              std::to_string(fields.size() - 2));
  }
  double ts = 0;
  if (!ParseNumber(fields[1], &ts)) {
    return Status::ParseError("bad timestamp '" + std::string(fields[1]) +
                              "'");
  }
  Event e;
  e.type = type;
  e.time = static_cast<Ts>(ts);
  e.attrs.resize(def.attrs.size());
  for (size_t i = 0; i < def.attrs.size(); ++i) {
    std::string_view raw = fields[i + 2];
    switch (def.attrs[i].kind) {
      case Value::Kind::kInt: {
        double v = 0;
        if (!ParseNumber(raw, &v)) {
          return Status::ParseError("bad int '" + std::string(raw) + "' for " +
                                    def.name + "." + def.attrs[i].name);
        }
        e.attrs[i] = Value::Int(static_cast<int64_t>(v));
        break;
      }
      case Value::Kind::kDouble: {
        double v = 0;
        if (!ParseNumber(raw, &v)) {
          return Status::ParseError("bad double '" + std::string(raw) +
                                    "' for " + def.name + "." +
                                    def.attrs[i].name);
        }
        e.attrs[i] = Value::Double(v);
        break;
      }
      case Value::Kind::kStr:
        e.attrs[i] = Value::Str(catalog->strings()->Intern(raw));
        break;
      case Value::Kind::kNull:
        break;
    }
  }
  return e;
}

StatusOr<Stream> ReadCsvStream(std::istream& in, Catalog* catalog) {
  Stream stream;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    StatusOr<Event> e = ParseCsvEvent(trimmed, catalog);
    if (!e.ok()) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                e.status().message());
    }
    if (!stream.empty() && e.value().time < stream.max_time()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) +
          ": events must be in timestamp order (use KSlackBuffer for "
          "out-of-order feeds)");
    }
    stream.Append(std::move(e).value());
  }
  return stream;
}

}  // namespace greta
