#include "workload/linear_road.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"
#include "query/parser.h"

namespace greta {

void RegisterLinearRoadTypes(Catalog* catalog) {
  if (catalog->FindType("Position") == kInvalidType) {
    catalog->DefineType("Position", {{"vehicle", Value::Kind::kInt},
                                     {"segment", Value::Kind::kInt},
                                     {"speed", Value::Kind::kDouble},
                                     {"position", Value::Kind::kDouble}});
  }
  if (catalog->FindType("Accident") == kInvalidType) {
    catalog->DefineType("Accident", {{"segment", Value::Kind::kInt}});
  }
}

Stream GenerateLinearRoadStream(Catalog* catalog,
                                const LinearRoadConfig& config) {
  RegisterLinearRoadTypes(catalog);
  Random rng(config.seed);
  Stream stream;
  std::vector<double> position(config.num_vehicles, 0.0);
  std::vector<int64_t> segment(config.num_vehicles);
  for (int v = 0; v < config.num_vehicles; ++v) {
    segment[v] = rng.UniformInt(0, config.num_segments - 1);
  }
  for (Ts second = 0; second < config.duration; ++second) {
    if (config.accident_probability > 0.0 &&
        rng.Chance(config.accident_probability)) {
      stream.Append(
          EventBuilder(catalog, "Accident", second)
              .Set("segment", rng.UniformInt(0, config.num_segments - 1))
              .Build());
    }
    for (int i = 0; i < config.rate; ++i) {
      int v = static_cast<int>(rng.UniformInt(0, config.num_vehicles - 1));
      double speed = rng.UniformDouble(0.0, config.max_speed);
      position[v] += speed;
      // Vehicles occasionally move on to the next segment.
      if (rng.Chance(0.02)) {
        segment[v] = (segment[v] + 1) % config.num_segments;
      }
      stream.Append(EventBuilder(catalog, "Position", second)
                        .Set("vehicle", int64_t{v})
                        .Set("segment", segment[v])
                        .Set("speed", speed)
                        .Set("position", position[v])
                        .Build());
    }
  }
  return stream;
}

StatusOr<QuerySpec> MakeQ3(Catalog* catalog, Ts within, Ts slide) {
  RegisterLinearRoadTypes(catalog);
  std::string query =
      "RETURN segment, COUNT(*), AVG(P.speed) "
      "PATTERN SEQ(NOT Accident A, Position P+) "
      "WHERE [P.vehicle, segment] AND P.speed > NEXT(P).speed "
      "GROUP-BY segment WITHIN " +
      std::to_string(within) + " seconds SLIDE " + std::to_string(slide) +
      " seconds";
  return ParseQuery(query, catalog);
}

double SelectivityToFactor(double selectivity) {
  // For u, v uniform on (0, max): P(u * X > v) = X/2 for X <= 1 and
  // 1 - 1/(2X) for X >= 1 (independent of max).
  selectivity = std::clamp(selectivity, 0.001, 0.999);
  if (selectivity <= 0.5) return 2.0 * selectivity;
  return 1.0 / (2.0 * (1.0 - selectivity));
}

StatusOr<QuerySpec> MakeQ3Selectivity(Catalog* catalog, Ts within, Ts slide,
                                      double selectivity) {
  RegisterLinearRoadTypes(catalog);
  double factor = SelectivityToFactor(selectivity);
  std::string query =
      "RETURN segment, COUNT(*) "
      "PATTERN Position P+ "
      "WHERE [P.vehicle, segment] AND P.speed * " +
      std::to_string(factor) +
      " > NEXT(P).speed "
      "GROUP-BY segment WITHIN " +
      std::to_string(within) + " seconds SLIDE " + std::to_string(slide) +
      " seconds";
  return ParseQuery(query, catalog);
}

}  // namespace greta
