#include "workload/cluster.h"

#include <string>
#include <vector>

#include "common/random.h"
#include "query/parser.h"

namespace greta {

void RegisterClusterTypes(Catalog* catalog) {
  if (catalog->FindType("Start") == kInvalidType) {
    catalog->DefineType("Start", {{"job", Value::Kind::kInt},
                                  {"mapper", Value::Kind::kInt}});
  }
  if (catalog->FindType("Measurement") == kInvalidType) {
    catalog->DefineType("Measurement", {{"job", Value::Kind::kInt},
                                        {"mapper", Value::Kind::kInt},
                                        {"cpu", Value::Kind::kDouble},
                                        {"mem", Value::Kind::kDouble},
                                        {"load", Value::Kind::kDouble}});
  }
  if (catalog->FindType("End") == kInvalidType) {
    catalog->DefineType("End", {{"job", Value::Kind::kInt},
                                {"mapper", Value::Kind::kInt}});
  }
}

Stream GenerateClusterStream(Catalog* catalog, const ClusterConfig& config) {
  RegisterClusterTypes(catalog);
  Random rng(config.seed);
  Stream stream;
  // Every (job, mapper) pair starts its first run at time 0.
  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (int j = 0; j < config.num_jobs; ++j) {
    for (int m = 0; m < config.num_mappers; ++m) {
      pairs.emplace_back(j, m);
    }
  }
  for (auto [job, mapper] : pairs) {
    stream.Append(EventBuilder(catalog, "Start", 0)
                      .Set("job", job)
                      .Set("mapper", mapper)
                      .Build());
  }
  for (Ts second = 1; second < config.duration; ++second) {
    // Occasional restarts: End followed by Start.
    for (auto [job, mapper] : pairs) {
      if (rng.Chance(config.restart_probability)) {
        stream.Append(EventBuilder(catalog, "End", second)
                          .Set("job", job)
                          .Set("mapper", mapper)
                          .Build());
        stream.Append(EventBuilder(catalog, "Start", second)
                          .Set("job", job)
                          .Set("mapper", mapper)
                          .Build());
      }
    }
    for (int i = 0; i < config.rate; ++i) {
      auto [job, mapper] =
          pairs[static_cast<size_t>(rng.UniformInt(0, pairs.size() - 1))];
      stream.Append(EventBuilder(catalog, "Measurement", second)
                        .Set("job", job)
                        .Set("mapper", mapper)
                        .Set("cpu", rng.UniformDouble(0.0, 1000.0))
                        .Set("mem", rng.UniformDouble(0.0, 1000.0))
                        .Set("load", static_cast<double>(std::min<int64_t>(
                                 rng.Poisson(config.load_lambda), 10000)))
                        .Build());
    }
  }
  return stream;
}

StatusOr<QuerySpec> MakeQ2(Catalog* catalog, Ts within, Ts slide,
                           double factor) {
  RegisterClusterTypes(catalog);
  std::string query =
      "RETURN mapper, SUM(M.cpu) "
      "PATTERN SEQ(Start S, Measurement M+, End E) "
      "WHERE [job, mapper] AND M.load * " +
      std::to_string(factor) +
      " < NEXT(M).load "
      "GROUP-BY mapper WITHIN " +
      std::to_string(within) + " seconds SLIDE " + std::to_string(slide) +
      " seconds";
  return ParseQuery(query, catalog);
}

StatusOr<QuerySpec> MakeQ2Positive(Catalog* catalog, Ts within, Ts slide,
                                   double factor) {
  RegisterClusterTypes(catalog);
  std::string query =
      "RETURN mapper, SUM(M.cpu) "
      "PATTERN Measurement M+ "
      "WHERE [job, mapper] AND M.load * " +
      std::to_string(factor) +
      " < NEXT(M).load "
      "GROUP-BY mapper WITHIN " +
      std::to_string(within) + " seconds SLIDE " + std::to_string(slide) +
      " seconds";
  return ParseQuery(query, catalog);
}

}  // namespace greta
