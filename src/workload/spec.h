#ifndef GRETA_WORKLOAD_SPEC_H_
#define GRETA_WORKLOAD_SPEC_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/catalog.h"
#include "common/event_batch.h"
#include "common/status.h"
#include "query/query.h"
#include "runtime/sharded_runtime.h"
#include "sharing/shared_engine.h"
#include "telemetry/telemetry.h"
#include "workload/stock.h"

namespace greta::workload {

/// A declarative workload artifact (ROADMAP "Query DSL for workloads", file
/// format half): ONE JSON file declaring N queries plus the engine, sharing
/// and sharded-runtime options to execute them with — so benches, examples,
/// tests and a future server all load the same artifact instead of each
/// hard-coding its own workload. Schema (all blocks optional except
/// `queries`):
///
///   {
///     "name": "grouped stock down-trends",
///     "queries": ["RETURN sector, COUNT(*) PATTERN Stock S+ ...", ...],
///     "engine": {
///       "counter_mode": "exact" | "modular",
///       "semantics": "skip-till-any-match" | "skip-till-next-match"
///                    | "contiguous",
///       "num_threads": 1, "max_windows_per_event": 64,
///       "enable_tree_ranges": true, "enable_pruning": true,
///       "enable_specialized_kernels": true
///     },
///     "sharing": {
///       "enable_sharing": true, "enable_partial_sharing": true,
///       "min_cluster_size": 2
///     },
///     "adaptive": {
///       "enabled": true, "observation_windows": 4, "hysteresis": 1.5,
///       "min_windows_between_migrations": 8, "per_event_cost": 64.0
///     },
///     "runtime": {
///       "num_shards": 4, "batch_size": 256, "queue_capacity": 16,
///       "heartbeat_events": 1024
///     },
///     "ingest": {
///       "batch_size": 256, "sort_within_batch": false
///     },
///     "telemetry": {
///       "enabled": true, "trace_capacity": 1024, "sample_every": 1,
///       "serve": false, "http_port": 0
///     },
///     "dataset": {
///       "kind": "stock", "seed": 42, "rate": 200, "duration": 60,
///       "num_companies": 10, "num_sectors": 5, "drift": 0.5,
///       "volatility": 1.0, "start_price": 100.0, "halt_probability": 0.0,
///       "bursts": [{"start": 30, "end": 60, "stock_multiplier": 10.0,
///                   "halt_multiplier": 1.0}, ...]
///     }
///   }
///
/// The "adaptive" block configures the stats-driven re-planning loop
/// (sharing/adaptive_planner.h); "bursts" gives the stock dataset a
/// deterministic phase schedule of per-type rate multipliers — the load
/// shifts that trigger re-planning. "telemetry.serve" asks the driver to
/// start the embedded observability endpoint (telemetry/http_server.h) on
/// "http_port" (0 = ephemeral; the driver prints the bound port).
///
/// Unknown keys are rejected (typos in a workload file must not silently
/// fall back to defaults). A "dataset" of kind "stock" registers the stock
/// types in the catalog before the queries are parsed.
struct WorkloadSpec {
  std::string name;
  std::vector<std::string> query_texts;
  std::vector<QuerySpec> queries;
  /// Engine + sharing options ("engine" / "sharing" blocks); also embedded
  /// in `runtime.workload`, so both single-process and sharded execution
  /// read one source of truth.
  sharing::SharedEngineOptions options;
  /// Sharded-runtime options ("runtime" block), with `workload` = `options`.
  runtime::ShardedOptions runtime;
  /// Ingest batching ("ingest" block): how drivers pack the stream into
  /// columnar EventBatches before ProcessBatch (batch_size 0 = the scalar
  /// per-event Process path).
  IngestOptions ingest;
  /// Telemetry configuration ("telemetry" block). Apply it with
  /// `MetricRegistry::Default().Configure(spec.telemetry)` BEFORE building
  /// engines — instruments are cached at construction (telemetry.h).
  telemetry::TelemetryOptions telemetry;
  /// Present when the file declares a {"kind": "stock"} dataset.
  std::optional<StockConfig> stock;
};

/// Parses a workload spec from JSON text. Queries are parsed against
/// `catalog` (pre-registered types, or a "dataset" block that registers
/// them).
StatusOr<WorkloadSpec> ParseWorkloadSpec(std::string_view json,
                                         Catalog* catalog);

/// Reads and parses a workload spec file.
StatusOr<WorkloadSpec> LoadWorkloadSpecFile(const std::string& path,
                                            Catalog* catalog);

}  // namespace greta::workload

#endif  // GRETA_WORKLOAD_SPEC_H_
