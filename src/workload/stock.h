#ifndef GRETA_WORKLOAD_STOCK_H_
#define GRETA_WORKLOAD_STOCK_H_

#include <vector>

#include "common/catalog.h"
#include "common/stream.h"
#include "query/query.h"

namespace greta {

/// One phase of a bursty load schedule: per-type rate multipliers applied
/// over the time range [start, end). Seconds covered by several phases
/// multiply their factors; uncovered seconds run at the base rates. The
/// generated stream stays deterministic per seed — the multipliers scale
/// the per-second event budget, they do not perturb the price walk's
/// time base (prices step by wall time between a company's transactions,
/// so pair selectivity is stable across phases).
struct BurstPhase {
  Ts start = 0;
  Ts end = 0;
  /// Scales StockConfig::rate for Stock transactions (0 silences them).
  double stock_multiplier = 1.0;
  /// Scales StockConfig::halt_probability for Halt events.
  double halt_multiplier = 1.0;
};

/// Synthetic NYSE-like stock transaction stream (Section 10.1, "Stock Real
/// Data Set"): the paper replays 225k real transaction records of 10
/// companies, each carrying volume, price, second timestamps, type, company,
/// sector and transaction ids. We generate an equivalent stream from a
/// seeded random walk — see DESIGN.md §4 (substitutions).
struct StockConfig {
  uint64_t seed = 42;
  int num_companies = 10;
  int num_sectors = 5;
  /// Events per second (stream rate).
  int rate = 100;
  /// Stream duration in seconds.
  Ts duration = 100;
  double start_price = 100.0;
  /// Brownian volatility per sqrt(second) of the continuous-time price
  /// process (independent of the event rate, so selectivity is stable when
  /// sweeping events-per-window).
  double volatility = 1.0;
  /// Upward drift per second. Down-pairs (price decreasing across two
  /// transactions of a company) become rarer as drift grows, which controls
  /// how many down-trends a window contains — the real NYSE data's mostly
  /// flat tick prices have the same effect.
  double drift = 0.5;
  /// Emit trading-halt events (for negation queries) with this per-second
  /// probability per company.
  double halt_probability = 0.0;
  /// Bursty load schedule (empty: uniform rate). Drives the load shifts
  /// that trigger adaptive re-planning (src/sharing/adaptive_planner.h).
  std::vector<BurstPhase> bursts;
};

/// Registers the Stock (and Halt) event types; idempotent per catalog.
void RegisterStockTypes(Catalog* catalog);

/// Generates the stream; RegisterStockTypes is called implicitly.
Stream GenerateStockStream(Catalog* catalog, const StockConfig& config);

/// Query Q1: count of down-trends per sector.
///
///   RETURN sector, COUNT(*) PATTERN Stock S+
///   WHERE [company, sector] AND S.price * factor > NEXT(S).price
///   GROUP-BY sector WITHIN <within> SLIDE <slide>
///
/// `factor` builds the paper's nine query variations (price decreasing by
/// X percent per step); factor = 1 is Q1 itself.
StatusOr<QuerySpec> MakeQ1(Catalog* catalog, Ts within, Ts slide,
                           double factor = 1.0);

/// Q1 with a leading negative sub-pattern (Figure 15): down-trends only
/// when no trading halt preceded them in the window:
///   PATTERN SEQ(NOT Halt H, Stock S+)
StatusOr<QuerySpec> MakeQ1WithNegation(Catalog* catalog, Ts within, Ts slide,
                                       double factor = 1.0);

}  // namespace greta

#endif  // GRETA_WORKLOAD_STOCK_H_
