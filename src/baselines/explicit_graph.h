#ifndef GRETA_BASELINES_EXPLICIT_GRAPH_H_
#define GRETA_BASELINES_EXPLICIT_GRAPH_H_

#include <functional>
#include <vector>

#include "common/event.h"
#include "core/plan.h"

namespace greta {

/// Work/abort accounting shared by the two-step baselines: every edge
/// insertion, DFS step and trend construction charges units; exceeding the
/// budget marks the run DNF ("does not finish", mirroring the paper's runs
/// that exceeded hours).
class WorkBudget {
 public:
  explicit WorkBudget(size_t budget) : remaining_(budget) {}

  /// Returns false once the budget is exhausted.
  bool Charge(size_t units) {
    if (exhausted_) return false;
    if (units > remaining_) {
      exhausted_ = true;
      remaining_ = 0;
      return false;
    }
    remaining_ -= units;
    used_ += units;
    return true;
  }

  bool exhausted() const { return exhausted_; }
  size_t used() const { return used_; }

 private:
  size_t remaining_;
  size_t used_ = 0;
  bool exhausted_ = false;
};

/// Trends of a negative sub-pattern within one window, compressed to what
/// the invalidation rules need (Section 5): for a new adjacency (u, v) the
/// rules ask whether some negative trend (start, end) has
/// `u.time < start && end < v.time`, which reduces to a prefix-max over
/// trends sorted by end time.
class InvalidationIndex {
 public:
  void AddTrend(Ts start, Ts end) {
    trends_.push_back({end, start});
    sealed_ = false;
  }

  void Seal();

  /// max{start : (start, end) with end < t}, or kMinTs.
  Ts MaxStartWithEndBefore(Ts t) const;

  /// max start over all trends (Case-2 window-close filter), or kMinTs.
  Ts MaxStart() const;

  /// min end over all trends (Case-3 insertion filter), or kMaxTs.
  Ts MinEnd() const;

  bool empty() const { return trends_.empty(); }

 private:
  struct EndStart {
    Ts end;
    Ts max_start;  // after Seal(): prefix max of start
  };
  mutable std::vector<EndStart> trends_;
  mutable bool sealed_ = true;
};

/// A vertex of an explicitly materialized event graph: the stacks-with-
/// pointers structure of SASE [31] (each stored event keeps pointers to its
/// possible predecessor events) shared by all two-step baselines.
struct ExVertex {
  const Event* event = nullptr;
  StateId state = kInvalidState;
  bool is_start = false;
  bool is_end = false;
  std::vector<int32_t> preds;  // indices of predecessor vertices
  std::vector<int32_t> succs;  // filled by BuildSuccessors()
};

/// One sub-pattern's explicit graph for one (partition, window).
struct BuiltGraph {
  const GraphPlan* plan = nullptr;
  std::vector<ExVertex> vertices;  // in insertion order

  void BuildSuccessors();
  size_t ApproxBytes() const;
};

/// Builds the explicit graphs of one alternative (positive core first,
/// negatives after it — construction itself runs deepest-negative-first so
/// invalidation indexes exist before their dependents are built).
///
/// `events` must be the partition's events inside the window, ordered by
/// sequence number. Returns false when the work budget ran out.
bool BuildAlternativeGraphs(const AlternativePlan& alt, const ExecPlan& exec,
                            const std::vector<const Event*>& events,
                            WorkBudget* budget,
                            std::vector<BuiltGraph>* graphs,
                            std::vector<InvalidationIndex>* indexes);

/// Enumerates all trends (START-to-END paths) of `graph`, invoking
/// `on_trend(path)` with vertex indices for each. Applies the Case-2 trend
/// end filter when `end_barrier` is set. Returns false on budget
/// exhaustion. This is the exponential step the two-step approaches pay.
bool EnumerateTrends(const BuiltGraph& graph, Ts end_barrier,
                     WorkBudget* budget,
                     const std::function<void(const std::vector<int32_t>&)>&
                         on_trend);

}  // namespace greta

#endif  // GRETA_BASELINES_EXPLICIT_GRAPH_H_
