#include "baselines/two_step.h"

#include <algorithm>

#include "storage/window.h"

namespace greta {

TwoStepEngine::TwoStepEngine(const Catalog* catalog,
                             std::unique_ptr<ExecPlan> plan,
                             const TwoStepOptions& options, std::string name)
    : catalog_(catalog),
      plan_(std::move(plan)),
      options_(options),
      name_(std::move(name)),
      budget_(options.work_budget) {}

Status TwoStepEngine::Process(const Event& e) {
  if (saw_events_ && e.time < watermark_) {
    return Status::InvalidArgument(
        "events must arrive in-order by timestamp (Section 2)");
  }
  if (stats_.dnf) return Status::Ok();  // Inert after budget exhaustion.
  if (!next_close_valid_ && !plan_->window.unbounded()) {
    next_close_ = FirstWindowOf(e.time, plan_->window);
    next_close_valid_ = true;
  }
  CloseWindowsUpTo(e.time);
  watermark_ = e.time;
  saw_events_ = true;
  ++stats_.events_processed;
  if (!stats_.dnf) Route(e);
  stats_.peak_bytes = memory_.peak_bytes();
  stats_.work_units = budget_.used();
  return Status::Ok();
}

Status TwoStepEngine::Flush() {
  if (!saw_events_ || stats_.dnf) return Status::Ok();
  if (plan_->window.unbounded()) {
    if (!flushed_unbounded_) {
      EmitWindow(0);
      flushed_unbounded_ = true;
    }
  } else if (next_close_valid_) {
    WindowId last = LastWindowOf(watermark_, plan_->window);
    while (next_close_ <= last && !stats_.dnf) {
      EmitWindow(next_close_);
      ++next_close_;
    }
  }
  stats_.work_units = budget_.used();
  return Status::Ok();
}

std::vector<ResultRow> TwoStepEngine::TakeResults() {
  std::vector<ResultRow> out = std::move(emitted_);
  emitted_.clear();
  return out;
}

void TwoStepEngine::CloseWindowsUpTo(Ts now) {
  if (plan_->window.unbounded() || !next_close_valid_) return;
  bool closed = false;
  while (!stats_.dnf && WindowCloseTime(next_close_, plan_->window) <= now) {
    EmitWindow(next_close_);
    ++next_close_;
    closed = true;
  }
  if (closed) {
    // Batch-expire events no future window can reach.
    Ts cutoff = WindowStartTime(FirstWindowOf(now, plan_->window),
                                plan_->window);
    for (auto& [key, partition] : partitions_) {
      (void)key;
      while (!partition->events.empty() &&
             partition->events.front().time < cutoff) {
        memory_.Release(sizeof(Event) +
                        partition->events.front().attrs.capacity() *
                            sizeof(Value));
        partition->events.pop_front();
      }
    }
    while (!broadcast_buffer_.empty() &&
           broadcast_buffer_.front().event.time + plan_->window.within <=
               now) {
      broadcast_buffer_.pop_front();
    }
  }
}

bool TwoStepEngine::EvaluatePartitionWindow(Partition* partition,
                                            WindowId wid, AggOutputs* out) {
  Ts lo = WindowStartTime(wid, plan_->window);
  Ts hi = WindowCloseTime(wid, plan_->window);
  std::vector<const Event*> window_events;
  for (const Event& e : partition->events) {
    if (e.time >= lo && e.time < hi) window_events.push_back(&e);
  }
  if (window_events.empty()) return true;

  auto eval_alternative = [&](int idx, AggOutputs* acc) -> bool {
    const AlternativePlan& alt = plan_->alternatives[idx];
    std::vector<BuiltGraph> graphs;
    std::vector<InvalidationIndex> indexes;
    if (!BuildAlternativeGraphs(alt, *plan_, window_events, &budget_,
                                &graphs, &indexes)) {
      return false;
    }
    size_t graph_bytes = 0;
    for (const BuiltGraph& g : graphs) graph_bytes += g.ApproxBytes();
    memory_.Add(graph_bytes);
    bool ok = AggregateAlternative(graphs, indexes, &budget_, acc);
    memory_.Release(graph_bytes);
    return ok;
  };

  if (plan_->groups.size() <= 1) {
    if (!plan_->groups.empty()) {
      for (int idx : plan_->groups[0].alternative_indices) {
        if (!eval_alternative(idx, out)) return false;
      }
    }
    return true;
  }
  // Conjunction: product over term groups (COUNT(*) only; see planner).
  BigUInt product(1);
  bool all_nonzero = true;
  for (const TermGroupPlan& group : plan_->groups) {
    AggOutputs group_acc;
    for (int idx : group.alternative_indices) {
      if (!eval_alternative(idx, &group_acc)) return false;
    }
    if (!group_acc.any || group_acc.count.IsZero()) {
      all_nonzero = false;
      break;
    }
    product = product.Mul(group_acc.count.ToBig());
  }
  if (all_nonzero) {
    out->count = Counter::FromBig(product, plan_->mode);
    out->any = true;
  }
  return true;
}

void TwoStepEngine::EmitWindow(WindowId wid) {
  std::unordered_map<std::vector<Value>, AggOutputs, ValueVecHash, ValueVecEq>
      merged;
  for (auto& [key, partition] : partitions_) {
    AggOutputs acc;
    if (!EvaluatePartitionWindow(partition.get(), wid, &acc)) {
      stats_.dnf = true;
      emitted_.clear();
      return;
    }
    if (!acc.any) continue;
    std::vector<Value> group(key.begin(),
                             key.begin() + plan_->num_group_attrs);
    auto [it, inserted] = merged.try_emplace(std::move(group));
    (void)inserted;
    it->second.Merge(acc, plan_->agg);
  }
  std::vector<ResultRow> rows;
  rows.reserve(merged.size());
  for (auto& [group, outputs] : merged) {
    ResultRow row;
    row.wid = wid;
    row.group = group;
    row.aggs = std::move(outputs);
    rows.push_back(std::move(row));
  }
  SortRows(&rows);
  for (ResultRow& row : rows) emitted_.push_back(std::move(row));
}

void TwoStepEngine::Route(const Event& e) {
  auto ids_it = plan_->key_attr_ids.find(e.type);
  if (ids_it == plan_->key_attr_ids.end()) return;
  const std::vector<AttrId>& ids = ids_it->second;
  bool full = true;
  for (AttrId id : ids) full &= (id != kInvalidAttr);
  if (full) {
    std::vector<Value> key;
    key.reserve(ids.size());
    for (AttrId id : ids) key.push_back(e.attr(id));
    Deliver(GetOrCreatePartition(key, e.seq), e);
    return;
  }
  BroadcastEvent b;
  b.event = e;
  b.has_attr.resize(ids.size());
  b.key_values.resize(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    b.has_attr[i] = (ids[i] != kInvalidAttr);
    if (b.has_attr[i]) b.key_values[i] = e.attr(ids[i]);
  }
  for (auto& [key, partition] : partitions_) {
    if (BroadcastMatches(b, key)) Deliver(partition.get(), e);
  }
  broadcast_buffer_.push_back(std::move(b));
}

bool TwoStepEngine::BroadcastMatches(const BroadcastEvent& b,
                                     const std::vector<Value>& key) const {
  for (size_t i = 0; i < b.has_attr.size(); ++i) {
    if (b.has_attr[i] && !(b.key_values[i] == key[i])) return false;
  }
  return true;
}

TwoStepEngine::Partition* TwoStepEngine::GetOrCreatePartition(
    const std::vector<Value>& key, SeqNo upto) {
  auto it = partitions_.find(key);
  if (it != partitions_.end()) return it->second.get();
  auto partition = std::make_unique<Partition>();
  partition->key = key;
  Partition* raw = partition.get();
  partitions_.emplace(key, std::move(partition));
  for (const BroadcastEvent& b : broadcast_buffer_) {
    if (b.event.seq >= upto) break;
    if (BroadcastMatches(b, key)) Deliver(raw, b.event);
  }
  return raw;
}

void TwoStepEngine::Deliver(Partition* p, const Event& e) {
  p->events.push_back(e);
  memory_.Add(sizeof(Event) + e.attrs.capacity() * sizeof(Value));
  ++stats_.vertices_stored;
}

void TwoStepEngine::AccumulateTrend(const BuiltGraph& graph,
                                    const std::vector<int32_t>& path,
                                    AggOutputs* out) const {
  const AggPlan& agg = plan_->agg;
  out->count.AddOne(agg.mode);
  if (agg.need_type_count || agg.need_min || agg.need_max || agg.need_sum) {
    uint64_t occurrences = 0;
    for (int32_t idx : path) {
      const Event& e = *graph.vertices[idx].event;
      if (e.type != agg.target_type) continue;
      ++occurrences;
      double attr = agg.target_attr == kInvalidAttr
                        ? 0.0
                        : e.attr(agg.target_attr).ToDouble();
      if (agg.need_min && attr < out->min) out->min = attr;
      if (agg.need_max && attr > out->max) out->max = attr;
      if (agg.need_sum) out->sum += attr;
    }
    if (agg.need_type_count) {
      out->type_count.Add(Counter(occurrences), agg.mode);
    }
  }
  out->any = true;
}

Ts TwoStepEngine::PositiveEndBarrier(
    const std::vector<BuiltGraph>& graphs,
    const std::vector<InvalidationIndex>& indexes) const {
  Ts barrier = kMinTs;
  for (size_t j = 1; j < graphs.size(); ++j) {
    const GraphPlan& gp = *graphs[j].plan;
    if (gp.parent == 0 && gp.link_kind == NegationKind::kTrailing) {
      barrier = std::max(barrier, indexes[j].MaxStart());
    }
  }
  return barrier;
}

}  // namespace greta
