#include "baselines/explicit_graph.h"

#include <algorithm>

namespace greta {

void InvalidationIndex::Seal() {
  std::sort(trends_.begin(), trends_.end(),
            [](const EndStart& a, const EndStart& b) { return a.end < b.end; });
  Ts running = kMinTs;
  for (EndStart& t : trends_) {
    running = std::max(running, t.max_start);
    t.max_start = running;
  }
  sealed_ = true;
}

Ts InvalidationIndex::MaxStartWithEndBefore(Ts t) const {
  GRETA_CHECK(sealed_);
  // Last trend with end < t carries the prefix max start.
  auto it = std::lower_bound(
      trends_.begin(), trends_.end(), t,
      [](const EndStart& a, Ts value) { return a.end < value; });
  if (it == trends_.begin()) return kMinTs;
  return std::prev(it)->max_start;
}

Ts InvalidationIndex::MaxStart() const {
  GRETA_CHECK(sealed_);
  return trends_.empty() ? kMinTs : trends_.back().max_start;
}

Ts InvalidationIndex::MinEnd() const {
  GRETA_CHECK(sealed_);
  return trends_.empty() ? kMaxTs : trends_.front().end;
}

void BuiltGraph::BuildSuccessors() {
  for (ExVertex& v : vertices) v.succs.clear();
  for (size_t i = 0; i < vertices.size(); ++i) {
    for (int32_t u : vertices[i].preds) {
      vertices[u].succs.push_back(static_cast<int32_t>(i));
    }
  }
}

size_t BuiltGraph::ApproxBytes() const {
  size_t bytes = vertices.size() * sizeof(ExVertex);
  for (const ExVertex& v : vertices) {
    bytes += (v.preds.capacity() + v.succs.capacity()) * sizeof(int32_t);
  }
  return bytes;
}

namespace {

struct Link {
  NegationKind kind = NegationKind::kNone;
  int transition = -1;
  StateId foll = kInvalidState;
  const InvalidationIndex* inv = nullptr;
};

// Replays `events` through one sub-pattern template, materializing vertices
// and predecessor pointers — the construction step every two-step approach
// performs before it can enumerate trends.
bool BuildOne(const GraphPlan& gp, const ExecPlan& exec,
              const std::vector<const Event*>& events,
              const std::vector<Link>& links, WorkBudget* budget,
              BuiltGraph* out) {
  const GretaTemplate& templ = gp.templ;
  out->plan = &gp;
  std::vector<std::vector<int32_t>> by_state(templ.num_states());
  std::vector<uint64_t> used_transitions;  // skip-till-next bookkeeping
  SeqNo last_seen = kMinSeq;
  const bool contiguous = exec.semantics == Semantics::kContiguous;
  const bool skip_next = exec.semantics == Semantics::kSkipTillNextMatch;

  for (const Event* e : events) {
    const std::vector<StateId>& states = templ.states_for_type(e->type);
    if (states.empty()) continue;
    bool seen = false;
    for (StateId s : states) {
      const StatePlan& sp = gp.states[s];
      bool pass = true;
      for (const Expr* pred : sp.local_preds) {
        if (!pred->EvalVertex(*e).Truthy()) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      seen = true;

      // Case-3 negation: later following-state events are not inserted.
      bool rejected = false;
      for (const Link& l : links) {
        if (l.kind == NegationKind::kLeading && l.foll == s &&
            l.inv->MinEnd() < e->time) {
          rejected = true;
          break;
        }
      }
      if (rejected) continue;

      ExVertex v;
      v.event = e;
      v.state = s;
      v.is_start = templ.IsStart(s);
      v.is_end = templ.IsEnd(s);

      for (StateId p : templ.pred_states(s)) {
        int t_idx = templ.FindTransition(p, s);
        const TransitionPlan& tp = gp.transitions[t_idx];
        Ts barrier = kMinTs;
        for (const Link& l : links) {
          bool applies = (l.kind == NegationKind::kBetween &&
                          l.transition == t_idx) ||
                         l.kind == NegationKind::kTrailing;
          if (applies) {
            barrier =
                std::max(barrier, l.inv->MaxStartWithEndBefore(e->time));
          }
        }
        for (int32_t ui : by_state[p]) {
          if (!budget->Charge(1)) return false;
          const ExVertex& u = out->vertices[ui];
          if (u.event->time >= e->time) continue;  // Strict order (Def. 1).
          if (contiguous && u.event->seq != last_seen) continue;
          if (skip_next && ((used_transitions[ui] >> t_idx) & 1)) continue;
          bool ok = true;
          for (const EdgePredicatePlan& ep : tp.preds) {
            if (!ep.expr->EvalEdge(*u.event, *e).Truthy()) {
              ok = false;
              break;
            }
          }
          if (!ok) continue;
          if (u.event->time < barrier) continue;  // Cases 1 and 2.
          v.preds.push_back(ui);
          if (skip_next) used_transitions[ui] |= uint64_t{1} << t_idx;
        }
      }

      if (v.is_start || !v.preds.empty()) {
        by_state[s].push_back(static_cast<int32_t>(out->vertices.size()));
        out->vertices.push_back(std::move(v));
        used_transitions.push_back(0);
      }
    }
    if (seen) last_seen = e->seq;
  }
  return true;
}

}  // namespace

bool EnumerateTrends(const BuiltGraph& graph, Ts end_barrier,
                     WorkBudget* budget,
                     const std::function<void(const std::vector<int32_t>&)>&
                         on_trend) {
  std::vector<int32_t> path;
  // (vertex, next successor position) frames of an iterative DFS — trends
  // can be as long as the window, so recursion is unsafe.
  std::vector<std::pair<int32_t, size_t>> stack;
  auto emit_if_trend = [&](int32_t v) -> bool {
    const ExVertex& vx = graph.vertices[v];
    if (!vx.is_end || vx.event->time < end_barrier) return true;
    // Two-step trend construction: materializing the trend costs its length.
    if (!budget->Charge(path.size())) return false;
    on_trend(path);
    return true;
  };
  for (size_t i = 0; i < graph.vertices.size(); ++i) {
    if (!graph.vertices[i].is_start) continue;
    path.clear();
    stack.clear();
    path.push_back(static_cast<int32_t>(i));
    stack.emplace_back(static_cast<int32_t>(i), 0);
    if (!budget->Charge(1)) return false;
    if (!emit_if_trend(static_cast<int32_t>(i))) return false;
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      const ExVertex& vx = graph.vertices[v];
      if (next < vx.succs.size()) {
        int32_t w = vx.succs[next++];
        path.push_back(w);
        stack.emplace_back(w, 0);
        if (!budget->Charge(1)) return false;
        if (!emit_if_trend(w)) return false;
      } else {
        stack.pop_back();
        path.pop_back();
      }
    }
  }
  return true;
}

bool BuildAlternativeGraphs(const AlternativePlan& alt, const ExecPlan& exec,
                            const std::vector<const Event*>& events,
                            WorkBudget* budget,
                            std::vector<BuiltGraph>* graphs,
                            std::vector<InvalidationIndex>* indexes) {
  size_t n = alt.graphs.size();
  graphs->clear();
  graphs->resize(n);
  indexes->clear();
  indexes->resize(n);

  std::vector<std::vector<Link>> links(n);
  for (size_t j = 1; j < n; ++j) {
    const GraphPlan& gp = alt.graphs[j];
    Link link;
    link.kind = gp.link_kind;
    link.foll = gp.foll_state;
    link.inv = &(*indexes)[j];
    if (gp.link_kind == NegationKind::kBetween) {
      link.transition = alt.graphs[gp.parent].templ.FindTransition(
          gp.prev_state, gp.foll_state);
    }
    links[gp.parent].push_back(link);
  }

  // Deepest negatives first (they have the largest indices; see
  // SplitPattern), so every invalidation index is sealed before dependents
  // build against it — the paper's graph dependency order (Section 7).
  for (size_t step = 0; step < n; ++step) {
    size_t i = n - 1 - step;
    if (!BuildOne(alt.graphs[i], exec, events, links[i], budget,
                  &(*graphs)[i])) {
      return false;
    }
    (*graphs)[i].BuildSuccessors();
    if (i > 0) {
      Ts end_barrier = kMinTs;
      for (const Link& l : links[i]) {
        if (l.kind == NegationKind::kTrailing) {
          end_barrier = std::max(end_barrier, l.inv->MaxStart());
        }
      }
      bool ok = EnumerateTrends(
          (*graphs)[i], end_barrier, budget,
          [&](const std::vector<int32_t>& path) {
            const BuiltGraph& g = (*graphs)[i];
            (*indexes)[i].AddTrend(g.vertices[path.front()].event->time,
                                   g.vertices[path.back()].event->time);
          });
      if (!ok) return false;
      (*indexes)[i].Seal();
    }
  }
  return true;
}

}  // namespace greta
