#ifndef GRETA_BASELINES_CET_H_
#define GRETA_BASELINES_CET_H_

#include <memory>

#include "baselines/two_step.h"
#include "query/query.h"

namespace greta {

/// CET-style two-step baseline [24] (Section 10.1): constructs trends by
/// storing and *reusing* partial trends — each sub-trend is materialized
/// once (as an extension of its predecessor's sub-trends) instead of being
/// re-walked for every longer trend containing it. Roughly halves SASE's
/// CPU cost at the price of exponential memory (the paper measured three
/// orders of magnitude more memory than SASE at 500k events).
class CetEngine : public TwoStepEngine {
 public:
  static StatusOr<std::unique_ptr<CetEngine>> Create(
      const Catalog* catalog, const QuerySpec& spec,
      const TwoStepOptions& options = {});

 protected:
  bool AggregateAlternative(const std::vector<BuiltGraph>& graphs,
                            const std::vector<InvalidationIndex>& indexes,
                            WorkBudget* budget, AggOutputs* out) override;

 private:
  using TwoStepEngine::TwoStepEngine;

  bool AggregateCountOnly(const BuiltGraph& core, Ts end_barrier,
                          WorkBudget* budget, AggOutputs* out);
};

}  // namespace greta

#endif  // GRETA_BASELINES_CET_H_
