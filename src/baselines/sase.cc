#include "baselines/sase.h"

#include "core/plan.h"

namespace greta {

StatusOr<std::unique_ptr<SaseEngine>> SaseEngine::Create(
    const Catalog* catalog, const QuerySpec& spec,
    const TwoStepOptions& options) {
  PlannerOptions popts;
  popts.counter_mode = options.counter_mode;
  popts.semantics = options.semantics;
  popts.max_windows_per_event = options.max_windows_per_event;
  StatusOr<std::unique_ptr<ExecPlan>> plan = BuildPlan(spec, *catalog, popts);
  if (!plan.ok()) return plan.status();
  return std::unique_ptr<SaseEngine>(new SaseEngine(
      catalog, std::move(plan).value(), options, "SASE"));
}

bool SaseEngine::AggregateAlternative(
    const std::vector<BuiltGraph>& graphs,
    const std::vector<InvalidationIndex>& indexes, WorkBudget* budget,
    AggOutputs* out) {
  const BuiltGraph& core = graphs[0];
  Ts end_barrier = PositiveEndBarrier(graphs, indexes);
  return EnumerateTrends(
      core, end_barrier, budget, [&](const std::vector<int32_t>& path) {
        // Two-step: SASE *constructs* each trend (a fresh match object per
        // result, as its NFA runs do) and only then aggregates it. This
        // per-trend materialization is exactly the cost CET's sub-trend
        // reuse avoids (Section 10.2).
        std::vector<const Event*> trend;
        trend.reserve(path.size());
        for (int32_t idx : path) {
          trend.push_back(core.vertices[idx].event);
        }
        benchmark_do_not_elide_ = trend.size();
        AccumulateTrend(core, path, out);
      });
}

}  // namespace greta
