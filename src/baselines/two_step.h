#ifndef GRETA_BASELINES_TWO_STEP_H_
#define GRETA_BASELINES_TWO_STEP_H_

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/explicit_graph.h"
#include "common/memory.h"
#include "core/engine_interface.h"
#include "core/plan.h"

namespace greta {

/// Options shared by the two-step baseline engines.
struct TwoStepOptions {
  CounterMode counter_mode = CounterMode::kExact;
  Semantics semantics = Semantics::kSkipTillAnyMatch;
  /// Abstract work budget (edge checks + DFS steps + trend lengths); the
  /// engine reports DNF once exhausted, mirroring the paper's baseline runs
  /// that failed to terminate.
  size_t work_budget = SIZE_MAX;
  int max_windows_per_event = 64;
};

/// Shared shell of the two-step baselines (SASE [31], CET [24], flattened
/// Flink [4]): buffer events per partition, and at each window close
/// materialize the event graph, *construct* trends, and aggregate them —
/// the state of the art this paper's GRETA approach replaces (Figure 1).
///
/// Partition routing (grouping + equivalence attributes, broadcast of types
/// lacking key attributes) matches GretaEngine so results are directly
/// comparable; see tests/engine_equivalence_test.cc.
class TwoStepEngine : public EngineInterface {
 public:
  Status Process(const Event& e) override;
  Status Flush() override;
  std::vector<ResultRow> TakeResults() override;
  const EngineStats& stats() const override { return stats_; }
  const AggPlan& agg_plan() const override { return plan_->agg; }
  std::string name() const override { return name_; }

 protected:
  TwoStepEngine(const Catalog* catalog, std::unique_ptr<ExecPlan> plan,
                const TwoStepOptions& options, std::string name);

  /// Subclass hook: aggregate all trends of one alternative for one window.
  /// `graphs[0]` is the positive core with successors built; negative
  /// invalidation has already been applied during construction. Returns
  /// false on budget exhaustion.
  virtual bool AggregateAlternative(
      const std::vector<BuiltGraph>& graphs,
      const std::vector<InvalidationIndex>& indexes, WorkBudget* budget,
      AggOutputs* out) = 0;

  /// Per-trend accumulation used by subclasses that walk materialized
  /// trends.
  void AccumulateTrend(const BuiltGraph& graph,
                       const std::vector<int32_t>& path,
                       AggOutputs* out) const;

  /// The Case-2 (trailing negation) filter for the positive core's trends.
  Ts PositiveEndBarrier(const std::vector<BuiltGraph>& graphs,
                        const std::vector<InvalidationIndex>& indexes) const;

  const ExecPlan& plan() const { return *plan_; }
  MemoryTracker* memory() { return &memory_; }

 private:
  struct BroadcastEvent {
    Event event;
    std::vector<bool> has_attr;
    std::vector<Value> key_values;
  };
  struct Partition {
    std::vector<Value> key;
    std::deque<Event> events;  // relevant events, in sequence order
  };

  void CloseWindowsUpTo(Ts now);
  void EmitWindow(WindowId wid);
  void Route(const Event& e);
  void Deliver(Partition* p, const Event& e);
  Partition* GetOrCreatePartition(const std::vector<Value>& key, SeqNo upto);
  bool BroadcastMatches(const BroadcastEvent& b,
                        const std::vector<Value>& key) const;
  // Evaluates one partition's events for one window; false on DNF.
  bool EvaluatePartitionWindow(Partition* partition, WindowId wid,
                               AggOutputs* out);

  const Catalog* catalog_;
  std::unique_ptr<ExecPlan> plan_;
  TwoStepOptions options_;
  std::string name_;
  MemoryTracker memory_;
  WorkBudget budget_;

  std::unordered_map<std::vector<Value>, std::unique_ptr<Partition>,
                     ValueVecHash, ValueVecEq>
      partitions_;
  std::deque<BroadcastEvent> broadcast_buffer_;

  Ts watermark_ = kMinTs;
  bool saw_events_ = false;
  bool flushed_unbounded_ = false;
  WindowId next_close_ = 0;
  bool next_close_valid_ = false;

  std::vector<ResultRow> emitted_;
  EngineStats stats_;
};

}  // namespace greta

#endif  // GRETA_BASELINES_TWO_STEP_H_
