#ifndef GRETA_BASELINES_SASE_H_
#define GRETA_BASELINES_SASE_H_

#include <memory>

#include "baselines/two_step.h"
#include "query/query.h"

namespace greta {

/// SASE-style two-step baseline [31] (Section 10.1): events are stored in
/// stacks with pointers to their possible predecessor events; at each window
/// close a DFS traverses the pointers to *construct every trend one at a
/// time* and aggregates it. Memory stays low (one in-flight trend), latency
/// and CPU grow exponentially with the number of trends.
///
/// Doubles as the ground-truth oracle in tests (with an unlimited budget it
/// enumerates exactly the trends the paper's semantics define).
class SaseEngine : public TwoStepEngine {
 public:
  static StatusOr<std::unique_ptr<SaseEngine>> Create(
      const Catalog* catalog, const QuerySpec& spec,
      const TwoStepOptions& options = {});

 protected:
  bool AggregateAlternative(const std::vector<BuiltGraph>& graphs,
                            const std::vector<InvalidationIndex>& indexes,
                            WorkBudget* budget, AggOutputs* out) override;

 private:
  using TwoStepEngine::TwoStepEngine;

  // Sink that keeps the per-trend materialization from being optimized out.
  volatile size_t benchmark_do_not_elide_ = 0;
};

}  // namespace greta

#endif  // GRETA_BASELINES_SASE_H_
