#ifndef GRETA_BASELINES_FLINK_FLAT_H_
#define GRETA_BASELINES_FLINK_FLAT_H_

#include <memory>

#include "baselines/two_step.h"
#include "query/query.h"

namespace greta {

/// Flattened-Kleene two-step baseline modeling the paper's Flink [4]
/// methodology (Section 10.1): industrial streaming engines without Kleene
/// closure evaluate a Kleene query as a *set* of fixed-length event sequence
/// queries covering every trend length 1..L (L = the longest match in the
/// window). Each length-l query re-explores the window and materializes all
/// its sequences — both the increased query workload and the retained
/// sequence results are modeled, which is why this baseline is the slowest
/// and hungriest (Figures 14-17).
class FlinkFlatEngine : public TwoStepEngine {
 public:
  static StatusOr<std::unique_ptr<FlinkFlatEngine>> Create(
      const Catalog* catalog, const QuerySpec& spec,
      const TwoStepOptions& options = {});

 protected:
  bool AggregateAlternative(const std::vector<BuiltGraph>& graphs,
                            const std::vector<InvalidationIndex>& indexes,
                            WorkBudget* budget, AggOutputs* out) override;

 private:
  using TwoStepEngine::TwoStepEngine;

  // Sink that keeps the per-sequence materialization from being elided.
  volatile size_t do_not_elide_ = 0;
};

}  // namespace greta

#endif  // GRETA_BASELINES_FLINK_FLAT_H_
