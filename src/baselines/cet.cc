#include "baselines/cet.h"

#include <deque>

#include "core/plan.h"

namespace greta {

namespace {

// One materialized (sub-)trend ending at some vertex: CET shares the prefix
// structurally (prev pointer) and carries the trend's running aggregates so
// extension is O(1). 40 bytes each — and there are exponentially many.
struct TrendCell {
  int32_t prev = -1;     // index of the prefix cell (-1: trend start)
  int32_t vertex = -1;   // graph vertex this cell appends
  uint32_t occurrences = 0;  // target-type events so far
  float pad = 0.0f;
  double min = kAggInf;
  double max = -kAggInf;
  double sum = 0.0;
};

}  // namespace

StatusOr<std::unique_ptr<CetEngine>> CetEngine::Create(
    const Catalog* catalog, const QuerySpec& spec,
    const TwoStepOptions& options) {
  PlannerOptions popts;
  popts.counter_mode = options.counter_mode;
  popts.semantics = options.semantics;
  popts.max_windows_per_event = options.max_windows_per_event;
  StatusOr<std::unique_ptr<ExecPlan>> plan = BuildPlan(spec, *catalog, popts);
  if (!plan.ok()) return plan.status();
  return std::unique_ptr<CetEngine>(new CetEngine(
      catalog, std::move(plan).value(), options, "CET"));
}

namespace {

// Count-only fast path: sub-trends still materialize one cell each (that is
// CET's defining cost), but the cell carries no aggregate payload.
struct SlimCell {
  int32_t prev = -1;
  int32_t vertex = -1;
};

}  // namespace

bool CetEngine::AggregateCountOnly(const BuiltGraph& core, Ts end_barrier,
                                   WorkBudget* budget, AggOutputs* out) {
  const AggPlan& agg = agg_plan();
  std::deque<SlimCell> arena;
  std::vector<std::pair<size_t, size_t>> spans(core.vertices.size());
  for (size_t i = 0; i < core.vertices.size(); ++i) {
    const ExVertex& v = core.vertices[i];
    size_t begin = arena.size();
    if (v.is_start) {
      arena.push_back(SlimCell{-1, static_cast<int32_t>(i)});
    }
    for (int32_t u : v.preds) {
      auto [ub, ue] = spans[u];
      if (!budget->Charge(ue - ub)) return false;
      for (size_t c = ub; c < ue; ++c) {
        arena.push_back(SlimCell{static_cast<int32_t>(c),
                                 static_cast<int32_t>(i)});
      }
    }
    spans[i] = {begin, arena.size()};
    memory()->Add((arena.size() - begin) * sizeof(SlimCell));
    if (v.is_end && v.event->time >= end_barrier) {
      for (size_t c = begin; c < arena.size(); ++c) {
        out->count.AddOne(agg.mode);
      }
      out->any = out->any || begin < arena.size();
    }
  }
  memory()->Release(arena.size() * sizeof(SlimCell));
  return true;
}

bool CetEngine::AggregateAlternative(
    const std::vector<BuiltGraph>& graphs,
    const std::vector<InvalidationIndex>& indexes, WorkBudget* budget,
    AggOutputs* out) {
  const BuiltGraph& core = graphs[0];
  Ts end_barrier = PositiveEndBarrier(graphs, indexes);
  const AggPlan& agg = agg_plan();
  if (!agg.need_type_count && !agg.need_min && !agg.need_max &&
      !agg.need_sum) {
    return AggregateCountOnly(core, end_barrier, budget, out);
  }

  // Cell arena (deque: stable, no exponential reallocation copies) plus
  // per-vertex [begin, end) spans. Vertices are in insertion order, so
  // predecessors' cells are complete before extension.
  std::deque<TrendCell> arena;
  std::vector<std::pair<size_t, size_t>> spans(core.vertices.size());
  const bool want_target = agg.need_type_count || agg.need_min ||
                           agg.need_max || agg.need_sum;

  auto extend = [&](const TrendCell* prefix, int32_t vertex_idx) {
    TrendCell cell;
    if (prefix != nullptr) {
      cell = *prefix;
      cell.prev = 0;  // Structural link; index value unused for aggregation.
    }
    cell.vertex = vertex_idx;
    if (want_target) {
      const Event& e = *core.vertices[vertex_idx].event;
      if (e.type == agg.target_type) {
        ++cell.occurrences;
        double attr = agg.target_attr == kInvalidAttr
                          ? 0.0
                          : e.attr(agg.target_attr).ToDouble();
        if (attr < cell.min) cell.min = attr;
        if (attr > cell.max) cell.max = attr;
        cell.sum += attr;
      }
    }
    arena.push_back(cell);
  };

  size_t uncharged = 0;
  // One budget unit per materialized sub-trend cell, checked in chunks so a
  // single explosive vertex cannot overshoot the budget by much.
  auto charge_chunked = [&]() -> bool {
    if (++uncharged < 4096) return true;
    bool ok = budget->Charge(uncharged);
    uncharged = 0;
    return ok;
  };

  for (size_t i = 0; i < core.vertices.size(); ++i) {
    const ExVertex& v = core.vertices[i];
    size_t begin = arena.size();
    if (v.is_start) {
      extend(nullptr, static_cast<int32_t>(i));
      if (!charge_chunked()) return false;
    }
    for (int32_t u : v.preds) {
      auto [ub, ue] = spans[u];
      for (size_t c = ub; c < ue; ++c) {
        extend(&arena[c], static_cast<int32_t>(i));
        if (!charge_chunked()) return false;
      }
    }
    spans[i] = {begin, arena.size()};
    memory()->Add((arena.size() - begin) * sizeof(TrendCell));

    if (v.is_end && v.event->time >= end_barrier) {
      for (size_t c = begin; c < arena.size(); ++c) {
        const TrendCell& cell = arena[c];
        out->count.AddOne(agg.mode);
        if (agg.need_type_count) {
          out->type_count.Add(Counter(cell.occurrences), agg.mode);
        }
        if (agg.need_min && cell.min < out->min) out->min = cell.min;
        if (agg.need_max && cell.max > out->max) out->max = cell.max;
        if (agg.need_sum) out->sum += cell.sum;
        out->any = true;
      }
    }
  }
  memory()->Release(arena.size() * sizeof(TrendCell));
  return true;
}

}  // namespace greta
