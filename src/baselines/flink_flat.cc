#include "baselines/flink_flat.h"

#include <algorithm>

#include "core/plan.h"

namespace greta {

StatusOr<std::unique_ptr<FlinkFlatEngine>> FlinkFlatEngine::Create(
    const Catalog* catalog, const QuerySpec& spec,
    const TwoStepOptions& options) {
  PlannerOptions popts;
  popts.counter_mode = options.counter_mode;
  popts.semantics = options.semantics;
  popts.max_windows_per_event = options.max_windows_per_event;
  StatusOr<std::unique_ptr<ExecPlan>> plan = BuildPlan(spec, *catalog, popts);
  if (!plan.ok()) return plan.status();
  return std::unique_ptr<FlinkFlatEngine>(new FlinkFlatEngine(
      catalog, std::move(plan).value(), options, "Flink-flat"));
}

bool FlinkFlatEngine::AggregateAlternative(
    const std::vector<BuiltGraph>& graphs,
    const std::vector<InvalidationIndex>& indexes, WorkBudget* budget,
    AggOutputs* out) {
  const BuiltGraph& core = graphs[0];
  Ts end_barrier = PositiveEndBarrier(graphs, indexes);

  // Determine L, the longest possible match: longest path from any START
  // vertex. Edges point to later-inserted vertices, so a reverse sweep is a
  // topological DP.
  size_t n = core.vertices.size();
  std::vector<int64_t> longest(n, 1);
  for (size_t i = n; i-- > 0;) {
    for (int32_t w : core.vertices[i].succs) {
      longest[i] = std::max(longest[i], 1 + longest[w]);
    }
  }
  int64_t max_len = 0;
  for (size_t i = 0; i < n; ++i) {
    if (core.vertices[i].is_start) max_len = std::max(max_len, longest[i]);
  }

  // One fixed-length sequence query per length: depth-bounded DFS that
  // materializes every matched sequence (retained until the window is
  // done, as a real sequence-query workload would).
  size_t materialized_bytes = 0;
  std::vector<int32_t> path;
  std::vector<std::pair<int32_t, size_t>> stack;
  for (int64_t len = 1; len <= max_len; ++len) {
    for (size_t i = 0; i < n; ++i) {
      if (!core.vertices[i].is_start) continue;
      path.clear();
      stack.clear();
      path.push_back(static_cast<int32_t>(i));
      stack.emplace_back(static_cast<int32_t>(i), 0);
      if (!budget->Charge(1)) return false;
      auto emit = [&](int32_t v) -> bool {
        const ExVertex& vx = core.vertices[v];
        if (static_cast<int64_t>(path.size()) != len || !vx.is_end ||
            vx.event->time < end_barrier) {
          return true;
        }
        if (!budget->Charge(path.size())) return false;
        // Each fixed-length query materializes its matched sequence as a
        // result object (retained until the window completes).
        std::vector<const Event*> sequence;
        sequence.reserve(path.size());
        for (int32_t idx : path) sequence.push_back(core.vertices[idx].event);
        do_not_elide_ = sequence.size();
        AccumulateTrend(core, path, out);
        size_t bytes = path.size() * sizeof(void*) + sizeof(void*);
        materialized_bytes += bytes;
        memory()->Add(bytes);
        return true;
      };
      if (!emit(static_cast<int32_t>(i))) return false;
      while (!stack.empty()) {
        auto& [v, next] = stack.back();
        const ExVertex& vx = core.vertices[v];
        if (static_cast<int64_t>(path.size()) < len &&
            next < vx.succs.size()) {
          int32_t w = vx.succs[next++];
          path.push_back(w);
          stack.emplace_back(w, 0);
          if (!budget->Charge(1)) return false;
          if (!emit(w)) return false;
        } else {
          stack.pop_back();
          path.pop_back();
        }
      }
    }
  }
  memory()->Release(materialized_bytes);
  return true;
}

}  // namespace greta
