#include "sharing/adaptive_planner.h"

#include <algorithm>
#include <cmath>

namespace greta::sharing {

AdaptiveClusterPlanner::AdaptiveClusterPlanner(const ClusterShape& shape,
                                              ClusterMode initial,
                                              const AdaptiveOptions& options)
    : shape_(shape), options_(options), mode_(initial) {
  if (options_.observation_windows == 0) options_.observation_windows = 1;
  if (options_.hysteresis < 1.0) options_.hysteresis = 1.0;
  // The cooldown spaces migrations apart; the FIRST one only needs a full
  // observation history.
  steps_since_migration_ = options_.min_windows_between_migrations;
  stats_.mode = initial;
}

void AdaptiveClusterPlanner::Observe(const WindowObservation& step) {
  history_.push_back(step);
  while (history_.size() > options_.observation_windows) {
    history_.pop_front();
  }
  ++stats_.steps_observed;
  ++steps_since_migration_;
  RefreshCosts();
}

void AdaptiveClusterPlanner::RefreshCosts() const {
  double sum_e = 0.0;
  double sum_e2 = 0.0;
  double sum_edges = 0.0;
  for (const WindowObservation& o : history_) {
    double e = static_cast<double>(o.events_routed);
    sum_e += e;
    sum_e2 += e * e;
    sum_edges += static_cast<double>(o.edges_traversed);
  }
  const double n = static_cast<double>(history_.size());
  const double mean_e = n > 0.0 ? sum_e / n : 0.0;
  stats_.mode = mode_;
  stats_.mean_events = mean_e;
  if (n > 1.0 && mean_e > 0.0) {
    double var = std::max(0.0, sum_e2 / n - mean_e * mean_e);
    stats_.burstiness = std::sqrt(var) / mean_e;
  } else {
    stats_.burstiness = 0.0;
  }

  // Calibrate the quadratic coefficient from the live mode's observed edge
  // work: sum_edges ~= q_hat * quad(current) * sum(E^2). A cluster that
  // observed no structural work keeps q_hat at zero — the decision then
  // rides on the linear per-event term alone.
  const double quad_current = mode_ == ClusterMode::kMerged
                                  ? shape_.merged_quad
                                  : shape_.dedicated_quad;
  const double q_hat =
      (quad_current > 0.0 && sum_e2 > 0.0) ? sum_edges / (quad_current * sum_e2)
                                           : 0.0;
  stats_.q_hat = q_hat;
  const double mean_e2 = n > 0.0 ? sum_e2 / n : 0.0;
  stats_.cost_merged = q_hat * shape_.merged_quad * mean_e2 +
                       options_.per_event_cost * shape_.merged_passes * mean_e;
  stats_.cost_dedicated =
      q_hat * shape_.dedicated_quad * mean_e2 +
      options_.per_event_cost * shape_.dedicated_passes * mean_e;
}

ClusterMode AdaptiveClusterPlanner::Decide() const {
  if (history_.size() < options_.observation_windows) return mode_;
  if (steps_since_migration_ < options_.min_windows_between_migrations) {
    return mode_;
  }
  if (stats_.mean_events <= 0.0) return mode_;  // idle: nothing to gain
  const double current = mode_ == ClusterMode::kMerged ? stats_.cost_merged
                                                       : stats_.cost_dedicated;
  const double other = mode_ == ClusterMode::kMerged ? stats_.cost_dedicated
                                                     : stats_.cost_merged;
  if (other * options_.hysteresis < current) {
    return mode_ == ClusterMode::kMerged ? ClusterMode::kDedicated
                                         : ClusterMode::kMerged;
  }
  return mode_;
}

void AdaptiveClusterPlanner::OnMigrationApplied(ClusterMode now) {
  mode_ = now;
  stats_.mode = now;
  ++stats_.migrations;
  steps_since_migration_ = 0;
  // Edge counts of the old mode no longer predict the new mode's work;
  // start the calibration fresh.
  history_.clear();
}

}  // namespace greta::sharing
