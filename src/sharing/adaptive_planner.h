#ifndef GRETA_SHARING_ADAPTIVE_PLANNER_H_
#define GRETA_SHARING_ADAPTIVE_PLANNER_H_

#include <cstddef>
#include <deque>
#include <vector>

#include "core/engine_interface.h"

namespace greta::sharing {

/// Knobs of the online re-planning loop (workload spec block "adaptive").
/// The loop turns the plan-once pipeline (compile -> run) into
/// compile -> run -> observe -> re-plan: every shareable cluster is
/// re-evaluated from OBSERVED per-window rates and can migrate between one
/// merged runtime and per-query dedicated runtimes at a window boundary.
struct AdaptiveOptions {
  /// Master switch; false preserves the static plan for the whole run.
  bool enabled = false;
  /// Sliding history length, in window-grid steps, that a decision
  /// averages over. Longer = smoother (slower to react, immune to single
  /// spikes); shorter = jumpier.
  size_t observation_windows = 4;
  /// Switch modes only when the alternative's estimated cost times this
  /// factor still undercuts the current mode's cost (> 1.0). Suppresses
  /// flapping when the two modes are near parity.
  double hysteresis = 1.5;
  /// Cooldown: completed window-grid steps that must pass after a
  /// migration before the cluster may migrate again.
  size_t min_windows_between_migrations = 8;
  /// Fixed per-event cost of one engine pass (routing, partition lookup,
  /// predecessor-scan setup, vertex storage), expressed in units of one
  /// edge-propagation step. This is the linear term that makes a merged
  /// runtime win under sparse load: dedicated runtimes pay it once per
  /// query per event, the merged runtime once per event.
  double per_event_cost = 64.0;
};

/// The execution mode of one cluster.
enum class ClusterMode {
  kMerged,     // one multi-query (exact or snapshot-propagating) runtime
  kDedicated,  // one engine per query
};

/// Static shape of a cluster, compiled once from the sharing plan; turns
/// observed edge counts of the CURRENT mode into a prediction for the
/// other mode.
///
/// Model: per grid step with E observed relevant events, structural work
/// scales quadratically (every new Kleene event connects to predecessors
/// within its window range) and the per-event engine pass linearly:
///
///   cost(mode) = q_hat * quad(mode) * E^2 + per_event_cost * passes(mode) * E
///
/// where quad(kMerged) = cells_merged * k_u^2 (the shared core scans and
/// folds over the cluster's UNION window range k_u = union_within/slide,
/// paying one snapshot plus one fold per attribute-aggregating query per
/// edge-window) and quad(kDedicated) = sum_q cells_dedicated * k_q^2 (each
/// query scans only its own range). q_hat is CALIBRATED each step from the
/// observed edge count of the live mode, so the decision tracks the real
/// stream (selectivity, partition skew) instead of assumed constants —
/// the re-planning half of Hamlet's "to share or not to share".
struct ClusterShape {
  size_t num_queries = 0;
  double merged_quad = 0.0;     // quad(kMerged)
  double dedicated_quad = 0.0;  // quad(kDedicated)
  double merged_passes = 1.0;   // engine passes per event when merged
  double dedicated_passes = 0.0;  // = num_queries
};

/// Telemetry of one cluster's adaptation state (tests, explain output).
struct AdaptationStats {
  ClusterMode mode = ClusterMode::kMerged;
  size_t migrations = 0;        // applied mode switches
  size_t steps_observed = 0;    // completed window-grid steps
  double mean_events = 0.0;     // over the sliding history
  double burstiness = 0.0;      // coefficient of variation of events/step
  double cost_merged = 0.0;     // last estimate, edge-op units per step
  double cost_dedicated = 0.0;
  /// Calibrated quadratic coefficient (observed edges per predicted
  /// edge-window cell, RefreshCosts): the knob the cost model tunes from
  /// the live stream, surfaced as a telemetry gauge.
  double q_hat = 0.0;
};

/// Per-cluster incremental re-planner: consumes one observation per
/// window-grid step (summed over the cluster's live engines) and
/// re-evaluates the share/no-share decision with hysteresis and a
/// migration cooldown. Owned and driven by SharedWorkloadEngine; pure
/// decision logic, no engine state, so tests can drive it directly.
class AdaptiveClusterPlanner {
 public:
  AdaptiveClusterPlanner(const ClusterShape& shape, ClusterMode initial,
                         const AdaptiveOptions& options);

  /// Records one completed window-grid step.
  void Observe(const WindowObservation& step);

  /// The mode the cluster should run in, re-evaluated from the sliding
  /// history. Returns the current mode until `observation_windows` steps
  /// accumulated, while the cooldown holds, or while neither mode
  /// undercuts the other by the hysteresis margin.
  ClusterMode Decide() const;

  /// The driver applied a migration; restarts the cooldown.
  void OnMigrationApplied(ClusterMode now);

  ClusterMode mode() const { return mode_; }
  const AdaptationStats& stats() const { return stats_; }

 private:
  void RefreshCosts() const;

  ClusterShape shape_;
  AdaptiveOptions options_;
  ClusterMode mode_;
  std::deque<WindowObservation> history_;
  size_t steps_since_migration_ = 0;
  mutable AdaptationStats stats_;
};

}  // namespace greta::sharing

#endif  // GRETA_SHARING_ADAPTIVE_PLANNER_H_
