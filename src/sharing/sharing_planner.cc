#include "sharing/sharing_planner.h"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>

#include "core/plan.h"
#include "predicate/classify.h"
#include "query/pattern.h"
#include "query/template.h"
#include "storage/window.h"

namespace greta::sharing {

namespace {

bool HasConjunction(const Pattern& p) {
  if (p.op() == PatternOp::kAnd) return true;
  for (const PatternPtr& c : p.children()) {
    if (HasConjunction(*c)) return true;
  }
  return false;
}

// Pattern part of the fingerprint: template-normalized when possible
// (TemplateStructureFingerprint: two patterns with equal automata build
// byte-identical GRETA graphs).
StatusOr<std::string> PatternFingerprint(const Pattern& pattern,
                                         const Catalog& catalog) {
  if (pattern.IsPositive() && !HasConjunction(pattern)) {
    StatusOr<std::vector<PatternPtr>> alts = ExpandSugar(pattern);
    if (alts.ok()) {
      std::vector<std::string> fps;
      for (const PatternPtr& alt : alts.value()) {
        StatusOr<GretaTemplate> templ = BuildTemplate(*alt, catalog);
        if (!templ.ok()) return templ.status();
        fps.push_back(TemplateStructureFingerprint(templ.value()));
      }
      std::sort(fps.begin(), fps.end());  // Alternatives are summed.
      std::string joined = "tpl:";
      for (const std::string& fp : fps) joined += fp + "|";
      return joined;
    }
  }
  // Negation / conjunction: fall back to the canonical pattern rendering
  // (alias-free — Pattern stores TypeIds only), which is conservative but
  // always correct.
  return "pat:" + pattern.ToString(catalog);
}

std::string WindowFingerprint(const WindowSpec& w) {
  if (w.unbounded()) return "w:unbounded";
  return "w:" + std::to_string(w.within) + "/" + std::to_string(w.slide);
}

// ------------------------------------------------------------- cost model

// Multiplier for per-window aggregate cell maintenance: an event of a
// sliding window with overlap k touches k cells per vertex.
double OverlapFactor(const WindowSpec& w, const SharingOptions& options) {
  int k = w.unbounded() ? 1 : MaxWindowsPerEvent(w);
  return 1.0 + options.window_overlap_weight * (k - 1);
}

// Structural per-event work of building one graph of pattern size `size`
// under `preds` WHERE conjuncts: predecessor range queries, predicate
// evaluation, vertex storage.
double StructuralCost(int size, size_t preds, const WindowSpec& w,
                      const SharingOptions& options) {
  return (options.structural_weight * size +
          options.predicate_weight * static_cast<double>(preds)) *
         OverlapFactor(w, options);
}

// Aggregate propagation per query per event.
double AggregateCost(int size, const WindowSpec& w,
                     const SharingOptions& options) {
  return options.aggregate_weight * size * OverlapFactor(w, options);
}

double IndependentCost(const QuerySpec& spec, const SharingOptions& options) {
  int size = spec.pattern->Size();
  return StructuralCost(size, spec.where.size(), spec.window, options) +
         AggregateCost(size, spec.window, options);
}

// Exact cluster of `n` fingerprint-identical queries: structural work once,
// aggregate propagation per query.
void EstimateExactCosts(const QuerySpec& representative, size_t n,
                        const SharingOptions& options, double* shared,
                        double* independent) {
  int size = representative.pattern->Size();
  *shared = StructuralCost(size, representative.where.size(),
                           representative.window, options) +
            static_cast<double>(n) *
                AggregateCost(size, representative.window, options);
  *independent = static_cast<double>(n) * IndependentCost(representative,
                                                          options);
}

// ---------------------------------------------------- partial eligibility

// Decomposition of one query for partial-sharing pooling: queries pool when
// they agree on the Kleene core automaton, the WHERE conjuncts over core
// types, the partition keys, and the window slide — the cluster-agreement
// surface that BuildPartialSharedPlan re-validates.
struct PartialProfile {
  std::string key;
  int core_size = 0;        // Pattern::Size of the shared Kleene core
  size_t core_preds = 0;    // conjuncts shaping the shared snapshot
};

std::optional<PartialProfile> MakePartialProfile(const QuerySpec& spec,
                                                 const Catalog& catalog) {
  if (spec.pattern == nullptr || !spec.pattern->IsPositive() ||
      HasConjunction(*spec.pattern)) {
    return std::nullopt;
  }
  StatusOr<std::vector<PatternPtr>> alts = ExpandSugar(*spec.pattern);
  if (!alts.ok() || alts.value().size() != 1) return std::nullopt;
  const Pattern* core = KleenePrefixCore(*alts.value()[0]);
  if (core == nullptr) return std::nullopt;
  StatusOr<GretaTemplate> core_templ = BuildTemplate(*core, catalog);
  if (!core_templ.ok()) return std::nullopt;

  // WHERE conjuncts over core types shape the shared snapshot and must
  // agree; suffix conjuncts stay per query. The same
  // IsCoreSnapshotPredicate test drives BuildPartialSharedPlan's
  // re-validation, so pooling and planning cannot drift apart.
  std::vector<TypeId> core_types = core->CollectTypes();
  std::vector<std::string> core_pred_texts;
  for (const ExprPtr& conjunct : spec.where) {
    StatusOr<ClassifiedPredicate> cp = ClassifyPredicate(*conjunct);
    if (!cp.ok()) return std::nullopt;
    if (cp.value().cls == PredicateClass::kConstant) return std::nullopt;
    if (IsCoreSnapshotPredicate(cp.value(), core_types)) {
      core_pred_texts.push_back(conjunct->ToString(catalog));
    }
  }
  std::sort(core_pred_texts.begin(), core_pred_texts.end());

  std::vector<std::string> equiv = spec.equivalence;
  std::sort(equiv.begin(), equiv.end());

  std::ostringstream key;
  key << "pcore:" << TemplateStructureFingerprint(core_templ.value())
      << ";preds:";
  for (const std::string& p : core_pred_texts) key << p << "&";
  key << ";equiv:";
  for (const std::string& a : equiv) key << a << ",";
  key << ";group:";
  for (const std::string& a : spec.group_by) key << a << ",";
  key << ";slide:"
      << (spec.window.unbounded() ? std::string("u")
                                  : std::to_string(spec.window.slide));

  PartialProfile profile;
  profile.key = key.str();
  profile.core_size = core->Size();
  profile.core_preds = core_pred_texts.size();
  return profile;
}

// Partial cluster: the shared Kleene core's structural work once (over the
// union window), each query's continuation structure and aggregate work
// separately.
void EstimatePartialCosts(const std::vector<QuerySpec>& workload,
                          const std::vector<size_t>& query_ids,
                          const PartialProfile& profile,
                          const SharingOptions& options, double* shared,
                          double* independent) {
  WindowSpec union_window = workload[query_ids[0]].window;
  for (size_t q : query_ids) {
    const WindowSpec& w = workload[q].window;
    if (!w.unbounded() && (union_window.unbounded() ||
                           w.within > union_window.within)) {
      union_window = w;
    }
  }
  *shared = StructuralCost(profile.core_size, profile.core_preds,
                           union_window, options);
  *independent = 0.0;
  for (size_t q : query_ids) {
    const QuerySpec& spec = workload[q];
    int size = spec.pattern->Size();
    *shared += StructuralCost(size - profile.core_size,
                              spec.where.size() - profile.core_preds,
                              spec.window, options) +
               AggregateCost(size, spec.window, options);
    *independent += IndependentCost(spec, options);
  }
}

}  // namespace

StatusOr<std::string> TemplateMerger::Fingerprint(const QuerySpec& spec,
                                                  const Catalog& catalog) {
  if (spec.pattern == nullptr) {
    return Status::InvalidArgument("query has no pattern");
  }
  StatusOr<std::string> pattern_fp =
      PatternFingerprint(*spec.pattern, catalog);
  if (!pattern_fp.ok()) return pattern_fp.status();

  std::ostringstream out;
  out << pattern_fp.value() << ";" << WindowFingerprint(spec.window) << ";";

  std::vector<std::string> preds;
  for (const ExprPtr& e : spec.where) preds.push_back(e->ToString(catalog));
  std::sort(preds.begin(), preds.end());
  out << "where:";
  for (const std::string& p : preds) out << p << "&";

  std::vector<std::string> equiv = spec.equivalence;
  std::sort(equiv.begin(), equiv.end());
  out << ";equiv:";
  for (const std::string& a : equiv) out << a << ",";

  out << ";group:";
  for (const std::string& a : spec.group_by) out << a << ",";
  return out.str();
}

std::string SharingPlan::ToString() const {
  std::ostringstream out;
  out << "workload of " << num_queries << " queries, " << clusters.size()
      << " clusters (" << num_shared_clusters() << " shared)\n";
  for (size_t i = 0; i < clusters.size(); ++i) {
    const QueryCluster& c = clusters[i];
    out << "  cluster " << i << ": queries {";
    for (size_t j = 0; j < c.query_ids.size(); ++j) {
      out << (j ? "," : "") << c.query_ids[j];
    }
    out << "} "
        << (c.shared ? (c.partial ? "SHARED-PARTIAL" : "SHARED")
                     : "DEDICATED")
        << " (cost/event shared=" << c.shared_cost
        << " independent=" << c.independent_cost << ")\n";
  }
  return out.str();
}

StatusOr<SharingPlan> PlanSharing(const std::vector<QuerySpec>& workload,
                                  const Catalog& catalog,
                                  const SharingOptions& options) {
  if (workload.empty()) {
    return Status::InvalidArgument("sharing planner needs a non-empty "
                                   "workload");
  }
  SharingPlan plan;
  plan.num_queries = workload.size();

  // Cluster by fingerprint, preserving first-seen order.
  std::map<std::string, size_t> by_fp;
  for (size_t q = 0; q < workload.size(); ++q) {
    StatusOr<std::string> fp = TemplateMerger::Fingerprint(workload[q],
                                                           catalog);
    if (!fp.ok()) {
      return Status::InvalidArgument(
          "query " + std::to_string(q) +
          ": " + fp.status().ToString());
    }
    auto it = by_fp.find(fp.value());
    if (it == by_fp.end()) {
      by_fp.emplace(fp.value(), plan.clusters.size());
      QueryCluster cluster;
      cluster.fingerprint = fp.value();
      cluster.query_ids.push_back(q);
      plan.clusters.push_back(std::move(cluster));
    } else {
      plan.clusters[it->second].query_ids.push_back(q);
    }
  }

  // Share/no-share per exact cluster.
  for (QueryCluster& cluster : plan.clusters) {
    size_t n = cluster.query_ids.size();
    EstimateExactCosts(workload[cluster.query_ids[0]], n, options,
                       &cluster.shared_cost, &cluster.independent_cost);
    cluster.shared = options.enable_sharing &&
                     n >= options.min_cluster_size &&
                     cluster.shared_cost < cluster.independent_cost;
  }

  // Partial sharing (Hamlet): pool the queries exact clustering left
  // unshared by common Kleene sub-pattern prefix. A pool that reaches the
  // cluster-size threshold and wins on cost becomes one snapshot-propagating
  // runtime; its members leave their dedicated clusters.
  if (options.enable_sharing && options.enable_partial_sharing) {
    std::map<std::string, size_t> by_key;     // key -> pool index
    std::vector<std::vector<size_t>> pools;   // first-seen order
    std::vector<PartialProfile> profiles;
    for (const QueryCluster& cluster : plan.clusters) {
      if (cluster.shared) continue;
      for (size_t q : cluster.query_ids) {
        std::optional<PartialProfile> profile =
            MakePartialProfile(workload[q], catalog);
        if (!profile.has_value()) continue;
        auto [it, inserted] = by_key.emplace(profile->key, pools.size());
        if (inserted) {
          pools.emplace_back();
          profiles.push_back(std::move(profile).value());
        }
        pools[it->second].push_back(q);
      }
    }

    std::vector<bool> pooled(workload.size(), false);
    std::vector<QueryCluster> partial_clusters;
    for (size_t i = 0; i < pools.size(); ++i) {
      if (pools[i].size() < options.min_cluster_size) continue;
      QueryCluster cluster;
      cluster.query_ids = pools[i];
      std::sort(cluster.query_ids.begin(), cluster.query_ids.end());
      cluster.fingerprint = profiles[i].key;
      cluster.partial = true;
      EstimatePartialCosts(workload, cluster.query_ids, profiles[i], options,
                           &cluster.shared_cost, &cluster.independent_cost);
      cluster.shared = cluster.shared_cost < cluster.independent_cost;
      if (!cluster.shared) continue;
      for (size_t q : cluster.query_ids) pooled[q] = true;
      partial_clusters.push_back(std::move(cluster));
    }
    if (!partial_clusters.empty()) {
      std::vector<QueryCluster> remaining;
      for (QueryCluster& cluster : plan.clusters) {
        std::vector<size_t> keep;
        for (size_t q : cluster.query_ids) {
          if (!pooled[q]) keep.push_back(q);
        }
        if (keep.empty()) continue;
        cluster.query_ids = std::move(keep);
        remaining.push_back(std::move(cluster));
      }
      plan.clusters = std::move(remaining);
      for (QueryCluster& cluster : partial_clusters) {
        plan.clusters.push_back(std::move(cluster));
      }
    }
  }
  return plan;
}

}  // namespace greta::sharing
