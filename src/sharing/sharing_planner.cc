#include "sharing/sharing_planner.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "query/pattern.h"
#include "query/template.h"

namespace greta::sharing {

namespace {

bool HasConjunction(const Pattern& p) {
  if (p.op() == PatternOp::kAnd) return true;
  for (const PatternPtr& c : p.children()) {
    if (HasConjunction(*c)) return true;
  }
  return false;
}

// Canonical rendering of one template automaton: occurrence-unique states in
// id order (construction order is deterministic for a given pattern shape),
// transitions sorted, start/end marked. Two patterns with equal automata
// build byte-identical GRETA graphs.
std::string TemplateFingerprint(const GretaTemplate& templ) {
  std::ostringstream out;
  out << "S[";
  for (const TemplateState& s : templ.states()) {
    out << s.type << (templ.IsStart(s.id) ? "^" : "")
        << (templ.IsEnd(s.id) ? "$" : "") << ",";
  }
  out << "]T[";
  std::vector<std::string> edges;
  for (const TemplateTransition& t : templ.transitions()) {
    std::ostringstream e;
    e << t.from << ">" << t.to
      << (t.label == TransitionLabel::kPlus ? "+" : "");
    edges.push_back(e.str());
  }
  std::sort(edges.begin(), edges.end());
  for (const std::string& e : edges) out << e << ",";
  out << "]";
  return out.str();
}

// Pattern part of the fingerprint: template-normalized when possible.
StatusOr<std::string> PatternFingerprint(const Pattern& pattern,
                                         const Catalog& catalog) {
  if (pattern.IsPositive() && !HasConjunction(pattern)) {
    StatusOr<std::vector<PatternPtr>> alts = ExpandSugar(pattern);
    if (alts.ok()) {
      std::vector<std::string> fps;
      for (const PatternPtr& alt : alts.value()) {
        StatusOr<GretaTemplate> templ = BuildTemplate(*alt, catalog);
        if (!templ.ok()) return templ.status();
        fps.push_back(TemplateFingerprint(templ.value()));
      }
      std::sort(fps.begin(), fps.end());  // Alternatives are summed.
      std::string joined = "tpl:";
      for (const std::string& fp : fps) joined += fp + "|";
      return joined;
    }
  }
  // Negation / conjunction: fall back to the canonical pattern rendering
  // (alias-free — Pattern stores TypeIds only), which is conservative but
  // always correct.
  return "pat:" + pattern.ToString(catalog);
}

std::string WindowFingerprint(const WindowSpec& w) {
  if (w.unbounded()) return "w:unbounded";
  return "w:" + std::to_string(w.within) + "/" + std::to_string(w.slide);
}

// Per-event work estimate of one runtime for a cluster of `n` queries.
// `size` is the pattern size (states + operators), a proxy for the number of
// template transitions whose predecessor lookups, predicate evaluations and
// vertex insertions dominate graph construction.
void EstimateCosts(int size, size_t n, const SharingOptions& options,
                   double* shared, double* independent) {
  double structural = options.structural_weight * size;
  double aggregate = options.aggregate_weight * size;
  *shared = structural + static_cast<double>(n) * aggregate;
  *independent = static_cast<double>(n) * (structural + aggregate);
}

}  // namespace

StatusOr<std::string> TemplateMerger::Fingerprint(const QuerySpec& spec,
                                                  const Catalog& catalog) {
  if (spec.pattern == nullptr) {
    return Status::InvalidArgument("query has no pattern");
  }
  StatusOr<std::string> pattern_fp =
      PatternFingerprint(*spec.pattern, catalog);
  if (!pattern_fp.ok()) return pattern_fp.status();

  std::ostringstream out;
  out << pattern_fp.value() << ";" << WindowFingerprint(spec.window) << ";";

  std::vector<std::string> preds;
  for (const ExprPtr& e : spec.where) preds.push_back(e->ToString(catalog));
  std::sort(preds.begin(), preds.end());
  out << "where:";
  for (const std::string& p : preds) out << p << "&";

  std::vector<std::string> equiv = spec.equivalence;
  std::sort(equiv.begin(), equiv.end());
  out << ";equiv:";
  for (const std::string& a : equiv) out << a << ",";

  out << ";group:";
  for (const std::string& a : spec.group_by) out << a << ",";
  return out.str();
}

std::string SharingPlan::ToString() const {
  std::ostringstream out;
  out << "workload of " << num_queries << " queries, " << clusters.size()
      << " clusters (" << num_shared_clusters() << " shared)\n";
  for (size_t i = 0; i < clusters.size(); ++i) {
    const QueryCluster& c = clusters[i];
    out << "  cluster " << i << ": queries {";
    for (size_t j = 0; j < c.query_ids.size(); ++j) {
      out << (j ? "," : "") << c.query_ids[j];
    }
    out << "} " << (c.shared ? "SHARED" : "DEDICATED")
        << " (cost/event shared=" << c.shared_cost
        << " independent=" << c.independent_cost << ")\n";
  }
  return out.str();
}

StatusOr<SharingPlan> PlanSharing(const std::vector<QuerySpec>& workload,
                                  const Catalog& catalog,
                                  const SharingOptions& options) {
  if (workload.empty()) {
    return Status::InvalidArgument("sharing planner needs a non-empty "
                                   "workload");
  }
  SharingPlan plan;
  plan.num_queries = workload.size();

  // Cluster by fingerprint, preserving first-seen order.
  std::map<std::string, size_t> by_fp;
  for (size_t q = 0; q < workload.size(); ++q) {
    StatusOr<std::string> fp = TemplateMerger::Fingerprint(workload[q],
                                                           catalog);
    if (!fp.ok()) {
      return Status::InvalidArgument(
          "query " + std::to_string(q) +
          ": " + fp.status().ToString());
    }
    auto it = by_fp.find(fp.value());
    if (it == by_fp.end()) {
      by_fp.emplace(fp.value(), plan.clusters.size());
      QueryCluster cluster;
      cluster.fingerprint = fp.value();
      cluster.query_ids.push_back(q);
      plan.clusters.push_back(std::move(cluster));
    } else {
      plan.clusters[it->second].query_ids.push_back(q);
    }
  }

  // Share/no-share per cluster.
  for (QueryCluster& cluster : plan.clusters) {
    size_t n = cluster.query_ids.size();
    int size = workload[cluster.query_ids[0]].pattern->Size();
    EstimateCosts(size, n, options, &cluster.shared_cost,
                  &cluster.independent_cost);
    cluster.shared = options.enable_sharing &&
                     n >= options.min_cluster_size &&
                     cluster.shared_cost < cluster.independent_cost;
  }
  return plan;
}

}  // namespace greta::sharing
