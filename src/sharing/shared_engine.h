#ifndef GRETA_SHARING_SHARED_ENGINE_H_
#define GRETA_SHARING_SHARED_ENGINE_H_

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "sharing/adaptive_planner.h"
#include "sharing/sharing_planner.h"

namespace greta::sharing {

/// Options of the shared workload runtime: the engine options are applied
/// uniformly to every unit runtime (semantics, counter mode and window
/// limits are workload-level properties here), the sharing options drive
/// the initial share/no-share plan, and the adaptive options turn the
/// plan-once pipeline into an observe -> re-plan loop (adaptive_planner.h).
///
/// `engine.memory`, when set, becomes the PARENT of the workload tracker:
/// the workload still accounts its own point-in-time peak, and every
/// allocation also rolls up into the caller's tracker (src/runtime/ sharded
/// execution aggregates per-shard workloads this way).
struct SharedEngineOptions {
  EngineOptions engine;
  SharingOptions sharing;
  AdaptiveOptions adaptive;
  /// Shard index stamped on this workload's telemetry series and lifecycle
  /// traces (`{shard="i",...}` labels); sharded runtimes (src/runtime/)
  /// pass their shard id so per-cluster gauges of different shards stay
  /// distinct series. Single-shard callers leave it 0.
  size_t telemetry_shard = 0;
};

/// Multi-query shared execution runtime (after Hamlet's shared Kleene
/// sub-pattern graphs and EAGr's shared continuous aggregates): accepts a
/// workload of N parsed queries, clusters them by sharing fingerprint
/// (sharing_planner.h), and runs each shared cluster as ONE multi-query
/// GRETA runtime whose graph vertices carry query-indexed aggregate cells —
/// the stream is filtered, partitioned and connected once per cluster
/// instead of once per query. Queries that differ in pattern suffix or
/// window length but agree on a Kleene sub-pattern prefix run as one
/// *partially shared* runtime (GretaEngine::CreatePartial). Clusters the
/// cost model rejects run as dedicated per-query engines.
///
/// Adaptive re-planning (options.adaptive.enabled): the plan is no longer
/// baked in at construction. Every shareable cluster with a finite window
/// carries an AdaptiveClusterPlanner fed from the unit runtimes' per-window
/// observations (EngineInterface::TakeWindowObservations); when the
/// observed rates say the other mode wins by the hysteresis margin, the
/// cluster MIGRATES between one merged runtime and per-query dedicated
/// runtimes. A migration never copies graph state: at decision time
/// (watermark `T`) fresh engines are built and take over all windows
/// starting at or after `w_split = ceil(T / slide)`, while the old engines
/// keep running until every window starting before the boundary has closed
/// (the parallel HANDOVER, at most union-WITHIN ticks of double
/// processing), then retire. Rows are routed by window id — old engines
/// own `wid < w_split`, new engines `wid >= w_split` — so results stay
/// bit-identical to static execution; rows of a handover window may
/// surface up to union-WITHIN ticks later than the eager engine would
/// push them (emission_window_bound() is the grid external drivers gate
/// deterministic emission on).
///
/// EngineInterface contract: Process/Flush as usual; TakeResults() drains
/// every query's rows concatenated in query order (each query's rows keep
/// the window-then-group ordering); TakeResults(query_id) drains one query.
class SharedWorkloadEngine : public EngineInterface {
 public:
  static StatusOr<std::unique_ptr<SharedWorkloadEngine>> Create(
      const Catalog* catalog, const std::vector<QuerySpec>& workload,
      const SharedEngineOptions& options = {});

  Status Process(const Event& e) override;
  Status Flush() override;

  /// Watermark hook (src/runtime/): forwards to every unit runtime — see
  /// GretaEngine::AdvanceWatermark. Also drives the adaptation loop:
  /// observation steps complete and migrations start/retire at watermark
  /// boundaries, so per-shard adaptation is deterministic in the shard's
  /// event/watermark sequence.
  Status AdvanceWatermark(Ts now);

  /// All queries' pending rows, concatenated in query-id order.
  std::vector<ResultRow> TakeResults() override;

  /// Pending rows of one query of the workload.
  std::vector<ResultRow> TakeResults(size_t query_id);

  /// Workload-level per-window observations, grouped per cluster (one
  /// block of ascending window ids per cluster): window ids are relative
  /// to each cluster's own grid and never merged across clusters; events
  /// are de-duplicated (max) only within a cluster, structural counters
  /// summed.
  std::vector<WindowObservation> TakeWindowObservations() override;

  /// The latest-closing grid `query_id`'s rows can EVER be emitted on:
  /// the unit runtime's own grid for static execution (the query's window
  /// for dedicated and exact-shared units, the cluster's UNION window for
  /// partial units); under adaptive re-planning, the cluster's union
  /// window (migrations move a query between its own grid and the union
  /// grid, never past it). External drivers (runtime/ResultMerger) gate
  /// deterministic emission on this — there is deliberately no accessor
  /// for the CURRENT unit's grid, which is time-varying under adaptive
  /// mode and unsafe to gate on.
  WindowSpec emission_window_bound(size_t query_id) const;

  /// Sums RecomputeTrackedBytes over unit runtimes (accounting invariant
  /// tests; must equal memory().current_bytes() when quiescent).
  size_t RecomputeTrackedBytes() const;

  /// Push-style delivery for EVERY query of the workload: `callback` fires
  /// with the workload query index for each result row the moment the
  /// engine owning its window closes it. During a migration handover the
  /// new engines' rows are held until the old engines retire (at most
  /// union-WITHIN ticks), so the per-query (window, group) order is
  /// preserved across migrations.
  void set_result_callback(
      std::function<void(size_t query_id, const ResultRow& row)> callback);

  size_t num_queries() const { return routes_.size(); }
  const SharingPlan& sharing_plan() const { return plan_; }
  const AggPlan& agg_plan_for(size_t query_id) const;

  /// Per-query EXPLAIN ANALYZE tallies for every query of the workload, in
  /// query-id order: the owning unit runtime's tallies (cluster-attributed
  /// under sharing — see QueryExecStats) plus any in-flight handover
  /// engine's and the retired accumulator's, so migrations never lose
  /// observed work. O(queries); read at snapshot points, not per event.
  std::vector<QueryExecStats> query_exec_stats() const;

  /// Adaptation telemetry, one entry per plan cluster (in cluster order):
  /// current mode, applied migrations, observed rates and cost estimates.
  /// Clusters outside the loop (dedicated-only, unbounded windows,
  /// adaptation disabled) report zero migrations and their static mode.
  std::vector<AdaptationStats> adaptation_states() const;

  /// Total applied migrations across all clusters.
  size_t total_migrations() const;

  /// Aggregated stats: events counted once; vertices/edges/work summed
  /// over LIVE unit runtimes plus the retired accumulator (engines retired
  /// by migrations keep their cumulative structural work — no counters are
  /// lost or double-counted when engines are created or retired mid-run);
  /// peak_bytes is the true point-in-time workload peak from the shared
  /// MemoryTracker, NOT a sum of per-unit peaks reached at different times.
  const EngineStats& stats() const override;
  const AggPlan& agg_plan() const override { return agg_plan_for(0); }
  std::string name() const override { return "SHARED"; }

  /// The workload-wide memory tracker every unit runtime accounts into.
  const MemoryTracker& memory() const { return memory_; }

 private:
  // Aggregation of unit observations for one window-grid step: events are
  // de-duplicated with max() (every engine of a cluster routes the same
  // relevant events), structural counters summed.
  struct PendingObservation {
    size_t events = 0;
    size_t vertices = 0;
    size_t edges = 0;
  };

  // One plan cluster's live execution state. The engines vector holds ONE
  // merged runtime (merged == true) or one dedicated engine per query in
  // query_ids order; during a handover the outgoing engines live in
  // `retiring` until every window they own has closed.
  struct ClusterState {
    size_t index = 0;  // position in the sharing plan (telemetry labels)
    std::vector<size_t> query_ids;
    bool merged = false;
    bool partial = false;  // merged unit built via CreatePartial
    std::vector<std::unique_ptr<GretaEngine>> engines;

    // Adaptation (nullopt: cluster is outside the re-planning loop).
    std::optional<AdaptiveClusterPlanner> planner;
    WindowSpec bound_window;  // union window: max WITHIN, shared slide
    bool obs_started = false;
    WindowId next_obs_wid = 0;
    std::unordered_map<WindowId, PendingObservation> obs_pending;

    // Handover state.
    std::vector<std::unique_ptr<GretaEngine>> retiring;
    bool retiring_merged = false;
    WindowId split_wid = 0;
    Ts retire_at = kMaxTs;
    size_t generation = 0;  // bumped per migration (callback routing)

    size_t migrations = 0;
    EngineStats retired_stats;  // cumulative counters of retired engines
    // Per-slot EXPLAIN tallies of retired engines (query_ids order),
    // accumulated by RetireOld alongside retired_stats.
    std::vector<QueryExecStats> retired_query_stats;

    // Per-cluster telemetry series (null when disarmed): execution mode
    // (0 = merged, 1 = dedicated) and the calibrated cost-model
    // coefficient, labeled {shard=,cluster=}.
    telemetry::Gauge* tm_mode = nullptr;
    telemetry::Gauge* tm_qhat = nullptr;

    bool handover_active() const { return !retiring.empty(); }
  };

  struct Route {
    size_t cluster = 0;
    size_t slot = 0;  // index within the cluster's query_ids
  };

  SharedWorkloadEngine() = default;

  Status BuildClusterEngines(ClusterState* cluster, bool merged,
                             std::vector<std::unique_ptr<GretaEngine>>* out);
  GretaEngine* EngineFor(const ClusterState& cluster, size_t slot) const;
  size_t EngineSlot(const ClusterState& cluster, size_t slot) const;
  void WireCluster(ClusterState* cluster);
  void AdaptStep(Ts now);
  void ObserveCluster(ClusterState* cluster, Ts now);
  Status StartMigration(ClusterState* cluster, ClusterMode target, Ts now);
  void RetireOld(ClusterState* cluster);
  void RecordWorkloadObservation(const WindowObservation& obs);

  const Catalog* catalog_ = nullptr;
  SharingPlan plan_;
  std::vector<QuerySpec> specs_;  // cloned workload (migrations recompile)
  EngineOptions unit_options_;    // memory rewired to memory_
  AdaptiveOptions adaptive_options_;
  bool adaptive_enabled_ = false;

  // Declared before clusters_: the unit engines hold pointers into the
  // tracker (EngineOptions::memory, "must outlive the engine"), so it must
  // be destroyed after them.
  MemoryTracker memory_;
  std::vector<std::unique_ptr<ClusterState>> clusters_;
  std::vector<Route> routes_;
  // Rows drained from retiring/new engines at handover completion, per
  // query, released ahead of live-engine rows (window order preserved).
  std::vector<std::vector<ResultRow>> holdover_;
  std::function<void(size_t, const ResultRow&)> callback_;
  size_t events_processed_ = 0;
  Ts adapt_wake_ = kMaxTs;  // next time AdaptStep has work to do
  bool adapt_initialized_ = false;
  std::deque<WindowObservation> workload_obs_;
  mutable EngineStats stats_;

  // Workload-level telemetry (null when disarmed): applied migrations and
  // the planner lifecycle trace, stamped with the shard label/field.
  telemetry::Counter* tm_migrations_ = nullptr;
  telemetry::TraceRing* tm_trace_ = nullptr;
  uint16_t tm_shard_ = 0;
  void EmitClusterTrace(telemetry::TraceKind kind, const ClusterState& cluster,
                        Ts now) const;
};

}  // namespace greta::sharing

#endif  // GRETA_SHARING_SHARED_ENGINE_H_
