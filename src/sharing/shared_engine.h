#ifndef GRETA_SHARING_SHARED_ENGINE_H_
#define GRETA_SHARING_SHARED_ENGINE_H_

#include <memory>
#include <vector>

#include "core/engine.h"
#include "sharing/sharing_planner.h"

namespace greta::sharing {

/// Options of the shared workload runtime: the engine options are applied
/// uniformly to every unit runtime (semantics, counter mode and window
/// limits are workload-level properties here), the sharing options drive the
/// share/no-share planning.
///
/// `engine.memory`, when set, becomes the PARENT of the workload tracker:
/// the workload still accounts its own point-in-time peak, and every
/// allocation also rolls up into the caller's tracker (src/runtime/ sharded
/// execution aggregates per-shard workloads this way).
struct SharedEngineOptions {
  EngineOptions engine;
  SharingOptions sharing;
};

/// Multi-query shared execution runtime (after Hamlet's shared Kleene
/// sub-pattern graphs and EAGr's shared continuous aggregates): accepts a
/// workload of N parsed queries, clusters them by sharing fingerprint
/// (sharing_planner.h), and runs each shared cluster as ONE multi-query
/// GRETA runtime whose graph vertices carry query-indexed aggregate cells —
/// the stream is filtered, partitioned and connected once per cluster
/// instead of once per query. Queries that differ in pattern suffix or
/// window length but agree on a Kleene sub-pattern prefix run as one
/// *partially shared* runtime (GretaEngine::CreatePartial): the common core
/// propagates a structural snapshot per (vertex, window) and each query
/// folds it through its own continuation states. Clusters the cost model
/// rejects run as dedicated per-query engines, so the runtime never loses
/// to independent execution by construction.
///
/// EngineInterface contract: Process/Flush as usual; TakeResults() drains
/// every query's rows concatenated in query order (each query's rows keep
/// the window-then-group ordering); TakeResults(query_id) drains one query.
class SharedWorkloadEngine : public EngineInterface {
 public:
  static StatusOr<std::unique_ptr<SharedWorkloadEngine>> Create(
      const Catalog* catalog, const std::vector<QuerySpec>& workload,
      const SharedEngineOptions& options = {});

  Status Process(const Event& e) override;
  Status Flush() override;

  /// Watermark hook (src/runtime/): forwards to every unit runtime — see
  /// GretaEngine::AdvanceWatermark.
  Status AdvanceWatermark(Ts now);

  /// All queries' pending rows, concatenated in query-id order.
  std::vector<ResultRow> TakeResults() override;

  /// Pending rows of one query of the workload.
  std::vector<ResultRow> TakeResults(size_t query_id);

  /// The window grid on which `query_id`'s rows are actually emitted by its
  /// unit runtime: its own window for dedicated and exact-shared units, the
  /// cluster's UNION window for partial units (rows surface when the union
  /// window closes — see GretaEngine::CreatePartial). External drivers gate
  /// deterministic emission on this, not on the query's declared window.
  WindowSpec emission_window(size_t query_id) const;

  /// Sums RecomputeTrackedBytes over unit runtimes (accounting invariant
  /// tests; must equal memory().current_bytes() when quiescent).
  size_t RecomputeTrackedBytes() const;

  /// Push-style delivery for EVERY query of the workload: `callback` fires
  /// with the workload query index for each result row the moment its
  /// window closes, whatever unit runtime (shared, partial or dedicated)
  /// computed it. Queries of a PARTIAL cluster close on the cluster's
  /// union window, so a shorter-WITHIN member's rows fire up to
  /// `max_within - within` ticks later than a dedicated engine would push
  /// them (see GretaEngine::CreatePartial).
  void set_result_callback(
      std::function<void(size_t query_id, const ResultRow& row)> callback);

  size_t num_queries() const { return routes_.size(); }
  const SharingPlan& sharing_plan() const { return plan_; }
  const AggPlan& agg_plan_for(size_t query_id) const;

  /// Aggregated stats: events counted once; vertices/edges/work summed over
  /// unit runtimes (so sharing wins show up as fewer stored vertices);
  /// peak_bytes is the true point-in-time workload peak from the shared
  /// MemoryTracker, NOT a sum of per-unit peaks reached at different times.
  const EngineStats& stats() const override;
  const AggPlan& agg_plan() const override { return agg_plan_for(0); }
  std::string name() const override { return "SHARED"; }

  /// The workload-wide memory tracker every unit runtime accounts into.
  const MemoryTracker& memory() const { return memory_; }

 private:
  // Query -> (unit runtime, query slot within that runtime).
  struct Route {
    size_t unit = 0;
    size_t slot = 0;
  };

  SharedWorkloadEngine() = default;

  SharingPlan plan_;
  // Declared before units_: the unit engines hold pointers into the
  // tracker (EngineOptions::memory, "must outlive the engine"), so it must
  // be destroyed after them.
  MemoryTracker memory_;
  std::vector<std::unique_ptr<GretaEngine>> units_;
  std::vector<Route> routes_;
  std::function<void(size_t, const ResultRow&)> callback_;
  size_t events_processed_ = 0;
  mutable EngineStats stats_;
};

}  // namespace greta::sharing

#endif  // GRETA_SHARING_SHARED_ENGINE_H_
