#include "sharing/shared_engine.h"

namespace greta::sharing {

StatusOr<std::unique_ptr<SharedWorkloadEngine>> SharedWorkloadEngine::Create(
    const Catalog* catalog, const std::vector<QuerySpec>& workload,
    const SharedEngineOptions& options) {
  StatusOr<SharingPlan> plan =
      PlanSharing(workload, *catalog, options.sharing);
  if (!plan.ok()) return plan.status();

  auto engine =
      std::unique_ptr<SharedWorkloadEngine>(new SharedWorkloadEngine());
  engine->plan_ = std::move(plan).value();
  engine->routes_.resize(workload.size());

  for (const QueryCluster& cluster : engine->plan_.clusters) {
    if (cluster.shared) {
      std::vector<const QuerySpec*> specs;
      specs.reserve(cluster.query_ids.size());
      for (size_t q : cluster.query_ids) specs.push_back(&workload[q]);
      StatusOr<std::unique_ptr<GretaEngine>> unit =
          GretaEngine::CreateMulti(catalog, specs, options.engine);
      if (!unit.ok()) return unit.status();
      for (size_t slot = 0; slot < cluster.query_ids.size(); ++slot) {
        engine->routes_[cluster.query_ids[slot]] = {engine->units_.size(),
                                                    slot};
      }
      engine->units_.push_back(std::move(unit).value());
    } else {
      for (size_t q : cluster.query_ids) {
        StatusOr<std::unique_ptr<GretaEngine>> unit =
            GretaEngine::Create(catalog, workload[q], options.engine);
        if (!unit.ok()) return unit.status();
        engine->routes_[q] = {engine->units_.size(), 0};
        engine->units_.push_back(std::move(unit).value());
      }
    }
  }
  return engine;
}

Status SharedWorkloadEngine::Process(const Event& e) {
  for (std::unique_ptr<GretaEngine>& unit : units_) {
    Status s = unit->Process(e);
    if (!s.ok()) return s;
  }
  ++events_processed_;
  return Status::Ok();
}

Status SharedWorkloadEngine::Flush() {
  for (std::unique_ptr<GretaEngine>& unit : units_) {
    Status s = unit->Flush();
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

std::vector<ResultRow> SharedWorkloadEngine::TakeResults() {
  std::vector<ResultRow> all;
  for (size_t q = 0; q < routes_.size(); ++q) {
    std::vector<ResultRow> rows = TakeResults(q);
    all.insert(all.end(), std::make_move_iterator(rows.begin()),
               std::make_move_iterator(rows.end()));
  }
  return all;
}

std::vector<ResultRow> SharedWorkloadEngine::TakeResults(size_t query_id) {
  GRETA_CHECK(query_id < routes_.size());
  const Route& route = routes_[query_id];
  return units_[route.unit]->TakeResultsFor(route.slot);
}

const AggPlan& SharedWorkloadEngine::agg_plan_for(size_t query_id) const {
  GRETA_CHECK(query_id < routes_.size());
  const Route& route = routes_[query_id];
  const ExecPlan& plan = units_[route.unit]->plan();
  return plan.query_aggs.empty() ? plan.agg : plan.query_aggs[route.slot];
}

const EngineStats& SharedWorkloadEngine::stats() const {
  stats_ = EngineStats{};
  stats_.events_processed = events_processed_;
  for (const std::unique_ptr<GretaEngine>& unit : units_) {
    const EngineStats& s = unit->stats();
    stats_.vertices_stored += s.vertices_stored;
    stats_.edges_traversed += s.edges_traversed;
    stats_.work_units += s.work_units;
    stats_.peak_bytes += s.peak_bytes;
  }
  return stats_;
}

}  // namespace greta::sharing
