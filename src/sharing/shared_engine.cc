#include "sharing/shared_engine.h"

#include <algorithm>
#include <map>

#include "storage/window.h"
#include "telemetry/telemetry.h"

namespace greta::sharing {

namespace {

#if GRETA_TELEMETRY
// Mode gauge encoding: 0 = merged (one shared runtime), 1 = dedicated.
double ModeGaugeValue(bool merged) { return merged ? 0.0 : 1.0; }
#endif

// Static shape of the observed-rate cost model (adaptive_planner.h).
// Per-edge-window work units: a dedicated engine pays one scan/predicate
// step plus one aggregate cell per edge-window over its OWN window range;
// the merged runtime pays one scan step plus its cell row — n cells for an
// exact cluster, one snapshot plus one fold per attribute-aggregating
// query for a partial cluster — over the UNION range.
ClusterShape ComputeShape(const std::vector<size_t>& query_ids, bool partial,
                          const WindowSpec& bound,
                          const std::vector<QuerySpec>& specs) {
  ClusterShape shape;
  shape.num_queries = query_ids.size();
  shape.dedicated_passes = static_cast<double>(query_ids.size());
  const double ku = static_cast<double>(MaxWindowsPerEvent(bound));
  double merged_cells;
  if (partial) {
    size_t folds = 0;
    for (size_t q : query_ids) {
      bool has_attr_agg = false;
      for (const AggSpec& agg : specs[q].aggs) {
        has_attr_agg |= (agg.kind != AggKind::kCountStar);
      }
      folds += has_attr_agg ? 1 : 0;
    }
    merged_cells = 1.0 + static_cast<double>(folds);
  } else {
    merged_cells = static_cast<double>(query_ids.size());
  }
  shape.merged_quad = (1.0 + merged_cells) * ku * ku;
  shape.dedicated_quad = 0.0;
  for (size_t q : query_ids) {
    const double kq =
        static_cast<double>(MaxWindowsPerEvent(specs[q].window));
    shape.dedicated_quad += 2.0 * kq * kq;
  }
  return shape;
}

}  // namespace

StatusOr<std::unique_ptr<SharedWorkloadEngine>> SharedWorkloadEngine::Create(
    const Catalog* catalog, const std::vector<QuerySpec>& workload,
    const SharedEngineOptions& options) {
  // Partial sharing leans on skip-till-any-match semantics (the restricted
  // semantics tie per-event bookkeeping to one query's structure); other
  // semantics fall back to exact sharing + dedicated runtimes.
  SharingOptions sharing = options.sharing;
  if (options.engine.semantics != Semantics::kSkipTillAnyMatch) {
    sharing.enable_partial_sharing = false;
  }
  StatusOr<SharingPlan> plan = PlanSharing(workload, *catalog, sharing);
  if (!plan.ok()) return plan.status();

  auto engine =
      std::unique_ptr<SharedWorkloadEngine>(new SharedWorkloadEngine());
  engine->catalog_ = catalog;
  engine->plan_ = std::move(plan).value();
  engine->routes_.resize(workload.size());
  engine->holdover_.resize(workload.size());
  engine->specs_.reserve(workload.size());
  for (const QuerySpec& spec : workload) {
    engine->specs_.push_back(spec.Clone());
  }
  engine->adaptive_options_ = options.adaptive;

  // Every unit runtime accounts into the workload-wide tracker so
  // stats().peak_bytes is a true point-in-time peak. A caller-provided
  // tracker becomes the parent: the workload keeps its own accounting and
  // rolls every allocation up (sharded runtimes aggregate shards this way).
  engine->memory_.set_parent(options.engine.memory);
  engine->unit_options_ = options.engine;
  engine->unit_options_.memory = &engine->memory_;

#if GRETA_TELEMETRY
  telemetry::MetricRegistry& reg = telemetry::MetricRegistry::Default();
  engine->tm_shard_ = static_cast<uint16_t>(options.telemetry_shard);
  engine->tm_migrations_ = reg.CounterIf(telemetry::Labeled(
      "greta_sharing_migrations_total", "shard", options.telemetry_shard));
  engine->tm_trace_ = reg.TraceIf();
#endif

  for (size_t ci = 0; ci < engine->plan_.clusters.size(); ++ci) {
    QueryCluster& cluster = engine->plan_.clusters[ci];
    auto cs = std::make_unique<ClusterState>();
    cs->index = ci;
    cs->query_ids = cluster.query_ids;
    cs->merged = cluster.shared;
    cs->partial = cluster.partial;
    Status s = engine->BuildClusterEngines(cs.get(), cs->merged,
                                           &cs->engines);
    if (!s.ok()) {
      if (cluster.partial && s.code() == StatusCode::kUnsupported) {
        // A partial cluster the merged planner cannot execute (e.g. the
        // union window exceeds the per-event window limit) degrades to
        // dedicated runtimes instead of failing the workload. Any other
        // error means the pooling and the plan builder disagree — a bug
        // that must surface, not be silently papered over.
        cluster.shared = false;
        cs->merged = false;
        cs->partial = false;
        cs->engines.clear();
        s = engine->BuildClusterEngines(cs.get(), false, &cs->engines);
      }
      if (!s.ok()) return s;
    }

    // Adaptive eligibility: a shareable cluster of >= 2 queries over
    // bounded, equal-slide windows. Everything else stays on its static
    // plan (there is either no alternative mode or no safe boundary).
    if (options.adaptive.enabled && cluster.shared &&
        cs->query_ids.size() >= 2) {
      bool windows_ok = true;
      Ts slide = 0;
      Ts max_within = 0;
      for (size_t q : cs->query_ids) {
        const WindowSpec& w = engine->specs_[q].window;
        if (w.unbounded() || w.slide <= 0) {
          windows_ok = false;
          break;
        }
        if (slide == 0) slide = w.slide;
        windows_ok &= (w.slide == slide);
        max_within = std::max(max_within, w.within);
      }
      if (windows_ok) {
        cs->bound_window = WindowSpec::Sliding(max_within, slide);
        ClusterShape shape = ComputeShape(cs->query_ids, cs->partial,
                                          cs->bound_window, engine->specs_);
        cs->planner.emplace(shape, ClusterMode::kMerged, options.adaptive);
        engine->adaptive_enabled_ = true;
      }
    }

#if GRETA_TELEMETRY
    cs->tm_mode = reg.GaugeIf(telemetry::Labeled(
        "greta_sharing_cluster_mode", "shard", options.telemetry_shard,
        "cluster", ci));
    GRETA_TM_SET(cs->tm_mode, ModeGaugeValue(cs->merged));
    if (cs->planner.has_value()) {
      cs->tm_qhat = reg.GaugeIf(telemetry::Labeled(
          "greta_sharing_q_hat", "shard", options.telemetry_shard, "cluster",
          ci));
    }
#endif

    for (size_t slot = 0; slot < cs->query_ids.size(); ++slot) {
      engine->routes_[cs->query_ids[slot]] = {ci, slot};
    }
    engine->clusters_.push_back(std::move(cs));
  }
  return engine;
}

// One lifecycle trace entry for cluster `c`: the payload convention is
// wid = split window (handover) or next observation window, a = mode
// (0 merged / 1 dedicated), b = applied migrations, x/y = the cost model's
// latest merged/dedicated estimates (edge-op units per grid step).
void SharedWorkloadEngine::EmitClusterTrace(telemetry::TraceKind kind,
                                            const ClusterState& c,
                                            Ts now) const {
#if GRETA_TELEMETRY
  if (tm_trace_ == nullptr) return;
  telemetry::TraceEvent e;
  e.kind = kind;
  e.shard = tm_shard_;
  e.cluster = static_cast<uint32_t>(c.index);
  e.ts = now;
  e.wid = static_cast<int64_t>(c.handover_active() ? c.split_wid
                                                   : c.next_obs_wid);
  e.a = c.merged ? 0 : 1;
  e.b = c.migrations;
  if (c.planner.has_value()) {
    const AdaptationStats& s = c.planner->stats();
    e.x = s.cost_merged;
    e.y = s.cost_dedicated;
  }
  tm_trace_->Emit(e);
#else
  (void)kind;
  (void)c;
  (void)now;
#endif
}

Status SharedWorkloadEngine::BuildClusterEngines(
    ClusterState* cluster, bool merged,
    std::vector<std::unique_ptr<GretaEngine>>* out) {
  if (merged) {
    std::vector<const QuerySpec*> specs;
    specs.reserve(cluster->query_ids.size());
    for (size_t q : cluster->query_ids) specs.push_back(&specs_[q]);
    StatusOr<std::unique_ptr<GretaEngine>> unit =
        cluster->partial
            ? GretaEngine::CreatePartial(catalog_, specs, unit_options_)
            : GretaEngine::CreateMulti(catalog_, specs, unit_options_);
    if (!unit.ok()) return unit.status();
    out->push_back(std::move(unit).value());
    return Status::Ok();
  }
  for (size_t q : cluster->query_ids) {
    StatusOr<std::unique_ptr<GretaEngine>> unit =
        GretaEngine::Create(catalog_, specs_[q], unit_options_);
    if (!unit.ok()) return unit.status();
    out->push_back(std::move(unit).value());
  }
  return Status::Ok();
}

GretaEngine* SharedWorkloadEngine::EngineFor(const ClusterState& cluster,
                                             size_t slot) const {
  return cluster.merged ? cluster.engines[0].get()
                        : cluster.engines[slot].get();
}

size_t SharedWorkloadEngine::EngineSlot(const ClusterState& cluster,
                                        size_t slot) const {
  return cluster.merged ? slot : 0;
}

void SharedWorkloadEngine::set_result_callback(
    std::function<void(size_t query_id, const ResultRow& row)> callback) {
  callback_ = std::move(callback);
  for (std::unique_ptr<ClusterState>& cluster : clusters_) {
    WireCluster(cluster.get());
  }
}

void SharedWorkloadEngine::WireCluster(ClusterState* cluster) {
  if (!callback_) return;
  // Push-delivery discipline across migrations: a retiring engine fires
  // only for the windows it still owns (wid < split), a live engine is
  // silenced while a handover is active (its rows are released, in window
  // order, when the old engines retire — RetireOld), and fires directly
  // otherwise. `gen` freezes the engine's role: engines keep their wrapper
  // when they move from live to retiring.
  auto wire = [this, cluster](GretaEngine* engine, size_t engine_slot,
                              size_t qid, size_t gen) {
    engine->set_result_callback(
        engine_slot, [this, cluster, qid, gen](const ResultRow& row) {
          if (!callback_) return;
          if (cluster->handover_active()) {
            if (gen == cluster->generation) return;  // held until retire
            if (row.wid >= cluster->split_wid) return;  // discarded
          }
          callback_(qid, row);
        });
  };
  for (size_t slot = 0; slot < cluster->query_ids.size(); ++slot) {
    wire(EngineFor(*cluster, slot), EngineSlot(*cluster, slot),
         cluster->query_ids[slot], cluster->generation);
  }
  for (size_t i = 0; i < cluster->retiring.size(); ++i) {
    const size_t old_gen = cluster->generation - 1;
    if (cluster->retiring_merged) {
      for (size_t slot = 0; slot < cluster->query_ids.size(); ++slot) {
        wire(cluster->retiring[0].get(), slot, cluster->query_ids[slot],
             old_gen);
      }
      break;
    }
    wire(cluster->retiring[i].get(), 0, cluster->query_ids[i], old_gen);
  }
}

Status SharedWorkloadEngine::Process(const Event& e) {
  if (adaptive_enabled_ && (!adapt_initialized_ || e.time >= adapt_wake_)) {
    AdaptStep(e.time);
  }
  for (std::unique_ptr<ClusterState>& cluster : clusters_) {
    for (std::unique_ptr<GretaEngine>& unit : cluster->retiring) {
      Status s = unit->Process(e);
      if (!s.ok()) return s;
    }
    for (std::unique_ptr<GretaEngine>& unit : cluster->engines) {
      Status s = unit->Process(e);
      if (!s.ok()) return s;
    }
  }
  ++events_processed_;
  return Status::Ok();
}

Status SharedWorkloadEngine::Flush() {
  for (std::unique_ptr<ClusterState>& cluster : clusters_) {
    for (std::unique_ptr<GretaEngine>& unit : cluster->retiring) {
      Status s = unit->Flush();
      if (!s.ok()) return s;
    }
    for (std::unique_ptr<GretaEngine>& unit : cluster->engines) {
      Status s = unit->Flush();
      if (!s.ok()) return s;
    }
    // Flush emits every window up to the stream watermark on old and new
    // engines alike, so the handover has nothing left to wait for.
    if (cluster->handover_active()) RetireOld(cluster.get());
  }
  return Status::Ok();
}

Status SharedWorkloadEngine::AdvanceWatermark(Ts now) {
  if (adaptive_enabled_ && adapt_initialized_ && now >= adapt_wake_) {
    AdaptStep(now);
  }
  for (std::unique_ptr<ClusterState>& cluster : clusters_) {
    for (std::unique_ptr<GretaEngine>& unit : cluster->retiring) {
      Status s = unit->AdvanceWatermark(now);
      if (!s.ok()) return s;
    }
    for (std::unique_ptr<GretaEngine>& unit : cluster->engines) {
      Status s = unit->AdvanceWatermark(now);
      if (!s.ok()) return s;
    }
  }
  return Status::Ok();
}

void SharedWorkloadEngine::AdaptStep(Ts now) {
  if (!adapt_initialized_) {
    for (std::unique_ptr<ClusterState>& cluster : clusters_) {
      if (!cluster->planner.has_value()) continue;
      cluster->next_obs_wid = FirstWindowOf(now, cluster->bound_window);
      cluster->obs_started = true;
    }
    adapt_initialized_ = true;
  }
  adapt_wake_ = kMaxTs;
  for (std::unique_ptr<ClusterState>& cluster : clusters_) {
    ClusterState* c = cluster.get();
    if (!c->planner.has_value()) continue;
    // Close every due window first so the observations below are current:
    // identical to what Process(e at `now`) would do before routing.
    for (std::unique_ptr<GretaEngine>& unit : c->retiring) {
      unit->AdvanceWatermark(now);
    }
    for (std::unique_ptr<GretaEngine>& unit : c->engines) {
      unit->AdvanceWatermark(now);
    }
    if (c->handover_active() && now >= c->retire_at) RetireOld(c);

    ObserveCluster(c, now);
    GRETA_TM_SET(c->tm_qhat, c->planner->stats().q_hat);

    if (!c->handover_active()) {
      ClusterMode target = c->planner->Decide();
      ClusterMode current =
          c->merged ? ClusterMode::kMerged : ClusterMode::kDedicated;
      EmitClusterTrace(telemetry::TraceKind::kPlanDecision, *c, now);
      if (target != current) {
        // A failed rebuild here would mean the same specs that compiled at
        // Create no longer compile — surface it loudly rather than limp on
        // with a half-migrated cluster.
        Status s = StartMigration(c, target, now);
        GRETA_CHECK(s.ok());
      }
    }

    Ts wake = WindowCloseTime(c->next_obs_wid, c->bound_window);
    if (c->handover_active()) wake = std::min(wake, c->retire_at);
    adapt_wake_ = std::min(adapt_wake_, wake);
  }
}

void SharedWorkloadEngine::ObserveCluster(ClusterState* c, Ts now) {
  // Only LIVE engines feed the planner: during a handover the retiring
  // engines process the same events again, and counting that transient
  // double work would distort the calibration right after a migration.
  for (std::unique_ptr<GretaEngine>& unit : c->engines) {
    for (const WindowObservation& obs : unit->TakeWindowObservations()) {
      if (obs.wid < c->next_obs_wid) continue;  // stale (handover remnant)
      PendingObservation& p = c->obs_pending[obs.wid];
      p.events = std::max(p.events, obs.events_routed);
      p.vertices += obs.vertices_created;
      p.edges += obs.edges_traversed;
    }
  }
  while (c->obs_started &&
         WindowCloseTime(c->next_obs_wid, c->bound_window) <= now) {
    WindowObservation step;
    step.wid = c->next_obs_wid;
    step.close_time = WindowCloseTime(c->next_obs_wid, c->bound_window);
    auto it = c->obs_pending.find(c->next_obs_wid);
    if (it != c->obs_pending.end()) {
      step.events_routed = it->second.events;
      step.vertices_created = it->second.vertices;
      step.edges_traversed = it->second.edges;
      c->obs_pending.erase(it);
    }
    c->planner->Observe(step);
    RecordWorkloadObservation(step);
    ++c->next_obs_wid;
  }
}

Status SharedWorkloadEngine::StartMigration(ClusterState* c,
                                            ClusterMode target, Ts now) {
  const Ts slide = c->bound_window.slide;
  // First window starting at or after `now`: the new engines own it and
  // everything later; the old engines own everything before it.
  const WindowId split = now <= 0 ? 0 : (now + slide - 1) / slide;

  std::vector<std::unique_ptr<GretaEngine>> fresh;
  const bool to_merged = (target == ClusterMode::kMerged);
  Status s = BuildClusterEngines(c, to_merged, &fresh);
  if (!s.ok()) return s;

  c->retiring = std::move(c->engines);
  c->retiring_merged = c->merged;
  c->engines = std::move(fresh);
  c->merged = to_merged;
  c->split_wid = split;
  c->retire_at =
      split >= 1 ? WindowCloseTime(split - 1, c->bound_window) : now;
  ++c->generation;
  ++c->migrations;
  c->planner->OnMigrationApplied(target);
  GRETA_TM_ADD(tm_migrations_, 1);
  GRETA_TM_SET(c->tm_mode, ModeGaugeValue(c->merged));
  EmitClusterTrace(telemetry::TraceKind::kMigrationStart, *c, now);
  WireCluster(c);
  if (now >= c->retire_at) RetireOld(c);
  return Status::Ok();
}

void SharedWorkloadEngine::RetireOld(ClusterState* c) {
  // 1. Final snapshot of the outgoing engines' cumulative work (the
  //    stats() contract: counters of retired engines are kept, not lost).
  for (std::unique_ptr<GretaEngine>& unit : c->retiring) {
    unit->RefreshStats();
    const EngineStats& s = unit->stats();
    c->retired_stats.vertices_stored += s.vertices_stored;
    c->retired_stats.edges_traversed += s.edges_traversed;
    c->retired_stats.work_units += s.work_units;
  }
  // Same contract for the per-slot EXPLAIN tallies.
  if (c->retired_query_stats.size() < c->query_ids.size()) {
    c->retired_query_stats.resize(c->query_ids.size());
  }
  for (size_t slot = 0; slot < c->query_ids.size(); ++slot) {
    const GretaEngine* old_unit = c->retiring_merged
                                      ? c->retiring[0].get()
                                      : c->retiring[slot].get();
    const size_t old_slot = c->retiring_merged ? slot : 0;
    const std::vector<QueryExecStats>& qstats = old_unit->query_exec_stats();
    if (old_slot >= qstats.size()) continue;  // never closed a window
    QueryExecStats& acc = c->retired_query_stats[slot];
    const QueryExecStats& s = qstats[old_slot];
    acc.windows_closed += s.windows_closed;
    acc.events_routed += s.events_routed;
    acc.vertices_created += s.vertices_created;
    acc.edges_traversed += s.edges_traversed;
    acc.rows_emitted += s.rows_emitted;
    acc.emit_ns += s.emit_ns;
  }
  // 2. Drain the outgoing engines' remaining rows; they own wid < split.
  //    (Push callbacks for these fired at window close already.)
  auto drain_old = [this, c](GretaEngine* unit, size_t engine_slot,
                             size_t qid) {
    for (ResultRow& row : unit->TakeResultsFor(engine_slot)) {
      if (row.wid < c->split_wid) holdover_[qid].push_back(std::move(row));
    }
  };
  for (size_t slot = 0; slot < c->query_ids.size(); ++slot) {
    if (c->retiring_merged) {
      drain_old(c->retiring[0].get(), slot, c->query_ids[slot]);
    } else {
      drain_old(c->retiring[slot].get(), 0, c->query_ids[slot]);
    }
  }
  EmitClusterTrace(telemetry::TraceKind::kMigrationFinish, *c,
                   c->retire_at == kMaxTs ? 0 : c->retire_at);
  c->retiring.clear();
  c->retire_at = kMaxTs;
  // 3. Release the new engines' held rows (wid >= split) in window order,
  //    firing the deferred push callbacks.
  for (size_t slot = 0; slot < c->query_ids.size(); ++slot) {
    const size_t qid = c->query_ids[slot];
    GretaEngine* unit = EngineFor(*c, slot);
    for (ResultRow& row : unit->TakeResultsFor(EngineSlot(*c, slot))) {
      if (row.wid < c->split_wid) continue;  // boundary remnant: discarded
      if (callback_) callback_(qid, row);
      holdover_[qid].push_back(std::move(row));
    }
  }
}

WindowSpec SharedWorkloadEngine::emission_window_bound(
    size_t query_id) const {
  GRETA_CHECK(query_id < routes_.size());
  const Route& route = routes_[query_id];
  const ClusterState& c = *clusters_[route.cluster];
  if (c.planner.has_value()) return c.bound_window;
  return EngineFor(c, route.slot)->plan().window;
}

size_t SharedWorkloadEngine::RecomputeTrackedBytes() const {
  size_t bytes = 0;
  for (const std::unique_ptr<ClusterState>& cluster : clusters_) {
    for (const std::unique_ptr<GretaEngine>& unit : cluster->retiring) {
      bytes += unit->RecomputeTrackedBytes();
    }
    for (const std::unique_ptr<GretaEngine>& unit : cluster->engines) {
      bytes += unit->RecomputeTrackedBytes();
    }
  }
  return bytes;
}

std::vector<ResultRow> SharedWorkloadEngine::TakeResults() {
  std::vector<ResultRow> all;
  for (size_t q = 0; q < routes_.size(); ++q) {
    std::vector<ResultRow> rows = TakeResults(q);
    all.insert(all.end(), std::make_move_iterator(rows.begin()),
               std::make_move_iterator(rows.end()));
  }
  return all;
}

std::vector<ResultRow> SharedWorkloadEngine::TakeResults(size_t query_id) {
  GRETA_CHECK(query_id < routes_.size());
  const Route& route = routes_[query_id];
  ClusterState& c = *clusters_[route.cluster];
  std::vector<ResultRow> out = std::move(holdover_[query_id]);
  holdover_[query_id].clear();
  if (c.handover_active()) {
    // Old engines own wid < split; the new engines' rows are held until
    // retirement so the per-query window order survives the handover.
    GretaEngine* old_unit = c.retiring_merged ? c.retiring[0].get()
                                              : c.retiring[route.slot].get();
    const size_t old_slot = c.retiring_merged ? route.slot : 0;
    for (ResultRow& row : old_unit->TakeResultsFor(old_slot)) {
      if (row.wid < c.split_wid) out.push_back(std::move(row));
    }
    return out;
  }
  GretaEngine* unit = EngineFor(c, route.slot);
  std::vector<ResultRow> rows = unit->TakeResultsFor(EngineSlot(c, route.slot));
  out.insert(out.end(), std::make_move_iterator(rows.begin()),
             std::make_move_iterator(rows.end()));
  return out;
}

std::vector<WindowObservation>
SharedWorkloadEngine::TakeWindowObservations() {
  // One block of entries per cluster, each ascending in window id.
  // Window ids are relative to EACH cluster's own grid — clusters with
  // different windows are never merged by raw id (their wids denote
  // different time ranges), and events are de-duplicated (max) only
  // WITHIN a cluster, whose engines route the same relevant events.
  std::vector<WindowObservation> out;
  if (adaptive_enabled_) {
    // Planner clusters' completed grid steps were recorded by AdaptStep.
    out.assign(workload_obs_.begin(), workload_obs_.end());
    workload_obs_.clear();
  }
  for (std::unique_ptr<ClusterState>& cluster : clusters_) {
    if (cluster->planner.has_value() && adaptive_enabled_) continue;
    std::map<WindowId, WindowObservation> merged;
    for (std::unique_ptr<GretaEngine>& unit : cluster->engines) {
      for (const WindowObservation& obs : unit->TakeWindowObservations()) {
        WindowObservation& m = merged[obs.wid];
        m.wid = obs.wid;
        m.close_time = std::max(m.close_time, obs.close_time);
        m.events_routed = std::max(m.events_routed, obs.events_routed);
        m.vertices_created += obs.vertices_created;
        m.edges_traversed += obs.edges_traversed;
      }
    }
    for (auto& [wid, obs] : merged) {
      (void)wid;
      out.push_back(obs);
    }
  }
  return out;
}

void SharedWorkloadEngine::RecordWorkloadObservation(
    const WindowObservation& obs) {
  constexpr size_t kMaxUndrained = 256;
  if (workload_obs_.size() >= kMaxUndrained) workload_obs_.pop_front();
  workload_obs_.push_back(obs);
}

const AggPlan& SharedWorkloadEngine::agg_plan_for(size_t query_id) const {
  GRETA_CHECK(query_id < routes_.size());
  const Route& route = routes_[query_id];
  const ClusterState& c = *clusters_[route.cluster];
  const ExecPlan& plan = EngineFor(c, route.slot)->plan();
  return plan.query_aggs.empty() ? plan.agg
                                 : plan.query_aggs[EngineSlot(c, route.slot)];
}

std::vector<QueryExecStats> SharedWorkloadEngine::query_exec_stats() const {
  std::vector<QueryExecStats> out(routes_.size());
  auto accumulate = [](QueryExecStats* acc, const QueryExecStats& s) {
    acc->windows_closed += s.windows_closed;
    acc->events_routed += s.events_routed;
    acc->vertices_created += s.vertices_created;
    acc->edges_traversed += s.edges_traversed;
    acc->rows_emitted += s.rows_emitted;
    acc->emit_ns += s.emit_ns;
  };
  for (size_t qid = 0; qid < routes_.size(); ++qid) {
    const Route& route = routes_[qid];
    const ClusterState& c = *clusters_[route.cluster];
    QueryExecStats& acc = out[qid];
    acc.query_id = qid;
    const std::vector<QueryExecStats>& live =
        EngineFor(c, route.slot)->query_exec_stats();
    const size_t live_slot = EngineSlot(c, route.slot);
    if (live_slot < live.size()) accumulate(&acc, live[live_slot]);
    if (c.handover_active()) {
      const GretaEngine* old_unit = c.retiring_merged
                                        ? c.retiring[0].get()
                                        : c.retiring[route.slot].get();
      const size_t old_slot = c.retiring_merged ? route.slot : 0;
      const std::vector<QueryExecStats>& old = old_unit->query_exec_stats();
      if (old_slot < old.size()) accumulate(&acc, old[old_slot]);
    }
    if (route.slot < c.retired_query_stats.size()) {
      accumulate(&acc, c.retired_query_stats[route.slot]);
    }
  }
  return out;
}

std::vector<AdaptationStats> SharedWorkloadEngine::adaptation_states() const {
  std::vector<AdaptationStats> out;
  out.reserve(clusters_.size());
  for (const std::unique_ptr<ClusterState>& cluster : clusters_) {
    if (cluster->planner.has_value()) {
      out.push_back(cluster->planner->stats());
    } else {
      AdaptationStats s;
      s.mode = cluster->merged ? ClusterMode::kMerged
                               : ClusterMode::kDedicated;
      out.push_back(s);
    }
  }
  return out;
}

size_t SharedWorkloadEngine::total_migrations() const {
  size_t n = 0;
  for (const std::unique_ptr<ClusterState>& cluster : clusters_) {
    n += cluster->migrations;
  }
  return n;
}

const EngineStats& SharedWorkloadEngine::stats() const {
  // Build the aggregate in a local and publish it in one assignment — the
  // mutable member never holds a half-accumulated state.
  EngineStats total;
  total.events_processed = events_processed_;
  for (const std::unique_ptr<ClusterState>& cluster : clusters_) {
    total.vertices_stored += cluster->retired_stats.vertices_stored;
    total.edges_traversed += cluster->retired_stats.edges_traversed;
    total.work_units += cluster->retired_stats.work_units;
    for (const std::unique_ptr<GretaEngine>& unit : cluster->retiring) {
      const EngineStats& s = unit->stats();
      total.vertices_stored += s.vertices_stored;
      total.edges_traversed += s.edges_traversed;
      total.work_units += s.work_units;
    }
    for (const std::unique_ptr<GretaEngine>& unit : cluster->engines) {
      const EngineStats& s = unit->stats();
      total.vertices_stored += s.vertices_stored;
      total.edges_traversed += s.edges_traversed;
      total.work_units += s.work_units;
    }
  }
  // Peak memory comes from the shared tracker: summing per-unit peaks would
  // add maxima reached at different times and overstate the workload peak.
  total.peak_bytes = memory_.peak_bytes();
  stats_ = total;
  return stats_;
}

}  // namespace greta::sharing
