#include "sharing/shared_engine.h"

namespace greta::sharing {

StatusOr<std::unique_ptr<SharedWorkloadEngine>> SharedWorkloadEngine::Create(
    const Catalog* catalog, const std::vector<QuerySpec>& workload,
    const SharedEngineOptions& options) {
  // Partial sharing leans on skip-till-any-match semantics (the restricted
  // semantics tie per-event bookkeeping to one query's structure); other
  // semantics fall back to exact sharing + dedicated runtimes.
  SharingOptions sharing = options.sharing;
  if (options.engine.semantics != Semantics::kSkipTillAnyMatch) {
    sharing.enable_partial_sharing = false;
  }
  StatusOr<SharingPlan> plan = PlanSharing(workload, *catalog, sharing);
  if (!plan.ok()) return plan.status();

  auto engine =
      std::unique_ptr<SharedWorkloadEngine>(new SharedWorkloadEngine());
  engine->plan_ = std::move(plan).value();
  engine->routes_.resize(workload.size());

  // Every unit runtime accounts into the workload-wide tracker so
  // stats().peak_bytes is a true point-in-time peak. A caller-provided
  // tracker becomes the parent: the workload keeps its own accounting and
  // rolls every allocation up (sharded runtimes aggregate shards this way).
  engine->memory_.set_parent(options.engine.memory);
  EngineOptions unit_options = options.engine;
  unit_options.memory = &engine->memory_;

  auto add_dedicated = [&](size_t q) -> Status {
    StatusOr<std::unique_ptr<GretaEngine>> unit =
        GretaEngine::Create(catalog, workload[q], unit_options);
    if (!unit.ok()) return unit.status();
    engine->routes_[q] = {engine->units_.size(), 0};
    engine->units_.push_back(std::move(unit).value());
    return Status::Ok();
  };

  for (QueryCluster& cluster : engine->plan_.clusters) {
    if (cluster.shared) {
      std::vector<const QuerySpec*> specs;
      specs.reserve(cluster.query_ids.size());
      for (size_t q : cluster.query_ids) specs.push_back(&workload[q]);
      StatusOr<std::unique_ptr<GretaEngine>> unit =
          cluster.partial
              ? GretaEngine::CreatePartial(catalog, specs, unit_options)
              : GretaEngine::CreateMulti(catalog, specs, unit_options);
      if (!unit.ok()) {
        if (cluster.partial &&
            unit.status().code() == StatusCode::kUnsupported) {
          // A partial cluster the merged planner cannot execute (e.g. the
          // union window exceeds the per-event window limit) degrades to
          // dedicated runtimes instead of failing the workload. Any other
          // error means the pooling and the plan builder disagree — a bug
          // that must surface, not be silently papered over.
          cluster.shared = false;
          for (size_t q : cluster.query_ids) {
            Status s = add_dedicated(q);
            if (!s.ok()) return s;
          }
          continue;
        }
        return unit.status();
      }
      for (size_t slot = 0; slot < cluster.query_ids.size(); ++slot) {
        engine->routes_[cluster.query_ids[slot]] = {engine->units_.size(),
                                                    slot};
      }
      engine->units_.push_back(std::move(unit).value());
    } else {
      for (size_t q : cluster.query_ids) {
        Status s = add_dedicated(q);
        if (!s.ok()) return s;
      }
    }
  }
  return engine;
}

void SharedWorkloadEngine::set_result_callback(
    std::function<void(size_t query_id, const ResultRow& row)> callback) {
  callback_ = std::move(callback);
  for (size_t q = 0; q < routes_.size(); ++q) {
    const Route& route = routes_[q];
    units_[route.unit]->set_result_callback(
        route.slot, [this, q](const ResultRow& row) {
          if (callback_) callback_(q, row);
        });
  }
}

Status SharedWorkloadEngine::Process(const Event& e) {
  for (std::unique_ptr<GretaEngine>& unit : units_) {
    Status s = unit->Process(e);
    if (!s.ok()) return s;
  }
  ++events_processed_;
  return Status::Ok();
}

Status SharedWorkloadEngine::Flush() {
  for (std::unique_ptr<GretaEngine>& unit : units_) {
    Status s = unit->Flush();
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status SharedWorkloadEngine::AdvanceWatermark(Ts now) {
  for (std::unique_ptr<GretaEngine>& unit : units_) {
    Status s = unit->AdvanceWatermark(now);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

WindowSpec SharedWorkloadEngine::emission_window(size_t query_id) const {
  GRETA_CHECK(query_id < routes_.size());
  return units_[routes_[query_id].unit]->plan().window;
}

size_t SharedWorkloadEngine::RecomputeTrackedBytes() const {
  size_t bytes = 0;
  for (const std::unique_ptr<GretaEngine>& unit : units_) {
    bytes += unit->RecomputeTrackedBytes();
  }
  return bytes;
}

std::vector<ResultRow> SharedWorkloadEngine::TakeResults() {
  std::vector<ResultRow> all;
  for (size_t q = 0; q < routes_.size(); ++q) {
    std::vector<ResultRow> rows = TakeResults(q);
    all.insert(all.end(), std::make_move_iterator(rows.begin()),
               std::make_move_iterator(rows.end()));
  }
  return all;
}

std::vector<ResultRow> SharedWorkloadEngine::TakeResults(size_t query_id) {
  GRETA_CHECK(query_id < routes_.size());
  const Route& route = routes_[query_id];
  return units_[route.unit]->TakeResultsFor(route.slot);
}

const AggPlan& SharedWorkloadEngine::agg_plan_for(size_t query_id) const {
  GRETA_CHECK(query_id < routes_.size());
  const Route& route = routes_[query_id];
  const ExecPlan& plan = units_[route.unit]->plan();
  return plan.query_aggs.empty() ? plan.agg : plan.query_aggs[route.slot];
}

const EngineStats& SharedWorkloadEngine::stats() const {
  // Build the aggregate in a local and publish it in one assignment — the
  // mutable member never holds a half-accumulated state.
  EngineStats total;
  total.events_processed = events_processed_;
  for (const std::unique_ptr<GretaEngine>& unit : units_) {
    const EngineStats& s = unit->stats();
    total.vertices_stored += s.vertices_stored;
    total.edges_traversed += s.edges_traversed;
    total.work_units += s.work_units;
  }
  // Peak memory comes from the shared tracker: summing per-unit peaks would
  // add maxima reached at different times and overstate the workload peak.
  total.peak_bytes = memory_.peak_bytes();
  stats_ = total;
  return stats_;
}

}  // namespace greta::sharing
