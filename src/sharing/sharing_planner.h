#ifndef GRETA_SHARING_SHARING_PLANNER_H_
#define GRETA_SHARING_SHARING_PLANNER_H_

#include <string>
#include <vector>

#include "common/catalog.h"
#include "common/status.h"
#include "query/query.h"

namespace greta::sharing {

/// Normalizes one query into a canonical *sharing fingerprint*: two queries
/// with equal fingerprints compute their aggregates over the same GRETA
/// graph (same matched trends, same partitions, same windows) and may differ
/// only in WHICH aggregates they request. The fingerprint covers:
///
///  - the pattern, normalized through the GRETA template automaton
///    (Algorithm 1) for positive patterns — so syntactically different but
///    automaton-identical patterns (and alias renamings, which never reach
///    the Pattern tree) merge — falling back to the canonical pattern
///    rendering when negation is present;
///  - the WHERE conjuncts, order-normalized;
///  - the equivalence attributes (order-normalized) and GROUP-BY attributes
///    (order-preserved: output rows depend on it);
///  - the window, normalized (every unbounded spelling merges; a tumbling
///    window equals the sliding window with slide == length).
///
/// Aggregate specs are deliberately excluded: they are what the merged
/// runtime keeps per query.
class TemplateMerger {
 public:
  static StatusOr<std::string> Fingerprint(const QuerySpec& spec,
                                           const Catalog& catalog);
};

/// Knobs of the share/no-share decision.
///
/// Honest caveat: under the current model (EstimateCosts in the .cc) a
/// merged runtime never repeats structural work, so `shared < independent`
/// holds for EVERY cluster of n >= 2 and the decision effectively reduces
/// to `enable_sharing && n >= min_cluster_size`. The estimated costs are
/// still computed and reported per cluster (SharingPlan telemetry), and the
/// weights parameterize future models where sharing can genuinely lose
/// (e.g. per-query predicate pushdown that sharing would forfeit).
struct SharingOptions {
  /// Master switch: false plans every query as its own dedicated runtime.
  bool enable_sharing = true;
  /// Partial sharing of common Kleene sub-pattern prefixes (Hamlet): pools
  /// queries whose exact-fingerprint clusters stay unshared into merged
  /// snapshot-propagating runtimes. Requires skip-till-any-match semantics;
  /// SharedWorkloadEngine::Create clears the flag for other semantics.
  bool enable_partial_sharing = true;
  /// Smallest cluster worth merging. 1 clusters trivially (each shared
  /// "cluster" of one query is just a dedicated runtime).
  size_t min_cluster_size = 2;
  /// Cost model weights of the per-event work estimate:
  ///   unit(q) = (structural_weight * size + predicate_weight * preds
  ///              + aggregate_weight * size) * overlap(q)
  ///   overlap(q) = 1 + window_overlap_weight * (MaxWindowsPerEvent - 1)
  /// A shared runtime pays the structural + predicate terms once per
  /// cluster (exact sharing) or once for the common Kleene core plus per
  /// query for its continuation (partial sharing), and the aggregate term
  /// per query; dedicated runtimes pay everything per query.
  double structural_weight = 4.0;
  double aggregate_weight = 1.0;
  /// Work per WHERE conjunct evaluated per candidate vertex/edge.
  double predicate_weight = 1.0;
  /// Marginal work per extra overlapping window (per-window aggregate cells
  /// touched per vertex, Section 6's shared sliding windows keep this well
  /// under 1 per window).
  double window_overlap_weight = 0.25;
};

/// One cluster of queries plus the planner's decision: either
/// fingerprint-identical (exact sharing) or agreeing on a common Kleene
/// sub-pattern prefix, predicates over it, keys and slide (partial sharing).
struct QueryCluster {
  std::vector<size_t> query_ids;  // indices into the workload, ascending
  std::string fingerprint;        // exact fingerprint, or partial pool key
  bool shared = false;            // merge into one multi-query runtime?
  bool partial = false;           // merged via snapshot-propagating core?
  double shared_cost = 0.0;       // estimated work units per event
  double independent_cost = 0.0;
};

/// The sharing planner's output: a partition of the workload into clusters.
struct SharingPlan {
  std::vector<QueryCluster> clusters;
  size_t num_queries = 0;

  size_t num_shared_clusters() const {
    size_t n = 0;
    for (const QueryCluster& c : clusters) n += c.shared ? 1 : 0;
    return n;
  }

  /// Human-readable summary ("cluster 0: queries {0,2,5} SHARED ...").
  std::string ToString() const;
};

/// Clusters `workload` by sharing fingerprint and decides share/no-share per
/// cluster with a simple cost model: a merged runtime pays the structural
/// graph work (predicate evaluation, predecessor range queries, vertex
/// storage) once per event plus aggregate propagation per query, while
/// dedicated runtimes pay both per query. Queries left unshared by exact
/// clustering are then pooled by common Kleene sub-pattern prefix (same
/// core template, core predicates, keys, and window slide) into *partial*
/// clusters executed via snapshot propagation (BuildPartialSharedPlan); the
/// cost model charges the shared core once and each query's continuation
/// and aggregate work separately.
StatusOr<SharingPlan> PlanSharing(const std::vector<QuerySpec>& workload,
                                  const Catalog& catalog,
                                  const SharingOptions& options = {});

}  // namespace greta::sharing

#endif  // GRETA_SHARING_SHARING_PLANNER_H_
