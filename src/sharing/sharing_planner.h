#ifndef GRETA_SHARING_SHARING_PLANNER_H_
#define GRETA_SHARING_SHARING_PLANNER_H_

#include <string>
#include <vector>

#include "common/catalog.h"
#include "common/status.h"
#include "query/query.h"

namespace greta::sharing {

/// Normalizes one query into a canonical *sharing fingerprint*: two queries
/// with equal fingerprints compute their aggregates over the same GRETA
/// graph (same matched trends, same partitions, same windows) and may differ
/// only in WHICH aggregates they request. The fingerprint covers:
///
///  - the pattern, normalized through the GRETA template automaton
///    (Algorithm 1) for positive patterns — so syntactically different but
///    automaton-identical patterns (and alias renamings, which never reach
///    the Pattern tree) merge — falling back to the canonical pattern
///    rendering when negation is present;
///  - the WHERE conjuncts, order-normalized;
///  - the equivalence attributes (order-normalized) and GROUP-BY attributes
///    (order-preserved: output rows depend on it);
///  - the window, normalized (every unbounded spelling merges; a tumbling
///    window equals the sliding window with slide == length).
///
/// Aggregate specs are deliberately excluded: they are what the merged
/// runtime keeps per query.
class TemplateMerger {
 public:
  static StatusOr<std::string> Fingerprint(const QuerySpec& spec,
                                           const Catalog& catalog);
};

/// Knobs of the share/no-share decision.
///
/// Honest caveat: under the current model (EstimateCosts in the .cc) a
/// merged runtime never repeats structural work, so `shared < independent`
/// holds for EVERY cluster of n >= 2 and the decision effectively reduces
/// to `enable_sharing && n >= min_cluster_size`. The estimated costs are
/// still computed and reported per cluster (SharingPlan telemetry), and the
/// weights parameterize future models where sharing can genuinely lose
/// (e.g. per-query predicate pushdown that sharing would forfeit).
struct SharingOptions {
  /// Master switch: false plans every query as its own dedicated runtime.
  bool enable_sharing = true;
  /// Smallest cluster worth merging. 1 clusters trivially (each shared
  /// "cluster" of one query is just a dedicated runtime).
  size_t min_cluster_size = 2;
  /// Cost model weights: structural work per template transition per event,
  /// vs. aggregate propagation work per query per event.
  double structural_weight = 4.0;
  double aggregate_weight = 1.0;
};

/// One cluster of fingerprint-identical queries plus the planner's decision.
struct QueryCluster {
  std::vector<size_t> query_ids;  // indices into the workload, ascending
  std::string fingerprint;
  bool shared = false;            // merge into one multi-query runtime?
  double shared_cost = 0.0;       // estimated work units per event
  double independent_cost = 0.0;
};

/// The sharing planner's output: a partition of the workload into clusters.
struct SharingPlan {
  std::vector<QueryCluster> clusters;
  size_t num_queries = 0;

  size_t num_shared_clusters() const {
    size_t n = 0;
    for (const QueryCluster& c : clusters) n += c.shared ? 1 : 0;
    return n;
  }

  /// Human-readable summary ("cluster 0: queries {0,2,5} SHARED ...").
  std::string ToString() const;
};

/// Clusters `workload` by sharing fingerprint and decides share/no-share per
/// cluster with a simple cost model: a merged runtime pays the structural
/// graph work (predicate evaluation, predecessor range queries, vertex
/// storage) once per event plus aggregate propagation per query, while
/// dedicated runtimes pay both per query.
StatusOr<SharingPlan> PlanSharing(const std::vector<QuerySpec>& workload,
                                  const Catalog& catalog,
                                  const SharingOptions& options = {});

}  // namespace greta::sharing

#endif  // GRETA_SHARING_SHARING_PLANNER_H_
