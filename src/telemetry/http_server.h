#ifndef GRETA_TELEMETRY_HTTP_SERVER_H_
#define GRETA_TELEMETRY_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace greta::telemetry {

class MetricRegistry;

/// Minimal embedded HTTP/1.1 server for observability scrapes: raw POSIX
/// sockets, one accept thread, serial request handling (scrapes are rare
/// and cheap; there is nothing to pipeline). GET-only; anything else gets
/// 405. Not a general web server — a /metrics-style exposition surface.
///
/// Built-in routes (all backed by the bound MetricRegistry):
///   /metrics   Prometheus text exposition (ExportPrometheus)
///   /snapshot  one-line JSON snapshot incl. trace (ExportJson)
///   /trace     trace-ring tail as a JSON array
///   /explain   human-readable report (ExplainTelemetry)
///
/// Additional routes (e.g. /healthz, /queries) are registered via
/// SetHandler; the runtime layer binds them in
/// runtime/observability.{h,cc} so telemetry/ stays free of runtime
/// dependencies.
class HttpServer {
 public:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; version=0.0.4";
    std::string body;
  };
  /// Handler gets the path remainder after its prefix ("" or "/<suffix>").
  using Handler = std::function<Response(const std::string& rest)>;

  explicit HttpServer(MetricRegistry& registry);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers (or replaces) a handler for `prefix` (e.g. "/healthz",
  /// "/queries"). A request matches if the path equals the prefix or
  /// continues with '/'. Longest prefix wins. Must be called before
  /// Start() or between Stop()/Start() — handlers are read by the accept
  /// thread without locking once serving.
  void SetHandler(const std::string& prefix, Handler handler);

  /// Binds 127.0.0.1:port (port 0 = ephemeral) and launches the accept
  /// thread. Returns false (with strerror detail in `error()`) on bind
  /// failure. Idempotent: returns true if already serving.
  bool Start(uint16_t port);

  /// Joins the accept thread and closes the listener. Safe to call twice.
  void Stop();

  bool serving() const { return serving_.load(std::memory_order_acquire); }
  /// The bound port (resolved via getsockname when Start(0) was used).
  uint16_t port() const { return port_; }
  const std::string& error() const { return error_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  Response Route(const std::string& path);

  MetricRegistry& registry_;
  std::vector<std::pair<std::string, Handler>> handlers_;
  std::thread thread_;
  std::atomic<bool> serving_{false};
  std::atomic<bool> stop_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::string error_;
};

/// Blocking one-shot HTTP GET against 127.0.0.1:port used by tests and
/// the bench self-scraper. Returns false on connect/read failure; on
/// success fills `status` and `body` (headers stripped).
bool HttpGet(uint16_t port, const std::string& path, int* status,
             std::string* body);

}  // namespace greta::telemetry

#endif  // GRETA_TELEMETRY_HTTP_SERVER_H_
