#include "telemetry/exporters.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <ctime>

namespace greta::telemetry {

namespace {

// Splits "name{labels}" into its base name and the brace block ("" when
// unlabeled) so histogram suffixes can be inserted before the labels.
void SplitLabels(const std::string& full, std::string* base,
                 std::string* labels) {
  const size_t brace = full.find('{');
  if (brace == std::string::npos) {
    *base = full;
    labels->clear();
    return;
  }
  *base = full.substr(0, brace);
  *labels = full.substr(brace);
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

// Doubles render with %.17g only when needed; integers stay integral.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

// Labeled instrument names embed `"` (name{key="value"}); JSON keys must
// escape them, and adversarial names (newlines, tabs) must not break the
// document.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          AppendF(&out, "\\u%04x", static_cast<unsigned>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string FormatIso8601(int64_t system_ns) {
  if (system_ns <= 0) return "-";
  const time_t secs = static_cast<time_t>(system_ns / 1000000000);
  const int millis = static_cast<int>((system_ns % 1000000000) / 1000000);
  struct tm utc {};
  gmtime_r(&secs, &utc);
  char buf[72];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, millis);
  return buf;
}

std::string EscapeLabelBlock(const std::string& labels) {
  std::string out;
  out.reserve(labels.size());
  bool in_quote = false;
  for (char c : labels) {
    if (c == '"') {
      in_quote = !in_quote;
      out += c;
    } else if (in_quote && c == '\\') {
      out += "\\\\";
    } else if (in_quote && c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string ExportPrometheus(const MetricRegistry& registry) {
  std::string out;
  for (const MetricRegistry::CounterSample& c : registry.ScrapeCounters()) {
    std::string base, labels;
    SplitLabels(c.name, &base, &labels);
    labels = EscapeLabelBlock(labels);
    AppendF(&out, "# TYPE %s counter\n", base.c_str());
    AppendF(&out, "%s%s %" PRIu64 "\n", base.c_str(), labels.c_str(),
            c.value);
  }
  for (const MetricRegistry::GaugeSample& g : registry.ScrapeGauges()) {
    std::string base, labels;
    SplitLabels(g.name, &base, &labels);
    labels = EscapeLabelBlock(labels);
    AppendF(&out, "# TYPE %s gauge\n", base.c_str());
    AppendF(&out, "%s%s %s\n", base.c_str(), labels.c_str(),
            FormatDouble(g.value).c_str());
  }
  for (const MetricRegistry::HistogramSample& h :
       registry.ScrapeHistograms()) {
    std::string base, labels;
    SplitLabels(h.name, &base, &labels);
    labels = EscapeLabelBlock(labels);
    // Labels of the series merge with the `le` bucket label.
    std::string inner =
        labels.empty() ? "" : labels.substr(1, labels.size() - 2) + ",";
    AppendF(&out, "# TYPE %s histogram\n", base.c_str());
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (h.snap.buckets[i] == 0) continue;  // sparse: skip empty buckets
      cumulative += h.snap.buckets[i];
      AppendF(&out, "%s_bucket{%sle=\"%" PRIu64 "\"} %" PRIu64 "\n",
              base.c_str(), inner.c_str(), Histogram::BucketUpperBound(i),
              cumulative);
    }
    AppendF(&out, "%s_bucket{%sle=\"+Inf\"} %" PRIu64 "\n", base.c_str(),
            inner.c_str(), h.snap.count);
    AppendF(&out, "%s_sum%s %" PRIu64 "\n", base.c_str(), labels.c_str(),
            h.snap.sum);
    AppendF(&out, "%s_count%s %" PRIu64 "\n", base.c_str(), labels.c_str(),
            h.snap.count);
  }
  return out;
}

std::string ExportJson(MetricRegistry& registry, bool include_trace) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const MetricRegistry::CounterSample& c : registry.ScrapeCounters()) {
    AppendF(&out, "%s\"%s\":%" PRIu64, first ? "" : ",",
            JsonEscape(c.name).c_str(), c.value);
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const MetricRegistry::GaugeSample& g : registry.ScrapeGauges()) {
    AppendF(&out, "%s\"%s\":%s", first ? "" : ",",
            JsonEscape(g.name).c_str(), FormatDouble(g.value).c_str());
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const MetricRegistry::HistogramSample& h :
       registry.ScrapeHistograms()) {
    AppendF(&out,
            "%s\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
            ",\"mean\":%s,\"p50\":%" PRIu64 ",\"p99\":%" PRIu64 "}",
            first ? "" : ",", JsonEscape(h.name).c_str(), h.snap.count,
            h.snap.sum,
            FormatDouble(h.snap.Mean()).c_str(), h.snap.Quantile(0.50),
            h.snap.Quantile(0.99));
    first = false;
  }
  out += "}";
  if (include_trace) {
    const ClockAnchor anchor = registry.clock_anchor();
    out += ",\"trace\":[";
    first = true;
    for (const TraceEvent& e : registry.trace().Snapshot()) {
      const int64_t wall = (e.when_ns != 0 && anchor.valid())
                               ? anchor.ToSystemNs(e.when_ns)
                               : 0;
      AppendF(&out,
              "%s{\"seq\":%" PRIu64
              ",\"kind\":\"%s\",\"shard\":%u,\"cluster\":%u,\"ts\":%lld,"
              "\"wid\":%lld,\"a\":%" PRIu64 ",\"b\":%" PRIu64
              ",\"x\":%s,\"y\":%s,\"when_ns\":%" PRIu64 ",\"time\":\"%s\"}",
              first ? "" : ",", e.seq, TraceKindName(e.kind),
              static_cast<unsigned>(e.shard),
              static_cast<unsigned>(e.cluster),
              static_cast<long long>(e.ts), static_cast<long long>(e.wid),
              e.a, e.b, FormatDouble(e.x).c_str(),
              FormatDouble(e.y).c_str(), e.when_ns,
              FormatIso8601(wall).c_str());
      first = false;
    }
    out += "]";
  }
  out += "}";
  return out;
}

std::string ExplainTelemetry(MetricRegistry& registry, size_t trace_tail) {
  std::string out = "== telemetry ==\n";
  out += "-- counters --\n";
  for (const MetricRegistry::CounterSample& c : registry.ScrapeCounters()) {
    AppendF(&out, "  %-56s %" PRIu64 "\n", c.name.c_str(), c.value);
  }
  out += "-- gauges --\n";
  for (const MetricRegistry::GaugeSample& g : registry.ScrapeGauges()) {
    AppendF(&out, "  %-56s %s\n", g.name.c_str(),
            FormatDouble(g.value).c_str());
  }
  out += "-- histograms (log2 buckets) --\n";
  for (const MetricRegistry::HistogramSample& h :
       registry.ScrapeHistograms()) {
    AppendF(&out,
            "  %-56s count=%" PRIu64 " mean=%s p50<=%" PRIu64 " p99<=%" PRIu64
            "\n",
            h.name.c_str(), h.snap.count,
            FormatDouble(h.snap.Mean()).c_str(), h.snap.Quantile(0.50),
            h.snap.Quantile(0.99));
  }
  std::vector<TraceEvent> trace = registry.trace().Snapshot();
  const ClockAnchor anchor = registry.clock_anchor();
  AppendF(&out, "-- trace (%zu of %" PRIu64 " lifecycle events) --\n",
          trace.size() < trace_tail ? trace.size() : trace_tail,
          registry.trace().total_emitted());
  const size_t start =
      trace.size() > trace_tail ? trace.size() - trace_tail : 0;
  for (size_t i = start; i < trace.size(); ++i) {
    const TraceEvent& e = trace[i];
    const int64_t wall = (e.when_ns != 0 && anchor.valid())
                             ? anchor.ToSystemNs(e.when_ns)
                             : 0;
    AppendF(&out,
            "  #%-8" PRIu64 " %-24s %-18s shard=%u cluster=%u ts=%lld "
            "wid=%lld a=%" PRIu64 " b=%" PRIu64 " x=%s y=%s\n",
            e.seq, FormatIso8601(wall).c_str(), TraceKindName(e.kind),
            static_cast<unsigned>(e.shard), static_cast<unsigned>(e.cluster),
            static_cast<long long>(e.ts), static_cast<long long>(e.wid),
            e.a, e.b, FormatDouble(e.x).c_str(), FormatDouble(e.y).c_str());
  }
  return out;
}

}  // namespace greta::telemetry
