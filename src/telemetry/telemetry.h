#ifndef GRETA_TELEMETRY_TELEMETRY_H_
#define GRETA_TELEMETRY_TELEMETRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

/// Compile-out switch: building with -DGRETA_TELEMETRY=0 (CMake option
/// GRETA_TELEMETRY=OFF) turns every GRETA_TM_* macro below into nothing and
/// makes Enabled() a compile-time false, so the instrumented hot paths carry
/// zero code. The default build compiles the instruments in; whether they
/// RECORD is then a runtime property of the registry (set_enabled /
/// TelemetryOptions), sampled by subsystems when they cache their
/// instrument pointers at construction.
#ifndef GRETA_TELEMETRY
#define GRETA_TELEMETRY 1
#endif

namespace greta::telemetry {

/// Runtime configuration (workload spec block "telemetry").
struct TelemetryOptions {
  /// Master runtime switch of the default registry. Engines built while the
  /// registry is disabled cache null instrument pointers and skip every
  /// update; configure telemetry BEFORE building engines.
  bool enabled = true;
  /// TraceRing capacity in events (rounded up to a power of two, min 8).
  size_t trace_capacity = 1024;
  /// Histogram sampling period for per-batch observations: subsystems
  /// record every Nth sample (1 = record all). Counters and gauges are
  /// never sampled — they are O(1) relaxed atomics.
  size_t sample_every = 1;
  /// Host the live observability endpoint (telemetry/http_server.h): when
  /// true, servers/examples arm an HttpServer over the default registry
  /// serving /metrics, /snapshot, /trace, /explain, /queries and /healthz.
  bool serve = false;
  /// TCP port of the endpoint on 127.0.0.1; 0 binds an ephemeral port
  /// (the bound port is reported by HttpServer::port()).
  uint16_t http_port = 0;
};

/// Steady-clock now in nanoseconds — the time base of arrival stamps, e2e
/// latency histograms and trace wall-clock stamps. Mapped to system time
/// through the registry's ClockAnchor at export time.
uint64_t SteadyNowNs() noexcept;

/// A (steady, system) clock pair captured at the same instant, recorded by
/// MetricRegistry::Configure: system_ns + (steady_sample - steady_ns) maps
/// any steady-clock stamp to wall-clock time for ISO-8601 rendering in the
/// exporters. Zero-initialized until the first Configure.
struct ClockAnchor {
  int64_t steady_ns = 0;
  int64_t system_ns = 0;

  bool valid() const noexcept { return system_ns != 0; }
  /// Maps a steady-clock stamp (ns) onto the system clock (ns since epoch).
  int64_t ToSystemNs(uint64_t steady_sample_ns) const noexcept {
    return system_ns + (static_cast<int64_t>(steady_sample_ns) - steady_ns);
  }
};

// ----------------------------------------------------------- instruments
//
// All instruments are updatable from any thread with relaxed atomics and
// aggregated only at scrape time. Counters are sharded across cache-line
// separated cells (indexed by a thread-local slot) so concurrent shard
// workers never contend on one line; Value() sums the cells.

/// Small per-thread slot id used to spread counter updates across cells.
size_t ThreadSlot() noexcept;

class Counter {
 public:
  static constexpr size_t kCells = 8;  // power of two

  void Add(uint64_t n) noexcept {
    cells_[ThreadSlot() & (kCells - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  /// Explicit cell hint (e.g. a shard index) when the caller knows a better
  /// spread than the thread id.
  void AddAt(size_t slot, uint64_t n) noexcept {
    cells_[slot & (kCells - 1)].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const noexcept {
    uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

  void Reset() noexcept {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kCells> cells_;
};

/// Last-value gauge holding a double (bit-cast through u64 so the atomic is
/// always lock-free).
class Gauge {
 public:
  void Set(double v) noexcept { bits_.store(Pack(v), std::memory_order_relaxed); }

  /// Monotonic maximum (high-watermarks). Relaxed CAS loop; losing a race
  /// to a larger value is fine.
  void SetMax(double v) noexcept {
    uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (Unpack(cur) < v &&
           !bits_.compare_exchange_weak(cur, Pack(v),
                                        std::memory_order_relaxed)) {
    }
  }

  double Value() const noexcept {
    return Unpack(bits_.load(std::memory_order_relaxed));
  }

  void Reset() noexcept { bits_.store(0, std::memory_order_relaxed); }

 private:
  static uint64_t Pack(double v) noexcept {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  static double Unpack(uint64_t bits) noexcept {
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::atomic<uint64_t> bits_{0};  // Pack(0.0) == 0
};

/// Fixed log2-bucketed histogram for latencies (ns) and sizes: bucket i
/// counts samples whose value has bit-width i, i.e. v in [2^(i-1), 2^i).
/// Recording is one relaxed add into a bucket plus sum/count; scraping
/// reads everything relaxed (counts may be momentarily ahead of sum — the
/// exporters treat a snapshot as approximate by design).
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(uint64_t v) noexcept {
    buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    std::array<uint64_t, kBuckets> buckets{};

    double Mean() const {
      return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                       : 0.0;
    }
    /// Upper bound of the bucket holding quantile `q` (0..1): a coarse
    /// (factor-of-two) percentile good enough for dashboards.
    uint64_t Quantile(double q) const;
  };

  Snapshot Snap() const noexcept {
    Snapshot s;
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < kBuckets; ++i) {
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return s;
  }

  void Reset() noexcept {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    for (std::atomic<uint64_t>& b : buckets_) {
      b.store(0, std::memory_order_relaxed);
    }
  }

  /// Inclusive upper bound of bucket `i` (2^i - 1; bucket 0 holds v == 0).
  static uint64_t BucketUpperBound(size_t i) noexcept {
    return i >= 63 ? UINT64_MAX : (uint64_t{1} << i) - 1;
  }

 private:
  static size_t BucketOf(uint64_t v) noexcept {
    size_t width = 0;
    while (v != 0) {
      ++width;
      v >>= 1;
    }
    return width < kBuckets ? width : kBuckets - 1;
  }

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// ------------------------------------------------------------- trace ring
//
// Bounded lock-free ring of structured lifecycle events. Writers claim a
// ticket with one fetch_add and publish through a per-slot sequence word
// (odd = being written, even = complete, encodes the ticket); the payload
// itself is stored in relaxed atomic words, so concurrent scrape never
// reads a torn event — a slot whose sequence moved mid-read is skipped.
// When the ring laps, the oldest events are overwritten (a trace is a tail,
// not a log).

enum class TraceKind : uint8_t {
  kNone = 0,
  kWindowClose,       // wid, a=rows emitted, b=vertices delta
  kWatermarkAdvance,  // ts=new watermark, a=lag behind ingest clock
  kPanePurge,         // ts=purge horizon, a=tracked bytes after purge
  kPlanDecision,      // cluster, a=current mode, b=target mode,
                      // x=cost_merged, y=cost_dedicated (observed-calibrated)
  kMigrationStart,    // cluster, wid=split window, a=target mode
  kMigrationFinish,   // cluster, wid=split window
  kShardStall,        // shard, a=queue depth at stall
};

const char* TraceKindName(TraceKind kind);

/// One decoded trace event. `a`/`b` and `x`/`y` are kind-specific (see the
/// TraceKind comments); unused fields are zero.
struct TraceEvent {
  uint64_t seq = 0;  // global emission order (ring ticket)
  TraceKind kind = TraceKind::kNone;
  uint16_t shard = 0;
  uint32_t cluster = 0;
  int64_t ts = 0;   // stream time of the event
  int64_t wid = 0;  // window id, when meaningful
  uint64_t a = 0;
  uint64_t b = 0;
  double x = 0.0;
  double y = 0.0;
  /// Steady-clock emission stamp (SteadyNowNs), filled by TraceRing::Emit —
  /// callers never set it. Exporters map it to wall-clock ISO-8601 through
  /// the registry's ClockAnchor.
  uint64_t when_ns = 0;
};

class TraceRing {
 public:
  explicit TraceRing(size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void Emit(const TraceEvent& e) noexcept;

  /// Decodes the surviving events, oldest first. Concurrent-safe; events
  /// half-written or overwritten during the walk are skipped.
  std::vector<TraceEvent> Snapshot() const;

  uint64_t total_emitted() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }
  size_t capacity() const noexcept { return slots_.size(); }

  /// Zeroes the ring. Quiescent-only (no concurrent Emit).
  void Reset() noexcept;

 private:
  // 9 atomic words: [0] seq, [1] kind|shard|cluster, [2] ts, [3] wid,
  // [4] a, [5] b, [6] bits(x), [7] bits(y), [8] when_ns. 72 bytes,
  // alignas pads to two cache lines — fine for a lifecycle-rate ring.
  struct alignas(64) Slot {
    std::atomic<uint64_t> seq{0};  // 0 = never written
    std::array<std::atomic<uint64_t>, 8> w{};
  };

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  std::atomic<uint64_t> next_{0};
};

// --------------------------------------------------------------- registry

/// Process-wide registry of named instruments. Names follow the Prometheus
/// convention `greta_<layer>_<what>` with optional labels appended as
/// `{key="value",...}` (see Labeled()); the full string is the identity.
/// Get* is lookup-or-create under a mutex — call it at construction time
/// and cache the returned pointer, which stays valid for the registry's
/// lifetime. The hot path then touches only the instrument's atomics.
class MetricRegistry {
 public:
  MetricRegistry();

  /// The process-wide default registry every subsystem instruments into.
  static MetricRegistry& Default();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Null when telemetry is compiled out or the registry is runtime-
  /// disabled; the instrument otherwise. The construction-time gate every
  /// subsystem uses for its cached pointers.
  Counter* CounterIf(std::string_view name) {
    return Armed() ? GetCounter(name) : nullptr;
  }
  Gauge* GaugeIf(std::string_view name) {
    return Armed() ? GetGauge(name) : nullptr;
  }
  Histogram* HistogramIf(std::string_view name) {
    return Armed() ? GetHistogram(name) : nullptr;
  }
  TraceRing* TraceIf() { return Armed() ? &trace() : nullptr; }

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Compile-time AND runtime gate.
  bool Armed() const noexcept { return GRETA_TELEMETRY != 0 && enabled(); }

  /// Applies a TelemetryOptions block: enabled flag, trace capacity
  /// (re-allocates the ring — quiescent-only), sampling period.
  void Configure(const TelemetryOptions& options);

  size_t sample_every() const noexcept {
    return sample_every_.load(std::memory_order_relaxed);
  }

  /// The steady→system mapping captured at construction and re-captured by
  /// every Configure() — the wall-clock base of trace timestamps.
  ClockAnchor clock_anchor() const;

  TraceRing& trace();

  /// Zeroes every instrument and the trace ring (benches and tests isolate
  /// runs this way). Quiescent-only. Registered names survive — cached
  /// pointers stay valid.
  void Reset();

  // Scrape API (exporters): stable registration order.
  struct CounterSample {
    std::string name;
    uint64_t value;
  };
  struct GaugeSample {
    std::string name;
    double value;
  };
  struct HistogramSample {
    std::string name;
    Histogram::Snapshot snap;
  };
  std::vector<CounterSample> ScrapeCounters() const;
  std::vector<GaugeSample> ScrapeGauges() const;
  std::vector<HistogramSample> ScrapeHistograms() const;

 private:
  template <typename T>
  struct Named {
    std::string name;
    // deque: stable addresses under growth.
    T instrument;
  };

  mutable std::mutex mu_;
  std::deque<Named<Counter>> counters_;
  std::deque<Named<Gauge>> gauges_;
  std::deque<Named<Histogram>> histograms_;
  std::unique_ptr<TraceRing> trace_;
  ClockAnchor anchor_;  // guarded by mu_
  std::atomic<bool> enabled_{true};
  std::atomic<size_t> sample_every_{1};
};

/// `base{key="index"}` — the labeled-instrument naming helper.
std::string Labeled(std::string_view base, std::string_view key,
                    size_t index);
std::string Labeled(std::string_view base, std::string_view key1,
                    size_t index1, std::string_view key2, size_t index2);

}  // namespace greta::telemetry

// ------------------------------------------------------ hot-path macros
//
// Call sites cache instrument pointers (null when disarmed) and wrap every
// update in these macros so -DGRETA_TELEMETRY=0 removes the code entirely.

#if GRETA_TELEMETRY
#define GRETA_TM(stmt) \
  do {                 \
    stmt;              \
  } while (0)
#else
#define GRETA_TM(stmt) \
  do {                 \
  } while (0)
#endif

#define GRETA_TM_ADD(counter, n) \
  GRETA_TM(if ((counter) != nullptr) (counter)->Add(n))
#define GRETA_TM_SET(gauge, v) \
  GRETA_TM(if ((gauge) != nullptr) (gauge)->Set(v))
#define GRETA_TM_SETMAX(gauge, v) \
  GRETA_TM(if ((gauge) != nullptr) (gauge)->SetMax(v))
#define GRETA_TM_RECORD(hist, v) \
  GRETA_TM(if ((hist) != nullptr) (hist)->Record(v))
#define GRETA_TM_TRACE(ring, event) \
  GRETA_TM(if ((ring) != nullptr) (ring)->Emit(event))

#endif  // GRETA_TELEMETRY_TELEMETRY_H_
