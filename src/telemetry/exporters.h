#ifndef GRETA_TELEMETRY_EXPORTERS_H_
#define GRETA_TELEMETRY_EXPORTERS_H_

#include <string>

#include "telemetry/telemetry.h"

namespace greta::telemetry {

/// Prometheus text exposition (v0.0.4): counters as `# TYPE ... counter`,
/// gauges as gauges, histograms as cumulative `_bucket{le=...}` series plus
/// `_sum`/`_count`. Instrument names already follow the
/// `greta_<layer>_<what>{label="v"}` convention, so this is a straight
/// serialization — the payload a /metrics endpoint would return.
std::string ExportPrometheus(const MetricRegistry& registry);

/// One JSON object snapshot: {"counters": {...}, "gauges": {...},
/// "histograms": {name: {count, sum, mean, p50, p99}}, "trace":
/// [{seq, kind, shard, cluster, ts, wid, a, b, x, y}, ...]}. Emitted on a
/// single line so bench harnesses can tee it into artifact files.
std::string ExportJson(MetricRegistry& registry, bool include_trace = true);

/// Human-readable report: instruments grouped by layer prefix, histograms
/// with mean/p50/p99, and the tail of the lifecycle trace rendered with
/// kind names — the `explain`-style view of a live system.
std::string ExplainTelemetry(MetricRegistry& registry,
                             size_t trace_tail = 32);

/// Renders a system-clock nanosecond timestamp as UTC ISO-8601 with
/// millisecond precision ("2026-08-08T12:34:56.789Z"). Returns "-" for
/// non-positive inputs (no anchor / unstamped event).
std::string FormatIso8601(int64_t system_ns);

/// Escapes a Prometheus label block ("{k=\"v\",...}") per the text
/// exposition format: inside quoted values, `\` -> `\\` and newline ->
/// `\n`. Raw `"` inside a value is inherently ambiguous in our
/// name-embeds-labels convention and is left untouched — instrument names
/// are code-authored, so this guards against pathological values (paths,
/// query text), not hostile ones.
std::string EscapeLabelBlock(const std::string& labels);

}  // namespace greta::telemetry

#endif  // GRETA_TELEMETRY_EXPORTERS_H_
