#ifndef GRETA_TELEMETRY_EXPORTERS_H_
#define GRETA_TELEMETRY_EXPORTERS_H_

#include <string>

#include "telemetry/telemetry.h"

namespace greta::telemetry {

/// Prometheus text exposition (v0.0.4): counters as `# TYPE ... counter`,
/// gauges as gauges, histograms as cumulative `_bucket{le=...}` series plus
/// `_sum`/`_count`. Instrument names already follow the
/// `greta_<layer>_<what>{label="v"}` convention, so this is a straight
/// serialization — the payload a /metrics endpoint would return.
std::string ExportPrometheus(const MetricRegistry& registry);

/// One JSON object snapshot: {"counters": {...}, "gauges": {...},
/// "histograms": {name: {count, sum, mean, p50, p99}}, "trace":
/// [{seq, kind, shard, cluster, ts, wid, a, b, x, y}, ...]}. Emitted on a
/// single line so bench harnesses can tee it into artifact files.
std::string ExportJson(MetricRegistry& registry, bool include_trace = true);

/// Human-readable report: instruments grouped by layer prefix, histograms
/// with mean/p50/p99, and the tail of the lifecycle trace rendered with
/// kind names — the `explain`-style view of a live system.
std::string ExplainTelemetry(MetricRegistry& registry,
                             size_t trace_tail = 32);

}  // namespace greta::telemetry

#endif  // GRETA_TELEMETRY_EXPORTERS_H_
