#include "telemetry/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "telemetry/exporters.h"
#include "telemetry/telemetry.h"

namespace greta::telemetry {

namespace {

std::string StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

void SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      return;  // peer went away; scrape clients just retry
    }
    off += static_cast<size_t>(n);
  }
}

void SendResponse(int fd, const HttpServer::Response& r) {
  std::string head = "HTTP/1.1 " + std::to_string(r.status) + " " +
                     StatusText(r.status) +
                     "\r\nContent-Type: " + r.content_type +
                     "\r\nContent-Length: " + std::to_string(r.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  SendAll(fd, head);
  SendAll(fd, r.body);
}

}  // namespace

HttpServer::HttpServer(MetricRegistry& registry) : registry_(registry) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::SetHandler(const std::string& prefix, Handler handler) {
  for (auto& entry : handlers_) {
    if (entry.first == prefix) {
      entry.second = std::move(handler);
      return;
    }
  }
  handlers_.emplace_back(prefix, std::move(handler));
}

bool HttpServer::Start(uint16_t port) {
  if (serving_.load(std::memory_order_acquire)) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // observability is local
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    error_ = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 16) < 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  stop_.store(false, std::memory_order_release);
  serving_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void HttpServer::Stop() {
  if (!serving_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  serving_.store(false, std::memory_order_release);
}

void HttpServer::AcceptLoop() {
  // poll with a short timeout so Stop() is observed promptly without
  // needing a self-pipe; scrapes are human/CI-rate, not latency-critical.
  pollfd pfd{listen_fd_, POLLIN, 0};
  while (!stop_.load(std::memory_order_acquire)) {
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;  // timeout or EINTR
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    HandleConnection(fd);
    ::close(fd);
  }
}

void HttpServer::HandleConnection(int fd) {
  // Read until the header terminator; GET requests have no body. 8 KiB is
  // generous for "GET /path HTTP/1.1" plus scrape-client headers.
  std::string req;
  char buf[2048];
  while (req.size() < 8192 && req.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    req.append(buf, static_cast<size_t>(n));
  }
  const size_t line_end = req.find("\r\n");
  if (line_end == std::string::npos) return;  // malformed; just drop

  const std::string line = req.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return;
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (method != "GET") {
    SendResponse(fd, Response{405, "text/plain", "only GET is served\n"});
    return;
  }
  SendResponse(fd, Route(path));
}

HttpServer::Response HttpServer::Route(const std::string& path) {
  if (path == "/metrics") {
    return Response{200, "text/plain; version=0.0.4",
                    ExportPrometheus(registry_)};
  }
  if (path == "/snapshot") {
    return Response{200, "application/json",
                    ExportJson(registry_, /*include_trace=*/true)};
  }
  if (path == "/trace") {
    // Just the trace array: slice it out of the snapshot document so both
    // views render events identically (when_ns + ISO time included).
    const std::string snap = ExportJson(registry_, /*include_trace=*/true);
    const size_t key = snap.find("\"trace\":");
    std::string body = "[]";
    if (key != std::string::npos) {
      body = snap.substr(key + 8, snap.size() - key - 8 - 1);
    }
    return Response{200, "application/json", body};
  }
  if (path == "/explain") {
    return Response{200, "text/plain", ExplainTelemetry(registry_)};
  }
  // Registered handlers: longest matching prefix wins so "/queries/3"
  // prefers a "/queries" handler over a hypothetical "/" catch-all.
  const std::pair<std::string, Handler>* best = nullptr;
  for (const auto& entry : handlers_) {
    const std::string& prefix = entry.first;
    const bool matches =
        path.size() >= prefix.size() &&
        path.compare(0, prefix.size(), prefix) == 0 &&
        (path.size() == prefix.size() || path[prefix.size()] == '/');
    if (matches && (best == nullptr || prefix.size() > best->first.size())) {
      best = &entry;
    }
  }
  if (best != nullptr) {
    return best->second(path.substr(best->first.size()));
  }
  return Response{404, "text/plain",
                  "not found; try /metrics /snapshot /trace /explain\n"};
}

bool HttpGet(uint16_t port, const std::string& path, int* status,
             std::string* body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return false;
  }
  const std::string req = "GET " + path +
                          " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                          "Connection: close\r\n\r\n";
  SendAll(fd, req);
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos || raw.compare(0, 5, "HTTP/") != 0) {
    return false;
  }
  const size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) return false;
  if (status != nullptr) *status = std::atoi(raw.c_str() + sp + 1);
  if (body != nullptr) *body = raw.substr(header_end + 4);
  return true;
}

}  // namespace greta::telemetry
