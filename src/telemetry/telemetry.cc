#include "telemetry/telemetry.h"

#include <algorithm>
#include <chrono>

namespace greta::telemetry {

size_t ThreadSlot() noexcept {
  static std::atomic<size_t> next{0};
  thread_local size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

uint64_t SteadyNowNs() noexcept {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

ClockAnchor CaptureAnchor() {
  ClockAnchor anchor;
  anchor.steady_ns = static_cast<int64_t>(SteadyNowNs());
  anchor.system_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  return anchor;
}

}  // namespace

uint64_t Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen > rank || (seen == count && seen > 0)) {
      return Histogram::BucketUpperBound(i);
    }
  }
  return Histogram::BucketUpperBound(kBuckets - 1);
}

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kNone: return "none";
    case TraceKind::kWindowClose: return "window_close";
    case TraceKind::kWatermarkAdvance: return "watermark_advance";
    case TraceKind::kPanePurge: return "pane_purge";
    case TraceKind::kPlanDecision: return "plan_decision";
    case TraceKind::kMigrationStart: return "migration_start";
    case TraceKind::kMigrationFinish: return "migration_finish";
    case TraceKind::kShardStall: return "shard_stall";
  }
  return "unknown";
}

namespace {

uint64_t PackDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double UnpackDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

size_t RoundUpPow2(size_t n, size_t minimum) {
  size_t cap = minimum;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

TraceRing::TraceRing(size_t capacity)
    : slots_(RoundUpPow2(capacity, 8)) {
  mask_ = slots_.size() - 1;
}

void TraceRing::Emit(const TraceEvent& e) noexcept {
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  // Odd sequence = write in progress; the final even value encodes the
  // ticket so a reader can tell WHICH generation it validated.
  slot.seq.store(ticket * 2 + 1, std::memory_order_release);
  slot.w[0].store(static_cast<uint64_t>(e.kind) |
                      (static_cast<uint64_t>(e.shard) << 16) |
                      (static_cast<uint64_t>(e.cluster) << 32),
                  std::memory_order_relaxed);
  slot.w[1].store(static_cast<uint64_t>(e.ts), std::memory_order_relaxed);
  slot.w[2].store(static_cast<uint64_t>(e.wid), std::memory_order_relaxed);
  slot.w[3].store(e.a, std::memory_order_relaxed);
  slot.w[4].store(e.b, std::memory_order_relaxed);
  slot.w[5].store(PackDouble(e.x), std::memory_order_relaxed);
  slot.w[6].store(PackDouble(e.y), std::memory_order_relaxed);
  // Emission-time wall-clock stamp: traces are lifecycle-rate (window
  // closes, plan decisions), never per-event, so one clock read is cheap.
  slot.w[7].store(e.when_ns != 0 ? e.when_ns : SteadyNowNs(),
                  std::memory_order_relaxed);
  slot.seq.store((ticket + 1) * 2, std::memory_order_release);
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  const uint64_t end = next_.load(std::memory_order_acquire);
  const uint64_t cap = slots_.size();
  const uint64_t begin = end > cap ? end - cap : 0;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<size_t>(end - begin));
  for (uint64_t ticket = begin; ticket < end; ++ticket) {
    const Slot& slot = slots_[ticket & mask_];
    if (slot.seq.load(std::memory_order_acquire) != (ticket + 1) * 2) {
      continue;  // mid-write or already lapped
    }
    TraceEvent e;
    const uint64_t packed = slot.w[0].load(std::memory_order_relaxed);
    e.seq = ticket;
    e.kind = static_cast<TraceKind>(packed & 0xff);
    e.shard = static_cast<uint16_t>((packed >> 16) & 0xffff);
    e.cluster = static_cast<uint32_t>(packed >> 32);
    e.ts = static_cast<int64_t>(slot.w[1].load(std::memory_order_relaxed));
    e.wid = static_cast<int64_t>(slot.w[2].load(std::memory_order_relaxed));
    e.a = slot.w[3].load(std::memory_order_relaxed);
    e.b = slot.w[4].load(std::memory_order_relaxed);
    e.x = UnpackDouble(slot.w[5].load(std::memory_order_relaxed));
    e.y = UnpackDouble(slot.w[6].load(std::memory_order_relaxed));
    e.when_ns = slot.w[7].load(std::memory_order_relaxed);
    // Re-validate: if the slot moved underneath us the payload may mix
    // generations — drop it.
    if (slot.seq.load(std::memory_order_acquire) != (ticket + 1) * 2) {
      continue;
    }
    out.push_back(e);
  }
  return out;
}

void TraceRing::Reset() noexcept {
  for (Slot& slot : slots_) {
    slot.seq.store(0, std::memory_order_relaxed);
    for (std::atomic<uint64_t>& w : slot.w) {
      w.store(0, std::memory_order_relaxed);
    }
  }
  next_.store(0, std::memory_order_relaxed);
}

MetricRegistry::MetricRegistry()
    : trace_(std::make_unique<TraceRing>(TelemetryOptions{}.trace_capacity)),
      anchor_(CaptureAnchor()) {}

MetricRegistry& MetricRegistry::Default() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

Counter* MetricRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Named<Counter>& c : counters_) {
    if (c.name == name) return &c.instrument;
  }
  // emplace + assign: the instruments hold atomics and cannot be moved.
  counters_.emplace_back();
  counters_.back().name = std::string(name);
  return &counters_.back().instrument;
}

Gauge* MetricRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Named<Gauge>& g : gauges_) {
    if (g.name == name) return &g.instrument;
  }
  gauges_.emplace_back();
  gauges_.back().name = std::string(name);
  return &gauges_.back().instrument;
}

Histogram* MetricRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Named<Histogram>& h : histograms_) {
    if (h.name == name) return &h.instrument;
  }
  histograms_.emplace_back();
  histograms_.back().name = std::string(name);
  return &histograms_.back().instrument;
}

void MetricRegistry::Configure(const TelemetryOptions& options) {
  set_enabled(options.enabled);
  sample_every_.store(std::max<size_t>(options.sample_every, 1),
                      std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  anchor_ = CaptureAnchor();
  if (RoundUpPow2(options.trace_capacity, 8) != trace_->capacity()) {
    trace_ = std::make_unique<TraceRing>(options.trace_capacity);
  }
}

ClockAnchor MetricRegistry::clock_anchor() const {
  std::lock_guard<std::mutex> lock(mu_);
  return anchor_;
}

TraceRing& MetricRegistry::trace() {
  std::lock_guard<std::mutex> lock(mu_);
  return *trace_;
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Named<Counter>& c : counters_) c.instrument.Reset();
  for (Named<Gauge>& g : gauges_) g.instrument.Reset();
  for (Named<Histogram>& h : histograms_) h.instrument.Reset();
  trace_->Reset();
}

std::vector<MetricRegistry::CounterSample> MetricRegistry::ScrapeCounters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CounterSample> out;
  out.reserve(counters_.size());
  for (const Named<Counter>& c : counters_) {
    out.push_back({c.name, c.instrument.Value()});
  }
  return out;
}

std::vector<MetricRegistry::GaugeSample> MetricRegistry::ScrapeGauges()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<GaugeSample> out;
  out.reserve(gauges_.size());
  for (const Named<Gauge>& g : gauges_) {
    out.push_back({g.name, g.instrument.Value()});
  }
  return out;
}

std::vector<MetricRegistry::HistogramSample>
MetricRegistry::ScrapeHistograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramSample> out;
  out.reserve(histograms_.size());
  for (const Named<Histogram>& h : histograms_) {
    out.push_back({h.name, h.instrument.Snap()});
  }
  return out;
}

std::string Labeled(std::string_view base, std::string_view key,
                    size_t index) {
  std::string out(base);
  out += '{';
  out += key;
  out += "=\"";
  out += std::to_string(index);
  out += "\"}";
  return out;
}

std::string Labeled(std::string_view base, std::string_view key1,
                    size_t index1, std::string_view key2, size_t index2) {
  std::string out(base);
  out += '{';
  out += key1;
  out += "=\"";
  out += std::to_string(index1);
  out += "\",";
  out += key2;
  out += "=\"";
  out += std::to_string(index2);
  out += "\"}";
  return out;
}

}  // namespace greta::telemetry
