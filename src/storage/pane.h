#ifndef GRETA_STORAGE_PANE_H_
#define GRETA_STORAGE_PANE_H_

#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/check.h"
#include "common/memory.h"
#include "common/types.h"
#include "storage/btree.h"

namespace greta {

/// Time-pane store (Section 7, Figure 11): the stream is divided into
/// non-overlapping consecutive time intervals; each pane holds, per bucket
/// (one bucket per template state), the vertices that fall into it plus a
/// Vertex Tree sorted by that bucket's key attribute. Expired panes are
/// deleted wholesale ("instead of removing single expired events ... a whole
/// pane with its associated data structures is deleted").
///
/// Each pane additionally owns a chunked Arena from which callers draw
/// vertex side storage (aggregate cells, stored-event attribute payloads):
/// obtain it with ArenaFor(time) immediately before Insert()ing the vertex
/// into the same pane. Pane expiry then frees those allocations wholesale
/// with the pane.
///
/// Memory accounting is incremental and O(1) per insert: every pane tracks
/// the bytes charged for it (vertex slots, tree-node growth, arena chunk
/// growth, fixed overhead), `ApproxBytes()` returns the running total, and
/// an optional MemoryTracker is credited/debited at the same sites — no
/// per-cell walks on the hot path. `RecomputeApproxBytes()` re-derives the
/// same total from scratch for invariant tests.
///
/// V is the vertex type; values handed to Insert are stored in a deque so
/// the returned pointers stay stable for the lifetime of the pane. The deque
/// is destroyed before the pane's arena, so V's destructor may still touch
/// arena-backed storage (GraphVertex destroys its aggregate cells there).
template <typename V>
class PaneStore {
 public:
  PaneStore(Ts pane_size, size_t num_buckets, MemoryTracker* memory = nullptr)
      : pane_size_(pane_size), num_buckets_(num_buckets), memory_(memory) {
    GRETA_CHECK(pane_size_ > 0);
    GRETA_CHECK(num_buckets_ > 0);
  }

  ~PaneStore() {
    if (memory_ != nullptr) memory_->Release(bytes_);
  }

  PaneStore(const PaneStore&) = delete;
  PaneStore& operator=(const PaneStore&) = delete;

  /// The arena of the pane covering `time`, creating the pane if needed.
  /// Allocations made here are accounted by the next Insert() into the same
  /// pane — call Insert(time, ...) before touching any other pane.
  Arena* ArenaFor(Ts time) { return &PaneFor(time).arena; }

  /// Inserts a vertex with the given tree key into the pane covering `time`.
  /// Returns a stable pointer.
  V* Insert(Ts time, size_t bucket, double key, V value) {
    GRETA_DCHECK(bucket < num_buckets_);
    Pane& pane = PaneFor(time);
    Bucket& b = pane.buckets[bucket];
    size_t tree_before = b.index.ApproxBytes();
    b.vertices.push_back(std::move(value));
    V* stored = &b.vertices.back();
    b.index.Insert(key, stored);
    ++size_;
    size_t grew = sizeof(V) + (b.index.ApproxBytes() - tree_before) +
                  (pane.arena.footprint_bytes() - pane.arena_accounted);
    pane.arena_accounted = pane.arena.footprint_bytes();
    ChargePane(&pane, grew);
    return stored;
  }

  /// Scans bucket `bucket` over all panes intersecting [lo_time, hi_time]
  /// (inclusive), visiting entries within `bounds` in key order per pane.
  /// `fn(V*)` is invoked for each.
  template <typename Fn>
  void ScanBucket(Ts lo_time, Ts hi_time, size_t bucket,
                  const KeyBounds& bounds, Fn&& fn) const {
    GRETA_DCHECK(bucket < num_buckets_);
    if (panes_.empty() || lo_time > hi_time) return;
    int64_t lo_idx = FloorDivTs(lo_time);
    for (auto it = panes_.lower_bound(lo_idx); it != panes_.end(); ++it) {
      if (it->second.start > hi_time) break;
      it->second.buckets[bucket].index.Scan(bounds, fn);
    }
  }

  /// ScanBucket variant invoking `fn(key, V*)` so callers get the tree key
  /// alongside the vertex (the batch kernels collect (key, cell) pairs once
  /// per equal-timestamp run).
  template <typename Fn>
  void ScanBucketWithKey(Ts lo_time, Ts hi_time, size_t bucket,
                         const KeyBounds& bounds, Fn&& fn) const {
    GRETA_DCHECK(bucket < num_buckets_);
    if (panes_.empty() || lo_time > hi_time) return;
    int64_t lo_idx = FloorDivTs(lo_time);
    for (auto it = panes_.lower_bound(lo_idx); it != panes_.end(); ++it) {
      if (it->second.start > hi_time) break;
      it->second.buckets[bucket].index.ScanWithKey(bounds, fn);
    }
  }

  /// Visits every vertex of `bucket` across all panes (pane order, then key
  /// order), e.g. for window-close scans.
  template <typename Fn>
  void ScanBucketAll(size_t bucket, Fn&& fn) const {
    for (const auto& [idx, pane] : panes_) {
      (void)idx;
      pane.buckets[bucket].index.ScanAll(fn);
    }
  }

  /// Drops every pane that ends at or before `cutoff` (batch deletion),
  /// releasing its charged bytes wholesale. Returns the number of vertices
  /// freed.
  size_t PurgeBefore(Ts cutoff) {
    return PurgeBefore(cutoff, [](const V&) {});
  }

  /// PurgeBefore variant invoking `on_free(vertex)` for each dropped vertex.
  template <typename Fn>
  size_t PurgeBefore(Ts cutoff, Fn&& on_free) {
    size_t freed = 0;
    while (!panes_.empty()) {
      auto it = panes_.begin();
      if (it->second.start + pane_size_ > cutoff) break;
      for (const Bucket& b : it->second.buckets) {
        for (const V& v : b.vertices) on_free(v);
        freed += b.vertices.size();
      }
      bytes_ -= it->second.bytes;
      if (memory_ != nullptr) memory_->Release(it->second.bytes);
      if (last_pane_ == &it->second) last_pane_ = nullptr;
      panes_.erase(it);
    }
    size_ -= freed;
    return freed;
  }

  size_t size() const { return size_; }
  size_t num_panes() const { return panes_.size(); }
  Ts pane_size() const { return pane_size_; }

  /// Bytes held by vertices, tree nodes and pane arenas. O(1): maintained
  /// incrementally at the allocation sites.
  size_t ApproxBytes() const { return bytes_; }

  /// Walks every pane and re-derives ApproxBytes() from scratch. For the
  /// accounting invariant tests; the hot path never calls this.
  size_t RecomputeApproxBytes() const {
    size_t bytes = 0;
    for (const auto& [idx, pane] : panes_) {
      (void)idx;
      bytes += PaneOverheadBytes(pane);
      bytes += pane.arena.footprint_bytes();
      for (const Bucket& b : pane.buckets) {
        bytes += b.vertices.size() * sizeof(V) + b.index.ApproxBytes();
      }
    }
    return bytes;
  }

 private:
  struct Bucket {
    std::deque<V> vertices;
    BPlusTree<V*> index;
  };
  struct Pane {
    Ts start = 0;
    size_t bytes = 0;            // everything charged for this pane
    size_t arena_accounted = 0;  // arena footprint already in `bytes`
    // The arena must outlive the vertex deques: ~V may destroy arena-backed
    // cells, so `buckets` (destroyed first, reverse declaration order) comes
    // after `arena`.
    Arena arena;
    std::vector<Bucket> buckets;
  };

  static size_t PaneOverheadBytes(const Pane& pane) {
    return sizeof(Pane) + pane.buckets.capacity() * sizeof(Bucket);
  }

  void ChargePane(Pane* pane, size_t bytes) {
    pane->bytes += bytes;
    bytes_ += bytes;
    if (memory_ != nullptr) memory_->Add(bytes);
  }

  int64_t FloorDivTs(Ts t) const {
    int64_t q = t / pane_size_;
    if ((t % pane_size_ != 0) && (t < 0)) --q;
    return q;
  }

  // Streams arrive in time order, so consecutive inserts overwhelmingly hit
  // one pane; a one-entry cache keyed by the pane's time range answers hits
  // with two comparisons — no division, no map lookup (ArenaFor + Insert
  // would otherwise pay both twice per vertex).
  Pane& PaneFor(Ts time) {
    if (last_pane_ != nullptr && time >= last_pane_->start &&
        time - last_pane_->start < pane_size_) {
      return *last_pane_;
    }
    return GetOrCreatePane(FloorDivTs(time));
  }

  Pane& GetOrCreatePane(int64_t idx) {
    auto it = panes_.find(idx);
    if (it == panes_.end()) {
      it = panes_.try_emplace(idx).first;
      Pane& pane = it->second;
      pane.start = idx * pane_size_;
      pane.buckets.resize(num_buckets_);
      ChargePane(&pane, PaneOverheadBytes(pane));
    }
    last_pane_ = &it->second;
    return it->second;
  }

  Ts pane_size_;
  size_t num_buckets_;
  MemoryTracker* memory_;
  std::map<int64_t, Pane> panes_;  // ordered by pane index
  Pane* last_pane_ = nullptr;      // one-entry PaneFor cache
  size_t size_ = 0;
  size_t bytes_ = 0;
};

}  // namespace greta

#endif  // GRETA_STORAGE_PANE_H_
