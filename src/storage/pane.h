#ifndef GRETA_STORAGE_PANE_H_
#define GRETA_STORAGE_PANE_H_

#include <deque>
#include <map>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "storage/btree.h"

namespace greta {

/// Time-pane store (Section 7, Figure 11): the stream is divided into
/// non-overlapping consecutive time intervals; each pane holds, per bucket
/// (one bucket per template state), the vertices that fall into it plus a
/// Vertex Tree sorted by that bucket's key attribute. Expired panes are
/// deleted wholesale ("instead of removing single expired events ... a whole
/// pane with its associated data structures is deleted").
///
/// V is the vertex type; values handed to Insert are stored in a deque so
/// the returned pointers stay stable for the lifetime of the pane.
template <typename V>
class PaneStore {
 public:
  PaneStore(Ts pane_size, size_t num_buckets)
      : pane_size_(pane_size), num_buckets_(num_buckets) {
    GRETA_CHECK(pane_size_ > 0);
    GRETA_CHECK(num_buckets_ > 0);
  }

  /// Inserts a vertex with the given tree key into the pane covering `time`.
  /// Returns a stable pointer.
  V* Insert(Ts time, size_t bucket, double key, V value) {
    GRETA_DCHECK(bucket < num_buckets_);
    int64_t idx = FloorDivTs(time);
    Pane& pane = GetOrCreatePane(idx);
    Bucket& b = pane.buckets[bucket];
    b.vertices.push_back(std::move(value));
    V* stored = &b.vertices.back();
    b.index.Insert(key, stored);
    ++size_;
    return stored;
  }

  /// Scans bucket `bucket` over all panes intersecting [lo_time, hi_time]
  /// (inclusive), visiting entries within `bounds` in key order per pane.
  /// `fn(V*)` is invoked for each.
  template <typename Fn>
  void ScanBucket(Ts lo_time, Ts hi_time, size_t bucket,
                  const KeyBounds& bounds, Fn&& fn) const {
    GRETA_DCHECK(bucket < num_buckets_);
    if (panes_.empty() || lo_time > hi_time) return;
    int64_t lo_idx = FloorDivTs(lo_time);
    for (auto it = panes_.lower_bound(lo_idx); it != panes_.end(); ++it) {
      if (it->second.start > hi_time) break;
      it->second.buckets[bucket].index.Scan(bounds, fn);
    }
  }

  /// Visits every vertex of `bucket` across all panes (pane order, then key
  /// order), e.g. for window-close scans.
  template <typename Fn>
  void ScanBucketAll(size_t bucket, Fn&& fn) const {
    for (const auto& [idx, pane] : panes_) {
      (void)idx;
      pane.buckets[bucket].index.ScanAll(fn);
    }
  }

  /// Drops every pane that ends at or before `cutoff` (batch deletion).
  /// Returns the number of vertices freed.
  size_t PurgeBefore(Ts cutoff) {
    return PurgeBefore(cutoff, [](const V&) {});
  }

  /// PurgeBefore variant invoking `on_free(vertex)` for each dropped vertex
  /// (e.g. to release memory accounting).
  template <typename Fn>
  size_t PurgeBefore(Ts cutoff, Fn&& on_free) {
    size_t freed = 0;
    while (!panes_.empty()) {
      auto it = panes_.begin();
      if (it->second.start + pane_size_ > cutoff) break;
      for (const Bucket& b : it->second.buckets) {
        for (const V& v : b.vertices) on_free(v);
        freed += b.vertices.size();
      }
      panes_.erase(it);
    }
    size_ -= freed;
    return freed;
  }

  size_t size() const { return size_; }
  size_t num_panes() const { return panes_.size(); }
  Ts pane_size() const { return pane_size_; }

  /// Bytes held by vertices and tree nodes (memory metric).
  size_t ApproxBytes() const {
    size_t bytes = 0;
    for (const auto& [idx, pane] : panes_) {
      (void)idx;
      for (const Bucket& b : pane.buckets) {
        bytes += b.vertices.size() * sizeof(V) + b.index.ApproxBytes();
      }
    }
    return bytes;
  }

 private:
  struct Bucket {
    std::deque<V> vertices;
    BPlusTree<V*> index;
  };
  struct Pane {
    Ts start = 0;
    std::vector<Bucket> buckets;
  };

  int64_t FloorDivTs(Ts t) const {
    int64_t q = t / pane_size_;
    if ((t % pane_size_ != 0) && (t < 0)) --q;
    return q;
  }

  Pane& GetOrCreatePane(int64_t idx) {
    auto it = panes_.find(idx);
    if (it == panes_.end()) {
      Pane pane;
      pane.start = idx * pane_size_;
      pane.buckets.resize(num_buckets_);
      it = panes_.emplace(idx, std::move(pane)).first;
    }
    return it->second;
  }

  Ts pane_size_;
  size_t num_buckets_;
  std::map<int64_t, Pane> panes_;  // ordered by pane index
  size_t size_ = 0;
};

}  // namespace greta

#endif  // GRETA_STORAGE_PANE_H_
