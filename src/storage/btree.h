#ifndef GRETA_STORAGE_BTREE_H_
#define GRETA_STORAGE_BTREE_H_

#include <cstddef>
#include <utility>

#include "common/check.h"
#include "common/simd.h"
#include "predicate/range.h"

namespace greta {

/// In-memory B+-tree keyed by double, supporting insertion and ordered range
/// scans (no deletion — the GRETA runtime deletes at pane granularity, so
/// whole trees are dropped instead of individual entries; invalidated
/// entries are tombstoned inside the value type).
///
/// This is the "Vertex Tree" of Section 7: vertices of one event type within
/// one Time Pane, sorted by the attribute of the most selective edge
/// predicate so predecessor lookups become range queries.
///
/// Duplicate keys are allowed; equal-key entries scan in insertion order.
template <typename V>
class BPlusTree {
 public:
  BPlusTree() = default;
  ~BPlusTree() { Clear(); }

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&& other) noexcept { *this = std::move(other); }
  BPlusTree& operator=(BPlusTree&& other) noexcept {
    if (this != &other) {
      Clear();
      root_ = other.root_;
      first_leaf_ = other.first_leaf_;
      size_ = other.size_;
      nodes_ = other.nodes_;
      other.root_ = nullptr;
      other.first_leaf_ = nullptr;
      other.size_ = 0;
      other.nodes_ = 0;
    }
    return *this;
  }

  void Insert(double key, V value) {
    if (root_ == nullptr) {
      Leaf* leaf = NewLeaf();
      root_ = leaf;
      first_leaf_ = leaf;
    }
    if (root_->count == kMaxKeys) GrowRoot();
    InsertNonFull(root_, key, std::move(value));
    ++size_;
  }

  /// Invokes `fn(value)` for every entry whose key is within `bounds`, in
  /// ascending key order. Keys ascend across the scan, so the lower bound
  /// is only tested until it first passes (the leading entries of the
  /// starting leaf); the steady-state loop tests the upper bound alone.
  template <typename Fn>
  void Scan(const KeyBounds& bounds, Fn&& fn) const {
    if (root_ == nullptr) return;
    // Skip phase: advance past keys below the lower bound. Keys equal to a
    // strict bound can fill whole leaves (duplicates), so the skip spans
    // leaves; once one key passes, every later key passes too.
    const simd::Kernels& k = simd::Dispatch();
    const Leaf* leaf = FindLeaf(bounds.lo);
    int i = 0;
    while (leaf != nullptr) {
      i = k.leaf_skip(leaf->keys, leaf->count, bounds.lo, bounds.lo_strict);
      if (i < leaf->count) break;
      leaf = leaf->next;
    }
    // Emit phase: only the upper bound remains to test. The stop index is
    // found by a bulk bound check over the leaf's key array; everything
    // before it emits unconditionally.
    while (leaf != nullptr) {
      const int stop =
          k.leaf_stop(leaf->keys, i, leaf->count, bounds.hi, bounds.hi_strict);
      for (; i < stop; ++i) fn(leaf->values[i]);
      if (stop < leaf->count) return;
      leaf = leaf->next;
      i = 0;
    }
  }

  /// Scan variant invoking `fn(key, value)` — the batch kernels collect
  /// (key, cell) pairs once per run and re-filter per event, so they need
  /// the key back out of the tree.
  template <typename Fn>
  void ScanWithKey(const KeyBounds& bounds, Fn&& fn) const {
    if (root_ == nullptr) return;
    const simd::Kernels& k = simd::Dispatch();
    const Leaf* leaf = FindLeaf(bounds.lo);
    int i = 0;
    while (leaf != nullptr) {
      i = k.leaf_skip(leaf->keys, leaf->count, bounds.lo, bounds.lo_strict);
      if (i < leaf->count) break;
      leaf = leaf->next;
    }
    while (leaf != nullptr) {
      const int stop =
          k.leaf_stop(leaf->keys, i, leaf->count, bounds.hi, bounds.hi_strict);
      for (; i < stop; ++i) fn(leaf->keys[i], leaf->values[i]);
      if (stop < leaf->count) return;
      leaf = leaf->next;
      i = 0;
    }
  }

  /// Invokes `fn(value)` for every entry in ascending key order.
  template <typename Fn>
  void ScanAll(Fn&& fn) const {
    for (const Leaf* leaf = first_leaf_; leaf != nullptr; leaf = leaf->next) {
      for (int i = 0; i < leaf->count; ++i) fn(leaf->values[i]);
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Bytes of node storage (for the benchmark memory metric).
  size_t ApproxBytes() const { return nodes_ * sizeof(Leaf); }

  void Clear() {
    if (root_ != nullptr) {
      FreeRec(root_);
      root_ = nullptr;
      first_leaf_ = nullptr;
      size_ = 0;
      nodes_ = 0;
    }
  }

 private:
  static constexpr int kMaxKeys = 32;

  struct Node {
    bool leaf = true;
    int count = 0;
    double keys[kMaxKeys];
  };
  struct Leaf : Node {
    V values[kMaxKeys];
    Leaf* next = nullptr;
  };
  struct Inner : Node {
    Node* children[kMaxKeys + 1];
  };

  Leaf* NewLeaf() {
    ++nodes_;
    Leaf* leaf = new Leaf();
    leaf->leaf = true;
    return leaf;
  }
  Inner* NewInner() {
    ++nodes_;
    Inner* inner = new Inner();
    inner->leaf = false;
    return inner;
  }

  void FreeRec(Node* node) {
    if (!node->leaf) {
      Inner* inner = static_cast<Inner*>(node);
      for (int i = 0; i <= inner->count; ++i) FreeRec(inner->children[i]);
      delete inner;
    } else {
      delete static_cast<Leaf*>(node);
    }
  }

  void GrowRoot() {
    Inner* new_root = NewInner();
    new_root->count = 0;
    new_root->children[0] = root_;
    SplitChild(new_root, 0);
    root_ = new_root;
  }

  // Splits the full child `idx` of `parent` (which has spare capacity).
  void SplitChild(Inner* parent, int idx) {
    Node* child = parent->children[idx];
    GRETA_CHECK(child->count == kMaxKeys);
    double up_key;
    Node* right;
    if (child->leaf) {
      Leaf* left = static_cast<Leaf*>(child);
      Leaf* new_leaf = NewLeaf();
      int mid = kMaxKeys / 2;
      new_leaf->count = kMaxKeys - mid;
      for (int i = 0; i < new_leaf->count; ++i) {
        new_leaf->keys[i] = left->keys[mid + i];
        new_leaf->values[i] = std::move(left->values[mid + i]);
      }
      left->count = mid;
      new_leaf->next = left->next;
      left->next = new_leaf;
      up_key = new_leaf->keys[0];
      right = new_leaf;
    } else {
      Inner* left = static_cast<Inner*>(child);
      Inner* new_inner = NewInner();
      int mid = kMaxKeys / 2;
      up_key = left->keys[mid];
      new_inner->count = kMaxKeys - mid - 1;
      for (int i = 0; i < new_inner->count; ++i) {
        new_inner->keys[i] = left->keys[mid + 1 + i];
      }
      for (int i = 0; i <= new_inner->count; ++i) {
        new_inner->children[i] = left->children[mid + 1 + i];
      }
      left->count = mid;
      right = new_inner;
    }
    // Shift parent entries right of idx.
    for (int i = parent->count; i > idx; --i) {
      parent->keys[i] = parent->keys[i - 1];
      parent->children[i + 1] = parent->children[i];
    }
    parent->keys[idx] = up_key;
    parent->children[idx + 1] = right;
    ++parent->count;
  }

  void InsertNonFull(Node* node, double key, V value) {
    while (!node->leaf) {
      Inner* inner = static_cast<Inner*>(node);
      // Find the child to descend into: first separator > key goes left;
      // equal keys descend right to preserve insertion order of duplicates.
      int i = inner->count;
      while (i > 0 && key < inner->keys[i - 1]) --i;
      Node* child = inner->children[i];
      if (child->count == kMaxKeys) {
        SplitChild(inner, i);
        if (key >= inner->keys[i]) ++i;
        child = inner->children[i];
      }
      node = child;
    }
    Leaf* leaf = static_cast<Leaf*>(node);
    GRETA_DCHECK(leaf->count < kMaxKeys);
    // Insert after the last equal key (stable duplicate order).
    int pos = leaf->count;
    while (pos > 0 && key < leaf->keys[pos - 1]) --pos;
    for (int i = leaf->count; i > pos; --i) {
      leaf->keys[i] = leaf->keys[i - 1];
      leaf->values[i] = std::move(leaf->values[i - 1]);
    }
    leaf->keys[pos] = key;
    leaf->values[pos] = std::move(value);
    ++leaf->count;
  }

  // Returns the first leaf that may contain keys >= lo. Descends LEFT past
  // separators equal to lo: a mid-duplicate leaf split leaves keys equal to
  // the pushed-up separator in the left leaf, so a right-equal descent
  // (insertion order) would strand them outside a non-strict scan. Landing
  // early is safe — Scan skips leading keys below its bound — and every
  // leaf after the landing leaf holds keys >= lo only.
  const Leaf* FindLeaf(double lo) const {
    const Node* node = root_;
    while (!node->leaf) {
      const Inner* inner = static_cast<const Inner*>(node);
      int i = inner->count;
      while (i > 0 && lo <= inner->keys[i - 1]) --i;
      node = inner->children[i];
    }
    return static_cast<const Leaf*>(node);
  }

  Node* root_ = nullptr;
  Leaf* first_leaf_ = nullptr;
  size_t size_ = 0;
  size_t nodes_ = 0;
};

}  // namespace greta

#endif  // GRETA_STORAGE_BTREE_H_
