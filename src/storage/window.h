#ifndef GRETA_STORAGE_WINDOW_H_
#define GRETA_STORAGE_WINDOW_H_

#include <numeric>

#include "common/check.h"
#include "common/types.h"
#include "query/query.h"

namespace greta {

/// Sliding-window arithmetic (Section 6). Window `w` covers application time
/// `[w * slide, w * slide + within)`; an event at time t falls into the
/// contiguous window range [FirstWindowOf(t), LastWindowOf(t)]. Windows with
/// negative ids (before stream start) are clamped away.

inline int64_t FloorDiv(int64_t a, int64_t b) {
  GRETA_DCHECK(b > 0);
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

inline WindowId FirstWindowOf(Ts t, const WindowSpec& w) {
  if (w.unbounded()) return 0;
  WindowId first = FloorDiv(t - w.within, w.slide) + 1;
  return first < 0 ? 0 : first;
}

inline WindowId LastWindowOf(Ts t, const WindowSpec& w) {
  if (w.unbounded()) return 0;
  WindowId last = FloorDiv(t, w.slide);
  return last < 0 ? 0 : last;
}

inline Ts WindowStartTime(WindowId wid, const WindowSpec& w) {
  if (w.unbounded()) return kMinTs;
  return wid * w.slide;
}

/// First timestamp at or after which window `wid` no longer admits events;
/// seeing an event at this time (or later) closes the window.
inline Ts WindowCloseTime(WindowId wid, const WindowSpec& w) {
  if (w.unbounded()) return kMaxTs;
  return wid * w.slide + w.within;
}

/// Upper bound on the number of windows any event falls into (the paper's
/// k). The per-vertex aggregate storage is O(k) (Theorem 8.1).
inline int MaxWindowsPerEvent(const WindowSpec& w) {
  if (w.unbounded()) return 1;
  return static_cast<int>((w.within + w.slide - 1) / w.slide);
}

/// Pane duration shared between overlapping windows (Section 7, "Time
/// Panes", after [15]): the largest interval that divides both window length
/// and slide, so every window is a whole number of panes.
inline Ts PaneSize(const WindowSpec& w) {
  if (w.unbounded()) return Ts{1} << 40;  // One giant pane per ~10^12 ticks.
  return std::gcd(w.within, w.slide);
}

}  // namespace greta

#endif  // GRETA_STORAGE_WINDOW_H_
