#include "storage/pane.h"

// PaneStore and BPlusTree are header-only templates; this translation unit
// anchors the storage library target.
