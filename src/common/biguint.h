#ifndef GRETA_COMMON_BIGUINT_H_
#define GRETA_COMMON_BIGUINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace greta {

/// Arbitrary-precision unsigned integer.
///
/// Under skip-till-any-match semantics the number of event trends doubles per
/// event in the worst case (Section 2 of the paper), so exact COUNT values
/// overflow any fixed-width integer long before realistic window sizes.
/// BigUInt backs the engine's exact counter mode; operations are limited to
/// what trend aggregation needs: addition, subtraction (no underflow),
/// multiplication (disjunction/conjunction combinators, SUM), small division
/// (binomial coefficients, AVG), comparison, and decimal conversion.
///
/// Representation: little-endian 64-bit limbs, normalized (no high zero
/// limbs); the value 0 is the empty limb vector.
class BigUInt {
 public:
  BigUInt() = default;
  explicit BigUInt(uint64_t v) {
    if (v != 0) limbs_.push_back(v);
  }

  /// Parses a decimal string; aborts on malformed input (test helper).
  static BigUInt FromDecimal(std::string_view s);

  bool IsZero() const { return limbs_.empty(); }

  /// True if the value fits in 64 bits.
  bool FitsUint64() const { return limbs_.size() <= 1; }

  /// Low 64 bits of the value (the full value if FitsUint64()).
  uint64_t Low64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  /// Number of significant bits (0 for the value 0).
  size_t BitWidth() const;

  void Add(const BigUInt& other);
  void AddUint64(uint64_t v);

  /// Subtracts `other`; aborts if `other > *this`.
  void Sub(const BigUInt& other);

  void MulUint64(uint64_t v);
  BigUInt Mul(const BigUInt& other) const;

  /// Divides by a small divisor in place and returns the remainder.
  uint64_t DivUint64(uint64_t divisor);

  /// Three-way comparison: <0, 0, >0.
  int Compare(const BigUInt& other) const;
  bool operator==(const BigUInt& other) const { return Compare(other) == 0; }
  bool operator!=(const BigUInt& other) const { return Compare(other) != 0; }
  bool operator<(const BigUInt& other) const { return Compare(other) < 0; }

  /// Lossy conversion for reporting (AVG, plots).
  double ToDouble() const;

  /// Exact decimal rendering.
  std::string ToDecimal() const;

  /// Bytes of heap memory held by this value.
  size_t ApproxBytes() const { return limbs_.capacity() * sizeof(uint64_t); }

 private:
  void Normalize();

  std::vector<uint64_t> limbs_;
};

}  // namespace greta

#endif  // GRETA_COMMON_BIGUINT_H_
