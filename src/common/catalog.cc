#include "common/catalog.h"

namespace greta {

AttrId EventTypeDef::FindAttr(std::string_view attr_name) const {
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (attrs[i].name == attr_name) return static_cast<AttrId>(i);
  }
  return kInvalidAttr;
}

TypeId Catalog::DefineType(std::string_view name,
                           std::vector<AttributeDef> attrs) {
  GRETA_CHECK(index_.find(std::string(name)) == index_.end());
  TypeId id = static_cast<TypeId>(types_.size());
  types_.push_back(EventTypeDef{std::string(name), std::move(attrs)});
  index_.emplace(std::string(name), id);
  return id;
}

TypeId Catalog::FindType(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return kInvalidType;
  return it->second;
}

}  // namespace greta
