#ifndef GRETA_COMMON_STREAM_H_
#define GRETA_COMMON_STREAM_H_

#include <vector>

#include "common/event.h"

namespace greta {

/// An in-order event stream. Append enforces non-decreasing timestamps and
/// assigns arrival sequence numbers (Section 2: events arrive in-order; an
/// out-of-order buffer such as K-slack could be layered in front).
class Stream {
 public:
  Stream() = default;

  /// Appends an event; aborts if its timestamp precedes the current tail.
  void Append(Event e);

  const std::vector<Event>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const Event& operator[](size_t i) const { return events_[i]; }

  /// Timestamp of the last appended event; kMinTs if empty.
  Ts max_time() const { return events_.empty() ? kMinTs : events_.back().time; }

 private:
  std::vector<Event> events_;
};

}  // namespace greta

#endif  // GRETA_COMMON_STREAM_H_
