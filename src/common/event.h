#ifndef GRETA_COMMON_EVENT_H_
#define GRETA_COMMON_EVENT_H_

#include <string>
#include <vector>

#include "common/catalog.h"
#include "common/types.h"
#include "common/value.h"

namespace greta {

/// A primitive event: occurrence time, arrival sequence number, event type,
/// and attribute values positionally matching the type's schema (Section 2).
struct Event {
  Ts time = 0;
  SeqNo seq = 0;
  TypeId type = kInvalidType;
  std::vector<Value> attrs;

  const Value& attr(AttrId id) const {
    GRETA_DCHECK(id >= 0 && static_cast<size_t>(id) < attrs.size());
    return attrs[id];
  }

  /// Debug rendering like "A@3{attr=5}".
  std::string ToString(const Catalog& catalog) const;
};

/// Convenience builder for events used in tests and examples:
///
///   Event e = EventBuilder(catalog, "Stock", /*time=*/7)
///                 .Set("price", 12.5)
///                 .Set("company", "IBM")
///                 .Build();
class EventBuilder {
 public:
  EventBuilder(Catalog* catalog, std::string_view type_name, Ts time);

  EventBuilder& Set(std::string_view attr_name, double v);
  EventBuilder& Set(std::string_view attr_name, int64_t v);
  EventBuilder& Set(std::string_view attr_name, int v) {
    return Set(attr_name, static_cast<int64_t>(v));
  }
  EventBuilder& Set(std::string_view attr_name, std::string_view v);

  /// Returns the built event, leaving the builder in a moved-from state.
  Event Build() { return std::move(event_); }

 private:
  AttrId ResolveAttr(std::string_view attr_name) const;

  Catalog* catalog_;
  Event event_;
};

}  // namespace greta

#endif  // GRETA_COMMON_EVENT_H_
