#ifndef GRETA_COMMON_EVENT_H_
#define GRETA_COMMON_EVENT_H_

#include <string>
#include <vector>

#include "common/catalog.h"
#include "common/types.h"
#include "common/value.h"

namespace greta {

/// A primitive event: occurrence time, arrival sequence number, event type,
/// and attribute values positionally matching the type's schema (Section 2).
struct Event {
  Ts time = 0;
  SeqNo seq = 0;
  TypeId type = kInvalidType;
  std::vector<Value> attrs;

  const Value& attr(AttrId id) const {
    GRETA_DCHECK(id >= 0 && static_cast<size_t>(id) < attrs.size());
    return attrs[id];
  }

  /// Debug rendering like "A@3{attr=5}".
  std::string ToString(const Catalog& catalog) const;
};

/// A borrowed, 16-byte view of an event's attribute values, the currency of
/// predicate evaluation. Graph vertices store their event payload as a bare
/// arena-backed `Value` span (only the attributes the plan reads) instead of
/// a full `Event` copy; both `Event` and such spans convert to this view.
/// The view does not own the values and must not outlive them.
struct EventView {
  const Value* attrs = nullptr;
  size_t num_attrs = 0;

  EventView() = default;
  EventView(const Event& e)  // NOLINT: implicit by design
      : attrs(e.attrs.data()), num_attrs(e.attrs.size()) {}
  EventView(const Value* values, size_t n) : attrs(values), num_attrs(n) {}

  const Value& attr(AttrId id) const {
    GRETA_DCHECK(id >= 0 && static_cast<size_t>(id) < num_attrs);
    return attrs[id];
  }
};

/// Convenience builder for events used in tests and examples:
///
///   Event e = EventBuilder(catalog, "Stock", /*time=*/7)
///                 .Set("price", 12.5)
///                 .Set("company", "IBM")
///                 .Build();
class EventBuilder {
 public:
  EventBuilder(Catalog* catalog, std::string_view type_name, Ts time);

  EventBuilder& Set(std::string_view attr_name, double v);
  EventBuilder& Set(std::string_view attr_name, int64_t v);
  EventBuilder& Set(std::string_view attr_name, int v) {
    return Set(attr_name, static_cast<int64_t>(v));
  }
  EventBuilder& Set(std::string_view attr_name, std::string_view v);

  /// Returns the built event, leaving the builder in a moved-from state.
  Event Build() { return std::move(event_); }

 private:
  AttrId ResolveAttr(std::string_view attr_name) const;

  Catalog* catalog_;
  Event event_;
};

}  // namespace greta

#endif  // GRETA_COMMON_EVENT_H_
