#ifndef GRETA_COMMON_EVENT_H_
#define GRETA_COMMON_EVENT_H_

#include <string>
#include <vector>

#include "common/catalog.h"
#include "common/types.h"
#include "common/value.h"

namespace greta {

/// A primitive event: occurrence time, arrival sequence number, event type,
/// and attribute values positionally matching the type's schema (Section 2).
struct Event {
  Ts time = 0;
  SeqNo seq = 0;
  TypeId type = kInvalidType;
  std::vector<Value> attrs;

  const Value& attr(AttrId id) const {
    GRETA_DCHECK(id >= 0 && static_cast<size_t>(id) < attrs.size());
    return attrs[id];
  }

  /// Debug rendering like "A@3{attr=5}".
  std::string ToString(const Catalog& catalog) const;
};

/// A borrowed, 16-byte view of an event's attribute values, the currency of
/// predicate evaluation. Graph vertices store their event payload as a bare
/// arena-backed `Value` span (only the attributes the plan reads) instead of
/// a full `Event` copy; both `Event` and such spans convert to this view.
/// The view does not own the values and must not outlive them.
struct EventView {
  const Value* attrs = nullptr;
  size_t num_attrs = 0;

  EventView() = default;
  EventView(const Event& e)  // NOLINT: implicit by design
      : attrs(e.attrs.data()), num_attrs(e.attrs.size()) {}
  EventView(const Value* values, size_t n) : attrs(values), num_attrs(n) {}

  const Value& attr(AttrId id) const {
    GRETA_DCHECK(id >= 0 && static_cast<size_t>(id) < num_attrs);
    return attrs[id];
  }
};

/// A borrowed full-event view: the scalar header fields (time, seq, type)
/// plus the attribute span, without owning any of it. This is the currency
/// of the insert hot path — both a heap-backed `Event` and a row of a
/// columnar `EventBatch` convert to it for free, so the propagation kernels
/// are written once against `EventRef` and serve either ingest shape. Like
/// `EventView`, it must not outlive the storage it points into.
struct EventRef {
  Ts time = 0;
  SeqNo seq = 0;
  TypeId type = kInvalidType;
  const Value* attrs = nullptr;
  size_t num_attrs = 0;

  EventRef() = default;
  EventRef(const Event& e)  // NOLINT: implicit by design
      : time(e.time),
        seq(e.seq),
        type(e.type),
        attrs(e.attrs.data()),
        num_attrs(e.attrs.size()) {}
  EventRef(Ts t, SeqNo s, TypeId ty, const Value* values, size_t n)
      : time(t), seq(s), type(ty), attrs(values), num_attrs(n) {}

  const Value& attr(AttrId id) const {
    GRETA_DCHECK(id >= 0 && static_cast<size_t>(id) < num_attrs);
    return attrs[id];
  }

  EventView view() const { return EventView(attrs, num_attrs); }
  operator EventView() const { return view(); }  // NOLINT: implicit by design
};

/// Convenience builder for events used in tests and examples:
///
///   Event e = EventBuilder(catalog, "Stock", /*time=*/7)
///                 .Set("price", 12.5)
///                 .Set("company", "IBM")
///                 .Build();
class EventBuilder {
 public:
  EventBuilder(Catalog* catalog, std::string_view type_name, Ts time);

  EventBuilder& Set(std::string_view attr_name, double v);
  EventBuilder& Set(std::string_view attr_name, int64_t v);
  EventBuilder& Set(std::string_view attr_name, int v) {
    return Set(attr_name, static_cast<int64_t>(v));
  }
  EventBuilder& Set(std::string_view attr_name, std::string_view v);

  /// Returns the built event, leaving the builder in a moved-from state.
  Event Build() { return std::move(event_); }

 private:
  AttrId ResolveAttr(std::string_view attr_name) const;

  Catalog* catalog_;
  Event event_;
};

}  // namespace greta

#endif  // GRETA_COMMON_EVENT_H_
