#ifndef GRETA_COMMON_MEMORY_H_
#define GRETA_COMMON_MEMORY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace greta {

/// Deterministic memory accounting for the benchmark "memory" metric
/// (Section 10.1: peak bytes of the engine's runtime data structures).
///
/// Engines register allocations/releases of their logical data structures
/// (graph vertices, aggregate cells, stacks, materialized trends); the
/// tracker records current and peak usage. This is intentionally analytic
/// rather than RSS-based so runs are reproducible and comparable across
/// engines and machines. Thread-safe (parallel group processing).
///
/// Scope note: the GRETA engine charges structural bytes at their
/// allocation sites (panes, vertex slots, tree nodes, arena chunks — O(1)
/// per insert, see storage/pane.h). Heap storage of exact-mode counters
/// promoted past 2^64 (Counter::ApproxHeapBytes) is NOT charged: promotion
/// happens inside aggregate propagation with no tracker in reach, and the
/// benchmark regime (modular counters) never promotes. Metric comparisons
/// across engines are unaffected as long as modes match.
///
/// Roll-up hierarchy (src/runtime/ sharded execution): a tracker may be
/// given a parent; every Add/Release is forwarded to the parent at the
/// allocation site, so the parent's peak is a true point-in-time aggregate
/// across all children (summing per-child peaks would add maxima reached at
/// different times). The parent must be set before any concurrent use and
/// must outlive the child.
class MemoryTracker {
 public:
  MemoryTracker() = default;
  explicit MemoryTracker(MemoryTracker* parent) : parent_(parent) {}

  /// Not thread-safe: call before the tracker is shared across threads.
  void set_parent(MemoryTracker* parent) { parent_ = parent; }

  void Add(size_t bytes) {
    size_t now =
        current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    size_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed)) {
    }
    if (parent_ != nullptr) parent_->Add(bytes);
  }

  void Release(size_t bytes) {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
    if (parent_ != nullptr) parent_->Release(bytes);
  }

  size_t current_bytes() const {
    return current_.load(std::memory_order_relaxed);
  }
  size_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }

  void Reset() {
    current_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  MemoryTracker* parent_ = nullptr;
  std::atomic<size_t> current_{0};
  std::atomic<size_t> peak_{0};
};

}  // namespace greta

#endif  // GRETA_COMMON_MEMORY_H_
