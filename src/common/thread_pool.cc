#include "common/thread_pool.h"

#include "common/check.h"

namespace greta {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  pinned_.resize(num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  GRETA_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    GRETA_CHECK(!shutdown_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::SubmitPinned(size_t worker, std::function<void()> task) {
  GRETA_CHECK(task != nullptr);
  GRETA_CHECK(worker < pinned_.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    GRETA_CHECK(!shutdown_);
    pinned_[worker].push_back(std::move(task));
    ++pinned_pending_;
  }
  // The pinned worker may be the one waiting; wake everyone rather than
  // tracking which condvar waiter maps to which thread.
  task_ready_.notify_all();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] {
    return queue_.empty() && pinned_pending_ == 0 && in_flight_ == 0;
  });
}

void ThreadPool::WorkerLoop(size_t index) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this, index] {
        return shutdown_ || !queue_.empty() || !pinned_[index].empty();
      });
      if (shutdown_ && queue_.empty() && pinned_[index].empty()) return;
      if (!pinned_[index].empty()) {
        task = std::move(pinned_[index].front());
        pinned_[index].pop_front();
        --pinned_pending_;
      } else {
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && pinned_pending_ == 0 && in_flight_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

}  // namespace greta
