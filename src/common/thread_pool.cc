#include "common/thread_pool.h"

#include "common/check.h"

namespace greta {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  GRETA_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    GRETA_CHECK(!shutdown_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace greta
