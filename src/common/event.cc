#include "common/event.h"

namespace greta {

std::string Event::ToString(const Catalog& catalog) const {
  const EventTypeDef& def = catalog.type(type);
  std::string out = def.name;
  out += "@";
  out += std::to_string(time);
  out += "{";
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out += ",";
    out += def.attrs[i].name;
    out += "=";
    out += attrs[i].ToString(&catalog.strings());
  }
  out += "}";
  return out;
}

EventBuilder::EventBuilder(Catalog* catalog, std::string_view type_name,
                           Ts time)
    : catalog_(catalog) {
  TypeId type = catalog->FindType(type_name);
  GRETA_CHECK(type != kInvalidType);
  event_.type = type;
  event_.time = time;
  event_.attrs.resize(catalog->type(type).attrs.size());
}

AttrId EventBuilder::ResolveAttr(std::string_view attr_name) const {
  AttrId id = catalog_->type(event_.type).FindAttr(attr_name);
  GRETA_CHECK(id != kInvalidAttr);
  return id;
}

EventBuilder& EventBuilder::Set(std::string_view attr_name, double v) {
  event_.attrs[ResolveAttr(attr_name)] = Value::Double(v);
  return *this;
}

EventBuilder& EventBuilder::Set(std::string_view attr_name, int64_t v) {
  event_.attrs[ResolveAttr(attr_name)] = Value::Int(v);
  return *this;
}

EventBuilder& EventBuilder::Set(std::string_view attr_name,
                                std::string_view v) {
  event_.attrs[ResolveAttr(attr_name)] =
      Value::Str(catalog_->strings()->Intern(v));
  return *this;
}

}  // namespace greta
