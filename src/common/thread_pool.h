#ifndef GRETA_COMMON_THREAD_POOL_H_
#define GRETA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace greta {

/// A fixed-size worker pool used for parallel processing of event trend
/// groups (Section 7: "the grouping clause partitions the stream into
/// sub-streams that are processed in parallel independently from each
/// other"). Tasks are arbitrary closures; WaitIdle() provides the barrier at
/// stream-transaction boundaries.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void WaitIdle();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace greta

#endif  // GRETA_COMMON_THREAD_POOL_H_
