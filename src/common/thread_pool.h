#ifndef GRETA_COMMON_THREAD_POOL_H_
#define GRETA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace greta {

/// A fixed-size worker pool used for parallel processing of event trend
/// groups (Section 7: "the grouping clause partitions the stream into
/// sub-streams that are processed in parallel independently from each
/// other"). Tasks are arbitrary closures; WaitIdle() provides the barrier at
/// stream-transaction boundaries.
///
/// Pinned tasks (src/runtime/ sharded execution): SubmitPinned(w, task)
/// guarantees the task runs on worker `w`, so per-shard state touched only
/// by that shard's drain loop needs no further synchronization. A worker
/// prefers its pinned queue over the shared queue; long-running pinned
/// tasks (e.g. a queue drain loop that exits on queue close) simply occupy
/// their worker until they return.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on any worker.
  void Submit(std::function<void()> task);

  /// Enqueues a task that must execute on worker `worker` (< num_threads).
  void SubmitPinned(size_t worker, std::function<void()> task);

  /// Blocks until every submitted task (shared and pinned) has finished.
  void WaitIdle();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop(size_t index);

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::deque<std::function<void()>>> pinned_;  // per worker
  std::vector<std::thread> threads_;
  size_t in_flight_ = 0;
  size_t pinned_pending_ = 0;  // total across pinned_ queues
  bool shutdown_ = false;
};

}  // namespace greta

#endif  // GRETA_COMMON_THREAD_POOL_H_
