#ifndef GRETA_COMMON_CATALOG_H_
#define GRETA_COMMON_CATALOG_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "common/value.h"

namespace greta {

/// Declares one attribute of an event type's schema.
struct AttributeDef {
  std::string name;
  Value::Kind kind = Value::Kind::kDouble;
};

/// Schema of one event type: a name plus an ordered list of attributes.
struct EventTypeDef {
  std::string name;
  std::vector<AttributeDef> attrs;

  /// Returns the attribute index for `attr_name`, or kInvalidAttr.
  AttrId FindAttr(std::string_view attr_name) const;
};

/// Registry of event types and their schemas, plus the shared string pool
/// used to intern string attribute values. One catalog is shared by a query,
/// its stream, and the engine evaluating it.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers an event type; names must be unique. Returns its id.
  TypeId DefineType(std::string_view name, std::vector<AttributeDef> attrs);

  /// Returns the type id for `name`, or kInvalidType.
  TypeId FindType(std::string_view name) const;

  const EventTypeDef& type(TypeId id) const {
    GRETA_CHECK(id >= 0 && static_cast<size_t>(id) < types_.size());
    return types_[id];
  }

  size_t num_types() const { return types_.size(); }

  StringPool* strings() { return &strings_; }
  const StringPool& strings() const { return strings_; }

 private:
  std::vector<EventTypeDef> types_;
  std::unordered_map<std::string, TypeId> index_;
  StringPool strings_;
};

}  // namespace greta

#endif  // GRETA_COMMON_CATALOG_H_
