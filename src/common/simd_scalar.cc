#include "common/simd.h"
#include "common/simd_scalar.inl.h"

namespace greta::simd {

// The portable table: every dispatch target falls back here per entry when
// an ISA has no vector form, and the differential tests pin GRETA_SIMD=scalar
// to this table to produce the reference rows.
const Kernels& ScalarKernels() {
  static const Kernels k = {
      &detail::FilterSel,      &detail::RangeSelect, &detail::MaskedCountSum,
      &detail::LeafSkip,       &detail::LeafStop,    &detail::RunSplit,
      &detail::SplitMixBulk,
  };
  return k;
}

}  // namespace greta::simd
