#include "common/event_batch.h"

#include <algorithm>
#include <numeric>
#include <utility>

namespace greta {

Event EventBatch::ToEvent(size_t i) const {
  GRETA_DCHECK(i < size());
  Event e;
  e.time = times_[i];
  e.seq = seqs_[i];
  e.type = types_[i];
  const Value* a = attrs(i);
  e.attrs.assign(a, a + num_attrs(i));
  return e;
}

void EventBatch::SortByTime() {
  if (time_ordered_) return;
  const size_t n = size();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
    return times_[a] < times_[b];
  });
  EventBatch sorted;
  sorted.reserve(n, n == 0 ? 4 : (attrs_.size() + n - 1) / n);
  const bool stamped = has_arrivals();
  for (uint32_t i : order) {
    sorted.Append(ref(i));
    if (stamped) sorted.AppendArrival(arrivals_[i]);
  }
  *this = std::move(sorted);
}

}  // namespace greta
