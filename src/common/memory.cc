#include "common/memory.h"

// MemoryTracker is header-only; this translation unit anchors the library
// target so every module directory builds at least one object file.
