#ifndef GRETA_COMMON_TYPES_H_
#define GRETA_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace greta {

/// Application (event) time. The paper models time as a linearly ordered set
/// of time points; we use 64-bit integers (e.g. seconds or milliseconds).
using Ts = int64_t;

/// Arrival sequence number. Events arrive in-order by timestamp (Section 2 of
/// the paper); the sequence number refines the timestamp into a total order so
/// that same-timestamp events keep a deterministic arrival order.
using SeqNo = int64_t;

/// Identifier of an event type registered in a Catalog.
using TypeId = int32_t;

/// Index of an attribute within its event type's schema.
using AttrId = int32_t;

/// Identifier of a state in a GRETA template. States are occurrence-unique:
/// one event type may map to several states (Section 9 of the paper).
using StateId = int32_t;

/// Identifier of a sliding window. Window `w` covers application time
/// `[w * slide, w * slide + within)`.
using WindowId = int64_t;

/// Identifier of an interned string in a StringPool.
using StrId = int32_t;

inline constexpr TypeId kInvalidType = -1;
inline constexpr AttrId kInvalidAttr = -1;
inline constexpr StateId kInvalidState = -1;
inline constexpr Ts kMinTs = std::numeric_limits<Ts>::min();
inline constexpr Ts kMaxTs = std::numeric_limits<Ts>::max();
inline constexpr SeqNo kMinSeq = std::numeric_limits<SeqNo>::min();
inline constexpr SeqNo kMaxSeq = std::numeric_limits<SeqNo>::max();

}  // namespace greta

#endif  // GRETA_COMMON_TYPES_H_
