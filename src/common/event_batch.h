#ifndef GRETA_COMMON_EVENT_BATCH_H_
#define GRETA_COMMON_EVENT_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/event.h"
#include "common/types.h"
#include "common/value.h"

namespace greta {

/// A columnar (structure-of-arrays) slice of the event stream, in the style
/// of a table slice: parallel column vectors for timestamp, sequence number
/// and type id, plus one flattened row-major attribute payload indexed by a
/// prefix-offset column. Rows are appended at the ingest boundary and read
/// back as zero-copy `EventView` / `EventRef` borrows, so everything
/// downstream — shard routing, predicate selection, the batch propagation
/// kernels — walks contiguous columns instead of chasing one heap-backed
/// `Event` per row.
///
/// The batch owns its storage; views handed out by `view(i)` / `ref(i)` are
/// invalidated by any mutating call (Append/SortByTime/clear/move).
class EventBatch {
 public:
  EventBatch() = default;

  EventBatch(const EventBatch&) = delete;
  EventBatch& operator=(const EventBatch&) = delete;
  EventBatch(EventBatch&& other) noexcept { *this = std::move(other); }
  EventBatch& operator=(EventBatch&& other) noexcept {
    if (this != &other) {
      times_ = std::move(other.times_);
      seqs_ = std::move(other.seqs_);
      types_ = std::move(other.types_);
      attrs_ = std::move(other.attrs_);
      offsets_ = std::move(other.offsets_);
      arrivals_ = std::move(other.arrivals_);
      time_ordered_ = other.time_ordered_;
      other.clear();
    }
    return *this;
  }

  /// Copies one event's header fields and attribute values into the columns.
  void Append(const EventRef& e) {
    if (!times_.empty() && e.time < times_.back()) time_ordered_ = false;
    times_.push_back(e.time);
    seqs_.push_back(e.seq);
    types_.push_back(e.type);
    attrs_.insert(attrs_.end(), e.attrs, e.attrs + e.num_attrs);
    offsets_.push_back(attrs_.size());
  }

  size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }

  Ts time(size_t i) const { return times_[i]; }
  SeqNo seq(size_t i) const { return seqs_[i]; }
  TypeId type(size_t i) const { return types_[i]; }

  size_t num_attrs(size_t i) const {
    return offsets_[i] - (i == 0 ? 0 : offsets_[i - 1]);
  }
  const Value* attrs(size_t i) const {
    return attrs_.data() + (i == 0 ? 0 : offsets_[i - 1]);
  }

  EventView view(size_t i) const {
    GRETA_DCHECK(i < size());
    return EventView(attrs(i), num_attrs(i));
  }
  EventRef ref(size_t i) const {
    GRETA_DCHECK(i < size());
    return EventRef(times_[i], seqs_[i], types_[i], attrs(i), num_attrs(i));
  }

  /// Materializes row `i` as an owning `Event` (broadcast buffering, scalar
  /// engines without a native batch path).
  Event ToEvent(size_t i) const;

  /// Whether timestamps are non-decreasing across rows (maintained
  /// incrementally by Append; restored by SortByTime).
  bool time_ordered() const { return time_ordered_; }

  /// Optional arrival-clock column (steady-clock ns at ingest) used for
  /// end-to-end latency: result emission subtracts the stamp to get
  /// arrival→emit latency. Absent unless the ingest boundary opts in —
  /// the column costs 8 bytes/row, so only latency-measuring paths pay it.
  bool has_arrivals() const { return !arrivals_.empty(); }
  uint64_t arrival_ns(size_t i) const {
    GRETA_DCHECK(i < arrivals_.size());
    return arrivals_[i];
  }
  /// Stamps every current row with one arrival tick (batch-granularity: all
  /// rows of a batch arrive together at the ingest boundary).
  void StampArrivals(uint64_t now_ns) { arrivals_.assign(size(), now_ns); }
  /// Appends one arrival stamp; pair with Append when re-packing a stamped
  /// batch row by row (shard routing, SortByTime).
  void AppendArrival(uint64_t now_ns) { arrivals_.push_back(now_ns); }

  /// Stable-sorts rows by timestamp, preserving the append order of rows
  /// with equal timestamps. For ingest sources that are only sorted within a
  /// bounded horizon (`IngestOptions::sort_within_batch`).
  void SortByTime();

  /// Drops all rows, keeping column capacity for reuse.
  void clear() {
    times_.clear();
    seqs_.clear();
    types_.clear();
    attrs_.clear();
    offsets_.clear();
    arrivals_.clear();
    time_ordered_ = true;
  }

  void reserve(size_t rows, size_t attrs_per_row = 4) {
    times_.reserve(rows);
    seqs_.reserve(rows);
    types_.reserve(rows);
    offsets_.reserve(rows);
    attrs_.reserve(rows * attrs_per_row);
  }

  /// Pre-sizes every column — including the optional arrival-clock column —
  /// for `rows` rows of about `attrs_per_row` attributes each, so a
  /// steady-state refill at the ingest boundary (shard router pending
  /// batches, the batched bench drivers) never reallocates mid-fill.
  void Reserve(size_t rows, size_t attrs_per_row = 4) {
    reserve(rows, attrs_per_row);
    arrivals_.reserve(rows);
  }

  const std::vector<Ts>& times() const { return times_; }
  const std::vector<TypeId>& types() const { return types_; }

 private:
  std::vector<Ts> times_;
  std::vector<SeqNo> seqs_;
  std::vector<TypeId> types_;
  std::vector<Value> attrs_;     // row-major flattened payloads
  std::vector<size_t> offsets_;  // offsets_[i] = end of row i in attrs_
  std::vector<uint64_t> arrivals_;  // empty, or one ingest tick per row
  bool time_ordered_ = true;
};

/// How the ingest boundary packs events into batches. Parsed from the
/// workload spec's "ingest" block and honored by the batched bench drivers.
struct IngestOptions {
  /// Events per EventBatch handed to ProcessBatch; 0 = scalar Process path.
  size_t batch_size = 256;
  /// Stable-sort each batch by timestamp before processing (for sources that
  /// are out of order within one batch but sorted across batches).
  bool sort_within_batch = false;
};

}  // namespace greta

#endif  // GRETA_COMMON_EVENT_BATCH_H_
