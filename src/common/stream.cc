#include "common/stream.h"

namespace greta {

void Stream::Append(Event e) {
  GRETA_CHECK(events_.empty() || e.time >= events_.back().time);
  e.seq = static_cast<SeqNo>(events_.size());
  events_.push_back(std::move(e));
}

}  // namespace greta
