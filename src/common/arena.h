#ifndef GRETA_COMMON_ARENA_H_
#define GRETA_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <utility>

#include "common/check.h"

namespace greta {

/// A chunked bump allocator for pane-local runtime state (GraphVertex
/// aggregate cells and stored-event attribute payloads). Allocations are a
/// pointer bump; nothing is freed individually — the owning pane drops the
/// whole arena when it expires, which is exactly the wholesale batch
/// deletion Section 7 prescribes ("a whole pane with its associated data
/// structures is deleted").
///
/// The arena never runs destructors. Callers placing non-trivially-
/// destructible objects here (AggCell owns a possibly-promoted Counter) must
/// run the destructors themselves before the arena dies; GraphVertex does so
/// in its own destructor, which the pane's vertex deque invokes before the
/// arena member is destroyed.
///
/// Chunks grow geometrically from `first_chunk_bytes` up to `kMaxChunkBytes`
/// so small panes (one partition, a handful of vertices) stay cheap while
/// hot panes amortize to one malloc per ~64 KiB. `footprint_bytes()` is the
/// O(1) source of truth for memory accounting: PaneStore polls its delta
/// after each insert instead of walking cells.
class Arena {
 public:
  explicit Arena(size_t first_chunk_bytes = kDefaultFirstChunkBytes)
      : next_chunk_bytes_(first_chunk_bytes) {
    GRETA_CHECK(first_chunk_bytes >= 64);
  }

  ~Arena() { FreeChunks(); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  Arena(Arena&& other) noexcept { *this = std::move(other); }
  Arena& operator=(Arena&& other) noexcept {
    if (this != &other) {
      FreeChunks();
      head_ = other.head_;
      cursor_ = other.cursor_;
      limit_ = other.limit_;
      footprint_ = other.footprint_;
      next_chunk_bytes_ = other.next_chunk_bytes_;
      other.head_ = nullptr;
      other.cursor_ = other.limit_ = nullptr;
      other.footprint_ = 0;
    }
    return *this;
  }

  /// Returns `bytes` of uninitialized storage aligned to `align` (a power of
  /// two, at most alignof(std::max_align_t)).
  void* Allocate(size_t bytes, size_t align) {
    GRETA_DCHECK(align > 0 && (align & (align - 1)) == 0);
    GRETA_DCHECK(align <= alignof(std::max_align_t));
    uintptr_t p = reinterpret_cast<uintptr_t>(cursor_);
    uintptr_t aligned = (p + align - 1) & ~uintptr_t(align - 1);
    if (aligned + bytes > reinterpret_cast<uintptr_t>(limit_)) {
      Grow(bytes + align);
      p = reinterpret_cast<uintptr_t>(cursor_);
      aligned = (p + align - 1) & ~uintptr_t(align - 1);
    }
    cursor_ = reinterpret_cast<char*>(aligned + bytes);
    return reinterpret_cast<void*>(aligned);
  }

  /// Uninitialized storage for `n` objects of type T; the caller
  /// placement-constructs (and, if needed, later destroys) them.
  template <typename T>
  T* AllocateArray(size_t n) {
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Ensures at least `bytes` of contiguous bump space so a following run of
  /// allocations (a batch of vertices landing in one pane) pays at most one
  /// Grow. Chunk growth is visible in footprint_bytes() immediately, so
  /// callers relying on delta-polled accounting must Reserve between polls
  /// of the same pane.
  void Reserve(size_t bytes) {
    size_t avail = static_cast<size_t>(limit_ - cursor_);
    if (avail < bytes) Grow(bytes + alignof(std::max_align_t));
  }

  /// Total bytes of chunk storage reserved (including headers and bump
  /// slack). O(1); the unit of incremental memory accounting.
  size_t footprint_bytes() const { return footprint_; }

  static constexpr size_t kDefaultFirstChunkBytes = 1024;
  static constexpr size_t kMaxChunkBytes = 64 * 1024;

 private:
  struct ChunkHeader {
    ChunkHeader* next;
    size_t bytes;  // total malloc'd size including this header
  };

  void Grow(size_t min_payload) {
    size_t want = sizeof(ChunkHeader) + min_payload;
    size_t bytes = next_chunk_bytes_ < want ? want : next_chunk_bytes_;
    if (next_chunk_bytes_ < kMaxChunkBytes) next_chunk_bytes_ *= 2;
    char* raw = static_cast<char*>(std::malloc(bytes));
    GRETA_CHECK(raw != nullptr);
    ChunkHeader* chunk = reinterpret_cast<ChunkHeader*>(raw);
    chunk->next = head_;
    chunk->bytes = bytes;
    head_ = chunk;
    cursor_ = raw + sizeof(ChunkHeader);
    limit_ = raw + bytes;
    footprint_ += bytes;
  }

  void FreeChunks() {
    ChunkHeader* chunk = head_;
    while (chunk != nullptr) {
      ChunkHeader* next = chunk->next;
      std::free(chunk);
      chunk = next;
    }
    head_ = nullptr;
    cursor_ = limit_ = nullptr;
    footprint_ = 0;
  }

  ChunkHeader* head_ = nullptr;
  char* cursor_ = nullptr;
  char* limit_ = nullptr;
  size_t footprint_ = 0;
  size_t next_chunk_bytes_;
};

}  // namespace greta

#endif  // GRETA_COMMON_ARENA_H_
