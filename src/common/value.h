#ifndef GRETA_COMMON_VALUE_H_
#define GRETA_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace greta {

class StringPool;

/// A typed attribute value carried by an event: null, 64-bit integer, double,
/// or an interned string. Values are small (16 bytes) and trivially copyable.
///
/// Numeric comparison coerces int and double to a common domain; strings only
/// compare against strings (by pool id, which is sufficient for equality; for
/// ordering the caller must go through the pool).
class Value {
 public:
  enum class Kind : uint8_t { kNull = 0, kInt, kDouble, kStr };

  Value() : kind_(Kind::kNull), int_(0) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) {
    Value out;
    out.kind_ = Kind::kInt;
    out.int_ = v;
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.kind_ = Kind::kDouble;
    out.dbl_ = v;
    return out;
  }
  static Value Str(StrId id) {
    Value out;
    out.kind_ = Kind::kStr;
    out.str_ = id;
    return out;
  }
  static Value Bool(bool b) { return Int(b ? 1 : 0); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_numeric() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }

  int64_t AsInt() const {
    GRETA_DCHECK(kind_ == Kind::kInt);
    return int_;
  }
  double AsDouble() const {
    GRETA_DCHECK(kind_ == Kind::kDouble);
    return dbl_;
  }
  StrId AsStr() const {
    GRETA_DCHECK(kind_ == Kind::kStr);
    return str_;
  }

  /// Numeric coercion: int -> double, double -> double. Null and strings
  /// coerce to 0.0 (callers that care should check kinds first).
  double ToDouble() const {
    switch (kind_) {
      case Kind::kInt:
        return static_cast<double>(int_);
      case Kind::kDouble:
        return dbl_;
      default:
        return 0.0;
    }
  }

  /// Truthiness for predicate results: non-zero numerics are true.
  bool Truthy() const {
    switch (kind_) {
      case Kind::kInt:
        return int_ != 0;
      case Kind::kDouble:
        return dbl_ != 0.0;
      case Kind::kStr:
        return true;
      case Kind::kNull:
        return false;
    }
    return false;
  }

  /// Structural equality (numerics compare across int/double).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Three-way comparison for numerics and string ids. Returns <0, 0, >0.
  /// Comparing values of incomparable kinds aborts in debug builds and
  /// returns kind ordering otherwise.
  int Compare(const Value& other) const;

  /// Hash suitable for unordered containers and group keys.
  size_t Hash() const;

  /// Debug rendering; resolves interned strings when a pool is given.
  std::string ToString(const StringPool* pool = nullptr) const;

 private:
  Kind kind_;
  union {
    int64_t int_;
    double dbl_;
    StrId str_;
  };
};

/// Interns strings to dense 32-bit ids. Not thread-safe for interning;
/// lookups of already-interned ids are safe concurrently with each other.
class StringPool {
 public:
  StringPool() = default;
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  /// Returns the id for `s`, interning it on first use.
  StrId Intern(std::string_view s);

  /// Returns the id for `s` or -1 if it has never been interned.
  StrId Find(std::string_view s) const;

  /// Returns the string for a previously interned id.
  const std::string& Lookup(StrId id) const {
    GRETA_CHECK(id >= 0 && static_cast<size_t>(id) < strings_.size());
    return strings_[id];
  }

  size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, StrId> index_;
};

}  // namespace greta

#endif  // GRETA_COMMON_VALUE_H_
