#ifndef GRETA_COMMON_VALUE_H_
#define GRETA_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace greta {

class StringPool;

/// A typed attribute value carried by an event: null, 64-bit integer, double,
/// or an interned string. Values are small (16 bytes) and trivially copyable.
///
/// Numeric comparison coerces int and double to a common domain; strings only
/// compare against strings (by pool id, which is sufficient for equality; for
/// ordering the caller must go through the pool).
class Value {
 public:
  enum class Kind : uint8_t { kNull = 0, kInt, kDouble, kStr };

  Value() : kind_(Kind::kNull), int_(0) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) {
    Value out;
    out.kind_ = Kind::kInt;
    out.int_ = v;
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.kind_ = Kind::kDouble;
    out.dbl_ = v;
    return out;
  }
  static Value Str(StrId id) {
    Value out;
    out.kind_ = Kind::kStr;
    out.str_ = id;
    return out;
  }
  static Value Bool(bool b) { return Int(b ? 1 : 0); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_numeric() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }

  int64_t AsInt() const {
    GRETA_DCHECK(kind_ == Kind::kInt);
    return int_;
  }
  double AsDouble() const {
    GRETA_DCHECK(kind_ == Kind::kDouble);
    return dbl_;
  }
  StrId AsStr() const {
    GRETA_DCHECK(kind_ == Kind::kStr);
    return str_;
  }

  /// Numeric coercion: int -> double, double -> double. Null and strings
  /// coerce to 0.0 (callers that care should check kinds first).
  double ToDouble() const {
    switch (kind_) {
      case Kind::kInt:
        return static_cast<double>(int_);
      case Kind::kDouble:
        return dbl_;
      default:
        return 0.0;
    }
  }

  /// Truthiness for predicate results: non-zero numerics are true.
  bool Truthy() const {
    switch (kind_) {
      case Kind::kInt:
        return int_ != 0;
      case Kind::kDouble:
        return dbl_ != 0.0;
      case Kind::kStr:
        return true;
      case Kind::kNull:
        return false;
    }
    return false;
  }

  /// Structural equality (numerics compare across int/double). Inline: the
  /// engine's per-event partition routing hashes and compares keys on the
  /// hot path.
  bool operator==(const Value& other) const {
    if (is_numeric() && other.is_numeric()) {
      if (kind_ == Kind::kInt && other.kind_ == Kind::kInt) {
        return int_ == other.int_;
      }
      return ToDouble() == other.ToDouble();
    }
    if (kind_ != other.kind_) return false;
    switch (kind_) {
      case Kind::kNull:
        return true;
      case Kind::kStr:
        return str_ == other.str_;
      default:
        return false;  // Numerics handled above.
    }
  }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Three-way comparison for numerics and string ids. Returns <0, 0, >0.
  /// Comparing values of incomparable kinds aborts in debug builds and
  /// returns kind ordering otherwise.
  int Compare(const Value& other) const;

  /// Hash suitable for unordered containers and group keys.
  size_t Hash() const {
    switch (kind_) {
      case Kind::kNull:
        return 0x9e3779b97f4a7c15ULL;
      case Kind::kInt:
        return HashInt(int_);
      case Kind::kDouble: {
        // Hash ints and integral doubles identically so mixed-kind group
        // keys that compare equal also hash equal.
        double d = dbl_;
        int64_t as_int = static_cast<int64_t>(d);
        if (static_cast<double>(as_int) == d) return HashInt(as_int);
        return HashDouble(d);
      }
      case Kind::kStr:
        return HashInt(0x5bd1e995LL ^ str_);
    }
    return 0;
  }

  /// Debug rendering; resolves interned strings when a pool is given.
  std::string ToString(const StringPool* pool = nullptr) const;

 private:
  static size_t HashInt(int64_t v) { return std::hash<int64_t>()(v); }
  // Out-of-line (value.cc): doubles hash through std::hash's byte mixer and
  // non-integral doubles are rare in partition keys.
  static size_t HashDouble(double v);

  Kind kind_;
  union {
    int64_t int_;
    double dbl_;
    StrId str_;
  };
};

/// Hash / equality over value vectors (partition keys, group keys), shared
/// by the engine's partition map, the baselines, the shard router and the
/// result merger — one combine, so they can never hash differently.
struct ValueVecHash {
  size_t operator()(const std::vector<Value>& v) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Value& x : v) h = h * 1099511628211ULL ^ x.Hash();
    return h;
  }
};
struct ValueVecEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }
};

/// Interns strings to dense 32-bit ids. Not thread-safe for interning;
/// lookups of already-interned ids are safe concurrently with each other.
class StringPool {
 public:
  StringPool() = default;
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  /// Returns the id for `s`, interning it on first use.
  StrId Intern(std::string_view s);

  /// Returns the id for `s` or -1 if it has never been interned.
  StrId Find(std::string_view s) const;

  /// Returns the string for a previously interned id.
  const std::string& Lookup(StrId id) const {
    GRETA_CHECK(id >= 0 && static_cast<size_t>(id) < strings_.size());
    return strings_[id];
  }

  size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, StrId> index_;
};

}  // namespace greta

#endif  // GRETA_COMMON_VALUE_H_
