#ifndef GRETA_COMMON_RANDOM_H_
#define GRETA_COMMON_RANDOM_H_

#include <cstdint>
#include <random>

namespace greta {

/// Seeded random source shared by workload generators and property tests.
/// Thin wrapper over std::mt19937_64 with the handful of distributions the
/// paper's data sets need (Table 2: uniform and Poisson).
class Random {
 public:
  explicit Random(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Poisson with the given mean.
  int64_t Poisson(double mean) {
    return std::poisson_distribution<int64_t>(mean)(engine_);
  }

  /// Standard normal scaled by `stddev`.
  double Gaussian(double stddev) {
    return std::normal_distribution<double>(0.0, stddev)(engine_);
  }

  /// Bernoulli with probability p.
  bool Chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace greta

#endif  // GRETA_COMMON_RANDOM_H_
