#ifndef GRETA_COMMON_STATUS_H_
#define GRETA_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/check.h"

namespace greta {

/// Error codes used across the library. The library does not throw
/// exceptions; fallible operations (query parsing, planning, configuration)
/// return Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kUnsupported,
  kParseError,
  kInternal,
};

/// A lightweight success-or-error result, modeled after absl::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "ParseError: unexpected token ')'".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored StatusOr aborts the process (invariant violation).
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {      // NOLINT
    GRETA_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    GRETA_CHECK(status_.ok());
    return value_;
  }
  T& value() & {
    GRETA_CHECK(status_.ok());
    return value_;
  }
  T&& value() && {
    GRETA_CHECK(status_.ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace greta

#endif  // GRETA_COMMON_STATUS_H_
