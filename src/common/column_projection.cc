#include "common/column_projection.h"

#include "common/simd_scalar.inl.h"
#include "common/value.h"

namespace greta {

// The kernels pattern-match kind tags as raw bytes; pin the enum layout.
static_assert(static_cast<uint8_t>(Value::Kind::kNull) ==
              simd::detail::kTagNull);
static_assert(static_cast<uint8_t>(Value::Kind::kInt) ==
              simd::detail::kTagInt);
static_assert(static_cast<uint8_t>(Value::Kind::kDouble) ==
              simd::detail::kTagDouble);
static_assert(static_cast<uint8_t>(Value::Kind::kStr) ==
              simd::detail::kTagStr);

void ColumnProjection::Project(const EventBatch& batch,
                               const std::vector<AttrId>& attrs) {
  ProjectImpl(batch, attrs, nullptr, batch.size());
}

void ColumnProjection::ProjectRows(const EventBatch& batch,
                                   const std::vector<AttrId>& attrs,
                                   const uint32_t* rows, size_t n) {
  ProjectImpl(batch, attrs, rows, n);
}

void ColumnProjection::ProjectImpl(const EventBatch& batch,
                                   const std::vector<AttrId>& attrs,
                                   const uint32_t* rows, size_t n) {
  rows_ = n;
  const size_t slots = attrs.size();
  slot_of_attr_.clear();
  if (slots == 0) return;
  AttrId max_attr = 0;
  for (AttrId a : attrs) max_attr = a > max_attr ? a : max_attr;
  slot_of_attr_.assign(static_cast<size_t>(max_attr) + 1, -1);
  for (size_t s = 0; s < slots; ++s) {
    slot_of_attr_[attrs[s]] = static_cast<int>(s);
  }
  dval_.resize(slots * rows_);
  ival_.resize(slots * rows_);
  tag_.resize(slots * rows_);

  // Row-major walk (each row's attrs are touched once, while hot from the
  // ingest copy), scattering into slot-major lanes.
  for (size_t i = 0; i < rows_; ++i) {
    const uint32_t r = rows != nullptr ? rows[i] : static_cast<uint32_t>(i);
    const Value* row = batch.attrs(r);
    const size_t row_attrs = batch.num_attrs(r);
    for (size_t s = 0; s < slots; ++s) {
      const AttrId a = attrs[s];
      const size_t at = s * rows_ + i;
      if (static_cast<size_t>(a) < row_attrs) {
        DecomposeValue(row[a], &dval_[at], &ival_[at], &tag_[at]);
      } else {
        dval_[at] = 0.0;
        ival_[at] = 0;
        tag_[at] = simd::detail::kTagNull;
      }
    }
  }
}

}  // namespace greta
