#ifndef GRETA_COMMON_SIMD_H_
#define GRETA_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace greta::simd {

/// Instruction sets the hot-loop kernels are compiled for. Ordered: a
/// higher value is a superset of the lower ones on the host CPU.
enum class Isa : uint8_t { kScalar = 0, kSse42 = 1, kAvx2 = 2 };

/// Stable lowercase name for metric labels and bench columns:
/// "scalar" | "sse4.2" | "avx2".
const char* IsaName(Isa isa);

/// Comparison ops with the projected value on the LEFT. Mirrored
/// predicates (`const CMP attr`) are pre-flipped at plan time —
/// Value::Compare is antisymmetric (including its kind-ordering path), so
/// flipping the operator is exact.
enum class CmpOp : uint8_t { kEq = 0, kNe, kLt, kLe, kGt, kGe };

/// One projected attribute column: a Value row decomposed into dense lanes
/// so the 16-byte tagged union never appears inside a vector loop.
///  - dval: Value::ToDouble() of numeric rows (exactly the coercion the
///    scalar compare uses for mixed int/double operands);
///  - ival: the exact int64 payload of kInt rows, or the interned string id
///    of kStr rows (Value::Compare orders strings by id);
///  - tag:  Value::Kind as a byte; 0 (null) also marks rows that do not
///    carry the attribute at all, which EvalCmp rejects identically.
struct NumColumn {
  const double* dval = nullptr;
  const int64_t* ival = nullptr;
  const uint8_t* tag = nullptr;
};

/// A compare-against-constant, fully resolved at plan time (or once per
/// event for NEXT-attr residuals): the op is value-on-left, the rhs is
/// decomposed by kind, and the constant results for kind-mismatched lanes
/// are precomputed so the kernel never consults Value::Compare.
///
/// `mismatch_pass` is the EvalCmp result for lanes in the *other*
/// comparability class than the rhs (string lanes under a numeric rhs, and
/// numeric lanes under a string rhs): false for kEq, true for kNe, and the
/// release-build kind-ordering result of Value::Compare for the orderings.
struct CmpConst {
  CmpOp op = CmpOp::kEq;
  uint8_t rhs_kind = 0;  // Value::Kind as uint8_t; 0 (null) => nothing passes
  uint8_t mismatch_pass = 0;
  double rhs_d = 0.0;   // numeric rhs coerced to double (int rhs: exact cast)
  int64_t rhs_i = 0;    // int rhs payload, or string rhs id
};

/// Result pair of the fused range-mask + count fold.
struct MaskedSum {
  uint64_t sum = 0;    // wrapping sum of admitted nonzero counts
  uint64_t lanes = 0;  // number of admitted entries with a nonzero count
};

/// The per-ISA kernel table. Every entry is semantically EXACT against the
/// scalar loop it replaces — including NaN, null rejection, exact int/int
/// ordering, and the strict/non-strict bound asymmetries — so dispatch is
/// purely a speed choice, never a results choice.
struct Kernels {
  /// Compacts sel[0..n) (indices into the column arrays, biased by
  /// `rebase`: lane i reads col.*[sel[i] - rebase]) to the lanes passing
  /// `cmp`, preserving relative order; returns the surviving count.
  size_t (*filter_sel)(const NumColumn& col, const CmpConst& cmp,
                       uint32_t rebase, uint32_t* sel, size_t n);

  /// Appends to `out` every j in [begin,end) whose keys[j] is admitted by
  /// the (lo, hi) bounds, ascending; returns the appended count. Bound
  /// tests mirror the per-event re-filter loop: a lane is rejected iff
  /// (lo_strict ? key <= lo : key < lo) or (hi_strict ? key >= hi : key > hi).
  size_t (*range_select)(const double* keys, uint32_t begin, uint32_t end,
                         double lo, bool lo_strict, double hi, bool hi_strict,
                         uint32_t* out);

  /// Fused range mask + modular COUNT fold over dense (key, count) lanes:
  /// for j in [begin,end) admitted by the bounds (same tests as
  /// range_select) with counts[j] != 0, adds counts[j] into sum (wrapping
  /// uint64, which is associative, so lane order cannot change the result)
  /// and bumps lanes.
  MaskedSum (*masked_count_sum)(const double* keys, const uint64_t* counts,
                                uint32_t begin, uint32_t end, double lo,
                                bool lo_strict, double hi, bool hi_strict);

  /// B+-tree leaf skip phase: first i in [0,n) where NOT
  /// (strict ? keys[i] <= lo : keys[i] < lo); n when every key skips.
  int (*leaf_skip)(const double* keys, int n, double lo, bool strict);

  /// B+-tree leaf emit-phase bound: first i in [i0,n) where
  /// (strict ? keys[i] >= hi : keys[i] > hi); n when no key stops the scan.
  int (*leaf_stop)(const double* keys, int i0, int n, double hi, bool strict);

  /// Equal-timestamp run boundary: first j in (i,n) with times[j] !=
  /// times[i]; n when the run covers the rest of the column.
  size_t (*run_split)(const int64_t* times, size_t i, size_t n);

  /// splitmix64 avalanche finalization, in place over h[0..n) (the shard
  /// router's per-row hash mix).
  void (*splitmix_bulk)(uint64_t* h, size_t n);
};

/// The table for the dispatched ISA: resolved once (cpuid + the
/// GRETA_SIMD=scalar|sse|avx2 override) on first use.
const Kernels& Dispatch();

/// The ISA Dispatch() currently routes to.
Isa DispatchedIsa();

/// The best ISA this binary + CPU pair supports (ignores the env override
/// and any ForceIsa).
Isa DetectedIsa();

/// Test/ablation hook: re-point Dispatch() at `isa`, clamped to
/// DetectedIsa(). Not thread-safe against concurrent kernel use.
void ForceIsa(Isa isa);

/// Per-ISA tables. Entries with no profitable vector form (or compiled
/// without the ISA) point at the scalar implementation, so every table is
/// always safe to call.
const Kernels& ScalarKernels();
const Kernels& Sse42Kernels();
const Kernels& Avx2Kernels();

/// Whether the per-ISA translation unit was actually built with the ISA
/// enabled (false on non-x86 targets, where the table aliases scalar).
bool Sse42Compiled();
bool Avx2Compiled();

}  // namespace greta::simd

#endif  // GRETA_COMMON_SIMD_H_
