#include "common/simd.h"
#include "common/simd_scalar.inl.h"

#if defined(__SSE4_2__)

#include <nmmintrin.h>

namespace greta::simd {
namespace {

// 2-wide admission mask; same predicate phrasing as the AVX2 TU (NaN keys
// pass both bound tests, like the scalar continue-based loop).
inline __m128d AdmitMask(__m128d k, __m128d lo, bool lo_strict, __m128d hi,
                         bool hi_strict) {
  const __m128d pass_lo = lo_strict ? _mm_cmpnle_pd(k, lo)
                                    : _mm_cmpnlt_pd(k, lo);
  const __m128d pass_hi = hi_strict ? _mm_cmpnge_pd(k, hi)
                                    : _mm_cmpngt_pd(k, hi);
  return _mm_and_pd(pass_lo, pass_hi);
}

size_t RangeSelect(const double* keys, uint32_t begin, uint32_t end,
                   double lo, bool lo_strict, double hi, bool hi_strict,
                   uint32_t* out) {
  const __m128d vlo = _mm_set1_pd(lo);
  const __m128d vhi = _mm_set1_pd(hi);
  size_t n = 0;
  uint32_t j = begin;
  for (; j + 2 <= end; j += 2) {
    const __m128d k = _mm_loadu_pd(keys + j);
    int m = _mm_movemask_pd(AdmitMask(k, vlo, lo_strict, vhi, hi_strict));
    if (m & 1) out[n++] = j;
    if (m & 2) out[n++] = j + 1;
  }
  for (; j < end; ++j) {
    if (detail::KeyAdmitted(keys[j], lo, lo_strict, hi, hi_strict)) {
      out[n++] = j;
    }
  }
  return n;
}

MaskedSum MaskedCountSum(const double* keys, const uint64_t* counts,
                         uint32_t begin, uint32_t end, double lo,
                         bool lo_strict, double hi, bool hi_strict) {
  const __m128d vlo = _mm_set1_pd(lo);
  const __m128d vhi = _mm_set1_pd(hi);
  __m128i acc = _mm_setzero_si128();
  MaskedSum r;
  uint32_t j = begin;
  for (; j + 2 <= end; j += 2) {
    const __m128d k = _mm_loadu_pd(keys + j);
    const __m128i admit =
        _mm_castpd_si128(AdmitMask(k, vlo, lo_strict, vhi, hi_strict));
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(counts + j));
    acc = _mm_add_epi64(acc, _mm_and_si128(c, admit));
    const __m128i nz = _mm_xor_si128(_mm_cmpeq_epi64(c, _mm_setzero_si128()),
                                     _mm_set1_epi64x(-1));
    const int m =
        _mm_movemask_pd(_mm_castsi128_pd(_mm_and_si128(admit, nz)));
    r.lanes += static_cast<uint64_t>(__builtin_popcount(
        static_cast<unsigned>(m)));
  }
  alignas(16) uint64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  r.sum = lanes[0] + lanes[1];
  for (; j < end; ++j) {
    if (!detail::KeyAdmitted(keys[j], lo, lo_strict, hi, hi_strict)) continue;
    if (counts[j] == 0) continue;
    r.sum += counts[j];
    ++r.lanes;
  }
  return r;
}

int LeafSkip(const double* keys, int n, double lo, bool strict) {
  const __m128d vlo = _mm_set1_pd(lo);
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d k = _mm_loadu_pd(keys + i);
    const __m128d below =
        strict ? _mm_cmple_pd(k, vlo) : _mm_cmplt_pd(k, vlo);
    const int stop = (~_mm_movemask_pd(below)) & 0x3;
    if (stop != 0) return i + __builtin_ctz(static_cast<unsigned>(stop));
  }
  for (; i < n; ++i) {
    if (!(strict ? keys[i] <= lo : keys[i] < lo)) return i;
  }
  return n;
}

int LeafStop(const double* keys, int i0, int n, double hi, bool strict) {
  const __m128d vhi = _mm_set1_pd(hi);
  int i = i0;
  for (; i + 2 <= n; i += 2) {
    const __m128d k = _mm_loadu_pd(keys + i);
    const __m128d over =
        strict ? _mm_cmpge_pd(k, vhi) : _mm_cmpgt_pd(k, vhi);
    const int m = _mm_movemask_pd(over);
    if (m != 0) return i + __builtin_ctz(static_cast<unsigned>(m));
  }
  for (; i < n; ++i) {
    if (strict ? keys[i] >= hi : keys[i] > hi) return i;
  }
  return n;
}

size_t RunSplit(const int64_t* times, size_t i, size_t n) {
  const __m128i ts = _mm_set1_epi64x(times[i]);
  size_t j = i + 1;
  for (; j + 2 <= n; j += 2) {
    const __m128i t =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(times + j));
    const int eq = _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpeq_epi64(t, ts)));
    if (eq != 0x3) {
      return j + __builtin_ctz(static_cast<unsigned>(~eq & 0x3));
    }
  }
  for (; j < n; ++j) {
    if (times[j] != times[i]) return j;
  }
  return n;
}

inline __m128i MulLo64(__m128i a, __m128i b) {
  const __m128i lo = _mm_mul_epu32(a, b);
  const __m128i t1 = _mm_mul_epu32(_mm_srli_epi64(a, 32), b);
  const __m128i t2 = _mm_mul_epu32(a, _mm_srli_epi64(b, 32));
  const __m128i cross = _mm_add_epi64(t1, t2);
  return _mm_add_epi64(lo, _mm_slli_epi64(cross, 32));
}

void SplitMixBulk(uint64_t* h, size_t n) {
  const __m128i c1 =
      _mm_set1_epi64x(static_cast<long long>(0xff51afd7ed558ccdULL));
  const __m128i c2 =
      _mm_set1_epi64x(static_cast<long long>(0xc4ceb9fe1a85ec53ULL));
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(h + i));
    v = _mm_xor_si128(v, _mm_srli_epi64(v, 33));
    v = MulLo64(v, c1);
    v = _mm_xor_si128(v, _mm_srli_epi64(v, 33));
    v = MulLo64(v, c2);
    v = _mm_xor_si128(v, _mm_srli_epi64(v, 33));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(h + i), v);
  }
  for (; i < n; ++i) h[i] = detail::SplitMix(h[i]);
}

}  // namespace

const Kernels& Sse42Kernels() {
  // No gathers below AVX2, so the projected-column filter keeps its scalar
  // form; the dense-key kernels run 2-wide.
  static const Kernels k = {
      &detail::FilterSel, &RangeSelect, &MaskedCountSum, &LeafSkip,
      &LeafStop,          &RunSplit,    &SplitMixBulk,
  };
  return k;
}

bool Sse42Compiled() { return true; }

}  // namespace greta::simd

#else  // !__SSE4_2__

namespace greta::simd {
const Kernels& Sse42Kernels() { return ScalarKernels(); }
bool Sse42Compiled() { return false; }
}  // namespace greta::simd

#endif
