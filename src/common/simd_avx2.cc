#include "common/simd.h"
#include "common/simd_scalar.inl.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

namespace greta::simd {
namespace {

using detail::kTagDouble;
using detail::kTagInt;
using detail::kTagStr;

// Double compare by op, phrased so NaN lanes reproduce Value::Compare's
// "unordered returns 0" semantics: kLe = NOT greater-than (unordered ->
// true), kGe = NOT less-than, kNe = unordered-or-unequal. All compares are
// non-signaling (Q variants).
inline __m256d CmpPd(CmpOp op, __m256d a, __m256d b) {
  switch (op) {
    case CmpOp::kEq: return _mm256_cmp_pd(a, b, _CMP_EQ_OQ);
    case CmpOp::kNe: return _mm256_cmp_pd(a, b, _CMP_NEQ_UQ);
    case CmpOp::kLt: return _mm256_cmp_pd(a, b, _CMP_LT_OQ);
    case CmpOp::kLe: return _mm256_cmp_pd(a, b, _CMP_NGT_UQ);
    case CmpOp::kGt: return _mm256_cmp_pd(a, b, _CMP_GT_OQ);
    case CmpOp::kGe: return _mm256_cmp_pd(a, b, _CMP_NLT_UQ);
  }
  return _mm256_setzero_pd();
}

// Signed 64-bit compare by op (exact int/int ordering; also string ids).
inline __m256i CmpEpi64(CmpOp op, __m256i a, __m256i b) {
  const __m256i ones = _mm256_set1_epi64x(-1);
  switch (op) {
    case CmpOp::kEq: return _mm256_cmpeq_epi64(a, b);
    case CmpOp::kNe:
      return _mm256_xor_si256(_mm256_cmpeq_epi64(a, b), ones);
    case CmpOp::kLt: return _mm256_cmpgt_epi64(b, a);
    case CmpOp::kLe:
      return _mm256_xor_si256(_mm256_cmpgt_epi64(a, b), ones);
    case CmpOp::kGt: return _mm256_cmpgt_epi64(a, b);
    case CmpOp::kGe:
      return _mm256_xor_si256(_mm256_cmpgt_epi64(b, a), ones);
  }
  return _mm256_setzero_si256();
}

// Full-mask gathers with a zeroed pass-through source: gcc's unmasked
// gather intrinsics leave the source vector formally uninitialized, which
// trips -Wmaybe-uninitialized.
inline __m256d GatherPd(const double* base, __m128i idx) {
  return _mm256_mask_i32gather_pd(
      _mm256_setzero_pd(), base, idx,
      _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
}
inline __m256i GatherEpi64(const int64_t* base, __m128i idx) {
  return _mm256_mask_i32gather_epi64(
      _mm256_setzero_si256(), reinterpret_cast<const long long*>(base), idx,
      _mm256_set1_epi64x(-1), 8);
}

size_t FilterSel(const NumColumn& col, const CmpConst& cmp, uint32_t rebase,
                 uint32_t* sel, size_t n) {
  if (cmp.rhs_kind == 0) return 0;
  const __m256d rhs_d = _mm256_set1_pd(cmp.rhs_d);
  const __m256i rhs_i = _mm256_set1_epi64x(cmp.rhs_i);
  const __m128i vrebase = _mm_set1_epi32(static_cast<int>(rebase));
  size_t out = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32_t j0 = sel[i] - rebase;
    const uint32_t j1 = sel[i + 1] - rebase;
    const uint32_t j2 = sel[i + 2] - rebase;
    const uint32_t j3 = sel[i + 3] - rebase;
    // Identity/compacted selections are often consecutive; contiguous loads
    // beat gathers by a wide margin, so spend one predictable branch on it.
    const bool dense = j1 == j0 + 1 && j2 == j0 + 2 && j3 == j0 + 3;
    __m128i idx = _mm_setzero_si128();
    uint32_t packed_tags;
    if (dense) {
      std::memcpy(&packed_tags, col.tag + j0, sizeof(packed_tags));
    } else {
      const __m128i raw =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + i));
      idx = _mm_sub_epi32(raw, vrebase);
      packed_tags = static_cast<uint32_t>(col.tag[j0]) |
                    static_cast<uint32_t>(col.tag[j1]) << 8 |
                    static_cast<uint32_t>(col.tag[j2]) << 16 |
                    static_cast<uint32_t>(col.tag[j3]) << 24;
    }
    const __m256i vt = _mm256_cvtepu8_epi64(
        _mm_cvtsi32_si128(static_cast<int>(packed_tags)));
    const __m256i tag_int = _mm256_cmpeq_epi64(vt, _mm256_set1_epi64x(1));
    const __m256i tag_dbl = _mm256_cmpeq_epi64(vt, _mm256_set1_epi64x(2));
    const __m256i tag_str = _mm256_cmpeq_epi64(vt, _mm256_set1_epi64x(3));
    const auto load_i = [&] {
      return dense ? _mm256_loadu_si256(
                         reinterpret_cast<const __m256i*>(col.ival + j0))
                   : GatherEpi64(col.ival, idx);
    };
    const auto load_d = [&] {
      return dense ? _mm256_loadu_pd(col.dval + j0) : GatherPd(col.dval, idx);
    };

    __m256i pass;
    if (cmp.rhs_kind == kTagStr) {
      pass = _mm256_and_si256(tag_str, CmpEpi64(cmp.op, load_i(), rhs_i));
      if (cmp.mismatch_pass != 0) {
        pass = _mm256_or_si256(pass, _mm256_or_si256(tag_int, tag_dbl));
      }
    } else if (cmp.rhs_kind == kTagInt) {
      // Int rhs: int lanes compare exactly in int64 (values past 2^53 do
      // not round-trip through double), double lanes coerce the rhs.
      const __m256i ip = CmpEpi64(cmp.op, load_i(), rhs_i);
      const __m256i dp = _mm256_castpd_si256(CmpPd(cmp.op, load_d(), rhs_d));
      pass = _mm256_or_si256(_mm256_and_si256(tag_int, ip),
                             _mm256_and_si256(tag_dbl, dp));
      if (cmp.mismatch_pass != 0) pass = _mm256_or_si256(pass, tag_str);
    } else {
      // Double rhs: every numeric lane goes through ToDouble coercion.
      const __m256i dp = _mm256_castpd_si256(CmpPd(cmp.op, load_d(), rhs_d));
      pass = _mm256_and_si256(_mm256_or_si256(tag_int, tag_dbl), dp);
      if (cmp.mismatch_pass != 0) pass = _mm256_or_si256(pass, tag_str);
    }

    int m = _mm256_movemask_pd(_mm256_castsi256_pd(pass));
    while (m != 0) {
      const int b = __builtin_ctz(static_cast<unsigned>(m));
      sel[out++] = sel[i + static_cast<size_t>(b)];
      m &= m - 1;
    }
  }
  for (; i < n; ++i) {
    const uint32_t s = sel[i];
    const bool pass = detail::PassLane(col, cmp, s - rebase);
    sel[out] = s;
    out += pass ? 1 : 0;
  }
  return out;
}

// Admission mask for 4 keys: NOT skipped-by-lo AND NOT stopped-by-hi, with
// the unordered (U) predicates making NaN keys pass both tests exactly like
// the scalar continue-based loop.
inline __m256d AdmitMask(__m256d k, __m256d lo, bool lo_strict, __m256d hi,
                         bool hi_strict) {
  const __m256d pass_lo = lo_strict ? _mm256_cmp_pd(k, lo, _CMP_NLE_UQ)
                                    : _mm256_cmp_pd(k, lo, _CMP_NLT_UQ);
  const __m256d pass_hi = hi_strict ? _mm256_cmp_pd(k, hi, _CMP_NGE_UQ)
                                    : _mm256_cmp_pd(k, hi, _CMP_NGT_UQ);
  return _mm256_and_pd(pass_lo, pass_hi);
}

size_t RangeSelect(const double* keys, uint32_t begin, uint32_t end,
                   double lo, bool lo_strict, double hi, bool hi_strict,
                   uint32_t* out) {
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  size_t n = 0;
  uint32_t j = begin;
  for (; j + 4 <= end; j += 4) {
    const __m256d k = _mm256_loadu_pd(keys + j);
    int m = _mm256_movemask_pd(AdmitMask(k, vlo, lo_strict, vhi, hi_strict));
    while (m != 0) {
      const int b = __builtin_ctz(static_cast<unsigned>(m));
      out[n++] = j + static_cast<uint32_t>(b);
      m &= m - 1;
    }
  }
  for (; j < end; ++j) {
    if (detail::KeyAdmitted(keys[j], lo, lo_strict, hi, hi_strict)) {
      out[n++] = j;
    }
  }
  return n;
}

MaskedSum MaskedCountSum(const double* keys, const uint64_t* counts,
                         uint32_t begin, uint32_t end, double lo,
                         bool lo_strict, double hi, bool hi_strict) {
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  __m256i acc = _mm256_setzero_si256();
  MaskedSum r;
  uint32_t j = begin;
  for (; j + 4 <= end; j += 4) {
    const __m256d k = _mm256_loadu_pd(keys + j);
    const __m256i admit = _mm256_castpd_si256(
        AdmitMask(k, vlo, lo_strict, vhi, hi_strict));
    const __m256i c = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(counts + j));
    // Wrapping uint64 addition is associative, so masked vector lanes and
    // a horizontal fold produce the scalar loop's exact sum.
    acc = _mm256_add_epi64(acc, _mm256_and_si256(c, admit));
    const __m256i nz = _mm256_xor_si256(
        _mm256_cmpeq_epi64(c, _mm256_setzero_si256()),
        _mm256_set1_epi64x(-1));
    const int m = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_and_si256(admit, nz)));
    r.lanes += static_cast<uint64_t>(__builtin_popcount(
        static_cast<unsigned>(m)));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  r.sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; j < end; ++j) {
    if (!detail::KeyAdmitted(keys[j], lo, lo_strict, hi, hi_strict)) continue;
    if (counts[j] == 0) continue;
    r.sum += counts[j];
    ++r.lanes;
  }
  return r;
}

int LeafSkip(const double* keys, int n, double lo, bool strict) {
  const __m256d vlo = _mm256_set1_pd(lo);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d k = _mm256_loadu_pd(keys + i);
    // below = still-skipping; ordered compares make NaN keys stop the skip,
    // matching the scalar while condition.
    const __m256d below = strict ? _mm256_cmp_pd(k, vlo, _CMP_LE_OQ)
                                 : _mm256_cmp_pd(k, vlo, _CMP_LT_OQ);
    const int stop = (~_mm256_movemask_pd(below)) & 0xF;
    if (stop != 0) return i + __builtin_ctz(static_cast<unsigned>(stop));
  }
  for (; i < n; ++i) {
    if (!(strict ? keys[i] <= lo : keys[i] < lo)) return i;
  }
  return n;
}

int LeafStop(const double* keys, int i0, int n, double hi, bool strict) {
  const __m256d vhi = _mm256_set1_pd(hi);
  int i = i0;
  for (; i + 4 <= n; i += 4) {
    const __m256d k = _mm256_loadu_pd(keys + i);
    const __m256d over = strict ? _mm256_cmp_pd(k, vhi, _CMP_GE_OQ)
                                : _mm256_cmp_pd(k, vhi, _CMP_GT_OQ);
    const int m = _mm256_movemask_pd(over);
    if (m != 0) return i + __builtin_ctz(static_cast<unsigned>(m));
  }
  for (; i < n; ++i) {
    if (strict ? keys[i] >= hi : keys[i] > hi) return i;
  }
  return n;
}

size_t RunSplit(const int64_t* times, size_t i, size_t n) {
  const __m256i ts = _mm256_set1_epi64x(times[i]);
  size_t j = i + 1;
  for (; j + 4 <= n; j += 4) {
    const __m256i t = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(times + j));
    const int eq = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(t, ts)));
    if (eq != 0xF) {
      return j + __builtin_ctz(static_cast<unsigned>(~eq & 0xF));
    }
  }
  for (; j < n; ++j) {
    if (times[j] != times[i]) return j;
  }
  return n;
}

// 64x64 -> low 64 multiply from 32-bit pieces (AVX2 has no mullo_epi64).
inline __m256i MulLo64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i t1 = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
  const __m256i t2 = _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32));
  const __m256i cross = _mm256_add_epi64(t1, t2);
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

void SplitMixBulk(uint64_t* h, size_t n) {
  const __m256i c1 = _mm256_set1_epi64x(
      static_cast<long long>(0xff51afd7ed558ccdULL));
  const __m256i c2 = _mm256_set1_epi64x(
      static_cast<long long>(0xc4ceb9fe1a85ec53ULL));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + i));
    v = _mm256_xor_si256(v, _mm256_srli_epi64(v, 33));
    v = MulLo64(v, c1);
    v = _mm256_xor_si256(v, _mm256_srli_epi64(v, 33));
    v = MulLo64(v, c2);
    v = _mm256_xor_si256(v, _mm256_srli_epi64(v, 33));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(h + i), v);
  }
  for (; i < n; ++i) h[i] = detail::SplitMix(h[i]);
}

}  // namespace

const Kernels& Avx2Kernels() {
  static const Kernels k = {
      &FilterSel, &RangeSelect, &MaskedCountSum, &LeafSkip,
      &LeafStop,  &RunSplit,    &SplitMixBulk,
  };
  return k;
}

bool Avx2Compiled() { return true; }

}  // namespace greta::simd

#else  // !__AVX2__

namespace greta::simd {
const Kernels& Avx2Kernels() { return ScalarKernels(); }
bool Avx2Compiled() { return false; }
}  // namespace greta::simd

#endif
