#ifndef GRETA_COMMON_SIMD_SCALAR_INL_H_
#define GRETA_COMMON_SIMD_SCALAR_INL_H_

// Internal: portable reference implementations of the simd.h kernel
// surface. Included by every per-ISA translation unit — the vector kernels
// delegate their remainder lanes here, so scalar and vector paths share one
// definition of the lane semantics.

#include "common/simd.h"

namespace greta::simd::detail {

// Value::Kind numbering (static_assert'd against the real enum in
// column_projection.cc; simd.h stays free of Value includes).
inline constexpr uint8_t kTagNull = 0;
inline constexpr uint8_t kTagInt = 1;
inline constexpr uint8_t kTagDouble = 2;
inline constexpr uint8_t kTagStr = 3;

// EvalCmp over a decomposed lane, value-on-left. Mirrors
// predicate/batch_filter.cc EvalCmp + Value::Compare exactly: null lanes
// fail every op (including kNe); int/int ordering is exact int64; any
// numeric pair with a double coerces through ToDouble; strings compare by
// pool id; kind-mismatched lanes take the precomputed constant.
inline bool PassLane(const NumColumn& col, const CmpConst& cmp, size_t j) {
  const uint8_t tag = col.tag[j];
  if (tag == kTagNull || cmp.rhs_kind == kTagNull) return false;
  const bool lane_str = tag == kTagStr;
  const bool rhs_str = cmp.rhs_kind == kTagStr;
  if (lane_str != rhs_str) return cmp.mismatch_pass != 0;
  if (lane_str) {
    const int64_t a = col.ival[j];
    const int64_t b = cmp.rhs_i;
    switch (cmp.op) {
      case CmpOp::kEq: return a == b;
      case CmpOp::kNe: return a != b;
      case CmpOp::kLt: return a < b;
      case CmpOp::kLe: return a <= b;
      case CmpOp::kGt: return a > b;
      case CmpOp::kGe: return a >= b;
    }
    return false;
  }
  if (tag == kTagInt && cmp.rhs_kind == kTagInt) {
    const int64_t a = col.ival[j];
    const int64_t b = cmp.rhs_i;
    switch (cmp.op) {
      case CmpOp::kEq: return a == b;
      case CmpOp::kNe: return a != b;
      case CmpOp::kLt: return a < b;
      case CmpOp::kLe: return a <= b;
      case CmpOp::kGt: return a > b;
      case CmpOp::kGe: return a >= b;
    }
    return false;
  }
  // Mixed numeric: ToDouble coercion. The ordering ops are phrased as
  // negations of the opposite strict compare so a NaN operand yields
  // Compare()==0 semantics (kLe/kGe true, kLt/kGt false), exactly like the
  // scalar path.
  const double a = col.dval[j];
  const double b = cmp.rhs_d;
  switch (cmp.op) {
    case CmpOp::kEq: return a == b;
    case CmpOp::kNe: return !(a == b);
    case CmpOp::kLt: return a < b;
    case CmpOp::kLe: return !(a > b);
    case CmpOp::kGt: return a > b;
    case CmpOp::kGe: return !(a < b);
  }
  return false;
}

inline size_t FilterSel(const NumColumn& col, const CmpConst& cmp,
                        uint32_t rebase, uint32_t* sel, size_t n) {
  size_t out = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t s = sel[i];
    const bool pass = PassLane(col, cmp, s - rebase);
    sel[out] = s;
    out += pass ? 1 : 0;
  }
  return out;
}

inline bool KeyAdmitted(double key, double lo, bool lo_strict, double hi,
                        bool hi_strict) {
  if (lo_strict ? key <= lo : key < lo) return false;
  if (hi_strict ? key >= hi : key > hi) return false;
  return true;
}

inline size_t RangeSelect(const double* keys, uint32_t begin, uint32_t end,
                          double lo, bool lo_strict, double hi, bool hi_strict,
                          uint32_t* out) {
  size_t n = 0;
  for (uint32_t j = begin; j < end; ++j) {
    if (KeyAdmitted(keys[j], lo, lo_strict, hi, hi_strict)) out[n++] = j;
  }
  return n;
}

inline MaskedSum MaskedCountSum(const double* keys, const uint64_t* counts,
                                uint32_t begin, uint32_t end, double lo,
                                bool lo_strict, double hi, bool hi_strict) {
  MaskedSum r;
  for (uint32_t j = begin; j < end; ++j) {
    if (!KeyAdmitted(keys[j], lo, lo_strict, hi, hi_strict)) continue;
    if (counts[j] == 0) continue;
    r.sum += counts[j];  // Wrapping by design (modular COUNT).
    ++r.lanes;
  }
  return r;
}

inline int LeafSkip(const double* keys, int n, double lo, bool strict) {
  int i = 0;
  while (i < n && (strict ? keys[i] <= lo : keys[i] < lo)) ++i;
  return i;
}

inline int LeafStop(const double* keys, int i0, int n, double hi,
                    bool strict) {
  int i = i0;
  while (i < n && !(strict ? keys[i] >= hi : keys[i] > hi)) ++i;
  return i;
}

inline size_t RunSplit(const int64_t* times, size_t i, size_t n) {
  const int64_t ts = times[i];
  size_t j = i + 1;
  while (j < n && times[j] == ts) ++j;
  return j;
}

inline uint64_t SplitMix(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

inline void SplitMixBulk(uint64_t* h, size_t n) {
  for (size_t i = 0; i < n; ++i) h[i] = SplitMix(h[i]);
}

}  // namespace greta::simd::detail

#endif  // GRETA_COMMON_SIMD_SCALAR_INL_H_
