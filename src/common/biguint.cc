#include "common/biguint.h"

#include <algorithm>

#include "common/check.h"

namespace greta {

namespace {

// Adds a*b + carry_in to out, returning the high carry word. Uses 128-bit
// intermediate arithmetic (supported by GCC/Clang on x86-64 and AArch64).
inline uint64_t MulAddCarry(uint64_t a, uint64_t b, uint64_t addend,
                            uint64_t* out) {
  unsigned __int128 prod = static_cast<unsigned __int128>(a) * b + addend;
  *out = static_cast<uint64_t>(prod);
  return static_cast<uint64_t>(prod >> 64);
}

}  // namespace

BigUInt BigUInt::FromDecimal(std::string_view s) {
  GRETA_CHECK(!s.empty());
  BigUInt out;
  for (char c : s) {
    GRETA_CHECK(c >= '0' && c <= '9');
    out.MulUint64(10);
    out.AddUint64(static_cast<uint64_t>(c - '0'));
  }
  return out;
}

size_t BigUInt::BitWidth() const {
  if (limbs_.empty()) return 0;
  uint64_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 64;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

void BigUInt::Add(const BigUInt& other) {
  if (other.limbs_.empty()) return;
  if (limbs_.size() < other.limbs_.size()) {
    limbs_.resize(other.limbs_.size(), 0);
  }
  uint64_t carry = 0;
  size_t i = 0;
  for (; i < other.limbs_.size(); ++i) {
    uint64_t sum = limbs_[i] + carry;
    carry = (sum < carry) ? 1 : 0;
    uint64_t sum2 = sum + other.limbs_[i];
    carry += (sum2 < sum) ? 1 : 0;
    limbs_[i] = sum2;
  }
  for (; carry != 0 && i < limbs_.size(); ++i) {
    limbs_[i] += carry;
    carry = (limbs_[i] == 0) ? 1 : 0;
  }
  if (carry != 0) limbs_.push_back(carry);
}

void BigUInt::AddUint64(uint64_t v) {
  if (v == 0) return;
  if (limbs_.empty()) {
    limbs_.push_back(v);
    return;
  }
  limbs_[0] += v;
  uint64_t carry = (limbs_[0] < v) ? 1 : 0;
  for (size_t i = 1; carry != 0 && i < limbs_.size(); ++i) {
    limbs_[i] += carry;
    carry = (limbs_[i] == 0) ? 1 : 0;
  }
  if (carry != 0) limbs_.push_back(carry);
}

void BigUInt::Sub(const BigUInt& other) {
  GRETA_CHECK(Compare(other) >= 0);
  uint64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t sub = (i < other.limbs_.size()) ? other.limbs_[i] : 0;
    uint64_t before = limbs_[i];
    uint64_t after = before - sub - borrow;
    // Borrow iff before < sub + borrow, computed without overflow.
    borrow = (before < sub || (before == sub && borrow != 0)) ? 1 : 0;
    limbs_[i] = after;
    if (sub == 0 && borrow == 0 && i >= other.limbs_.size()) break;
  }
  Normalize();
}

void BigUInt::MulUint64(uint64_t v) {
  if (v == 0 || limbs_.empty()) {
    limbs_.clear();
    return;
  }
  uint64_t carry = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    carry = MulAddCarry(limbs_[i], v, carry, &limbs_[i]);
  }
  if (carry != 0) limbs_.push_back(carry);
}

BigUInt BigUInt::Mul(const BigUInt& other) const {
  BigUInt out;
  if (limbs_.empty() || other.limbs_.empty()) return out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < other.limbs_.size(); ++j) {
      unsigned __int128 cur =
          static_cast<unsigned __int128>(limbs_[i]) * other.limbs_[j] +
          out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out.limbs_[i + other.limbs_.size()] += carry;
  }
  out.Normalize();
  return out;
}

uint64_t BigUInt::DivUint64(uint64_t divisor) {
  GRETA_CHECK(divisor != 0);
  unsigned __int128 rem = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    unsigned __int128 cur = (rem << 64) | limbs_[i];
    limbs_[i] = static_cast<uint64_t>(cur / divisor);
    rem = cur % divisor;
  }
  Normalize();
  return static_cast<uint64_t>(rem);
}

int BigUInt::Compare(const BigUInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

double BigUInt::ToDouble() const {
  double out = 0.0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    out = out * 18446744073709551616.0 + static_cast<double>(limbs_[i]);
  }
  return out;
}

std::string BigUInt::ToDecimal() const {
  if (limbs_.empty()) return "0";
  // Peel off 19 decimal digits at a time (10^19 fits in a 64-bit word).
  constexpr uint64_t kChunk = 10000000000000000000ULL;
  BigUInt tmp = *this;
  std::vector<uint64_t> chunks;
  while (!tmp.IsZero()) {
    chunks.push_back(tmp.DivUint64(kChunk));
  }
  std::string out = std::to_string(chunks.back());
  for (size_t i = chunks.size() - 1; i-- > 0;) {
    std::string part = std::to_string(chunks[i]);
    out += std::string(19 - part.size(), '0');
    out += part;
  }
  return out;
}

void BigUInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

}  // namespace greta
