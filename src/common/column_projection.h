#ifndef GRETA_COMMON_COLUMN_PROJECTION_H_
#define GRETA_COMMON_COLUMN_PROJECTION_H_

#include <cstdint>
#include <vector>

#include "common/event_batch.h"
#include "common/simd.h"
#include "common/types.h"

namespace greta {

/// Typed column projection over one EventBatch: the attribute positions the
/// fast-shape predicates read, materialized once per (batch, attr) into
/// dense double / int64 / kind-tag lanes so the vector filter kernels never
/// touch Value's 16-byte tagged union.
///
/// Attribute positions are schema slots, and different event types may put
/// different attributes at the same slot — that is fine: the batch kernels
/// only ever read a column at rows pre-selected to one state's type. Rows
/// whose type carries fewer attributes than a projected slot get a null
/// tag, which every compare rejects (such rows are never selected anyway).
///
/// The projection is scratch state owned by the engine and refilled per
/// ProcessBatch; columns stay valid until the next Project / Clear.
class ColumnProjection {
 public:
  /// Decomposes the given attr slots of every batch row. `attrs` must be
  /// duplicate-free; slots are looked up by position via column().
  void Project(const EventBatch& batch, const std::vector<AttrId>& attrs);

  /// Group-dense variant: decomposes only rows[0..n), with lane k holding
  /// batch row rows[k]. Selections expressed as *positions* into `rows`
  /// then hit the kernels' contiguous-load fast paths instead of gathers —
  /// this is what the graphs build per partition row group, where batch
  /// rows are strided by the partition key.
  void ProjectRows(const EventBatch& batch, const std::vector<AttrId>& attrs,
                   const uint32_t* rows, size_t n);

  void Clear() {
    rows_ = 0;
    slot_of_attr_.clear();
  }

  size_t rows() const { return rows_; }

  bool has(AttrId attr) const {
    return attr >= 0 && static_cast<size_t>(attr) < slot_of_attr_.size() &&
           slot_of_attr_[attr] >= 0;
  }

  /// Column view for a projected attr slot; valid only when has(attr).
  simd::NumColumn column(AttrId attr) const {
    const size_t base = static_cast<size_t>(slot_of_attr_[attr]) * rows_;
    simd::NumColumn col;
    col.dval = dval_.data() + base;
    col.ival = ival_.data() + base;
    col.tag = tag_.data() + base;
    return col;
  }

 private:
  void ProjectImpl(const EventBatch& batch, const std::vector<AttrId>& attrs,
                   const uint32_t* rows, size_t n);

  std::vector<double> dval_;   // slot-major [slot][row]
  std::vector<int64_t> ival_;
  std::vector<uint8_t> tag_;
  std::vector<int> slot_of_attr_;  // attr position -> slot index or -1
  size_t rows_ = 0;
};

/// Decomposes one Value into projection lanes (shared with the edge
/// filter's per-span prev-side columns).
inline void DecomposeValue(const Value& v, double* dval, int64_t* ival,
                           uint8_t* tag) {
  *tag = static_cast<uint8_t>(v.kind());
  switch (v.kind()) {
    case Value::Kind::kInt:
      *ival = v.AsInt();
      *dval = static_cast<double>(v.AsInt());  // == Value::ToDouble()
      break;
    case Value::Kind::kDouble:
      *ival = 0;
      *dval = v.AsDouble();
      break;
    case Value::Kind::kStr:
      *ival = static_cast<int64_t>(v.AsStr());
      *dval = 0.0;
      break;
    case Value::Kind::kNull:
      *ival = 0;
      *dval = 0.0;
      break;
  }
}

}  // namespace greta

#endif  // GRETA_COMMON_COLUMN_PROJECTION_H_
