#ifndef GRETA_COMMON_CHECK_H_
#define GRETA_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Internal invariant checking. GRETA_CHECK is always on (benchmarks included)
// because a violated invariant would silently corrupt aggregation results;
// GRETA_DCHECK compiles away in NDEBUG builds and guards hot paths.

#define GRETA_CHECK(cond)                                                     \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "GRETA_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#ifdef NDEBUG
#define GRETA_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define GRETA_DCHECK(cond) GRETA_CHECK(cond)
#endif

#endif  // GRETA_COMMON_CHECK_H_
