#ifndef GRETA_COMMON_KSLACK_H_
#define GRETA_COMMON_KSLACK_H_

#include <queue>
#include <vector>

#include "common/event.h"

namespace greta {

/// K-slack reorder buffer for out-of-order streams.
///
/// The paper assumes in-order arrival and points to buffering techniques
/// [17, 18] for disordered sources; this is that front-end: events may
/// arrive up to `slack` time units late and are released in timestamp
/// order once the watermark (max seen time minus slack) passes them.
/// Events later than the slack bound are dropped and counted.
///
/// Usage:
///   KSlackBuffer buffer(/*slack=*/5);
///   for (Event e : wire) {
///     for (Event& ready : buffer.Push(std::move(e))) engine->Process(ready);
///   }
///   for (Event& ready : buffer.Flush()) engine->Process(ready);
class KSlackBuffer {
 public:
  explicit KSlackBuffer(Ts slack) : slack_(slack) {}

  /// Accepts one (possibly out-of-order) event; returns the events that are
  /// now safe to release, in timestamp order with fresh sequence numbers.
  std::vector<Event> Push(Event e) {
    if (e.time < released_up_to_) {
      ++dropped_;  // Beyond the slack bound: cannot be ordered anymore.
      return {};
    }
    if (e.time > max_seen_) max_seen_ = e.time;
    e.seq = static_cast<SeqNo>(arrival_counter_++);
    heap_.push(std::move(e));
    return Release(max_seen_ - slack_);
  }

  /// Releases everything still buffered (stream end).
  std::vector<Event> Flush() { return Release(kMaxTs); }

  /// Events dropped for arriving later than the slack bound.
  size_t dropped() const { return dropped_; }
  size_t buffered() const { return heap_.size(); }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // Stable for equal timestamps.
    }
  };

  std::vector<Event> Release(Ts up_to) {
    std::vector<Event> out;
    while (!heap_.empty() && heap_.top().time <= up_to) {
      Event e = heap_.top();
      heap_.pop();
      e.seq = next_seq_++;
      released_up_to_ = e.time;
      out.push_back(std::move(e));
    }
    return out;
  }

  Ts slack_;
  Ts max_seen_ = kMinTs;
  Ts released_up_to_ = kMinTs;
  uint64_t arrival_counter_ = 0;
  SeqNo next_seq_ = 0;
  size_t dropped_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace greta

#endif  // GRETA_COMMON_KSLACK_H_
