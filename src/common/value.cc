#include "common/value.h"

#include <functional>

namespace greta {

bool Value::operator==(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (kind_ == Kind::kInt && other.kind_ == Kind::kInt) {
      return int_ == other.int_;
    }
    return ToDouble() == other.ToDouble();
  }
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kStr:
      return str_ == other.str_;
    default:
      return false;  // Numerics handled above.
  }
}

int Value::Compare(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (kind_ == Kind::kInt && other.kind_ == Kind::kInt) {
      if (int_ < other.int_) return -1;
      if (int_ > other.int_) return 1;
      return 0;
    }
    double a = ToDouble();
    double b = other.ToDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (kind_ == Kind::kStr && other.kind_ == Kind::kStr) {
    if (str_ < other.str_) return -1;
    if (str_ > other.str_) return 1;
    return 0;
  }
  GRETA_DCHECK(kind_ == other.kind_);
  int a = static_cast<int>(kind_);
  int b = static_cast<int>(other.kind_);
  return a - b;
}

size_t Value::Hash() const {
  switch (kind_) {
    case Kind::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case Kind::kInt:
      return std::hash<int64_t>()(int_);
    case Kind::kDouble: {
      // Hash ints and integral doubles identically so mixed-kind group keys
      // that compare equal also hash equal.
      double d = dbl_;
      int64_t as_int = static_cast<int64_t>(d);
      if (static_cast<double>(as_int) == d) {
        return std::hash<int64_t>()(as_int);
      }
      return std::hash<double>()(d);
    }
    case Kind::kStr:
      return std::hash<int64_t>()(0x5bd1e995LL ^ str_);
  }
  return 0;
}

std::string Value::ToString(const StringPool* pool) const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kDouble: {
      std::string s = std::to_string(dbl_);
      // Trim trailing zeros for readability, keep one decimal digit.
      size_t dot = s.find('.');
      if (dot != std::string::npos) {
        size_t last = s.find_last_not_of('0');
        s.erase(std::max(last, dot + 1) + 1);
      }
      return s;
    }
    case Kind::kStr:
      if (pool != nullptr) return pool->Lookup(str_);
      return "str#" + std::to_string(str_);
  }
  return "?";
}

StrId StringPool::Intern(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  StrId id = static_cast<StrId>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), id);
  return id;
}

StrId StringPool::Find(std::string_view s) const {
  auto it = index_.find(std::string(s));
  if (it == index_.end()) return -1;
  return it->second;
}

}  // namespace greta
