#include "common/value.h"

#include <functional>

namespace greta {

int Value::Compare(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (kind_ == Kind::kInt && other.kind_ == Kind::kInt) {
      if (int_ < other.int_) return -1;
      if (int_ > other.int_) return 1;
      return 0;
    }
    double a = ToDouble();
    double b = other.ToDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (kind_ == Kind::kStr && other.kind_ == Kind::kStr) {
    if (str_ < other.str_) return -1;
    if (str_ > other.str_) return 1;
    return 0;
  }
  GRETA_DCHECK(kind_ == other.kind_);
  int a = static_cast<int>(kind_);
  int b = static_cast<int>(other.kind_);
  return a - b;
}

size_t Value::HashDouble(double v) { return std::hash<double>()(v); }

std::string Value::ToString(const StringPool* pool) const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kDouble: {
      std::string s = std::to_string(dbl_);
      // Trim trailing zeros for readability, keep one decimal digit.
      size_t dot = s.find('.');
      if (dot != std::string::npos) {
        size_t last = s.find_last_not_of('0');
        s.erase(std::max(last, dot + 1) + 1);
      }
      return s;
    }
    case Kind::kStr:
      if (pool != nullptr) return pool->Lookup(str_);
      return "str#" + std::to_string(str_);
  }
  return "?";
}

StrId StringPool::Intern(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  StrId id = static_cast<StrId>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), id);
  return id;
}

StrId StringPool::Find(std::string_view s) const {
  auto it = index_.find(std::string(s));
  if (it == index_.end()) return -1;
  return it->second;
}

}  // namespace greta
