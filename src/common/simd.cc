#include "common/simd.h"

#include <cstdlib>
#include <cstring>

namespace greta::simd {

namespace {

const Kernels& TableFor(Isa isa) {
  switch (isa) {
    case Isa::kAvx2: return Avx2Kernels();
    case Isa::kSse42: return Sse42Kernels();
    case Isa::kScalar: return ScalarKernels();
  }
  return ScalarKernels();
}

// Best ISA both the CPU and this binary support. Checked once; the per-ISA
// translation units are only reachable behind this gate, so their
// intrinsics never execute on hardware without the feature.
Isa DetectBest() {
#if defined(__x86_64__) || defined(__i386__)
  if (Avx2Compiled() && __builtin_cpu_supports("avx2")) return Isa::kAvx2;
  if (Sse42Compiled() && __builtin_cpu_supports("sse4.2")) {
    return Isa::kSse42;
  }
#endif
  return Isa::kScalar;
}

Isa ApplyOverride(Isa detected) {
  const char* env = std::getenv("GRETA_SIMD");
  if (env == nullptr || *env == '\0') return detected;
  Isa wanted = detected;
  if (std::strcmp(env, "scalar") == 0) {
    wanted = Isa::kScalar;
  } else if (std::strcmp(env, "sse") == 0 ||
             std::strcmp(env, "sse4.2") == 0 ||
             std::strcmp(env, "sse42") == 0) {
    wanted = Isa::kSse42;
  } else if (std::strcmp(env, "avx2") == 0) {
    wanted = Isa::kAvx2;
  }
  // The override can only narrow: requesting an ISA the host lacks keeps
  // the detected one (never dispatch unsupported instructions).
  return wanted < detected ? wanted : detected;
}

struct DispatchState {
  Isa detected;
  Isa active;
  const Kernels* table;
  DispatchState() {
    detected = DetectBest();
    active = ApplyOverride(detected);
    table = &TableFor(active);
  }
};

DispatchState& State() {
  static DispatchState s;
  return s;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kAvx2: return "avx2";
    case Isa::kSse42: return "sse4.2";
    case Isa::kScalar: return "scalar";
  }
  return "scalar";
}

const Kernels& Dispatch() { return *State().table; }

Isa DispatchedIsa() { return State().active; }

Isa DetectedIsa() { return State().detected; }

void ForceIsa(Isa isa) {
  DispatchState& s = State();
  s.active = isa < s.detected ? isa : s.detected;
  s.table = &TableFor(s.active);
}

}  // namespace greta::simd
