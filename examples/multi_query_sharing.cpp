// Multi-query shared execution: one stream, many concurrent queries.
//
// Six tenants watch the same stock stream for down-trends — same Kleene
// pattern, same predicates, same window, different aggregates. The shared
// workload runtime detects the overlap, merges them onto ONE GRETA graph
// with query-indexed aggregate cells, and keeps a seventh, structurally
// different query on its own dedicated engine.
//
// Run:  ./build/example_multi_query_sharing

#include <cstdio>

#include "query/parser.h"
#include "sharing/shared_engine.h"
#include "workload/stock.h"

using namespace greta;

int main() {
  Catalog catalog;
  StockConfig config;
  config.rate = 100;
  config.duration = 30;
  config.drift = 1.0;
  Stream stream = GenerateStockStream(&catalog, config);

  const char* queries[] = {
      // Six overlapping down-trend queries (one cluster, shared graph).
      "RETURN sector, COUNT(*) PATTERN Stock S+ WHERE [company, sector] AND "
      "S.price > NEXT(S).price GROUP-BY sector WITHIN 10 seconds SLIDE 5 "
      "seconds",
      "RETURN sector, SUM(S.price) PATTERN Stock S+ WHERE [company, sector] "
      "AND S.price > NEXT(S).price GROUP-BY sector WITHIN 10 seconds SLIDE "
      "5 seconds",
      "RETURN sector, MIN(S.price), MAX(S.price) PATTERN Stock S+ WHERE "
      "[company, sector] AND S.price > NEXT(S).price GROUP-BY sector WITHIN "
      "10 seconds SLIDE 5 seconds",
      "RETURN sector, COUNT(S) PATTERN Stock S+ WHERE [company, sector] AND "
      "S.price > NEXT(S).price GROUP-BY sector WITHIN 10 seconds SLIDE 5 "
      "seconds",
      "RETURN sector, AVG(S.volume) PATTERN Stock S+ WHERE [company, "
      "sector] AND S.price > NEXT(S).price GROUP-BY sector WITHIN 10 "
      "seconds SLIDE 5 seconds",
      // Alias renamed on purpose: still merges (fingerprints are
      // alias-free).
      "RETURN sector, SUM(T.volume) PATTERN Stock T+ WHERE [company, "
      "sector] AND T.price > NEXT(T).price GROUP-BY sector WITHIN 10 "
      "seconds SLIDE 5 seconds",
      // A different shape: dedicated engine.
      "RETURN COUNT(*) PATTERN SEQ(Stock S, Halt H) WHERE [sector] WITHIN "
      "10 seconds",
  };

  std::vector<QuerySpec> workload;
  for (const char* text : queries) {
    auto spec = ParseQuery(text, &catalog);
    if (!spec.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   spec.status().ToString().c_str());
      return 1;
    }
    workload.push_back(std::move(spec).value());
  }

  auto engine_or = sharing::SharedWorkloadEngine::Create(&catalog, workload);
  if (!engine_or.ok()) {
    std::fprintf(stderr, "plan error: %s\n",
                 engine_or.status().ToString().c_str());
    return 1;
  }
  auto engine = std::move(engine_or).value();

  std::printf("%s\n", engine->sharing_plan().ToString().c_str());

  for (const Event& e : stream.events()) {
    Status s = engine->Process(e);
    if (!s.ok()) {
      std::fprintf(stderr, "process error: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  (void)engine->Flush();

  for (size_t q = 0; q < engine->num_queries(); ++q) {
    std::vector<ResultRow> rows = engine->TakeResults(q);
    std::printf("query %zu: %zu result rows", q, rows.size());
    if (!rows.empty()) {
      std::printf("  (first: %s)",
                  FormatRow(rows.front(), workload[q].aggs, catalog).c_str());
    }
    std::printf("\n");
  }

  const EngineStats& stats = engine->stats();
  std::printf(
      "\n%zu queries, %zu events -> %zu stored vertices across %zu unit "
      "runtimes (dedicated execution would build one graph per query)\n",
      engine->num_queries(), stats.events_processed, stats.vertices_stored,
      engine->sharing_plan().clusters.size());
  return 0;
}
