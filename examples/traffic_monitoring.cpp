// Traffic management (query Q3 of the paper): detect congestion that is
// *not* caused by an accident — the number and average speed of cars
// continually slowing down in segments without a preceding accident.
//
// The pattern SEQ(NOT Accident A, Position P+) uses a leading negative
// sub-pattern (Case 3 of Section 5): once an accident is reported in a
// segment, later position reports in it stop contributing until the window
// slides past.
//
// Run:  ./build/examples/traffic_monitoring [--seconds=60]

#include <cstdio>
#include <cstring>

#include "core/engine.h"
#include "workload/linear_road.h"

using namespace greta;

int main(int argc, char** argv) {
  Ts seconds = 60;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seconds=", 10) == 0) {
      seconds = std::atoll(argv[i] + 10);
    }
  }

  Catalog catalog;
  auto spec = MakeQ3(&catalog, /*within=*/20, /*slide=*/10);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Q3: RETURN segment, COUNT(*), AVG(P.speed)\n"
      "    PATTERN SEQ(NOT Accident A, Position P+)\n"
      "    WHERE [P.vehicle, segment] AND P.speed > NEXT(P).speed\n"
      "    GROUP-BY segment WITHIN 20 seconds SLIDE 10 seconds\n\n");

  auto engine_or = GretaEngine::Create(&catalog, spec.value());
  if (!engine_or.ok()) {
    std::fprintf(stderr, "%s\n", engine_or.status().ToString().c_str());
    return 1;
  }
  auto engine = std::move(engine_or).value();

  LinearRoadConfig config;
  config.num_vehicles = 20;
  config.num_segments = 6;
  config.rate = 100;
  config.duration = seconds;
  config.accident_probability = 0.05;
  Stream stream = GenerateLinearRoadStream(&catalog, config);

  TypeId accident = catalog.FindType("Accident");
  for (const Event& e : stream.events()) {
    if (e.type == accident) {
      std::printf("!! accident reported in segment %lld at t=%lld\n",
                  static_cast<long long>(e.attr(0).AsInt()),
                  static_cast<long long>(e.time));
    }
    if (!engine->Process(e).ok()) return 1;
    for (const ResultRow& row : engine->TakeResults()) {
      std::printf(
          "window %-3lld segment=%lld slowing-trends=%-12s avg-speed=%.1f\n",
          static_cast<long long>(row.wid),
          static_cast<long long>(row.group[0].AsInt()),
          row.aggs.count.ToDecimal().c_str(), row.aggs.Avg());
    }
  }
  (void)engine->Flush();
  for (const ResultRow& row : engine->TakeResults()) {
    std::printf(
        "window %-3lld segment=%lld slowing-trends=%-12s avg-speed=%.1f\n",
        static_cast<long long>(row.wid),
        static_cast<long long>(row.group[0].AsInt()),
        row.aggs.count.ToDecimal().c_str(), row.aggs.Avg());
  }
  std::printf("\nprocessed %zu events; peak memory %zu bytes\n",
              engine->stats().events_processed, engine->stats().peak_bytes);
  return 0;
}
