// Algorithmic trading (query Q1 of the paper): count stock price
// down-trends per sector over a sliding window and raise a sell signal for
// a sector when the count exceeds a threshold.
//
// "Since stock trends of companies that belong to the same sector tend to
//  move as a group, the number of down-trends across different companies in
//  the same sector is a strong indicator of an upcoming down trend for the
//  sector." (Section 1)
//
// Run:  ./build/examples/algorithmic_trading [--seconds=60]

#include <cstdio>
#include <cstring>
#include <string>

#include "core/engine.h"
#include "workload/stock.h"

using namespace greta;

int main(int argc, char** argv) {
  Ts seconds = 60;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seconds=", 10) == 0) {
      seconds = std::atoll(argv[i] + 10);
    }
  }

  Catalog catalog;

  // Q1: down-trends per sector, 30s window sliding every 10s.
  auto spec = MakeQ1(&catalog, /*within=*/30, /*slide=*/10);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Q1: RETURN sector, COUNT(*) PATTERN Stock S+\n"
      "    WHERE [company, sector] AND S.price > NEXT(S).price\n"
      "    GROUP-BY sector WITHIN 30 seconds SLIDE 10 seconds\n\n");

  EngineOptions options;
  options.counter_mode = CounterMode::kExact;  // Counts can be astronomic.
  auto engine_or = GretaEngine::Create(&catalog, spec.value(), options);
  if (!engine_or.ok()) {
    std::fprintf(stderr, "%s\n", engine_or.status().ToString().c_str());
    return 1;
  }
  auto engine = std::move(engine_or).value();

  // Synthetic NYSE-like feed: 10 companies in 5 sectors, 200 tx/s, slightly
  // falling market so down-trends are plentiful.
  StockConfig config;
  config.rate = 200;
  config.duration = seconds;
  config.drift = -0.2;
  config.volatility = 0.8;
  Stream stream = GenerateStockStream(&catalog, config);

  const char* kSectors[] = {"energy", "tech", "finance", "health", "retail"};
  const double kSellThreshold = 1e6;  // Down-trend count triggering a sell.

  for (const Event& e : stream.events()) {
    if (!engine->Process(e).ok()) return 1;
    for (const ResultRow& row : engine->TakeResults()) {
      int64_t sector = row.group[0].AsInt();
      double count = row.aggs.count.ToDouble();
      std::printf("t=%-4lld sector=%-8s down-trends=%-14s %s\n",
                  static_cast<long long>(e.time), kSectors[sector % 5],
                  row.aggs.count.ToDecimal().c_str(),
                  count > kSellThreshold ? "<< SELL SIGNAL" : "");
    }
  }
  (void)engine->Flush();
  for (const ResultRow& row : engine->TakeResults()) {
    int64_t sector = row.group[0].AsInt();
    std::printf("final  sector=%-8s down-trends=%s\n",
                kSectors[sector % 5], row.aggs.count.ToDecimal().c_str());
  }
  std::printf("\nprocessed %zu events; peak memory %zu bytes\n",
              engine->stats().events_processed, engine->stats().peak_bytes);
  return 0;
}
