// A small end-to-end pipeline over user-supplied text data: schema file +
// query string + CSV event file in, aggregate rows out. With no arguments
// it runs an embedded demo (the paper's Q1 over a handful of stock ticks)
// and prints the compiled plan.
//
// Usage:
//   ./build/examples/csv_pipeline --schema=schema.txt --csv=events.csv
//       --query='RETURN sector, COUNT(*) PATTERN Stock S+ ...'
//       [--explain] [--slack=5]
//
// Schema file format (see src/workload/csv.h):
//   Stock: company:int, sector:int, price:double
// CSV event format, in timestamp order (or up to --slack out of order):
//   Stock,1,7,1,101.5

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/kslack.h"
#include "core/engine.h"
#include "core/explain.h"
#include "query/parser.h"
#include "workload/csv.h"

using namespace greta;

namespace {

constexpr const char* kDemoSchema = R"(
# Stock transactions and trading halts.
Stock: company:int, sector:int, price:double
Halt:  company:int, sector:int
)";

constexpr const char* kDemoQuery =
    "RETURN sector, COUNT(*) "
    "PATTERN Stock S+ "
    "WHERE [company, sector] AND S.price > NEXT(S).price "
    "GROUP-BY sector WITHIN 10 seconds SLIDE 5 seconds";

constexpr const char* kDemoCsv = R"(
# type,time,company,sector,price
Stock,1,7,1,103.0
Stock,2,7,1,101.5
Stock,2,3,0,55.0
Stock,4,7,1,99.25
Stock,5,3,0,54.0
Stock,6,3,0,56.0
Stock,8,7,1,98.0
Stock,9,3,0,51.0
Stock,12,7,1,97.5
)";

std::string ArgValue(int argc, char** argv, const char* key) {
  size_t len = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return "";
}

bool HasFlag(int argc, char** argv, const char* key) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], key) == 0) return true;
  }
  return false;
}

std::string ReadFileOr(const std::string& path, const char* fallback) {
  if (path.empty()) return fallback;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string schema_text =
      ReadFileOr(ArgValue(argc, argv, "--schema"), kDemoSchema);
  std::string query = ArgValue(argc, argv, "--query");
  if (query.empty()) query = kDemoQuery;
  std::string csv_text = ReadFileOr(ArgValue(argc, argv, "--csv"), kDemoCsv);
  std::string slack_text = ArgValue(argc, argv, "--slack");
  Ts slack = slack_text.empty() ? 0 : std::atoll(slack_text.c_str());

  Catalog catalog;
  Status schema = ParseSchema(schema_text, &catalog);
  if (!schema.ok()) {
    std::fprintf(stderr, "schema: %s\n", schema.ToString().c_str());
    return 1;
  }

  auto spec = ParseQuery(query, &catalog);
  if (!spec.ok()) {
    std::fprintf(stderr, "query: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  auto engine_or = GretaEngine::Create(&catalog, spec.value());
  if (!engine_or.ok()) {
    std::fprintf(stderr, "plan: %s\n", engine_or.status().ToString().c_str());
    return 1;
  }
  auto engine = std::move(engine_or).value();

  if (HasFlag(argc, argv, "--explain")) {
    std::printf("--- plan ---\n%s------------\n",
                ExplainPlan(engine->plan(), catalog).c_str());
  }

  // Results are pushed the moment each window closes.
  engine->set_result_callback([&](const ResultRow& row) {
    std::printf("%s\n",
                FormatRow(row, engine->plan().agg_specs, catalog).c_str());
  });

  std::istringstream csv(csv_text);
  StatusOr<Stream> stream = [&]() -> StatusOr<Stream> {
    if (slack == 0) return ReadCsvStream(csv, &catalog);
    // Out-of-order input: route through a K-slack buffer line by line.
    Stream out;
    std::string line;
    KSlackBuffer buffer(slack);
    while (std::getline(csv, line)) {
      std::string_view trimmed = line;
      if (trimmed.empty() || trimmed[0] == '#') continue;
      StatusOr<Event> e = ParseCsvEvent(trimmed, &catalog);
      if (!e.ok()) return e.status();
      for (Event& ready : buffer.Push(std::move(e).value())) {
        out.Append(std::move(ready));
      }
    }
    for (Event& ready : buffer.Flush()) out.Append(std::move(ready));
    return out;
  }();
  if (!stream.ok()) {
    std::fprintf(stderr, "csv: %s\n", stream.status().ToString().c_str());
    return 1;
  }

  for (const Event& e : stream.value().events()) {
    Status s = engine->Process(e);
    if (!s.ok()) {
      std::fprintf(stderr, "process: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  (void)engine->Flush();
  (void)engine->TakeResults();  // Already printed via the callback.
  std::printf("processed %zu events\n", engine->stats().events_processed);
  return 0;
}
