// Quickstart: the paper's running example end to end.
//
// Builds the nested Kleene query COUNT(*) over (SEQ(A+, B))+, feeds the
// Figure 6 stream {a1, b2, a3, a4, b7, ...} and prints the aggregate —
// without ever constructing the 43 matched trends.
//
// Run:  ./build/examples/quickstart

#include <cstdio>

#include "common/catalog.h"
#include "common/stream.h"
#include "core/engine.h"
#include "query/parser.h"

using namespace greta;

int main() {
  // 1. Declare the event schema.
  Catalog catalog;
  catalog.DefineType("A", {{"attr", Value::Kind::kDouble}});
  catalog.DefineType("B", {{"attr", Value::Kind::kDouble}});

  // 2. Parse an event trend aggregation query (Definition 2 clauses).
  auto spec = ParseQuery(
      "RETURN COUNT(*), COUNT(A), MIN(A.attr), MAX(A.attr), SUM(A.attr), "
      "AVG(A.attr) "
      "PATTERN (SEQ(A+, B))+",
      &catalog);
  if (!spec.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 spec.status().ToString().c_str());
    return 1;
  }

  // 3. Build the GRETA engine (exact counters by default).
  auto engine_or = GretaEngine::Create(&catalog, spec.value());
  if (!engine_or.ok()) {
    std::fprintf(stderr, "plan error: %s\n",
                 engine_or.status().ToString().c_str());
    return 1;
  }
  auto engine = std::move(engine_or).value();

  // 4. Stream the events of Figure 12 (attr values 5, 2, 6, 4, 7).
  Stream stream;
  auto add = [&](const char* type, Ts time, double attr) {
    stream.Append(
        EventBuilder(&catalog, type, time).Set("attr", attr).Build());
  };
  add("A", 1, 5.0);
  add("B", 2, 2.0);
  add("A", 3, 6.0);
  add("A", 4, 4.0);
  add("B", 7, 7.0);

  for (const Event& e : stream.events()) {
    std::printf("-> %s\n", e.ToString(catalog).c_str());
    Status s = engine->Process(e);
    if (!s.ok()) {
      std::fprintf(stderr, "process error: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  (void)engine->Flush();

  // 5. Read the aggregates (Example 1 of the paper: 11 trends, COUNT(A)=20,
  //    MIN=4, MAX=6, SUM=100, AVG=5).
  for (const ResultRow& row : engine->TakeResults()) {
    std::printf("%s\n",
                FormatRow(row, engine->plan().agg_specs, catalog).c_str());
  }
  std::printf("(events stored: %zu, edges traversed: %zu)\n",
              engine->stats().vertices_stored,
              engine->stats().edges_traversed);
  return 0;
}
