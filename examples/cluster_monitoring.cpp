// Hadoop cluster monitoring (query Q2 of the paper): total CPU cycles per
// mapper across jobs experiencing increasing load trends — the signal used
// to rebalance a cluster before a mapper becomes the bottleneck.
//
// A trend is SEQ(Start S, Measurement M+, End E) with the load increasing
// from one measurement to the next; all events of a trend share the same
// (job, mapper).
//
// Run:  ./build/examples/cluster_monitoring [--seconds=60]

#include <cstdio>
#include <cstring>

#include "core/engine.h"
#include "workload/cluster.h"

using namespace greta;

int main(int argc, char** argv) {
  Ts seconds = 60;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seconds=", 10) == 0) {
      seconds = std::atoll(argv[i] + 10);
    }
  }

  Catalog catalog;
  auto spec = MakeQ2(&catalog, /*within=*/60, /*slide=*/30);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Q2: RETURN mapper, SUM(M.cpu)\n"
      "    PATTERN SEQ(Start S, Measurement M+, End E)\n"
      "    WHERE [job, mapper] AND M.load < NEXT(M).load\n"
      "    GROUP-BY mapper WITHIN 1 minute SLIDE 30 seconds\n\n");

  EngineOptions options;
  options.counter_mode = CounterMode::kModular;  // SUM is the output here.
  auto engine_or = GretaEngine::Create(&catalog, spec.value(), options);
  if (!engine_or.ok()) {
    std::fprintf(stderr, "%s\n", engine_or.status().ToString().c_str());
    return 1;
  }
  auto engine = std::move(engine_or).value();

  ClusterConfig config;
  config.num_mappers = 4;
  config.num_jobs = 3;
  config.rate = 150;
  config.duration = seconds;
  config.restart_probability = 0.08;
  Stream stream = GenerateClusterStream(&catalog, config);

  for (const Event& e : stream.events()) {
    if (!engine->Process(e).ok()) return 1;
    for (const ResultRow& row : engine->TakeResults()) {
      std::printf("window %-3lld mapper=%lld SUM(cpu)=%.1f\n",
                  static_cast<long long>(row.wid),
                  static_cast<long long>(row.group[0].AsInt()),
                  row.aggs.sum);
    }
  }
  (void)engine->Flush();
  for (const ResultRow& row : engine->TakeResults()) {
    std::printf("window %-3lld mapper=%lld SUM(cpu)=%.1f\n",
                static_cast<long long>(row.wid),
                static_cast<long long>(row.group[0].AsInt()),
                row.aggs.sum);
  }
  std::printf("\nprocessed %zu events; peak memory %zu bytes\n",
              engine->stats().events_processed, engine->stats().peak_bytes);
  return 0;
}
