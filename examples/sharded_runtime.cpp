// Sharded parallel runtime tour: load a declarative workload artifact
// (src/workload/spec.h), run it across N in-process shards
// (src/runtime/sharded_runtime.h), and show that the watermark-ordered
// merge reproduces single-threaded results exactly. When the workload's
// telemetry block says {"serve": true}, the embedded observability
// endpoint (src/telemetry/http_server.h) comes up first and serves
// /metrics, /snapshot, /trace, /explain, /healthz and /queries while the
// stream replays.
//
//   ./example_sharded_runtime [path/to/workload.json] [--serve-seconds=N]
//
// Defaults to examples/workloads/stock_downtrends.json (run from the repo
// root). --serve-seconds keeps the process alive after the replay so the
// endpoint can be scraped (try examples/workloads/observed_stock.json).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "runtime/observability.h"
#include "runtime/sharded_runtime.h"
#include "telemetry/http_server.h"
#include "telemetry/telemetry.h"
#include "workload/spec.h"

using namespace greta;

int main(int argc, char** argv) {
  std::string path = "examples/workloads/stock_downtrends.json";
  int serve_seconds = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--serve-seconds=", 16) == 0) {
      serve_seconds = std::atoi(argv[i] + 16);
    } else {
      path = argv[i];
    }
  }

  Catalog catalog;
  auto loaded = workload::LoadWorkloadSpecFile(path, &catalog);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  workload::WorkloadSpec spec = std::move(loaded).value();
  std::printf("workload: %s (%zu queries)\n", spec.name.c_str(),
              spec.queries.size());
  for (const std::string& text : spec.query_texts) {
    std::printf("  %s\n", text.c_str());
  }

  // Arm telemetry BEFORE building the runtime — instruments are cached at
  // construction (src/telemetry/telemetry.h).
  telemetry::MetricRegistry::Default().Configure(spec.telemetry);

  if (!spec.stock.has_value()) {
    std::fprintf(stderr, "this example needs a {\"kind\": \"stock\"} "
                         "dataset block\n");
    return 1;
  }
  Stream stream = GenerateStockStream(&catalog, *spec.stock);
  std::printf("\nstream: %zu events over %lld seconds\n", stream.size(),
              static_cast<long long>(spec.stock->duration));

  auto rt = runtime::ShardedRuntime::Create(&catalog, spec.queries,
                                            spec.runtime);
  if (!rt.ok()) {
    std::fprintf(stderr, "cannot build runtime: %s\n",
                 rt.status().ToString().c_str());
    return 1;
  }
  runtime::ShardedRuntime& runtime = *rt.value();
  std::printf("\nrouting\n  %s\n",
              runtime.router().ToString(catalog).c_str());

  telemetry::HttpServer server(telemetry::MetricRegistry::Default());
  if (spec.telemetry.serve) {
    // Runtime routes must be registered before Start.
    runtime::AttachRuntimeObservability(&server, rt.value().get());
    if (!server.Start(spec.telemetry.http_port)) {
      std::fprintf(stderr, "cannot start endpoint: %s\n",
                   server.error().c_str());
      return 1;
    }
    // Scrapers (and the CI smoke job) parse this line for the bound port;
    // flush in case stdout is redirected to a file (fully buffered).
    std::printf("observability: http://127.0.0.1:%u/\n",
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
  }

  auto start = std::chrono::steady_clock::now();
  for (const Event& e : stream.events()) {
    Status s = runtime.Process(e);
    if (!s.ok()) {
      std::fprintf(stderr, "process: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (Status s = runtime.Flush(); !s.ok()) {
    std::fprintf(stderr, "flush: %s\n", s.ToString().c_str());
    return 1;
  }
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  size_t total_rows = 0;
  for (size_t q = 0; q < runtime.num_queries(); ++q) {
    std::vector<ResultRow> rows = runtime.TakeResults(q);
    std::printf("\nquery %zu: %zu rows (first 3)\n", q, rows.size());
    for (size_t i = 0; i < rows.size() && i < 3; ++i) {
      std::printf("  wid=%lld group=(",
                  static_cast<long long>(rows[i].wid));
      for (size_t g = 0; g < rows[i].group.size(); ++g) {
        std::printf("%s%s", g > 0 ? "," : "",
                    rows[i].group[g].ToString(catalog.strings()).c_str());
      }
      std::printf(") count=%s\n", rows[i].aggs.count.ToDecimal().c_str());
    }
    total_rows += rows.size();
  }

  std::printf("\n%zu shards, %zu rows, %.0f events/s, peak %.1f KB "
              "(workload roll-up of per-shard trackers)\n",
              runtime.num_shards(), total_rows,
              seconds > 0 ? stream.size() / seconds : 0.0,
              runtime.memory().peak_bytes() / 1024.0);
  for (size_t s = 0; s < runtime.num_shards(); ++s) {
    std::printf("  shard %zu: current %.1f KB\n", s,
                runtime.shard_memory(s).current_bytes() / 1024.0);
  }

  // The estimated-vs-observed join the /queries route serves, rendered for
  // the terminal.
  std::printf("\n%s", runtime::ExplainAnalyze(runtime, 0).c_str());
  std::fflush(stdout);

  if (spec.telemetry.serve && serve_seconds > 0) {
    std::printf("\nserving for %ds — try:\n"
                "  curl http://127.0.0.1:%u/metrics\n"
                "  curl http://127.0.0.1:%u/healthz\n"
                "  curl http://127.0.0.1:%u/queries/0\n",
                serve_seconds, static_cast<unsigned>(server.port()),
                static_cast<unsigned>(server.port()),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));
  }
  server.Stop();
  return 0;
}
