// A tour of the query language (Figure 2 grammar and the Section 9
// extensions): parses a series of queries, prints their compiled form, and
// evaluates each against a tiny shared stream — including Kleene star,
// optional sub-patterns, disjunction, conjunction, and negation.
//
// Run:  ./build/examples/query_language_tour

#include <cstdio>

#include "common/stream.h"
#include "core/engine.h"
#include "query/parser.h"

using namespace greta;

namespace {

void RunOne(Catalog* catalog, const Stream& stream, const char* query) {
  std::printf("query: %s\n", query);
  auto spec = ParseQuery(query, catalog);
  if (!spec.ok()) {
    std::printf("  -> %s\n\n", spec.status().ToString().c_str());
    return;
  }
  std::printf("  pattern: %s\n",
              spec.value().pattern->ToString(*catalog).c_str());
  auto engine_or = GretaEngine::Create(catalog, spec.value());
  if (!engine_or.ok()) {
    std::printf("  -> %s\n\n", engine_or.status().ToString().c_str());
    return;
  }
  auto engine = std::move(engine_or).value();
  for (const Event& e : stream.events()) {
    if (!engine->Process(e).ok()) return;
  }
  (void)engine->Flush();
  std::vector<ResultRow> rows = engine->TakeResults();
  if (rows.empty()) std::printf("  (no results)\n");
  for (const ResultRow& row : rows) {
    std::printf("  %s\n",
                FormatRow(row, engine->plan().agg_specs, *catalog).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Catalog catalog;
  for (const char* name : {"A", "B", "C", "D", "E"}) {
    catalog.DefineType(name, {{"attr", Value::Kind::kDouble}});
  }

  // The Figure 6 stream: a1 b2 c2 a3 e3 a4 c5 d6 b7 a8 b9.
  Stream stream;
  auto add = [&](const char* type, Ts time) {
    stream.Append(EventBuilder(&catalog, type, time)
                      .Set("attr", static_cast<double>(time))
                      .Build());
  };
  add("A", 1);
  add("B", 2);
  add("C", 2);
  add("A", 3);
  add("E", 3);
  add("A", 4);
  add("C", 5);
  add("D", 6);
  add("B", 7);
  add("A", 8);
  add("B", 9);

  std::printf("stream: a1 b2 c2 a3 e3 a4 c5 d6 b7 a8 b9\n\n");

  // Kleene plus / nested Kleene (Figure 6(a)-(c)).
  RunOne(&catalog, stream, "RETURN COUNT(*) PATTERN A+");
  RunOne(&catalog, stream, "RETURN COUNT(*) PATTERN SEQ(A+, B)");
  RunOne(&catalog, stream, "RETURN COUNT(*) PATTERN (SEQ(A+, B))+");

  // Aggregation functions (Definition 2).
  RunOne(&catalog, stream,
         "RETURN COUNT(A), MIN(A.attr), MAX(A.attr), SUM(A.attr), "
         "AVG(A.attr) PATTERN SEQ(A+, B)");

  // Predicates: vertex and edge (Section 6).
  RunOne(&catalog, stream,
         "RETURN COUNT(*) PATTERN A+ WHERE A.attr >= 3");
  RunOne(&catalog, stream,
         "RETURN COUNT(*) PATTERN A+ WHERE A.attr < NEXT(A).attr");

  // Windows (an event in several overlapping windows).
  RunOne(&catalog, stream,
         "RETURN COUNT(*) PATTERN SEQ(A+, B) WITHIN 10 seconds SLIDE 3 "
         "seconds");

  // Negation, all three placements (Section 5).
  RunOne(&catalog, stream,
         "RETURN COUNT(*) PATTERN (SEQ(A+, NOT SEQ(C, NOT E, D), B))+");
  RunOne(&catalog, stream, "RETURN COUNT(*) PATTERN SEQ(A+, NOT E)");
  RunOne(&catalog, stream, "RETURN COUNT(*) PATTERN SEQ(NOT E, A+)");

  // Section-9 sugar: star, optional, disjunction, conjunction.
  RunOne(&catalog, stream, "RETURN COUNT(*) PATTERN SEQ(A*, B)");
  RunOne(&catalog, stream, "RETURN COUNT(*) PATTERN SEQ(A?, B)");
  RunOne(&catalog, stream, "RETURN COUNT(*) PATTERN A+ | SEQ(C, D)");
  RunOne(&catalog, stream, "RETURN COUNT(*) PATTERN A+ & SEQ(C, D)");

  // Errors are reported, not thrown.
  RunOne(&catalog, stream, "RETURN COUNT(*) PATTERN NOT A");
  RunOne(&catalog, stream, "RETURN COUNT(*) PATTERN Z+");
  return 0;
}
