// Remaining coverage corners: multi-occurrence patterns combined with
// negation, result formatting helpers, row-equivalence diagnostics, and the
// benchmark utility substrate (flags, tables, metric formatting).

#include "bench_util/harness.h"
#include "bench_util/metrics.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace greta {
namespace {

using testing::CountQuery;
using testing::ExpectMatchesOracle;
using testing::PaperCatalog;

Stream MakeStream(Catalog* catalog,
                  std::initializer_list<std::pair<const char*, Ts>> events) {
  Stream stream;
  for (const auto& [type, time] : events) {
    stream.Append(EventBuilder(catalog, type, time)
                      .Set("attr", static_cast<double>(time))
                      .Build());
  }
  return stream;
}

TEST(MultiOccurrenceNegationTest, NegationBetweenRepeatedTypes) {
  // SEQ(A, NOT C, A): the NOT sits between two occurrences of the same
  // event type; prev resolves to the first A state, foll to the second.
  auto catalog = PaperCatalog();
  PatternPtr p = Pattern::Seq(Pattern::Atom(0),
                              Pattern::Not(Pattern::Atom(2)),
                              Pattern::Atom(0));
  Stream stream = MakeStream(
      catalog.get(),
      {{"A", 1}, {"C", 2}, {"A", 3}, {"A", 4}});
  std::vector<ResultRow> rows =
      ExpectMatchesOracle(catalog.get(), CountQuery(std::move(p)), stream);
  // Pairs (a,a') with no c strictly between: (a3,a4) only — c2 separates a1
  // from both later a's.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].aggs.count.ToDecimal(), "1");
}

TEST(MultiOccurrenceNegationTest, KleeneRepeatsWithTrailingNegation) {
  auto catalog = PaperCatalog();
  // SEQ(A+, B, A+, NOT C): repeated Kleene type plus a Case-2 negation.
  PatternPtr p = Pattern::Seq(Pattern::Plus(Pattern::Atom(0)),
                              Pattern::Atom(1),
                              Pattern::Plus(Pattern::Atom(0)),
                              Pattern::Not(Pattern::Atom(2)));
  Stream stream = MakeStream(catalog.get(), {{"A", 1},
                                             {"B", 2},
                                             {"A", 3},
                                             {"C", 4},
                                             {"A", 5},
                                             {"B", 6},
                                             {"A", 7}});
  ExpectMatchesOracle(catalog.get(), CountQuery(std::move(p)), stream);
}

TEST(FormatRowTest, RendersGroupsAndAggregates) {
  Catalog catalog;
  catalog.DefineType("T", {{"g", Value::Kind::kStr}});
  StrId tech = catalog.strings()->Intern("tech");
  ResultRow row;
  row.wid = 3;
  row.group = {Value::Str(tech)};
  row.aggs.count = Counter(43);
  row.aggs.any = true;
  std::vector<AggSpec> specs = {
      {AggKind::kCountStar, kInvalidType, kInvalidAttr, "COUNT(*)"}};
  EXPECT_EQ(FormatRow(row, specs, catalog),
            "wid=3 group=(tech) COUNT(*)=43");
}

TEST(RowsEquivalentTest, ReportsFirstDifference) {
  ResultRow a;
  a.wid = 0;
  a.aggs.count = Counter(5);
  a.aggs.any = true;
  ResultRow b = a;
  b.aggs.count = Counter(6);
  AggPlan plan;
  std::string diff;
  EXPECT_FALSE(RowsEquivalent({a}, {b}, plan, &diff));
  EXPECT_NE(diff.find("COUNT(*) 5 vs 6"), std::string::npos);
  EXPECT_FALSE(RowsEquivalent({a}, {a, b}, plan, &diff));
  EXPECT_NE(diff.find("row count mismatch"), std::string::npos);
  EXPECT_TRUE(RowsEquivalent({a}, {a}, plan, &diff));
}

TEST(SortRowsTest, OrdersByWindowThenGroup) {
  ResultRow r1;
  r1.wid = 2;
  r1.group = {Value::Int(1)};
  ResultRow r2;
  r2.wid = 1;
  r2.group = {Value::Int(9)};
  ResultRow r3;
  r3.wid = 2;
  r3.group = {Value::Int(0)};
  std::vector<ResultRow> rows = {r1, r2, r3};
  SortRows(&rows);
  EXPECT_EQ(rows[0].wid, 1);
  EXPECT_EQ(rows[1].wid, 2);
  EXPECT_EQ(rows[1].group[0].AsInt(), 0);
  EXPECT_EQ(rows[2].group[0].AsInt(), 1);
}

TEST(MetricsFormatTest, HumanUnits) {
  using bench::FormatBytes;
  using bench::FormatCount;
  using bench::FormatMillis;
  EXPECT_EQ(FormatCount(950), "950");
  EXPECT_EQ(FormatCount(1500), "1.5k");
  EXPECT_EQ(FormatCount(2.5e6), "2.5M");
  EXPECT_EQ(FormatCount(3e9), "3G");
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(2048), "2KB");
  EXPECT_EQ(FormatBytes(1024.0 * 1000.0), "0.977MB");  // No "1e+03KB".
  EXPECT_EQ(FormatMillis(0.5), "0.5ms");
  EXPECT_EQ(FormatMillis(1500), "1.5s");
  EXPECT_EQ(FormatMillis(120000), "2min");
}

TEST(BenchFlagsTest, ParsesKeyValuePairs) {
  const char* argv[] = {"prog", "--events=5000", "--factor=1.5",
                        "--verbose", "--off=false"};
  bench::Flags flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("events", 0), 5000);
  EXPECT_DOUBLE_EQ(flags.GetDouble("factor", 0.0), 1.5);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_FALSE(flags.GetBool("off", true));
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
}

TEST(BenchRunnerTest, CollectsMetricsFromARealRun) {
  auto catalog = PaperCatalog();
  QuerySpec spec = CountQuery(Pattern::Plus(Pattern::Atom(0)));
  spec.window = WindowSpec::Tumbling(5);
  auto engine = testing::MakeGreta(catalog.get(), std::move(spec));
  Stream stream;
  for (Ts t = 0; t < 20; ++t) {
    stream.Append(
        EventBuilder(catalog.get(), "A", t).Set("attr", 1.0).Build());
  }
  bench::RunResult result = bench::RunStream(engine.get(), stream);
  EXPECT_EQ(result.engine, "GRETA");
  EXPECT_FALSE(result.dnf);
  EXPECT_EQ(result.rows_emitted, 4u);  // Windows [0,5)..[15,20).
  EXPECT_GT(result.throughput_eps, 0.0);
  EXPECT_GT(result.peak_memory_bytes, 0u);
  EXPECT_NE(result.LatencyCell(), "DNF");
}

}  // namespace
}  // namespace greta
