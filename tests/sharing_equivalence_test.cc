// Equivalence of the shared multi-query runtime against independent
// per-query GRETA engines: for every query of a workload, the rows drained
// from SharedWorkloadEngine::TakeResults(q) must match the rows of a
// dedicated GretaEngine running the same query alone — across semantics,
// window kinds, grouping, and negation-bearing workloads.

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "query/parser.h"
#include "sharing/shared_engine.h"
#include "tests/test_util.h"
#include "workload/stock.h"

namespace greta {
namespace {

using sharing::SharedEngineOptions;
using sharing::SharedWorkloadEngine;

QuerySpec Parse(const std::string& text, Catalog* catalog) {
  auto spec = ParseQuery(text, catalog);
  EXPECT_TRUE(spec.ok()) << text << ": " << spec.status().ToString();
  return std::move(spec).value();
}

// Runs the workload both ways and asserts per-query row equivalence.
// Returns the shared engine so callers can inspect its sharing plan.
std::unique_ptr<SharedWorkloadEngine> ExpectWorkloadEquivalent(
    const Catalog* catalog, const std::vector<QuerySpec>& workload,
    const Stream& stream, const SharedEngineOptions& options = {}) {
  auto shared = SharedWorkloadEngine::Create(catalog, workload, options);
  EXPECT_TRUE(shared.ok()) << shared.status().ToString();
  if (!shared.ok()) return nullptr;
  for (const Event& e : stream.events()) {
    Status s = shared.value()->Process(e);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  EXPECT_TRUE(shared.value()->Flush().ok());

  for (size_t q = 0; q < workload.size(); ++q) {
    auto independent =
        GretaEngine::Create(catalog, workload[q].Clone(), options.engine);
    EXPECT_TRUE(independent.ok()) << independent.status().ToString();
    if (!independent.ok()) return nullptr;
    std::vector<ResultRow> expected =
        testing::RunEngine(independent.value().get(), stream);
    std::vector<ResultRow> actual = shared.value()->TakeResults(q);
    std::string diff;
    EXPECT_TRUE(RowsEquivalent(actual, expected,
                               shared.value()->agg_plan_for(q), &diff))
        << "query " << q << ": " << diff;
  }
  return std::move(shared).value();
}

Stream StockStream(Catalog* catalog, double halt_probability = 0.0) {
  StockConfig config;
  config.seed = 7;
  config.num_companies = 4;
  config.num_sectors = 2;
  config.rate = 40;
  config.duration = 30;
  config.drift = 1.0;
  config.halt_probability = halt_probability;
  return GenerateStockStream(catalog, config);
}

std::vector<QuerySpec> AggregateVariants(Catalog* catalog,
                                         const std::string& window_clause) {
  const std::string tail =
      " PATTERN Stock S+ WHERE [company, sector] AND "
      "S.price > NEXT(S).price GROUP-BY sector" + window_clause;
  std::vector<QuerySpec> workload;
  workload.push_back(Parse("RETURN sector, COUNT(*)" + tail, catalog));
  workload.push_back(Parse("RETURN sector, SUM(S.price)" + tail, catalog));
  workload.push_back(
      Parse("RETURN sector, MIN(S.price), MAX(S.price)" + tail, catalog));
  workload.push_back(Parse("RETURN sector, COUNT(S)" + tail, catalog));
  workload.push_back(Parse("RETURN sector, AVG(S.volume)" + tail, catalog));
  return workload;
}

TEST(SharingEquivalenceTest, OverlappingAggregatesUnboundedWindow) {
  auto catalog = std::make_unique<Catalog>();
  Stream stream = StockStream(catalog.get());
  auto shared = ExpectWorkloadEquivalent(
      catalog.get(), AggregateVariants(catalog.get(), ""), stream);
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->sharing_plan().clusters.size(), 1u);
  EXPECT_EQ(shared->sharing_plan().num_shared_clusters(), 1u);
}

TEST(SharingEquivalenceTest, SlidingWindowsAndGrouping) {
  auto catalog = std::make_unique<Catalog>();
  Stream stream = StockStream(catalog.get());
  ExpectWorkloadEquivalent(
      catalog.get(),
      AggregateVariants(catalog.get(), " WITHIN 10 seconds SLIDE 2 seconds"),
      stream);
}

TEST(SharingEquivalenceTest, TumblingWindows) {
  auto catalog = std::make_unique<Catalog>();
  Stream stream = StockStream(catalog.get());
  ExpectWorkloadEquivalent(
      catalog.get(),
      AggregateVariants(catalog.get(), " WITHIN 5 seconds"), stream);
}

TEST(SharingEquivalenceTest, AcrossSemantics) {
  for (Semantics semantics :
       {Semantics::kSkipTillAnyMatch, Semantics::kSkipTillNextMatch,
        Semantics::kContiguous}) {
    auto catalog = std::make_unique<Catalog>();
    Stream stream = StockStream(catalog.get());
    SharedEngineOptions options;
    options.engine.semantics = semantics;
    ExpectWorkloadEquivalent(
        catalog.get(),
        AggregateVariants(catalog.get(), " WITHIN 10 seconds SLIDE 5 seconds"),
        stream, options);
  }
}

TEST(SharingEquivalenceTest, NegationWorkload) {
  auto catalog = std::make_unique<Catalog>();
  Stream stream = StockStream(catalog.get(), /*halt_probability=*/0.05);
  const std::string tail =
      " PATTERN SEQ(NOT Halt H, Stock S+) WHERE [company, sector] AND "
      "S.price > NEXT(S).price GROUP-BY sector WITHIN 10 seconds "
      "SLIDE 5 seconds";
  std::vector<QuerySpec> workload;
  workload.push_back(Parse("RETURN sector, COUNT(*)" + tail, catalog.get()));
  workload.push_back(
      Parse("RETURN sector, SUM(S.price)" + tail, catalog.get()));
  workload.push_back(
      Parse("RETURN sector, MAX(S.price)" + tail, catalog.get()));
  auto shared = ExpectWorkloadEquivalent(catalog.get(), workload, stream);
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->sharing_plan().num_shared_clusters(), 1u);
}

TEST(SharingEquivalenceTest, TrailingNegationWorkload) {
  auto catalog = std::make_unique<Catalog>();
  Stream stream = StockStream(catalog.get(), /*halt_probability=*/0.05);
  const std::string tail =
      " PATTERN SEQ(Stock S+, NOT Halt H) WHERE [company, sector] "
      "GROUP-BY sector WITHIN 8 seconds SLIDE 4 seconds";
  std::vector<QuerySpec> workload;
  workload.push_back(Parse("RETURN sector, COUNT(*)" + tail, catalog.get()));
  workload.push_back(
      Parse("RETURN sector, MIN(S.price)" + tail, catalog.get()));
  ExpectWorkloadEquivalent(catalog.get(), workload, stream);
}

// Acceptance criterion: a >= 8-query overlapping workload mixing sliding
// windows, grouping, negation and dedicated fallbacks — every query's
// shared-runtime output matches its independent engine exactly.
TEST(SharingEquivalenceTest, EightQueryMixedWorkload) {
  auto catalog = std::make_unique<Catalog>();
  Stream stream = StockStream(catalog.get(), /*halt_probability=*/0.05);

  std::vector<QuerySpec> workload;
  // Cluster A (4 queries): down-trend shape, sliding window.
  const std::string down =
      " PATTERN Stock S+ WHERE [company, sector] AND "
      "S.price > NEXT(S).price GROUP-BY sector WITHIN 10 seconds "
      "SLIDE 5 seconds";
  workload.push_back(Parse("RETURN sector, COUNT(*)" + down, catalog.get()));
  workload.push_back(
      Parse("RETURN sector, SUM(S.price)" + down, catalog.get()));
  workload.push_back(
      Parse("RETURN sector, MIN(S.price), MAX(S.price)" + down,
            catalog.get()));
  workload.push_back(Parse("RETURN sector, AVG(S.price)" + down,
                           catalog.get()));
  // Cluster B (3 queries): negation-guarded shape, sliding window, written
  // with different aliases to exercise normalization.
  const std::string neg_a =
      " PATTERN SEQ(NOT Halt H, Stock S+) WHERE [company, sector] AND "
      "S.price > NEXT(S).price GROUP-BY sector WITHIN 10 seconds "
      "SLIDE 2 seconds";
  const std::string neg_b =
      " PATTERN SEQ(NOT Halt X, Stock S+) WHERE [company, sector] AND "
      "S.price > NEXT(S).price GROUP-BY sector WITHIN 10 seconds "
      "SLIDE 2 seconds";
  workload.push_back(Parse("RETURN sector, COUNT(*)" + neg_a,
                           catalog.get()));
  workload.push_back(Parse("RETURN sector, COUNT(S)" + neg_a,
                           catalog.get()));
  workload.push_back(Parse("RETURN sector, SUM(S.price)" + neg_b,
                           catalog.get()));
  // Two singletons: dedicated fallback paths.
  workload.push_back(Parse(
      "RETURN COUNT(*) PATTERN SEQ(Stock S, Halt H) WHERE [sector] "
      "WITHIN 10 seconds",
      catalog.get()));
  workload.push_back(Parse(
      "RETURN sector, COUNT(*) PATTERN Stock S+ WHERE [company] AND "
      "S.volume > 20 GROUP-BY sector WITHIN 6 seconds SLIDE 3 seconds",
      catalog.get()));
  ASSERT_GE(workload.size(), 8u);

  auto shared = ExpectWorkloadEquivalent(catalog.get(), workload, stream);
  ASSERT_NE(shared, nullptr);
  // Clusters: down-trend (shared), negation (shared), two dedicated.
  EXPECT_EQ(shared->sharing_plan().clusters.size(), 4u);
  EXPECT_EQ(shared->sharing_plan().num_shared_clusters(), 2u);
}

TEST(SharingEquivalenceTest, ConjunctiveClusterSharesSingleSlot) {
  // Conjunctive patterns are COUNT(*)-only; a shared cluster keeps one
  // graph slot (the product is computed from slot 0) yet still answers
  // every query.
  auto catalog = testing::PaperCatalog();
  Stream stream = testing::Figure6Stream(catalog.get());
  std::vector<QuerySpec> workload;
  workload.push_back(
      Parse("RETURN COUNT(*) PATTERN A+ & SEQ(C, D)", catalog.get()));
  workload.push_back(
      Parse("RETURN COUNT(*) PATTERN A+ & SEQ(C, D)", catalog.get()));
  auto shared = ExpectWorkloadEquivalent(catalog.get(), workload, stream);
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->sharing_plan().num_shared_clusters(), 1u);
}

TEST(SharingEquivalenceTest, SharingDisabledStillEquivalent) {
  auto catalog = std::make_unique<Catalog>();
  Stream stream = StockStream(catalog.get());
  SharedEngineOptions options;
  options.sharing.enable_sharing = false;
  auto shared = ExpectWorkloadEquivalent(
      catalog.get(), AggregateVariants(catalog.get(), " WITHIN 10 seconds"),
      stream, options);
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->sharing_plan().num_shared_clusters(), 0u);
}

}  // namespace
}  // namespace greta
