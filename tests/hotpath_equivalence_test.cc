// Kernel equivalence suite: every propagation-kernel variant (COUNT-only
// modular / COUNT-only exact / generic; single-query, multi-query shared
// cells, partial sharing) must produce rows identical to the generic
// flag-tested path on randomized streams — the kernels change only how
// aggregate state moves, never what it computes. Plus Counter
// promotion-boundary tests at the u64 overflow edge, including an
// engine-level run whose trend count crosses 2^64.

#include <memory>
#include <string>
#include <vector>

#include "common/event_batch.h"
#include "common/kslack.h"
#include "common/random.h"
#include "gtest/gtest.h"
#include "query/parser.h"
#include "telemetry/telemetry.h"
#include "tests/test_util.h"
#include "workload/stock.h"

namespace greta {
namespace {

using testing::MakeGreta;
using testing::RunEngine;

std::unique_ptr<Catalog> FuzzCatalog() {
  auto catalog = std::make_unique<Catalog>();
  for (const char* name : {"A", "B", "C"}) {
    catalog->DefineType(name, {{"x", Value::Kind::kDouble},
                               {"g", Value::Kind::kInt}});
  }
  return catalog;
}

Stream FuzzStream(Catalog* catalog, uint64_t seed, int n) {
  Random rng(seed);
  const char* types[] = {"A", "B", "C"};
  Stream stream;
  Ts time = 0;
  for (int i = 0; i < n; ++i) {
    time += rng.UniformInt(0, 2);
    stream.Append(EventBuilder(catalog, types[rng.UniformInt(0, 2)], time)
                      .Set("x", rng.UniformDouble(0, 10))
                      .Set("g", rng.UniformInt(0, 2))
                      .Build());
  }
  return stream;
}

// Bit-exact row comparison: the kernels must not change results at all, so
// unlike RowsEquivalent there is no floating-point tolerance.
void ExpectIdenticalRows(const std::vector<ResultRow>& a,
                         const std::vector<ResultRow>& b,
                         const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].wid, b[i].wid) << label << " row " << i;
    ASSERT_EQ(a[i].group.size(), b[i].group.size()) << label << " row " << i;
    for (size_t g = 0; g < a[i].group.size(); ++g) {
      EXPECT_TRUE(a[i].group[g] == b[i].group[g]) << label << " row " << i;
    }
    EXPECT_EQ(a[i].aggs.count.ToDecimal(), b[i].aggs.count.ToDecimal())
        << label << " row " << i;
    EXPECT_EQ(a[i].aggs.type_count.ToDecimal(),
              b[i].aggs.type_count.ToDecimal())
        << label << " row " << i;
    EXPECT_EQ(a[i].aggs.min, b[i].aggs.min) << label << " row " << i;
    EXPECT_EQ(a[i].aggs.max, b[i].aggs.max) << label << " row " << i;
    EXPECT_EQ(a[i].aggs.sum, b[i].aggs.sum) << label << " row " << i;
  }
}

// Runs `spec` with kernels enabled and disabled and asserts identical rows.
void ExpectKernelMatchesGeneric(const Catalog* catalog, const QuerySpec& spec,
                                const Stream& stream, EngineOptions options,
                                const std::string& label) {
  options.enable_specialized_kernels = true;
  auto fast = MakeGreta(catalog, spec.Clone(), options);
  options.enable_specialized_kernels = false;
  auto generic = MakeGreta(catalog, spec.Clone(), options);
  std::vector<ResultRow> fast_rows = RunEngine(fast.get(), stream);
  std::vector<ResultRow> generic_rows = RunEngine(generic.get(), stream);
  ExpectIdenticalRows(fast_rows, generic_rows, label);
}

QuerySpec Parse(const std::string& text, Catalog* catalog) {
  auto spec = ParseQuery(text, catalog);
  EXPECT_TRUE(spec.ok()) << text << ": " << spec.status().ToString();
  return std::move(spec).value();
}

// Processes the stream WITHOUT draining rows (multi-query runtimes are
// drained per slot with TakeResultsFor afterwards; RunEngine would swallow
// every slot through TakeResults).
void ProcessStream(GretaEngine* engine, const Stream& stream) {
  for (const Event& e : stream.events()) {
    ASSERT_TRUE(engine->Process(e).ok());
  }
  ASSERT_TRUE(engine->Flush().ok());
}

TEST(HotpathEquivalence, SingleQueryKernelGrid) {
  auto catalog = FuzzCatalog();
  const char* aggs[] = {"COUNT(*)", "COUNT(S)", "SUM(S.x)",
                        "MIN(S.x), MAX(S.x)", "AVG(S.x)"};
  const char* patterns[] = {"A S+", "SEQ(A S+, B E)",
                            "SEQ(C H, A S+, B E)"};
  const char* windows[] = {"", " WITHIN 8 seconds SLIDE 4 seconds",
                           " WITHIN 10 seconds SLIDE 10 seconds"};
  for (CounterMode mode : {CounterMode::kModular, CounterMode::kExact}) {
    for (const char* agg : aggs) {
      for (const char* pattern : patterns) {
        for (const char* window : windows) {
          // COUNT(A)/attribute aggregates need the Kleene type in scope for
          // every pattern above (it is: S binds A).
          std::string text = "RETURN " + std::string(agg) + " PATTERN " +
                             pattern + " GROUP-BY g" + window;
          QuerySpec spec = Parse(text, catalog.get());
          Stream stream = FuzzStream(catalog.get(), 7, 120);
          EngineOptions options;
          options.counter_mode = mode;
          ExpectKernelMatchesGeneric(
              catalog.get(), spec, stream, options,
              text + (mode == CounterMode::kExact ? " [exact]"
                                                  : " [modular]"));
        }
      }
    }
  }
}

TEST(HotpathEquivalence, SemanticsAndPredicates) {
  auto catalog = FuzzCatalog();
  std::string text =
      "RETURN COUNT(*) PATTERN A S+ WHERE S.x < NEXT(S).x "
      "WITHIN 6 seconds SLIDE 3 seconds";
  QuerySpec spec = Parse(text, catalog.get());
  for (Semantics semantics :
       {Semantics::kSkipTillAnyMatch, Semantics::kSkipTillNextMatch,
        Semantics::kContiguous}) {
    Stream stream = FuzzStream(catalog.get(), 13, 150);
    EngineOptions options;
    options.semantics = semantics;
    ExpectKernelMatchesGeneric(catalog.get(), spec, stream, options,
                               text + " semantics=" +
                                   std::to_string(static_cast<int>(semantics)));
  }
}

TEST(HotpathEquivalence, NegationStaysGenericAndIdentical) {
  auto catalog = FuzzCatalog();
  for (const char* pattern :
       {"SEQ(A S+, NOT C N, B E)", "SEQ(A S+, NOT C N)",
        "SEQ(NOT C N, A S+)"}) {
    std::string text = "RETURN COUNT(*) PATTERN " + std::string(pattern) +
                       " WITHIN 8 seconds SLIDE 4 seconds";
    QuerySpec spec = Parse(text, catalog.get());
    Stream stream = FuzzStream(catalog.get(), 29, 150);
    ExpectKernelMatchesGeneric(catalog.get(), spec, stream, {}, text);
  }
}

TEST(HotpathEquivalence, MultiQuerySharedCells) {
  auto catalog = FuzzCatalog();
  // All-COUNT cluster exercises the multi-slot count kernel; the mixed
  // cluster must demote to the generic kernel and still match.
  const std::vector<std::vector<std::string>> workloads = {
      {"RETURN COUNT(*) PATTERN A S+ WITHIN 8 seconds SLIDE 4 seconds",
       "RETURN COUNT(*) PATTERN A S+ WITHIN 8 seconds SLIDE 4 seconds",
       "RETURN COUNT(*) PATTERN A S+ WITHIN 8 seconds SLIDE 4 seconds"},
      {"RETURN COUNT(*) PATTERN A S+ WITHIN 8 seconds SLIDE 4 seconds",
       "RETURN SUM(S.x) PATTERN A S+ WITHIN 8 seconds SLIDE 4 seconds",
       "RETURN MIN(S.x), MAX(S.x) PATTERN A S+ WITHIN 8 seconds SLIDE 4 "
       "seconds"}};
  for (const std::vector<std::string>& workload : workloads) {
    std::vector<QuerySpec> specs;
    for (const std::string& text : workload) {
      specs.push_back(Parse(text, catalog.get()));
    }
    std::vector<const QuerySpec*> spec_ptrs;
    for (const QuerySpec& s : specs) spec_ptrs.push_back(&s);

    Stream stream = FuzzStream(catalog.get(), 41, 150);
    EngineOptions options;
    options.enable_specialized_kernels = true;
    auto fast = GretaEngine::CreateMulti(catalog.get(), spec_ptrs, options);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    options.enable_specialized_kernels = false;
    auto generic =
        GretaEngine::CreateMulti(catalog.get(), spec_ptrs, options);
    ASSERT_TRUE(generic.ok()) << generic.status().ToString();

    ProcessStream(fast.value().get(), stream);
    ProcessStream(generic.value().get(), stream);
    for (size_t q = 0; q < specs.size(); ++q) {
      ExpectIdenticalRows(fast.value()->TakeResultsFor(q),
                          generic.value()->TakeResultsFor(q),
                          "multi-query slot " + std::to_string(q));
    }
  }
}

TEST(HotpathEquivalence, PartialSharingMatchesDedicatedKernels) {
  auto catalog = FuzzCatalog();
  // Shared Kleene core, differing suffixes and windows: the partial runtime
  // (its own snapshot path, arena-backed vertices) must match dedicated
  // engines running the specialized kernels.
  std::vector<QuerySpec> specs;
  specs.push_back(Parse(
      "RETURN COUNT(*) PATTERN A S+ WITHIN 8 seconds SLIDE 4 seconds",
      catalog.get()));
  specs.push_back(Parse(
      "RETURN COUNT(*) PATTERN SEQ(A S+, B E) WITHIN 4 seconds SLIDE 4 "
      "seconds",
      catalog.get()));
  std::vector<const QuerySpec*> spec_ptrs;
  for (const QuerySpec& s : specs) spec_ptrs.push_back(&s);

  Stream stream = FuzzStream(catalog.get(), 53, 150);
  auto partial = GretaEngine::CreatePartial(catalog.get(), spec_ptrs, {});
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  ProcessStream(partial.value().get(), stream);
  for (size_t q = 0; q < specs.size(); ++q) {
    auto dedicated = MakeGreta(catalog.get(), specs[q].Clone());
    std::vector<ResultRow> expected = RunEngine(dedicated.get(), stream);
    ExpectIdenticalRows(partial.value()->TakeResultsFor(q), expected,
                        "partial slot " + std::to_string(q));
  }
}

// Telemetry is observation only: the SAME engine/kernel grid run with the
// registry armed and disarmed must produce bit-identical rows — the
// instrumented hot paths (routing tallies, window-close flushes) may never
// leak into results.
TEST(HotpathEquivalence, TelemetryOnOffRowsIdentical) {
  telemetry::MetricRegistry& reg = telemetry::MetricRegistry::Default();
  auto catalog = FuzzCatalog();
  const char* queries[] = {
      "RETURN COUNT(*) PATTERN A S+ WITHIN 8 seconds SLIDE 4 seconds",
      "RETURN SUM(S.x) PATTERN SEQ(A S+, B E) WHERE S.x < NEXT(S).x "
      "WITHIN 6 seconds SLIDE 3 seconds",
  };
  for (const char* text : queries) {
    QuerySpec spec = Parse(text, catalog.get());
    Stream stream = FuzzStream(catalog.get(), 61, 150);

    reg.Reset();
    reg.set_enabled(true);  // before Create: instruments cache here
    auto armed = MakeGreta(catalog.get(), spec.Clone());
    std::vector<ResultRow> armed_rows = RunEngine(armed.get(), stream);
#if GRETA_TELEMETRY
    // The armed run actually recorded (otherwise this test is vacuous).
    bool routed = false;
    for (const auto& c : reg.ScrapeCounters()) {
      if (c.name == "greta_core_events_routed_total" && c.value > 0) {
        routed = true;
      }
    }
    EXPECT_TRUE(routed) << text;
#endif

    reg.Reset();
    reg.set_enabled(false);
    auto disarmed = MakeGreta(catalog.get(), spec.Clone());
    std::vector<ResultRow> disarmed_rows = RunEngine(disarmed.get(), stream);
    reg.set_enabled(true);

    ExpectIdenticalRows(armed_rows, disarmed_rows,
                        std::string("telemetry on/off: ") + text);
  }
  reg.Reset();
}

// --- Columnar batch path (ProcessBatch) vs scalar (Process) ---

// Packs the events into columnar batches of `batch_size` rows and feeds
// them through ProcessBatch, draining emitted rows after every batch. Takes
// a raw vector (not a Stream) so locally disordered wires can exercise
// sort_within_batch.
std::vector<ResultRow> RunEngineBatched(EngineInterface* engine,
                                        const std::vector<Event>& events,
                                        size_t batch_size,
                                        bool sort_within_batch = false) {
  std::vector<ResultRow> rows;
  EventBatch batch;
  batch.reserve(batch_size);
  size_t i = 0;
  while (i < events.size()) {
    batch.clear();
    for (; i < events.size() && batch.size() < batch_size; ++i) {
      batch.Append(events[i]);
    }
    if (sort_within_batch) batch.SortByTime();
    Status s = engine->ProcessBatch(batch);
    EXPECT_TRUE(s.ok()) << s.ToString();
    if (!s.ok()) return rows;
    for (ResultRow& row : engine->TakeResults()) rows.push_back(std::move(row));
  }
  Status s = engine->Flush();
  EXPECT_TRUE(s.ok()) << s.ToString();
  for (ResultRow& row : engine->TakeResults()) rows.push_back(std::move(row));
  return rows;
}

std::vector<ResultRow> RunEngineBatched(EngineInterface* engine,
                                        const Stream& stream,
                                        size_t batch_size) {
  return RunEngineBatched(engine, stream.events(), batch_size);
}

// Like ProcessStream but through ProcessBatch (multi-query engines drain per
// slot afterwards).
void ProcessStreamBatched(GretaEngine* engine, const Stream& stream,
                          size_t batch_size) {
  EventBatch batch;
  batch.reserve(batch_size);
  const std::vector<Event>& events = stream.events();
  size_t i = 0;
  while (i < events.size()) {
    batch.clear();
    for (; i < events.size() && batch.size() < batch_size; ++i) {
      batch.Append(events[i]);
    }
    ASSERT_TRUE(engine->ProcessBatch(batch).ok());
  }
  ASSERT_TRUE(engine->Flush().ok());
}

// One scalar run, then batched runs at ragged sizes (1 = degenerate
// per-event batches, 7 = misaligned with every window and same-timestamp
// run, 256 = whole stream in one batch), plus an enable_batch_kernels=false
// ablation that forces the row-at-a-time path through the batch entry
// point. All rows bit-identical.
void ExpectBatchMatchesScalar(const Catalog* catalog, const QuerySpec& spec,
                              const Stream& stream, EngineOptions options,
                              const std::string& label) {
  auto scalar = MakeGreta(catalog, spec.Clone(), options);
  std::vector<ResultRow> scalar_rows = RunEngine(scalar.get(), stream);
  for (size_t batch_size : {size_t{1}, size_t{7}, size_t{256}}) {
    auto batched = MakeGreta(catalog, spec.Clone(), options);
    ExpectIdenticalRows(scalar_rows,
                        RunEngineBatched(batched.get(), stream, batch_size),
                        label + " batch=" + std::to_string(batch_size));
  }
  EngineOptions ablated = options;
  ablated.enable_batch_kernels = false;
  auto generic = MakeGreta(catalog, spec.Clone(), ablated);
  ExpectIdenticalRows(scalar_rows, RunEngineBatched(generic.get(), stream, 64),
                      label + " [batch kernels off]");
}

TEST(BatchEquivalence, SingleQueryKernelGrid) {
  auto catalog = FuzzCatalog();
  const char* aggs[] = {"COUNT(*)", "SUM(S.x)"};
  const char* patterns[] = {"A S+", "SEQ(A S+, B E)"};
  // Unbounded, sliding and tumbling windows: every cell of this grid is now
  // covered by an amortized run kernel (shared-fold or suffix-merge for the
  // predicate-free queries); the rows must stay bit-identical regardless of
  // which strategy the kernel picks.
  const char* windows[] = {"", " WITHIN 8 seconds SLIDE 4 seconds",
                           " WITHIN 10 seconds SLIDE 10 seconds"};
  for (CounterMode mode : {CounterMode::kModular, CounterMode::kExact}) {
    for (const char* agg : aggs) {
      for (const char* pattern : patterns) {
        for (const char* window : windows) {
          std::string text = "RETURN " + std::string(agg) + " PATTERN " +
                             pattern + " GROUP-BY g" + window;
          QuerySpec spec = Parse(text, catalog.get());
          Stream stream = FuzzStream(catalog.get(), 101, 150);
          EngineOptions options;
          options.counter_mode = mode;
          ExpectBatchMatchesScalar(
              catalog.get(), spec, stream, options,
              text + (mode == CounterMode::kExact ? " [exact]"
                                                  : " [modular]"));
        }
      }
    }
  }
}

TEST(BatchEquivalence, SemanticsAndPredicates) {
  auto catalog = FuzzCatalog();
  // The NEXT predicate populates follow_links_, which disqualifies the
  // batch fast path per call; the plain query keeps it.
  for (const char* text :
       {"RETURN COUNT(*) PATTERN A S+ WITHIN 6 seconds SLIDE 6 seconds",
        "RETURN COUNT(*) PATTERN A S+ WHERE S.x < NEXT(S).x "
        "WITHIN 6 seconds SLIDE 3 seconds"}) {
    QuerySpec spec = Parse(text, catalog.get());
    for (Semantics semantics :
         {Semantics::kSkipTillAnyMatch, Semantics::kSkipTillNextMatch,
          Semantics::kContiguous}) {
      Stream stream = FuzzStream(catalog.get(), 103, 150);
      EngineOptions options;
      options.semantics = semantics;
      ExpectBatchMatchesScalar(
          catalog.get(), spec, stream, options,
          std::string(text) + " semantics=" +
              std::to_string(static_cast<int>(semantics)));
    }
  }
}

TEST(BatchEquivalence, NegationFallsBackAndMatches) {
  auto catalog = FuzzCatalog();
  for (const char* pattern :
       {"SEQ(A S+, NOT C N, B E)", "SEQ(NOT C N, A S+)"}) {
    std::string text = "RETURN COUNT(*) PATTERN " + std::string(pattern) +
                       " WITHIN 8 seconds SLIDE 8 seconds";
    QuerySpec spec = Parse(text, catalog.get());
    Stream stream = FuzzStream(catalog.get(), 107, 150);
    ExpectBatchMatchesScalar(catalog.get(), spec, stream, {}, text);
  }
}

// Tumbling boundaries land mid-batch: two events per timestamp so batch
// splits of 3 and 5 cut through same-timestamp runs AND window closes.
TEST(BatchEquivalence, CrossWindowBoundarySplits) {
  auto catalog = FuzzCatalog();
  QuerySpec spec = Parse(
      "RETURN COUNT(*) PATTERN A S+ WITHIN 4 seconds SLIDE 4 seconds",
      catalog.get());
  Random rng(109);
  const char* types[] = {"A", "B", "C"};
  Stream stream;
  for (Ts t = 0; t < 30; ++t) {
    for (int dup = 0; dup < 2; ++dup) {
      stream.Append(EventBuilder(catalog.get(), types[rng.UniformInt(0, 2)], t)
                        .Set("x", rng.UniformDouble(0, 10))
                        .Set("g", rng.UniformInt(0, 2))
                        .Build());
    }
  }
  auto scalar = MakeGreta(catalog.get(), spec.Clone());
  std::vector<ResultRow> scalar_rows = RunEngine(scalar.get(), stream);
  for (size_t batch_size : {size_t{3}, size_t{5}}) {
    auto batched = MakeGreta(catalog.get(), spec.Clone());
    ExpectIdenticalRows(scalar_rows,
                        RunEngineBatched(batched.get(), stream, batch_size),
                        "window split batch=" + std::to_string(batch_size));
  }
}

// Batched routing must broadcast exactly like scalar routing when a type
// lacks a key attribute (delivery to every agreeing partition, replay into
// partitions created later in the same run).
TEST(BatchEquivalence, BroadcastRoutingInBatches) {
  Catalog catalog;
  catalog.DefineType("A", {{"x", Value::Kind::kDouble},
                           {"g", Value::Kind::kInt}});
  catalog.DefineType("B", {{"x", Value::Kind::kDouble}});  // no g: broadcasts
  QuerySpec spec = Parse(
      "RETURN COUNT(*) PATTERN SEQ(A S+, B E) GROUP-BY g "
      "WITHIN 8 seconds SLIDE 4 seconds",
      &catalog);
  Random rng(113);
  Stream stream;
  Ts time = 0;
  for (int i = 0; i < 150; ++i) {
    time += rng.UniformInt(0, 2);
    if (rng.UniformInt(0, 3) == 0) {
      stream.Append(EventBuilder(&catalog, "B", time)
                        .Set("x", rng.UniformDouble(0, 10))
                        .Build());
    } else {
      stream.Append(EventBuilder(&catalog, "A", time)
                        .Set("x", rng.UniformDouble(0, 10))
                        .Set("g", rng.UniformInt(0, 2))
                        .Build());
    }
  }
  ExpectBatchMatchesScalar(&catalog, spec, stream, {}, "broadcast");
}

TEST(BatchEquivalence, MultiQuerySharedCells) {
  auto catalog = FuzzCatalog();
  const std::vector<std::string> workload = {
      "RETURN COUNT(*) PATTERN A S+ WITHIN 8 seconds SLIDE 4 seconds",
      "RETURN SUM(S.x) PATTERN A S+ WITHIN 8 seconds SLIDE 4 seconds",
      "RETURN COUNT(*) PATTERN A S+ WITHIN 8 seconds SLIDE 4 seconds"};
  std::vector<QuerySpec> specs;
  for (const std::string& text : workload) {
    specs.push_back(Parse(text, catalog.get()));
  }
  std::vector<const QuerySpec*> spec_ptrs;
  for (const QuerySpec& s : specs) spec_ptrs.push_back(&s);

  Stream stream = FuzzStream(catalog.get(), 127, 150);
  auto scalar = GretaEngine::CreateMulti(catalog.get(), spec_ptrs, {});
  ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
  auto batched = GretaEngine::CreateMulti(catalog.get(), spec_ptrs, {});
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();

  ProcessStream(scalar.value().get(), stream);
  ProcessStreamBatched(batched.value().get(), stream, 7);
  for (size_t q = 0; q < specs.size(); ++q) {
    ExpectIdenticalRows(scalar.value()->TakeResultsFor(q),
                        batched.value()->TakeResultsFor(q),
                        "multi-query batched slot " + std::to_string(q));
  }
}

TEST(BatchEquivalence, PartialSharingBatchVsScalar) {
  auto catalog = FuzzCatalog();
  std::vector<QuerySpec> specs;
  specs.push_back(Parse(
      "RETURN COUNT(*) PATTERN A S+ WITHIN 8 seconds SLIDE 4 seconds",
      catalog.get()));
  specs.push_back(Parse(
      "RETURN COUNT(*) PATTERN SEQ(A S+, B E) WITHIN 4 seconds SLIDE 4 "
      "seconds",
      catalog.get()));
  std::vector<const QuerySpec*> spec_ptrs;
  for (const QuerySpec& s : specs) spec_ptrs.push_back(&s);

  Stream stream = FuzzStream(catalog.get(), 131, 150);
  auto scalar = GretaEngine::CreatePartial(catalog.get(), spec_ptrs, {});
  ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
  auto batched = GretaEngine::CreatePartial(catalog.get(), spec_ptrs, {});
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();

  ProcessStream(scalar.value().get(), stream);
  ProcessStreamBatched(batched.value().get(), stream, 7);
  for (size_t q = 0; q < specs.size(); ++q) {
    ExpectIdenticalRows(scalar.value()->TakeResultsFor(q),
                        batched.value()->TakeResultsFor(q),
                        "partial batched slot " + std::to_string(q));
  }
}

// Sliding windows with k = 2 and k = 5 panes per event: the run kernel must
// produce the identical per-window fan-out the scalar path gets from
// FirstWindowOf/LastWindowOf, including events whose run straddles a pane
// boundary. With a NEXT predicate the lower time bound varies per event, so
// the suffix-merge strategy (COUNT) is exercised alongside shared-fold.
TEST(BatchEquivalence, SlidingWindows) {
  auto catalog = FuzzCatalog();
  for (const char* text :
       {"RETURN COUNT(*) PATTERN A S+ GROUP-BY g "
        "WITHIN 8 seconds SLIDE 4 seconds",
        "RETURN COUNT(*) PATTERN A S+ GROUP-BY g "
        "WITHIN 10 seconds SLIDE 2 seconds",
        "RETURN COUNT(*) PATTERN A S+ WHERE S.x < NEXT(S).x "
        "WITHIN 10 seconds SLIDE 2 seconds",
        "RETURN COUNT(*) PATTERN SEQ(A S+, B E) WHERE S.x < NEXT(S).x "
        "WITHIN 8 seconds SLIDE 4 seconds"}) {
    QuerySpec spec = Parse(text, catalog.get());
    Stream stream = FuzzStream(catalog.get(), 157, 150);
    ExpectBatchMatchesScalar(catalog.get(), spec, stream, {}, text);
  }
}

// SUM/MIN/MAX/AVG drive the generic fold through the batch kernels.
// Without a predicate every event of a run sees the same bounds
// (shared-fold, valid even for order-sensitive FP sums); with a NEXT
// predicate SUM/AVG must take the per-event strategy (FP addition does not
// commute) while MIN/MAX may suffix-merge — all bit-identical to scalar.
TEST(BatchEquivalence, AttributeAggregates) {
  auto catalog = FuzzCatalog();
  const char* aggs[] = {"SUM(S.x)", "MIN(S.x)", "MAX(S.x)", "AVG(S.x)",
                        "MIN(S.x), MAX(S.x)"};
  const char* wheres[] = {"", " WHERE S.x < NEXT(S).x"};
  const char* windows[] = {" WITHIN 10 seconds SLIDE 10 seconds",
                           " WITHIN 8 seconds SLIDE 4 seconds"};
  for (const char* agg : aggs) {
    for (const char* where : wheres) {
      for (const char* window : windows) {
        std::string text = "RETURN " + std::string(agg) + " PATTERN A S+" +
                           where + " GROUP-BY g" + window;
        QuerySpec spec = Parse(text, catalog.get());
        Stream stream = FuzzStream(catalog.get(), 163, 150);
        ExpectBatchMatchesScalar(catalog.get(), spec, stream, {}, text);
      }
    }
  }
}

// Residual predicates (not expressible as a time/attribute range over the
// skip-list key) no longer disqualify the batch path: the per-event strategy
// compacts collected predecessors through the compiled edge filters. The
// arithmetic conjunct is entirely non-extractable, so every edge goes
// through the residual filter.
TEST(BatchEquivalence, ResidualPredicates) {
  auto catalog = FuzzCatalog();
  for (const char* text :
       {"RETURN COUNT(*) PATTERN A S+ "
        "WHERE S.x < NEXT(S).x AND S.g >= NEXT(S).g "
        "WITHIN 8 seconds SLIDE 4 seconds",
        "RETURN SUM(S.x) PATTERN A S+ "
        "WHERE S.x < NEXT(S).x AND S.g >= NEXT(S).g "
        "WITHIN 10 seconds SLIDE 10 seconds",
        "RETURN COUNT(*) PATTERN A S+ WHERE S.x + S.g < NEXT(S).x "
        "WITHIN 8 seconds SLIDE 4 seconds"}) {
    QuerySpec spec = Parse(text, catalog.get());
    Stream stream = FuzzStream(catalog.get(), 167, 150);
    ExpectBatchMatchesScalar(catalog.get(), spec, stream, {}, text);
  }
}

// Partial sharing with attribute aggregates at ragged batch sizes: the
// batched snapshot kernel must fill the same (snapshot, fold-slot) cells as
// InsertAtStatePartial, including the per-query handoff at suffix states.
TEST(BatchEquivalence, PartialSharingBatchedAggregates) {
  auto catalog = FuzzCatalog();
  std::vector<QuerySpec> specs;
  specs.push_back(Parse(
      "RETURN SUM(S.x) PATTERN A S+ WITHIN 8 seconds SLIDE 4 seconds",
      catalog.get()));
  specs.push_back(Parse(
      "RETURN COUNT(*) PATTERN SEQ(A S+, B E) WITHIN 4 seconds SLIDE 4 "
      "seconds",
      catalog.get()));
  std::vector<const QuerySpec*> spec_ptrs;
  for (const QuerySpec& s : specs) spec_ptrs.push_back(&s);

  Stream stream = FuzzStream(catalog.get(), 173, 150);
  auto scalar = GretaEngine::CreatePartial(catalog.get(), spec_ptrs, {});
  ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
  ProcessStream(scalar.value().get(), stream);
  std::vector<std::vector<ResultRow>> expected;
  for (size_t q = 0; q < specs.size(); ++q) {
    expected.push_back(scalar.value()->TakeResultsFor(q));
  }
  for (size_t batch_size : {size_t{1}, size_t{7}, size_t{256}}) {
    auto batched = GretaEngine::CreatePartial(catalog.get(), spec_ptrs, {});
    ASSERT_TRUE(batched.ok()) << batched.status().ToString();
    ProcessStreamBatched(batched.value().get(), stream, batch_size);
    for (size_t q = 0; q < specs.size(); ++q) {
      ExpectIdenticalRows(batched.value()->TakeResultsFor(q), expected[q],
                          "partial agg slot " + std::to_string(q) +
                              " batch=" + std::to_string(batch_size));
    }
  }
}

// The engine tallies which rows took an amortized kernel and which fell
// back (and why); the aggregate surfaces through EngineStats. These are
// coverage guards: if a future change silently disqualifies an eligible
// plan, batch_rows_fast drops to zero here before any benchmark notices.
TEST(BatchEquivalence, FallbackAndStrategyCounters) {
  auto catalog = FuzzCatalog();
  Stream stream = FuzzStream(catalog.get(), 179, 150);

  auto run_batched = [&](const QuerySpec& spec, EngineOptions options) {
    auto engine = MakeGreta(catalog.get(), spec.Clone(), options);
    RunEngineBatched(engine.get(), stream.events(), 16);
    engine->RefreshStats();
    return engine->stats();
  };

  // Eligible plans — sliding COUNT, SUM, residual predicate — are fully
  // covered: no row falls back.
  for (const char* text :
       {"RETURN COUNT(*) PATTERN A S+ WITHIN 10 seconds SLIDE 2 seconds",
        "RETURN SUM(S.x) PATTERN A S+ WITHIN 8 seconds SLIDE 4 seconds",
        "RETURN COUNT(*) PATTERN A S+ WHERE S.x + S.g < NEXT(S).x "
        "WITHIN 8 seconds SLIDE 4 seconds"}) {
    EngineStats stats = run_batched(Parse(text, catalog.get()), {});
    EXPECT_GT(stats.batch_rows_fast, 0u) << text;
    EXPECT_EQ(stats.batch_rows_fallback, 0u) << text;
  }

  // Kernels disabled: everything falls back, nothing runs fast.
  {
    QuerySpec spec = Parse(
        "RETURN COUNT(*) PATTERN A S+ WITHIN 8 seconds SLIDE 4 seconds",
        catalog.get());
    EngineOptions options;
    options.enable_batch_kernels = false;
    EngineStats stats = run_batched(spec, options);
    EXPECT_EQ(stats.batch_rows_fast, 0u);
    EXPECT_GT(stats.batch_rows_fallback, 0u);
  }

  // Restricted semantics: the plan is ineligible (edge sets are not
  // run-stable), so the batch entry point falls back row-wise.
  {
    QuerySpec spec = Parse(
        "RETURN COUNT(*) PATTERN A S+ WITHIN 8 seconds SLIDE 4 seconds",
        catalog.get());
    EngineOptions options;
    options.semantics = Semantics::kSkipTillNextMatch;
    EngineStats stats = run_batched(spec, options);
    EXPECT_EQ(stats.batch_rows_fast, 0u);
    EXPECT_GT(stats.batch_rows_fallback, 0u);
  }

  // Negation splits the pattern into alternative graphs whose marking scan
  // is inherently per-event.
  {
    QuerySpec spec = Parse(
        "RETURN COUNT(*) PATTERN SEQ(A S+, NOT C N, B E) "
        "WITHIN 8 seconds SLIDE 8 seconds",
        catalog.get());
    EngineStats stats = run_batched(spec, {});
    EXPECT_EQ(stats.batch_rows_fast, 0u);
    EXPECT_GT(stats.batch_rows_fallback, 0u);
  }

#if GRETA_TELEMETRY
  // The registry sees the same tallies, labelled by reason and strategy.
  telemetry::MetricRegistry& reg = telemetry::MetricRegistry::Default();
  reg.Reset();
  reg.set_enabled(true);
  {
    QuerySpec spec = Parse(
        "RETURN COUNT(*) PATTERN A S+ WITHIN 10 seconds SLIDE 2 seconds",
        catalog.get());
    auto engine = MakeGreta(catalog.get(), spec.Clone(), {});
    RunEngineBatched(engine.get(), stream.events(), 16);
  }
  uint64_t fast_rows = 0, fallback_rows = 0;
  for (const auto& c : reg.ScrapeCounters()) {
    if (c.name.rfind("greta_core_batch_rows_total", 0) == 0) {
      fast_rows += c.value;
    } else if (c.name.rfind("greta_core_batch_fallback_rows_total", 0) == 0) {
      fallback_rows += c.value;
    }
  }
  EXPECT_GT(fast_rows, 0u);
  EXPECT_EQ(fallback_rows, 0u);
  reg.Reset();
#endif
}

// Out-of-order front end: a jittered wire stream goes through the k-slack
// buffer, whose in-order releases are packed into batches — identical to
// feeding each released event through Process.
TEST(BatchEquivalence, KSlackReleasedBatches) {
  auto catalog = FuzzCatalog();
  QuerySpec spec = Parse(
      "RETURN COUNT(*) PATTERN A S+ WITHIN 6 seconds SLIDE 3 seconds",
      catalog.get());
  std::vector<Event> wire = FuzzStream(catalog.get(), 137, 150).events();
  Random rng(139);
  for (size_t i = 0; i + 1 < wire.size(); i += 2) {
    if (rng.UniformInt(0, 1) == 1) std::swap(wire[i], wire[i + 1]);
  }
  KSlackBuffer buffer(/*slack=*/3);
  Stream released;
  for (Event& e : wire) {
    for (Event& r : buffer.Push(std::move(e))) released.Append(std::move(r));
  }
  for (Event& r : buffer.Flush()) released.Append(std::move(r));
  ASSERT_EQ(buffer.dropped(), 0u);

  auto scalar = MakeGreta(catalog.get(), spec.Clone());
  std::vector<ResultRow> scalar_rows = RunEngine(scalar.get(), released);
  for (size_t batch_size : {size_t{1}, size_t{7}, size_t{256}}) {
    auto batched = MakeGreta(catalog.get(), spec.Clone());
    ExpectIdenticalRows(scalar_rows,
                        RunEngineBatched(batched.get(), released, batch_size),
                        "kslack batch=" + std::to_string(batch_size));
  }
}

// sort_within_batch repairs disorder that is confined to a batch: swapping
// unequal-timestamp neighbours at even offsets keeps every inversion inside
// one batch of 8, and the stable SortByTime restores the original order.
TEST(BatchEquivalence, SortWithinBatchRepairsLocalDisorder) {
  auto catalog = FuzzCatalog();
  QuerySpec spec = Parse(
      "RETURN COUNT(*) PATTERN A S+ WITHIN 6 seconds SLIDE 3 seconds",
      catalog.get());
  Stream ordered = FuzzStream(catalog.get(), 149, 152);
  std::vector<Event> wire = ordered.events();
  Random rng(151);
  for (size_t i = 0; i + 1 < wire.size(); i += 2) {
    if (wire[i].time != wire[i + 1].time && rng.UniformInt(0, 1) == 1) {
      std::swap(wire[i], wire[i + 1]);
    }
  }
  auto scalar = MakeGreta(catalog.get(), spec.Clone());
  std::vector<ResultRow> scalar_rows = RunEngine(scalar.get(), ordered);
  auto batched = MakeGreta(catalog.get(), spec.Clone());
  ExpectIdenticalRows(
      scalar_rows,
      RunEngineBatched(batched.get(), wire, 8, /*sort_within_batch=*/true),
      "sort_within_batch");
}

TEST(BatchEquivalence, DisorderedBatchesRejected) {
  auto catalog = FuzzCatalog();
  QuerySpec spec = Parse("RETURN COUNT(*) PATTERN A S+", catalog.get());
  auto engine = MakeGreta(catalog.get(), spec.Clone());
  auto make = [&](Ts t) {
    return EventBuilder(catalog.get(), "A", t).Set("x", 1.0).Set("g", 0)
        .Build();
  };
  EventBatch unsorted;
  unsorted.Append(make(5));
  unsorted.Append(make(3));
  ASSERT_FALSE(unsorted.time_ordered());
  EXPECT_FALSE(engine->ProcessBatch(unsorted).ok());

  EventBatch first;
  first.Append(make(10));
  ASSERT_TRUE(engine->ProcessBatch(first).ok());
  // The watermark advanced to 10, so a batch starting earlier regresses.
  EventBatch regress;
  regress.Append(make(7));
  EXPECT_FALSE(engine->ProcessBatch(regress).ok());
  // Empty batches are harmless (watermark-only heartbeats).
  EventBatch empty;
  EXPECT_TRUE(engine->ProcessBatch(empty).ok());
}

// --- Counter promotion boundary (u64 overflow edge) ---

TEST(CounterPromotion, AddOneAtMaxPromotesExact) {
  Counter c(~uint64_t{0});
  c.AddOne(CounterMode::kExact);
  EXPECT_EQ(c.ToDecimal(), "18446744073709551616");  // 2^64
  EXPECT_EQ(c.Low64(), 0u);
  EXPECT_FALSE(c.IsZero());
  c.AddOne(CounterMode::kExact);
  EXPECT_EQ(c.ToDecimal(), "18446744073709551617");
}

TEST(CounterPromotion, AddOneAtMaxWrapsModular) {
  Counter c(~uint64_t{0});
  c.AddOne(CounterMode::kModular);
  EXPECT_TRUE(c.IsZero());
  EXPECT_EQ(c.ToDecimal(), "0");
}

TEST(CounterPromotion, AddCrossingBoundary) {
  Counter a(uint64_t{1} << 63);
  Counter b(uint64_t{1} << 63);
  a.Add(b, CounterMode::kExact);
  EXPECT_EQ(a.ToDecimal(), "18446744073709551616");
  // One below the edge stays un-promoted.
  Counter c(~uint64_t{0} - 1);
  Counter one(1);
  c.Add(one, CounterMode::kExact);
  EXPECT_EQ(c.ApproxHeapBytes(), 0u);  // still the inline u64
  EXPECT_EQ(c.Low64(), ~uint64_t{0});
  // Modular wraps silently.
  Counter d(~uint64_t{0});
  d.Add(one, CounterMode::kModular);
  EXPECT_TRUE(d.IsZero());
}

TEST(CounterPromotion, PromotedAccumulatesFurtherAdds) {
  Counter promoted(~uint64_t{0});
  promoted.AddOne(CounterMode::kExact);  // 2^64, promoted
  Counter plain(5);
  promoted.Add(plain, CounterMode::kExact);
  EXPECT_EQ(promoted.ToDecimal(), "18446744073709551621");
  // Copies of promoted counters are deep.
  Counter copy = promoted;
  copy.AddOne(CounterMode::kExact);
  EXPECT_EQ(promoted.ToDecimal(), "18446744073709551621");
  EXPECT_EQ(copy.ToDecimal(), "18446744073709551622");
}

// Engine-level promotion: n same-type events under an unbounded window give
// 2^n - 1 trends (every non-empty subsequence), so n = 70 drives the
// COUNT(*)-exact kernel across the u64 overflow edge mid-stream. The
// modular engine must agree mod 2^64.
TEST(CounterPromotion, EngineCountCrossesU64Boundary) {
  auto catalog = FuzzCatalog();
  QuerySpec spec = Parse("RETURN COUNT(*) PATTERN A S+", catalog.get());
  Stream stream;
  const int n = 70;
  for (int i = 0; i < n; ++i) {
    stream.Append(EventBuilder(catalog.get(), "A", i + 1)
                      .Set("x", 1.0)
                      .Set("g", 0)
                      .Build());
  }

  // Expected 2^70 - 1 via the Counter itself: x -> 2x + 1, n times.
  Counter expected;
  for (int i = 0; i < n; ++i) {
    Counter copy = expected;
    expected.Add(copy, CounterMode::kExact);
    expected.AddOne(CounterMode::kExact);
  }

  EngineOptions exact;
  exact.counter_mode = CounterMode::kExact;
  auto exact_engine = MakeGreta(catalog.get(), spec.Clone(), exact);
  std::vector<ResultRow> exact_rows =
      RunEngine(exact_engine.get(), stream);
  ASSERT_EQ(exact_rows.size(), 1u);
  EXPECT_EQ(exact_rows[0].aggs.count.ToDecimal(), expected.ToDecimal());

  EngineOptions modular;
  modular.counter_mode = CounterMode::kModular;
  auto modular_engine = MakeGreta(catalog.get(), spec.Clone(), modular);
  std::vector<ResultRow> modular_rows =
      RunEngine(modular_engine.get(), stream);
  ASSERT_EQ(modular_rows.size(), 1u);
  EXPECT_EQ(modular_rows[0].aggs.count.Low64(), expected.Low64());

  // And the exact engine agrees with its generic-kernel twin bit for bit.
  exact.enable_specialized_kernels = false;
  auto generic_engine = MakeGreta(catalog.get(), spec.Clone(), exact);
  std::vector<ResultRow> generic_rows =
      RunEngine(generic_engine.get(), stream);
  ExpectIdenticalRows(exact_rows, generic_rows, "overflow exact-vs-generic");
}

}  // namespace
}  // namespace greta
