// Kernel equivalence suite: every propagation-kernel variant (COUNT-only
// modular / COUNT-only exact / generic; single-query, multi-query shared
// cells, partial sharing) must produce rows identical to the generic
// flag-tested path on randomized streams — the kernels change only how
// aggregate state moves, never what it computes. Plus Counter
// promotion-boundary tests at the u64 overflow edge, including an
// engine-level run whose trend count crosses 2^64.

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "query/parser.h"
#include "telemetry/telemetry.h"
#include "tests/test_util.h"
#include "workload/stock.h"

namespace greta {
namespace {

using testing::MakeGreta;
using testing::RunEngine;

std::unique_ptr<Catalog> FuzzCatalog() {
  auto catalog = std::make_unique<Catalog>();
  for (const char* name : {"A", "B", "C"}) {
    catalog->DefineType(name, {{"x", Value::Kind::kDouble},
                               {"g", Value::Kind::kInt}});
  }
  return catalog;
}

Stream FuzzStream(Catalog* catalog, uint64_t seed, int n) {
  Random rng(seed);
  const char* types[] = {"A", "B", "C"};
  Stream stream;
  Ts time = 0;
  for (int i = 0; i < n; ++i) {
    time += rng.UniformInt(0, 2);
    stream.Append(EventBuilder(catalog, types[rng.UniformInt(0, 2)], time)
                      .Set("x", rng.UniformDouble(0, 10))
                      .Set("g", rng.UniformInt(0, 2))
                      .Build());
  }
  return stream;
}

// Bit-exact row comparison: the kernels must not change results at all, so
// unlike RowsEquivalent there is no floating-point tolerance.
void ExpectIdenticalRows(const std::vector<ResultRow>& a,
                         const std::vector<ResultRow>& b,
                         const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].wid, b[i].wid) << label << " row " << i;
    ASSERT_EQ(a[i].group.size(), b[i].group.size()) << label << " row " << i;
    for (size_t g = 0; g < a[i].group.size(); ++g) {
      EXPECT_TRUE(a[i].group[g] == b[i].group[g]) << label << " row " << i;
    }
    EXPECT_EQ(a[i].aggs.count.ToDecimal(), b[i].aggs.count.ToDecimal())
        << label << " row " << i;
    EXPECT_EQ(a[i].aggs.type_count.ToDecimal(),
              b[i].aggs.type_count.ToDecimal())
        << label << " row " << i;
    EXPECT_EQ(a[i].aggs.min, b[i].aggs.min) << label << " row " << i;
    EXPECT_EQ(a[i].aggs.max, b[i].aggs.max) << label << " row " << i;
    EXPECT_EQ(a[i].aggs.sum, b[i].aggs.sum) << label << " row " << i;
  }
}

// Runs `spec` with kernels enabled and disabled and asserts identical rows.
void ExpectKernelMatchesGeneric(const Catalog* catalog, const QuerySpec& spec,
                                const Stream& stream, EngineOptions options,
                                const std::string& label) {
  options.enable_specialized_kernels = true;
  auto fast = MakeGreta(catalog, spec.Clone(), options);
  options.enable_specialized_kernels = false;
  auto generic = MakeGreta(catalog, spec.Clone(), options);
  std::vector<ResultRow> fast_rows = RunEngine(fast.get(), stream);
  std::vector<ResultRow> generic_rows = RunEngine(generic.get(), stream);
  ExpectIdenticalRows(fast_rows, generic_rows, label);
}

QuerySpec Parse(const std::string& text, Catalog* catalog) {
  auto spec = ParseQuery(text, catalog);
  EXPECT_TRUE(spec.ok()) << text << ": " << spec.status().ToString();
  return std::move(spec).value();
}

// Processes the stream WITHOUT draining rows (multi-query runtimes are
// drained per slot with TakeResultsFor afterwards; RunEngine would swallow
// every slot through TakeResults).
void ProcessStream(GretaEngine* engine, const Stream& stream) {
  for (const Event& e : stream.events()) {
    ASSERT_TRUE(engine->Process(e).ok());
  }
  ASSERT_TRUE(engine->Flush().ok());
}

TEST(HotpathEquivalence, SingleQueryKernelGrid) {
  auto catalog = FuzzCatalog();
  const char* aggs[] = {"COUNT(*)", "COUNT(S)", "SUM(S.x)",
                        "MIN(S.x), MAX(S.x)", "AVG(S.x)"};
  const char* patterns[] = {"A S+", "SEQ(A S+, B E)",
                            "SEQ(C H, A S+, B E)"};
  const char* windows[] = {"", " WITHIN 8 seconds SLIDE 4 seconds",
                           " WITHIN 10 seconds SLIDE 10 seconds"};
  for (CounterMode mode : {CounterMode::kModular, CounterMode::kExact}) {
    for (const char* agg : aggs) {
      for (const char* pattern : patterns) {
        for (const char* window : windows) {
          // COUNT(A)/attribute aggregates need the Kleene type in scope for
          // every pattern above (it is: S binds A).
          std::string text = "RETURN " + std::string(agg) + " PATTERN " +
                             pattern + " GROUP-BY g" + window;
          QuerySpec spec = Parse(text, catalog.get());
          Stream stream = FuzzStream(catalog.get(), 7, 120);
          EngineOptions options;
          options.counter_mode = mode;
          ExpectKernelMatchesGeneric(
              catalog.get(), spec, stream, options,
              text + (mode == CounterMode::kExact ? " [exact]"
                                                  : " [modular]"));
        }
      }
    }
  }
}

TEST(HotpathEquivalence, SemanticsAndPredicates) {
  auto catalog = FuzzCatalog();
  std::string text =
      "RETURN COUNT(*) PATTERN A S+ WHERE S.x < NEXT(S).x "
      "WITHIN 6 seconds SLIDE 3 seconds";
  QuerySpec spec = Parse(text, catalog.get());
  for (Semantics semantics :
       {Semantics::kSkipTillAnyMatch, Semantics::kSkipTillNextMatch,
        Semantics::kContiguous}) {
    Stream stream = FuzzStream(catalog.get(), 13, 150);
    EngineOptions options;
    options.semantics = semantics;
    ExpectKernelMatchesGeneric(catalog.get(), spec, stream, options,
                               text + " semantics=" +
                                   std::to_string(static_cast<int>(semantics)));
  }
}

TEST(HotpathEquivalence, NegationStaysGenericAndIdentical) {
  auto catalog = FuzzCatalog();
  for (const char* pattern :
       {"SEQ(A S+, NOT C N, B E)", "SEQ(A S+, NOT C N)",
        "SEQ(NOT C N, A S+)"}) {
    std::string text = "RETURN COUNT(*) PATTERN " + std::string(pattern) +
                       " WITHIN 8 seconds SLIDE 4 seconds";
    QuerySpec spec = Parse(text, catalog.get());
    Stream stream = FuzzStream(catalog.get(), 29, 150);
    ExpectKernelMatchesGeneric(catalog.get(), spec, stream, {}, text);
  }
}

TEST(HotpathEquivalence, MultiQuerySharedCells) {
  auto catalog = FuzzCatalog();
  // All-COUNT cluster exercises the multi-slot count kernel; the mixed
  // cluster must demote to the generic kernel and still match.
  const std::vector<std::vector<std::string>> workloads = {
      {"RETURN COUNT(*) PATTERN A S+ WITHIN 8 seconds SLIDE 4 seconds",
       "RETURN COUNT(*) PATTERN A S+ WITHIN 8 seconds SLIDE 4 seconds",
       "RETURN COUNT(*) PATTERN A S+ WITHIN 8 seconds SLIDE 4 seconds"},
      {"RETURN COUNT(*) PATTERN A S+ WITHIN 8 seconds SLIDE 4 seconds",
       "RETURN SUM(S.x) PATTERN A S+ WITHIN 8 seconds SLIDE 4 seconds",
       "RETURN MIN(S.x), MAX(S.x) PATTERN A S+ WITHIN 8 seconds SLIDE 4 "
       "seconds"}};
  for (const std::vector<std::string>& workload : workloads) {
    std::vector<QuerySpec> specs;
    for (const std::string& text : workload) {
      specs.push_back(Parse(text, catalog.get()));
    }
    std::vector<const QuerySpec*> spec_ptrs;
    for (const QuerySpec& s : specs) spec_ptrs.push_back(&s);

    Stream stream = FuzzStream(catalog.get(), 41, 150);
    EngineOptions options;
    options.enable_specialized_kernels = true;
    auto fast = GretaEngine::CreateMulti(catalog.get(), spec_ptrs, options);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    options.enable_specialized_kernels = false;
    auto generic =
        GretaEngine::CreateMulti(catalog.get(), spec_ptrs, options);
    ASSERT_TRUE(generic.ok()) << generic.status().ToString();

    ProcessStream(fast.value().get(), stream);
    ProcessStream(generic.value().get(), stream);
    for (size_t q = 0; q < specs.size(); ++q) {
      ExpectIdenticalRows(fast.value()->TakeResultsFor(q),
                          generic.value()->TakeResultsFor(q),
                          "multi-query slot " + std::to_string(q));
    }
  }
}

TEST(HotpathEquivalence, PartialSharingMatchesDedicatedKernels) {
  auto catalog = FuzzCatalog();
  // Shared Kleene core, differing suffixes and windows: the partial runtime
  // (its own snapshot path, arena-backed vertices) must match dedicated
  // engines running the specialized kernels.
  std::vector<QuerySpec> specs;
  specs.push_back(Parse(
      "RETURN COUNT(*) PATTERN A S+ WITHIN 8 seconds SLIDE 4 seconds",
      catalog.get()));
  specs.push_back(Parse(
      "RETURN COUNT(*) PATTERN SEQ(A S+, B E) WITHIN 4 seconds SLIDE 4 "
      "seconds",
      catalog.get()));
  std::vector<const QuerySpec*> spec_ptrs;
  for (const QuerySpec& s : specs) spec_ptrs.push_back(&s);

  Stream stream = FuzzStream(catalog.get(), 53, 150);
  auto partial = GretaEngine::CreatePartial(catalog.get(), spec_ptrs, {});
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  ProcessStream(partial.value().get(), stream);
  for (size_t q = 0; q < specs.size(); ++q) {
    auto dedicated = MakeGreta(catalog.get(), specs[q].Clone());
    std::vector<ResultRow> expected = RunEngine(dedicated.get(), stream);
    ExpectIdenticalRows(partial.value()->TakeResultsFor(q), expected,
                        "partial slot " + std::to_string(q));
  }
}

// Telemetry is observation only: the SAME engine/kernel grid run with the
// registry armed and disarmed must produce bit-identical rows — the
// instrumented hot paths (routing tallies, window-close flushes) may never
// leak into results.
TEST(HotpathEquivalence, TelemetryOnOffRowsIdentical) {
  telemetry::MetricRegistry& reg = telemetry::MetricRegistry::Default();
  auto catalog = FuzzCatalog();
  const char* queries[] = {
      "RETURN COUNT(*) PATTERN A S+ WITHIN 8 seconds SLIDE 4 seconds",
      "RETURN SUM(S.x) PATTERN SEQ(A S+, B E) WHERE S.x < NEXT(S).x "
      "WITHIN 6 seconds SLIDE 3 seconds",
  };
  for (const char* text : queries) {
    QuerySpec spec = Parse(text, catalog.get());
    Stream stream = FuzzStream(catalog.get(), 61, 150);

    reg.Reset();
    reg.set_enabled(true);  // before Create: instruments cache here
    auto armed = MakeGreta(catalog.get(), spec.Clone());
    std::vector<ResultRow> armed_rows = RunEngine(armed.get(), stream);
#if GRETA_TELEMETRY
    // The armed run actually recorded (otherwise this test is vacuous).
    bool routed = false;
    for (const auto& c : reg.ScrapeCounters()) {
      if (c.name == "greta_core_events_routed_total" && c.value > 0) {
        routed = true;
      }
    }
    EXPECT_TRUE(routed) << text;
#endif

    reg.Reset();
    reg.set_enabled(false);
    auto disarmed = MakeGreta(catalog.get(), spec.Clone());
    std::vector<ResultRow> disarmed_rows = RunEngine(disarmed.get(), stream);
    reg.set_enabled(true);

    ExpectIdenticalRows(armed_rows, disarmed_rows,
                        std::string("telemetry on/off: ") + text);
  }
  reg.Reset();
}

// --- Counter promotion boundary (u64 overflow edge) ---

TEST(CounterPromotion, AddOneAtMaxPromotesExact) {
  Counter c(~uint64_t{0});
  c.AddOne(CounterMode::kExact);
  EXPECT_EQ(c.ToDecimal(), "18446744073709551616");  // 2^64
  EXPECT_EQ(c.Low64(), 0u);
  EXPECT_FALSE(c.IsZero());
  c.AddOne(CounterMode::kExact);
  EXPECT_EQ(c.ToDecimal(), "18446744073709551617");
}

TEST(CounterPromotion, AddOneAtMaxWrapsModular) {
  Counter c(~uint64_t{0});
  c.AddOne(CounterMode::kModular);
  EXPECT_TRUE(c.IsZero());
  EXPECT_EQ(c.ToDecimal(), "0");
}

TEST(CounterPromotion, AddCrossingBoundary) {
  Counter a(uint64_t{1} << 63);
  Counter b(uint64_t{1} << 63);
  a.Add(b, CounterMode::kExact);
  EXPECT_EQ(a.ToDecimal(), "18446744073709551616");
  // One below the edge stays un-promoted.
  Counter c(~uint64_t{0} - 1);
  Counter one(1);
  c.Add(one, CounterMode::kExact);
  EXPECT_EQ(c.ApproxHeapBytes(), 0u);  // still the inline u64
  EXPECT_EQ(c.Low64(), ~uint64_t{0});
  // Modular wraps silently.
  Counter d(~uint64_t{0});
  d.Add(one, CounterMode::kModular);
  EXPECT_TRUE(d.IsZero());
}

TEST(CounterPromotion, PromotedAccumulatesFurtherAdds) {
  Counter promoted(~uint64_t{0});
  promoted.AddOne(CounterMode::kExact);  // 2^64, promoted
  Counter plain(5);
  promoted.Add(plain, CounterMode::kExact);
  EXPECT_EQ(promoted.ToDecimal(), "18446744073709551621");
  // Copies of promoted counters are deep.
  Counter copy = promoted;
  copy.AddOne(CounterMode::kExact);
  EXPECT_EQ(promoted.ToDecimal(), "18446744073709551621");
  EXPECT_EQ(copy.ToDecimal(), "18446744073709551622");
}

// Engine-level promotion: n same-type events under an unbounded window give
// 2^n - 1 trends (every non-empty subsequence), so n = 70 drives the
// COUNT(*)-exact kernel across the u64 overflow edge mid-stream. The
// modular engine must agree mod 2^64.
TEST(CounterPromotion, EngineCountCrossesU64Boundary) {
  auto catalog = FuzzCatalog();
  QuerySpec spec = Parse("RETURN COUNT(*) PATTERN A S+", catalog.get());
  Stream stream;
  const int n = 70;
  for (int i = 0; i < n; ++i) {
    stream.Append(EventBuilder(catalog.get(), "A", i + 1)
                      .Set("x", 1.0)
                      .Set("g", 0)
                      .Build());
  }

  // Expected 2^70 - 1 via the Counter itself: x -> 2x + 1, n times.
  Counter expected;
  for (int i = 0; i < n; ++i) {
    Counter copy = expected;
    expected.Add(copy, CounterMode::kExact);
    expected.AddOne(CounterMode::kExact);
  }

  EngineOptions exact;
  exact.counter_mode = CounterMode::kExact;
  auto exact_engine = MakeGreta(catalog.get(), spec.Clone(), exact);
  std::vector<ResultRow> exact_rows =
      RunEngine(exact_engine.get(), stream);
  ASSERT_EQ(exact_rows.size(), 1u);
  EXPECT_EQ(exact_rows[0].aggs.count.ToDecimal(), expected.ToDecimal());

  EngineOptions modular;
  modular.counter_mode = CounterMode::kModular;
  auto modular_engine = MakeGreta(catalog.get(), spec.Clone(), modular);
  std::vector<ResultRow> modular_rows =
      RunEngine(modular_engine.get(), stream);
  ASSERT_EQ(modular_rows.size(), 1u);
  EXPECT_EQ(modular_rows[0].aggs.count.Low64(), expected.Low64());

  // And the exact engine agrees with its generic-kernel twin bit for bit.
  exact.enable_specialized_kernels = false;
  auto generic_engine = MakeGreta(catalog.get(), spec.Clone(), exact);
  std::vector<ResultRow> generic_rows =
      RunEngine(generic_engine.get(), stream);
  ExpectIdenticalRows(exact_rows, generic_rows, "overflow exact-vs-generic");
}

}  // namespace
}  // namespace greta
