// Scale and shape extremes: deeply nested Kleene, long sequences, negative
// timestamps, trend lengths in the thousands (recursion-free enumeration),
// and a mid-size end-to-end smoke run.

#include <random>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "workload/stock.h"

namespace greta {
namespace {

using testing::CountQuery;
using testing::ExpectMatchesOracle;
using testing::MakeGreta;
using testing::PaperCatalog;
using testing::RunEngine;
using testing::SingleCount;

TEST(ScaleTest, DeeplyNestedKleeneEqualsFlatKleene) {
  // ((A+)+)+ matches exactly the trends of A+ (concatenations of A-runs
  // are A-runs); the template dedups the implied self-transitions.
  auto catalog = PaperCatalog();
  Stream stream;
  for (int i = 1; i <= 12; ++i) {
    stream.Append(EventBuilder(catalog.get(), "A", i)
                      .Set("attr", static_cast<double>(i))
                      .Build());
  }
  PatternPtr nested = Pattern::Plus(
      Pattern::Plus(Pattern::Plus(Pattern::Atom(0))));
  std::vector<ResultRow> rows =
      ExpectMatchesOracle(catalog.get(), CountQuery(std::move(nested)),
                          stream);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].aggs.count.ToDecimal(), "4095");  // 2^12 - 1
}

TEST(ScaleTest, FiveTypeSequenceChain) {
  // SEQ(A, B+, C, D+, E) across all five types, validated by the oracle.
  auto catalog = PaperCatalog();
  PatternPtr p = Pattern::Seq(
      Pattern::Atom(0), Pattern::Plus(Pattern::Atom(1)), Pattern::Atom(2),
      Pattern::Plus(Pattern::Atom(3)), Pattern::Atom(4));
  std::mt19937_64 rng(99);
  Stream stream;
  static const char* kTypes[] = {"A", "B", "C", "D", "E"};
  for (int i = 1; i <= 30; ++i) {
    stream.Append(EventBuilder(catalog.get(), kTypes[rng() % 5], i)
                      .Set("attr", 1.0)
                      .Build());
  }
  ExpectMatchesOracle(catalog.get(), CountQuery(std::move(p)), stream);
}

TEST(ScaleTest, NegativeTimestampsWork) {
  // Application time may start below zero (e.g. epoch-relative offsets);
  // window arithmetic floors correctly through the sign change.
  auto catalog = PaperCatalog();
  QuerySpec spec = CountQuery(Pattern::Plus(Pattern::Atom(0)));
  spec.window = WindowSpec::Sliding(4, 2);
  auto engine = MakeGreta(catalog.get(), std::move(spec));
  Stream stream;
  for (Ts t = -7; t <= 3; t += 2) {
    stream.Append(
        EventBuilder(catalog.get(), "A", t).Set("attr", 1.0).Build());
  }
  std::vector<ResultRow> rows = RunEngine(engine.get(), stream);
  ASSERT_FALSE(rows.empty());
  // Window ids before 0 are clamped (kept non-negative); every emitted
  // window holds the right sub-stream: cross-check one mid-stream window.
  for (const ResultRow& row : rows) {
    EXPECT_GE(row.wid, 0);
    EXPECT_FALSE(row.aggs.count.IsZero());
  }
}

TEST(ScaleTest, ThousandsLongTrendsNeedNoRecursion) {
  // A single chain of 3000 events where only consecutive events connect
  // (x + 1 == NEXT.x): the longest trend is 3000 events. Both GRETA and
  // the oracle's iterative DFS must survive (no recursion-depth crash),
  // and the count is n*(n+1)/2 contiguous runs.
  auto catalog = PaperCatalog();
  QuerySpec spec = CountQuery(Pattern::Plus(Pattern::Atom(0)));
  spec.where.push_back(Expr::Binary(
      ExprOp::kEq,
      Expr::Binary(ExprOp::kAdd, Expr::Attr(0, 0),
                   Expr::Const(Value::Int(1))),
      Expr::NextAttr(0, 0)));
  const int n = 3000;
  Stream stream;
  for (int i = 0; i < n; ++i) {
    stream.Append(EventBuilder(catalog.get(), "A", i)
                      .Set("attr", static_cast<double>(i))
                      .Build());
  }
  std::vector<ResultRow> rows =
      ExpectMatchesOracle(catalog.get(), spec, stream);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].aggs.count.ToDecimal(),
            std::to_string(int64_t{n} * (n + 1) / 2));
}

TEST(ScaleTest, FiftyThousandEventSmoke) {
  // Mid-size end-to-end run: Q1 over 50k events with sliding windows and
  // 10 company partitions; must finish promptly with bounded memory.
  Catalog catalog;
  StockConfig config;
  config.rate = 5000;
  config.duration = 10;
  config.drift = 1.0;
  Stream stream = GenerateStockStream(&catalog, config);
  auto spec = MakeQ1(&catalog, /*within=*/4, /*slide=*/2);
  ASSERT_TRUE(spec.ok());
  EngineOptions options;
  options.counter_mode = CounterMode::kModular;
  auto engine = MakeGreta(&catalog, std::move(spec).value(), options);
  std::vector<ResultRow> rows = RunEngine(engine.get(), stream);
  EXPECT_FALSE(rows.empty());
  EXPECT_EQ(engine->stats().events_processed, 50000u);
  // Purge keeps peak memory well below retaining the whole stream.
  EXPECT_LT(engine->stats().peak_bytes, 64u * 1024 * 1024);
}

}  // namespace
}  // namespace greta
