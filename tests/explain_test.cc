// Tests for ExplainPlan rendering and the push-style result callback.

#include "core/explain.h"

#include "gtest/gtest.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "workload/linear_road.h"

namespace greta {
namespace {

TEST(ExplainTest, RendersQ3Plan) {
  Catalog catalog;
  auto spec = MakeQ3(&catalog, /*within=*/300, /*slide=*/60);
  ASSERT_TRUE(spec.ok());
  auto engine = testing::MakeGreta(&catalog, std::move(spec).value());
  std::string text = ExplainPlan(engine->plan(), catalog);
  // Window and partitioning.
  EXPECT_NE(text.find("WITHIN 300 SLIDE 60"), std::string::npos);
  EXPECT_NE(text.find("partition by: segment(group) vehicle"),
            std::string::npos);
  EXPECT_NE(text.find("sharding: partition-parallel"), std::string::npos);
  // Negative sub-pattern with its placement case.
  EXPECT_NE(text.find("negative"), std::string::npos);
  EXPECT_NE(text.find("case 3 (leading)"), std::string::npos);
  // Edge predicate compiled to a tree range.
  EXPECT_NE(text.find("edge[(Position.speed > NEXT(Position).speed)]"),
            std::string::npos);
  EXPECT_NE(text.find("(tree range)"), std::string::npos);
  EXPECT_NE(text.find("tree key = speed"), std::string::npos);
}

TEST(ExplainTest, RendersDisjunctionAlternatives) {
  auto catalog = testing::PaperCatalog();
  auto spec =
      ParseQuery("RETURN COUNT(*) PATTERN A+ | SEQ(C, D)", catalog.get());
  ASSERT_TRUE(spec.ok());
  auto engine = testing::MakeGreta(catalog.get(), std::move(spec).value());
  std::string text = ExplainPlan(engine->plan(), *catalog);
  EXPECT_NE(text.find("alternative 0 (counts sum, disjoint)"),
            std::string::npos);
  EXPECT_NE(text.find("alternative 1"), std::string::npos);
  // No GROUP-BY / equivalence key: the plan states the shard-0 fallback
  // the sharded runtime applies (ShardRouter clamps to one shard).
  EXPECT_NE(text.find("sharding: none"), std::string::npos);
  EXPECT_NE(text.find("shard 0"), std::string::npos);
}

TEST(ResultCallbackTest, FiresAtWindowClose) {
  auto catalog = testing::PaperCatalog();
  QuerySpec spec = testing::CountQuery(Pattern::Plus(Pattern::Atom(0)));
  spec.window = WindowSpec::Tumbling(10);
  auto engine = testing::MakeGreta(catalog.get(), std::move(spec));

  std::vector<std::pair<WindowId, std::string>> pushed;
  engine->set_result_callback([&](const ResultRow& row) {
    pushed.emplace_back(row.wid, row.aggs.count.ToDecimal());
  });

  auto at = [&](Ts t) {
    return EventBuilder(catalog.get(), "A", t).Set("attr", 1.0).Build();
  };
  ASSERT_TRUE(engine->Process(at(1)).ok());
  ASSERT_TRUE(engine->Process(at(2)).ok());
  EXPECT_TRUE(pushed.empty());  // Window 0 still open.
  ASSERT_TRUE(engine->Process(at(12)).ok());
  ASSERT_EQ(pushed.size(), 1u);  // Pushed at close, before any TakeResults.
  EXPECT_EQ(pushed[0].first, 0);
  EXPECT_EQ(pushed[0].second, "3");
  ASSERT_TRUE(engine->Flush().ok());
  ASSERT_EQ(pushed.size(), 2u);
  EXPECT_EQ(pushed[1].second, "1");
  // Pull-style rows are still available.
  EXPECT_EQ(engine->TakeResults().size(), 2u);
}

}  // namespace
}  // namespace greta
