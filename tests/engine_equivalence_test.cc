// Cross-engine property tests: GRETA, SASE, CET and Flink-flat must produce
// identical aggregates on randomized streams across patterns, predicates,
// windows, grouping and negation (the paper's correctness requirement: "the
// same aggregation results must be returned as by the two-step approach").

#include <memory>
#include <random>

#include "baselines/cet.h"
#include "baselines/flink_flat.h"
#include "baselines/sase.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace greta {
namespace {

using testing::MakeGreta;
using testing::RunEngine;

std::unique_ptr<Catalog> FuzzCatalog() {
  auto catalog = std::make_unique<Catalog>();
  for (const char* name : {"A", "B", "C", "D", "E"}) {
    catalog->DefineType(name, {{"x", Value::Kind::kDouble},
                               {"g", Value::Kind::kInt}});
  }
  return catalog;
}

// A pool of patterns covering flat/nested Kleene, sequences, repeated
// types, and all three negation cases.
PatternPtr PatternFromPool(int which) {
  switch (which % 10) {
    case 0:
      return Pattern::Plus(Pattern::Atom(0));
    case 1:
      return Pattern::Seq(Pattern::Plus(Pattern::Atom(0)), Pattern::Atom(1));
    case 2:
      return Pattern::Plus(Pattern::Seq(Pattern::Plus(Pattern::Atom(0)),
                                        Pattern::Atom(1)));
    case 3:
      return Pattern::Seq(Pattern::Atom(2), Pattern::Plus(Pattern::Atom(0)),
                          Pattern::Atom(1));
    case 4:  // Case-1 negation.
      return Pattern::Seq(Pattern::Plus(Pattern::Atom(0)),
                          Pattern::Not(Pattern::Atom(2)), Pattern::Atom(1));
    case 5:  // Case-2 negation.
      return Pattern::Seq(Pattern::Plus(Pattern::Atom(0)),
                          Pattern::Not(Pattern::Atom(2)));
    case 6:  // Case-3 negation.
      return Pattern::Seq(Pattern::Not(Pattern::Atom(2)),
                          Pattern::Plus(Pattern::Atom(0)));
    case 7:  // Negated sequence between Kleene sub-patterns (Example 2ish).
      return Pattern::Plus(Pattern::Seq(
          Pattern::Plus(Pattern::Atom(0)),
          Pattern::Not(Pattern::Seq(Pattern::Atom(2), Pattern::Atom(3))),
          Pattern::Atom(1)));
    case 8:  // Repeated event type.
      return Pattern::Seq(Pattern::Plus(Pattern::Atom(0)), Pattern::Atom(1),
                          Pattern::Plus(Pattern::Atom(0)));
    default:  // Nested negation (Example 2).
      return Pattern::Plus(Pattern::Seq(
          Pattern::Plus(Pattern::Atom(0)),
          Pattern::Not(Pattern::Seq(Pattern::Atom(2),
                                    Pattern::Not(Pattern::Atom(4)),
                                    Pattern::Atom(3))),
          Pattern::Atom(1)));
  }
}

Stream RandomStream(Catalog* catalog, std::mt19937_64* rng, int n) {
  static const char* kTypes[] = {"A", "B", "C", "D", "E"};
  Stream stream;
  Ts time = 0;
  for (int i = 0; i < n; ++i) {
    // ~40% of events share the previous timestamp (tie handling).
    time += ((*rng)() % 5 < 2) ? 0 : 1 + static_cast<Ts>((*rng)() % 2);
    const char* type = kTypes[(*rng)() % 5];
    stream.Append(EventBuilder(catalog, type, time)
                      .Set("x", static_cast<double>((*rng)() % 8))
                      .Set("g", static_cast<int64_t>((*rng)() % 2))
                      .Build());
  }
  return stream;
}

struct FuzzCase {
  uint64_t seed;
  int pattern;
  bool edge_pred;
  bool grouped;
  int window;  // 0 unbounded, 1 tumbling, 2 sliding
};

class EngineEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineEquivalence, AllEnginesAgreeOnRandomStreams) {
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 6; ++round) {
    FuzzCase c;
    c.seed = GetParam();
    c.pattern = static_cast<int>(rng() % 10);
    c.edge_pred = (rng() % 2) == 0;
    c.grouped = (rng() % 3) == 0;
    c.window = static_cast<int>(rng() % 3);

    auto catalog = FuzzCatalog();
    QuerySpec spec;
    spec.pattern = PatternFromPool(c.pattern);
    spec.aggs = {
        {AggKind::kCountStar, kInvalidType, kInvalidAttr, "COUNT(*)"},
        {AggKind::kCountType, 0, kInvalidAttr, "COUNT(A)"},
        {AggKind::kMin, 0, 0, "MIN(A.x)"},
        {AggKind::kMax, 0, 0, "MAX(A.x)"},
        {AggKind::kSum, 0, 0, "SUM(A.x)"},
    };
    if (c.edge_pred) {
      spec.where.push_back(
          Expr::Binary(ExprOp::kLe, Expr::Attr(0, 0), Expr::NextAttr(0, 0)));
    }
    if (c.grouped) spec.group_by = {"g"};
    if (c.window == 1) spec.window = WindowSpec::Tumbling(4);
    if (c.window == 2) spec.window = WindowSpec::Sliding(6, 2);

    Stream stream = RandomStream(catalog.get(), &rng, 18);

    auto greta = MakeGreta(catalog.get(), spec.Clone());
    std::vector<ResultRow> greta_rows = RunEngine(greta.get(), stream);

    auto check = [&](auto engine_or, const char* name) {
      ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
      auto engine = std::move(engine_or).value();
      std::vector<ResultRow> rows = RunEngine(engine.get(), stream);
      std::string diff;
      EXPECT_TRUE(
          RowsEquivalent(greta_rows, rows, greta->agg_plan(), &diff))
          << "GRETA vs " << name << ": " << diff << " [seed=" << c.seed
          << " pattern=" << c.pattern << " edge=" << c.edge_pred
          << " grouped=" << c.grouped << " window=" << c.window << "]";
    };
    check(SaseEngine::Create(catalog.get(), spec.Clone()), "SASE");
    check(CetEngine::Create(catalog.get(), spec.Clone()), "CET");
    check(FlinkFlatEngine::Create(catalog.get(), spec.Clone()), "Flink");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalence,
                         ::testing::Range(uint64_t{1}, uint64_t{25}));

class SemanticsEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SemanticsEquivalence, GretaMatchesOracleUnderRestrictedSemantics) {
  std::mt19937_64 rng(GetParam() * 7919);
  for (Semantics semantics :
       {Semantics::kSkipTillNextMatch, Semantics::kContiguous}) {
    auto catalog = FuzzCatalog();
    QuerySpec spec;
    spec.pattern = PatternFromPool(static_cast<int>(rng() % 4));
    spec.aggs = {
        {AggKind::kCountStar, kInvalidType, kInvalidAttr, "COUNT(*)"}};
    Stream stream = RandomStream(catalog.get(), &rng, 16);

    EngineOptions greta_options;
    greta_options.semantics = semantics;
    auto greta = MakeGreta(catalog.get(), spec.Clone(), greta_options);
    std::vector<ResultRow> greta_rows = RunEngine(greta.get(), stream);

    TwoStepOptions oracle_options;
    oracle_options.semantics = semantics;
    auto oracle_or =
        SaseEngine::Create(catalog.get(), spec.Clone(), oracle_options);
    ASSERT_TRUE(oracle_or.ok());
    auto oracle = std::move(oracle_or).value();
    std::vector<ResultRow> oracle_rows = RunEngine(oracle.get(), stream);

    std::string diff;
    EXPECT_TRUE(RowsEquivalent(greta_rows, oracle_rows, greta->agg_plan(),
                               &diff))
        << diff << " [seed=" << GetParam() << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemanticsEquivalence,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

TEST(ParallelEngineTest, MultiThreadedGroupsMatchSingleThreaded) {
  auto catalog = FuzzCatalog();
  std::mt19937_64 rng(4242);
  QuerySpec spec;
  spec.pattern = PatternFromPool(2);
  spec.aggs = {{AggKind::kCountStar, kInvalidType, kInvalidAttr, "COUNT(*)"}};
  spec.group_by = {"g"};
  spec.window = WindowSpec::Sliding(6, 2);
  Stream stream = RandomStream(catalog.get(), &rng, 200);

  auto serial = MakeGreta(catalog.get(), spec.Clone());
  std::vector<ResultRow> serial_rows = RunEngine(serial.get(), stream);

  EngineOptions parallel_options;
  parallel_options.num_threads = 4;
  auto parallel = MakeGreta(catalog.get(), spec.Clone(), parallel_options);
  std::vector<ResultRow> parallel_rows = RunEngine(parallel.get(), stream);

  std::string diff;
  EXPECT_TRUE(RowsEquivalent(serial_rows, parallel_rows, serial->agg_plan(),
                             &diff))
      << diff;
}

TEST(BudgetTest, ExhaustedBaselineReportsDnf) {
  auto catalog = FuzzCatalog();
  QuerySpec spec;
  spec.pattern = Pattern::Plus(Pattern::Atom(0));
  spec.aggs = {{AggKind::kCountStar, kInvalidType, kInvalidAttr, "COUNT(*)"}};
  TwoStepOptions options;
  options.work_budget = 100;  // Far too little for 2^30 trends.
  auto engine_or = SaseEngine::Create(catalog.get(), spec.Clone(), options);
  ASSERT_TRUE(engine_or.ok());
  auto engine = std::move(engine_or).value();
  Stream stream;
  for (int i = 1; i <= 30; ++i) {
    stream.Append(EventBuilder(catalog.get(), "A", i)
                      .Set("x", 1.0)
                      .Set("g", int64_t{0})
                      .Build());
  }
  std::vector<ResultRow> rows = RunEngine(engine.get(), stream);
  EXPECT_TRUE(engine->stats().dnf);
  EXPECT_TRUE(rows.empty());
}

}  // namespace
}  // namespace greta
