// Tests for the CSV schema/event ingestion used by the csv_pipeline tool.

#include "workload/csv.h"

#include <sstream>

#include "gtest/gtest.h"
#include "query/parser.h"
#include "tests/test_util.h"

namespace greta {
namespace {

TEST(CsvSchemaTest, ParsesTypesAndKinds) {
  Catalog catalog;
  Status s = ParseSchema(
      "# comment\n"
      "Stock: company:int, sector:int, price:double, name:str\n"
      "\n"
      "Tick:\n",
      &catalog);
  ASSERT_TRUE(s.ok()) << s.ToString();
  TypeId stock = catalog.FindType("Stock");
  ASSERT_NE(stock, kInvalidType);
  const EventTypeDef& def = catalog.type(stock);
  ASSERT_EQ(def.attrs.size(), 4u);
  EXPECT_EQ(def.attrs[0].kind, Value::Kind::kInt);
  EXPECT_EQ(def.attrs[2].kind, Value::Kind::kDouble);
  EXPECT_EQ(def.attrs[3].kind, Value::Kind::kStr);
  // Attribute-less types are allowed.
  EXPECT_NE(catalog.FindType("Tick"), kInvalidType);
}

TEST(CsvSchemaTest, RejectsBadInput) {
  Catalog catalog;
  EXPECT_FALSE(ParseSchema("no colon here", &catalog).ok());
  EXPECT_FALSE(ParseSchema("T: x:banana", &catalog).ok());
  ASSERT_TRUE(ParseSchema("T: x:int", &catalog).ok());
  EXPECT_FALSE(ParseSchema("T: y:int", &catalog).ok());  // Duplicate type.
}

TEST(CsvEventTest, ParsesTypedAttributes) {
  Catalog catalog;
  ASSERT_TRUE(
      ParseSchema("Stock: company:int, price:double, name:str", &catalog)
          .ok());
  auto e = ParseCsvEvent("Stock, 7, 42, 101.5, ibm", &catalog);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(e.value().time, 7);
  EXPECT_EQ(e.value().attrs[0].AsInt(), 42);
  EXPECT_DOUBLE_EQ(e.value().attrs[1].AsDouble(), 101.5);
  EXPECT_EQ(catalog.strings()->Lookup(e.value().attrs[2].AsStr()), "ibm");
}

TEST(CsvEventTest, RejectsMalformedLines) {
  Catalog catalog;
  ASSERT_TRUE(ParseSchema("Stock: price:double", &catalog).ok());
  EXPECT_FALSE(ParseCsvEvent("Stock", &catalog).ok());
  EXPECT_FALSE(ParseCsvEvent("Nope,1,2", &catalog).ok());
  EXPECT_FALSE(ParseCsvEvent("Stock,abc,2", &catalog).ok());
  EXPECT_FALSE(ParseCsvEvent("Stock,1", &catalog).ok());        // Too few.
  EXPECT_FALSE(ParseCsvEvent("Stock,1,2,3", &catalog).ok());    // Too many.
  EXPECT_FALSE(ParseCsvEvent("Stock,1,xyz", &catalog).ok());    // Bad double.
}

TEST(CsvStreamTest, ReadsAndEnforcesOrder) {
  Catalog catalog;
  ASSERT_TRUE(ParseSchema("A: x:double", &catalog).ok());
  std::istringstream good(
      "# header comment\n"
      "A,1,5\n"
      "\n"
      "A,2,6\n");
  auto stream = ReadCsvStream(good, &catalog);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  EXPECT_EQ(stream.value().size(), 2u);
  EXPECT_EQ(stream.value()[1].seq, 1);

  std::istringstream bad("A,5,1\nA,3,1\n");
  EXPECT_FALSE(ReadCsvStream(bad, &catalog).ok());
}

TEST(CsvStreamTest, EndToEndWithEngine) {
  // The whole text path: schema -> query -> CSV -> aggregates.
  Catalog catalog;
  ASSERT_TRUE(ParseSchema("A: attr:double\nB: attr:double", &catalog).ok());
  std::istringstream csv(
      "A,1,5\n"
      "B,2,2\n"
      "A,3,6\n"
      "A,4,4\n"
      "B,7,7\n");
  auto stream = ReadCsvStream(csv, &catalog);
  ASSERT_TRUE(stream.ok());
  auto spec = ParseQuery("RETURN COUNT(*) PATTERN (SEQ(A+, B))+", &catalog);
  ASSERT_TRUE(spec.ok());
  auto engine = testing::MakeGreta(&catalog, std::move(spec).value());
  EXPECT_EQ(testing::SingleCount(
                testing::RunEngine(engine.get(), stream.value())),
            "11");
}

}  // namespace
}  // namespace greta
