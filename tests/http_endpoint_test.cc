// Embedded observability endpoint (src/telemetry/http_server.h +
// src/runtime/observability.h): route serving on an ephemeral port, the
// stall detector's /healthz verdict flipping to 503 for a deliberately
// wedged shard (and recovering), per-query EXPLAIN ANALYZE reports whose
// observed structural counters must agree with EngineStats, and result
// determinism while a scraper hammers the endpoint mid-stream.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "query/parser.h"
#include "runtime/observability.h"
#include "runtime/sharded_runtime.h"
#include "telemetry/http_server.h"
#include "telemetry/telemetry.h"
#include "workload/stock.h"

namespace greta {
namespace {

using runtime::ShardedOptions;
using runtime::ShardedRuntime;
using telemetry::HttpGet;
using telemetry::HttpServer;
using telemetry::MetricRegistry;

QuerySpec Parse(const std::string& text, Catalog* catalog) {
  auto spec = ParseQuery(text, catalog);
  EXPECT_TRUE(spec.ok()) << text << ": " << spec.status().ToString();
  return std::move(spec).value();
}

std::string TrendQuery(Ts within, const std::string& aggs = "COUNT(*)") {
  return "RETURN sector, " + aggs +
         " PATTERN Stock S+ WHERE [company, sector] AND S.price > "
         "NEXT(S).price GROUP-BY sector WITHIN " +
         std::to_string(within) + " seconds SLIDE 5 seconds";
}

Stream MakeStockStream(Catalog* catalog, int rate = 50, Ts duration = 40) {
  StockConfig config;
  config.seed = 7;
  config.num_companies = 10;
  config.num_sectors = 3;
  config.rate = rate;
  config.duration = duration;
  config.drift = 0.3;
  return GenerateStockStream(catalog, config);
}

// ------------------------------------------------------------ raw server

TEST(HttpServer, ServesRegistryRoutesOnEphemeralPort) {
  MetricRegistry reg;
  reg.GetCounter("greta_probe_total")->Add(42);
  HttpServer server(reg);
  ASSERT_TRUE(server.Start(0)) << server.error();
  ASSERT_TRUE(server.serving());
  ASSERT_NE(server.port(), 0);

  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpGet(server.port(), "/metrics", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("greta_probe_total 42"), std::string::npos);

  ASSERT_TRUE(HttpGet(server.port(), "/snapshot", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"counters\""), std::string::npos);
  EXPECT_NE(body.find("\"trace\""), std::string::npos);

  ASSERT_TRUE(HttpGet(server.port(), "/trace", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body.front(), '[');  // the trace array alone

  ASSERT_TRUE(HttpGet(server.port(), "/explain", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("== telemetry =="), std::string::npos);

  ASSERT_TRUE(HttpGet(server.port(), "/nope", &status, &body));
  EXPECT_EQ(status, 404);

  // Query strings are stripped before routing.
  ASSERT_TRUE(HttpGet(server.port(), "/metrics?format=text", &status,
                      &body));
  EXPECT_EQ(status, 200);

  server.Stop();
  EXPECT_FALSE(server.serving());
  // Stop is idempotent; Start works again on a fresh port.
  server.Stop();
  ASSERT_TRUE(server.Start(0)) << server.error();
  ASSERT_TRUE(HttpGet(server.port(), "/metrics", &status, &body));
  EXPECT_EQ(status, 200);
  server.Stop();
}

TEST(HttpServer, CustomHandlersLongestPrefixWins) {
  MetricRegistry reg;
  HttpServer server(reg);
  server.SetHandler("/api", [](const std::string& rest) {
    return HttpServer::Response{200, "text/plain", "api:" + rest};
  });
  server.SetHandler("/api/deep", [](const std::string& rest) {
    return HttpServer::Response{200, "text/plain", "deep:" + rest};
  });
  ASSERT_TRUE(server.Start(0)) << server.error();

  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpGet(server.port(), "/api", &status, &body));
  EXPECT_EQ(body, "api:");
  ASSERT_TRUE(HttpGet(server.port(), "/api/x", &status, &body));
  EXPECT_EQ(body, "api:/x");
  ASSERT_TRUE(HttpGet(server.port(), "/api/deep/y", &status, &body));
  EXPECT_EQ(body, "deep:/y");
  // "/apix" shares the byte prefix but not a path segment: no match.
  ASSERT_TRUE(HttpGet(server.port(), "/apix", &status, &body));
  EXPECT_EQ(status, 404);
  server.Stop();
}

// ------------------------------------------------- runtime-backed routes

TEST(HttpEndpoint, HealthzFlipsTo503ForWedgedShardAndRecovers) {
  Catalog catalog;
  Stream stream = MakeStockStream(&catalog);
  std::vector<QuerySpec> workload;
  workload.push_back(Parse(TrendQuery(10), &catalog));

  ShardedOptions options;
  options.num_shards = 2;
  options.batch_size = 4;    // small batches: the queue fills fast
  options.queue_capacity = 4;
  options.heartbeat_events = 16;
  auto rt = ShardedRuntime::Create(&catalog, workload, options);
  ASSERT_TRUE(rt.ok()) << rt.status().ToString();
  ShardedRuntime& runtime = *rt.value();

  MetricRegistry reg;
  HttpServer server(reg);
  runtime::AttachRuntimeObservability(&server, rt.value().get());
  ASSERT_TRUE(server.Start(0)) << server.error();

  // Healthy at rest (two observations: the detector needs both).
  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpGet(server.port(), "/healthz", &status, &body));
  ASSERT_TRUE(HttpGet(server.port(), "/healthz", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"healthy\":true"), std::string::npos);

  // Wedge shard 0: its worker parks after the next pop, the clock freezes
  // and routed batches pile up in its queue.
  runtime.SetShardPausedForTest(0, true);
  size_t fed = 0;
  for (const Event& e : stream.events()) {
    Status s = runtime.Process(e);
    ASSERT_TRUE(s.ok()) << s.ToString();
    // ~12 events per shard = 3 full batches of 4: enough to leave work in
    // the wedged shard's queue, few enough that the producer never blocks
    // on its full (capacity 4) queue.
    if (++fed >= 24) break;
  }

  // Two consecutive detector observations with a frozen clock over a
  // non-empty queue: unhealthy.
  bool wedged = false;
  for (int i = 0; i < 50 && !wedged; ++i) {
    ASSERT_TRUE(HttpGet(server.port(), "/healthz", &status, &body));
    wedged = status == 503;
    if (!wedged) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(wedged) << body;
  EXPECT_NE(body.find("\"healthy\":false"), std::string::npos);
  EXPECT_NE(body.find("\"stalled\":true"), std::string::npos);

  // Unpark: the worker drains its backlog and the verdict recovers.
  runtime.SetShardPausedForTest(0, false);
  bool recovered = false;
  for (int i = 0; i < 100 && !recovered; ++i) {
    ASSERT_TRUE(HttpGet(server.port(), "/healthz", &status, &body));
    recovered = status == 200;
    if (!recovered) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(recovered) << body;

  ASSERT_TRUE(runtime.Flush().ok());
  server.Stop();
}

TEST(HttpEndpoint, QueryReportsMatchEngineStatsWithinTenPercent) {
  Catalog catalog;
  Stream stream = MakeStockStream(&catalog);
  // Single-query workload: per-query attribution is exact (dedicated
  // engine), so the observed counters must agree with EngineStats.
  std::vector<QuerySpec> workload;
  workload.push_back(Parse(TrendQuery(10), &catalog));

  ShardedOptions options;
  options.num_shards = 2;
  options.batch_size = 16;
  options.heartbeat_events = 32;
  auto rt = ShardedRuntime::Create(&catalog, workload, options);
  ASSERT_TRUE(rt.ok()) << rt.status().ToString();
  ShardedRuntime& runtime = *rt.value();

  for (const Event& e : stream.events()) {
    ASSERT_TRUE(runtime.Process(e).ok());
  }
  ASSERT_TRUE(runtime.Flush().ok());
  const size_t rows = runtime.TakeResults(0).size();
  ASSERT_GT(rows, 0u);

  std::vector<QueryExecStats> per_query = runtime.WorkloadQueryExecStats();
  ASSERT_EQ(per_query.size(), 1u);
  const QueryExecStats& q = per_query[0];
  const EngineStats& total = runtime.stats();

  EXPECT_GT(q.windows_closed, 0u);
  EXPECT_GT(q.events_routed, 0u);
  // Per-shard engines emit rows for their partition slice; the merger then
  // combines same-window same-group rows, so the per-query tally (summed
  // over shards, pre-merge) is an upper bound on the merged output.
  EXPECT_GE(q.rows_emitted, rows);
  // Windowed deltas partition the cumulative graph counters, and Flush
  // closes every window — the sums must land within 10% of the engine
  // totals (the acceptance bound; in practice they are equal).
  EXPECT_NEAR(static_cast<double>(q.vertices_created),
              static_cast<double>(total.vertices_stored),
              0.10 * static_cast<double>(total.vertices_stored));
  EXPECT_NEAR(static_cast<double>(q.edges_traversed),
              static_cast<double>(total.edges_traversed),
              0.10 * static_cast<double>(total.edges_traversed));

  // The JSON and human reports render the same tallies.
  std::string json = runtime::QueryReportJson(runtime, 0);
  EXPECT_NE(json.find("\"query_id\":0"), std::string::npos);
  EXPECT_NE(json.find("\"windows_closed\":" +
                      std::to_string(q.windows_closed)),
            std::string::npos);
  EXPECT_EQ(runtime::QueryReportJson(runtime, 99), "");
  std::string human = runtime::ExplainAnalyze(runtime, 0);
  EXPECT_NE(human.find("EXPLAIN ANALYZE query 0"), std::string::npos);
  EXPECT_EQ(runtime::ExplainAnalyze(runtime, 99), "unknown query\n");
}

TEST(HttpEndpoint, QueriesRouteJoinsPlanEstimates) {
  Catalog catalog;
  Stream stream = MakeStockStream(&catalog, /*rate=*/20, /*duration=*/30);
  // Shareable cluster: same Kleene core, different aggregates.
  std::vector<QuerySpec> workload;
  workload.push_back(Parse(TrendQuery(10), &catalog));
  workload.push_back(Parse(TrendQuery(10, "SUM(S.price)"), &catalog));
  workload.push_back(Parse(TrendQuery(10, "MIN(S.price)"), &catalog));

  ShardedOptions options;
  options.num_shards = 2;
  options.batch_size = 16;
  options.heartbeat_events = 32;
  options.workload.sharing.enable_sharing = true;
  auto rt = ShardedRuntime::Create(&catalog, workload, options);
  ASSERT_TRUE(rt.ok()) << rt.status().ToString();
  ShardedRuntime& runtime = *rt.value();

  MetricRegistry reg;
  HttpServer server(reg);
  runtime::AttachRuntimeObservability(&server, rt.value().get());
  ASSERT_TRUE(server.Start(0)) << server.error();

  for (const Event& e : stream.events()) {
    ASSERT_TRUE(runtime.Process(e).ok());
  }
  ASSERT_TRUE(runtime.Flush().ok());

  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpGet(server.port(), "/queries", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body.front(), '[');
  // Every query is reported, each joined against its cluster's estimates.
  for (size_t qid = 0; qid < workload.size(); ++qid) {
    EXPECT_NE(body.find("\"query_id\":" + std::to_string(qid)),
              std::string::npos);
  }
  EXPECT_NE(body.find("\"cluster\""), std::string::npos);
  EXPECT_NE(body.find("\"estimated_shared_cost_per_event\""),
            std::string::npos);

  ASSERT_TRUE(HttpGet(server.port(), "/queries/1", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"query_id\":1"), std::string::npos);

  ASSERT_TRUE(HttpGet(server.port(), "/queries/42", &status, &body));
  EXPECT_EQ(status, 404);
  ASSERT_TRUE(HttpGet(server.port(), "/queries/abc", &status, &body));
  EXPECT_EQ(status, 404);
  server.Stop();
}

TEST(HttpEndpoint, ConcurrentScrapesDoNotPerturbResults) {
  Catalog catalog;
  Stream stream = MakeStockStream(&catalog, /*rate=*/40, /*duration=*/30);
  std::vector<QuerySpec> workload;
  workload.push_back(Parse(TrendQuery(10), &catalog));
  workload.push_back(Parse(TrendQuery(10, "SUM(S.price)"), &catalog));
  ShardedOptions options;
  options.num_shards = 2;
  options.batch_size = 16;
  options.heartbeat_events = 32;

  // Reference run, no endpoint.
  auto ref = ShardedRuntime::Create(&catalog, workload, options);
  ASSERT_TRUE(ref.ok());
  for (const Event& e : stream.events()) {
    ASSERT_TRUE(ref.value()->Process(e).ok());
  }
  ASSERT_TRUE(ref.value()->Flush().ok());

  // Observed run: a scraper thread hits every route during the stream.
  auto rt = ShardedRuntime::Create(&catalog, workload, options);
  ASSERT_TRUE(rt.ok());
  MetricRegistry reg;
  HttpServer server(reg);
  runtime::AttachRuntimeObservability(&server, rt.value().get());
  ASSERT_TRUE(server.Start(0)) << server.error();
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    const char* paths[] = {"/metrics", "/healthz", "/queries", "/snapshot"};
    size_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      int status = 0;
      std::string body;
      HttpGet(server.port(), paths[i++ % 4], &status, &body);
    }
  });
  for (const Event& e : stream.events()) {
    ASSERT_TRUE(rt.value()->Process(e).ok());
  }
  ASSERT_TRUE(rt.value()->Flush().ok());
  stop.store(true, std::memory_order_release);
  scraper.join();
  server.Stop();

  // Bit-identical rows per query, scraped or not.
  for (size_t q = 0; q < workload.size(); ++q) {
    std::vector<ResultRow> expect = ref.value()->TakeResults(q);
    std::vector<ResultRow> got = rt.value()->TakeResults(q);
    std::string diff;
    EXPECT_TRUE(RowsEquivalent(expect, got,
                               ref.value()->agg_plan_for(q), &diff))
        << "query " << q << ": " << diff;
  }
}

}  // namespace
}  // namespace greta
