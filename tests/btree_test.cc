// Unit and property tests for the B+-tree Vertex-Tree substrate.

#include "storage/btree.h"

#include <map>
#include <random>
#include <vector>

#include "gtest/gtest.h"

namespace greta {
namespace {

std::vector<int> Collect(const BPlusTree<int>& tree, const KeyBounds& b) {
  std::vector<int> out;
  tree.Scan(b, [&](int v) { out.push_back(v); });
  return out;
}

TEST(BPlusTreeTest, EmptyTreeScansNothing) {
  BPlusTree<int> tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(Collect(tree, KeyBounds{}).empty());
}

TEST(BPlusTreeTest, SingleLeafInsertAndScan) {
  BPlusTree<int> tree;
  tree.Insert(3.0, 30);
  tree.Insert(1.0, 10);
  tree.Insert(2.0, 20);
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(Collect(tree, KeyBounds{}), (std::vector<int>{10, 20, 30}));
}

TEST(BPlusTreeTest, RangeBoundsInclusiveExclusive) {
  BPlusTree<int> tree;
  for (int i = 0; i < 10; ++i) tree.Insert(i, i);
  KeyBounds b;
  b.lo = 3;
  b.hi = 6;
  EXPECT_EQ(Collect(tree, b), (std::vector<int>{3, 4, 5, 6}));
  b.lo_strict = true;
  EXPECT_EQ(Collect(tree, b), (std::vector<int>{4, 5, 6}));
  b.hi_strict = true;
  EXPECT_EQ(Collect(tree, b), (std::vector<int>{4, 5}));
}

TEST(BPlusTreeTest, DuplicateKeysKeepInsertionOrder) {
  BPlusTree<int> tree;
  for (int i = 0; i < 100; ++i) tree.Insert(1.0, i);
  std::vector<int> got = Collect(tree, KeyBounds{});
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[i], i);
}

TEST(BPlusTreeTest, InclusiveBoundFindsDuplicatesAcrossLeafSplit) {
  // Regression: a leaf full of one key splits mid-duplicate, pushing the
  // duplicated key up as the separator with copies left in BOTH halves.
  // FindLeaf must descend LEFT on an equal separator or a non-strict scan
  // at exactly that key silently misses the left half's copies.
  BPlusTree<int> tree;
  const int n = 40;  // > one leaf (32), all the same key
  for (int i = 0; i < n; ++i) tree.Insert(5.0, i);
  KeyBounds at;
  at.lo = 5.0;
  at.hi = 5.0;
  std::vector<int> got = Collect(tree, at);
  ASSERT_EQ(got.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_EQ(got[i], i);  // insertion order kept

  // Strict lower bound at the duplicated key still excludes every copy.
  KeyBounds above;
  above.lo = 5.0;
  above.lo_strict = true;
  EXPECT_TRUE(Collect(tree, above).empty());

  // Mixed keys around a duplicated separator: inclusive range picks up the
  // duplicates and nothing below.
  BPlusTree<int> mixed;
  for (int i = 0; i < 20; ++i) mixed.Insert(1.0, -1);
  for (int i = 0; i < 40; ++i) mixed.Insert(7.0, i);
  KeyBounds from;
  from.lo = 7.0;
  std::vector<int> sevens = Collect(mixed, from);
  ASSERT_EQ(sevens.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(sevens[i], i);
}

TEST(BPlusTreeTest, SplitsAcrossManyLevels) {
  BPlusTree<int> tree;
  const int n = 20000;
  for (int i = 0; i < n; ++i) tree.Insert(static_cast<double>(i % 997), i);
  EXPECT_EQ(tree.size(), static_cast<size_t>(n));
  size_t count = 0;
  double last = -1;
  tree.ScanAll([&](int v) {
    (void)v;
    ++count;
  });
  EXPECT_EQ(count, static_cast<size_t>(n));
  // Keys come out sorted.
  tree.Scan(KeyBounds{}, [&](int v) {
    double key = static_cast<double>(v % 997);
    EXPECT_GE(key, last);
    last = key;
  });
  EXPECT_GT(tree.ApproxBytes(), 0u);
}

TEST(BPlusTreeTest, MoveTransfersOwnership) {
  BPlusTree<int> tree;
  for (int i = 0; i < 1000; ++i) tree.Insert(i, i);
  BPlusTree<int> moved = std::move(tree);
  EXPECT_EQ(moved.size(), 1000u);
  EXPECT_EQ(Collect(moved, KeyBounds{}).size(), 1000u);
}

class BPlusTreeRandomized : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BPlusTreeRandomized, MatchesMultimapOnRandomRangeQueries) {
  std::mt19937_64 rng(GetParam());
  BPlusTree<int> tree;
  std::multimap<double, int> reference;
  std::uniform_real_distribution<double> key_dist(0.0, 100.0);
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    double key = key_dist(rng);
    tree.Insert(key, i);
    reference.emplace(key, i);
  }
  for (int q = 0; q < 100; ++q) {
    KeyBounds b;
    double x = key_dist(rng);
    double y = key_dist(rng);
    b.lo = std::min(x, y);
    b.hi = std::max(x, y);
    b.lo_strict = (rng() & 1) != 0;
    b.hi_strict = (rng() & 1) != 0;
    std::vector<int> got = Collect(tree, b);
    std::vector<int> expected;
    for (const auto& [key, value] : reference) {
      if (b.Contains(key)) expected.push_back(value);
    }
    std::sort(got.begin(), got.end());
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(got, expected) << "seed=" << GetParam() << " query=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreeRandomized,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 1234));

}  // namespace
}  // namespace greta
