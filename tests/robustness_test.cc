// Robustness properties that randomized sweeps keep honest:
//  - invalid event pruning (Theorem 5.1) never changes results;
//  - modular counters equal the exact counters mod 2^64;
//  - the shared sliding-window graph equals naive per-window replication;
//  - disabling tree ranges never changes results.

#include <random>

#include "gtest/gtest.h"
#include "storage/window.h"
#include "tests/test_util.h"

namespace greta {
namespace {

using testing::MakeGreta;
using testing::RunEngine;

std::unique_ptr<Catalog> FuzzCatalog() {
  auto catalog = std::make_unique<Catalog>();
  for (const char* name : {"A", "B", "C"}) {
    catalog->DefineType(name, {{"x", Value::Kind::kDouble}});
  }
  return catalog;
}

Stream RandomStream(Catalog* catalog, std::mt19937_64* rng, int n) {
  static const char* kTypes[] = {"A", "B", "C"};
  Stream stream;
  Ts time = 0;
  for (int i = 0; i < n; ++i) {
    time += static_cast<Ts>((*rng)() % 3);
    stream.Append(EventBuilder(catalog, kTypes[(*rng)() % 3], time)
                      .Set("x", static_cast<double>((*rng)() % 10))
                      .Build());
  }
  return stream;
}

QuerySpec NegatedSpec(std::mt19937_64* rng) {
  QuerySpec spec;
  switch ((*rng)() % 3) {
    case 0:  // Case 1 with A's only successor being B: prunable.
      spec.pattern = Pattern::Seq(Pattern::Atom(0),
                                  Pattern::Not(Pattern::Atom(2)),
                                  Pattern::Atom(1));
      break;
    case 1:
      spec.pattern = Pattern::Seq(Pattern::Plus(Pattern::Atom(0)),
                                  Pattern::Not(Pattern::Atom(2)));
      break;
    default:
      spec.pattern = Pattern::Seq(Pattern::Not(Pattern::Atom(2)),
                                  Pattern::Plus(Pattern::Atom(0)));
      break;
  }
  spec.aggs = {{AggKind::kCountStar, kInvalidType, kInvalidAttr, "COUNT(*)"}};
  return spec;
}

class Robustness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Robustness, PruningNeverChangesResults) {
  std::mt19937_64 rng(GetParam() * 31);
  auto catalog = FuzzCatalog();
  QuerySpec spec = NegatedSpec(&rng);
  Stream stream = RandomStream(catalog.get(), &rng, 30);

  EngineOptions with;
  with.enable_pruning = true;
  EngineOptions without;
  without.enable_pruning = false;
  auto a = MakeGreta(catalog.get(), spec.Clone(), with);
  auto b = MakeGreta(catalog.get(), spec.Clone(), without);
  std::vector<ResultRow> rows_a = RunEngine(a.get(), stream);
  std::vector<ResultRow> rows_b = RunEngine(b.get(), stream);
  std::string diff;
  EXPECT_TRUE(RowsEquivalent(rows_a, rows_b, a->agg_plan(), &diff)) << diff;
}

TEST_P(Robustness, ModularCountersMatchExactMod64) {
  std::mt19937_64 rng(GetParam() * 97);
  auto catalog = FuzzCatalog();
  QuerySpec spec = testing::CountQuery(Pattern::Plus(Pattern::Atom(0)));
  // 70-90 A-events: counts far beyond 2^64, so promotion really happens.
  Stream stream = RandomStream(catalog.get(), &rng, 70 + GetParam() % 20);

  EngineOptions exact;
  exact.counter_mode = CounterMode::kExact;
  EngineOptions modular;
  modular.counter_mode = CounterMode::kModular;
  auto a = MakeGreta(catalog.get(), spec.Clone(), exact);
  auto b = MakeGreta(catalog.get(), spec.Clone(), modular);
  std::vector<ResultRow> rows_a = RunEngine(a.get(), stream);
  std::vector<ResultRow> rows_b = RunEngine(b.get(), stream);
  ASSERT_EQ(rows_a.size(), rows_b.size());
  for (size_t i = 0; i < rows_a.size(); ++i) {
    EXPECT_EQ(rows_a[i].aggs.count.Low64(), rows_b[i].aggs.count.Low64());
  }
}

TEST_P(Robustness, SharedWindowsMatchReplicationOnRandomSpecs) {
  std::mt19937_64 rng(GetParam() * 131);
  auto catalog = FuzzCatalog();
  Ts slide = 1 + static_cast<Ts>(rng() % 3);
  Ts within = slide * (1 + static_cast<Ts>(rng() % 4));
  WindowSpec w = WindowSpec::Sliding(within, slide);

  auto make_spec = [&](WindowSpec window) {
    QuerySpec spec = testing::CountQuery(Pattern::Seq(
        Pattern::Plus(Pattern::Atom(0)), Pattern::Atom(1)));
    spec.where.push_back(
        Expr::Binary(ExprOp::kLe, Expr::Attr(0, 0), Expr::NextAttr(0, 0)));
    spec.window = window;
    return spec;
  };

  Stream stream = RandomStream(catalog.get(), &rng, 40);
  auto shared = MakeGreta(catalog.get(), make_spec(w));
  std::vector<ResultRow> shared_rows = RunEngine(shared.get(), stream);

  for (WindowId wid = 0; wid <= LastWindowOf(stream.max_time(), w); ++wid) {
    Stream sub;
    for (const Event& e : stream.events()) {
      if (e.time >= WindowStartTime(wid, w) &&
          e.time < WindowCloseTime(wid, w)) {
        sub.Append(e);
      }
    }
    auto independent =
        MakeGreta(catalog.get(), make_spec(WindowSpec::Unbounded()));
    std::vector<ResultRow> rows = RunEngine(independent.get(), sub);
    std::string expected =
        rows.empty() ? "" : rows[0].aggs.count.ToDecimal();
    std::string actual;
    for (const ResultRow& row : shared_rows) {
      if (row.wid == wid) actual = row.aggs.count.ToDecimal();
    }
    ASSERT_EQ(actual, expected)
        << "seed=" << GetParam() << " within=" << within
        << " slide=" << slide << " wid=" << wid;
  }
}

TEST_P(Robustness, TreeRangesNeverChangeResults) {
  std::mt19937_64 rng(GetParam() * 17);
  auto catalog = FuzzCatalog();
  QuerySpec spec = testing::CountQuery(Pattern::Plus(Pattern::Atom(0)));
  spec.where.push_back(
      Expr::Binary(ExprOp::kLt, Expr::Attr(0, 0), Expr::NextAttr(0, 0)));
  spec.window = WindowSpec::Sliding(6, 2);
  Stream stream = RandomStream(catalog.get(), &rng, 40);

  EngineOptions with;
  with.enable_tree_ranges = true;
  EngineOptions without;
  without.enable_tree_ranges = false;
  auto a = MakeGreta(catalog.get(), spec.Clone(), with);
  auto b = MakeGreta(catalog.get(), spec.Clone(), without);
  std::vector<ResultRow> rows_a = RunEngine(a.get(), stream);
  std::vector<ResultRow> rows_b = RunEngine(b.get(), stream);
  std::string diff;
  EXPECT_TRUE(RowsEquivalent(rows_a, rows_b, a->agg_plan(), &diff)) << diff;
}

TEST_P(Robustness, ParallelGroupsMatchSerialWithNegationAndBroadcast) {
  // The full combination: grouping partitions, a leading negation whose
  // events broadcast into partitions, sliding windows, and a thread pool.
  std::mt19937_64 rng(GetParam() * 977);
  auto catalog = std::make_unique<Catalog>();
  catalog->DefineType("P", {{"v", Value::Kind::kInt},
                            {"g", Value::Kind::kInt}});
  catalog->DefineType("X", {{"g", Value::Kind::kInt}});

  QuerySpec spec;
  spec.pattern = Pattern::Seq(Pattern::Not(Pattern::Atom(1)),
                              Pattern::Plus(Pattern::Atom(0)));
  spec.aggs = {{AggKind::kCountStar, kInvalidType, kInvalidAttr, "COUNT(*)"}};
  spec.group_by = {"g"};
  spec.equivalence = {"v", "g"};
  spec.window = WindowSpec::Sliding(6, 3);

  Stream stream;
  Ts time = 0;
  for (int i = 0; i < 80; ++i) {
    time += static_cast<Ts>(rng() % 2);
    if (rng() % 10 == 0) {
      stream.Append(EventBuilder(catalog.get(), "X", time)
                        .Set("g", static_cast<int64_t>(rng() % 3))
                        .Build());
    } else {
      stream.Append(EventBuilder(catalog.get(), "P", time)
                        .Set("v", static_cast<int64_t>(rng() % 4))
                        .Set("g", static_cast<int64_t>(rng() % 3))
                        .Build());
    }
  }

  auto serial = MakeGreta(catalog.get(), spec.Clone());
  std::vector<ResultRow> serial_rows = RunEngine(serial.get(), stream);

  EngineOptions parallel_options;
  parallel_options.num_threads = 3;
  auto parallel = MakeGreta(catalog.get(), spec.Clone(), parallel_options);
  std::vector<ResultRow> parallel_rows = RunEngine(parallel.get(), stream);

  std::string diff;
  EXPECT_TRUE(RowsEquivalent(serial_rows, parallel_rows, serial->agg_plan(),
                             &diff))
      << diff << " seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Robustness,
                         ::testing::Range(uint64_t{1}, uint64_t{16}));

}  // namespace
}  // namespace greta
