// Tests for the K-slack out-of-order buffer: ordering guarantees, late
// drops, and end-to-end equivalence of (shuffled stream + K-slack) with the
// sorted stream.

#include "common/kslack.h"

#include <algorithm>
#include <random>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace greta {
namespace {

using testing::CountQuery;
using testing::MakeGreta;
using testing::PaperCatalog;

Event At(Catalog* catalog, const char* type, Ts time) {
  return EventBuilder(catalog, type, time)
      .Set("attr", static_cast<double>(time))
      .Build();
}

TEST(KSlackTest, ReordersWithinSlack) {
  auto catalog = PaperCatalog();
  KSlackBuffer buffer(/*slack=*/3);
  std::vector<Ts> released;
  auto push = [&](Ts t) {
    for (Event& e : buffer.Push(At(catalog.get(), "A", t))) {
      released.push_back(e.time);
    }
  };
  push(5);
  push(3);  // 2 late, within slack.
  push(7);  // Watermark 7-3=4: releases 3.
  push(6);
  push(12);  // Watermark 9: releases 5, 6, 7.
  EXPECT_EQ(released, (std::vector<Ts>{3, 5, 6, 7}));
  for (Event& e : buffer.Flush()) released.push_back(e.time);
  EXPECT_EQ(released, (std::vector<Ts>{3, 5, 6, 7, 12}));
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST(KSlackTest, AssignsMonotoneSequenceNumbers) {
  auto catalog = PaperCatalog();
  KSlackBuffer buffer(2);
  std::vector<Event> out;
  for (Ts t : {4, 2, 3, 9, 8, 15}) {
    for (Event& e : buffer.Push(At(catalog.get(), "A", t))) {
      out.push_back(std::move(e));
    }
  }
  for (Event& e : buffer.Flush()) out.push_back(std::move(e));
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i].time, out[i - 1].time);
    EXPECT_EQ(out[i].seq, out[i - 1].seq + 1);
  }
}

TEST(KSlackTest, DropsEventsBeyondSlack) {
  auto catalog = PaperCatalog();
  KSlackBuffer buffer(1);
  (void)buffer.Push(At(catalog.get(), "A", 10));
  (void)buffer.Push(At(catalog.get(), "A", 20));  // Releases up to 19.
  EXPECT_EQ(buffer.dropped(), 0u);
  (void)buffer.Push(At(catalog.get(), "A", 5));  // Too late.
  EXPECT_EQ(buffer.dropped(), 1u);
}

class KSlackEndToEnd : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KSlackEndToEnd, ShuffledStreamMatchesSortedStream) {
  auto catalog = PaperCatalog();
  std::mt19937_64 rng(GetParam());

  // Build a sorted stream, then a bounded shuffle of it (each event moves
  // at most `slack` time units of displacement).
  constexpr Ts kSlack = 4;
  std::vector<Event> sorted;
  static const char* kTypes[] = {"A", "B", "C"};
  for (int i = 0; i < 40; ++i) {
    sorted.push_back(At(catalog.get(), kTypes[rng() % 3],
                        static_cast<Ts>(i / 2)));
  }
  std::vector<Event> shuffled = sorted;
  // Swap adjacent-ish entries whose times differ by at most kSlack - 1.
  for (int pass = 0; pass < 100; ++pass) {
    size_t i = rng() % (shuffled.size() - 1);
    if (shuffled[i + 1].time - shuffled[i].time < kSlack) {
      std::swap(shuffled[i], shuffled[i + 1]);
    }
  }

  auto run_sorted = [&]() {
    QuerySpec spec = CountQuery(Pattern::Plus(Pattern::Seq(
        Pattern::Plus(Pattern::Atom(0)), Pattern::Atom(1))));
    spec.window = WindowSpec::Sliding(6, 2);
    auto engine = MakeGreta(catalog.get(), std::move(spec));
    Stream stream;
    for (const Event& e : sorted) stream.Append(e);
    return testing::RunEngine(engine.get(), stream);
  };
  auto run_shuffled_with_kslack = [&]() {
    QuerySpec spec = CountQuery(Pattern::Plus(Pattern::Seq(
        Pattern::Plus(Pattern::Atom(0)), Pattern::Atom(1))));
    spec.window = WindowSpec::Sliding(6, 2);
    auto engine = MakeGreta(catalog.get(), std::move(spec));
    KSlackBuffer buffer(kSlack);
    for (const Event& raw : shuffled) {
      for (Event& e : buffer.Push(raw)) {
        EXPECT_TRUE(engine->Process(e).ok());
      }
    }
    for (Event& e : buffer.Flush()) {
      EXPECT_TRUE(engine->Process(e).ok());
    }
    EXPECT_TRUE(engine->Flush().ok());
    EXPECT_EQ(buffer.dropped(), 0u);
    return engine->TakeResults();
  };

  std::vector<ResultRow> expected = run_sorted();
  std::vector<ResultRow> actual = run_shuffled_with_kslack();
  AggPlan plan;
  std::string diff;
  EXPECT_TRUE(RowsEquivalent(expected, actual, plan, &diff)) << diff;
}

INSTANTIATE_TEST_SUITE_P(Seeds, KSlackEndToEnd,
                         ::testing::Values(1, 2, 3, 7, 11, 42));

}  // namespace
}  // namespace greta
