// Unit tests for the NegationLink barrier bookkeeping: the
// pending/committed split that implements Definition 5's strictness
// ("events arriving after en.time") independent of same-timestamp
// processing order.

#include "core/negation.h"

#include "gtest/gtest.h"

namespace greta {
namespace {

TEST(NegationLinkTest, NoTrendsNoBarriers) {
  NegationLink link(NegationKind::kBetween, 0, kInvalidState);
  EXPECT_EQ(link.MaxStartBarrier(0, 100), kMinTs);
  EXPECT_EQ(link.MinEndBarrier(0, 100), kMaxTs);
  EXPECT_EQ(link.CloseMaxStart(0), kMinTs);
}

TEST(NegationLinkTest, TrendAffectsOnlyLaterTimestamps) {
  NegationLink link(NegationKind::kBetween, 0, kInvalidState);
  link.ReportTrendEnd(/*wid=*/0, /*end_ts=*/10, /*max_start_ts=*/5);
  // An event at the trend's own end timestamp is not "after en.time".
  EXPECT_EQ(link.MaxStartBarrier(0, 10), kMinTs);
  EXPECT_EQ(link.MinEndBarrier(0, 10), kMaxTs);
  // Strictly later events see it.
  EXPECT_EQ(link.MaxStartBarrier(0, 11), 5);
  EXPECT_EQ(link.MinEndBarrier(0, 11), 10);
}

TEST(NegationLinkTest, CloseIncludesPendingTrends) {
  NegationLink link(NegationKind::kTrailing, -1, kInvalidState);
  link.ReportTrendEnd(0, 10, 5);
  // Even before any later timestamp was processed, the window-close filter
  // must account for the trend (Case 2 looks backward).
  EXPECT_EQ(link.CloseMaxStart(0), 5);
}

TEST(NegationLinkTest, BarriersAreMonotoneMaxima) {
  NegationLink link(NegationKind::kBetween, 0, kInvalidState);
  link.ReportTrendEnd(0, 10, 5);
  link.ReportTrendEnd(0, 12, 3);  // Earlier start: must not lower the max.
  link.ReportTrendEnd(0, 14, 8);
  EXPECT_EQ(link.MaxStartBarrier(0, 15), 8);
  EXPECT_EQ(link.MinEndBarrier(0, 15), 10);
}

TEST(NegationLinkTest, SameTimestampTrendsFoldTogether) {
  NegationLink link(NegationKind::kBetween, 0, kInvalidState);
  link.ReportTrendEnd(0, 10, 5);
  link.ReportTrendEnd(0, 10, 7);  // Second trend ending at the same time.
  EXPECT_EQ(link.MaxStartBarrier(0, 10), kMinTs);
  EXPECT_EQ(link.MaxStartBarrier(0, 11), 7);
}

TEST(NegationLinkTest, WindowsAreIndependent) {
  NegationLink link(NegationKind::kBetween, 0, kInvalidState);
  link.ReportTrendEnd(/*wid=*/3, 10, 5);
  EXPECT_EQ(link.MaxStartBarrier(3, 11), 5);
  EXPECT_EQ(link.MaxStartBarrier(4, 11), kMinTs);
  link.ForgetWindow(3);
  EXPECT_EQ(link.MaxStartBarrier(3, 11), kMinTs);
}

TEST(NegationLinkTest, InterleavedQueriesAndReports) {
  // Report at t=10, query at t=12 (folds), report at t=12, query at t=12
  // again (the new report is pending), then t=13 commits it.
  NegationLink link(NegationKind::kBetween, 0, kInvalidState);
  link.ReportTrendEnd(0, 10, 4);
  EXPECT_EQ(link.MaxStartBarrier(0, 12), 4);
  link.ReportTrendEnd(0, 12, 9);
  EXPECT_EQ(link.MaxStartBarrier(0, 12), 4);
  EXPECT_EQ(link.MaxStartBarrier(0, 13), 9);
}

}  // namespace
}  // namespace greta
