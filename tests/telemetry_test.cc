// Telemetry subsystem unit tests (src/telemetry/): sharded counters and
// gauges under concurrent updates, log2-histogram bucketing and quantiles,
// the seqlock trace ring (capacity rounding, lap overwrite, torn-read
// rejection under concurrent emitters), registry lookup-or-create and
// arm/disarm gating, and both exporters — Prometheus text framing and JSON
// validity including escaping of the quotes labeled names embed.

#include <atomic>
#include <cctype>
#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "telemetry/exporters.h"
#include "telemetry/telemetry.h"

namespace greta::telemetry {
namespace {

TEST(TelemetryCounter, AddAcrossCellsSums) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add(3);
  c.Add(4);
  // Explicit cell hints land in distinct cells; Value() must sum them all.
  for (size_t slot = 0; slot < Counter::kCells; ++slot) c.AddAt(slot, 1);
  EXPECT_EQ(c.Value(), 7u + Counter::kCells);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(TelemetryCounter, ConcurrentAddsLoseNothing) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(TelemetryGauge, SetAndSetMax) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(2.5);
  EXPECT_EQ(g.Value(), 2.5);
  g.Set(-1.0);
  EXPECT_EQ(g.Value(), -1.0);
  g.SetMax(3.0);
  EXPECT_EQ(g.Value(), 3.0);
  g.SetMax(1.0);  // smaller: no-op
  EXPECT_EQ(g.Value(), 3.0);
  g.Reset();
  EXPECT_EQ(g.Value(), 0.0);
}

TEST(TelemetryGauge, ConcurrentSetMaxKeepsMaximum) {
  Gauge g;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&g, t] {
      for (int i = 0; i < 5000; ++i) {
        g.SetMax(static_cast<double>(t * 5000 + i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(g.Value(), 7.0 * 5000.0 + 4999.0);
}

TEST(TelemetryHistogram, BucketsByBitWidth) {
  // Bucket i holds values of bit-width i: 0 -> bucket 0, 1 -> bucket 1,
  // [2,3] -> bucket 2, [4,7] -> bucket 3, ...
  Histogram h;
  h.Record(0);
  h.Record(1);
  h.Record(2);
  h.Record(3);
  h.Record(4);
  h.Record(1000);  // bit-width 10
  Histogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, 6u);
  EXPECT_EQ(s.sum, 0u + 1 + 2 + 3 + 4 + 1000);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 2u);
  EXPECT_EQ(s.buckets[3], 1u);
  EXPECT_EQ(s.buckets[10], 1u);
  EXPECT_DOUBLE_EQ(s.Mean(), 1010.0 / 6.0);
}

TEST(TelemetryHistogram, BucketUpperBoundsAndQuantiles) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(63), UINT64_MAX);

  Histogram h;
  // 90 small samples, 10 large ones: p50 stays in the small bucket, p99
  // reaches the large one.
  for (int i = 0; i < 90; ++i) h.Record(3);
  for (int i = 0; i < 10; ++i) h.Record(1 << 20);
  Histogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.Quantile(0.50), Histogram::BucketUpperBound(2));
  EXPECT_EQ(s.Quantile(0.99), Histogram::BucketUpperBound(21));
  // Empty snapshot quantile is 0.
  EXPECT_EQ(Histogram::Snapshot{}.Quantile(0.99), 0u);
}

TEST(TelemetryHistogram, SaturatesAtLastBucket) {
  Histogram h;
  h.Record(UINT64_MAX);
  Histogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.buckets[Histogram::kBuckets - 1], 1u);
}

// ------------------------------------------------------------- trace ring

TraceEvent MakeTrace(TraceKind kind, uint64_t a) {
  TraceEvent e;
  e.kind = kind;
  e.shard = 3;
  e.cluster = 7;
  e.ts = 42;
  e.wid = 5;
  e.a = a;
  e.b = a + 1;
  e.x = 1.5;
  e.y = -2.5;
  return e;
}

TEST(TelemetryTraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(0).capacity(), 8u);   // min 8
  EXPECT_EQ(TraceRing(5).capacity(), 8u);
  EXPECT_EQ(TraceRing(8).capacity(), 8u);
  EXPECT_EQ(TraceRing(9).capacity(), 16u);
  EXPECT_EQ(TraceRing(1024).capacity(), 1024u);
}

TEST(TelemetryTraceRing, RoundTripsPayload) {
  TraceRing ring(8);
  ring.Emit(MakeTrace(TraceKind::kPlanDecision, 11));
  std::vector<TraceEvent> snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].kind, TraceKind::kPlanDecision);
  EXPECT_EQ(snap[0].shard, 3u);
  EXPECT_EQ(snap[0].cluster, 7u);
  EXPECT_EQ(snap[0].ts, 42);
  EXPECT_EQ(snap[0].wid, 5);
  EXPECT_EQ(snap[0].a, 11u);
  EXPECT_EQ(snap[0].b, 12u);
  EXPECT_EQ(snap[0].x, 1.5);
  EXPECT_EQ(snap[0].y, -2.5);
}

TEST(TelemetryTraceRing, LapKeepsNewestTail) {
  TraceRing ring(8);
  for (uint64_t i = 0; i < 20; ++i) {
    ring.Emit(MakeTrace(TraceKind::kWindowClose, i));
  }
  EXPECT_EQ(ring.total_emitted(), 20u);
  std::vector<TraceEvent> snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 8u);  // the ring is a tail, not a log
  // Oldest first, and exactly the last capacity() events survive.
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].a, 12u + i);
    EXPECT_LT(i == 0 ? 0 : snap[i - 1].seq, snap[i].seq);
  }
  ring.Reset();
  EXPECT_TRUE(ring.Snapshot().empty());
  EXPECT_EQ(ring.total_emitted(), 0u);
}

TEST(TelemetryTraceRing, ConcurrentEmitNeverTearsEvents) {
  TraceRing ring(64);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 5000;
  std::atomic<bool> stop{false};
  // Snapshot continuously while writers lap the ring; every decoded event
  // must be internally consistent (b == a + 1 is the writers' invariant).
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const TraceEvent& e : ring.Snapshot()) {
        ASSERT_EQ(e.b, e.a + 1);
        ASSERT_EQ(e.kind, TraceKind::kShardStall);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&ring, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        ring.Emit(MakeTrace(TraceKind::kShardStall, t * kPerThread + i));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(ring.total_emitted(), kThreads * kPerThread);
  // Quiescent snapshot: full ring, strictly increasing seq.
  std::vector<TraceEvent> snap = ring.Snapshot();
  EXPECT_EQ(snap.size(), ring.capacity());
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].seq, snap[i].seq);
  }
}

// --------------------------------------------------------------- registry

TEST(TelemetryRegistry, LookupOrCreateIsStable) {
  MetricRegistry reg;
  Counter* c1 = reg.GetCounter("greta_test_total");
  Counter* c2 = reg.GetCounter("greta_test_total");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(reg.GetCounter("greta_other_total"), c1);
  Gauge* g = reg.GetGauge("greta_test_gauge");
  EXPECT_EQ(reg.GetGauge("greta_test_gauge"), g);
  Histogram* h = reg.GetHistogram("greta_test_hist");
  EXPECT_EQ(reg.GetHistogram("greta_test_hist"), h);

  c1->Add(5);
  g->Set(1.0);
  h->Record(2);
  reg.Reset();
  // Reset zeroes values but keeps registrations and addresses.
  EXPECT_EQ(reg.GetCounter("greta_test_total"), c1);
  EXPECT_EQ(c1->Value(), 0u);
  EXPECT_EQ(g->Value(), 0.0);
  EXPECT_EQ(h->Snap().count, 0u);
}

TEST(TelemetryRegistry, ArmedGatesIfAccessors) {
  MetricRegistry reg;
  EXPECT_TRUE(reg.enabled());
#if GRETA_TELEMETRY
  EXPECT_TRUE(reg.Armed());
  EXPECT_NE(reg.CounterIf("greta_armed_total"), nullptr);
  EXPECT_NE(reg.GaugeIf("greta_armed_gauge"), nullptr);
  EXPECT_NE(reg.HistogramIf("greta_armed_hist"), nullptr);
  EXPECT_NE(reg.TraceIf(), nullptr);
#endif
  reg.set_enabled(false);
  EXPECT_FALSE(reg.Armed());
  EXPECT_EQ(reg.CounterIf("greta_armed_total"), nullptr);
  EXPECT_EQ(reg.GaugeIf("greta_armed_gauge"), nullptr);
  EXPECT_EQ(reg.HistogramIf("greta_armed_hist"), nullptr);
  EXPECT_EQ(reg.TraceIf(), nullptr);
}

TEST(TelemetryRegistry, ConfigureAppliesOptions) {
  MetricRegistry reg;
  TelemetryOptions options;
  options.enabled = false;
  options.trace_capacity = 100;  // rounds to 128
  options.sample_every = 4;
  reg.Configure(options);
  EXPECT_FALSE(reg.enabled());
  EXPECT_EQ(reg.trace().capacity(), 128u);
  EXPECT_EQ(reg.sample_every(), 4u);
}

TEST(TelemetryRegistry, LabeledNames) {
  EXPECT_EQ(Labeled("greta_runtime_queue_depth_hwm", "shard", 2),
            "greta_runtime_queue_depth_hwm{shard=\"2\"}");
  EXPECT_EQ(Labeled("greta_sharing_cluster_mode", "shard", 0, "cluster", 3),
            "greta_sharing_cluster_mode{shard=\"0\",cluster=\"3\"}");
}

TEST(TelemetryRegistry, ScrapePreservesRegistrationOrder) {
  MetricRegistry reg;
  reg.GetCounter("greta_b_total")->Add(2);
  reg.GetCounter("greta_a_total")->Add(1);
  std::vector<MetricRegistry::CounterSample> counters =
      reg.ScrapeCounters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].name, "greta_b_total");
  EXPECT_EQ(counters[0].value, 2u);
  EXPECT_EQ(counters[1].name, "greta_a_total");
  EXPECT_EQ(counters[1].value, 1u);
}

// -------------------------------------------------------------- exporters

TEST(TelemetryExporters, PrometheusTextFraming) {
  MetricRegistry reg;
  reg.GetCounter("greta_events_total")->Add(7);
  reg.GetCounter(Labeled("greta_migrations_total", "shard", 1))->Add(2);
  reg.GetGauge("greta_lag")->Set(3.5);
  Histogram* h = reg.GetHistogram("greta_ns");
  h->Record(1);
  h->Record(6);
  h->Record(6);

  std::string text = ExportPrometheus(reg);
  EXPECT_NE(text.find("# TYPE greta_events_total counter\n"
                      "greta_events_total 7\n"),
            std::string::npos);
  // Labeled series: TYPE line carries the base name, the sample the labels.
  EXPECT_NE(text.find("# TYPE greta_migrations_total counter\n"
                      "greta_migrations_total{shard=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("greta_lag 3.5\n"), std::string::npos);
  // Histogram buckets are cumulative with le upper bounds and a +Inf cap.
  EXPECT_NE(text.find("greta_ns_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("greta_ns_bucket{le=\"7\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("greta_ns_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("greta_ns_sum 13\n"), std::string::npos);
  EXPECT_NE(text.find("greta_ns_count 3\n"), std::string::npos);
}

TEST(TelemetryExporters, JsonEscapesLabeledNames) {
  MetricRegistry reg;
  reg.GetCounter(Labeled("greta_kernel_total", "kernel", 0))->Add(4);
  reg.GetGauge(Labeled("greta_mode", "shard", 0, "cluster", 1))->Set(1.0);
  reg.GetHistogram("greta_plain_hist")->Record(9);
  reg.trace().Emit(MakeTrace(TraceKind::kMigrationStart, 1));

  std::string json = ExportJson(reg, /*include_trace=*/true);
  // The raw quotes of the labeled name must be escaped in the JSON key.
  EXPECT_NE(json.find("\"greta_kernel_total{kernel=\\\"0\\\"}\":4"),
            std::string::npos);
  EXPECT_NE(json.find("\"greta_mode{shard=\\\"0\\\",cluster=\\\"1\\\"}\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"trace\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"migration_start\""), std::string::npos);
  // No unescaped quote may survive inside a key: every `{` of a labeled
  // name is preceded by characters, never by a bare '"' pair mismatch —
  // cheap structural sanity: balanced braces and quotes count is even.
  size_t quotes = 0;
  for (size_t i = 0; i < json.size(); ++i) {
    if (json[i] == '"' && (i == 0 || json[i - 1] != '\\')) ++quotes;
  }
  EXPECT_EQ(quotes % 2, 0u);

  std::string no_trace = ExportJson(reg, /*include_trace=*/false);
  EXPECT_EQ(no_trace.find("\"trace\""), std::string::npos);
}

TEST(TelemetryExporters, ExplainReportSmoke) {
  MetricRegistry reg;
  reg.GetCounter("greta_events_total")->Add(3);
  reg.GetGauge("greta_lag")->Set(0.5);
  reg.GetHistogram("greta_ns")->Record(100);
  for (uint64_t i = 0; i < 40; ++i) {
    reg.trace().Emit(MakeTrace(TraceKind::kWatermarkAdvance, i));
  }
  std::string report = ExplainTelemetry(reg, /*trace_tail=*/8);
  EXPECT_NE(report.find("greta_events_total"), std::string::npos);
  EXPECT_NE(report.find("greta_lag"), std::string::npos);
  EXPECT_NE(report.find("greta_ns"), std::string::npos);
  EXPECT_NE(report.find("watermark_advance"), std::string::npos);
  // The tail cap holds: at most 8 trace lines are printed.
  size_t lines = 0;
  for (size_t pos = report.find("watermark_advance");
       pos != std::string::npos;
       pos = report.find("watermark_advance", pos + 1)) {
    ++lines;
  }
  EXPECT_EQ(lines, 8u);
}

// Minimal strict JSON acceptor (RFC 8259 grammar, no semantic decoding):
// proves the exporter emits one complete parseable document even when
// instrument names carry quotes, control characters and backslashes.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Peek(char c) const { return pos_ < s_.size() && s_[pos_] == c; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Literal(const char* word) {
    const size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool Object() {
    ++pos_;
    SkipWs();
    if (Peek('}')) return ++pos_, true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Peek(':')) return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      if (Peek('}')) return ++pos_, true;
      return false;
    }
  }
  bool Array() {
    ++pos_;
    SkipWs();
    if (Peek(']')) return ++pos_, true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      if (Peek(']')) return ++pos_, true;
      return false;
    }
  }
  bool String() {
    if (!Peek('"')) return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') return ++pos_, true;
      if (c < 0x20) return false;  // raw control char: invalid JSON
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0) {
              return false;
            }
          }
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool Number() {
    const size_t start = pos_;
    if (Peek('-')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(TelemetryExporters, PrometheusEscapesAdversarialLabelValues) {
  MetricRegistry reg;
  // A label value smuggling a backslash and a newline: both must render as
  // escape sequences, or the scrape format breaks at this line.
  reg.GetCounter("greta_bad_total{path=\"a\\b\nc\"}")->Add(1);
  std::string text = ExportPrometheus(reg);
  EXPECT_NE(text.find("greta_bad_total{path=\"a\\\\b\\nc\"} 1\n"),
            std::string::npos)
      << text;
  // No sample line may contain a raw newline mid-line: every '\n' is
  // followed by a '#', a name character, or end-of-document.
  for (size_t pos = text.find('\n'); pos != std::string::npos;
       pos = text.find('\n', pos + 1)) {
    if (pos + 1 == text.size()) break;
    const char next = text[pos + 1];
    EXPECT_TRUE(next == '#' || std::isalpha(static_cast<unsigned char>(next)))
        << "raw newline mid-sample at offset " << pos;
  }
}

TEST(TelemetryExporters, PrometheusRendersEmptyHistogram) {
  MetricRegistry reg;
  reg.GetHistogram("greta_empty_ns");  // registered, never recorded
  std::string text = ExportPrometheus(reg);
  // All value buckets are sparse-skipped; the +Inf cap, sum and count must
  // still frame a complete (zero) histogram.
  EXPECT_NE(text.find("greta_empty_ns_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("greta_empty_ns_sum 0\n"), std::string::npos);
  EXPECT_NE(text.find("greta_empty_ns_count 0\n"), std::string::npos);
}

TEST(TelemetryExporters, PrometheusRendersOverflowOnlyHistogram) {
  MetricRegistry reg;
  reg.GetHistogram("greta_sat_ns")->Record(UINT64_MAX);
  std::string text = ExportPrometheus(reg);
  // The saturating bucket's upper bound is UINT64_MAX, then the +Inf cap.
  EXPECT_NE(text.find("greta_sat_ns_bucket{le=\"18446744073709551615\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("greta_sat_ns_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("greta_sat_ns_count 1\n"), std::string::npos);
}

TEST(TelemetryExporters, JsonRoundTripsAdversarialNames) {
  MetricRegistry reg;
  reg.GetCounter("greta_evil\ntotal{k=\"a\tb\"}")->Add(1);
  reg.GetGauge(std::string("greta_ctl_") + '\x01' + "gauge")->Set(2.0);
  reg.GetHistogram("greta_\"quoted\"_hist")->Record(5);
  reg.trace().Emit(MakeTrace(TraceKind::kWindowClose, 9));
  std::string json = ExportJson(reg, /*include_trace=*/true);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  std::string no_trace = ExportJson(reg, /*include_trace=*/false);
  EXPECT_TRUE(JsonChecker(no_trace).Valid()) << no_trace;
}

TEST(TelemetryExporters, FormatIso8601KnownInstants) {
  EXPECT_EQ(FormatIso8601(0), "-");
  EXPECT_EQ(FormatIso8601(-5), "-");
  EXPECT_EQ(FormatIso8601(1000000000LL), "1970-01-01T00:00:01.000Z");
  EXPECT_EQ(FormatIso8601(1700000000123000000LL),
            "2023-11-14T22:13:20.123Z");
}

TEST(TelemetryRegistry, ClockAnchorMapsSteadyToSystem) {
  MetricRegistry reg;
  const ClockAnchor anchor = reg.clock_anchor();
  ASSERT_TRUE(anchor.valid());
  // Identity at the anchor point, then linear in the steady delta.
  EXPECT_EQ(anchor.ToSystemNs(static_cast<uint64_t>(anchor.steady_ns)),
            anchor.system_ns);
  EXPECT_EQ(anchor.ToSystemNs(static_cast<uint64_t>(anchor.steady_ns) + 5),
            anchor.system_ns + 5);
  // Configure re-captures the pair; the new anchor cannot move backwards.
  reg.Configure(TelemetryOptions{});
  const ClockAnchor again = reg.clock_anchor();
  ASSERT_TRUE(again.valid());
  EXPECT_GE(again.steady_ns, anchor.steady_ns);
  EXPECT_GE(again.system_ns, 0);
}

TEST(TelemetryTraceRing, StampsWallClockOnEmit) {
  TraceRing ring(8);
  ring.Emit(MakeTrace(TraceKind::kWindowClose, 1));
  std::vector<TraceEvent> snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_NE(snap[0].when_ns, 0u);  // stamped at emission
  // An explicit caller stamp is preserved verbatim.
  TraceEvent e = MakeTrace(TraceKind::kWindowClose, 2);
  e.when_ns = 1234;
  ring.Emit(e);
  snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[1].when_ns, 1234u);
}

TEST(TelemetryTraceKinds, AllNamed) {
  for (TraceKind kind :
       {TraceKind::kNone, TraceKind::kWindowClose,
        TraceKind::kWatermarkAdvance, TraceKind::kPanePurge,
        TraceKind::kPlanDecision, TraceKind::kMigrationStart,
        TraceKind::kMigrationFinish, TraceKind::kShardStall}) {
    EXPECT_NE(std::string(TraceKindName(kind)), "");
  }
}

}  // namespace
}  // namespace greta::telemetry
