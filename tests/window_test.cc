// Tests for sliding-window semantics: window arithmetic, sub-graph sharing
// across overlapping windows (Section 6, Figure 9 / Example 6), pane purge
// and equivalence with per-window independent evaluation.

#include "storage/window.h"

#include "gtest/gtest.h"
#include "storage/pane.h"
#include "tests/test_util.h"

namespace greta {
namespace {

using testing::CountQuery;
using testing::Figure6Stream;
using testing::MakeGreta;
using testing::PaperCatalog;
using testing::RunEngine;

TEST(WindowMathTest, FirstLastWindow) {
  WindowSpec w = WindowSpec::Sliding(10, 3);
  // Window k covers [3k, 3k+10).
  EXPECT_EQ(FirstWindowOf(0, w), 0);
  EXPECT_EQ(LastWindowOf(0, w), 0);
  EXPECT_EQ(FirstWindowOf(9, w), 0);
  EXPECT_EQ(LastWindowOf(9, w), 3);
  EXPECT_EQ(FirstWindowOf(10, w), 1);
  EXPECT_EQ(LastWindowOf(12, w), 4);
  EXPECT_EQ(MaxWindowsPerEvent(w), 4);
  EXPECT_EQ(WindowStartTime(2, w), 6);
  EXPECT_EQ(WindowCloseTime(2, w), 16);
  EXPECT_EQ(PaneSize(w), 1);  // gcd(10, 3)
  EXPECT_EQ(PaneSize(WindowSpec::Sliding(10, 5)), 5);
}

TEST(WindowMathTest, TumblingAndUnbounded) {
  WindowSpec t = WindowSpec::Tumbling(10);
  EXPECT_EQ(FirstWindowOf(25, t), 2);
  EXPECT_EQ(LastWindowOf(25, t), 2);
  EXPECT_EQ(MaxWindowsPerEvent(t), 1);
  WindowSpec u = WindowSpec::Unbounded();
  EXPECT_EQ(FirstWindowOf(123456, u), 0);
  EXPECT_EQ(LastWindowOf(123456, u), 0);
  EXPECT_EQ(MaxWindowsPerEvent(u), 1);
}

TEST(WindowMathTest, FloorDivHandlesNegatives) {
  EXPECT_EQ(FloorDiv(7, 3), 2);
  EXPECT_EQ(FloorDiv(-7, 3), -3);
  EXPECT_EQ(FloorDiv(-6, 3), -2);
}

TEST(PaneStoreTest, InsertScanAndPurge) {
  struct V {
    int id;
  };
  PaneStore<V> store(/*pane_size=*/10, /*num_buckets=*/2);
  store.Insert(5, 0, 1.0, V{1});
  store.Insert(15, 0, 2.0, V{2});
  store.Insert(25, 1, 3.0, V{3});
  store.Insert(25, 0, 0.5, V{4});
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.num_panes(), 3u);

  std::vector<int> seen;
  store.ScanBucket(0, 30, 0, KeyBounds{}, [&](V* v) { seen.push_back(v->id); });
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 4}));

  // Time-bounded scan skips panes outside the range.
  seen.clear();
  store.ScanBucket(10, 19, 0, KeyBounds{},
                   [&](V* v) { seen.push_back(v->id); });
  EXPECT_EQ(seen, (std::vector<int>{2}));

  // Key-bounded scan.
  seen.clear();
  KeyBounds kb;
  kb.lo = 1.5;
  store.ScanBucket(0, 30, 0, kb, [&](V* v) { seen.push_back(v->id); });
  EXPECT_EQ(seen, (std::vector<int>{2}));

  // Purge drops whole panes.
  size_t freed = store.PurgeBefore(20);
  EXPECT_EQ(freed, 2u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.num_panes(), 1u);
}

TEST(WindowTest, Figure9SubGraphSharing) {
  // Example 6: (SEQ(A+, B))+ WITHIN 10 SLIDE 3 over the Figure 6 stream.
  // Expected per-window counts (computed by hand, validated against
  // independent per-window evaluation below): W0 [0,10) = 43,
  // W1 [3,13) = 13, W2 [6,16) = 1, W3 [9,19) has only b9 (no trends).
  auto catalog = PaperCatalog();
  QuerySpec spec = CountQuery(Pattern::Plus(Pattern::Seq(
      Pattern::Plus(Pattern::Atom(0)), Pattern::Atom(1))));
  spec.window = WindowSpec::Sliding(10, 3);
  auto engine = MakeGreta(catalog.get(), std::move(spec));
  Stream stream = Figure6Stream(catalog.get());
  std::vector<ResultRow> rows = RunEngine(engine.get(), stream);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].wid, 0);
  EXPECT_EQ(rows[0].aggs.count.ToDecimal(), "43");
  EXPECT_EQ(rows[1].wid, 1);
  EXPECT_EQ(rows[1].aggs.count.ToDecimal(), "13");
  EXPECT_EQ(rows[2].wid, 2);
  EXPECT_EQ(rows[2].aggs.count.ToDecimal(), "1");
}

TEST(WindowTest, SharedGraphMatchesIndependentPerWindowRuns) {
  // The shared-graph per-window aggregates must equal running each window
  // as its own unbounded query over the window's sub-stream (the naive
  // sub-graph replication of Figure 9(a)).
  auto catalog = PaperCatalog();
  WindowSpec w = WindowSpec::Sliding(6, 2);
  Stream stream = Figure6Stream(catalog.get());

  QuerySpec shared_spec = CountQuery(Pattern::Plus(Pattern::Seq(
      Pattern::Plus(Pattern::Atom(0)), Pattern::Atom(1))));
  shared_spec.window = w;
  auto shared = MakeGreta(catalog.get(), std::move(shared_spec));
  std::vector<ResultRow> shared_rows = RunEngine(shared.get(), stream);

  for (WindowId wid = 0; wid <= LastWindowOf(stream.max_time(), w); ++wid) {
    Stream sub;
    for (const Event& e : stream.events()) {
      if (e.time >= WindowStartTime(wid, w) &&
          e.time < WindowCloseTime(wid, w)) {
        sub.Append(e);
      }
    }
    QuerySpec spec = CountQuery(Pattern::Plus(Pattern::Seq(
        Pattern::Plus(Pattern::Atom(0)), Pattern::Atom(1))));
    auto independent = MakeGreta(catalog.get(), std::move(spec));
    std::vector<ResultRow> rows = RunEngine(independent.get(), sub);
    std::string expected = rows.empty() ? "" : rows[0].aggs.count.ToDecimal();
    std::string actual;
    for (const ResultRow& row : shared_rows) {
      if (row.wid == wid) actual = row.aggs.count.ToDecimal();
    }
    EXPECT_EQ(actual, expected) << "window " << wid;
  }
}

TEST(WindowTest, ResultsEmittedIncrementallyAtWindowClose) {
  // A window's row is available as soon as an event at/after its close time
  // arrives — not only at Flush.
  auto catalog = PaperCatalog();
  QuerySpec spec = CountQuery(Pattern::Plus(Pattern::Atom(0)));
  spec.window = WindowSpec::Tumbling(10);
  auto engine = MakeGreta(catalog.get(), std::move(spec));
  ASSERT_TRUE(engine
                  ->Process(EventBuilder(catalog.get(), "A", 1)
                                .Set("attr", 1.0)
                                .Build())
                  .ok());
  EXPECT_TRUE(engine->TakeResults().empty());
  ASSERT_TRUE(engine
                  ->Process(EventBuilder(catalog.get(), "A", 12)
                                .Set("attr", 1.0)
                                .Build())
                  .ok());
  std::vector<ResultRow> rows = engine->TakeResults();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].wid, 0);
  EXPECT_EQ(rows[0].aggs.count.ToDecimal(), "1");
}

TEST(WindowTest, PanePurgeBoundsMemory) {
  // Streaming many tumbling windows: expired panes are deleted, so current
  // memory stays bounded while peak reflects one window's worth.
  auto catalog = PaperCatalog();
  QuerySpec spec = CountQuery(Pattern::Plus(Pattern::Atom(0)));
  spec.window = WindowSpec::Tumbling(10);
  auto engine = MakeGreta(catalog.get(), std::move(spec));
  for (Ts t = 0; t < 1000; ++t) {
    ASSERT_TRUE(engine
                    ->Process(EventBuilder(catalog.get(), "A", t)
                                  .Set("attr", 1.0)
                                  .Build())
                    .ok());
  }
  ASSERT_TRUE(engine->Flush().ok());
  std::vector<ResultRow> rows = engine->TakeResults();
  EXPECT_EQ(rows.size(), 100u);
  for (const ResultRow& row : rows) {
    EXPECT_EQ(row.aggs.count.ToDecimal(), "1023");  // 2^10 - 1
  }
  // Peak far below what 1000 retained events with 100 windows would need.
  EXPECT_LT(engine->stats().peak_bytes, 200 * 1024u);
}

TEST(WindowTest, EventsInMultipleWindowsKeepPerWindowCounts) {
  // One event in overlapping windows contributes to each (Section 6: an
  // event that falls into k windows maintains k aggregates).
  auto catalog = PaperCatalog();
  QuerySpec spec = CountQuery(Pattern::Plus(Pattern::Atom(0)));
  spec.window = WindowSpec::Sliding(4, 1);
  auto engine = MakeGreta(catalog.get(), std::move(spec));
  Stream stream;
  stream.Append(
      EventBuilder(catalog.get(), "A", 5).Set("attr", 1.0).Build());
  std::vector<ResultRow> rows = RunEngine(engine.get(), stream);
  // Windows [2,6), [3,7), [4,8), [5,9) all contain t=5.
  ASSERT_EQ(rows.size(), 4u);
  for (const ResultRow& row : rows) {
    EXPECT_EQ(row.aggs.count.ToDecimal(), "1");
  }
  EXPECT_EQ(rows[0].wid, 2);
  EXPECT_EQ(rows[3].wid, 5);
}

}  // namespace
}  // namespace greta
