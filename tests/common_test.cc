// Unit tests for the common substrate: values, string interning, catalogs,
// events, streams, status, memory tracking, and the thread pool.

#include <atomic>

#include "common/catalog.h"
#include "common/event.h"
#include "common/memory.h"
#include "common/status.h"
#include "common/stream.h"
#include "common/thread_pool.h"
#include "common/value.h"
#include "gtest/gtest.h"

namespace greta {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Str(3).AsStr(), 3);
  EXPECT_TRUE(Value::Bool(true).Truthy());
  EXPECT_FALSE(Value::Bool(false).Truthy());
  EXPECT_FALSE(Value::Null().Truthy());
  EXPECT_TRUE(Value::Double(0.1).Truthy());
}

TEST(ValueTest, NumericCoercionInComparison) {
  EXPECT_TRUE(Value::Int(2) == Value::Double(2.0));
  EXPECT_FALSE(Value::Int(2) == Value::Double(2.5));
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(3.0).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(2).Hash(), Value::Double(2.0).Hash());
}

TEST(ValueTest, StringEqualityById) {
  EXPECT_TRUE(Value::Str(1) == Value::Str(1));
  EXPECT_FALSE(Value::Str(1) == Value::Str(2));
  EXPECT_FALSE(Value::Str(1) == Value::Int(1));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  EXPECT_EQ(Value::Null().ToString(), "null");
  StringPool pool;
  StrId id = pool.Intern("IBM");
  EXPECT_EQ(Value::Str(id).ToString(&pool), "IBM");
}

TEST(StringPoolTest, InternIsIdempotent) {
  StringPool pool;
  StrId a = pool.Intern("alpha");
  StrId b = pool.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.Intern("alpha"), a);
  EXPECT_EQ(pool.Lookup(b), "beta");
  EXPECT_EQ(pool.Find("gamma"), -1);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(CatalogTest, TypeDefinitionAndLookup) {
  Catalog catalog;
  TypeId stock = catalog.DefineType(
      "Stock", {{"price", Value::Kind::kDouble}, {"vol", Value::Kind::kInt}});
  EXPECT_EQ(catalog.FindType("Stock"), stock);
  EXPECT_EQ(catalog.FindType("Nope"), kInvalidType);
  EXPECT_EQ(catalog.type(stock).FindAttr("price"), 0);
  EXPECT_EQ(catalog.type(stock).FindAttr("vol"), 1);
  EXPECT_EQ(catalog.type(stock).FindAttr("missing"), kInvalidAttr);
  EXPECT_EQ(catalog.num_types(), 1u);
}

TEST(EventTest, BuilderSetsAttributesPositionally) {
  Catalog catalog;
  catalog.DefineType("T", {{"x", Value::Kind::kDouble},
                           {"name", Value::Kind::kStr},
                           {"n", Value::Kind::kInt}});
  Event e = EventBuilder(&catalog, "T", 5)
                .Set("n", 9)
                .Set("x", 1.5)
                .Set("name", "hello")
                .Build();
  EXPECT_EQ(e.time, 5);
  EXPECT_DOUBLE_EQ(e.attr(0).AsDouble(), 1.5);
  EXPECT_EQ(catalog.strings()->Lookup(e.attr(1).AsStr()), "hello");
  EXPECT_EQ(e.attr(2).AsInt(), 9);
  EXPECT_EQ(e.ToString(catalog), "T@5{x=1.5,name=hello,n=9}");
}

TEST(StreamTest, AssignsSequenceNumbersInOrder) {
  Catalog catalog;
  catalog.DefineType("T", {});
  Stream stream;
  stream.Append(EventBuilder(&catalog, "T", 1).Build());
  stream.Append(EventBuilder(&catalog, "T", 1).Build());
  stream.Append(EventBuilder(&catalog, "T", 4).Build());
  EXPECT_EQ(stream.size(), 3u);
  EXPECT_EQ(stream[0].seq, 0);
  EXPECT_EQ(stream[1].seq, 1);
  EXPECT_EQ(stream[2].seq, 2);
  EXPECT_EQ(stream.max_time(), 4);
}

TEST(StreamTest, RejectsOutOfOrderAppends) {
  Catalog catalog;
  catalog.DefineType("T", {});
  Stream stream;
  stream.Append(EventBuilder(&catalog, "T", 5).Build());
  EXPECT_DEATH(stream.Append(EventBuilder(&catalog, "T", 4).Build()),
               "GRETA_CHECK");
}

TEST(StatusTest, CodesAndRendering) {
  EXPECT_TRUE(Status::Ok().ok());
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> good(7);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);
  StatusOr<int> bad(Status::NotFound("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(MemoryTrackerTest, TracksCurrentAndPeak) {
  MemoryTracker tracker;
  tracker.Add(100);
  tracker.Add(50);
  EXPECT_EQ(tracker.current_bytes(), 150u);
  EXPECT_EQ(tracker.peak_bytes(), 150u);
  tracker.Release(120);
  EXPECT_EQ(tracker.current_bytes(), 30u);
  EXPECT_EQ(tracker.peak_bytes(), 150u);
  tracker.Add(10);
  EXPECT_EQ(tracker.peak_bytes(), 150u);
  tracker.Reset();
  EXPECT_EQ(tracker.current_bytes(), 0u);
  EXPECT_EQ(tracker.peak_bytes(), 0u);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace greta
