// Tests for the pattern split (Algorithm 3) and its previous/following
// resolution, including the nested negation of Example 2.

#include "query/split.h"

#include "gtest/gtest.h"
#include "query/template.h"
#include "tests/test_util.h"

namespace greta {
namespace {

using testing::PaperCatalog;

TEST(SplitTest, PositivePatternHasNoNegatives) {
  PatternPtr p = Pattern::Plus(
      Pattern::Seq(Pattern::Plus(Pattern::Atom(0)), Pattern::Atom(1)));
  auto split = SplitPattern(*p);
  ASSERT_TRUE(split.ok());
  EXPECT_TRUE(split.value().negatives.empty());
  EXPECT_TRUE(split.value().positive->Equals(*p));
}

TEST(SplitTest, Example2NestedNegation) {
  // (SEQ(A+, NOT SEQ(C, NOT E, D), B))+ splits into positive (SEQ(A+, B))+
  // and negatives SEQ(C, D) (within the core) and E (within SEQ(C, D)).
  auto catalog = PaperCatalog();
  TypeId a = 0, b = 1, c = 2, d = 3, e = 4;
  PatternPtr p = Pattern::Plus(Pattern::Seq(
      Pattern::Plus(Pattern::Atom(a)),
      Pattern::Not(Pattern::Seq(Pattern::Atom(c),
                                Pattern::Not(Pattern::Atom(e)),
                                Pattern::Atom(d))),
      Pattern::Atom(b)));
  auto split = SplitPattern(*p);
  ASSERT_TRUE(split.ok());
  const SplitResult& r = split.value();

  EXPECT_EQ(r.positive->ToString(*catalog), "(SEQ((A)+, B))+");
  ASSERT_EQ(r.negatives.size(), 2u);

  // negatives[0] = SEQ(C, D) inside the positive core (index 0).
  EXPECT_EQ(r.negatives[0].pattern->ToString(*catalog), "SEQ(C, D)");
  EXPECT_EQ(r.negatives[0].parent, 0);
  ASSERT_NE(r.negatives[0].prev_atom, nullptr);
  ASSERT_NE(r.negatives[0].foll_atom, nullptr);
  EXPECT_EQ(r.negatives[0].prev_atom->type(), a);  // end(A+) = A
  EXPECT_EQ(r.negatives[0].foll_atom->type(), b);  // start(B) = B

  // negatives[1] = E inside SEQ(C, D) (index 1).
  EXPECT_EQ(r.negatives[1].pattern->ToString(*catalog), "E");
  EXPECT_EQ(r.negatives[1].parent, 1);
  EXPECT_EQ(r.negatives[1].prev_atom->type(), c);
  EXPECT_EQ(r.negatives[1].foll_atom->type(), d);
}

TEST(SplitTest, TrailingNegationCase2) {
  // SEQ(A+, NOT E): prev = A, no following (Case 2, Figure 7(b)).
  TypeId a = 0, e = 4;
  PatternPtr p = Pattern::Seq(Pattern::Plus(Pattern::Atom(a)),
                              Pattern::Not(Pattern::Atom(e)));
  auto split = SplitPattern(*p);
  ASSERT_TRUE(split.ok());
  const SplitResult& r = split.value();
  ASSERT_EQ(r.negatives.size(), 1u);
  ASSERT_NE(r.negatives[0].prev_atom, nullptr);
  EXPECT_EQ(r.negatives[0].prev_atom->type(), a);
  EXPECT_EQ(r.negatives[0].foll_atom, nullptr);
  // The positive SEQ collapsed to A+.
  EXPECT_EQ(r.positive->op(), PatternOp::kPlus);
}

TEST(SplitTest, LeadingNegationCase3) {
  // SEQ(NOT E, A+): no previous, following = A (Case 3, Figure 7(c), Q3).
  TypeId a = 0, e = 4;
  PatternPtr p = Pattern::Seq(Pattern::Not(Pattern::Atom(e)),
                              Pattern::Plus(Pattern::Atom(a)));
  auto split = SplitPattern(*p);
  ASSERT_TRUE(split.ok());
  const SplitResult& r = split.value();
  ASSERT_EQ(r.negatives.size(), 1u);
  EXPECT_EQ(r.negatives[0].prev_atom, nullptr);
  ASSERT_NE(r.negatives[0].foll_atom, nullptr);
  EXPECT_EQ(r.negatives[0].foll_atom->type(), a);
}

TEST(SplitTest, PrevFollResolveAgainstParentTemplate) {
  // The atoms referenced by the split must resolve to the parent template's
  // states: SEQ(A+, NOT C, B) -> prev state is end(A+), foll is start(B),
  // and the parent template has an A->B SEQ transition between them.
  auto catalog = PaperCatalog();
  TypeId a = 0, b = 1, c = 2;
  PatternPtr p = Pattern::Seq(Pattern::Plus(Pattern::Atom(a)),
                              Pattern::Not(Pattern::Atom(c)),
                              Pattern::Atom(b));
  auto split = SplitPattern(*p);
  ASSERT_TRUE(split.ok());
  auto templ = BuildTemplate(*split.value().positive, *catalog);
  ASSERT_TRUE(templ.ok());
  StateId prev =
      templ.value().NodeEndState(split.value().negatives[0].prev_atom);
  StateId foll =
      templ.value().NodeStartState(split.value().negatives[0].foll_atom);
  EXPECT_GE(templ.value().FindTransition(prev, foll), 0);
}

TEST(SplitTest, SeqWithBothLeadingAndTrailingNegation) {
  // SEQ(NOT C, A+, NOT E): two negatives against the same core A+.
  TypeId a = 0, c = 2, e = 4;
  PatternPtr p = Pattern::Seq(Pattern::Not(Pattern::Atom(c)),
                              Pattern::Plus(Pattern::Atom(a)),
                              Pattern::Not(Pattern::Atom(e)));
  auto split = SplitPattern(*p);
  ASSERT_TRUE(split.ok());
  const SplitResult& r = split.value();
  ASSERT_EQ(r.negatives.size(), 2u);
  EXPECT_EQ(r.negatives[0].prev_atom, nullptr);   // leading NOT C
  EXPECT_NE(r.negatives[0].foll_atom, nullptr);
  EXPECT_NE(r.negatives[1].prev_atom, nullptr);   // trailing NOT E
  EXPECT_EQ(r.negatives[1].foll_atom, nullptr);
}

TEST(SplitTest, StartEndAtomHelpers) {
  // StartAtom / EndAtom walk to the atoms whose states span the pattern.
  PatternPtr p = Pattern::Seq(Pattern::Plus(Pattern::Atom(0)),
                              Pattern::Atom(1),
                              Pattern::Plus(Pattern::Atom(2)));
  EXPECT_EQ(StartAtom(*p)->type(), 0);
  EXPECT_EQ(EndAtom(*p)->type(), 2);
}

TEST(SplitTest, RejectsInvalidNegationPlacement) {
  EXPECT_FALSE(SplitPattern(*Pattern::Not(Pattern::Atom(0))).ok());
}

}  // namespace
}  // namespace greta
