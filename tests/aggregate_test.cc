// Unit tests for the aggregate substrate: Counter overflow promotion,
// AggCell propagation rules (Theorems 4.3 and 9.1), AggPlan derivation, and
// AggOutputs merging/rendering.

#include "core/aggregate.h"

#include <limits>

#include "gtest/gtest.h"

namespace greta {
namespace {

TEST(CounterTest, ExactModePromotesOnOverflow) {
  Counter c(std::numeric_limits<uint64_t>::max());
  c.AddOne(CounterMode::kExact);
  EXPECT_EQ(c.ToDecimal(), "18446744073709551616");  // 2^64
  c.Add(Counter(5), CounterMode::kExact);
  EXPECT_EQ(c.ToDecimal(), "18446744073709551621");
  EXPECT_GT(c.ApproxHeapBytes(), 0u);
}

TEST(CounterTest, ModularModeWraps) {
  Counter c(std::numeric_limits<uint64_t>::max());
  c.AddOne(CounterMode::kModular);
  EXPECT_EQ(c.ToDecimal(), "0");
  EXPECT_TRUE(c.IsZero());
  c.Add(Counter(7), CounterMode::kModular);
  EXPECT_EQ(c.Low64(), 7u);
  EXPECT_EQ(c.ApproxHeapBytes(), 0u);
}

TEST(CounterTest, AddBigToBig) {
  Counter a(std::numeric_limits<uint64_t>::max());
  a.AddOne(CounterMode::kExact);  // 2^64
  Counter b = a;                  // Deep copy.
  a.Add(b, CounterMode::kExact);  // 2^65
  EXPECT_EQ(a.ToDecimal(), "36893488147419103232");
  EXPECT_EQ(b.ToDecimal(), "18446744073709551616");  // b unchanged.
}

TEST(CounterTest, CopySemantics) {
  Counter a(42);
  Counter b = a;
  b.AddOne(CounterMode::kExact);
  EXPECT_EQ(a.Low64(), 42u);
  EXPECT_EQ(b.Low64(), 43u);
}

TEST(CounterTest, FromBigHonorsMode) {
  BigUInt big = BigUInt::FromDecimal("36893488147419103232");  // 2^65
  Counter exact = Counter::FromBig(big, CounterMode::kExact);
  EXPECT_EQ(exact.ToDecimal(), "36893488147419103232");
  Counter modular = Counter::FromBig(big, CounterMode::kModular);
  EXPECT_EQ(modular.ToDecimal(), "0");  // 2^65 mod 2^64
}

TEST(AggPlanTest, DerivesNeedsFromSpecs) {
  std::vector<AggSpec> specs = {
      {AggKind::kCountStar, kInvalidType, kInvalidAttr, "COUNT(*)"},
      {AggKind::kAvg, 3, 1, "AVG(T.x)"},
  };
  auto plan = AggPlan::FromSpecs(specs, CounterMode::kExact);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().need_sum);         // AVG = SUM / COUNT(E)
  EXPECT_TRUE(plan.value().need_type_count);
  EXPECT_FALSE(plan.value().need_min);
  EXPECT_EQ(plan.value().target_type, 3);
  EXPECT_EQ(plan.value().target_attr, 1);
}

TEST(AggPlanTest, RejectsMixedTargets) {
  std::vector<AggSpec> two_types = {
      {AggKind::kMin, 1, 0, "MIN(A.x)"},
      {AggKind::kMax, 2, 0, "MAX(B.x)"},
  };
  EXPECT_FALSE(AggPlan::FromSpecs(two_types, CounterMode::kExact).ok());
  std::vector<AggSpec> two_attrs = {
      {AggKind::kMin, 1, 0, "MIN(A.x)"},
      {AggKind::kMax, 1, 1, "MAX(A.y)"},
  };
  EXPECT_FALSE(AggPlan::FromSpecs(two_attrs, CounterMode::kExact).ok());
  EXPECT_FALSE(AggPlan::FromSpecs({}, CounterMode::kExact).ok());
}

TEST(AggCellTest, StartVertexOfTargetType) {
  // Theorem 9.1 for a START event of the target type: count=1,
  // countE=1, min=max=attr, sum=attr.
  AggPlan plan;
  plan.need_type_count = true;
  plan.need_min = plan.need_max = plan.need_sum = true;
  plan.target_type = 0;
  plan.target_attr = 0;
  Event e;
  e.type = 0;
  e.time = 9;
  e.attrs = {Value::Double(2.5)};
  AggCell cell;
  cell.FinishVertex(e, /*is_start=*/true, plan);
  EXPECT_EQ(cell.count.ToDecimal(), "1");
  EXPECT_EQ(cell.type_count.ToDecimal(), "1");
  EXPECT_DOUBLE_EQ(cell.min, 2.5);
  EXPECT_DOUBLE_EQ(cell.max, 2.5);
  EXPECT_DOUBLE_EQ(cell.sum, 2.5);
}

TEST(AggCellTest, SumUsesFinalCount) {
  // e.sum = e.attr * e.count + sum_p p.sum: with two predecessor trends and
  // a start bonus, a target event of attr 10 adds 3 * 10.
  AggPlan plan;
  plan.need_sum = true;
  plan.target_type = 0;
  plan.target_attr = 0;

  AggCell pred;
  pred.count = Counter(2);
  pred.sum = 7.0;

  Event e;
  e.type = 0;
  e.attrs = {Value::Double(10.0)};
  AggCell cell;
  cell.AddPredecessor(pred, plan);
  cell.FinishVertex(e, /*is_start=*/true, plan);
  EXPECT_EQ(cell.count.ToDecimal(), "3");
  EXPECT_DOUBLE_EQ(cell.sum, 7.0 + 3 * 10.0);
}

TEST(AggCellTest, NonTargetVertexOnlyForwards) {
  AggPlan plan;
  plan.need_type_count = true;
  plan.need_min = true;
  plan.target_type = 5;  // Not this event's type.
  plan.target_attr = 0;

  AggCell pred;
  pred.count = Counter(4);
  pred.type_count = Counter(9);
  pred.min = 1.5;

  Event e;
  e.type = 0;
  e.attrs = {Value::Double(0.1)};
  AggCell cell;
  cell.AddPredecessor(pred, plan);
  cell.FinishVertex(e, /*is_start=*/false, plan);
  EXPECT_EQ(cell.count.ToDecimal(), "4");
  EXPECT_EQ(cell.type_count.ToDecimal(), "9");  // Unchanged: e is not E.
  EXPECT_DOUBLE_EQ(cell.min, 1.5);              // e.attr not folded in.
}

TEST(AggCellTest, MaxStartTracksLatestTrendStart) {
  // The negation auxiliary (DESIGN.md §2.1 item 4): START vertices seed
  // their own time; extensions keep the max over predecessors.
  AggPlan plan = AggPlan::ForNegative(CounterMode::kExact);
  Event start;
  start.type = 0;
  start.time = 5;
  AggCell first;
  first.FinishVertex(start, /*is_start=*/true, plan);
  EXPECT_EQ(first.max_start, 5);

  Event later;
  later.type = 0;
  later.time = 9;
  AggCell second;
  second.AddPredecessor(first, plan);
  second.FinishVertex(later, /*is_start=*/true, plan);
  // Trends ending at `later`: extension of (5..) and the new trend (9):
  // the latest start is 9.
  EXPECT_EQ(second.max_start, 9);

  AggCell third;
  third.AddPredecessor(second, plan);
  Event mid;
  mid.type = 1;
  mid.time = 12;
  third.FinishVertex(mid, /*is_start=*/false, plan);
  EXPECT_EQ(third.max_start, 9);  // Non-start: inherits only.
}

TEST(AggOutputsTest, AccumulateSkipsZeroCountCells) {
  AggPlan plan;
  plan.need_min = true;
  plan.target_type = 0;
  plan.target_attr = 0;
  AggOutputs out;
  AggCell zero;
  zero.min = -100.0;  // Must not leak into the result.
  out.AccumulateEnd(zero, plan);
  EXPECT_FALSE(out.any);
  EXPECT_EQ(out.min, kAggInf);
}

TEST(AggOutputsTest, MergeAndRender) {
  AggPlan plan;
  plan.need_type_count = plan.need_min = plan.need_max = plan.need_sum = true;
  plan.target_type = 0;
  plan.target_attr = 0;
  AggOutputs a;
  a.count = Counter(2);
  a.type_count = Counter(4);
  a.min = 1.0;
  a.max = 3.0;
  a.sum = 8.0;
  a.any = true;
  AggOutputs b;
  b.count = Counter(3);
  b.type_count = Counter(6);
  b.min = 0.5;
  b.max = 2.0;
  b.sum = 2.0;
  b.any = true;
  a.Merge(b, plan);
  EXPECT_EQ(a.count.ToDecimal(), "5");
  EXPECT_EQ(a.type_count.ToDecimal(), "10");
  EXPECT_DOUBLE_EQ(a.min, 0.5);
  EXPECT_DOUBLE_EQ(a.max, 3.0);
  EXPECT_DOUBLE_EQ(a.sum, 10.0);
  EXPECT_DOUBLE_EQ(a.Avg(), 1.0);

  EXPECT_EQ(a.Render({AggKind::kCountStar, 0, 0, ""}), "5");
  EXPECT_EQ(a.Render({AggKind::kAvg, 0, 0, ""}), "1.0");
  AggOutputs empty;
  EXPECT_EQ(empty.Render({AggKind::kMin, 0, 0, ""}), "-");
}

}  // namespace
}  // namespace greta
